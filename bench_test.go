package grammarviz

// This file regenerates the paper's evaluation as Go benchmarks: one
// benchmark per Table 1 row, one per figure, component benchmarks for the
// pipeline stages, and ablations of the design choices DESIGN.md calls
// out. Distance-call counts — the paper's efficiency metric — are emitted
// via b.ReportMetric as "hotsax_calls/op", "rra_calls/op" etc., so
// `go test -bench .` prints the Table 1 quantities next to ns/op.

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"fmt"

	"grammarviz/internal/autoparam"
	"grammarviz/internal/core"
	"grammarviz/internal/datasets"
	"grammarviz/internal/density"
	"grammarviz/internal/discord"
	"grammarviz/internal/ensemble"
	"grammarviz/internal/experiments"
	"grammarviz/internal/grammar"
	"grammarviz/internal/hilbert"
	"grammarviz/internal/sax"
	"grammarviz/internal/sequitur"
	"grammarviz/internal/viztree"
	"grammarviz/internal/wcad"
)

// dsCache generates each synthetic dataset once per test binary.
var dsCache sync.Map

func dataset(b *testing.B, name string) *datasets.Dataset {
	b.Helper()
	if v, ok := dsCache.Load(name); ok {
		return v.(*datasets.Dataset)
	}
	ds, err := datasets.Generate(name)
	if err != nil {
		b.Fatalf("generate %s: %v", name, err)
	}
	dsCache.Store(name, ds)
	return ds
}

// benchTable1Row measures one Table 1 row: the distance-call counts of
// both search algorithms (brute force is analytic, as in the paper).
func benchTable1Row(b *testing.B, name string) {
	ds := dataset(b, name)
	var row experiments.Table1Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		row, err = experiments.RunRowOn(ds, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(row.BruteCalls), "brute_calls/op")
	b.ReportMetric(float64(row.HotsaxCalls), "hotsax_calls/op")
	b.ReportMetric(float64(row.RRACalls), "rra_calls/op")
	b.ReportMetric(row.ReductionPct, "reduction_%")
	b.ReportMetric(row.OverlapPct, "overlap_%")
}

func BenchmarkTable1_DailyCommute(b *testing.B)      { benchTable1Row(b, "daily-commute") }
func BenchmarkTable1_DutchPowerDemand(b *testing.B)  { benchTable1Row(b, "dutch-power-demand") }
func BenchmarkTable1_ECG0606(b *testing.B)           { benchTable1Row(b, "ecg0606") }
func BenchmarkTable1_ECG308(b *testing.B)            { benchTable1Row(b, "ecg308") }
func BenchmarkTable1_ECG15(b *testing.B)             { benchTable1Row(b, "ecg15") }
func BenchmarkTable1_ECG108(b *testing.B)            { benchTable1Row(b, "ecg108") }
func BenchmarkTable1_ECG300(b *testing.B)            { benchTable1Row(b, "ecg300") }
func BenchmarkTable1_ECG318(b *testing.B)            { benchTable1Row(b, "ecg318") }
func BenchmarkTable1_RespirationNPRS43(b *testing.B) { benchTable1Row(b, "respiration-nprs43") }
func BenchmarkTable1_RespirationNPRS44(b *testing.B) { benchTable1Row(b, "respiration-nprs44") }
func BenchmarkTable1_VideoGun(b *testing.B)          { benchTable1Row(b, "video-gun") }
func BenchmarkTable1_TEK14(b *testing.B)             { benchTable1Row(b, "tek14") }
func BenchmarkTable1_TEK16(b *testing.B)             { benchTable1Row(b, "tek16") }
func BenchmarkTable1_TEK17(b *testing.B)             { benchTable1Row(b, "tek17") }

// ---- Figures ----

// BenchmarkFigure1_RuleDensityVideo builds the rule density curve of the
// video dataset — the linear-time detector highlighted in Figure 1.
func BenchmarkFigure1_RuleDensityVideo(b *testing.B) {
	ds := dataset(b, "video-gun")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := core.Analyze(ds.Series, core.Config{Params: ds.Params, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if len(density.GlobalMinimaMargin(p.Density, ds.Params.Window-1)) == 0 {
			b.Fatal("no minima")
		}
	}
}

// benchDensityFigure runs the full three-panel figure pipeline (analysis,
// density minima, RRA discords, nearest-non-self distances).
func benchDensityFigure(b *testing.B, name string) {
	ds := dataset(b, name)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig, err := experiments.RunDensityFigureOn(ds, 3, 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(fig.Discords) == 0 {
			b.Fatal("no discords")
		}
	}
}

func BenchmarkFigure2_ECG0606(b *testing.B)     { benchDensityFigure(b, "ecg0606") }
func BenchmarkFigure3_PowerDemand(b *testing.B) { benchDensityFigure(b, "dutch-power-demand") }

// BenchmarkFigure5_RankingECG300 compares HOTSAX and RRA top-3 rankings on
// the long ECG record.
func BenchmarkFigure5_RankingECG300(b *testing.B) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cmp, err := experiments.RunRanking("ecg300", 3, 1)
		if err != nil {
			b.Fatal(err)
		}
		if !cmp.SameSet {
			b.Log("ranking sets diverged (paper observed order differences only)")
		}
	}
}

// BenchmarkFigure6_HilbertTransform measures the trajectory linearization
// of Figure 6 on an order-8 curve.
func BenchmarkFigure6_HilbertTransform(b *testing.B) {
	c, err := hilbert.New(8)
	if err != nil {
		b.Fatal(err)
	}
	pts := make([]hilbert.Point, 16384)
	for i := range pts {
		pts[i] = hilbert.Point{X: float64(i % 251), Y: float64((i * 7) % 241)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hilbert.Transform(c, pts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7_Trajectory runs the full commute case study.
func BenchmarkFigure7_Trajectory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.RunTrajectory(1)
		if err != nil {
			b.Fatal(err)
		}
		if !fig.DetourHitByDensity {
			b.Fatal("detour not found by density minima")
		}
	}
}

// BenchmarkFigure10_ParameterSweep evaluates a reduced grid of
// discretization parameters, reporting both detectors' success counts.
func BenchmarkFigure10_ParameterSweep(b *testing.B) {
	grid := experiments.SweepGrid{
		Windows:   []int{40, 120, 300},
		PAAs:      []int{3, 9, 16},
		Alphabets: []int{3, 7},
	}
	var res *experiments.SweepResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunSweep("ecg0606", grid, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.DensityHits), "density_hits")
	b.ReportMetric(float64(res.RRAHits), "rra_hits")
}

// ---- Pipeline component benchmarks ----

// BenchmarkComponent_SAXDiscretize compares the retained naive discretizer
// (Reference: O(window) per window) against the incremental prefix-sum
// encoder (O(paa) per window) and its parallel variant, on both the short
// and the long ECG record. All three produce byte-identical output — see
// internal/sax/equivalence_test.go.
func BenchmarkComponent_SAXDiscretize(b *testing.B) {
	for _, name := range []string{"ecg0606", "ecg15"} {
		ds := dataset(b, name)
		b.Run(name+"/Reference", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sax.DiscretizeReference(ds.Series, ds.Params, sax.ReductionExact); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name+"/Incremental", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sax.Discretize(ds.Series, ds.Params, sax.ReductionExact); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name+"/Parallel", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sax.DiscretizeWorkers(ds.Series, ds.Params, sax.ReductionExact, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkComponent_SequiturInduce measures first-touch grammar induction
// — the dominant uncached cost of an analysis now that discretization is
// incremental and repeat queries are cache hits. The Strings sub-benchmark
// is the retained reference path (string tokens); Codes is the
// integer-coded arena-backed hot path. Both induce byte-identical
// grammars (internal/sequitur equivalence tests).
func BenchmarkComponent_SequiturInduce(b *testing.B) {
	for _, name := range []string{"ecg0606", "ecg15"} {
		ds := dataset(b, name)
		d, err := sax.Discretize(ds.Series, ds.Params, sax.ReductionExact)
		if err != nil {
			b.Fatal(err)
		}
		words := d.Strings()
		b.Run(name+"/Strings", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g := sequitur.Induce(words)
				if g.NumRules() == 0 {
					b.Fatal("no rules")
				}
			}
		})
		if !d.Coded {
			b.Fatalf("%s: words do not fit a packed code", name)
		}
		codec := sax.NewWordCodec(ds.Params.PAA, ds.Params.Alphabet)
		render := codec.Decode
		codes := make([]uint64, len(d.Words))
		for i := range d.Words {
			codes[i] = d.Words[i].Code
		}
		b.Run(name+"/Codes", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g := sequitur.InduceCodes(codes, render)
				if g.NumRules() == 0 {
					b.Fatal("no rules")
				}
			}
		})
		// The serving path: a pooled inducer reused across analyses
		// (workspace.Get -> ResetCodes -> AppendCode* -> Grammar).
		b.Run(name+"/CodesPooled", func(b *testing.B) {
			in := sequitur.NewCodeInducer(render)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				in.ResetCodes(render)
				for _, c := range codes {
					in.AppendCode(c)
				}
				if g := in.Grammar(); g.NumRules() == 0 {
					b.Fatal("no rules")
				}
			}
		})
	}
}

// BenchmarkComponent_GrammarBuild measures mapping an induced grammar's
// rule occurrences back onto series intervals.
func BenchmarkComponent_GrammarBuild(b *testing.B) {
	for _, name := range []string{"ecg0606", "ecg15"} {
		ds := dataset(b, name)
		d, err := sax.Discretize(ds.Series, ds.Params, sax.ReductionExact)
		if err != nil {
			b.Fatal(err)
		}
		g := sequitur.Induce(d.Strings())
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rs, err := grammar.Build(d, g)
				if err != nil {
					b.Fatal(err)
				}
				if rs.NumRules() == 0 {
					b.Fatal("no rules")
				}
			}
		})
	}
}

func BenchmarkComponent_DensityCurve(b *testing.B) {
	ds := dataset(b, "ecg15")
	p, err := core.Analyze(ds.Series, core.Config{Params: ds.Params, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		curve := density.Curve(p.Rules)
		if len(curve) != len(ds.Series) {
			b.Fatal("bad curve")
		}
	}
}

// BenchmarkComponent_RRA runs the discord search serially and fanned over
// 2 and 4 workers sharing one Stats. The discords are byte-identical at
// every worker count (internal/discord/equivalence_test.go); scaling is
// only visible on multi-core hosts.
func BenchmarkComponent_RRA(b *testing.B) {
	ds := dataset(b, "ecg15")
	p, err := core.Analyze(ds.Series, core.Config{Params: ds.Params, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	st := p.Stats()
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := discord.RRAParallelStats(st, p.Rules, 1, 1, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkComponent_HOTSAX(b *testing.B) {
	ds := dataset(b, "ecg0606")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := discord.HOTSAX(ds.Series, ds.Params, 1, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkComponent_EnsembleDensity measures the parameter-free ensemble
// detector at two fleet sizes: the per-member cost is one pooled, coded
// induction, so time should scale close to linearly in members (modulo
// the worker fan-out) and the warm path should reuse pooled workspaces
// rather than allocating induction scratch per member (see the
// AllocsPerRun regression test in internal/ensemble).
func BenchmarkComponent_EnsembleDensity(b *testing.B) {
	ds := dataset(b, "ecg0606")
	for _, members := range []int{8, 32} {
		b.Run(fmt.Sprintf("members=%d", members), func(b *testing.B) {
			b.ReportAllocs()
			var used int
			for i := 0; i < b.N; i++ {
				res, err := ensemble.Induce(context.Background(), ds.Series, ensemble.Config{Members: members, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				used = res.Used
			}
			b.ReportMetric(float64(used), "members_used")
		})
	}
}

func BenchmarkComponent_BruteForce(b *testing.B) {
	ds := dataset(b, "ecg0606")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := discord.BruteForce(ds.Series, ds.Params.Window, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkComponent_MINDIST compares the string-path MINDIST (decode +
// per-letter table walk) against the packed-code lookup-table evaluator
// (sax.CodeDist.MINDISTCode). Both return bit-identical distances
// (internal/sax/codedist_test.go); the coded form is the discord search's
// hot comparison.
func BenchmarkComponent_MINDIST(b *testing.B) {
	const paa, alphabet, n = 8, 6, 300
	codec := sax.NewWordCodec(paa, alphabet)
	dt, err := sax.NewDistTable(alphabet)
	if err != nil {
		b.Fatal(err)
	}
	cd, err := sax.NewCodeDist(dt, codec)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	const pairs = 1024
	wordsA := make([]string, pairs)
	wordsB := make([]string, pairs)
	codesA := make([]uint64, pairs)
	codesB := make([]uint64, pairs)
	for i := range wordsA {
		wa := make([]byte, paa)
		wb := make([]byte, paa)
		for j := 0; j < paa; j++ {
			wa[j] = byte('a' + rng.Intn(alphabet))
			wb[j] = byte('a' + rng.Intn(alphabet))
		}
		wordsA[i], wordsB[i] = string(wa), string(wb)
		codesA[i], codesB[i] = codec.PackString(wordsA[i]), codec.PackString(wordsB[i])
	}

	var sink float64
	b.Run("String", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			d, err := dt.MINDIST(wordsA[i%pairs], wordsB[i%pairs], n)
			if err != nil {
				b.Fatal(err)
			}
			sink += d
		}
	})
	b.Run("Code", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink += cd.MINDISTCode(codesA[i%pairs], codesB[i%pairs], n)
		}
	})
	_ = sink
}

func BenchmarkComponent_StreamingAppend(b *testing.B) {
	ds := dataset(b, "ecg15")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := NewStream(Options{Window: 300, PAA: 4, Alphabet: 4})
		if err != nil {
			b.Fatal(err)
		}
		for _, v := range ds.Series {
			s.Append(v)
		}
	}
	b.ReportMetric(float64(len(ds.Series)), "points/op")
}

// ---- Ablations (DESIGN.md §5) ----

// BenchmarkAblation_Reduction compares the pipeline with the paper's EXACT
// numerosity reduction against no reduction: grammar size, RRA distance
// calls and wall time all degrade without it.
func BenchmarkAblation_Reduction(b *testing.B) {
	ds := dataset(b, "ecg0606")
	for _, tt := range []struct {
		name string
		red  sax.Reduction
	}{
		{"Exact", sax.ReductionExact},
		{"None", sax.ReductionNone},
		{"MINDIST", sax.ReductionMINDIST},
	} {
		b.Run(tt.name, func(b *testing.B) {
			var calls int64
			var words, size int
			for i := 0; i < b.N; i++ {
				p, err := core.Analyze(ds.Series, core.Config{Params: ds.Params, Reduction: tt.red, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				res, err := p.Discords(1)
				if err != nil && !errors.Is(err, discord.ErrNoCandidates) {
					// MINDIST reduction can collapse the word stream so far
					// that no candidate has a non-self match; that is a
					// result of the ablation, not a benchmark failure.
					b.Fatal(err)
				}
				calls = res.DistCalls
				words = len(p.Disc.Words)
				size = p.GrammarSize()
			}
			b.ReportMetric(float64(calls), "rra_calls/op")
			b.ReportMetric(float64(words), "words")
			b.ReportMetric(float64(size), "grammar_size")
		})
	}
}

// BenchmarkAblation_RRAOrdering disables RRA's two search-order heuristics
// (rarity-ordered outer loop; same-rule-first inner loop) to quantify how
// much of the Table 1 pruning each contributes.
func BenchmarkAblation_RRAOrdering(b *testing.B) {
	ds := dataset(b, "ecg15")
	p, err := core.Analyze(ds.Series, core.Config{Params: ds.Params, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	for _, tt := range []struct {
		name   string
		tuning discord.Tuning
	}{
		{"Full", discord.Tuning{}},
		{"NoRarityOrder", discord.Tuning{NoRarityOrder: true}},
		{"NoSameRuleFirst", discord.Tuning{NoSameGroupFirst: true}},
		{"Neither", discord.Tuning{NoRarityOrder: true, NoSameGroupFirst: true}},
	} {
		b.Run(tt.name, func(b *testing.B) {
			var calls int64
			for i := 0; i < b.N; i++ {
				res, err := discord.RRATuned(ds.Series, p.Rules, 1, 1, tt.tuning)
				if err != nil {
					b.Fatal(err)
				}
				calls = res.DistCalls
			}
			b.ReportMetric(float64(calls), "rra_calls/op")
		})
	}
}

// BenchmarkAblation_HOTSAXOrdering does the same for HOTSAX's magic
// orderings, reproducing the original paper's claim that the orderings are
// what makes HOTSAX beat brute force.
func BenchmarkAblation_HOTSAXOrdering(b *testing.B) {
	ds := dataset(b, "ecg0606")
	for _, tt := range []struct {
		name   string
		tuning discord.Tuning
	}{
		{"Full", discord.Tuning{}},
		{"NoWordOrder", discord.Tuning{NoRarityOrder: true}},
		{"NoSameWordFirst", discord.Tuning{NoSameGroupFirst: true}},
	} {
		b.Run(tt.name, func(b *testing.B) {
			var calls int64
			for i := 0; i < b.N; i++ {
				res, err := discord.HOTSAXTuned(ds.Series, ds.Params, 1, 1, tt.tuning)
				if err != nil {
					b.Fatal(err)
				}
				calls = res.DistCalls
			}
			b.ReportMetric(float64(calls), "hotsax_calls/op")
		})
	}
}

// BenchmarkAblation_WindowSeed shows that the sliding-window length is
// only a seed: RRA finds the anomaly across a range of windows (the
// Section 5.2 observation), with call counts reported per window.
func BenchmarkAblation_WindowSeed(b *testing.B) {
	ds := dataset(b, "ecg0606")
	for _, w := range []int{60, 120, 240} {
		b.Run(sax.Params{Window: w, PAA: 4, Alphabet: 4}.String(), func(b *testing.B) {
			params := sax.Params{Window: w, PAA: 4, Alphabet: 4}
			var calls int64
			hits := 0
			for i := 0; i < b.N; i++ {
				p, err := core.Analyze(ds.Series, core.Config{Params: params, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				res, err := p.Discords(1)
				if err != nil {
					b.Fatal(err)
				}
				calls = res.DistCalls
				if ds.TruthHit(res.Discords[0].Interval, w) {
					hits++
				}
			}
			b.ReportMetric(float64(calls), "rra_calls/op")
			b.ReportMetric(float64(hits)/float64(b.N), "truth_hit_rate")
		})
	}
}

// ---- Related-work baselines (paper §6) ----

func BenchmarkBaseline_VizTree(b *testing.B) {
	ds := dataset(b, "ecg0606")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := viztree.Build(ds.Series, ds.Params)
		if err != nil {
			b.Fatal(err)
		}
		if len(tr.Anomalies(1)) == 0 {
			b.Fatal("no anomalies")
		}
	}
}

func BenchmarkBaseline_WCAD(b *testing.B) {
	ds := dataset(b, "ecg0606")
	params := sax.Params{Window: ds.Params.Window, PAA: 8, Alphabet: ds.Params.Alphabet}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wcad.Detect(ds.Series, params); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Extension benchmarks ----

func BenchmarkExtension_MultiscaleDensity(b *testing.B) {
	ds := dataset(b, "ecg0606")
	windows := []int{60, 120, 240}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.MultiscaleDensityWorkers(ds.Series, windows, 4, 4, sax.ReductionExact, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkExtension_SurpriseScore(b *testing.B) {
	ds := dataset(b, "ecg15")
	p, err := core.Analyze(ds.Series, core.Config{Params: ds.Params, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := density.Surprise(p.Density)
		if len(s) != len(ds.Series) {
			b.Fatal("bad score length")
		}
	}
}

func BenchmarkExtension_NearestNonSelfParallel(b *testing.B) {
	ds := dataset(b, "ecg0606")
	p, err := core.Analyze(ds.Series, core.Config{Params: ds.Params, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	st := p.Stats()
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			// Allocations must not scale with workers x series length: the
			// workers share one Stats and allocate only per-worker counters.
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if len(discord.NearestNonSelfParallelStats(st, p.Rules, workers)) == 0 {
					b.Fatal("no NN results")
				}
			}
		})
	}
}

func BenchmarkExtension_RulePruning(b *testing.B) {
	ds := dataset(b, "ecg15")
	p, err := core.Analyze(ds.Series, core.Config{Params: ds.Params, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var kept int
	for i := 0; i < b.N; i++ {
		kept = grammar.Prune(p.Rules, 1).NumRules()
	}
	b.ReportMetric(float64(kept), "rules_kept")
	b.ReportMetric(float64(p.Rules.NumRules()), "rules_total")
}

func BenchmarkExtension_AutoParams(b *testing.B) {
	ds := dataset(b, "ecg0606")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := autoparam.Suggest(ds.Series); err != nil {
			b.Fatal(err)
		}
	}
}
