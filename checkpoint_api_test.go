package grammarviz

import (
	"errors"
	"testing"
)

// TestStreamCheckpointRoundTrip pins the public durability contract: a
// stream restored from Checkpoint continues byte-identically — same
// events, same analyses — to the stream that produced the frame.
func TestStreamCheckpointRoundTrip(t *testing.T) {
	ts := testSeries(1200, 60, 600, 60, 5)
	for _, red := range []Reduction{ReduceExact, ReduceNone, ReduceMINDIST} {
		opts := Options{Window: 60, PAA: 6, Alphabet: 4, Reduction: red}
		s, err := NewStream(opts)
		if err != nil {
			t.Fatalf("NewStream: %v", err)
		}
		for _, v := range ts[:700] {
			if _, _, err := s.Append(v); err != nil {
				t.Fatal(err)
			}
		}
		frame, err := s.Checkpoint()
		if err != nil {
			t.Fatalf("Checkpoint: %v", err)
		}
		r, err := RestoreStream(frame)
		if err != nil {
			t.Fatalf("RestoreStream: %v", err)
		}
		if r.Len() != s.Len() {
			t.Fatalf("restored Len %d, want %d", r.Len(), s.Len())
		}
		for i, v := range ts[700:] {
			se, sok, serr := s.Append(v)
			re, rok, rerr := r.Append(v)
			if serr != nil || rerr != nil {
				t.Fatal(serr, rerr)
			}
			if sok != rok || se != re {
				t.Fatalf("reduction %d point %d: original (%v,%v) restored (%v,%v)", red, i, se, sok, re, rok)
			}
		}
		sd, err := s.RuleDensity()
		if err != nil {
			t.Fatal(err)
		}
		rd, err := r.RuleDensity()
		if err != nil {
			t.Fatal(err)
		}
		for i := range sd {
			if sd[i] != rd[i] {
				t.Fatalf("reduction %d: restored density differs at %d", red, i)
			}
		}
		// A second checkpoint of the restored stream is byte-identical
		// to a checkpoint of the original: the frame is canonical.
		sf, err := s.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		rf, err := r.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		if string(sf) != string(rf) {
			t.Fatalf("reduction %d: checkpoints of equivalent streams differ", red)
		}
	}
}

func TestRestoreStreamRejectsCorruption(t *testing.T) {
	s, err := NewStream(Options{Window: 40, PAA: 4, Alphabet: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range 200 {
		if _, _, err := s.Append(float64(i % 17)); err != nil {
			t.Fatal(err)
		}
	}
	frame, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreStream(nil); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Errorf("nil frame: %v", err)
	}
	if _, err := RestoreStream(frame[:len(frame)-1]); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Errorf("truncated frame: %v", err)
	}
	bad := append([]byte(nil), frame...)
	bad[len(bad)/2] ^= 0x40
	if _, err := RestoreStream(bad); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Errorf("flipped frame: %v", err)
	}
}
