package grammarviz

import (
	"fmt"

	"grammarviz/internal/autoparam"
)

// SuggestOptions recommends discretization options for ts: the window is
// the series' dominant autocorrelation period (the paper's Section 5.2
// heuristic — "the length of a heartbeat, a weekly duration" — made
// automatic), and PAA/alphabet are the coarsest values whose SAX
// reconstruction error is near-optimal on a small grid. The suggestion is
// a starting point; both detectors tolerate imperfect parameters (see the
// paper's Figure 10 and Detector.Diagnose).
//
// It returns an error when the series has no usable dominant cycle (e.g.
// white noise or a constant signal).
func SuggestOptions(ts []float64) (Options, error) {
	s, err := autoparam.Suggest(ts)
	if err != nil {
		return Options{}, fmt.Errorf("grammarviz: %w", err)
	}
	return Options{
		Window:   s.Params.Window,
		PAA:      s.Params.PAA,
		Alphabet: s.Params.Alphabet,
	}, nil
}
