// Command gvperf diffs `go test -bench` output against the checked-in
// BENCH_*.json baselines and exits non-zero on regression — the perf gate
// behind `make perfgate` (ROADMAP: continuous perf observability).
//
// Usage:
//
//	go test ./internal/discord -run '^$' -bench Component -benchmem \
//	    | gvperf -baseline BENCH_5.json -tol 3.0
//
// Baselines are the repo's measurement files: every entry under the
// top-level "benchmarks" object whose value carries ns_per_op (directly
// or under an "after" key, the shape BENCH_2/BENCH_5 use) participates;
// scenario-style files contribute nothing and are skipped silently, so
// passing every BENCH_*.json is safe. Benchmark names are matched after
// stripping the "Benchmark" prefix and the -GOMAXPROCS suffix.
//
// ns/op is gated by a fractional tolerance (-tol): CI runners are not
// the measurement host, so the default is deliberately loose — the gate
// exists to catch order-of-magnitude slides and alloc regressions, not
// 10% jitter. allocs/op is machine-independent and gated strictly by an
// absolute slack (-alloc-tol, default 0).
//
// Benchmarks are classified into perf families by name pattern — kernel
// (the distance kernels and discord searches), induction (discretize,
// Sequitur, grammar build, density curve), serving (streaming append and
// the ensemble) — and each family can override the global tolerances with
// a repeatable -family-tol family=ns[:alloc] flag. The induction path
// pools allocations across runs, so its allocs/op at the gate's short
// -benchtime includes warm-up the 50x baselines amortized away; a wider
// per-family slack absorbs that without loosening the kernel gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Measurement is one benchmark's gated quantities. AllocsPerOp is -1 when
// the line carried no -benchmem columns (ns-only gate).
type Measurement struct {
	NsPerOp     float64
	AllocsPerOp float64
}

// benchLine matches one `go test -bench` result line:
//
//	BenchmarkName[-P]  <iters>  <ns> ns/op [<x> B/op  <y> allocs/op] [extra metrics]
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+)\s+\d+\s+([0-9.]+) ns/op(?:.*?\s([0-9.]+) allocs/op)?`)

// normalize strips the "Benchmark" prefix and the trailing -GOMAXPROCS
// suffix (absent on single-proc runs) so output names line up with the
// baseline files' keys.
func normalize(name string) string {
	name = strings.TrimPrefix(name, "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	return name
}

// ParseBench extracts measurements from `go test -bench` output, keyed by
// normalized benchmark name.
func ParseBench(r io.Reader) (map[string]Measurement, error) {
	out := map[string]Measurement{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		allocs := -1.0
		if m[3] != "" {
			if a, err := strconv.ParseFloat(m[3], 64); err == nil {
				allocs = a
			}
		}
		out[normalize(m[1])] = Measurement{NsPerOp: ns, AllocsPerOp: allocs}
	}
	return out, sc.Err()
}

// baselineRow is the accepted shapes of one "benchmarks" entry: either the
// measurement fields directly, or nested under "after" (the before/after
// files). Entries with neither are ignored.
type baselineRow struct {
	NsPerOp     *float64     `json:"ns_per_op"`
	AllocsPerOp *float64     `json:"allocs_per_op"`
	After       *baselineRow `json:"after"`
}

func (r *baselineRow) measurement() (Measurement, bool) {
	if r == nil {
		return Measurement{}, false
	}
	if r.NsPerOp != nil {
		m := Measurement{NsPerOp: *r.NsPerOp, AllocsPerOp: -1}
		if r.AllocsPerOp != nil {
			m.AllocsPerOp = *r.AllocsPerOp
		}
		return m, true
	}
	return r.After.measurement()
}

// LoadBaseline reads one BENCH_*.json and returns its gateable rows.
func LoadBaseline(path string) (map[string]Measurement, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var file struct {
		Benchmarks map[string]json.RawMessage `json:"benchmarks"`
	}
	if err := json.Unmarshal(raw, &file); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := map[string]Measurement{}
	for name, body := range file.Benchmarks {
		var row baselineRow
		if err := json.Unmarshal(body, &row); err != nil {
			continue // non-measurement entry (notes, scenario rows)
		}
		if m, ok := row.measurement(); ok {
			out[name] = m
		}
	}
	return out, nil
}

// multiFlag collects repeated -baseline flags.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

// familyRules classifies normalized benchmark names into perf families.
// First match wins; names no rule matches fall into "other". The rules key
// off the stable Component_ prefixes, so sub-benchmark paths and future
// dataset names classify without edits here.
var familyRules = []struct {
	Name string
	re   *regexp.Regexp
}{
	{"kernel", regexp.MustCompile(`^Component_(DistKernel|Search)`)},
	{"induction", regexp.MustCompile(`^Component_(SAXDiscretize|SequiturInduce|GrammarBuild|DensityCurve)`)},
	{"serving", regexp.MustCompile(`^Component_(StreamingAppend|EnsembleDensity)`)},
}

// Family returns the perf family of a normalized benchmark name.
func Family(name string) string {
	for _, r := range familyRules {
		if r.re.MatchString(name) {
			return r.Name
		}
	}
	return "other"
}

// Tol is one family's gate settings: a fractional ns/op tolerance and an
// absolute allocs/op slack.
type Tol struct {
	Ns    float64
	Alloc float64
}

// parseFamilyTol parses one -family-tol value, "family=ns[:alloc]". An
// omitted alloc part inherits the global -alloc-tol, signalled by -1.
func parseFamilyTol(spec string) (string, Tol, error) {
	name, vals, ok := strings.Cut(spec, "=")
	if !ok || name == "" {
		return "", Tol{}, fmt.Errorf("-family-tol %q: want family=ns[:alloc]", spec)
	}
	known := name == "other"
	for _, r := range familyRules {
		known = known || name == r.Name
	}
	if !known {
		return "", Tol{}, fmt.Errorf("-family-tol %q: unknown family %q", spec, name)
	}
	nsPart, allocPart, hasAlloc := strings.Cut(vals, ":")
	t := Tol{Alloc: -1}
	ns, err := strconv.ParseFloat(nsPart, 64)
	if err != nil {
		return "", Tol{}, fmt.Errorf("-family-tol %q: bad ns tolerance: %v", spec, err)
	}
	t.Ns = ns
	if hasAlloc {
		a, err := strconv.ParseFloat(allocPart, 64)
		if err != nil {
			return "", Tol{}, fmt.Errorf("-family-tol %q: bad alloc slack: %v", spec, err)
		}
		t.Alloc = a
	}
	return name, t, nil
}

// familyTolFlag collects repeated -family-tol overrides.
type familyTolFlag map[string]Tol

func (f familyTolFlag) String() string {
	var parts []string
	for name, t := range f {
		parts = append(parts, fmt.Sprintf("%s=%g:%g", name, t.Ns, t.Alloc))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

func (f familyTolFlag) Set(v string) error {
	name, t, err := parseFamilyTol(v)
	if err != nil {
		return err
	}
	f[name] = t
	return nil
}

// Compare gates current measurements against the baselines with one global
// tolerance pair and returns human-readable regression lines (empty =
// pass) plus the match count.
func Compare(base, cur map[string]Measurement, tol, allocTol float64) (regressions []string, matched int) {
	regs, byFamily := CompareFamilies(base, cur, Tol{Ns: tol, Alloc: allocTol}, nil)
	for _, n := range byFamily {
		matched += n
	}
	return regs, matched
}

// CompareFamilies gates current measurements against the baselines,
// applying a per-family Tol where overrides has one (an override Alloc of
// -1 inherits def.Alloc) and def everywhere else. Regression lines are
// tagged with the family and sorted by benchmark name; matched counts are
// keyed by family.
func CompareFamilies(base, cur map[string]Measurement, def Tol, overrides map[string]Tol) (regressions []string, matched map[string]int) {
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	matched = map[string]int{}
	for _, name := range names {
		c, ok := cur[name]
		if !ok {
			continue
		}
		b := base[name]
		family := Family(name)
		matched[family]++
		tol := def
		if o, ok := overrides[family]; ok {
			tol.Ns = o.Ns
			if o.Alloc >= 0 {
				tol.Alloc = o.Alloc
			}
		}
		if c.NsPerOp > b.NsPerOp*(1+tol.Ns) {
			regressions = append(regressions, fmt.Sprintf(
				"%s [%s]: %.0f ns/op vs baseline %.0f (limit %.0f, tol %.0f%%)",
				name, family, c.NsPerOp, b.NsPerOp, b.NsPerOp*(1+tol.Ns), tol.Ns*100))
		}
		if b.AllocsPerOp >= 0 && c.AllocsPerOp >= 0 && c.AllocsPerOp > b.AllocsPerOp+tol.Alloc {
			regressions = append(regressions, fmt.Sprintf(
				"%s [%s]: %.1f allocs/op vs baseline %.1f (+%.1f allowed)",
				name, family, c.AllocsPerOp, b.AllocsPerOp, tol.Alloc))
		}
	}
	return regressions, matched
}

func main() {
	var (
		baselines  multiFlag
		familyTols = familyTolFlag{}
		tol        = flag.Float64("tol", 3.0, "fractional ns/op tolerance (3.0 = 4x the baseline fails)")
		allocTol   = flag.Float64("alloc-tol", 0, "absolute allocs/op slack")
		minMatches = flag.Int("min-matches", 1, "fail unless at least this many benchmarks matched a baseline row (guards against silent renames)")
		input      = flag.String("input", "-", "bench output file, - for stdin")
	)
	flag.Var(&baselines, "baseline", "baseline JSON file (repeatable)")
	flag.Var(familyTols, "family-tol", "per-family override, family=ns[:alloc] (repeatable; families: kernel, induction, serving, other)")
	flag.Parse()

	if len(baselines) == 0 {
		fmt.Fprintln(os.Stderr, "gvperf: at least one -baseline is required")
		os.Exit(2)
	}
	base := map[string]Measurement{}
	for _, path := range baselines {
		rows, err := LoadBaseline(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gvperf:", err)
			os.Exit(2)
		}
		for name, m := range rows {
			base[name] = m // later files win on duplicate names
		}
	}

	in := io.Reader(os.Stdin)
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gvperf:", err)
			os.Exit(2)
		}
		defer f.Close()
		in = f
	}
	cur, err := ParseBench(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gvperf:", err)
		os.Exit(2)
	}

	regressions, byFamily := CompareFamilies(base, cur, Tol{Ns: *tol, Alloc: *allocTol}, familyTols)
	matched := 0
	families := make([]string, 0, len(byFamily))
	for family, n := range byFamily {
		matched += n
		families = append(families, family)
	}
	sort.Strings(families)
	fmt.Printf("gvperf: %d benchmark(s) matched %d baseline row(s) across %d file(s)\n",
		len(cur), matched, len(baselines))
	for _, family := range families {
		fmt.Printf("gvperf:   %-10s %d matched\n", family, byFamily[family])
	}
	if matched < *minMatches {
		fmt.Fprintf(os.Stderr, "gvperf: only %d benchmark(s) matched a baseline row (want >= %d) — renamed benchmarks or wrong baseline file?\n",
			matched, *minMatches)
		os.Exit(1)
	}
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "gvperf: REGRESSION", r)
		}
		os.Exit(1)
	}
	fmt.Println("gvperf: PASS")
}
