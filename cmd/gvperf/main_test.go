package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: grammarviz/internal/discord
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkComponent_DistKernelReference/ecg0606         	     300	     63286 ns/op	       0 B/op	       0 allocs/op
BenchmarkComponent_DistKernelPinned/ecg0606-8          	     300	     32060 ns/op	       5 B/op	       0 allocs/op
BenchmarkComponent_NoAllocColumns                      	     100	      1234 ns/op
BenchmarkComponent_WithMetric/x                        	      10	    500000 ns/op	        42.0 rra_calls/op	     100 B/op	       3 allocs/op
PASS
ok  	grammarviz/internal/discord	0.147s
`

func TestParseBench(t *testing.T) {
	cur, err := ParseBench(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]Measurement{
		"Component_DistKernelReference/ecg0606": {NsPerOp: 63286, AllocsPerOp: 0},
		"Component_DistKernelPinned/ecg0606":    {NsPerOp: 32060, AllocsPerOp: 0},
		"Component_NoAllocColumns":              {NsPerOp: 1234, AllocsPerOp: -1},
		"Component_WithMetric/x":                {NsPerOp: 500000, AllocsPerOp: 3},
	}
	if len(cur) != len(want) {
		t.Fatalf("parsed %d rows, want %d: %v", len(cur), len(want), cur)
	}
	for name, w := range want {
		g, ok := cur[name]
		if !ok {
			t.Errorf("missing %s", name)
			continue
		}
		if g != w {
			t.Errorf("%s = %+v, want %+v", name, g, w)
		}
	}
}

func TestNormalize(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFoo-8":          "Foo",
		"BenchmarkFoo":            "Foo",
		"BenchmarkFoo/sub-case-4": "Foo/sub-case",
		"BenchmarkA/b-2x":         "A/b-2x", // non-numeric suffix is part of the name
	}
	for in, want := range cases {
		if got := normalize(in); got != want {
			t.Errorf("normalize(%q) = %q, want %q", in, got, want)
		}
	}
}

func writeBaseline(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadBaselineShapes(t *testing.T) {
	// Direct fields, before/after indirection, and non-measurement rows in
	// one file — the union of the checked-in BENCH_*.json shapes.
	path := writeBaseline(t, `{
		"label": "x",
		"benchmarks": {
			"Direct": {"ns_per_op": 100, "allocs_per_op": 2},
			"Nested": {"before": {"ns_per_op": 900}, "after": {"ns_per_op": 300, "allocs_per_op": 0}, "note": "n"},
			"NsOnly": {"after": {"ns_per_op": 50}},
			"Scenario": {"p50_ms": 1.5, "note": "not gateable"}
		}
	}`)
	rows, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]Measurement{
		"Direct": {NsPerOp: 100, AllocsPerOp: 2},
		"Nested": {NsPerOp: 300, AllocsPerOp: 0},
		"NsOnly": {NsPerOp: 50, AllocsPerOp: -1},
	}
	if len(rows) != len(want) {
		t.Fatalf("loaded %d rows, want %d: %v", len(rows), len(want), rows)
	}
	for name, w := range want {
		if rows[name] != w {
			t.Errorf("%s = %+v, want %+v", name, rows[name], w)
		}
	}
}

func TestLoadBaselineNoBenchmarksKey(t *testing.T) {
	rows, err := LoadBaseline(writeBaseline(t, `{"scenarios": {"x": 1}}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("scenario-style file contributed rows: %v", rows)
	}
}

func TestCompareGates(t *testing.T) {
	base := map[string]Measurement{
		"A": {NsPerOp: 100, AllocsPerOp: 0},
		"B": {NsPerOp: 100, AllocsPerOp: 5},
		"C": {NsPerOp: 100, AllocsPerOp: -1},
		"D": {NsPerOp: 100, AllocsPerOp: 0}, // not in current run: ignored
	}

	t.Run("pass within tolerance", func(t *testing.T) {
		cur := map[string]Measurement{
			"A": {NsPerOp: 180, AllocsPerOp: 0},  // 1.8x < 2x limit
			"B": {NsPerOp: 90, AllocsPerOp: 5},   // improvement
			"C": {NsPerOp: 100, AllocsPerOp: 99}, // baseline has no alloc row: ns gate only
		}
		regs, matched := Compare(base, cur, 1.0, 0)
		if len(regs) != 0 {
			t.Fatalf("unexpected regressions: %v", regs)
		}
		if matched != 3 {
			t.Fatalf("matched = %d, want 3", matched)
		}
	})

	t.Run("ns regression fails", func(t *testing.T) {
		cur := map[string]Measurement{"A": {NsPerOp: 201, AllocsPerOp: 0}}
		regs, _ := Compare(base, cur, 1.0, 0)
		if len(regs) != 1 || !strings.Contains(regs[0], "ns/op") {
			t.Fatalf("regs = %v, want one ns/op regression", regs)
		}
	})

	t.Run("alloc regression fails strictly", func(t *testing.T) {
		cur := map[string]Measurement{"B": {NsPerOp: 100, AllocsPerOp: 6}}
		regs, _ := Compare(base, cur, 1.0, 0)
		if len(regs) != 1 || !strings.Contains(regs[0], "allocs/op") {
			t.Fatalf("regs = %v, want one allocs/op regression", regs)
		}
		// The same run passes with one alloc of slack.
		if regs, _ := Compare(base, cur, 1.0, 1); len(regs) != 0 {
			t.Fatalf("alloc-tol=1 should absorb one alloc: %v", regs)
		}
	})

	t.Run("missing alloc columns skip the alloc gate", func(t *testing.T) {
		cur := map[string]Measurement{"B": {NsPerOp: 100, AllocsPerOp: -1}}
		if regs, _ := Compare(base, cur, 1.0, 0); len(regs) != 0 {
			t.Fatalf("no -benchmem columns must not trip the alloc gate: %v", regs)
		}
	})
}

func TestFamily(t *testing.T) {
	cases := map[string]string{
		"Component_DistKernelPinned/ecg0606":       "kernel",
		"Component_SearchHOTSAX/tek16/Pinned":      "kernel",
		"Component_SequiturInduce/ecg15/Codes":     "induction",
		"Component_SAXDiscretize/ecg0606/Parallel": "induction",
		"Component_GrammarBuild/ecg15":             "induction",
		"Component_DensityCurve":                   "induction",
		"Component_StreamingAppend":                "serving",
		"Component_EnsembleDensity":                "serving",
		"Component_RRA/workers=2":                  "other",
		"Ablation_Reduction":                       "other",
	}
	for name, want := range cases {
		if got := Family(name); got != want {
			t.Errorf("Family(%q) = %q, want %q", name, got, want)
		}
	}
}

func TestParseFamilyTol(t *testing.T) {
	name, tol, err := parseFamilyTol("induction=5.0:24")
	if err != nil {
		t.Fatal(err)
	}
	if name != "induction" || tol != (Tol{Ns: 5.0, Alloc: 24}) {
		t.Fatalf("got %s %+v", name, tol)
	}

	// Omitted alloc part inherits the global slack, signalled by -1.
	name, tol, err = parseFamilyTol("kernel=2.5")
	if err != nil {
		t.Fatal(err)
	}
	if name != "kernel" || tol != (Tol{Ns: 2.5, Alloc: -1}) {
		t.Fatalf("got %s %+v", name, tol)
	}

	for _, bad := range []string{"", "induction", "nope=1.0", "kernel=abc", "kernel=1.0:xyz"} {
		if _, _, err := parseFamilyTol(bad); err == nil {
			t.Errorf("parseFamilyTol(%q) accepted", bad)
		}
	}
}

func TestCompareFamiliesOverrides(t *testing.T) {
	base := map[string]Measurement{
		"Component_DistKernelPinned/ecg0606": {NsPerOp: 100, AllocsPerOp: 0},
		"Component_SequiturInduce/ecg0606/c": {NsPerOp: 100, AllocsPerOp: 60},
		"Component_GrammarBuild/ecg15":       {NsPerOp: 100, AllocsPerOp: 500},
	}
	// The induction rows run 3x slower with extra pool-warm-up allocs; the
	// kernel row is flat. A global 1.0 tolerance would fail induction, a
	// global 4.0 would let a kernel slide pass — the overrides thread it.
	cur := map[string]Measurement{
		"Component_DistKernelPinned/ecg0606": {NsPerOp: 150, AllocsPerOp: 0},
		"Component_SequiturInduce/ecg0606/c": {NsPerOp: 300, AllocsPerOp: 75},
		"Component_GrammarBuild/ecg15":       {NsPerOp: 290, AllocsPerOp: 500},
	}

	regs, matched := CompareFamilies(base, cur, Tol{Ns: 1.0, Alloc: 0},
		map[string]Tol{"induction": {Ns: 4.0, Alloc: 24}})
	if len(regs) != 0 {
		t.Fatalf("overrides should absorb the induction drift: %v", regs)
	}
	if matched["kernel"] != 1 || matched["induction"] != 2 {
		t.Fatalf("matched = %v, want kernel:1 induction:2", matched)
	}

	// Without the override, both induction ns rows and the alloc drift fail,
	// each line tagged with its family.
	regs, _ = CompareFamilies(base, cur, Tol{Ns: 1.0, Alloc: 0}, nil)
	if len(regs) != 3 {
		t.Fatalf("regs = %v, want 3", regs)
	}
	for _, r := range regs {
		if !strings.Contains(r, "[induction]") {
			t.Errorf("regression line missing family tag: %q", r)
		}
	}

	// An override with Alloc -1 keeps the global slack for allocs.
	regs, _ = CompareFamilies(base, cur, Tol{Ns: 1.0, Alloc: 0},
		map[string]Tol{"induction": {Ns: 4.0, Alloc: -1}})
	if len(regs) != 1 || !strings.Contains(regs[0], "allocs/op") {
		t.Fatalf("regs = %v, want the alloc regression alone", regs)
	}
}
