// Command gvadlint runs the repo's custom static-analysis suite
// (internal/analysis/passes) over the given packages:
//
//	gvadlint [-v] [-json] [packages]    # defaults to ./...
//
// The passes mechanically enforce the invariants that keep the serving
// stack correct and fast. The flow-sensitive passes run on the CFG and
// dataflow engine in internal/analysis/cfg:
//
//	nobarego       goroutines spawn through worker.Group, never bare `go`
//	ctxdiscipline  ctx-first params; no ambient Background/TODO in library
//	               code; Ctx variants for exported series scans
//	noalloc        //gvad:noalloc functions (and their static callees) stay
//	               free of allocating constructs on non-cold paths
//	poolrelease    workspace.Get/GetKernel is matched by Put/PutKernel on
//	               every path (defer-aware, rebind-aware)
//	lockdiscipline Lock/Unlock pairing on all paths, double-lock, RWMutex
//	               up/downgrade misuse, declared //gvad:lockorder facts
//	walfirst       //gvad:walfirst functions append to the write-ahead log
//	               before mutating the stream on every path
//	errdiscipline  no silently dropped errors in library code, no error
//	               stores dead on every path, typed errors on
//	               //gvad:typederr paths
//	exhaustivemode //gvad:modes switches cover the canonical mode lists
//	               from internal/modes
//
// Diagnostics print as file:line:col: analyzer: message, and any finding
// makes the process exit 1 — `make lint` and CI treat the suite as a gate.
// With -json, diagnostics print instead as a JSON array of
// {file,line,col,pass,message} objects for machine consumption (the
// GitHub problem matcher in .github/gvadlint-problem-matcher.json parses
// the plain-text form).
//
// A finding is silenced with a `//gvad:ignore <analyzer> <reason>` comment
// on the flagged line or the line above; DESIGN.md §11 describes when that
// is acceptable. The run reports the suppression count, and a test pins it
// at zero — silencing a finding fails loudly instead of accumulating.
//
// Upstream toolchain analyzers (copylocks and friends) run via `go vet` in
// `make lint`; gvadlint deliberately carries no dependency on
// golang.org/x/tools (the framework in internal/analysis mirrors its API
// so the passes can be re-homed if that dependency is ever taken).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"grammarviz/internal/analysis"
	"grammarviz/internal/analysis/load"
	"grammarviz/internal/analysis/passes/ctxdiscipline"
	"grammarviz/internal/analysis/passes/errdiscipline"
	"grammarviz/internal/analysis/passes/exhaustivemode"
	"grammarviz/internal/analysis/passes/lockdiscipline"
	"grammarviz/internal/analysis/passes/noalloc"
	"grammarviz/internal/analysis/passes/nobarego"
	"grammarviz/internal/analysis/passes/poolrelease"
	"grammarviz/internal/analysis/passes/walfirst"
)

var analyzers = []*analysis.Analyzer{
	nobarego.Analyzer,
	ctxdiscipline.Analyzer,
	noalloc.Analyzer,
	poolrelease.Analyzer,
	lockdiscipline.Analyzer,
	walfirst.Analyzer,
	errdiscipline.Analyzer,
	exhaustivemode.Analyzer,
}

// jsonDiag is the -json wire shape of one finding.
type jsonDiag struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Pass    string `json:"pass"`
	Message string `json:"message"`
}

func main() {
	verbose := flag.Bool("v", false, "print pass/package timing")
	jsonOut := flag.Bool("json", false, "print diagnostics as JSON")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: gvadlint [-v] [-json] [packages]\n\nanalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	start := time.Now()
	prog, err := load.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gvadlint:", err)
		os.Exit(2)
	}
	loaded := time.Now()

	diags, err := analysis.Run(prog, analyzers, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gvadlint:", err)
		os.Exit(2)
	}
	suppressions := analysis.Suppressions(prog, nil)
	if *verbose {
		local := 0
		for _, p := range prog.Packages {
			if !p.Standard {
				local++
			}
		}
		fmt.Fprintf(os.Stderr, "gvadlint: %d packages (%d analyzed) loaded in %v, analyzed in %v\n",
			len(prog.Packages), local, loaded.Sub(start).Round(time.Millisecond),
			time.Since(loaded).Round(time.Millisecond))
	}
	if *jsonOut {
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{
				File:    rel(d.Position.Filename),
				Line:    d.Position.Line,
				Col:     d.Position.Column,
				Pass:    d.Analyzer,
				Message: d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "gvadlint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(rel(d.String()))
		}
	}
	if n := len(suppressions); n > 0 {
		fmt.Fprintf(os.Stderr, "gvadlint: %d //gvad:ignore suppression(s) in analyzed packages:\n", n)
		for _, s := range suppressions {
			fmt.Fprintf(os.Stderr, "  %s:%d (%s)\n",
				rel(s.Position.Filename), s.Position.Line, strings.Join(s.Analyzers, ","))
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// rel trims the working directory prefix from a path or diagnostic line so
// output stays readable.
func rel(s string) string {
	wd, err := os.Getwd()
	if err != nil {
		return s
	}
	return strings.ReplaceAll(s, wd+string(os.PathSeparator), "")
}
