// Command gvadlint runs the repo's custom static-analysis suite
// (internal/analysis/passes) over the given packages:
//
//	gvadlint [packages]    # defaults to ./...
//
// The passes mechanically enforce the invariants that keep the serving
// stack correct and fast:
//
//	nobarego       goroutines spawn through worker.Group, never bare `go`
//	ctxdiscipline  ctx-first params; no ambient Background/TODO in library
//	               code; Ctx variants for exported series scans
//	noalloc        //gvad:noalloc functions (and their static callees) stay
//	               free of allocating constructs on non-error paths
//	poolrelease    workspace.Get is matched by workspace.Put on all paths
//
// Diagnostics print as file:line:col: analyzer: message, and any finding
// makes the process exit 1 — `make lint` and CI treat the suite as a gate.
// A finding is silenced with a `//gvad:ignore <analyzer> <reason>` comment
// on the flagged line or the line above; DESIGN.md §11 describes when that
// is acceptable.
//
// Upstream toolchain analyzers (copylocks and friends) run via `go vet` in
// `make lint`; gvadlint deliberately carries no dependency on
// golang.org/x/tools (the framework in internal/analysis mirrors its API
// so the passes can be re-homed if that dependency is ever taken).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"grammarviz/internal/analysis"
	"grammarviz/internal/analysis/load"
	"grammarviz/internal/analysis/passes/ctxdiscipline"
	"grammarviz/internal/analysis/passes/noalloc"
	"grammarviz/internal/analysis/passes/nobarego"
	"grammarviz/internal/analysis/passes/poolrelease"
)

var analyzers = []*analysis.Analyzer{
	nobarego.Analyzer,
	ctxdiscipline.Analyzer,
	noalloc.Analyzer,
	poolrelease.Analyzer,
}

func main() {
	verbose := flag.Bool("v", false, "print pass/package timing")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: gvadlint [-v] [packages]\n\nanalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	start := time.Now()
	prog, err := load.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gvadlint:", err)
		os.Exit(2)
	}
	loaded := time.Now()

	diags, err := analysis.Run(prog, analyzers, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gvadlint:", err)
		os.Exit(2)
	}
	if *verbose {
		local := 0
		for _, p := range prog.Packages {
			if !p.Standard {
				local++
			}
		}
		fmt.Fprintf(os.Stderr, "gvadlint: %d packages (%d analyzed) loaded in %v, analyzed in %v\n",
			len(prog.Packages), local, loaded.Sub(start).Round(time.Millisecond),
			time.Since(loaded).Round(time.Millisecond))
	}
	for _, d := range diags {
		fmt.Println(rel(d.String()))
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// rel trims the working directory prefix from a diagnostic line so output
// stays readable.
func rel(s string) string {
	wd, err := os.Getwd()
	if err != nil {
		return s
	}
	return strings.ReplaceAll(s, wd+string(os.PathSeparator), "")
}
