package main

import (
	"testing"

	"grammarviz/internal/analysis"
	"grammarviz/internal/analysis/load"
)

// TestZeroSuppressions pins the repo's //gvad:ignore count at zero:
// findings are fixed, not silenced. Adding a suppression fails this test
// so it becomes a reviewed decision with an updated budget, never quiet
// accumulation. (Pass testdata fixtures live under testdata/ directories,
// which the loader never treats as packages, so the legitimate negative
// fixtures do not count.)
func TestZeroSuppressions(t *testing.T) {
	prog, err := load.Load("../..", "./...")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	got := analysis.Suppressions(prog, nil)
	if len(got) != 0 {
		for _, s := range got {
			t.Errorf("unexpected //gvad:ignore at %s:%d", s.Position.Filename, s.Position.Line)
		}
		t.Fatalf("suppression budget is zero; fix the finding or change the budget deliberately")
	}
}
