// Command gvbench regenerates the paper's Table 1: the number of
// distance-function calls made by brute force, HOTSAX and RRA on every
// evaluation dataset, the percentage of HOTSAX's calls that RRA avoids,
// the discord lengths, and the overlap between the algorithms' discords.
//
// Usage:
//
//	gvbench              # all rows
//	gvbench -paper       # annotate each row with the paper's reported values
//	gvbench -dataset tek14
package main

import (
	"flag"
	"fmt"
	"os"

	"grammarviz/internal/experiments"
)

func main() {
	var (
		name      = flag.String("dataset", "", "run a single dataset (default: all)")
		seed      = flag.Int64("seed", 1, "random seed for search heuristics")
		paper     = flag.Bool("paper", false, "print the paper's reported values under each row")
		baselines = flag.String("baselines", "", "compare all five detectors on the named dataset and exit")
	)
	flag.Parse()

	if *baselines != "" {
		rs, err := experiments.RunBaselines(*baselines, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gvbench:", err)
			os.Exit(1)
		}
		fmt.Print(experiments.FormatBaselines(*baselines, rs))
		return
	}

	var rows []experiments.Table1Row
	if *name != "" {
		row, err := experiments.RunRow(*name, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gvbench:", err)
			os.Exit(1)
		}
		rows = []experiments.Table1Row{row}
	} else {
		var err error
		rows, err = experiments.RunTable1(*seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gvbench:", err)
			os.Exit(1)
		}
	}
	fmt.Print(experiments.FormatTable1(rows, *paper))
	fmt.Println(`
Columns: distance-function calls per algorithm (top-1 search); Reduction =
calls RRA avoids vs HOTSAX; HS/RRA len = discord lengths; Overlap = best
overlap of the HOTSAX discord with RRA's top-3; Truth marks which
algorithms' best discord hits the planted ground truth (H = HOTSAX,
R = RRA). Brute-force counts are computed analytically, as in the paper's
largest rows. Datasets are synthetic counterparts of the paper's
recordings (see DESIGN.md), so absolute numbers differ; the shape —
RRA << HOTSAX << brute force with high overlap — is the reproduced claim.`)
}
