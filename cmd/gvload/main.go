// Command gvload is a synthetic many-tenant load generator for gvad. It
// models the traffic shape the serving layer must survive: a zipfian
// tenant mix (a few hot tenants, a long tail) where a configurable share
// of queries are exact duplicates of a tenant's canonical series (the
// coalescing / cache-hit opportunity) and the rest rotate through a pool
// of distinct series per tenant (the induction-miss churn).
//
// Usage:
//
//	gvload -self -duration 5s -concurrency 64 -tenants 16 -zipf 1.2 \
//	       -dup 0.9 -uniques 8 -series 4000 -window 60 -paa 4 -alphabet 4
//
// With -self it starts an in-process gvad on a loopback listener and
// drives that (the configuration CI's `make loadtest` smoke uses); with
// -addr it drives an already-running daemon. The report — request and
// status counts, sustained ok-req/s, latency percentiles, and the
// server's gvad_cache_*/gvad_coalesce_*/gvad_budget_* counters scraped
// from /metrics — is written as JSON to stdout (or -out), which is the
// format BENCH_3.json records.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"grammarviz/internal/modes"
	"grammarviz/internal/server"
	"grammarviz/internal/worker"
)

type config struct {
	Addr        string  `json:"addr,omitempty"`
	Self        bool    `json:"self"`
	Duration    string  `json:"duration"`
	Concurrency int     `json:"concurrency"`
	Tenants     int     `json:"tenants"`
	ZipfS       float64 `json:"zipf_s"`
	DupRate     float64 `json:"dup_rate"`
	Uniques     int     `json:"uniques"`
	SeriesLen   int     `json:"series_len"`
	Window      int     `json:"window"`
	PAA         int     `json:"paa"`
	Alphabet    int     `json:"alphabet"`
	Mode        string  `json:"mode"`
	K           int     `json:"k"`
	TimeoutMS   int64   `json:"timeout_ms"`
	Batch       int     `json:"batch"`
	Seed        int64   `json:"seed"`

	// Self-server knobs (only meaningful with -self).
	Cache         int  `json:"cache,omitempty"`
	CacheShards   int  `json:"cache_shards,omitempty"`
	MaxConcurrent int  `json:"max_concurrent,omitempty"`
	Queue         int  `json:"queue,omitempty"`
	Legacy        bool `json:"legacy,omitempty"`
}

// report is gvload's JSON output; BENCH_3.json stores these verbatim.
type report struct {
	Config    config  `json:"config"`
	ElapsedS  float64 `json:"elapsed_s"`
	Requests  int64   `json:"requests"`
	OK        int64   `json:"ok"`
	Degraded  int64   `json:"degraded"` // 200 with partial/fallback set
	CacheHits int64   `json:"cache_hits_reported"`
	Shed      int64   `json:"shed"` // 429 + 503
	Errors    int64   `json:"errors"`

	// OKPerSec counts items answered 200 per second — for batch runs each
	// batch item counts once, so single and batch runs are comparable.
	OKPerSec float64 `json:"ok_per_sec"`

	StatusCounts map[string]int64   `json:"status_counts"`
	LatencyMS    latencySummary     `json:"latency_ms"`
	Server       map[string]float64 `json:"server_metrics,omitempty"`
}

type latencySummary struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

func main() {
	var (
		cfg  config
		dur  = flag.Duration("duration", 5*time.Second, "load duration")
		out  = flag.String("out", "", "write the JSON report here instead of stdout")
		addr = flag.String("addr", "", "target gvad base URL (e.g. http://localhost:8080); empty requires -self")
	)
	flag.BoolVar(&cfg.Self, "self", false, "start an in-process gvad on a loopback listener and drive it")
	flag.IntVar(&cfg.Concurrency, "concurrency", 64, "concurrent client workers")
	flag.IntVar(&cfg.Tenants, "tenants", 16, "distinct tenants")
	flag.Float64Var(&cfg.ZipfS, "zipf", 1.2, "zipf skew across tenants (>1; 1 tenant disables)")
	flag.Float64Var(&cfg.DupRate, "dup", 0.9, "probability a query repeats the tenant's canonical series")
	flag.IntVar(&cfg.Uniques, "uniques", 8, "distinct non-canonical series per tenant")
	flag.IntVar(&cfg.SeriesLen, "series", 4000, "points per series")
	flag.IntVar(&cfg.Window, "window", 60, "SAX window")
	flag.IntVar(&cfg.PAA, "paa", 4, "SAX word length")
	flag.IntVar(&cfg.Alphabet, "alphabet", 4, "SAX alphabet")
	flag.StringVar(&cfg.Mode, "mode", modes.Density,
		"analyze mode ("+strings.Join(modes.Serving, "|")+")")
	flag.IntVar(&cfg.K, "k", 2, "discords per query (discord modes)")
	flag.Int64Var(&cfg.TimeoutMS, "timeout-ms", 10_000, "per-request budget sent in the body")
	flag.IntVar(&cfg.Batch, "batch", 0, "items per POST /v1/analyze/batch request (0 = single /v1/analyze)")
	flag.Int64Var(&cfg.Seed, "seed", 1, "seed for tenant mix and series generation")
	flag.IntVar(&cfg.Cache, "cache", 64, "self-server: detector cache capacity")
	flag.IntVar(&cfg.CacheShards, "cache-shards", 0, "self-server: cache shard count (0 = server default)")
	flag.IntVar(&cfg.MaxConcurrent, "max-concurrent", 0, "self-server: concurrent analyses (0 = GOMAXPROCS)")
	flag.IntVar(&cfg.Queue, "queue", 0, "self-server: wait-queue bound (0 = server default)")
	flag.BoolVar(&cfg.Legacy, "legacy", false, "self-server: pre-coalescing baseline (single-shard cache, no coalescing, flat semaphore admission)")
	flag.Parse()
	cfg.Addr = *addr
	cfg.Duration = dur.String()

	if err := run(cfg, *dur, *out); err != nil {
		fmt.Fprintln(os.Stderr, "gvload:", err)
		os.Exit(1)
	}
}

func run(cfg config, dur time.Duration, out string) error {
	if !cfg.Self && cfg.Addr == "" {
		return fmt.Errorf("either -addr or -self is required")
	}
	if cfg.Tenants < 1 || cfg.Concurrency < 1 || cfg.Uniques < 1 {
		return fmt.Errorf("tenants, concurrency and uniques must all be >= 1")
	}

	base := cfg.Addr
	var srv *server.Server
	if cfg.Self {
		srv = server.New(selfConfig(cfg))
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		base = "http://" + ln.Addr().String()
		sg, _ := worker.WithContext(context.Background())
		sg.Go(func() error { return srv.Serve(ln) })
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_ = srv.Shutdown(sctx)
			_ = sg.Wait()
		}()
	}
	base = strings.TrimRight(base, "/")

	bodies := buildBodies(cfg)
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        cfg.Concurrency * 2,
		MaxIdleConnsPerHost: cfg.Concurrency * 2,
	}}

	ctx, cancel := context.WithTimeout(context.Background(), dur)
	defer cancel()

	workers := make([]*loadWorker, cfg.Concurrency)
	g, gctx := worker.WithContext(ctx)
	start := time.Now()
	for i := range workers {
		w := &loadWorker{
			cfg:    cfg,
			base:   base,
			client: client,
			bodies: bodies,
			rng:    rand.New(rand.NewSource(cfg.Seed + int64(i)*7919)),
			counts: map[int]int64{},
		}
		workers[i] = w
		g.Go(func() error { return w.loop(gctx) })
	}
	err := g.Wait()
	elapsed := time.Since(start)
	// The deadline ending the run surfaces as context.DeadlineExceeded —
	// that is the normal exit, not a failure.
	if err != nil && gctx.Err() == nil {
		return err
	}

	rep := summarize(cfg, workers, elapsed)
	if scraped, err := scrapeServerMetrics(client, base); err == nil {
		rep.Server = scraped
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if out == "" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(out, enc, 0o644)
}

// selfConfig maps gvload's knobs onto the in-process server. -legacy
// reproduces the pre-coalescing serving layer: one cache shard, no
// request coalescing, and the flat GOMAXPROCS semaphore instead of
// per-tenant cost budgets — the BENCH_3 baseline.
func selfConfig(cfg config) server.Config {
	sc := server.Config{
		CacheSize:     cfg.Cache,
		CacheShards:   cfg.CacheShards,
		MaxConcurrent: cfg.MaxConcurrent,
		MaxQueue:      cfg.Queue,
	}
	if cfg.Legacy {
		sc.CacheShards = 1
		sc.DisableCoalesce = true
		sc.DisableBudget = true
	}
	return sc
}

// tenantName returns the stable name of tenant i ("t00", "t01", ...).
func tenantName(i int) string { return fmt.Sprintf("t%02d", i) }

// buildBodies pre-marshals every request body the run can send: one
// canonical series per tenant (variant 0, the duplicate-query target) and
// cfg.Uniques rotating distinct series (variants 1..Uniques). Marshaling
// up front keeps the measurement loop allocating and measuring only the
// HTTP round trip.
func buildBodies(cfg config) [][][]byte {
	bodies := make([][][]byte, cfg.Tenants)
	for t := 0; t < cfg.Tenants; t++ {
		bodies[t] = make([][]byte, cfg.Uniques+1)
		for v := 0; v <= cfg.Uniques; v++ {
			seed := cfg.Seed + int64(t)*1_000_003 + int64(v)*7907
			req := map[string]any{
				"series":     syntheticSeries(cfg.SeriesLen, seed),
				"mode":       cfg.Mode,
				"window":     cfg.Window,
				"paa":        cfg.PAA,
				"alphabet":   cfg.Alphabet,
				"k":          cfg.K,
				"timeout_ms": cfg.TimeoutMS,
				"tenant":     tenantName(t),
			}
			b, err := json.Marshal(req)
			if err != nil {
				panic(err) // static request shape; cannot fail
			}
			bodies[t][v] = b
		}
	}
	return bodies
}

// syntheticSeries builds a noisy sine with a planted frequency burst —
// the same family the repository's tests and benchmarks use.
func syntheticSeries(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	period := 40 + rng.Float64()*20
	ts := make([]float64, n)
	for i := range ts {
		ts[i] = math.Sin(2*math.Pi*float64(i)/period) + rng.NormFloat64()*0.05
	}
	at, length := n/3+rng.Intn(n/3), n/50+4
	for i := at; i < at+length && i < n; i++ {
		ts[i] = math.Sin(4*math.Pi*float64(i)/period) + rng.NormFloat64()*0.05
	}
	return ts
}

type loadWorker struct {
	cfg    config
	base   string
	client *http.Client
	bodies [][][]byte
	rng    *rand.Rand

	requests  int64
	ok        int64
	degraded  int64
	cacheHits int64
	latencies []float64 // ms, 200s only
	counts    map[int]int64
}

// itemOutcome is the per-item slice of a response the summary cares
// about; both /v1/analyze responses and batch item responses carry it.
type itemOutcome struct {
	Partial  bool `json:"partial"`
	Fallback bool `json:"fallback"`
	CacheHit bool `json:"cache_hit"`
}

type batchOutcome struct {
	Results []struct {
		Status   int          `json:"status"`
		Response *itemOutcome `json:"response"`
	} `json:"results"`
}

func (w *loadWorker) loop(ctx context.Context) error {
	var zipf *rand.Zipf
	if w.cfg.Tenants > 1 && w.cfg.ZipfS > 1 {
		zipf = rand.NewZipf(w.rng, w.cfg.ZipfS, 1, uint64(w.cfg.Tenants-1))
	}
	for ctx.Err() == nil {
		tenant := 0
		if zipf != nil {
			tenant = int(zipf.Uint64())
		}
		if w.cfg.Batch > 0 {
			w.sendBatch(ctx, tenant)
		} else {
			w.sendOne(ctx, tenant)
		}
	}
	return ctx.Err()
}

// pickBody selects the canonical duplicate with probability DupRate, a
// rotating unique series otherwise.
func (w *loadWorker) pickBody(tenant int) []byte {
	v := 0
	if w.rng.Float64() >= w.cfg.DupRate {
		v = 1 + w.rng.Intn(w.cfg.Uniques)
	}
	return w.bodies[tenant][v]
}

func (w *loadWorker) sendOne(ctx context.Context, tenant int) {
	status, body, ms, err := w.post(ctx, "/v1/analyze", tenant, w.pickBody(tenant))
	if err != nil {
		if ctx.Err() == nil {
			w.counts[-1]++
			w.requests++
		}
		return
	}
	w.requests++
	w.counts[status]++
	if status == http.StatusOK {
		w.ok++
		w.latencies = append(w.latencies, ms)
		var o itemOutcome
		if json.Unmarshal(body, &o) == nil {
			if o.Partial || o.Fallback {
				w.degraded++
			}
			if o.CacheHit {
				w.cacheHits++
			}
		}
	}
}

func (w *loadWorker) sendBatch(ctx context.Context, tenant int) {
	var buf bytes.Buffer
	buf.WriteString(`{"tenant":"` + tenantName(tenant) + `","requests":[`)
	for i := 0; i < w.cfg.Batch; i++ {
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.Write(w.pickBody(tenant))
	}
	buf.WriteString(`]}`)
	status, body, ms, err := w.post(ctx, "/v1/analyze/batch", tenant, buf.Bytes())
	if err != nil {
		if ctx.Err() == nil {
			w.counts[-1]++
			w.requests += int64(w.cfg.Batch)
		}
		return
	}
	w.requests += int64(w.cfg.Batch)
	if status != http.StatusOK {
		w.counts[status] += int64(w.cfg.Batch)
		return
	}
	var out batchOutcome
	if err := json.Unmarshal(body, &out); err != nil {
		w.counts[-1] += int64(w.cfg.Batch)
		return
	}
	perItem := ms / float64(max(1, len(out.Results)))
	for _, item := range out.Results {
		w.counts[item.Status]++
		if item.Status == http.StatusOK {
			w.ok++
			w.latencies = append(w.latencies, perItem)
			if item.Response != nil {
				if item.Response.Partial || item.Response.Fallback {
					w.degraded++
				}
				if item.Response.CacheHit {
					w.cacheHits++
				}
			}
		}
	}
}

func (w *loadWorker) post(ctx context.Context, path string, tenant int, body []byte) (status int, respBody []byte, ms float64, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.base+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Tenant", tenantName(tenant))
	start := time.Now()
	resp, err := w.client.Do(req)
	if err != nil {
		return 0, nil, 0, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, 0, err
	}
	return resp.StatusCode, out, float64(time.Since(start).Microseconds()) / 1000, nil
}

func summarize(cfg config, workers []*loadWorker, elapsed time.Duration) *report {
	rep := &report{Config: cfg, ElapsedS: elapsed.Seconds(), StatusCounts: map[string]int64{}}
	var lat []float64
	for _, w := range workers {
		rep.Requests += w.requests
		rep.OK += w.ok
		rep.Degraded += w.degraded
		rep.CacheHits += w.cacheHits
		lat = append(lat, w.latencies...)
		for status, n := range w.counts {
			key := strconv.Itoa(status)
			if status == -1 {
				key = "transport_error"
			}
			rep.StatusCounts[key] += n
			switch status {
			case http.StatusTooManyRequests, http.StatusServiceUnavailable:
				rep.Shed += n
			case http.StatusOK:
			case -1:
				rep.Errors += n
			default:
				rep.Errors += n
			}
		}
	}
	if rep.ElapsedS > 0 {
		rep.OKPerSec = float64(rep.OK) / rep.ElapsedS
	}
	sort.Float64s(lat)
	q := func(p float64) float64 {
		if len(lat) == 0 {
			return 0
		}
		i := int(p * float64(len(lat)-1))
		return lat[i]
	}
	rep.LatencyMS = latencySummary{P50: q(0.50), P90: q(0.90), P99: q(0.99), Max: q(1)}
	return rep
}

// scrapeServerMetrics pulls the gvad_cache_*, gvad_coalesce_* and
// gvad_budget_* families off /metrics so the report carries the server's
// own view of the run (inductions skipped, evictions, tokens).
func scrapeServerMetrics(client *http.Client, base string) (map[string]float64, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	out := map[string]float64{}
	for _, line := range strings.Split(string(raw), "\n") {
		if !strings.HasPrefix(line, "gvad_cache_") &&
			!strings.HasPrefix(line, "gvad_coalesce_") &&
			!strings.HasPrefix(line, "gvad_budget_") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			continue
		}
		out[name] = v
	}
	return out, nil
}
