// Command gvfigures regenerates the paper's figures on the synthetic
// dataset counterparts, writing one SVG per figure and printing a console
// summary of the reproduced observation.
//
// Usage:
//
//	gvfigures -fig 2 -dir figures/   # one figure
//	gvfigures -all  -dir figures/    # figures 1-12
//
// Figure map (paper -> output):
//
//	 1  video series + rule density curve
//	 2  ECG 0606: series / density / NN distances
//	 3  Dutch power demand: series / density / NN distances
//	 4  power demand discord weeks vs a typical week
//	 5  HOTSAX vs RRA discord ranking on the long ECG record
//	 6  Hilbert curve illustration + the worked trajectory example
//	 7  GPS commute: series / density / NN distances
//	 8  2nd RRA trajectory discord (unique path), planar view
//	 9  3rd RRA trajectory discord (skipped parking loop), planar view
//	10  discretization parameter sweep: success regions of both detectors
//	11  GrammarViz RRA view (ASCII): ranked variable-length discords
//	12  GrammarViz density view (ASCII): density shading
//	13  (extension) multiscale density vs a badly chosen single window
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"grammarviz/internal/core"
	"grammarviz/internal/datasets"
	"grammarviz/internal/experiments"
	"grammarviz/internal/hilbert"
	"grammarviz/internal/sax"
	"grammarviz/internal/timeseries"
	"grammarviz/internal/visual"
)

func main() {
	var (
		fig  = flag.Int("fig", 0, "figure number (1-12)")
		all  = flag.Bool("all", false, "regenerate every figure")
		dir  = flag.String("dir", ".", "output directory")
		seed = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fatal(err)
	}
	figs := []int{*fig}
	if *all {
		figs = []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13}
	}
	for _, n := range figs {
		if err := render(n, *dir, *seed); err != nil {
			fatal(fmt.Errorf("figure %d: %w", n, err))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gvfigures:", err)
	os.Exit(1)
}

func render(fig int, dir string, seed int64) error {
	switch fig {
	case 1:
		return densityFigure("video-gun", fig, dir, seed, false)
	case 2:
		return densityFigure("ecg0606", fig, dir, seed, true)
	case 3:
		return densityFigure("dutch-power-demand", fig, dir, seed, true)
	case 4:
		return figure4(dir, seed)
	case 5:
		return figure5(dir, seed)
	case 6:
		return figure6(dir)
	case 7:
		return figure7(dir, seed, false)
	case 8, 9:
		return figure89(fig, dir, seed)
	case 10:
		return figure10(dir, seed)
	case 11:
		return figure11(dir, seed)
	case 12:
		return figure12(dir, seed)
	case 13:
		return figure13(dir, seed)
	}
	return fmt.Errorf("unknown figure %d (know 1-13)", fig)
}

// densityFigure renders the three-panel layout of Figures 1-3.
func densityFigure(dataset string, fig int, dir string, seed int64, withNN bool) error {
	df, err := experiments.RunDensityFigure(dataset, 3, seed)
	if err != nil {
		return err
	}
	f := visual.NewFigure(960, 150)
	var discordMarks []timeseries.Interval
	for _, d := range df.Discords {
		discordMarks = append(discordMarks, d.Interval)
	}
	f.AddSeries(fmt.Sprintf("%s (n=%d), planted anomalies shaded", dataset, len(df.Dataset.Series)),
		df.Dataset.Series, "", df.Dataset.Truth, visual.ColorSecondary)
	f.AddDensity(fmt.Sprintf("rule density %s — global minima shaded", df.Dataset.Params),
		df.Pipeline.Density, df.Minima)
	if withNN {
		xs := make([]int, len(df.NN))
		hs := make([]float64, len(df.NN))
		for i, d := range df.NN {
			xs[i] = d.Interval.Start
			hs[i] = d.Dist
		}
		f.AddBars("non-self distance to nearest neighbour (rule subsequences)", len(df.Dataset.Series), xs, hs)
	}
	path := filepath.Join(dir, fmt.Sprintf("fig%02d_%s.svg", fig, dataset))
	if err := writeFigure(f, path); err != nil {
		return err
	}
	fmt.Printf("fig %d (%s): density minima %v; best RRA discord %v (len %d); truth %v -> %s\n",
		fig, dataset, df.Minima, df.Discords[0].Interval, df.Discords[0].Interval.Len(),
		df.Dataset.Truth, path)
	return nil
}

// figure4 zooms into the power-demand discord weeks.
func figure4(dir string, seed int64) error {
	df, err := experiments.RunDensityFigure("dutch-power-demand", 3, seed)
	if err != nil {
		return err
	}
	series := df.Dataset.Series
	week := 7 * 96
	f := visual.NewFigure(960, 120)
	f.AddSeries("typical week", clip(series, 4*week, week), "", nil, "")
	names := []string{"best discord", "second discord", "third discord"}
	for i, d := range df.Discords {
		start := d.Interval.Start / week * week // align to week boundary
		f.AddSeries(fmt.Sprintf("%s: week of point %d (discord [%d,%d])",
			names[i], start, d.Interval.Start, d.Interval.End),
			clip(series, start, week), visual.ColorAnomaly, nil, "")
	}
	path := filepath.Join(dir, "fig04_power_weeks.svg")
	if err := writeFigure(f, path); err != nil {
		return err
	}
	fmt.Printf("fig 4: %d discord weeks rendered -> %s\n", len(df.Discords), path)
	return nil
}

// figure5 compares discord rankings.
func figure5(dir string, seed int64) error {
	cmp, err := experiments.RunRanking("ecg300", 3, seed)
	if err != nil {
		return err
	}
	ds, err := datasets.Generate("ecg300")
	if err != nil {
		return err
	}
	f := visual.NewFigure(960, 110)
	for _, p := range cmp.Pairs {
		f.AddSeries(fmt.Sprintf("HOTSAX rank %d: [%d,%d] dist %.2f", p.Rank,
			p.Hotsax.Interval.Start, p.Hotsax.Interval.End, p.Hotsax.Dist),
			clipAround(ds.Series, p.Hotsax.Interval, 300), "", []timeseries.Interval{relative(p.Hotsax.Interval, 300)}, "")
		f.AddSeries(fmt.Sprintf("RRA rank %d: [%d,%d] len %d norm-dist %.4f", p.Rank,
			p.RRA.Interval.Start, p.RRA.Interval.End, p.RRA.Interval.Len(), p.RRA.Dist),
			clipAround(ds.Series, p.RRA.Interval, 300), visual.ColorSecondary, []timeseries.Interval{relative(p.RRA.Interval, 300)}, "")
	}
	path := filepath.Join(dir, "fig05_ranking_ecg300.svg")
	if err := writeFigure(f, path); err != nil {
		return err
	}
	fmt.Printf("fig 5: same set = %v, same order = %v -> %s\n", cmp.SameSet, cmp.SameOrder, path)
	for _, p := range cmp.Pairs {
		fmt.Printf("  rank %d: HOTSAX [%d,%d] vs RRA [%d,%d] (len %d)\n", p.Rank,
			p.Hotsax.Interval.Start, p.Hotsax.Interval.End,
			p.RRA.Interval.Start, p.RRA.Interval.End, p.RRA.Interval.Len())
	}
	return nil
}

// figure6 prints the Hilbert illustration and worked example.
func figure6(dir string) error {
	c2, err := hilbert.New(2)
	if err != nil {
		return err
	}
	fmt.Println("fig 6: second-order Hilbert curve visit order (grid rows top to bottom):")
	for y := int64(3); y >= 0; y-- {
		for x := int64(0); x < 4; x++ {
			d, err := c2.D(x, y)
			if err != nil {
				return err
			}
			fmt.Printf("%3d", d)
		}
		fmt.Println()
	}
	cells := [][2]int64{
		{0, 0}, {0, 1}, {1, 1}, {1, 1}, {1, 1}, {1, 2}, {1, 2},
		{2, 2}, {3, 2}, {2, 1}, {2, 1}, {1, 1}, {1, 0}, {1, 0},
	}
	seq, err := hilbert.TransformCells(c2, cells)
	if err != nil {
		return err
	}
	fmt.Print("worked trajectory conversion (paper: {0,3,2,2,2,7,7,8,11,13,13,2,1,1}): {")
	for i, v := range seq {
		if i > 0 {
			fmt.Print(",")
		}
		fmt.Print(int(v))
	}
	fmt.Println("}")

	// SVG: the order-2 curve path.
	f := visual.NewFigure(400, 380)
	var pts []visual.ScatterPoint
	for d := int64(0); d < c2.Cells(); d++ {
		x, y, err := c2.XY(d)
		if err != nil {
			return err
		}
		pts = append(pts, visual.ScatterPoint{X: float64(x), Y: float64(y), Color: visual.ColorSeries})
	}
	f.AddScatter("order-2 Hilbert curve cells (visit order 0..15)", pts)
	path := filepath.Join(dir, "fig06_hilbert.svg")
	if err := writeFigure(f, path); err != nil {
		return err
	}
	fmt.Println("fig 6 ->", path)
	return nil
}

// figure7 is the trajectory density figure.
func figure7(dir string, seed int64, quiet bool) error {
	tf, err := experiments.RunTrajectory(seed)
	if err != nil {
		return err
	}
	df := tf.Figure
	f := visual.NewFigure(960, 150)
	f.AddSeries("Hilbert-transformed GPS commute (truth shaded: detour, fix loss, skipped loop)",
		df.Dataset.Series, "", df.Dataset.Truth, visual.ColorSecondary)
	f.AddDensity(fmt.Sprintf("rule density %s — global minima shaded", df.Dataset.Params),
		df.Pipeline.Density, df.Minima)
	xs := make([]int, len(df.NN))
	hs := make([]float64, len(df.NN))
	for i, d := range df.NN {
		xs[i] = d.Interval.Start
		hs[i] = d.Dist
	}
	f.AddBars("non-self distance to nearest neighbour", len(df.Dataset.Series), xs, hs)
	path := filepath.Join(dir, "fig07_trajectory.svg")
	if err := writeFigure(f, path); err != nil {
		return err
	}
	fmt.Printf("fig 7: detour found by density = %v, fix loss is best RRA discord = %v -> %s\n",
		tf.DetourHitByDensity, tf.FixLossHitByRRA, path)
	return nil
}

// figure89 renders the planar trajectory with the 2nd or 3rd RRA discord
// highlighted.
func figure89(fig int, dir string, seed int64) error {
	tf, err := experiments.RunTrajectory(seed)
	if err != nil {
		return err
	}
	rank := fig - 7 // fig 8 -> 2nd discord, fig 9 -> 3rd
	if rank >= len(tf.Figure.Discords) {
		return fmt.Errorf("only %d discords found", len(tf.Figure.Discords))
	}
	d := tf.Figure.Discords[rank]
	f := visual.NewFigure(700, 620)
	var pts []visual.ScatterPoint
	for i, p := range tf.Data.Points {
		color := "#cccccc"
		if i >= d.Interval.Start && i <= d.Interval.End {
			color = visual.ColorAnomaly
		}
		pts = append(pts, visual.ScatterPoint{X: p.X, Y: p.Y, Color: color})
	}
	f.AddScatter(fmt.Sprintf("commute track, RRA discord %d highlighted [%d,%d]",
		rank+1, d.Interval.Start, d.Interval.End), pts)
	path := filepath.Join(dir, fmt.Sprintf("fig%02d_trajectory_discord%d.svg", fig, rank+1))
	if err := writeFigure(f, path); err != nil {
		return err
	}
	fmt.Printf("fig %d: discord %d at [%d,%d] (len %d, rule %d, freq %d) -> %s\n",
		fig, rank+1, d.Interval.Start, d.Interval.End, d.Interval.Len(), d.RuleID, d.Freq, path)
	return nil
}

// figure10 runs the parameter sweep.
func figure10(dir string, seed int64) error {
	res, err := experiments.RunSweep("ecg0606", experiments.DefaultSweepGrid, seed)
	if err != nil {
		return err
	}
	f := visual.NewFigure(700, 300)
	var densityPts, rraPts []visual.ScatterPoint
	for _, pt := range res.Points {
		dp := visual.ScatterPoint{X: pt.ApproxDist, Y: float64(pt.GrammarSize), Color: "#dddddd"}
		rp := dp
		if pt.DensityHit {
			dp.Color = visual.ColorDensity
		}
		if pt.RRAHit {
			rp.Color = visual.ColorAnomaly
		}
		densityPts = append(densityPts, dp)
		rraPts = append(rraPts, rp)
	}
	f.AddScatter(fmt.Sprintf("rule-density success region (%d/%d combos)", res.DensityHits, res.Valid), densityPts)
	f.AddScatter(fmt.Sprintf("RRA success region (%d/%d combos)", res.RRAHits, res.Valid), rraPts)
	path := filepath.Join(dir, "fig10_parameter_sweep.svg")
	if err := writeFigure(f, path); err != nil {
		return err
	}
	ratio := float64(res.RRAHits) / float64(maxI(res.DensityHits, 1))
	fmt.Printf("fig 10: density hits %d, RRA hits %d (ratio %.2fx; paper reports ~2x) of %d combos -> %s\n",
		res.DensityHits, res.RRAHits, ratio, res.Valid, path)
	return nil
}

// figure11 is the GrammarViz RRA table view, as ASCII.
func figure11(dir string, seed int64) error {
	df, err := experiments.RunDensityFigure("video-gun", 5, seed)
	if err != nil {
		return err
	}
	fmt.Println("fig 11 (GrammarViz 2.0 RRA view, ASCII):")
	fmt.Println(visual.Sparkline(df.Dataset.Series, 100))
	var marks []timeseries.Interval
	for _, d := range df.Discords {
		marks = append(marks, d.Interval)
	}
	fmt.Println(visual.MarkRow(len(df.Dataset.Series), 100, marks))
	fmt.Println("Rank  Position  Length  NN distance  Rule  Freq")
	for i, d := range df.Discords {
		fmt.Printf("%4d  %8d  %6d  %11.4f  %4d  %4d\n",
			i, d.Interval.Start, d.Interval.Len(), d.Dist, d.RuleID, d.Freq)
	}
	// SVG companion.
	f := visual.NewFigure(960, 150)
	f.AddSeries("video dataset with RRA discords (variable lengths)", df.Dataset.Series, "", marks, "")
	path := filepath.Join(dir, "fig11_grammarviz_rra.svg")
	if err := writeFigure(f, path); err != nil {
		return err
	}
	fmt.Println("fig 11 ->", path)
	return nil
}

// figure12 is the GrammarViz density-shading view, as ASCII.
func figure12(dir string, seed int64) error {
	df, err := experiments.RunDensityFigure("video-gun", 1, seed)
	if err != nil {
		return err
	}
	fmt.Println("fig 12 (GrammarViz 2.0 density view, ASCII; blank = white = anomaly):")
	fmt.Println(visual.Sparkline(df.Dataset.Series, 100))
	fmt.Println(visual.DensityShadeRow(df.Pipeline.Density, 100))
	f := visual.NewFigure(960, 150)
	f.AddSeries("video dataset", df.Dataset.Series, "", df.Minima, "")
	f.AddDensity("rule density (white intervals = anomalies)", df.Pipeline.Density, df.Minima)
	path := filepath.Join(dir, "fig12_grammarviz_density.svg")
	if err := writeFigure(f, path); err != nil {
		return err
	}
	fmt.Println("fig 12 ->", path)
	return nil
}

// figure13 is an extension figure: the multiscale density curve keeps the
// planted ECG anomaly at its minimum even when built from deliberately
// mischosen windows, where a single badly-sized window's curve does not.
func figure13(dir string, seed int64) error {
	ds, err := datasets.Generate("ecg0606")
	if err != nil {
		return err
	}
	pipe, err := core.Analyze(ds.Series, core.Config{Params: sax.Params{Window: 400, PAA: 4, Alphabet: 4}, Seed: seed})
	if err != nil {
		return err
	}
	multi, err := core.MultiscaleDensity(ds.Series, []int{60, 120, 240, 400}, 4, 4, sax.ReductionExact)
	if err != nil {
		return err
	}
	multiMinima := core.MultiscaleMinima(multi, 400, 0.55)

	f := visual.NewFigure(960, 140)
	f.AddSeries("ecg0606 (true anomaly shaded)", ds.Series, "", ds.Truth, visual.ColorSecondary)
	f.AddDensity("single window 400 (mischosen): rule density", pipe.Density, nil)
	f.AddSeries("multiscale density over windows {60,120,240,400} (minima shaded)",
		multi, visual.ColorDensity, multiMinima, visual.ColorAnomaly)
	path := filepath.Join(dir, "fig13_multiscale.svg")
	if err := writeFigure(f, path); err != nil {
		return err
	}
	fmt.Printf("fig 13 (extension): multiscale minima %v vs truth %v -> %s\n",
		multiMinima, ds.Truth, path)
	return nil
}

func writeFigure(f *visual.Figure, path string) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.Render(out); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

func clip(ts []float64, start, n int) []float64 {
	if start < 0 {
		start = 0
	}
	end := start + n
	if end > len(ts) {
		end = len(ts)
	}
	if start >= end {
		return nil
	}
	return ts[start:end]
}

// clipAround extracts the interval plus pad points of context either side.
func clipAround(ts []float64, iv timeseries.Interval, pad int) []float64 {
	return clip(ts, iv.Start-pad, iv.Len()+2*pad)
}

// relative shifts iv into the coordinates of clipAround's output.
func relative(iv timeseries.Interval, pad int) timeseries.Interval {
	start := pad
	if iv.Start-pad < 0 {
		start = iv.Start
	}
	return timeseries.Interval{Start: start, End: start + iv.Len() - 1}
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
