package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRenderFastFigures(t *testing.T) {
	dir := t.TempDir()
	// The fast figures: 2 (small ECG), 6 (pure Hilbert), 12 (density view).
	for _, fig := range []int{2, 6, 12} {
		if err := render(fig, dir, 1); err != nil {
			t.Fatalf("figure %d: %v", fig, err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 3 {
		t.Fatalf("only %d SVGs written", len(entries))
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(string(data), "<svg") {
			t.Errorf("%s is not an SVG", e.Name())
		}
		if !strings.HasSuffix(e.Name(), ".svg") {
			t.Errorf("unexpected file %s", e.Name())
		}
	}
}

func TestRenderUnknownFigure(t *testing.T) {
	if err := render(99, t.TempDir(), 1); err == nil {
		t.Error("unknown figure should error")
	}
	if err := render(0, t.TempDir(), 1); err == nil {
		t.Error("figure 0 should error")
	}
}

func TestClipHelpers(t *testing.T) {
	ts := []float64{0, 1, 2, 3, 4, 5}
	if got := clip(ts, 2, 2); len(got) != 2 || got[0] != 2 {
		t.Errorf("clip = %v", got)
	}
	if got := clip(ts, -5, 3); len(got) != 3 || got[0] != 0 {
		t.Errorf("clip negative start = %v", got)
	}
	if got := clip(ts, 4, 10); len(got) != 2 {
		t.Errorf("clip past end = %v", got)
	}
	if got := clip(ts, 10, 2); got != nil {
		t.Errorf("clip out of range = %v", got)
	}
}
