package main

import (
	"context"
	"encoding/json"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"grammarviz"
	"grammarviz/internal/timeseries"
)

func writeTestSeries(t *testing.T) string {
	t.Helper()
	ts := make([]float64, 900)
	for i := range ts {
		ts[i] = math.Sin(2 * math.Pi * float64(i) / 45)
	}
	for i := 450; i < 495; i++ {
		ts[i] = 0.2
	}
	path := filepath.Join(t.TempDir(), "series.csv")
	if err := timeseries.WriteCSVFile(path, ts); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunModes(t *testing.T) {
	path := writeTestSeries(t)
	for _, mode := range []string{"rra", "density", "hotsax", "brute", "ensemble"} {
		t.Run(mode, func(t *testing.T) {
			if err := run(context.Background(), path, 45, 4, 4, mode, 2, 0, -1, 0, 1, false, "", false, 0, false, false); err != nil {
				t.Errorf("run(%s): %v", mode, err)
			}
		})
	}
}

func TestRunDensityThreshold(t *testing.T) {
	path := writeTestSeries(t)
	if err := run(context.Background(), path, 45, 4, 4, "density", 1, 0, 3, 5, 1, false, "", true, 0, false, false); err != nil {
		t.Errorf("run: %v", err)
	}
}

func TestRunPlotAndSVG(t *testing.T) {
	path := writeTestSeries(t)
	svg := filepath.Join(t.TempDir(), "out.svg")
	if err := run(context.Background(), path, 45, 4, 4, "rra", 1, 0, -1, 0, 1, true, svg, true, 0, false, false); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(svg)
	if err != nil {
		t.Fatalf("read svg: %v", err)
	}
	if !strings.Contains(string(data), "<svg") {
		t.Error("SVG output malformed")
	}
}

func TestRunAutoParams(t *testing.T) {
	path := writeTestSeries(t)
	if err := run(context.Background(), path, 0, 4, 4, "rra", 1, 0, -1, 0, 1, false, "", false, 0, false, false); err != nil {
		t.Errorf("auto-params run: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(context.Background(), filepath.Join(t.TempDir(), "missing.csv"), 45, 4, 4, "rra", 1, 0, -1, 0, 1, false, "", false, 0, false, false); err == nil {
		t.Error("missing file should error")
	}
	path := writeTestSeries(t)
	if err := run(context.Background(), path, 45, 4, 4, "bogus", 1, 0, -1, 0, 1, false, "", false, 0, false, false); err == nil {
		t.Error("unknown mode should error")
	}
	if err := run(context.Background(), path, 5000, 4, 4, "rra", 1, 0, -1, 0, 1, false, "", false, 0, false, false); err == nil {
		t.Error("oversize window should error")
	}
}

func TestRunInterpolatesNaN(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nan.csv")
	ts := make([]float64, 400)
	for i := range ts {
		ts[i] = math.Sin(2 * math.Pi * float64(i) / 40)
	}
	ts[100] = math.NaN()
	if err := timeseries.WriteCSVFile(path, ts); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), path, 40, 4, 4, "rra", 1, 0, -1, 0, 1, false, "", false, 0, false, false); err != nil {
		t.Errorf("NaN series should be interpolated, got %v", err)
	}
}

func TestRunDetrend(t *testing.T) {
	path := writeTestSeries(t)
	if err := run(context.Background(), path, 45, 4, 4, "rra", 1, 0, -1, 0, 1, false, "", false, 101, false, false); err != nil {
		t.Errorf("detrend run: %v", err)
	}
}

func TestRunExtensionModes(t *testing.T) {
	path := writeTestSeries(t)
	for _, mode := range []string{"surprise", "multiscale", "motifs"} {
		t.Run(mode, func(t *testing.T) {
			if err := run(context.Background(), path, 45, 4, 4, mode, 3, 0, -1, 0, 1, false, "", false, 0, false, false); err != nil {
				t.Errorf("run(%s): %v", mode, err)
			}
		})
	}
}

func TestRunJSONOutput(t *testing.T) {
	path := writeTestSeries(t)
	// Capture stdout to validate the JSON shape.
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run(context.Background(), path, 45, 4, 4, "rra", 2, 0, -1, 0, 1, false, "", false, 0, true, false)
	w.Close()
	os.Stdout = old
	if runErr != nil {
		t.Fatalf("run: %v", runErr)
	}
	data, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	// Skip the human preamble lines; the JSON object starts at '{'.
	idx := strings.IndexByte(string(data), '{')
	if idx < 0 {
		t.Fatalf("no JSON in output: %q", data)
	}
	var rep struct {
		Algorithm     string `json:"algorithm"`
		DistanceCalls int64  `json:"distance_calls"`
		Discords      []struct {
			Start, End int
			Distance   float64
		} `json:"discords"`
	}
	if err := json.Unmarshal(data[idx:], &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, data[idx:])
	}
	if rep.Algorithm != "RRA" || rep.DistanceCalls <= 0 || len(rep.Discords) == 0 {
		t.Errorf("JSON report = %+v", rep)
	}
}

// TestRunEnsembleJSON drives the parameter-free mode end to end with
// -json: the report carries the algorithm, the sampled member list, and
// at least one anomaly interval near the planted flat region.
func TestRunEnsembleJSON(t *testing.T) {
	path := writeTestSeries(t)
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run(context.Background(), path, 0, 4, 4, "ensemble", 3, 8, -1, 0, 1, false, "", false, 0, true, false)
	w.Close()
	os.Stdout = old
	if runErr != nil {
		t.Fatalf("run: %v", runErr)
	}
	data, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	idx := strings.IndexByte(string(data), '{')
	if idx < 0 {
		t.Fatalf("no JSON in output: %q", data)
	}
	var rep struct {
		Algorithm   string `json:"algorithm"`
		MembersUsed int    `json:"members_used"`
		Members     []struct {
			Window int  `json:"window"`
			Used   bool `json:"used"`
		} `json:"members"`
		Anomalies []struct{ Start, End int } `json:"anomalies"`
	}
	if err := json.Unmarshal(data[idx:], &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, data[idx:])
	}
	if rep.Algorithm != "ensemble density" || rep.MembersUsed == 0 || len(rep.Members) == 0 {
		t.Errorf("JSON report = %+v", rep)
	}
	hit := false
	for _, a := range rep.Anomalies {
		if a.End >= 400 && a.Start <= 545 {
			hit = true
		}
	}
	if !hit {
		t.Errorf("no anomaly near the planted region: %+v", rep.Anomalies)
	}
}

// TestValidateFlags checks the up-front flag validation: every
// nonsensical combination fails fast with a message naming the flag,
// and sensible combinations pass.
func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name                          string
		window, paa, alphabet         int
		mode                          string
		k, members, threshold, minLen, detrend int
		timeout                       time.Duration
		frag                          string // "" = must pass
	}{
		{"defaults ok", 120, 4, 4, "rra", 3, 0, -1, 0, 0, 0, ""},
		{"auto window ok", 0, 4, 4, "density", 3, 0, -1, 0, 0, 0, ""},
		{"negative k", 120, 4, 4, "rra", -2, 0, -1, 0, 0, 0, "-k must be"},
		{"zero k", 120, 4, 4, "rra", 0, 0, -1, 0, 0, 0, "-k must be"},
		{"window below paa", 3, 4, 4, "rra", 3, 0, -1, 0, 0, 0, "-paa (4) must not exceed -window (3)"},
		{"negative window", -5, 4, 4, "rra", 3, 0, -1, 0, 0, 0, "-window must be"},
		{"zero paa", 120, 0, 4, "rra", 3, 0, -1, 0, 0, 0, "-paa must be"},
		{"alphabet too small", 120, 4, 1, "rra", 3, 0, -1, 0, 0, 0, "-alphabet must be"},
		{"alphabet too large", 120, 4, 27, "rra", 3, 0, -1, 0, 0, 0, "-alphabet must be"},
		{"unknown mode", 120, 4, 4, "psychic", 3, 0, -1, 0, 0, 0, "unknown -mode"},
		{"hotsax needs window", 0, 4, 4, "hotsax", 3, 0, -1, 0, 0, 0, "explicit -window"},
		{"brute needs window", 0, 4, 4, "brute", 3, 0, -1, 0, 0, 0, "explicit -window"},
		{"bad threshold", 120, 4, 4, "density", 3, 0, -2, 0, 0, 0, "-threshold must be"},
		{"negative minlen", 120, 4, 4, "density", 3, 0, -1, -1, 0, 0, "-minlen must be"},
		{"negative detrend", 120, 4, 4, "rra", 3, 0, -1, 0, -3, 0, "-detrend must be"},
		{"negative timeout", 120, 4, 4, "rra", 3, 0, -1, 0, 0, -time.Second, "-timeout must be"},
		{"ensemble ok without window", 0, 4, 4, "ensemble", 3, 0, -1, 0, 0, 0, ""},
		{"negative members", 120, 4, 4, "ensemble", 3, -2, -1, 0, 0, 0, "-members must be"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateFlags(tc.window, tc.paa, tc.alphabet, tc.mode, tc.k, tc.members, tc.threshold, tc.minLen, tc.detrend, tc.timeout)
			if tc.frag == "" {
				if err != nil {
					t.Fatalf("valid flags rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatal("bad flags accepted")
			}
			if !strings.Contains(err.Error(), tc.frag) {
				t.Errorf("error %q does not mention %q", err, tc.frag)
			}
		})
	}
}

// TestJSONReportCarriesDegradedStatus checks the -json satellite fix: the
// report includes the partial/fallback status so a consumer can tell an
// exact result from one degraded by the -timeout ladder.
func TestJSONReportCarriesDegradedStatus(t *testing.T) {
	discords := []grammarviz.Discord{{Start: 10, End: 50, Distance: -1, NNStart: -1, RuleID: -1}}
	for _, tc := range []struct{ partial, fallback bool }{
		{false, false}, {true, false}, {true, true},
	} {
		old := os.Stdout
		r, w, err := os.Pipe()
		if err != nil {
			t.Fatal(err)
		}
		os.Stdout = w
		emitErr := emitDiscords("RRA", discords, 0, tc.partial, tc.fallback, true)
		w.Close()
		os.Stdout = old
		if emitErr != nil {
			t.Fatal(emitErr)
		}
		data, err := io.ReadAll(r)
		if err != nil {
			t.Fatal(err)
		}
		var rep map[string]any
		if err := json.Unmarshal(data, &rep); err != nil {
			t.Fatalf("invalid JSON: %v\n%s", err, data)
		}
		if got, ok := rep["partial"]; !ok || got != tc.partial {
			t.Errorf("partial = %v (present %v), want %v", got, ok, tc.partial)
		}
		if got, ok := rep["fallback"]; !ok || got != tc.fallback {
			t.Errorf("fallback = %v (present %v), want %v", got, ok, tc.fallback)
		}
	}
}
