// Command gva (GrammarViz Anomaly) discovers anomalies in a univariate
// time series read from a CSV file (one value per line; '#' comments and
// blank lines are skipped).
//
// Usage:
//
//	gva -data series.csv -window 120 -paa 4 -alphabet 4 [flags]
//
// Modes (-mode):
//
//	rra        exact variable-length discord discovery (default)
//	density    approximate anomalies from the rule density curve
//	surprise   density scored statistically (Poisson left-tail p-values)
//	multiscale density averaged over windows/2, window, window*2
//	ensemble   parameter-free: sampled parameterizations, fused scores
//	motifs     the inverse query: top recurring variable-length patterns
//	hotsax     fixed-length HOTSAX baseline
//	brute      fixed-length brute-force baseline
//
// Examples:
//
//	gva -data ecg.csv -window 120 -paa 4 -alphabet 4 -k 3
//	gva -data power.csv -window 750 -paa 6 -alphabet 3 -mode density
//	gva -data ecg.csv -window 120 -paa 4 -alphabet 4 -plot -svg out.svg
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"grammarviz"
	"grammarviz/internal/modes"
	"grammarviz/internal/timeseries"
	"grammarviz/internal/visual"
)

func main() {
	var (
		dataPath  = flag.String("data", "", "CSV file with one value per line (required)")
		window    = flag.Int("window", 120, "sliding window length (0 = auto-select from the data)")
		paa       = flag.Int("paa", 4, "SAX word length (PAA segments)")
		alphabet  = flag.Int("alphabet", 4, "SAX alphabet size")
		mode      = flag.String("mode", "rra", "rra | density | surprise | multiscale | ensemble | motifs | hotsax | brute")
		k         = flag.Int("k", 3, "number of discords to report (rra/hotsax/brute)")
		members   = flag.Int("members", 0, "ensemble member count (ensemble mode; 0 = default)")
		threshold = flag.Int("threshold", -1, "density threshold (density mode; -1 = global minima)")
		minLen    = flag.Int("minlen", 0, "minimum anomaly length (density mode)")
		seed      = flag.Int64("seed", 1, "random seed for search heuristics")
		plot      = flag.Bool("plot", false, "print ASCII panels of the series and density curve")
		svgPath   = flag.String("svg", "", "write an SVG figure to this path")
		stats     = flag.Bool("stats", false, "print discretization/grammar diagnostics")
		detrend   = flag.Int("detrend", 0, "subtract a moving average of this many points before analysis")
		jsonOut   = flag.Bool("json", false, "print results as JSON (rra/density/hotsax/brute modes)")
		timeout   = flag.Duration("timeout", 0, "wall-clock budget for the whole analysis (e.g. 30s; 0 = none); rra mode degrades to partial/density results at the deadline")
	)
	flag.Parse()
	if *dataPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := validateFlags(*window, *paa, *alphabet, *mode, *k, *members, *threshold, *minLen, *detrend, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "gva:", err)
		os.Exit(2)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if err := run(ctx, *dataPath, *window, *paa, *alphabet, *mode, *k, *members, *threshold, *minLen, *seed, *plot, *svgPath, *stats, *detrend, *jsonOut, *timeout > 0); err != nil {
		fmt.Fprintln(os.Stderr, "gva:", err)
		os.Exit(1)
	}
}

// validateFlags rejects nonsensical flag combinations up front with a
// message naming the flag, instead of letting them surface as a cryptic
// error (or silently wrong output) deep inside the pipeline.
func validateFlags(window, paa, alphabet int, mode string, k, members, threshold, minLen, detrend int, timeout time.Duration) error {
	//gvad:modes CLI
	switch mode {
	case modes.RRA, modes.Density, modes.Surprise, modes.Multiscale,
		modes.Ensemble, modes.Motifs, modes.HOTSAX, modes.Brute:
	default:
		return fmt.Errorf("unknown -mode %q (want %s)", mode, modes.OneOf(modes.CLI))
	}
	if members < 0 {
		return fmt.Errorf("-members must be >= 0 (0 selects the default), got %d", members)
	}
	if window < 0 {
		return fmt.Errorf("-window must be >= 0 (0 auto-selects from the data), got %d", window)
	}
	if window == 0 && (mode == modes.HOTSAX || mode == modes.Brute) {
		return fmt.Errorf("-mode %s needs an explicit -window (auto-selection covers the grammar modes only)", mode)
	}
	if paa < 1 {
		return fmt.Errorf("-paa must be >= 1, got %d", paa)
	}
	if window > 0 && paa > window {
		return fmt.Errorf("-paa (%d) must not exceed -window (%d)", paa, window)
	}
	if alphabet < 2 || alphabet > 26 {
		return fmt.Errorf("-alphabet must be in 2..26, got %d", alphabet)
	}
	if k < 1 {
		return fmt.Errorf("-k must be >= 1, got %d", k)
	}
	if threshold < -1 {
		return fmt.Errorf("-threshold must be >= -1 (-1 selects global minima), got %d", threshold)
	}
	if minLen < 0 {
		return fmt.Errorf("-minlen must be >= 0, got %d", minLen)
	}
	if detrend < 0 {
		return fmt.Errorf("-detrend must be >= 0 (0 disables detrending), got %d", detrend)
	}
	if timeout < 0 {
		return fmt.Errorf("-timeout must be >= 0 (0 disables the budget), got %v", timeout)
	}
	return nil
}

func run(ctx context.Context, dataPath string, window, paa, alphabet int, mode string, k, members, threshold, minLen int, seed int64, plot bool, svgPath string, stats bool, detrend int, jsonOut, bounded bool) error {
	ts, err := timeseries.ReadCSVFile(dataPath)
	if err != nil {
		return err
	}
	if timeseries.HasNaN(ts) {
		if ts, err = grammarviz.Interpolate(ts); err != nil {
			return err
		}
		fmt.Println("note: NaN/Inf values interpolated")
	}
	if detrend > 0 {
		if ts, err = grammarviz.Detrend(ts, detrend); err != nil {
			return err
		}
		fmt.Printf("detrended with a %d-point moving average\n", detrend)
	}
	fmt.Printf("loaded %d points from %s\n", len(ts), dataPath)

	// Ensemble mode is parameter-free: it neither needs the SAX flags nor
	// the single-parameter detector, so it runs before auto-selection.
	if mode == modes.Ensemble {
		return runEnsemble(ctx, ts, members, seed, jsonOut, plot, svgPath)
	}

	opts := grammarviz.Options{Window: window, PAA: paa, Alphabet: alphabet, Seed: seed}
	if window <= 0 {
		suggested, err := grammarviz.SuggestOptions(ts)
		if err != nil {
			return fmt.Errorf("window auto-selection: %w", err)
		}
		suggested.Seed = seed
		opts = suggested
		window, paa, alphabet = opts.Window, opts.PAA, opts.Alphabet
		fmt.Printf("auto-selected parameters: window=%d paa=%d alphabet=%d\n", window, paa, alphabet)
	}

	// The distance-baseline modes bypass grammar induction entirely.
	//gvad:modes CLI except rra,density,surprise,multiscale,ensemble,motifs
	switch mode {
	case modes.HOTSAX:
		discords, calls, err := grammarviz.HOTSAXDiscords(ts, window, paa, alphabet, k, seed)
		if err != nil {
			return err
		}
		return emitDiscords("HOTSAX", discords, calls, false, false, jsonOut)
	case modes.Brute:
		discords, calls, err := grammarviz.BruteForceDiscords(ts, window, k)
		if err != nil {
			return err
		}
		return emitDiscords("brute force", discords, calls, false, false, jsonOut)
	}

	det, err := grammarviz.NewCtx(ctx, ts, opts)
	if err != nil {
		return err
	}
	if stats {
		d := det.Diagnose()
		fmt.Printf("words %d/%d (reduction %.1f%%), rules %d, grammar size %d, approx dist %.3f, zero density %.1f%%\n",
			d.Words, d.RawWindows, 100*d.ReductionRatio, d.NumRules, d.GrammarSize,
			d.ApproxDistance, 100*d.ZeroDensity)
	}

	var marks []grammarviz.Interval
	// Grammar-detector modes; ensemble and the distance baselines were
	// dispatched above.
	//gvad:modes CLI except ensemble,hotsax,brute
	switch mode {
	case modes.RRA:
		var discords []grammarviz.Discord
		var calls int64
		var partial, fallback bool
		algo := "RRA"
		if bounded {
			res, err := det.DiscordsBestEffort(ctx, k)
			if err != nil {
				return err
			}
			discords, calls = res.Discords, res.DistCalls
			partial, fallback = res.Partial, res.Fallback
			switch {
			case res.Fallback:
				algo = "RRA (deadline hit — density-minima fallback, no distances)"
			case res.Partial:
				algo = fmt.Sprintf("RRA (deadline hit — partial, %d of %d discords)", len(discords), k)
			}
		} else {
			var err error
			discords, calls, err = det.DiscordsWithStats(k)
			if err != nil {
				return err
			}
		}
		if err := emitDiscords(algo, discords, calls, partial, fallback, jsonOut); err != nil {
			return err
		}
		for _, d := range discords {
			marks = append(marks, d.Interval())
		}
	case modes.Density:
		var anomalies []grammarviz.Anomaly
		if threshold < 0 {
			anomalies = det.GlobalMinima()
			fmt.Println("density global-minima anomalies:")
		} else {
			anomalies = det.DensityAnomalies(threshold, minLen)
			fmt.Printf("density anomalies below threshold %d:\n", threshold)
		}
		for i, a := range anomalies {
			fmt.Printf("  %2d. [%d,%d] len=%d min-density=%d mean=%.1f\n",
				i+1, a.Start, a.End, a.Len(), a.MinDensity, a.MeanDensity)
			marks = append(marks, a.Interval())
		}
	case modes.Surprise:
		anomalies := det.SurpriseAnomalies(2, minLen)
		fmt.Println("statistically surprising low-coverage intervals (p < 10^-2):")
		for i, a := range anomalies {
			fmt.Printf("  %2d. [%d,%d] surprise=%.1f (p ~ 10^-%.1f)\n",
				i+1, a.Start, a.End, a.Surprise, a.Surprise)
			marks = append(marks, a.Interval())
		}
	case modes.Multiscale:
		curve, err := grammarviz.MultiscaleDensityCtx(ctx, ts,
			[]int{window / 2, window, window * 2}, paa, alphabet, 0)
		if err != nil {
			return err
		}
		fmt.Println("multiscale density anomalies:")
		for i, a := range grammarviz.MultiscaleAnomalies(curve, window*2, 0.3) {
			fmt.Printf("  %2d. [%d,%d] len=%d\n", i+1, a.Start, a.End, a.Len())
			marks = append(marks, a)
		}
	case modes.Motifs:
		fmt.Printf("top %d recurring patterns (motifs):\n", k)
		for i, m := range det.Motifs(k) {
			fmt.Printf("  %2d. rule R%d: %d occurrences, mean length %.0f, first at [%d,%d]\n",
				i+1, m.RuleID, m.Frequency, m.MeanLen,
				m.Occurrences[0].Start, m.Occurrences[0].End)
		}
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}

	if plot {
		fmt.Println()
		fmt.Print(visual.Panel("series", ts, 100, 10))
		fmt.Println(markRow(len(ts), 100, marks))
		curve := det.RuleDensity()
		fmt.Print(visual.Panel("rule density", intsToFloats(curve), 100, 6))
		fmt.Println("shading:", visual.DensityShadeRow(curve, 100))
	}
	if svgPath != "" {
		if err := writeSVG(svgPath, ts, det.RuleDensity(), marks); err != nil {
			return err
		}
		fmt.Println("wrote", svgPath)
	}
	return nil
}

// ensembleReport is the JSON shape of -mode ensemble -json.
type ensembleReport struct {
	Algorithm   string                      `json:"algorithm"`
	MembersUsed int                         `json:"members_used"`
	Members     []grammarviz.EnsembleMember `json:"members"`
	Anomalies   []grammarviz.Interval       `json:"anomalies"`
}

// runEnsemble is the parameter-free path: sample, induce per member,
// fuse, threshold — no window, PAA, or alphabet asked of the user.
func runEnsemble(ctx context.Context, ts []float64, members int, seed int64, jsonOut, plot bool, svgPath string) error {
	res, err := grammarviz.EnsembleDensityCtx(ctx, ts, grammarviz.EnsembleOptions{Members: members, Seed: seed})
	if err != nil {
		return err
	}
	anomalies := res.Anomalies(0.3)
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(ensembleReport{
			Algorithm: "ensemble density", MembersUsed: res.Used,
			Members: res.Members, Anomalies: anomalies,
		}); err != nil {
			return err
		}
	} else {
		fmt.Printf("ensemble density anomalies (%d of %d sampled members used):\n", res.Used, len(res.Members))
		for i, a := range anomalies {
			agree := 0.0
			for j := a.Start; j <= a.End && j < len(res.Agreement); j++ {
				if res.Agreement[j] > agree {
					agree = res.Agreement[j]
				}
			}
			fmt.Printf("  %2d. [%d,%d] len=%d member-agreement=%.0f%%\n",
				i+1, a.Start, a.End, a.End-a.Start+1, 100*agree)
		}
	}
	if plot {
		fmt.Println()
		fmt.Print(visual.Panel("series", ts, 100, 10))
		fmt.Println(markRow(len(ts), 100, anomalies))
		fmt.Print(visual.Panel("fused ensemble score", res.Score, 100, 6))
	}
	if svgPath != "" {
		ivs := make([]timeseries.Interval, len(anomalies))
		for i, a := range anomalies {
			ivs[i] = timeseries.Interval{Start: a.Start, End: a.End}
		}
		fig := visual.NewFigure(960, 160)
		fig.AddSeries("series with ensemble anomalies", ts, "", ivs, "")
		fig.AddSeries("fused ensemble score", res.Score, "", ivs, "")
		f, err := os.Create(svgPath)
		if err != nil {
			return err
		}
		if err := fig.Render(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Println("wrote", svgPath)
	}
	return nil
}

// discordReport is the JSON shape emitted with -json. Partial and
// Fallback mirror DiscordResult, so a consumer can tell an exact result
// from one degraded by the -timeout ladder.
type discordReport struct {
	Algorithm     string               `json:"algorithm"`
	DistanceCalls int64                `json:"distance_calls"`
	Partial       bool                 `json:"partial"`
	Fallback      bool                 `json:"fallback"`
	Discords      []grammarviz.Discord `json:"discords"`
}

func emitDiscords(algo string, discords []grammarviz.Discord, calls int64, partial, fallback, jsonOut bool) error {
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(discordReport{
			Algorithm: algo, DistanceCalls: calls,
			Partial: partial, Fallback: fallback, Discords: discords,
		})
	}
	fmt.Printf("%s discords (%d distance calls):\n", algo, calls)
	for i, d := range discords {
		fmt.Printf("  %2d. [%d,%d] len=%d dist=%.4f nn@%d\n",
			i+1, d.Start, d.End, d.Len(), d.Distance, d.NNStart)
	}
	return nil
}

func markRow(n, width int, marks []grammarviz.Interval) string {
	ivs := make([]timeseries.Interval, len(marks))
	for i, m := range marks {
		ivs[i] = timeseries.Interval{Start: m.Start, End: m.End}
	}
	return visual.MarkRow(n, width, ivs)
}

func writeSVG(path string, ts []float64, curve []int, marks []grammarviz.Interval) error {
	ivs := make([]timeseries.Interval, len(marks))
	for i, m := range marks {
		ivs[i] = timeseries.Interval{Start: m.Start, End: m.End}
	}
	fig := visual.NewFigure(960, 160)
	fig.AddSeries("series with detected anomalies", ts, "", ivs, "")
	fig.AddDensity("rule density curve", curve, ivs)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fig.Render(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func intsToFloats(in []int) []float64 {
	out := make([]float64, len(in))
	for i, v := range in {
		out[i] = float64(v)
	}
	return out
}
