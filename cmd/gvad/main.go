// Command gvad (GrammarViz Anomaly Daemon) serves grammar-based anomaly
// detection over HTTP.
//
// Usage:
//
//	gvad [-addr :8080] [-cache 64] [-cache-shards 8] [-max-concurrent N]
//	     [-queue M] [-budget-capacity T] [-max-batch 64]
//
// Endpoints:
//
//	POST /v1/analyze        JSON anomaly query: density | rra | hotsax | besteffort
//	POST /v1/analyze/batch  request set fanned across the worker pool with
//	                        per-item outcomes (one failing item degrades
//	                        itself, not the batch)
//	POST /v1/stream             open a durable streaming session (id + resume token)
//	POST /v1/stream/{id}/append feed a chunk of points, receive new words +
//	                            closing-window anomaly scores
//	GET  /v1/stream/{id}        session state summary
//	DELETE /v1/stream/{id}      close the session and delete its state
//	GET  /healthz           liveness probe
//	GET  /metrics           Prometheus text-format metrics (request counters,
//	                        latency histogram, cache/coalesce/budget stats,
//	                        and gvad_mem_* heap gauges sampled at scrape)
//	GET  /debug/pprof/      net/http/pprof profiles — only with -pprof
//
// Example:
//
//	gvad -addr :8080 &
//	curl -s localhost:8080/v1/analyze -H 'X-Tenant: team-a' -d '{
//	  "mode": "besteffort", "window": 120, "paa": 4, "alphabet": 4,
//	  "k": 3, "timeout_ms": 2000, "series": [ ... ]
//	}'
//
// Repeated queries against the same series and options are served from a
// sharded LRU detector cache (the induced grammar is reused), and
// concurrent identical cache misses coalesce into a single induction.
// Admission charges each request a cost (series length × mode weight)
// against a tenant-keyed token budget woken in proportional fair-share
// order; overload is shed with 429/503 carrying a Retry-After. -legacy
// (= -cache-shards 1 -no-coalesce -no-budget) restores the original
// single-lock FIFO serving path for A/B measurement.
//
// With -state-dir set, streaming sessions are durable: every append chunk
// is written to a per-session write-ahead log (fsync policy from -fsync)
// before the detector sees it, snapshots compact the log once it outgrows
// the checkpoint by -compact-factor, and on boot every session found in
// the state directory is restored from snapshot + log replay. Sessions
// whose state is corrupt are quarantined (renamed aside with a .corrupt
// suffix and counted in gvad_sessions_quarantined_total) rather than
// failing boot. On SIGINT/SIGTERM the daemon marks itself draining
// (work endpoints answer 503 + Retry-After: 1), waits -drain-notice for
// load balancers to notice, checkpoints dirty sessions, then drains
// in-flight requests before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"syscall"
	"time"

	"grammarviz/internal/memlog"
	"grammarviz/internal/server"
	"grammarviz/internal/worker"
)

func main() {
	var (
		addr           = flag.String("addr", ":8080", "listen address")
		cacheSize      = flag.Int("cache", 64, "detector cache capacity (entries)")
		cacheShards    = flag.Int("cache-shards", 0, "detector cache shards, rounded to a power of two (0 = 8, -1 = 1)")
		maxConcurrent  = flag.Int("max-concurrent", 0, "concurrent analyses (0 = GOMAXPROCS)")
		queue          = flag.Int("queue", 0, "admission wait-queue bound (0 = 2x max-concurrent, -1 = none)")
		budgetCapacity = flag.Int64("budget-capacity", 0, "admission cost capacity in tokens (0 = max-concurrent x default slot cost)")
		noCoalesce     = flag.Bool("no-coalesce", false, "disable coalescing of concurrent identical inductions")
		noBudget       = flag.Bool("no-budget", false, "replace cost-budget admission with the legacy flat semaphore")
		maxBatch       = flag.Int("max-batch", 64, "most requests accepted in one /v1/analyze/batch call")
		legacy         = flag.Bool("legacy", false, "pre-coalescing baseline: -cache-shards 1 -no-coalesce -no-budget")
		defTimeout     = flag.Duration("default-timeout", 30*time.Second, "budget for requests that name none (-1s = none)")
		maxTimeout     = flag.Duration("max-timeout", 5*time.Minute, "cap on per-request budgets (-1s = uncapped)")
		maxSeries      = flag.Int("max-series", 2_000_000, "longest accepted series in points (-1 = uncapped)")
		drain          = flag.Duration("drain", 30*time.Second, "shutdown grace period for in-flight requests")
		enablePprof    = flag.Bool("pprof", false, "serve net/http/pprof profiles under /debug/pprof/")

		stateDir      = flag.String("state-dir", "", "directory for durable streaming sessions (empty = memory-only)")
		fsync         = flag.String("fsync", "always", "session WAL fsync policy: always | interval | off")
		fsyncInterval = flag.Duration("fsync-interval", 100*time.Millisecond, "flush period for -fsync interval")
		sessionTTL    = flag.Duration("session-ttl", 15*time.Minute, "evict sessions idle this long (durable ones restore on next touch; -1s = never)")
		maxSessions   = flag.Int("max-sessions", 1024, "most concurrently open streaming sessions")
		compactFactor = flag.Int("compact-factor", 4, "compact a session WAL once it outgrows the snapshot this many times")
		segmentBytes  = flag.Int64("segment-bytes", 4<<20, "rotate session WAL segments at this size")
		drainNotice   = flag.Duration("drain-notice", 0, "after a shutdown signal, keep answering 503s this long before checkpointing (lets load balancers notice)")
	)
	flag.Parse()
	if *legacy {
		*cacheShards = -1
		*noCoalesce = true
		*noBudget = true
	}
	policy, err := memlog.ParseSyncPolicy(*fsync)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gvad:", err)
		os.Exit(2)
	}
	cfg := server.Config{
		CacheSize:       *cacheSize,
		CacheShards:     *cacheShards,
		MaxConcurrent:   *maxConcurrent,
		MaxQueue:        *queue,
		BudgetCapacity:  *budgetCapacity,
		DisableCoalesce: *noCoalesce,
		DisableBudget:   *noBudget,
		MaxBatch:        *maxBatch,
		DefaultTimeout:  *defTimeout,
		MaxTimeout:      *maxTimeout,
		MaxSeriesLen:    *maxSeries,
		EnablePprof:     *enablePprof,
		StateDir:        *stateDir,
		SessionTTL:      *sessionTTL,
		MaxSessions:     *maxSessions,
		FsyncPolicy:     policy,
		FsyncInterval:   *fsyncInterval,
		SegmentBytes:    *segmentBytes,
		CompactFactor:   *compactFactor,
		WriteDelay:      walWriteDelay(),
	}
	if err := run(*addr, cfg, *drain, *drainNotice); err != nil {
		fmt.Fprintln(os.Stderr, "gvad:", err)
		os.Exit(1)
	}
}

// walWriteDelay reads GVAD_WAL_WRITE_DELAY_MS, a crash-test hook that
// widens the torn-write window between a WAL record's header and payload
// so a SIGKILL can land in the middle of an append. Unset in production.
func walWriteDelay() func() {
	ms := os.Getenv("GVAD_WAL_WRITE_DELAY_MS")
	if ms == "" {
		return nil
	}
	d, err := strconv.Atoi(ms)
	if err != nil || d <= 0 {
		return nil
	}
	return func() { time.Sleep(time.Duration(d) * time.Millisecond) }
}

func run(addr string, cfg server.Config, drain, drainNotice time.Duration) error {
	logger := log.New(os.Stderr, "gvad: ", log.LstdFlags)
	cfg.Logf = logger.Printf
	srv := server.New(cfg)
	if cfg.EnablePprof {
		logger.Printf("pprof enabled at /debug/pprof/")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Recover durable sessions BEFORE accepting traffic: a client that
	// resumes against a half-recovered daemon would see 404s for sessions
	// that are about to come back.
	if cfg.StateDir != "" {
		restored, quarantined, err := srv.RecoverSessions(ctx)
		if err != nil {
			return fmt.Errorf("recover sessions: %w", err)
		}
		if restored > 0 || quarantined > 0 {
			logger.Printf("recovered %d session(s), quarantined %d", restored, quarantined)
		}
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	logger.Printf("listening on %s (GOMAXPROCS=%d)", ln.Addr(), runtime.GOMAXPROCS(0))

	// Both the accept loop and the drain watcher run on a worker.Group —
	// the same panic-containment and sibling-cancellation discipline the
	// analysis pipeline uses (and that gvadlint's nobarego pass enforces).
	// The group context ends when a signal arrives (parent cancelled) or
	// when Serve fails (sibling error cancels the group); the watcher then
	// drains in-flight requests, after which Serve returns and Wait
	// delivers the first real error.
	g, gctx := worker.WithContext(ctx)
	g.Go(func() error { return srv.Serve(ln) })
	g.Go(func() error { return srv.RunSessionJanitor(gctx, time.Minute) })
	g.Go(func() error {
		<-gctx.Done()
		if ctx.Err() == nil {
			return nil // Serve failed on its own; nothing to drain
		}
		// Shutdown order matters: mark draining first so every new
		// request gets a clean 503 + Retry-After while we wind down,
		// give load balancers a moment to notice, checkpoint every
		// dirty session while the process is still healthy, and only
		// then close the listener and wait out in-flight requests.
		srv.StartDraining()
		if drainNotice > 0 {
			logger.Printf("draining: rejecting new work for %s before checkpoint", drainNotice)
			time.Sleep(drainNotice)
		}
		if err := srv.CheckpointSessions(context.Background()); err != nil {
			logger.Printf("checkpoint on shutdown: %v", err)
		}
		logger.Printf("shutting down, draining in-flight requests (up to %s)", drain)
		sctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		return nil
	})
	err = g.Wait()
	srv.CloseSessions()
	if err != nil {
		return err
	}
	if ctx.Err() != nil {
		logger.Printf("drained cleanly")
	}
	return nil
}
