// Command gvad (GrammarViz Anomaly Daemon) serves grammar-based anomaly
// detection over HTTP.
//
// Usage:
//
//	gvad [-addr :8080] [-cache 64] [-max-concurrent N] [-queue M]
//
// Endpoints:
//
//	POST /v1/analyze  JSON anomaly query: density | rra | hotsax | besteffort
//	GET  /healthz     liveness probe
//	GET  /metrics     Prometheus text-format metrics (request counters,
//	                  latency histogram, cache stats, and gvad_mem_* heap /
//	                  allocation gauges sampled at scrape)
//	GET  /debug/pprof/ net/http/pprof profiles — only with -pprof
//
// Example:
//
//	gvad -addr :8080 &
//	curl -s localhost:8080/v1/analyze -d '{
//	  "mode": "besteffort", "window": 120, "paa": 4, "alphabet": 4,
//	  "k": 3, "timeout_ms": 2000, "series": [ ... ]
//	}'
//
// Repeated queries against the same series and options are served from an
// LRU detector cache (the induced grammar is reused); concurrency is
// bounded by an admission semaphore sized off GOMAXPROCS with a bounded
// wait queue that sheds overload with 429. On SIGINT/SIGTERM the daemon
// stops accepting connections and drains in-flight requests before
// exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"grammarviz/internal/server"
	"grammarviz/internal/worker"
)

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		cacheSize     = flag.Int("cache", 64, "detector cache capacity (entries)")
		maxConcurrent = flag.Int("max-concurrent", 0, "concurrent analyses (0 = GOMAXPROCS)")
		queue         = flag.Int("queue", 0, "wait-queue bound beyond the slots (0 = 2x max-concurrent, -1 = none)")
		defTimeout    = flag.Duration("default-timeout", 30*time.Second, "budget for requests that name none (-1s = none)")
		maxTimeout    = flag.Duration("max-timeout", 5*time.Minute, "cap on per-request budgets (-1s = uncapped)")
		maxSeries     = flag.Int("max-series", 2_000_000, "longest accepted series in points (-1 = uncapped)")
		drain         = flag.Duration("drain", 30*time.Second, "shutdown grace period for in-flight requests")
		enablePprof   = flag.Bool("pprof", false, "serve net/http/pprof profiles under /debug/pprof/")
	)
	flag.Parse()
	if err := run(*addr, *cacheSize, *maxConcurrent, *queue, *defTimeout, *maxTimeout, *maxSeries, *drain, *enablePprof); err != nil {
		fmt.Fprintln(os.Stderr, "gvad:", err)
		os.Exit(1)
	}
}

func run(addr string, cacheSize, maxConcurrent, queue int, defTimeout, maxTimeout time.Duration, maxSeries int, drain time.Duration, enablePprof bool) error {
	logger := log.New(os.Stderr, "gvad: ", log.LstdFlags)
	srv := server.New(server.Config{
		CacheSize:      cacheSize,
		MaxConcurrent:  maxConcurrent,
		MaxQueue:       queue,
		DefaultTimeout: defTimeout,
		MaxTimeout:     maxTimeout,
		MaxSeriesLen:   maxSeries,
		EnablePprof:    enablePprof,
		Logf:           logger.Printf,
	})
	if enablePprof {
		logger.Printf("pprof enabled at /debug/pprof/")
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	logger.Printf("listening on %s (GOMAXPROCS=%d)", ln.Addr(), runtime.GOMAXPROCS(0))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Both the accept loop and the drain watcher run on a worker.Group —
	// the same panic-containment and sibling-cancellation discipline the
	// analysis pipeline uses (and that gvadlint's nobarego pass enforces).
	// The group context ends when a signal arrives (parent cancelled) or
	// when Serve fails (sibling error cancels the group); the watcher then
	// drains in-flight requests, after which Serve returns and Wait
	// delivers the first real error.
	g, gctx := worker.WithContext(ctx)
	g.Go(func() error { return srv.Serve(ln) })
	g.Go(func() error {
		<-gctx.Done()
		if ctx.Err() == nil {
			return nil // Serve failed on its own; nothing to drain
		}
		logger.Printf("shutting down, draining in-flight requests (up to %s)", drain)
		sctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		return nil
	})
	if err := g.Wait(); err != nil {
		return err
	}
	if ctx.Err() != nil {
		logger.Printf("drained cleanly")
	}
	return nil
}
