// Command gvad (GrammarViz Anomaly Daemon) serves grammar-based anomaly
// detection over HTTP.
//
// Usage:
//
//	gvad [-addr :8080] [-cache 64] [-cache-shards 8] [-max-concurrent N]
//	     [-queue M] [-budget-capacity T] [-max-batch 64]
//
// Endpoints:
//
//	POST /v1/analyze        JSON anomaly query: density | rra | hotsax | besteffort
//	POST /v1/analyze/batch  request set fanned across the worker pool with
//	                        per-item outcomes (one failing item degrades
//	                        itself, not the batch)
//	GET  /healthz           liveness probe
//	GET  /metrics           Prometheus text-format metrics (request counters,
//	                        latency histogram, cache/coalesce/budget stats,
//	                        and gvad_mem_* heap gauges sampled at scrape)
//	GET  /debug/pprof/      net/http/pprof profiles — only with -pprof
//
// Example:
//
//	gvad -addr :8080 &
//	curl -s localhost:8080/v1/analyze -H 'X-Tenant: team-a' -d '{
//	  "mode": "besteffort", "window": 120, "paa": 4, "alphabet": 4,
//	  "k": 3, "timeout_ms": 2000, "series": [ ... ]
//	}'
//
// Repeated queries against the same series and options are served from a
// sharded LRU detector cache (the induced grammar is reused), and
// concurrent identical cache misses coalesce into a single induction.
// Admission charges each request a cost (series length × mode weight)
// against a tenant-keyed token budget woken in proportional fair-share
// order; overload is shed with 429/503 carrying a Retry-After. -legacy
// (= -cache-shards 1 -no-coalesce -no-budget) restores the original
// single-lock FIFO serving path for A/B measurement. On SIGINT/SIGTERM
// the daemon stops accepting connections and drains in-flight requests
// before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"grammarviz/internal/server"
	"grammarviz/internal/worker"
)

func main() {
	var (
		addr           = flag.String("addr", ":8080", "listen address")
		cacheSize      = flag.Int("cache", 64, "detector cache capacity (entries)")
		cacheShards    = flag.Int("cache-shards", 0, "detector cache shards, rounded to a power of two (0 = 8, -1 = 1)")
		maxConcurrent  = flag.Int("max-concurrent", 0, "concurrent analyses (0 = GOMAXPROCS)")
		queue          = flag.Int("queue", 0, "admission wait-queue bound (0 = 2x max-concurrent, -1 = none)")
		budgetCapacity = flag.Int64("budget-capacity", 0, "admission cost capacity in tokens (0 = max-concurrent x default slot cost)")
		noCoalesce     = flag.Bool("no-coalesce", false, "disable coalescing of concurrent identical inductions")
		noBudget       = flag.Bool("no-budget", false, "replace cost-budget admission with the legacy flat semaphore")
		maxBatch       = flag.Int("max-batch", 64, "most requests accepted in one /v1/analyze/batch call")
		legacy         = flag.Bool("legacy", false, "pre-coalescing baseline: -cache-shards 1 -no-coalesce -no-budget")
		defTimeout     = flag.Duration("default-timeout", 30*time.Second, "budget for requests that name none (-1s = none)")
		maxTimeout     = flag.Duration("max-timeout", 5*time.Minute, "cap on per-request budgets (-1s = uncapped)")
		maxSeries      = flag.Int("max-series", 2_000_000, "longest accepted series in points (-1 = uncapped)")
		drain          = flag.Duration("drain", 30*time.Second, "shutdown grace period for in-flight requests")
		enablePprof    = flag.Bool("pprof", false, "serve net/http/pprof profiles under /debug/pprof/")
	)
	flag.Parse()
	if *legacy {
		*cacheShards = -1
		*noCoalesce = true
		*noBudget = true
	}
	cfg := server.Config{
		CacheSize:       *cacheSize,
		CacheShards:     *cacheShards,
		MaxConcurrent:   *maxConcurrent,
		MaxQueue:        *queue,
		BudgetCapacity:  *budgetCapacity,
		DisableCoalesce: *noCoalesce,
		DisableBudget:   *noBudget,
		MaxBatch:        *maxBatch,
		DefaultTimeout:  *defTimeout,
		MaxTimeout:      *maxTimeout,
		MaxSeriesLen:    *maxSeries,
		EnablePprof:     *enablePprof,
	}
	if err := run(*addr, cfg, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "gvad:", err)
		os.Exit(1)
	}
}

func run(addr string, cfg server.Config, drain time.Duration) error {
	logger := log.New(os.Stderr, "gvad: ", log.LstdFlags)
	cfg.Logf = logger.Printf
	srv := server.New(cfg)
	if cfg.EnablePprof {
		logger.Printf("pprof enabled at /debug/pprof/")
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	logger.Printf("listening on %s (GOMAXPROCS=%d)", ln.Addr(), runtime.GOMAXPROCS(0))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Both the accept loop and the drain watcher run on a worker.Group —
	// the same panic-containment and sibling-cancellation discipline the
	// analysis pipeline uses (and that gvadlint's nobarego pass enforces).
	// The group context ends when a signal arrives (parent cancelled) or
	// when Serve fails (sibling error cancels the group); the watcher then
	// drains in-flight requests, after which Serve returns and Wait
	// delivers the first real error.
	g, gctx := worker.WithContext(ctx)
	g.Go(func() error { return srv.Serve(ln) })
	g.Go(func() error {
		<-gctx.Done()
		if ctx.Err() == nil {
			return nil // Serve failed on its own; nothing to drain
		}
		logger.Printf("shutting down, draining in-flight requests (up to %s)", drain)
		sctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		return nil
	})
	if err := g.Wait(); err != nil {
		return err
	}
	if ctx.Err() != nil {
		logger.Printf("drained cleanly")
	}
	return nil
}
