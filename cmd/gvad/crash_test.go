package main

// Kill-recovery property test: a real gvad subprocess is SIGKILLed at
// randomized points while clients stream points into durable sessions —
// including mid-WAL-write, with the torn-write window widened via
// GVAD_WAL_WRITE_DELAY_MS — then restarted. After every crash the
// surviving state must let each client resume exactly where the server
// says it stopped, and once all points are delivered the daemon's
// sessions must be byte-identical to never-crashed reference streams:
// every emitted word and novelty score matches, and the final
// word/rule counts agree.
//
// The child process is this same test binary re-exec'd with
// GVAD_CRASHTEST_CHILD=1 (see TestMain), so it runs under the same
// -race instrumentation as the test.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"grammarviz"
	"grammarviz/internal/memlog"
	"grammarviz/internal/server"
)

func TestMain(m *testing.M) {
	if os.Getenv("GVAD_CRASHTEST_CHILD") == "1" {
		crashChild()
		return
	}
	os.Exit(m.Run())
}

// crashChild is the daemon side of the crash test: a real run() with a
// durable state dir, strict fsync, and the torn-write hook armed when
// the parent asks for it.
func crashChild() {
	cfg := server.Config{
		StateDir:    os.Getenv("GVAD_CRASHTEST_STATEDIR"),
		FsyncPolicy: memlog.SyncAlways,
		WriteDelay:  walWriteDelay(),
	}
	if err := run("127.0.0.1:0", cfg, 2*time.Second, 0); err != nil {
		fmt.Fprintln(os.Stderr, "gvad child:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// daemon wraps one child process incarnation.
type daemon struct {
	cmd *exec.Cmd
	url string
}

func startDaemon(t *testing.T, stateDir string, extraEnv ...string) *daemon {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"GVAD_CRASHTEST_CHILD=1",
		"GVAD_CRASHTEST_STATEDIR="+stateDir,
	)
	cmd.Env = append(cmd.Env, extraEnv...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// The daemon logs "listening on 127.0.0.1:PORT (...)" once it accepts.
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				rest := line[i+len("listening on "):]
				if j := strings.IndexByte(rest, ' '); j > 0 {
					rest = rest[:j]
				}
				select {
				case addrCh <- rest:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return &daemon{cmd: cmd, url: "http://" + addr}
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("daemon never reported a listen address")
		return nil
	}
}

func (d *daemon) kill() {
	d.cmd.Process.Kill() // SIGKILL: no drain, no checkpoint, no deferred cleanup
	d.cmd.Wait()
}

type crashClient struct {
	http http.Client
}

func (c *crashClient) do(method, url, token string, body, out any) (int, error) {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return 0, err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return 0, err
	}
	if token != "" {
		req.Header.Set("X-Resume-Token", token)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, err
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(data, out); err != nil {
			return resp.StatusCode, fmt.Errorf("decode %s: %w (%s)", url, err, data)
		}
	}
	return resp.StatusCode, nil
}

func crashSeries(n int) []float64 {
	pts := make([]float64, n)
	for i := range pts {
		pts[i] = math.Sin(2*math.Pi*float64(i)/40) + 0.005*math.Cos(float64(i*i%97))
	}
	return pts
}

func TestKillRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash test")
	}
	t.Run("fast-writes", func(t *testing.T) { killRecovery(t, 42) })
	t.Run("torn-write-window", func(t *testing.T) {
		killRecovery(t, 1337, "GVAD_WAL_WRITE_DELAY_MS=2")
	})
}

func killRecovery(t *testing.T, seed int64, extraEnv ...string) {
	const (
		sessions = 3
		total    = 1600
		chunk    = 40
		rounds   = 3 // SIGKILL twice, finish on the third incarnation
	)
	rng := rand.New(rand.NewSource(seed))
	pts := crashSeries(total)

	// Reference: the events a never-interrupted stream emits, keyed by
	// offset, plus its final retention stats.
	ref, err := grammarviz.NewStream(grammarviz.Options{Window: 40, PAA: 4, Alphabet: 5})
	if err != nil {
		t.Fatal(err)
	}
	refEvents := map[int]grammarviz.StreamEvent{}
	for _, v := range pts {
		if ev, ok, err := ref.Append(v); err != nil {
			t.Fatal(err)
		} else if ok {
			refEvents[ev.Offset] = ev
		}
	}
	refStats := ref.MemStats()

	stateDir := t.TempDir()
	client := &crashClient{http: http.Client{Timeout: 10 * time.Second}}
	opts := server.StreamOpenRequest{Window: 40, PAA: 4, Alphabet: 5}

	var creds [sessions]server.StreamOpenResponse
	var sent [sessions]int

	checkEvents := func(events []server.StreamEventJSON) {
		t.Helper()
		for _, ev := range events {
			want, ok := refEvents[ev.Offset]
			if !ok || want.Word != ev.Word || want.Novelty != ev.Novelty {
				t.Fatalf("event at offset %d diverged from reference: got %+v want %+v", ev.Offset, ev, want)
			}
		}
	}

	// appendNext sends session i's next chunk with an explicit offset.
	// Returns false when the daemon died mid-request (crash round) — the
	// chunk may or may not have landed; resync decides after restart.
	appendNext := func(d *daemon, i int) bool {
		end := min(sent[i]+chunk, total)
		if sent[i] >= end {
			return true
		}
		off := sent[i]
		var resp server.StreamAppendResponse
		status, err := client.do(http.MethodPost, d.url+"/v1/stream/"+creds[i].ID+"/append",
			creds[i].ResumeToken, server.StreamAppendRequest{Points: pts[sent[i]:end], Offset: &off}, &resp)
		if err != nil {
			return false // connection died: kill landed during this request
		}
		if status != http.StatusOK {
			t.Fatalf("append session %d offset %d: status %d", i, off, status)
		}
		checkEvents(resp.Events)
		sent[i] = resp.Len
		return true
	}

	resync := func(d *daemon, i int) {
		var st server.StreamStateResponse
		status, err := client.do(http.MethodGet, d.url+"/v1/stream/"+creds[i].ID, creds[i].ResumeToken, nil, &st)
		if err != nil || status != http.StatusOK {
			t.Fatalf("resync session %d: %d %v", i, status, err)
		}
		// Durability contract: everything acknowledged before the kill
		// must survive; at most one unacknowledged in-flight chunk may
		// additionally have landed.
		if st.Len < sent[i] || st.Len > sent[i]+chunk {
			t.Fatalf("session %d resumed at %d, acknowledged %d (chunk %d)", i, st.Len, sent[i], chunk)
		}
		sent[i] = st.Len
	}

	for round := 0; round < rounds; round++ {
		d := startDaemon(t, stateDir, extraEnv...)
		if round == 0 {
			for i := range creds {
				status, err := client.do(http.MethodPost, d.url+"/v1/stream", "", opts, &creds[i])
				if err != nil || status != http.StatusCreated {
					t.Fatalf("open session %d: %d %v", i, status, err)
				}
			}
		} else {
			for i := range creds {
				resync(d, i)
			}
		}

		lastRound := round == rounds-1
		if lastRound {
			for i := 0; i < sessions; i++ {
				for sent[i] < total {
					if !appendNext(d, i) {
						t.Fatalf("daemon died in the no-kill round (session %d at %d)", i, sent[i])
					}
				}
			}
		} else {
			// Feed chunks round-robin, then SIGKILL while one more append
			// is in flight — with the write-delay hook armed this lands
			// inside a WAL record write, producing a torn tail.
			steps := 4 + rng.Intn(8)
			for s := 0; s < steps; s++ {
				appendNext(d, s%sessions)
			}
			victim := rng.Intn(sessions)
			off := sent[victim]
			end := min(off+chunk, total)
			if off < end {
				// Captured outside the goroutine: it shares nothing
				// mutable with the main test goroutine, and whether its
				// chunk landed is decided by resync after restart.
				id, token, points := creds[victim].ID, creds[victim].ResumeToken, pts[off:end]
				done := make(chan struct{})
				go func() {
					defer close(done)
					var resp server.StreamAppendResponse
					client.do(http.MethodPost, d.url+"/v1/stream/"+id+"/append",
						token, server.StreamAppendRequest{Points: points, Offset: &off}, &resp)
				}()
				time.Sleep(time.Duration(rng.Intn(4)) * time.Millisecond)
				d.kill()
				<-done
			} else {
				d.kill()
			}
			continue
		}

		// All points delivered: the daemon's sessions must match the
		// never-crashed reference exactly.
		for i := range creds {
			var st server.StreamStateResponse
			status, err := client.do(http.MethodGet, d.url+"/v1/stream/"+creds[i].ID, creds[i].ResumeToken, nil, &st)
			if err != nil || status != http.StatusOK {
				t.Fatalf("final state session %d: %d %v", i, status, err)
			}
			if st.Len != total || st.Words != refStats.Words || st.Rules != refStats.Rules {
				t.Fatalf("session %d diverged after %d crashes: len=%d words=%d rules=%d, reference len=%d words=%d rules=%d",
					i, rounds-1, st.Len, st.Words, st.Rules, total, refStats.Words, refStats.Rules)
			}
		}
		d.kill()
	}
}
