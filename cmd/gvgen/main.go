// Command gvgen generates the synthetic evaluation datasets (the stand-ins
// for the paper's Table 1 recordings) as CSV files.
//
// Usage:
//
//	gvgen -list                          # list dataset names
//	gvgen -dataset ecg0606 -out ecg.csv  # write a series
//	gvgen -dataset ecg0606 -truth        # print ground-truth intervals
//	gvgen -all -dir data/                # write every dataset
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"grammarviz/internal/datasets"
	"grammarviz/internal/timeseries"
)

func main() {
	var (
		name  = flag.String("dataset", "", "dataset name (see -list)")
		out   = flag.String("out", "", "output CSV path (default <dataset>.csv)")
		list  = flag.Bool("list", false, "list known dataset names")
		truth = flag.Bool("truth", false, "print ground-truth anomaly intervals")
		all   = flag.Bool("all", false, "generate every dataset")
		dir   = flag.String("dir", ".", "output directory for -all")
	)
	flag.Parse()

	if *list {
		for _, n := range datasets.Names() {
			ds, err := datasets.Generate(n)
			if err != nil {
				fmt.Fprintln(os.Stderr, "gvgen:", err)
				os.Exit(1)
			}
			fmt.Printf("%-20s %7d points, params %s, %d truth intervals\n",
				n, len(ds.Series), ds.Params, len(ds.Truth))
		}
		return
	}
	if *all {
		for _, n := range datasets.Names() {
			if err := write(n, filepath.Join(*dir, n+".csv"), false); err != nil {
				fmt.Fprintln(os.Stderr, "gvgen:", err)
				os.Exit(1)
			}
		}
		return
	}
	if *name == "" {
		flag.Usage()
		os.Exit(2)
	}
	path := *out
	if path == "" {
		path = *name + ".csv"
	}
	if err := write(*name, path, *truth); err != nil {
		fmt.Fprintln(os.Stderr, "gvgen:", err)
		os.Exit(1)
	}
}

func write(name, path string, printTruth bool) error {
	ds, err := datasets.Generate(name)
	if err != nil {
		return err
	}
	if printTruth {
		for i, iv := range ds.Truth {
			fmt.Printf("truth %d: [%d,%d] len=%d\n", i+1, iv.Start, iv.End, iv.Len())
		}
		return nil
	}
	if err := timeseries.WriteCSVFile(path, ds.Series); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d points, recommended params %s\n", path, len(ds.Series), ds.Params)
	return nil
}
