package main

import (
	"path/filepath"
	"testing"

	"grammarviz/internal/timeseries"
)

func TestWriteDataset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.csv")
	if err := write("tek16", path, false); err != nil {
		t.Fatalf("write: %v", err)
	}
	ts, err := timeseries.ReadCSVFile(path)
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	if len(ts) != 5000 {
		t.Errorf("got %d points", len(ts))
	}
}

func TestWriteTruthOnly(t *testing.T) {
	// -truth prints and must not create the file.
	path := filepath.Join(t.TempDir(), "none.csv")
	if err := write("tek16", path, true); err != nil {
		t.Fatalf("write -truth: %v", err)
	}
	if _, err := timeseries.ReadCSVFile(path); err == nil {
		t.Error("truth mode should not write the CSV")
	}
}

func TestWriteUnknown(t *testing.T) {
	if err := write("nope", filepath.Join(t.TempDir(), "x.csv"), false); err == nil {
		t.Error("unknown dataset should error")
	}
}
