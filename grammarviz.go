package grammarviz

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"sort"

	"grammarviz/internal/core"
	"grammarviz/internal/density"
	"grammarviz/internal/grammar"
	"grammarviz/internal/sax"
	"grammarviz/internal/timeseries"
)

// Reduction selects the numerosity-reduction strategy applied during
// discretization. The default, ReduceExact, is the paper's strategy:
// consecutive identical SAX words are recorded once.
type Reduction int

const (
	// ReduceExact drops a window whose word equals the previous recorded
	// word (the paper's default).
	ReduceExact Reduction = iota
	// ReduceNone records every window.
	ReduceNone
	// ReduceMINDIST drops a window whose word is within MINDIST 0 of the
	// previous recorded word.
	ReduceMINDIST
)

// Options configures a Detector. Window, PAA and Alphabet are the three
// SAX discretization parameters the paper sweeps; see Section 5.2 for
// guidance (pick Window near the phenomenon's cycle length — a heartbeat,
// a week — and remember it only seeds the search: reported anomalies may
// be shorter or longer).
type Options struct {
	Window   int // sliding window length (required)
	PAA      int // SAX word length (required)
	Alphabet int // SAX alphabet size (required, 2..26)

	Reduction Reduction // numerosity reduction strategy; default ReduceExact
	Seed      int64     // seed for the search heuristics' tie-breaking

	// Workers bounds the goroutines the parallel stages (discretization,
	// discord search) may use: 0 selects all cores, 1 forces serial
	// execution. Every result is byte-identical for every worker count —
	// the knob trades only wall-clock time.
	Workers int
}

// ErrShortSeries is returned when the series cannot accommodate the
// requested window.
var ErrShortSeries = errors.New("grammarviz: series shorter than window")

// ErrInvalidValue is the sentinel wrapped by every rejection of a
// non-finite input value (NaN or ±Inf). The wrapping error names the first
// offending index; match with errors.Is. Use Interpolate to clean a series
// before analysis.
var ErrInvalidValue = timeseries.ErrInvalidValue

// Detector is an analyzed time series: the induced grammar, the rule
// density curve, and the machinery to answer anomaly queries. Create one
// with New. A Detector is immutable and safe for concurrent readers.
type Detector struct {
	pipeline *core.Pipeline
}

// New analyzes ts and returns a ready Detector. The series is retained by
// reference and must not be modified afterwards. NaN or infinite values
// are rejected with an ErrInvalidValue-wrapped error naming the first bad
// index; use Interpolate to clean the series first.
func New(ts []float64, opts Options) (*Detector, error) {
	return NewCtx(context.Background(), ts, opts)
}

// NewCtx is New with cooperative cancellation: discretization and grammar
// induction poll ctx at bounded intervals and return a ctx.Err()-wrapped
// error when the context is cancelled or its deadline passes. With a
// never-cancelled context the Detector is identical to New's.
func NewCtx(ctx context.Context, ts []float64, opts Options) (*Detector, error) {
	if opts.Window > len(ts) {
		return nil, fmt.Errorf("%w: window=%d n=%d", ErrShortSeries, opts.Window, len(ts))
	}
	var red sax.Reduction
	switch opts.Reduction {
	case ReduceExact:
		red = sax.ReductionExact
	case ReduceNone:
		red = sax.ReductionNone
	case ReduceMINDIST:
		red = sax.ReductionMINDIST
	default:
		return nil, fmt.Errorf("grammarviz: unknown reduction %d", opts.Reduction)
	}
	p, err := core.AnalyzeCtx(ctx, ts, core.Config{
		Params:    sax.Params{Window: opts.Window, PAA: opts.PAA, Alphabet: opts.Alphabet},
		Reduction: red,
		Seed:      opts.Seed,
		Workers:   opts.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("grammarviz: %w", err)
	}
	return &Detector{pipeline: p}, nil
}

// Fingerprint returns a stable, collision-resistant key identifying the
// analysis a (series, options) pair produces: a SHA-256 over the raw
// IEEE-754 bits of every sample plus the options that influence the
// induced grammar — Window, PAA, Alphabet, Reduction, and Seed. Workers
// is deliberately excluded: it changes only wall-clock time, never
// results. Equal fingerprints therefore yield byte-identical Detectors,
// which makes the key safe for caching (gvad's detector cache is the
// intended consumer).
func Fingerprint(ts []float64, opts Options) string {
	h := sha256.New()
	var hdr [8 * 5]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(opts.Window))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(opts.PAA))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(opts.Alphabet))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(opts.Reduction))
	binary.LittleEndian.PutUint64(hdr[32:], uint64(opts.Seed))
	h.Write(hdr[:])
	var buf [8 * 512]byte
	fill := 0
	for _, v := range ts {
		binary.LittleEndian.PutUint64(buf[8*fill:], math.Float64bits(v))
		fill++
		if fill == 512 {
			h.Write(buf[:])
			fill = 0
		}
	}
	h.Write(buf[:8*fill])
	return hex.EncodeToString(h.Sum(nil))
}

// Interpolate returns a copy of ts with NaN and infinite values replaced
// by linear interpolation between finite neighbours.
func Interpolate(ts []float64) ([]float64, error) {
	out := make([]float64, len(ts))
	copy(out, ts)
	return timeseries.Interpolate(out)
}

// Detrend returns a copy of ts with its centered moving average (window
// points) subtracted. Use it before New when slow baseline wander rivals
// the signal amplitude — per-window z-normalization handles level shifts,
// but wander *within* a window distorts the SAX words.
func Detrend(ts []float64, window int) ([]float64, error) {
	out, err := timeseries.Detrend(ts, window)
	if err != nil {
		return nil, fmt.Errorf("grammarviz: %w", err)
	}
	return out, nil
}

// Series returns the analyzed series (shared, do not modify).
func (d *Detector) Series() []float64 { return d.pipeline.TS }

// RuleDensity returns the rule density curve: for every point of the
// series, the number of grammar-rule subsequences covering it. The curve
// is built in linear time and space (Section 4.1). The returned slice is
// shared; do not modify it.
func (d *Detector) RuleDensity() []int { return d.pipeline.Density }

// DensityAnomalies returns the intervals whose rule density stays below
// threshold, ranked most anomalous (lowest mean density) first. Intervals
// shorter than minLen points are dropped; pass 0 to keep all. This is the
// approximate, distance-free detector.
func (d *Detector) DensityAnomalies(threshold, minLen int) []Anomaly {
	raw := d.pipeline.DensityAnomalies(threshold, minLen)
	out := make([]Anomaly, len(raw))
	for i, a := range raw {
		out[i] = Anomaly{
			Start:       a.Interval.Start,
			End:         a.Interval.End,
			MeanDensity: a.MeanRule,
			MinDensity:  a.MinRule,
		}
	}
	return out
}

// GlobalMinima returns the intervals where the rule density curve reaches
// its global minimum, excluding one window length at each edge of the
// series (edge points are covered by fewer windows for reasons unrelated
// to anomalousness).
func (d *Detector) GlobalMinima() []Anomaly {
	minima := d.pipeline.GlobalMinima()
	out := make([]Anomaly, len(minima))
	for i, iv := range minima {
		v := float64(d.pipeline.Density[iv.Start])
		out[i] = Anomaly{Start: iv.Start, End: iv.End, MeanDensity: v, MinDensity: int(v)}
	}
	return out
}

// SurpriseAnomalies scores the rule density curve statistically: each
// point gets the -log10 probability (under a Poisson model of the curve's
// own mean coverage) of being as poorly covered as observed, and the
// maximal intervals at or above minSurprise are returned ranked by peak
// surprise. minSurprise 3 means p < 10^-3; intervals shorter than minLen
// are dropped (0 keeps all); one window at each series edge is excluded.
// This is the "statistically sound criterion" refinement Section 4.1 of
// the paper suggests over a fixed threshold.
func (d *Detector) SurpriseAnomalies(minSurprise float64, minLen int) []SurpriseAnomaly {
	scores := density.Surprise(d.pipeline.Density)
	margin := d.pipeline.Config.Params.Window - 1
	raw := density.SurpriseAnomalies(scores, minSurprise, minLen, margin)
	out := make([]SurpriseAnomaly, len(raw))
	for i, a := range raw {
		out[i] = SurpriseAnomaly{
			Start:    a.Interval.Start,
			End:      a.Interval.End,
			Surprise: a.Peak,
		}
	}
	return out
}

// Discords runs the RRA search (Section 4.2) and returns the top-k
// variable-length discords, best first. Each discord's Distance is the
// length-normalized Euclidean distance (Eq. 1) to its nearest non-self
// match. Later discords exclude the regions of earlier ones.
func (d *Detector) Discords(k int) ([]Discord, error) {
	res, err := d.pipeline.Discords(k)
	if err != nil {
		return nil, fmt.Errorf("grammarviz: %w", err)
	}
	return convertDiscords(res.Discords), nil
}

// DiscordsWithStats is Discords plus the number of distance-function calls
// the search made — the paper's Table 1 efficiency metric.
func (d *Detector) DiscordsWithStats(k int) ([]Discord, int64, error) {
	res, err := d.pipeline.Discords(k)
	if err != nil {
		return nil, 0, fmt.Errorf("grammarviz: %w", err)
	}
	return convertDiscords(res.Discords), res.DistCalls, nil
}

// DiscordsCtx is Discords with cooperative cancellation: the search polls
// ctx at bounded intervals. When ctx is cancelled or its deadline passes,
// the discords of the fully completed top-k rounds are returned with
// Partial set, together with a ctx.Err()-wrapped error. With a
// never-cancelled context the result equals Discords' for every worker
// count.
func (d *Detector) DiscordsCtx(ctx context.Context, k int) (DiscordResult, error) {
	res, err := d.pipeline.DiscordsCtx(ctx, k)
	out := DiscordResult{
		Discords:  convertDiscords(res.Discords),
		DistCalls: res.DistCalls,
		Partial:   res.Partial,
		Fallback:  res.Fallback,
	}
	if err != nil {
		return out, fmt.Errorf("grammarviz: %w", err)
	}
	return out, nil
}

// DiscordsBestEffort answers a top-k discord query within the budget of
// ctx, degrading instead of failing when the deadline hits:
//
//  1. Search completed in time: the exact result.
//  2. Some top-k rounds completed: those discords, Partial set.
//  3. Not even one round completed: the rule density curve's global minima
//     (the approximate detector, already built by New) as discords with
//     Partial and Fallback set. Fallback discords carry no distance
//     evidence — Distance and NNStart are -1.
//
// Only the context's own error triggers degradation; any other failure is
// returned unchanged.
func (d *Detector) DiscordsBestEffort(ctx context.Context, k int) (DiscordResult, error) {
	res, err := d.pipeline.DiscordsBestEffort(ctx, k)
	out := DiscordResult{
		Discords:  convertDiscords(res.Discords),
		DistCalls: res.DistCalls,
		Partial:   res.Partial,
		Fallback:  res.Fallback,
	}
	if err != nil {
		return out, fmt.Errorf("grammarviz: %w", err)
	}
	return out, nil
}

// NumRules returns the number of grammar rules induced (excluding the
// root).
func (d *Detector) NumRules() int { return d.pipeline.Rules.NumRules() }

// GrammarSize returns the total number of symbols on all rule right-hand
// sides — a measure of how compressible the discretized series is.
func (d *Detector) GrammarSize() int { return d.pipeline.GrammarSize() }

// Grammar returns the induced grammar in the paper's printable form, one
// rule per line ("R1 -> aac abc ...").
func (d *Detector) Grammar() string { return d.pipeline.Grammar.String() }

// Rules returns a summary of every induced rule mapped onto the series.
func (d *Detector) Rules() []Rule {
	return convertRules(d.pipeline.Rules.Records)
}

// Motif is a recurring variable-length pattern: a grammar rule with high
// usage frequency, the inverse of an anomaly (Section 3.5 — "anomaly
// detection can be viewed as the inverse problem to motif discovery").
type Motif struct {
	RuleID      int
	Frequency   int        // number of occurrences
	MeanLen     float64    // mean occurrence length in points
	Occurrences []Interval // where the motif appears
}

// Motifs returns the top-k most frequent grammar rules as variable-length
// motifs, most frequent first (ties: longer mean length first). This is
// the GrammarViz motif-discovery mode the paper builds on [Li, Lin, Oates
// 2012]; it costs nothing extra — the grammar already encodes every
// recurring pattern.
func (d *Detector) Motifs(k int) []Motif {
	recs := d.pipeline.Rules.Records
	idx := make([]int, len(recs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ra, rb := recs[idx[a]], recs[idx[b]]
		if ra.Frequency != rb.Frequency {
			return ra.Frequency > rb.Frequency
		}
		return ra.MeanLen > rb.MeanLen
	})
	if k > len(idx) {
		k = len(idx)
	}
	out := make([]Motif, 0, k)
	for _, i := range idx[:k] {
		rec := recs[i]
		m := Motif{RuleID: rec.ID, Frequency: rec.Frequency, MeanLen: rec.MeanLen}
		m.Occurrences = make([]Interval, len(rec.Occurrences))
		for j, iv := range rec.Occurrences {
			m.Occurrences[j] = Interval{Start: iv.Start, End: iv.End}
		}
		out = append(out, m)
	}
	return out
}

// PrunedRules returns the rules that survive GrammarViz 2.0's greedy
// coverage pruning: rules are kept largest-new-coverage first until no
// rule adds at least minGain uncovered points (minGain <= 0 selects 1).
// Pruning is for inspection and display — the detectors always use the
// full rule set.
func (d *Detector) PrunedRules(minGain int) []Rule {
	return convertRules(grammar.Prune(d.pipeline.Rules, minGain).Records)
}

func convertRules(recs []grammar.RuleRecord) []Rule {
	out := make([]Rule, len(recs))
	for i, rec := range recs {
		r := Rule{
			ID:        rec.ID,
			Body:      rec.Str,
			Expanded:  rec.Expanded,
			Frequency: rec.Frequency,
			MinLen:    rec.MinLen,
			MaxLen:    rec.MaxLen,
			MeanLen:   rec.MeanLen,
		}
		r.Occurrences = make([]Interval, len(rec.Occurrences))
		for j, iv := range rec.Occurrences {
			r.Occurrences[j] = Interval{Start: iv.Start, End: iv.End}
		}
		out[i] = r
	}
	return out
}

// Words returns the recorded SAX words with their series offsets, after
// numerosity reduction.
func (d *Detector) Words() []Word {
	ws := d.pipeline.Disc.Words
	out := make([]Word, len(ws))
	for i, w := range ws {
		out[i] = Word{Str: w.Str, Offset: w.Offset}
	}
	return out
}

// zeroDensityShare reports the fraction of points never covered by a rule;
// used by diagnostics.
func (d *Detector) zeroDensityShare() float64 {
	zero := 0
	for _, v := range d.pipeline.Density {
		if v == 0 {
			zero++
		}
	}
	return float64(zero) / float64(len(d.pipeline.Density))
}

// Diagnostics summarizes how well the discretization captured structure —
// the quantities the paper's Section 5.2 suggests inspecting when choosing
// parameters.
type Diagnostics struct {
	Words          int     // recorded words after numerosity reduction
	RawWindows     int     // windows before reduction
	ReductionRatio float64 // fraction of windows removed by reduction
	NumRules       int
	GrammarSize    int
	ApproxDistance float64 // mean SAX reconstruction error per window
	ZeroDensity    float64 // fraction of points covered by no rule
}

// Diagnose computes discretization-quality diagnostics.
func (d *Detector) Diagnose() Diagnostics {
	approx, _ := core.ApproximationDistance(d.pipeline.TS, d.pipeline.Config.Params)
	return Diagnostics{
		Words:          len(d.pipeline.Disc.Words),
		RawWindows:     d.pipeline.Disc.Raw,
		ReductionRatio: d.pipeline.Disc.ReductionRatio(),
		NumRules:       d.NumRules(),
		GrammarSize:    d.GrammarSize(),
		ApproxDistance: approx,
		ZeroDensity:    d.zeroDensityShare(),
	}
}
