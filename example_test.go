package grammarviz_test

import (
	"fmt"
	"math"

	"grammarviz"
)

// signal builds a deterministic periodic series with one distorted cycle
// at [600, 660).
func signal() []float64 {
	ts := make([]float64, 1200)
	for i := range ts {
		ts[i] = math.Sin(2 * math.Pi * float64(i) / 60)
	}
	for i := 600; i < 660; i++ {
		ts[i] = math.Sin(4 * math.Pi * float64(i) / 60)
	}
	return ts
}

func ExampleNew() {
	det, err := grammarviz.New(signal(), grammarviz.Options{
		Window: 60, PAA: 6, Alphabet: 4,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("rules induced:", det.NumRules() > 0)
	// Output:
	// rules induced: true
}

func ExampleDetector_Discords() {
	det, err := grammarviz.New(signal(), grammarviz.Options{
		Window: 60, PAA: 6, Alphabet: 4,
	})
	if err != nil {
		panic(err)
	}
	discords, err := det.Discords(1)
	if err != nil {
		panic(err)
	}
	d := discords[0]
	fmt.Println("overlaps planted anomaly:", d.Start < 660 && d.End >= 600)
	// Output:
	// overlaps planted anomaly: true
}

func ExampleDetector_GlobalMinima() {
	det, err := grammarviz.New(signal(), grammarviz.Options{
		Window: 60, PAA: 6, Alphabet: 4,
	})
	if err != nil {
		panic(err)
	}
	hit := false
	for _, a := range det.GlobalMinima() {
		if a.Start < 720 && a.End >= 540 {
			hit = true
		}
	}
	fmt.Println("density minimum at the anomaly:", hit)
	// Output:
	// density minimum at the anomaly: true
}

func ExampleNewStream() {
	s, err := grammarviz.NewStream(grammarviz.Options{
		Window: 60, PAA: 6, Alphabet: 4,
	})
	if err != nil {
		panic(err)
	}
	novel := 0
	for i, v := range signal() {
		if ev, ok, _ := s.Append(v); ok && ev.Novelty == 1 && i > 300 {
			novel++ // a shape never seen before, after warm-up
		}
	}
	fmt.Println("novel shapes after warm-up:", novel > 0)
	// Output:
	// novel shapes after warm-up: true
}

func ExampleTrajectoryToSeries() {
	// A square path on a 4x4 Hilbert grid (order 2).
	xs := []float64{0, 0, 10, 10}
	ys := []float64{0, 10, 10, 0}
	series, err := grammarviz.TrajectoryToSeries(xs, ys, 2)
	if err != nil {
		panic(err)
	}
	fmt.Println(series)
	// Output:
	// [0 5 10 15]
}

func ExampleDetector_Motifs() {
	det, err := grammarviz.New(signal(), grammarviz.Options{
		Window: 60, PAA: 6, Alphabet: 4,
	})
	if err != nil {
		panic(err)
	}
	motifs := det.Motifs(1)
	fmt.Println("top motif recurs:", motifs[0].Frequency >= 2)
	// Output:
	// top motif recurs: true
}
