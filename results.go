package grammarviz

import (
	"fmt"

	"grammarviz/internal/discord"
)

// Interval is an inclusive index range [Start, End] into the analyzed
// series.
type Interval struct {
	Start, End int
}

// Len returns the number of points the interval covers.
func (iv Interval) Len() int { return iv.End - iv.Start + 1 }

// Overlaps reports whether iv and other share at least one point.
func (iv Interval) Overlaps(other Interval) bool {
	return iv.Start <= other.End && other.Start <= iv.End
}

func (iv Interval) String() string { return fmt.Sprintf("[%d,%d]", iv.Start, iv.End) }

// Anomaly is a density-based anomaly candidate: an interval whose rule
// density is anomalously low.
type Anomaly struct {
	Start, End  int
	MeanDensity float64 // mean rule density over the interval
	MinDensity  int     // minimum rule density inside the interval
}

// Interval returns the anomaly's index range.
func (a Anomaly) Interval() Interval { return Interval{Start: a.Start, End: a.End} }

// Len returns the anomaly's length in points.
func (a Anomaly) Len() int { return a.End - a.Start + 1 }

// SurpriseAnomaly is an interval of statistically significant
// incompressibility: Surprise is the peak -log10 p-value of the interval's
// rule density under a Poisson model of the series' mean coverage.
type SurpriseAnomaly struct {
	Start, End int
	Surprise   float64
}

// Interval returns the anomaly's index range.
func (a SurpriseAnomaly) Interval() Interval { return Interval{Start: a.Start, End: a.End} }

// Discord is a distance-based anomaly: the subsequence with the largest
// distance to its nearest non-self match.
type Discord struct {
	Start, End int
	// Distance to the nearest non-self match. RRA reports the
	// length-normalized Euclidean distance (Eq. 1); the fixed-length
	// baselines report the raw z-normalized Euclidean distance.
	Distance float64
	// NNStart is where the nearest non-self match begins.
	NNStart int
	// RuleID identifies the grammar rule that proposed this interval
	// (RRA only; -1 for gap candidates and baseline algorithms).
	RuleID int
	// Frequency is the proposing rule's usage frequency (RRA only).
	Frequency int
}

// Interval returns the discord's index range.
func (d Discord) Interval() Interval { return Interval{Start: d.Start, End: d.End} }

// Len returns the discord's length in points.
func (d Discord) Len() int { return d.End - d.Start + 1 }

func (d Discord) String() string {
	return fmt.Sprintf("discord [%d,%d] len=%d dist=%.4f", d.Start, d.End, d.Len(), d.Distance)
}

// DiscordResult is the full outcome of a context-aware discord query.
type DiscordResult struct {
	// Discords holds the discovered discords, best first.
	Discords []Discord
	// DistCalls counts the distance-function invocations the search made.
	DistCalls int64
	// Partial is set when the search was cut short by the context and
	// Discords holds only the fully completed top-k rounds (best-first
	// order is still exact for those).
	Partial bool
	// Fallback is set when not even one search round completed and the
	// discords were substituted from the rule density curve's global
	// minima. Fallback discords have Distance and NNStart of -1.
	Fallback bool
}

// Rule summarizes one induced grammar rule mapped onto the series.
type Rule struct {
	ID          int        // rule id (R<ID> in Grammar() output)
	Body        string     // right-hand side, e.g. "R2 cba"
	Expanded    string     // fully expanded SAX words
	Frequency   int        // occurrences in the derivation
	Occurrences []Interval // the series intervals the occurrences cover
	MinLen      int
	MaxLen      int
	MeanLen     float64
}

// Word is one recorded SAX word and the series offset of its window.
type Word struct {
	Str    string
	Offset int
}

func convertDiscords(in []discord.Discord) []Discord {
	out := make([]Discord, len(in))
	for i, d := range in {
		out[i] = Discord{
			Start:     d.Interval.Start,
			End:       d.Interval.End,
			Distance:  d.Dist,
			NNStart:   d.NNStart,
			RuleID:    d.RuleID,
			Frequency: d.Freq,
		}
	}
	return out
}
