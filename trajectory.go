package grammarviz

import (
	"fmt"

	"grammarviz/internal/hilbert"
)

// TrajectoryToSeries linearizes a planar trajectory (e.g. projected GPS
// positions ordered by time) into a scalar time series by mapping each
// point to its visit order on a Hilbert space-filling curve of the given
// order fitted to the trajectory's bounding box — the transform of the
// paper's spatial case study (Section 5.1, Figure 6). The paper uses
// order 8 (a 256x256 grid); higher orders preserve more spatial detail.
//
// The resulting series can be analyzed with New like any other series:
// detours appear as incompressible value patterns, and revisits of known
// places in a novel order appear as rare grammar rules.
func TrajectoryToSeries(xs, ys []float64, order int) ([]float64, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("grammarviz: coordinate slices differ in length: %d vs %d", len(xs), len(ys))
	}
	c, err := hilbert.New(order)
	if err != nil {
		return nil, fmt.Errorf("grammarviz: %w", err)
	}
	pts := make([]hilbert.Point, len(xs))
	for i := range xs {
		pts[i] = hilbert.Point{X: xs[i], Y: ys[i]}
	}
	out, err := hilbert.Transform(c, pts)
	if err != nil {
		return nil, fmt.Errorf("grammarviz: %w", err)
	}
	return out, nil
}
