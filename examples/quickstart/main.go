// Quickstart: detect a planted anomaly in a synthetic periodic signal
// with both of the paper's detectors — the rule density curve and the RRA
// variable-length discord search — using only the public grammarviz API.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"grammarviz"
)

func main() {
	// A noisy periodic signal with one distorted cycle at [900, 960): the
	// structure a cardiologist would call "one bad heartbeat".
	rng := rand.New(rand.NewSource(42))
	series := make([]float64, 1800)
	for i := range series {
		series[i] = math.Sin(2*math.Pi*float64(i)/60) + rng.NormFloat64()*0.05
	}
	for i := 900; i < 960; i++ {
		series[i] = math.Sin(4*math.Pi*float64(i)/60) + rng.NormFloat64()*0.05
	}

	// Analyze. Window ~ one cycle; PAA and alphabet per the paper's
	// defaults. The window is only a seed — discovered anomalies may be
	// shorter or longer.
	det, err := grammarviz.New(series, grammarviz.Options{
		Window: 60, PAA: 6, Alphabet: 4, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Detector 1: rule density (approximate, linear time, no distances).
	fmt.Println("rule-density global minima (anomaly candidates):")
	for _, a := range det.GlobalMinima() {
		fmt.Printf("  [%d,%d] len=%d density=%d\n", a.Start, a.End, a.Len(), a.MinDensity)
	}

	// Detector 2: RRA (exact, variable-length discords).
	discords, calls, err := det.DiscordsWithStats(3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nRRA discords (%d distance calls; brute force would need %d):\n",
		calls, grammarviz.BruteForceCallCount(len(series), 60))
	for i, d := range discords {
		fmt.Printf("  %d. [%d,%d] len=%d normalized distance %.4f\n",
			i+1, d.Start, d.End, d.Len(), d.Distance)
	}

	// What the grammar learned.
	diag := det.Diagnose()
	fmt.Printf("\ngrammar: %d rules over %d words (%.0f%% of windows removed by numerosity reduction)\n",
		diag.NumRules, diag.Words, 100*diag.ReductionRatio)
}
