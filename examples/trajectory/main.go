// Spatial-trajectory anomaly discovery: the paper's Section 5.1 case
// study. A week of GPS commute tracks is linearized with a Hilbert
// space-filling curve (TrajectoryToSeries), and the two detectors find
// complementary anomalies: the rule density minimum pinpoints a one-off
// detour, while the best RRA discord is a stretch recorded with a partial
// GPS fix.
package main

import (
	"fmt"
	"log"

	"grammarviz"
	"grammarviz/internal/datasets"
)

func main() {
	// Simulated commute: two habitual routes, one detour, one segment of
	// GPS scatter, one skipped parking-lot loop (see DESIGN.md §3).
	td, err := datasets.Trajectory(datasets.TrajectoryOptions{
		Days: 8, PointsPerLeg: 130, GPSNoise: 0.05, HilbertOrder: 8, Seed: 101,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The same transform is available on the public API for caller-owned
	// coordinates.
	xs := make([]float64, len(td.Points))
	ys := make([]float64, len(td.Points))
	for i, p := range td.Points {
		xs[i], ys[i] = p.X, p.Y
	}
	series, err := grammarviz.TrajectoryToSeries(xs, ys, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trajectory: %d GPS samples -> Hilbert series of %d values\n", len(td.Points), len(series))
	fmt.Printf("planted: detour %v, GPS fix loss %v, skipped loop %v\n",
		td.Truth[0], td.Truth[1], td.Truth[2])

	det, err := grammarviz.New(series, grammarviz.Options{
		Window: 350, PAA: 15, Alphabet: 4, Seed: 1, // the paper's (350,15,4)
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nrule-density minima (the paper: finds the unique detour):")
	for _, a := range det.GlobalMinima() {
		fmt.Printf("  [%d,%d] density=%d  inDetour=%v\n",
			a.Start, a.End, a.MinDensity, overlaps(a.Start, a.End, td.Truth[0].Start-350, td.Truth[0].End+350))
	}

	discords, err := det.Discords(3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nRRA discords (the paper: best = partial-GPS-fix segment):")
	for i, d := range discords {
		tag := ""
		switch {
		case overlaps(d.Start, d.End, td.Truth[1].Start-350, td.Truth[1].End+350):
			tag = "<- GPS fix loss"
		case overlaps(d.Start, d.End, td.Truth[0].Start-350, td.Truth[0].End+350):
			tag = "<- detour"
		case overlaps(d.Start, d.End, td.Truth[2].Start-350, td.Truth[2].End+350):
			tag = "<- skipped parking loop"
		}
		fmt.Printf("  %d. [%d,%d] len=%d dist=%.4f %s\n", i+1, d.Start, d.End, d.Len(), d.Distance, tag)
	}
}

func overlaps(a0, a1, b0, b1 int) bool { return a0 <= b1 && b0 <= a1 }
