// ECG anomaly discovery: the paper's Figure 2 scenario. A synthetic
// electrocardiogram contains one subtle ST-wave anomaly; the rule density
// curve pinpoints it by its global minimum, and RRA confirms it as the
// discord with the largest distance to its nearest non-self match. The
// HOTSAX baseline is run for comparison of distance-call counts.
package main

import (
	"fmt"
	"log"

	"grammarviz"
	"grammarviz/internal/datasets"
	"grammarviz/internal/visual"
)

func main() {
	// The synthetic counterpart of PhysioNet qtdb record 0606 (see
	// DESIGN.md §3): ~19 beats of 120 samples, one subtle ST-wave change.
	ds, err := datasets.Generate("ecg0606")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ECG: %d samples; true anomaly at %v\n", len(ds.Series), ds.Truth[0])

	det, err := grammarviz.New(ds.Series, grammarviz.Options{
		Window: 120, PAA: 4, Alphabet: 4, Seed: 1, // the paper's (120,4,4)
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nseries:")
	fmt.Println(visual.Sparkline(ds.Series, 96))
	fmt.Println("rule density (blank = incompressible = anomalous):")
	fmt.Println(visual.DensityShadeRow(det.RuleDensity(), 96))

	fmt.Println("\ndensity minima:")
	for _, a := range det.GlobalMinima() {
		fmt.Printf("  [%d,%d] density=%d\n", a.Start, a.End, a.MinDensity)
	}

	discords, rraCalls, err := det.DiscordsWithStats(1)
	if err != nil {
		log.Fatal(err)
	}
	best := discords[0]
	fmt.Printf("\nbest RRA discord: [%d,%d] (len %d, normalized dist %.4f)\n",
		best.Start, best.End, best.Len(), best.Distance)

	_, hsCalls, err := grammarviz.HOTSAXDiscords(ds.Series, 120, 4, 4, 1, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndistance calls: RRA %d vs HOTSAX %d vs brute force %d\n",
		rraCalls, hsCalls, grammarviz.BruteForceCallCount(len(ds.Series), 120))

	hit := best.Interval().Overlaps(grammarviz.Interval{Start: ds.Truth[0].Start, End: ds.Truth[0].End})
	fmt.Printf("discord overlaps annotated anomaly: %v\n", hit)
}
