// Multiscale density: a parameter-robust extension of the paper's rule
// density curve. The single-window curve can be misled when the window is
// badly chosen (the paper's Figure 10); averaging normalized curves across
// several windows keeps the planted anomaly at the combined minimum even
// though half the windows are "wrong".
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"grammarviz"
)

func main() {
	// Signal with period 60 and one distorted cycle.
	rng := rand.New(rand.NewSource(3))
	series := make([]float64, 2400)
	for i := range series {
		series[i] = math.Sin(2*math.Pi*float64(i)/60) + rng.NormFloat64()*0.04
	}
	for i := 1200; i < 1260; i++ {
		series[i] = math.Sin(6*math.Pi*float64(i)/60) + rng.NormFloat64()*0.04
	}
	fmt.Println("planted anomaly: [1200,1259]")

	// Deliberately bracket the unknown cycle length with guesses from 20
	// to 240 — only one of them is "right".
	windows := []int{20, 40, 60, 120, 240}
	curve, err := grammarviz.MultiscaleDensity(series, windows, 5, 4)
	if err != nil {
		log.Fatal(err)
	}
	anomalies := grammarviz.MultiscaleAnomalies(curve, 240, 0.3)
	fmt.Printf("multiscale anomalies (windows %v):\n", windows)
	for _, a := range anomalies {
		fmt.Printf("  [%d,%d] len=%d\n", a.Start, a.End, a.Len())
	}

	// Compare: the single-window curve at the worst guess.
	det, err := grammarviz.New(series, grammarviz.Options{Window: 240, PAA: 5, Alphabet: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsingle-window (240) global minima for comparison:")
	for _, a := range det.GlobalMinima() {
		fmt.Printf("  [%d,%d] density=%d\n", a.Start, a.End, a.MinDensity)
	}
}
