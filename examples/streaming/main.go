// Streaming anomaly detection: the left-to-right online variant the
// paper's conclusion proposes as future work. Points arrive one at a
// time; the grammar is maintained incrementally, each new discretized word
// carries a novelty score, and the full density analysis can be
// snapshotted mid-stream — here, the planted anomaly raises an alert while
// it is still happening.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"grammarviz"
)

func main() {
	const (
		n       = 3000
		period  = 50.0
		burstAt = 2200
	)
	rng := rand.New(rand.NewSource(7))
	s, err := grammarviz.NewStream(grammarviz.Options{Window: 50, PAA: 5, Alphabet: 4})
	if err != nil {
		log.Fatal(err)
	}

	// Simulate the sensor: after a long normal phase, a frequency burst.
	alerted := -1
	var recent []float64 // sliding novelty window for the alert rule
	for i := 0; i < n; i++ {
		v := math.Sin(2*math.Pi*float64(i)/period) + rng.NormFloat64()*0.03
		if i >= burstAt && i < burstAt+60 {
			v = math.Sin(8*math.Pi*float64(i)/period) + rng.NormFloat64()*0.03
		}
		ev, ok, err := s.Append(v)
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			continue
		}
		// Alert when the mean novelty of the last 5 words exceeds 0.8 —
		// several never-before-seen shapes in a row. Ignore the stream's
		// cold start where everything is new.
		recent = append(recent, ev.Novelty)
		if len(recent) > 5 {
			recent = recent[1:]
		}
		if i > 1000 && alerted < 0 && mean(recent) > 0.8 {
			alerted = i
			fmt.Printf("ALERT at point %d: %d consecutive novel shapes (word %q at offset %d)\n",
				i, len(recent), ev.Word, ev.Offset)
		}
	}
	if alerted < 0 {
		fmt.Println("no alert raised")
	} else {
		fmt.Printf("planted burst begins at %d; alert lag %d points\n", burstAt, alerted-burstAt)
	}

	// Post-hoc snapshot: the full density analysis of everything seen.
	anoms, err := s.Anomalies()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("density minima over the whole stream:")
	for _, a := range anoms {
		fmt.Printf("  [%d,%d] density=%d\n", a.Start, a.End, a.MinDensity)
	}
}

func mean(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
