// Power-demand anomaly discovery: the paper's Figures 3 and 4 scenario.
// A year of facility power consumption has a strong weekly rhythm; state
// holidays break it. Iterative RRA returns the holiday weeks as ranked
// variable-length discords, and each discord is mapped back to the day of
// the week it disrupted.
package main

import (
	"fmt"
	"log"

	"grammarviz"
	"grammarviz/internal/datasets"
)

const perDay = 96 // 15-minute readings

var weekdays = []string{"Monday", "Tuesday", "Wednesday", "Thursday", "Friday", "Saturday", "Sunday"}

func main() {
	ds, err := datasets.Generate("dutch-power-demand")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("power demand: %d readings (%d weeks)\n", len(ds.Series), len(ds.Series)/(7*perDay))
	fmt.Println("planted holidays:")
	for _, iv := range ds.Truth {
		fmt.Printf("  %s of week %d (points %d..%d)\n", dayName(iv.Start), iv.Start/(7*perDay), iv.Start, iv.End)
	}

	det, err := grammarviz.New(ds.Series, grammarviz.Options{
		Window: 750, PAA: 6, Alphabet: 3, Seed: 1, // the paper's (750,6,3): one week
	})
	if err != nil {
		log.Fatal(err)
	}

	discords, err := det.Discords(3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nranked RRA discords (cf. the paper's Figure 4):")
	names := []string{"best", "second", "third"}
	for i, d := range discords {
		note := "no planted holiday inside"
		for _, h := range ds.Truth {
			if d.Start <= h.End && h.Start <= d.End {
				note = fmt.Sprintf("covers the %s holiday of week %d", dayName(h.Start), h.Start/(7*perDay))
				break
			}
		}
		fmt.Printf("  %-6s [%d,%d] len=%d dist=%.4f -> %s\n",
			names[i], d.Start, d.End, d.Len(), d.Distance, note)
	}
}

func dayName(point int) string {
	return weekdays[(point/perDay)%7]
}
