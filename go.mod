module grammarviz

go 1.22
