package grammarviz

import (
	"context"
	"fmt"

	"grammarviz/internal/core"
	"grammarviz/internal/sax"
)

// MultiscaleDensity runs the rule-density pipeline at several window
// lengths and averages the per-window curves (each normalized to [0, 1]).
// A stretch that stays incompressible at every scale scores near zero in
// the combined curve, which makes the detector much less sensitive to the
// window choice than a single-window density curve — an extension in the
// spirit of the paper's future-work section on parameter effects.
func MultiscaleDensity(ts []float64, windows []int, paa, alphabet int) ([]float64, error) {
	return MultiscaleDensityWorkers(ts, windows, paa, alphabet, 0)
}

// MultiscaleDensityWorkers is MultiscaleDensity with the per-window
// pipelines fanned out over up to workers goroutines (0 selects all cores,
// 1 forces serial execution). The combined curve is identical for every
// worker count.
func MultiscaleDensityWorkers(ts []float64, windows []int, paa, alphabet, workers int) ([]float64, error) {
	return MultiscaleDensityCtx(context.Background(), ts, windows, paa, alphabet, workers)
}

// MultiscaleDensityCtx is MultiscaleDensityWorkers with cooperative
// cancellation and panic containment: a cancelled or expired context aborts
// the sweep with a ctx.Err()-wrapped error, and a panic in any per-window
// pipeline is recovered into an error instead of crashing the process.
// Unusable windows (too short, too long) are still skipped silently — only
// the context and panics abort the sweep.
func MultiscaleDensityCtx(ctx context.Context, ts []float64, windows []int, paa, alphabet, workers int) ([]float64, error) {
	curve, err := core.MultiscaleDensityCtx(ctx, ts, windows, paa, alphabet, sax.ReductionExact, workers)
	if err != nil {
		return nil, fmt.Errorf("grammarviz: %w", err)
	}
	return curve, nil
}

// MultiscaleAnomalies thresholds a MultiscaleDensity curve: it returns the
// maximal intervals whose combined density stays below fraction times the
// curve's mean (0.3 is a reasonable default), ignoring margin points at
// each series edge (pass the largest window used).
func MultiscaleAnomalies(curve []float64, margin int, fraction float64) []Interval {
	raw := core.MultiscaleMinima(curve, margin, fraction)
	out := make([]Interval, len(raw))
	for i, iv := range raw {
		out[i] = Interval{Start: iv.Start, End: iv.End}
	}
	return out
}
