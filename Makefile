GO ?= go

.PHONY: check build vet test race bench-smoke bench

## check: everything CI runs — vet, build, race-enabled tests, bench smoke
check: vet build race bench-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

## race: the full test suite under the race detector; the parallel
## discretizer / RRA equivalence tests exercise the concurrent paths
race:
	$(GO) test -race ./...

## bench-smoke: one iteration of every pipeline-component benchmark, as a
## does-it-still-run check (not a measurement)
bench-smoke:
	$(GO) test . -run '^$$' -bench Component -benchtime 1x

## bench: the measured component benchmarks with allocation stats, the
## configuration used for BENCH_*.json
bench:
	$(GO) test . -run '^$$' -bench 'Component|Extension' -benchtime 5x -benchmem
