GO ?= go

.PHONY: check build vet test race bench-smoke bench perfgate ensemble-smoke fuzz-smoke crashtest lint staticcheck govulncheck serve loadtest

## check: everything CI runs — vet, build, race-enabled tests, bench smoke,
## perf gate, fuzz smoke, crash-recovery test, static analysis (go vet +
## gvadlint + staticcheck)
check: vet build race bench-smoke perfgate ensemble-smoke fuzz-smoke crashtest lint staticcheck

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

## race: the full test suite under the race detector; the parallel
## discretizer / RRA equivalence tests exercise the concurrent paths
race:
	$(GO) test -race ./...

## bench-smoke: one iteration of every pipeline-component benchmark, as a
## does-it-still-run check (not a measurement)
bench-smoke:
	$(GO) test . ./internal/discord -run '^$$' -bench Component -benchtime 1x

## bench: the measured component benchmarks with allocation stats, the
## configuration used for BENCH_*.json (BENCH_2.json's induce/build/density
## rows were captured with BENCHTIME=50x)
BENCHTIME ?= 5x
bench:
	$(GO) test . ./internal/discord -run '^$$' -bench 'Component|Extension' -benchtime $(BENCHTIME) -benchmem

## perfgate: run the kernel and induction benchmark families and diff them
## against the checked-in baselines with cmd/gvperf. ns/op gets a
## deliberately loose ceiling (CI runners are not the measurement host;
## the gate catches order-of-magnitude slides, not jitter) while allocs/op
## is near-exact — machine-independent, so new allocations on a pinned
## path fail. The induction family (BENCH_2.json rows, measured at 50x)
## gets wider tolerances: at this recipe's 5x the pooled-inducer warm-up
## is amortized over only 5 iterations, which inflates allocs/op by up to
## ~16 and ns/op by ~2.4x before any regression exists.
PERFGATE_OUT ?= $(if $(TMPDIR),$(TMPDIR),/tmp)/gvperf-bench.out
perfgate:
	$(GO) test ./internal/discord -run '^$$' -bench 'Component_DistKernel|Component_Search' \
		-benchtime 5x -benchmem > $(PERFGATE_OUT)
	$(GO) test . -run '^$$' -bench 'Component_SequiturInduce|Component_GrammarBuild|Component_DensityCurve' \
		-benchtime 5x -benchmem >> $(PERFGATE_OUT)
	$(GO) run ./cmd/gvperf -baseline BENCH_5.json -baseline BENCH_2.json \
		-tol 3.0 -alloc-tol 8 -family-tol 'induction=5.0:24' \
		-min-matches 23 -input $(PERFGATE_OUT)

## ensemble-smoke: the parameter-free ensemble's core contracts as a quick
## gate — sampler determinism/validity, the members=1 byte-equivalence to
## the multiscale curve, the typed all-invalid error, and the datasets
## validation (fused default beats the hand-tuned single-parameter run)
ensemble-smoke:
	$(GO) test ./internal/ensemble -count=1 \
		-run 'TestSampleDeterministicAndValid|TestSingleMemberMatchesMultiscale|TestAllInvalidMembersTypedError|TestEnsembleMatchesHandTunedTop1'

## fuzz-smoke: a few seconds of each native fuzz target, enough to replay
## the checked-in corpora and catch shallow regressions (long fuzzing runs
## stay manual: go test -fuzz=FuzzX -fuzztime=10m ./internal/...)
fuzz-smoke:
	$(GO) test ./internal/sax -run '^$$' -fuzz '^FuzzDiscretize$$' -fuzztime 3s
	$(GO) test ./internal/sequitur -run '^$$' -fuzz '^FuzzInduce$$' -fuzztime 3s
	$(GO) test ./internal/checkpoint -run '^$$' -fuzz '^FuzzCheckpointDecode$$' -fuzztime 3s
	$(GO) test ./internal/discord -run '^$$' -fuzz '^FuzzDistKernel$$' -fuzztime 3s -fuzzminimizetime 1x

## crashtest: the kill-recovery property test — a real gvad subprocess is
## SIGKILLed at randomized points (including mid-WAL-write via the
## GVAD_WAL_WRITE_DELAY_MS torn-write hook), restarted, and every durable
## streaming session must resume byte-identically to a never-crashed
## reference. Runs under the race detector; the child re-exec inherits the
## instrumentation.
crashtest:
	$(GO) test ./cmd/gvad -run '^TestKillRecovery$$' -count=1 -race

## serve: run the gvad anomaly-detection daemon locally (POST /v1/analyze,
## GET /healthz, GET /metrics); override the listen address with
## make serve ADDR=:9090
ADDR ?= :8080
serve:
	$(GO) run ./cmd/gvad -addr $(ADDR)

## loadtest: a ~5s multi-tenant load smoke against an in-process gvad —
## exercises the serving stack end to end (sharded cache, request
## coalescing, per-tenant budgets, batch fan-out) under real HTTP
## concurrency and fails on any transport error. A sanity gate, not a
## measurement; BENCH_3.json numbers come from the longer runs described
## in EXPERIMENTS.md.
loadtest:
	$(GO) run ./cmd/gvload -self -duration 5s -concurrency 16 \
		-tenants 8 -series 2000 -batch 4

## lint: the repo's own analyzers (cmd/gvadlint) — nobarego, ctxdiscipline,
## noalloc, poolrelease, lockdiscipline, walfirst, errdiscipline,
## exhaustivemode — over every package; stdlib-only, so it runs on a bare
## toolchain. See DESIGN.md §11/§16 for what each pass enforces and when a
## //gvad:ignore suppression is acceptable. The run carries a 30-second
## wall-clock budget: the CFG/dataflow passes are intraprocedural and
## near-linear by design, so a budget overrun means someone added
## super-linear work to a pass, and the assertion catches it before CI
## queues quietly absorb the cost.
LINT_BUDGET_SECONDS ?= 30
lint:
	@start=$$(date +%s); \
	$(GO) run ./cmd/gvadlint ./... || exit $$?; \
	elapsed=$$(( $$(date +%s) - start )); \
	echo "lint: ${LINT_BUDGET_SECONDS}s budget, $${elapsed}s used"; \
	if [ $$elapsed -gt ${LINT_BUDGET_SECONDS} ]; then \
		echo "lint: exceeded the ${LINT_BUDGET_SECONDS}s wall-clock budget" >&2; \
		exit 1; \
	fi

## staticcheck: static analysis beyond go vet when staticcheck is
## installed; falls back to a no-op with a note so check works on a bare
## toolchain (no dependency is downloaded)
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

## govulncheck: known-vulnerability scan; advisory only (CI runs it as a
## soft-fail step) and skipped entirely when the binary is absent so a
## bare toolchain still passes
govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./... || echo "govulncheck reported findings (advisory)"; \
	else \
		echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi
