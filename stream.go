package grammarviz

import (
	"fmt"

	"grammarviz/internal/checkpoint"
	"grammarviz/internal/sax"
	"grammarviz/internal/stream"
)

// ErrCorruptCheckpoint is wrapped by RestoreStream when a checkpoint frame
// is damaged or inconsistent: wrong magic or version, checksum mismatch,
// truncation, or state that fails validation. Branch on it with errors.Is
// to distinguish corruption from other failures.
var ErrCorruptCheckpoint = checkpoint.ErrCorrupt

// StreamEvent is emitted by Stream.Append when a new discretized word is
// recorded. Novelty is 1 for a never-before-seen shape and approaches 0
// for routine shapes; a run of high-novelty events signals an anomaly in
// progress — the real-time detection mode the paper's conclusion proposes.
type StreamEvent struct {
	Offset  int
	Word    string
	Novelty float64
}

// Stream is the online variant of the Detector: points are consumed one
// at a time, the grammar is maintained incrementally (Sequitur is an
// incremental algorithm, and SAX processes windows left to right), and a
// full density analysis of the data so far can be taken at any moment.
// A Stream is not safe for concurrent use.
type Stream struct {
	inner *stream.Detector
}

// NewStream returns a streaming detector. Reduction semantics match New.
func NewStream(opts Options) (*Stream, error) {
	var red sax.Reduction
	switch opts.Reduction {
	case ReduceExact:
		red = sax.ReductionExact
	case ReduceNone:
		red = sax.ReductionNone
	case ReduceMINDIST:
		red = sax.ReductionMINDIST
	default:
		return nil, fmt.Errorf("grammarviz: unknown reduction %d", opts.Reduction)
	}
	inner, err := stream.NewDetector(sax.Params{
		Window: opts.Window, PAA: opts.PAA, Alphabet: opts.Alphabet,
	}, red)
	if err != nil {
		return nil, fmt.Errorf("grammarviz: %w", err)
	}
	return &Stream{inner: inner}, nil
}

// Append consumes one point; ok is true when a new word was recorded. A
// NaN or infinite point is rejected with an ErrInvalidValue-wrapped error
// naming the stream position; the stream's state is unchanged, so the
// caller may substitute a cleaned value and continue.
//
//gvad:typederr
func (s *Stream) Append(v float64) (ev StreamEvent, ok bool, err error) {
	e, ok, err := s.inner.Append(v)
	if err != nil {
		return StreamEvent{}, false, fmt.Errorf("grammarviz: %w", err)
	}
	if !ok {
		return StreamEvent{}, false, nil
	}
	return StreamEvent{Offset: e.Offset, Word: e.Word, Novelty: e.Novelty}, true, nil
}

// Len returns the number of points consumed.
func (s *Stream) Len() int { return s.inner.Len() }

// Reset returns the stream to its initial empty state, releasing the
// retained series, words and grammar for garbage collection. The
// discretization options are kept, so the stream can be reused for a new
// epoch — the standard way to bound memory on an unbounded stream.
func (s *Stream) Reset() { s.inner.Reset() }

// StreamMemStats summarizes what a Stream currently retains in memory.
type StreamMemStats struct {
	Points int // series points retained — memory grows O(Points)
	Words  int // SAX words recorded after numerosity reduction
	Rules  int // live grammar rules (excluding the root)
}

// MemStats reports the stream's current retention. A Stream keeps every
// consumed point — the series is needed for window re-encoding and for
// Anomalies/RuleDensity snapshots — so memory grows linearly with the
// stream length; the word list and grammar grow sublinearly thanks to
// numerosity reduction. Long-running consumers should watch Points and
// call Reset at epoch boundaries.
func (s *Stream) MemStats() StreamMemStats {
	m := s.inner.MemStats()
	return StreamMemStats{Points: m.Points, Words: m.Words, Rules: m.Rules}
}

// Anomalies snapshots the stream and returns the current global-minima
// anomaly intervals of the rule density curve.
func (s *Stream) Anomalies() ([]Anomaly, error) {
	snap, err := s.inner.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("grammarviz: %w", err)
	}
	out := make([]Anomaly, len(snap.Minima))
	for i, iv := range snap.Minima {
		v := snap.Density[iv.Start]
		out[i] = Anomaly{Start: iv.Start, End: iv.End, MeanDensity: float64(v), MinDensity: v}
	}
	return out, nil
}

// RuleDensity snapshots the stream and returns the current rule density
// curve over everything consumed so far.
func (s *Stream) RuleDensity() ([]int, error) {
	snap, err := s.inner.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("grammarviz: %w", err)
	}
	return snap.Density, nil
}

// Checkpoint serializes the stream's complete state into a versioned,
// checksummed binary frame of O(words + window) bytes — not O(points):
// only the series tail the next window overlaps is retained, with the
// grammar re-derived on restore by replaying the recorded words. A stream
// restored from the frame continues byte-identically — same events, same
// words, same grammar, same analyses — to this one.
func (s *Stream) Checkpoint() ([]byte, error) {
	frame, err := checkpoint.Encode(s.inner.State())
	if err != nil {
		return nil, fmt.Errorf("grammarviz: %w", err)
	}
	return frame, nil
}

// RestoreStream rebuilds a Stream from a Checkpoint frame. Damaged or
// inconsistent frames fail with an error wrapping ErrCorruptCheckpoint;
// decoding never panics, whatever the input.
func RestoreStream(frame []byte) (*Stream, error) {
	inner, err := checkpoint.Restore(frame)
	if err != nil {
		return nil, fmt.Errorf("grammarviz: %w", err)
	}
	return &Stream{inner: inner}, nil
}
