package grammarviz

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"
)

func testOpts() Options { return Options{Window: 45, PAA: 4, Alphabet: 4, Seed: 1} }

// TestNewRejectsNonFinite checks the single-place input validation: New
// rejects NaN and Inf with an ErrInvalidValue-wrapped error that names the
// first offending index.
func TestNewRejectsNonFinite(t *testing.T) {
	ts := testSeries(900, 45, 500, 60, 1)
	ts[123] = math.NaN()
	ts[456] = math.Inf(1)
	_, err := New(ts, testOpts())
	if !errors.Is(err, ErrInvalidValue) {
		t.Fatalf("err = %v, want ErrInvalidValue", err)
	}
	if !strings.Contains(err.Error(), "index 123") {
		t.Errorf("error %q does not name the first bad index 123", err)
	}
}

// TestStreamRejectsNonFinite checks the streaming side of the validation:
// Append rejects a bad point with ErrInvalidValue, names the stream
// position, and leaves the stream usable.
func TestStreamRejectsNonFinite(t *testing.T) {
	s, err := NewStream(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, _, err := s.Append(float64(i)); err != nil {
			t.Fatalf("finite append %d: %v", i, err)
		}
	}
	_, _, err = s.Append(math.NaN())
	if !errors.Is(err, ErrInvalidValue) {
		t.Fatalf("err = %v, want ErrInvalidValue", err)
	}
	if !strings.Contains(err.Error(), "index 10") {
		t.Errorf("error %q does not name stream position 10", err)
	}
	if s.Len() != 10 {
		t.Errorf("rejected point was retained: Len = %d, want 10", s.Len())
	}
	if _, _, err := s.Append(10); err != nil {
		t.Fatalf("stream unusable after rejection: %v", err)
	}
}

// TestStreamResetAndMemStats exercises the documented memory contract:
// MemStats reports O(points) retention and Reset releases it while keeping
// the stream usable.
func TestStreamResetAndMemStats(t *testing.T) {
	s, err := NewStream(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	ts := testSeries(900, 45, 500, 60, 1)
	words := 0
	for _, v := range ts {
		if _, ok, err := s.Append(v); err != nil {
			t.Fatal(err)
		} else if ok {
			words++
		}
	}
	m := s.MemStats()
	if m.Points != len(ts) {
		t.Errorf("Points = %d, want %d", m.Points, len(ts))
	}
	if m.Words != words {
		t.Errorf("Words = %d, want %d (events observed)", m.Words, words)
	}
	if m.Rules <= 0 {
		t.Errorf("Rules = %d, want > 0 on a periodic series", m.Rules)
	}

	s.Reset()
	m = s.MemStats()
	if m.Points != 0 || m.Words != 0 || m.Rules != 0 {
		t.Errorf("after Reset MemStats = %+v, want all zero", m)
	}
	if s.Len() != 0 {
		t.Errorf("after Reset Len = %d, want 0", s.Len())
	}
	for _, v := range ts {
		if _, _, err := s.Append(v); err != nil {
			t.Fatalf("append after Reset: %v", err)
		}
	}
	if got := s.MemStats().Points; got != len(ts) {
		t.Errorf("second epoch Points = %d, want %d", got, len(ts))
	}
}

// TestNewCtxCancelled checks that analysis itself (discretization +
// induction) honors a cancelled context.
func TestNewCtxCancelled(t *testing.T) {
	ts := testSeries(900, 45, 500, 60, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewCtx(ctx, ts, testOpts()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestDiscordsCtxEquivalence checks the PR's core guarantee at the public
// surface: with a background context the ctx-aware query returns exactly
// what the legacy query returns, at several worker counts.
func TestDiscordsCtxEquivalence(t *testing.T) {
	ts := testSeries(900, 45, 500, 60, 1)
	var want []Discord
	for i, workers := range []int{0, 1, 2, 5} {
		opts := testOpts()
		opts.Workers = workers
		det, err := New(ts, opts)
		if err != nil {
			t.Fatal(err)
		}
		legacy, err := det.Discords(2)
		if err != nil {
			t.Fatal(err)
		}
		res, err := det.DiscordsCtx(context.Background(), 2)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Partial || res.Fallback {
			t.Fatalf("workers=%d: uncancelled result flagged %+v", workers, res)
		}
		if i == 0 {
			want = legacy
		}
		for _, got := range [][]Discord{legacy, res.Discords} {
			if len(got) != len(want) {
				t.Fatalf("workers=%d: %d discords, want %d", workers, len(got), len(want))
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("workers=%d: discord %d = %+v, want %+v", workers, j, got[j], want[j])
				}
			}
		}
	}
}

// TestDiscordsBestEffortLadder drives the degradation ladder end to end:
// an uncancelled query is exact; an immediately-cancelled query falls back
// to density minima (Fallback, no distance evidence) instead of erroring.
func TestDiscordsBestEffortLadder(t *testing.T) {
	ts := testSeries(900, 45, 500, 60, 1)
	det, err := New(ts, testOpts())
	if err != nil {
		t.Fatal(err)
	}

	exact, err := det.DiscordsBestEffort(context.Background(), 2)
	if err != nil {
		t.Fatalf("uncancelled best-effort: %v", err)
	}
	if exact.Partial || exact.Fallback {
		t.Fatalf("uncancelled best-effort flagged %+v", exact)
	}
	if len(exact.Discords) == 0 {
		t.Fatal("uncancelled best-effort found nothing")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := det.DiscordsBestEffort(ctx, 2)
	if err != nil {
		t.Fatalf("best-effort must not fail on cancellation: %v", err)
	}
	if !res.Partial || !res.Fallback {
		t.Fatalf("pre-cancelled best-effort not marked Partial+Fallback: %+v", res)
	}
	if len(res.Discords) == 0 {
		t.Fatal("fallback produced no density-minima discords")
	}
	for _, d := range res.Discords {
		if d.Distance != -1 || d.NNStart != -1 {
			t.Errorf("fallback discord carries distance evidence: %+v", d)
		}
	}

	// The DeadlineExceeded flavor must degrade identically.
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	res, err = det.DiscordsBestEffort(dctx, 2)
	if err != nil {
		t.Fatalf("best-effort must not fail on an expired deadline: %v", err)
	}
	if !res.Partial {
		t.Fatalf("expired-deadline best-effort not marked Partial: %+v", res)
	}
}

// TestDiscordsBestEffortFallbackContent pins down the *content* of the
// fallback tier, not just its flags: the density-minima discords are
// exactly the detector's GlobalMinima intervals in order, truncated at k,
// with no distance evidence and no proposing rule. The ladder's other
// tests check when the tier triggers; this one checks what it returns.
func TestDiscordsBestEffortFallbackContent(t *testing.T) {
	ts := testSeries(900, 45, 500, 60, 1)
	det, err := New(ts, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	minima := det.GlobalMinima()
	if len(minima) == 0 {
		t.Fatal("series produced no global minima; the fixture is broken")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, k := range []int{1, 2, len(minima) + 5} {
		res, err := det.DiscordsBestEffort(ctx, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if !res.Partial || !res.Fallback {
			t.Fatalf("k=%d: fallback tier not flagged: %+v", k, res)
		}
		want := min(k, len(minima))
		if len(res.Discords) != want {
			t.Fatalf("k=%d: %d fallback discords, want %d (minima truncated at k)",
				k, len(res.Discords), want)
		}
		for i, d := range res.Discords {
			if d.Start != minima[i].Start || d.End != minima[i].End {
				t.Errorf("k=%d: fallback discord %d = [%d,%d], want minimum [%d,%d]",
					k, i, d.Start, d.End, minima[i].Start, minima[i].End)
			}
			if d.Distance != -1 || d.NNStart != -1 {
				t.Errorf("k=%d: fallback discord %d carries distance evidence: %+v", k, i, d)
			}
			if d.RuleID != -1 {
				t.Errorf("k=%d: fallback discord %d claims proposing rule %d", k, i, d.RuleID)
			}
		}
	}
}

// TestFingerprint checks the cache-key contract behind gvad's detector
// cache: equal (series, options) pairs agree, anything that changes the
// analysis disagrees, and Workers — which never changes results — is
// excluded.
func TestFingerprint(t *testing.T) {
	ts := testSeries(300, 30, 150, 30, 1)
	opts := testOpts()
	base := Fingerprint(ts, opts)
	if base != Fingerprint(append([]float64(nil), ts...), opts) {
		t.Error("equal series+options fingerprint differently")
	}

	w := opts
	w.Workers = 7
	if Fingerprint(ts, w) != base {
		t.Error("Workers changed the fingerprint despite never changing results")
	}

	perturbed := append([]float64(nil), ts...)
	perturbed[150] += 1e-9
	if Fingerprint(perturbed, opts) == base {
		t.Error("a changed sample kept the fingerprint")
	}
	for name, o := range map[string]Options{
		"window":    {Window: opts.Window + 1, PAA: opts.PAA, Alphabet: opts.Alphabet, Seed: opts.Seed},
		"paa":       {Window: opts.Window, PAA: opts.PAA + 1, Alphabet: opts.Alphabet, Seed: opts.Seed},
		"alphabet":  {Window: opts.Window, PAA: opts.PAA, Alphabet: opts.Alphabet + 1, Seed: opts.Seed},
		"seed":      {Window: opts.Window, PAA: opts.PAA, Alphabet: opts.Alphabet, Seed: opts.Seed + 1},
		"reduction": {Window: opts.Window, PAA: opts.PAA, Alphabet: opts.Alphabet, Seed: opts.Seed, Reduction: ReduceNone},
	} {
		if Fingerprint(ts, o) == base {
			t.Errorf("changing %s kept the fingerprint", name)
		}
	}
	if Fingerprint(ts[:299], opts) == base {
		t.Error("a shorter series kept the fingerprint")
	}
}

// TestMultiscaleDensityCtx checks cancellation and background-equivalence
// of the multiscale sweep.
func TestMultiscaleDensityCtx(t *testing.T) {
	ts := testSeries(900, 45, 500, 60, 1)
	windows := []int{30, 45, 90}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MultiscaleDensityCtx(ctx, ts, windows, 4, 4, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	want, err := MultiscaleDensity(ts, windows, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MultiscaleDensityCtx(context.Background(), ts, windows, 4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("curve[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}
