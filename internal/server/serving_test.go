package server

// Tests for the multi-tenant serving layer: request coalescing, the
// sharded detector cache, the batch endpoint, and tenant-keyed cost
// budgets. The single-request correctness suite lives in server_test.go.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"testing"
	"time"

	"grammarviz"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCoalescedInduction: N concurrent identical requests observe exactly
// one induction. The induce hook holds the first flight open until every
// caller has joined it, making the join count deterministic; the
// cache-miss counter (incremented once per actual induction) is the
// "exactly one" assertion.
func TestCoalescedInduction(t *testing.T) {
	const n = 8
	s, ts := newTestServer(t, Config{MaxConcurrent: n, MaxQueue: 2 * n})

	series := testSeries(900, 45, 500, 60, 1)
	opts := grammarviz.Options{Window: 45, PAA: 4, Alphabet: 4}
	key := grammarviz.Fingerprint(series, opts)

	gate := make(chan struct{})
	s.testHookInduce = func() { <-gate }

	req := AnalyzeRequest{Series: series, Mode: ModeDensity, Window: 45, PAA: 4, Alphabet: 4}
	statuses := make([]int, n)
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			statuses[i], bodies[i] = postAnalyze(t, ts.URL, req)
		}(i)
	}
	// Release the flight only once all n requests are attached to it, so
	// exactly n-1 of them joined a flight they did not start.
	waitFor(t, "all callers to join the flight", func() bool { return s.flights.Waiting(key) == n })
	close(gate)
	wg.Wait()

	for i, st := range statuses {
		if st != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, st, bodies[i])
		}
	}
	if v := s.cacheMisses.Value(); v != 1 {
		t.Errorf("inductions = %d, want exactly 1 for %d concurrent identical requests", v, n)
	}
	if v := s.coalesced.Value(); v != n-1 {
		t.Errorf("gvad_coalesce_shared_total = %d, want %d", v, n-1)
	}
	if v := s.cacheHits.Value(); v != 0 {
		t.Errorf("cache hits = %d during a single coalesced flight, want 0", v)
	}

	// Every response is byte-identical to the others — a joiner's answer
	// is indistinguishable from the inducer's. elapsed_ms is per-request
	// wall clock, so normalize it before comparing.
	norm := func(raw []byte) []byte {
		var m map[string]any
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Fatalf("decode response %s: %v", raw, err)
		}
		delete(m, "elapsed_ms")
		delete(m, "cache_hit") // false for the inducer, true for joiners
		out, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	first := norm(bodies[0])
	for i := 1; i < n; i++ {
		if got := norm(bodies[i]); !bytes.Equal(got, first) {
			t.Errorf("response %d diverged from response 0:\n%s\n%s", i, got, first)
		}
	}

	// The flight is gone and a later identical request is a plain cache
	// hit, not a new induction.
	if got := s.flights.Inflight(); got != 0 {
		t.Errorf("flights in progress after drain = %d, want 0", got)
	}
	status, body := postAnalyze(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("follow-up request: status %d: %s", status, body)
	}
	if got := decodeAnalyze(t, body); !got.CacheHit {
		t.Error("follow-up request missed the cache")
	}
	if v := s.cacheMisses.Value(); v != 1 {
		t.Errorf("inductions after follow-up = %d, want still 1", v)
	}
}

// TestCancelledWaiterDoesNotKillFlight: a waiter whose deadline expires
// mid-flight detaches with its own timeout error while the remaining
// participant still receives the induced detector.
func TestCancelledWaiterDoesNotKillFlight(t *testing.T) {
	const n = 3
	s, ts := newTestServer(t, Config{MaxConcurrent: n, MaxQueue: 2 * n})
	series := testSeries(900, 45, 500, 60, 2)
	key := grammarviz.Fingerprint(series, grammarviz.Options{Window: 45, PAA: 4, Alphabet: 4})

	gate := make(chan struct{})
	s.testHookInduce = func() { <-gate }

	patient := AnalyzeRequest{Series: series, Mode: ModeDensity, Window: 45, PAA: 4, Alphabet: 4}
	impatient := patient
	impatient.TimeoutMS = 80

	results := make(chan struct {
		timeoutMS int64
		status    int
		body      []byte
	}, n)
	post := func(r AnalyzeRequest) {
		status, body := postAnalyze(t, ts.URL, r)
		results <- struct {
			timeoutMS int64
			status    int
			body      []byte
		}{r.TimeoutMS, status, body}
	}
	go post(patient)
	go post(impatient)
	go post(patient)
	waitFor(t, "all callers to join the flight", func() bool { return s.flights.Waiting(key) == n })

	// The impatient waiter detaches on its own deadline; the flight keeps
	// exactly the two patient participants.
	waitFor(t, "impatient waiter to detach", func() bool { return s.flights.Waiting(key) == n-1 })
	close(gate)

	var ok, timedOut int
	for i := 0; i < n; i++ {
		r := <-results
		switch {
		case r.status == http.StatusOK:
			ok++
		case r.status == http.StatusGatewayTimeout && r.timeoutMS > 0:
			timedOut++
		default:
			t.Errorf("unexpected outcome: timeout_ms=%d status=%d body=%s", r.timeoutMS, r.status, r.body)
		}
	}
	if ok != n-1 || timedOut != 1 {
		t.Errorf("ok=%d timedOut=%d, want %d ok and 1 timeout", ok, timedOut, n-1)
	}
	if v := s.cacheMisses.Value(); v != 1 {
		t.Errorf("inductions = %d, want 1 (detachment must not restart the flight)", v)
	}
}

// shardIndex mirrors the sharded cache's documented selector — the
// fingerprint's leading hex nibbles — so the test can construct a
// workload that provably touches every shard.
func shardIndex(fp string, shards int) int {
	v, err := strconv.ParseUint(fp[:8], 16, 32)
	if err != nil {
		panic("fingerprint is not hex: " + fp)
	}
	return int(v) & (shards - 1)
}

// TestShardEvictionTotalsMatchSingleLRU drives the identical HTTP
// workload through an 8-shard server and a single-shard server sized to
// the same total capacity. The workload is constructed so every shard
// overflows, which pins both caches at full occupancy — making the
// sharded eviction total provably equal the single-LRU total, and the
// aggregate counters equal the sum over ShardStats.
func TestShardEvictionTotalsMatchSingleLRU(t *testing.T) {
	const shards = 8
	opts := grammarviz.Options{Window: 30, PAA: 4, Alphabet: 4}

	// Collect distinct series until every shard has at least two keys
	// (two adds into a one-entry shard force at least one eviction there).
	perShard := make([]int, shards)
	var workload [][]float64
	covered := 0
	for seed := int64(1); covered < shards; seed++ {
		series := testSeries(300, 30, 150, 30, seed)
		idx := shardIndex(grammarviz.Fingerprint(series, opts), shards)
		if perShard[idx] >= 2 {
			continue
		}
		perShard[idx]++
		if perShard[idx] == 2 {
			covered++
		}
		workload = append(workload, series)
	}

	run := func(cacheShards int) *Server {
		s, ts := newTestServer(t, Config{CacheSize: shards, CacheShards: cacheShards})
		for _, series := range workload {
			req := AnalyzeRequest{Series: series, Mode: ModeDensity, Window: 30, PAA: 4, Alphabet: 4}
			if status, body := postAnalyze(t, ts.URL, req); status != http.StatusOK {
				t.Fatalf("status %d: %s", status, body)
			}
		}
		return s
	}
	sharded := run(shards)
	single := run(1)

	var sum struct{ hits, misses, evictions uint64 }
	for _, st := range sharded.ShardStats() {
		sum.hits += st.Hits
		sum.misses += st.Misses
		sum.evictions += st.Evictions
	}
	agg := sharded.CacheStats()
	if agg.Hits != sum.hits || agg.Misses != sum.misses || agg.Evictions != sum.evictions {
		t.Errorf("aggregate %+v does not sum shard counters %+v", agg, sum)
	}

	ss := single.CacheStats()
	if agg.Evictions != ss.Evictions {
		t.Errorf("sharded evictions = %d, single-LRU evictions = %d on the same workload (len %d vs %d)",
			agg.Evictions, ss.Evictions, agg.Len, ss.Len)
	}
	if agg.Len != shards || ss.Len != shards {
		t.Errorf("occupancy sharded=%d single=%d, want both pinned at capacity %d", agg.Len, ss.Len, shards)
	}
	if agg.Hits+agg.Misses != ss.Hits+ss.Misses {
		t.Errorf("lookup totals diverged: sharded %d, single %d", agg.Hits+agg.Misses, ss.Hits+ss.Misses)
	}
	if got, want := sharded.cacheEvictions.Value(), uint64(len(workload)-shards); got != want {
		t.Errorf("gvad_cache_evictions_total = %d, want %d (distinct inductions - occupancy)", got, want)
	}
}

// postBatch posts a batch request and returns the HTTP status with the
// decoded response (when 200).
func postBatch(t *testing.T, url string, req BatchRequest) (int, *BatchResponse, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/analyze/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, nil, buf.Bytes()
	}
	var out BatchResponse
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("decode batch response %s: %v", buf.Bytes(), err)
	}
	return resp.StatusCode, &out, buf.Bytes()
}

// TestBatchPartialFailure: a batch mixing valid and invalid items returns
// 200 with per-item outcomes — the invalid item carries its own 400 and
// message, and the valid items' results match the single endpoint's.
func TestBatchPartialFailure(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	series := testSeries(900, 45, 500, 60, 1)
	valid := AnalyzeRequest{Series: series, Mode: ModeDensity, Window: 45, PAA: 4, Alphabet: 4}
	invalid := AnalyzeRequest{Mode: ModeRRA, Window: 30, PAA: 4, Alphabet: 4} // no series
	discords := AnalyzeRequest{Series: series, Mode: ModeRRA, Window: 45, PAA: 4, Alphabet: 4, K: 2}

	status, batch, raw := postBatch(t, ts.URL, BatchRequest{
		Tenant:   "team-a",
		Requests: []AnalyzeRequest{valid, invalid, discords},
	})
	if status != http.StatusOK {
		t.Fatalf("batch status = %d: %s", status, raw)
	}
	if batch.OK != 2 || batch.Failed != 1 || len(batch.Results) != 3 {
		t.Fatalf("ok=%d failed=%d results=%d, want 2/1/3", batch.OK, batch.Failed, len(batch.Results))
	}
	for i, item := range batch.Results {
		if item.Index != i {
			t.Errorf("result %d carries index %d", i, item.Index)
		}
	}
	if got := batch.Results[1]; got.Status != http.StatusBadRequest || got.Response != nil ||
		!bytes.Contains([]byte(got.Error), []byte("series is required")) {
		t.Errorf("invalid item = %+v, want a self-contained 400", got)
	}

	// The valid items match what /v1/analyze answers for the same request.
	singleStatus, singleBody := postAnalyze(t, ts.URL, discords)
	if singleStatus != http.StatusOK {
		t.Fatalf("single status %d: %s", singleStatus, singleBody)
	}
	want := decodeAnalyze(t, singleBody)
	got := batch.Results[2].Response
	if got == nil || got.Algorithm != want.Algorithm || len(got.Discords) != len(want.Discords) {
		t.Fatalf("batch item response %+v diverges from single response %+v", got, want)
	}
	for i := range want.Discords {
		if got.Discords[i] != want.Discords[i] {
			t.Errorf("discord %d = %+v, want %+v", i, got.Discords[i], want.Discords[i])
		}
	}
}

// TestBatchValidation covers the batch-shape rejections: empty sets and
// sets beyond MaxBatch are 400s for the whole batch (there is nothing
// meaningful to partially serve).
func TestBatchValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBatch: 2})
	series := testSeries(300, 30, 150, 30, 1)
	item := AnalyzeRequest{Series: series, Mode: ModeDensity, Window: 30, PAA: 4, Alphabet: 4}

	if status, _, body := postBatch(t, ts.URL, BatchRequest{}); status != http.StatusBadRequest {
		t.Errorf("empty batch: status %d (%s), want 400", status, body)
	}
	over := BatchRequest{Requests: []AnalyzeRequest{item, item, item}}
	if status, _, body := postBatch(t, ts.URL, over); status != http.StatusBadRequest {
		t.Errorf("oversized batch: status %d (%s), want 400", status, body)
	}
	if status, batch, body := postBatch(t, ts.URL, BatchRequest{Requests: []AnalyzeRequest{item, item}}); status != http.StatusOK || batch.OK != 2 {
		t.Errorf("full-width batch: status %d (%s)", status, body)
	}
}

// TestTenantFairShare drives the admission story end to end over HTTP: a
// hot tenant holds the pool and queues a backlog, then a cold tenant
// arrives last — and is admitted before the hot tenant's backlog, because
// wake order follows least admitted cost, not arrival time.
func TestTenantFairShare(t *testing.T) {
	// A 900-point density request costs 900 tokens: capacity 2048 admits
	// two at a time and queues the third, making wake order observable.
	s, ts := newTestServer(t, Config{BudgetCapacity: 2048, MaxConcurrent: 4, MaxQueue: 8})

	// Every admitted request announces its tenant, then blocks until the
	// test hands it one step token — so releases happen one at a time and
	// the grant order is deterministic.
	admitted := make(chan string, 8)
	step := make(chan struct{})
	s.testHookAnalyze = func(r *AnalyzeRequest) {
		admitted <- r.Tenant
		<-step
	}

	series := testSeries(900, 45, 500, 60, 3)
	req := AnalyzeRequest{Series: series, Mode: ModeDensity, Window: 45, PAA: 4, Alphabet: 4}
	done := make(chan string, 4)
	post := func(tenant string) {
		go func() {
			r := req
			r.Tenant = tenant
			status, body := postAnalyze(t, ts.URL, r)
			if status != http.StatusOK {
				t.Errorf("tenant %s: status %d: %s", tenant, status, body)
			}
			done <- tenant
		}()
	}

	post("hot")
	post("hot")
	for i := 0; i < 2; i++ {
		if got := <-admitted; got != "hot" {
			t.Fatalf("admission %d went to %q, want hot", i, got)
		}
	}
	post("hot") // backlog: does not fit until a release
	waitFor(t, "hot backlog queued", func() bool { return s.pendingQueue() == 1 })
	post("cold") // arrives last, holds zero admitted cost
	waitFor(t, "cold tenant queued", func() bool { return s.pendingQueue() == 2 })

	// First release: hot still holds 900 tokens, cold holds zero — the
	// cold tenant is woken despite queueing behind hot's backlog.
	step <- struct{}{}
	if got := <-admitted; got != "cold" {
		t.Fatalf("first wake went to %q, want the cold tenant", got)
	}
	// Second release frees enough for hot's queued request.
	step <- struct{}{}
	if got := <-admitted; got != "hot" {
		t.Fatalf("second wake went to %q, want hot's backlog", got)
	}
	// Unblock the two still-held requests and drain.
	step <- struct{}{}
	step <- struct{}{}
	for i := 0; i < 4; i++ {
		<-done
	}
}
