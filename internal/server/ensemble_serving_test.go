package server

// Tests for the ensemble analyze mode and the stream anomalies endpoint:
// byte-identical scores versus the library call, caching on repeat,
// coalescing under a duplicate herd, the batch path, and the read-only
// density snapshot of a streaming session.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"reflect"
	"sync"
	"testing"

	"grammarviz"
)

// TestEnsembleMatchesLibrary is the ensemble end of the acceptance
// criterion: the gvad ensemble mode returns byte-identical scores to the
// grammarviz.EnsembleDensity library call (JSON float encoding is
// round-trippable, so equality after decode is bit equality), and a
// repeated identical request is served from the ensemble cache.
func TestEnsembleMatchesLibrary(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	series := testSeries(900, 45, 500, 60, 1)
	req := AnalyzeRequest{Series: series, Mode: ModeEnsemble, Members: 8, Seed: 3}

	want, err := grammarviz.EnsembleDensity(series, grammarviz.EnsembleOptions{Members: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}

	status, body := postAnalyze(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	got := decodeAnalyze(t, body)
	if got.Algorithm != "ensemble density" {
		t.Errorf("algorithm = %q", got.Algorithm)
	}
	if got.CacheHit {
		t.Error("first request claims a cache hit")
	}
	if got.Ensemble == nil {
		t.Fatal("response carries no ensemble result")
	}
	if !reflect.DeepEqual(got.Ensemble.Score, want.Score) {
		t.Error("served scores diverge from the library call")
	}
	if !reflect.DeepEqual(got.Ensemble.Agreement, want.Agreement) {
		t.Error("served agreement diverges from the library call")
	}
	if !reflect.DeepEqual(got.Ensemble.Members, want.Members) {
		t.Error("served member list diverges from the library call")
	}
	if got.Ensemble.Used != want.Used || got.Ensemble.Used == 0 {
		t.Errorf("members_used = %d, want %d (> 0)", got.Ensemble.Used, want.Used)
	}
	if len(got.EnsembleAnomalies) == 0 {
		t.Error("no ensemble anomalies on a series with a planted anomaly")
	}

	// The repeat is a cache hit with the same payload.
	status, body2 := postAnalyze(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("repeat status %d: %s", status, body2)
	}
	got2 := decodeAnalyze(t, body2)
	if !got2.CacheHit {
		t.Error("repeated identical ensemble request missed the cache")
	}
	if !reflect.DeepEqual(got2.Ensemble, got.Ensemble) {
		t.Error("cached ensemble result diverges from the induced one")
	}
	if v := s.cacheMisses.Value(); v != 1 {
		t.Errorf("ensemble inductions = %d, want 1", v)
	}
	if v := s.cacheHits.Value(); v != 1 {
		t.Errorf("cache hits = %d, want 1", v)
	}

	// A different seed is a different fingerprint, not a cache hit.
	reseeded := req
	reseeded.Seed = 4
	status, body3 := postAnalyze(t, ts.URL, reseeded)
	if status != http.StatusOK {
		t.Fatalf("reseeded status %d: %s", status, body3)
	}
	if got3 := decodeAnalyze(t, body3); got3.CacheHit {
		t.Error("different sampler seed hit the cache")
	}
}

// TestEnsembleCoalesced: a herd of concurrent identical ensemble requests
// observes exactly one fused induction — the others join its flight and
// return byte-identical bodies.
func TestEnsembleCoalesced(t *testing.T) {
	const n = 6
	s, ts := newTestServer(t, Config{MaxConcurrent: n, MaxQueue: 2 * n})
	series := testSeries(900, 45, 500, 60, 2)
	key := grammarviz.EnsembleFingerprint(series, grammarviz.EnsembleOptions{Members: 6, Seed: 1})

	gate := make(chan struct{})
	s.testHookInduce = func() { <-gate }

	req := AnalyzeRequest{Series: series, Mode: ModeEnsemble, Members: 6, Seed: 1}
	statuses := make([]int, n)
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			statuses[i], bodies[i] = postAnalyze(t, ts.URL, req)
		}(i)
	}
	waitFor(t, "all callers to join the ensemble flight", func() bool { return s.eflights.Waiting(key) == n })
	close(gate)
	wg.Wait()

	for i, st := range statuses {
		if st != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, st, bodies[i])
		}
	}
	if v := s.cacheMisses.Value(); v != 1 {
		t.Errorf("inductions = %d, want exactly 1 for %d concurrent identical requests", v, n)
	}
	if v := s.coalesced.Value(); v != n-1 {
		t.Errorf("coalesced = %d, want %d", v, n-1)
	}

	norm := func(raw []byte) []byte {
		var m map[string]any
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Fatalf("decode response %s: %v", raw, err)
		}
		delete(m, "elapsed_ms")
		delete(m, "cache_hit")
		out, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	first := norm(bodies[0])
	for i := 1; i < n; i++ {
		if got := norm(bodies[i]); !bytes.Equal(got, first) {
			t.Errorf("response %d diverged from response 0", i)
		}
	}
}

// TestEnsembleValidationAndErrors covers the request-shape rejections and
// the typed no-valid-members failure.
func TestEnsembleValidationAndErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	if status, body := postAnalyze(t, ts.URL, AnalyzeRequest{
		Series: []float64{1, 2, 3}, Mode: ModeEnsemble, Members: -1,
	}); status != http.StatusBadRequest {
		t.Errorf("negative members: status %d (%s), want 400", status, body)
	}
	if status, body := postAnalyze(t, ts.URL, AnalyzeRequest{
		Series: []float64{1, 2, 3}, Mode: ModeEnsemble, Members: maxEnsembleMembers + 1,
	}); status != http.StatusBadRequest {
		t.Errorf("oversized members: status %d (%s), want 400", status, body)
	}
	// A series far below the smallest sampleable window: every member is
	// invalid, which is the typed 422, not a 500.
	if status, body := postAnalyze(t, ts.URL, AnalyzeRequest{
		Series: []float64{1, 2, 3, 4, 5}, Mode: ModeEnsemble,
	}); status != http.StatusUnprocessableEntity {
		t.Errorf("unanalyzable series: status %d (%s), want 422", status, body)
	}
}

// TestEnsembleBatch: an ensemble item rides the batch endpoint and
// matches the single endpoint's answer.
func TestEnsembleBatch(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	series := testSeries(900, 45, 500, 60, 3)
	item := AnalyzeRequest{Series: series, Mode: ModeEnsemble, Members: 6, Seed: 2}

	status, batch, raw := postBatch(t, ts.URL, BatchRequest{Requests: []AnalyzeRequest{item}})
	if status != http.StatusOK {
		t.Fatalf("batch status %d: %s", status, raw)
	}
	if batch.OK != 1 || batch.Failed != 0 || len(batch.Results) != 1 {
		t.Fatalf("ok=%d failed=%d results=%d, want 1/0/1", batch.OK, batch.Failed, len(batch.Results))
	}
	got := batch.Results[0].Response
	if got == nil || got.Ensemble == nil {
		t.Fatalf("batch item carries no ensemble result: %+v", batch.Results[0])
	}

	singleStatus, singleBody := postAnalyze(t, ts.URL, item)
	if singleStatus != http.StatusOK {
		t.Fatalf("single status %d: %s", singleStatus, singleBody)
	}
	want := decodeAnalyze(t, singleBody)
	if !reflect.DeepEqual(got.Ensemble.Score, want.Ensemble.Score) {
		t.Error("batch ensemble scores diverge from the single endpoint")
	}
	if !reflect.DeepEqual(got.EnsembleAnomalies, want.EnsembleAnomalies) {
		t.Error("batch ensemble anomalies diverge from the single endpoint")
	}
}

// TestStreamAnomaliesEndpoint: the session's density snapshot matches a
// library Stream fed the same points, the endpoint is read-only (no WAL
// growth), and premature or unauthenticated queries fail with their own
// statuses.
func TestStreamAnomaliesEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{StateDir: t.TempDir()})
	sess := openSession(t, ts.URL, sessionOpts)
	pts := streamSeries(400, 7)

	// Before a single full window: 422, the session itself is fine.
	if status, _, _ := appendPoints(t, ts.URL, sess, pts[:10], nil); status != http.StatusOK {
		t.Fatal("short append failed")
	}
	if status, body := doJSON(t, http.MethodGet, ts.URL+"/v1/stream/"+sess.ID+"/anomalies", sess.ResumeToken, nil); status != http.StatusUnprocessableEntity {
		t.Errorf("premature anomalies: status %d (%s), want 422", status, body)
	}

	if status, _, _ := appendPoints(t, ts.URL, sess, pts[10:], nil); status != http.StatusOK {
		t.Fatal("append failed")
	}
	stateBefore, _ := getSession(t, ts.URL, sess)
	_ = stateBefore

	status, body := doJSON(t, http.MethodGet, ts.URL+"/v1/stream/"+sess.ID+"/anomalies", sess.ResumeToken, nil)
	if status != http.StatusOK {
		t.Fatalf("anomalies: status %d: %s", status, body)
	}
	var got StreamAnomaliesResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.ID != sess.ID || got.Len != len(pts) {
		t.Errorf("id=%q len=%d, want %q/%d", got.ID, got.Len, sess.ID, len(pts))
	}

	// The library stream fed the same points answers identically.
	stream, err := grammarviz.NewStream(grammarviz.Options{
		Window: sessionOpts.Window, PAA: sessionOpts.PAA, Alphabet: sessionOpts.Alphabet,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range pts {
		if _, _, err := stream.Append(v); err != nil {
			t.Fatal(err)
		}
	}
	wantDensity, err := stream.RuleDensity()
	if err != nil {
		t.Fatal(err)
	}
	wantAnoms, err := stream.Anomalies()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Density, wantDensity) {
		t.Error("served density diverges from the library stream")
	}
	if !reflect.DeepEqual(got.Anomalies, wantAnoms) {
		t.Error("served anomalies diverge from the library stream")
	}

	// Read-only: polling anomalies grows no WAL bytes.
	_, s1 := getSession(t, ts.URL, sess)
	doJSON(t, http.MethodGet, ts.URL+"/v1/stream/"+sess.ID+"/anomalies", sess.ResumeToken, nil)
	_, s2 := getSession(t, ts.URL, sess)
	if s2.LogBytes != s1.LogBytes {
		t.Errorf("anomalies query grew the WAL: %d -> %d bytes", s1.LogBytes, s2.LogBytes)
	}

	// Wrong token: 403. Unknown session: 404.
	if status, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/stream/"+sess.ID+"/anomalies", "wrong", nil); status != http.StatusForbidden {
		t.Errorf("wrong token: status %d, want 403", status)
	}
	if status, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/stream/ffffffffffffffffffffffffffffffff/anomalies", sess.ResumeToken, nil); status != http.StatusNotFound {
		t.Errorf("unknown session: status %d, want 404", status)
	}
}
