package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"grammarviz"
)

func streamSeries(n int, seed int64) []float64 {
	ts := make([]float64, n)
	for i := range ts {
		ts[i] = math.Sin(2*math.Pi*float64(i)/40) + 0.01*float64((seed+int64(i*i))%17)
	}
	return ts
}

func doJSON(t *testing.T, method, url, token string, body any) (int, []byte) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set(resumeTokenHeader, token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.Bytes()
}

func openSession(t *testing.T, url string, req StreamOpenRequest) StreamOpenResponse {
	t.Helper()
	status, body := doJSON(t, http.MethodPost, url+"/v1/stream", "", req)
	if status != http.StatusCreated {
		t.Fatalf("open: status %d: %s", status, body)
	}
	var out StreamOpenResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	return out
}

func appendPoints(t *testing.T, url string, sess StreamOpenResponse, points []float64, offset *int) (int, StreamAppendResponse, []byte) {
	t.Helper()
	status, body := doJSON(t, http.MethodPost, url+"/v1/stream/"+sess.ID+"/append", sess.ResumeToken,
		StreamAppendRequest{Points: points, Offset: offset})
	var out StreamAppendResponse
	if status == http.StatusOK {
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
	}
	return status, out, body
}

func getSession(t *testing.T, url string, sess StreamOpenResponse) (int, StreamStateResponse) {
	t.Helper()
	status, body := doJSON(t, http.MethodGet, url+"/v1/stream/"+sess.ID, sess.ResumeToken, nil)
	var out StreamStateResponse
	if status == http.StatusOK {
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
	}
	return status, out
}

var sessionOpts = StreamOpenRequest{Window: 40, PAA: 4, Alphabet: 5}

// TestSessionLifecycle drives open → append → state → delete and checks
// the emitted events match a directly-driven Stream.
func TestSessionLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{StateDir: t.TempDir()})
	sess := openSession(t, ts.URL, sessionOpts)
	if sess.ID == "" || sess.ResumeToken == "" || sess.Reduction != "exact" {
		t.Fatalf("open response %+v", sess)
	}

	ref, err := grammarviz.NewStream(grammarviz.Options{Window: 40, PAA: 4, Alphabet: 5})
	if err != nil {
		t.Fatal(err)
	}
	pts := streamSeries(300, 1)
	var refEvents []grammarviz.StreamEvent
	for _, v := range pts {
		if ev, ok, err := ref.Append(v); err != nil {
			t.Fatal(err)
		} else if ok {
			refEvents = append(refEvents, ev)
		}
	}

	var gotEvents []StreamEventJSON
	for i := 0; i < len(pts); i += 70 {
		end := min(i+70, len(pts))
		status, resp, body := appendPoints(t, ts.URL, sess, pts[i:end], nil)
		if status != http.StatusOK {
			t.Fatalf("append: status %d: %s", status, body)
		}
		if resp.Len != end {
			t.Fatalf("append: len %d, want %d", resp.Len, end)
		}
		gotEvents = append(gotEvents, resp.Events...)
	}
	if len(gotEvents) != len(refEvents) {
		t.Fatalf("%d events over HTTP, %d direct", len(gotEvents), len(refEvents))
	}
	for i := range gotEvents {
		if gotEvents[i].Offset != refEvents[i].Offset || gotEvents[i].Word != refEvents[i].Word ||
			gotEvents[i].Novelty != refEvents[i].Novelty {
			t.Fatalf("event %d diverges: %+v vs %+v", i, gotEvents[i], refEvents[i])
		}
	}

	status, state := getSession(t, ts.URL, sess)
	if status != http.StatusOK || state.Len != len(pts) || state.Words == 0 || state.Rules == 0 {
		t.Fatalf("state: %d %+v", status, state)
	}

	if status, body := doJSON(t, http.MethodDelete, ts.URL+"/v1/stream/"+sess.ID, sess.ResumeToken, nil); status != http.StatusOK {
		t.Fatalf("delete: %d %s", status, body)
	}
	if status, _ := getSession(t, ts.URL, sess); status != http.StatusNotFound {
		t.Fatalf("deleted session answered %d", status)
	}
}

func TestSessionAuth(t *testing.T) {
	_, ts := newTestServer(t, Config{StateDir: t.TempDir()})
	sess := openSession(t, ts.URL, sessionOpts)
	bad := sess
	bad.ResumeToken = strings.Repeat("0", 64)
	if status, _, _ := appendPoints(t, ts.URL, bad, []float64{1}, nil); status != http.StatusForbidden {
		t.Fatalf("wrong token: %d", status)
	}
	bad.ResumeToken = ""
	if status, _, _ := appendPoints(t, ts.URL, bad, []float64{1}, nil); status != http.StatusForbidden {
		t.Fatalf("missing token: %d", status)
	}
	unknown := sess
	unknown.ID = strings.Repeat("a", 32)
	if status, _, _ := appendPoints(t, ts.URL, unknown, []float64{1}, nil); status != http.StatusNotFound {
		t.Fatalf("unknown id: %d", status)
	}
}

// TestSessionOffsetIdempotence pins the retry protocol: a chunk named by
// absolute offset double-sends as a 409 carrying the current length, so
// clients resync instead of corrupting the stream.
func TestSessionOffsetIdempotence(t *testing.T) {
	_, ts := newTestServer(t, Config{StateDir: t.TempDir()})
	sess := openSession(t, ts.URL, sessionOpts)
	pts := streamSeries(100, 2)
	zero := 0
	if status, _, body := appendPoints(t, ts.URL, sess, pts[:50], &zero); status != http.StatusOK {
		t.Fatalf("first chunk: %d %s", status, body)
	}
	// Retry of the same chunk: conflict, no double-append.
	if status, _, _ := appendPoints(t, ts.URL, sess, pts[:50], &zero); status != http.StatusConflict {
		t.Fatal("replayed chunk accepted")
	}
	fifty := 50
	if status, resp, _ := appendPoints(t, ts.URL, sess, pts[50:], &fifty); status != http.StatusOK || resp.Len != 100 {
		t.Fatalf("resumed chunk: %d len %d", status, resp.Len)
	}
	gap := 80
	if status, _, _ := appendPoints(t, ts.URL, sess, pts[:1], &gap); status != http.StatusConflict {
		t.Fatal("gapped chunk accepted")
	}
}

// TestSessionRejectsBadPoints: a chunk containing NaN/Inf is rejected
// atomically — session length unchanged, and the corrected chunk produces
// exactly the clean-run events.
func TestSessionRejectsBadPoints(t *testing.T) {
	_, ts := newTestServer(t, Config{StateDir: t.TempDir()})
	sess := openSession(t, ts.URL, sessionOpts)
	pts := streamSeries(120, 3)
	if status, _, _ := appendPoints(t, ts.URL, sess, pts[:60], nil); status != http.StatusOK {
		t.Fatal("clean prefix rejected")
	}
	// JSON has no NaN literal, so a poisoned chunk arrives as a malformed
	// body; either the decoder or the server's finiteness pre-scan must
	// reject it with 400 before any state changes.
	for _, raw := range []string{`{"points":[1,NaN,2]}`, `{"points":[1,1e999,2]}`} {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/stream/"+sess.ID+"/append", strings.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(resumeTokenHeader, sess.ResumeToken)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad chunk %s accepted: %d", raw, resp.StatusCode)
		}
	}
	if _, state := getSession(t, ts.URL, sess); state.Len != 60 {
		t.Fatalf("rejected chunk mutated the session: len %d", state.Len)
	}
	status, resp, _ := appendPoints(t, ts.URL, sess, pts[60:], nil)
	if status != http.StatusOK || resp.Len != 120 {
		t.Fatalf("corrected chunk: %d len %d", status, resp.Len)
	}
}

// TestSessionGracefulRestart checkpoints on drain, restarts, and requires
// the restored session to continue byte-identically.
func TestSessionGracefulRestart(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newTestServer(t, Config{StateDir: dir})
	sess := openSession(t, ts1.URL, sessionOpts)
	pts := streamSeries(400, 4)
	if status, _, _ := appendPoints(t, ts1.URL, sess, pts[:250], nil); status != http.StatusOK {
		t.Fatal("append failed")
	}
	if err := s1.CheckpointSessions(t.Context()); err != nil {
		t.Fatal(err)
	}
	s1.CloseSessions()
	ts1.Close()

	s2, ts2 := newTestServer(t, Config{StateDir: dir})
	restored, quarantined, err := s2.RecoverSessions(t.Context())
	if err != nil || restored != 1 || quarantined != 0 {
		t.Fatalf("recover: %d/%d %v", restored, quarantined, err)
	}
	status, state := getSession(t, ts2.URL, sess)
	if status != http.StatusOK || state.Len != 250 || !state.Restored {
		t.Fatalf("restored state: %d %+v", status, state)
	}

	// The restored session and an uninterrupted reference must emit the
	// same remaining events and reach identical checkpoints.
	ref, _ := grammarviz.NewStream(grammarviz.Options{Window: 40, PAA: 4, Alphabet: 5})
	var refTail []grammarviz.StreamEvent
	for i, v := range pts {
		ev, ok, err := ref.Append(v)
		if err != nil {
			t.Fatal(err)
		}
		if ok && i >= 250 {
			refTail = append(refTail, ev)
		}
	}
	_, resp, _ := appendPoints(t, ts2.URL, sess, pts[250:], nil)
	if len(resp.Events) != len(refTail) {
		t.Fatalf("%d events after restore, want %d", len(resp.Events), len(refTail))
	}
	for i := range refTail {
		if resp.Events[i].Word != refTail[i].Word || resp.Events[i].Offset != refTail[i].Offset {
			t.Fatalf("event %d diverges after restore", i)
		}
	}
}

// TestSessionCrashRestart abandons the first server without any graceful
// checkpoint — recovery must rebuild purely from the WAL.
func TestSessionCrashRestart(t *testing.T) {
	dir := t.TempDir()
	_, ts1 := newTestServer(t, Config{StateDir: dir})
	sess := openSession(t, ts1.URL, sessionOpts)
	pts := streamSeries(200, 5)
	if status, _, _ := appendPoints(t, ts1.URL, sess, pts, nil); status != http.StatusOK {
		t.Fatal("append failed")
	}
	ts1.Close() // no CheckpointSessions, no CloseSessions: a crash

	s2, ts2 := newTestServer(t, Config{StateDir: dir})
	if restored, quarantined, err := s2.RecoverSessions(t.Context()); err != nil || restored != 1 || quarantined != 0 {
		t.Fatalf("recover: %d/%d %v", restored, quarantined, err)
	}
	if _, state := getSession(t, ts2.URL, sess); state.Len != 200 {
		t.Fatalf("crash recovery lost points: len %d", state.Len)
	}
}

// TestSessionQuarantine damages one of two sessions on disk; boot must
// quarantine it (rename aside, count) and restore the other.
func TestSessionQuarantine(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newTestServer(t, Config{StateDir: dir})
	good := openSession(t, ts1.URL, sessionOpts)
	bad := openSession(t, ts1.URL, sessionOpts)
	pts := streamSeries(150, 6)
	appendPoints(t, ts1.URL, good, pts, nil)
	// Two chunks → two WAL records: damage to the FIRST record is
	// unambiguous corruption, not a crash-torn tail.
	appendPoints(t, ts1.URL, bad, pts[:75], nil)
	appendPoints(t, ts1.URL, bad, pts[75:], nil)
	s1.CloseSessions()
	ts1.Close()

	// Damage a byte inside the bad session's first WAL record.
	seg := filepath.Join(dir, bad.ID, "wal-000001.log")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[20] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, ts2 := newTestServer(t, Config{StateDir: dir})
	restored, quarantined, err := s2.RecoverSessions(t.Context())
	if err != nil || restored != 1 || quarantined != 1 {
		t.Fatalf("recover: %d/%d %v", restored, quarantined, err)
	}
	if _, state := getSession(t, ts2.URL, good); state.Len != 150 {
		t.Fatalf("good session: len %d", state.Len)
	}
	if status, _ := getSession(t, ts2.URL, bad); status != http.StatusNotFound {
		t.Fatalf("quarantined session still served: %d", status)
	}
	if _, err := os.Stat(filepath.Join(dir, bad.ID+quarantineSuffix)); err != nil {
		t.Fatalf("quarantine dir missing: %v", err)
	}
}

// TestSessionEviction: an idle session is checkpointed and dropped from
// memory, then transparently restored on the next touch.
func TestSessionEviction(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{StateDir: dir, SessionTTL: time.Minute})
	sess := openSession(t, ts.URL, sessionOpts)
	pts := streamSeries(130, 7)
	appendPoints(t, ts.URL, sess, pts, nil)

	s.evictIdleSessions(time.Now().Add(2 * time.Minute))
	s.sup.mu.Lock()
	resident := s.sup.sessions[sess.ID].stream != nil
	s.sup.mu.Unlock()
	if resident {
		t.Fatal("idle session not evicted")
	}
	status, state := getSession(t, ts.URL, sess)
	if status != http.StatusOK || state.Len != 130 || !state.Restored {
		t.Fatalf("post-eviction touch: %d %+v", status, state)
	}
	if status, resp, _ := appendPoints(t, ts.URL, sess, []float64{1, 2, 3}, nil); status != http.StatusOK || resp.Len != 133 {
		t.Fatalf("append after restore: %d", status)
	}
}

// TestSessionEvictionWithoutStateDir: memory-only sessions are closed
// outright when idle.
func TestSessionEvictionWithoutStateDir(t *testing.T) {
	s, ts := newTestServer(t, Config{SessionTTL: time.Minute})
	sess := openSession(t, ts.URL, sessionOpts)
	appendPoints(t, ts.URL, sess, streamSeries(50, 8), nil)
	s.evictIdleSessions(time.Now().Add(2 * time.Minute))
	if status, _ := getSession(t, ts.URL, sess); status != http.StatusNotFound {
		t.Fatalf("memory-only idle session survived eviction: %d", status)
	}
}

// TestSessionPanicContainment: a panic inside one session's append 500s
// and poisons that session only; its neighbor keeps working.
func TestSessionPanicContainment(t *testing.T) {
	s, ts := newTestServer(t, Config{StateDir: t.TempDir()})
	victim := openSession(t, ts.URL, sessionOpts)
	bystander := openSession(t, ts.URL, sessionOpts)
	s.testHookStreamAppend = func(id string) {
		if id == victim.ID {
			panic("injected session panic")
		}
	}
	if status, _, body := appendPoints(t, ts.URL, victim, []float64{1, 2}, nil); status != http.StatusInternalServerError {
		t.Fatalf("panic append: %d %s", status, body)
	}
	// Poisoned: every further append refuses.
	if status, _, _ := appendPoints(t, ts.URL, victim, []float64{3}, nil); status != http.StatusInternalServerError {
		t.Fatal("poisoned session accepted an append")
	}
	if status, _, _ := appendPoints(t, ts.URL, bystander, []float64{1, 2, 3}, nil); status != http.StatusOK {
		t.Fatal("bystander session broken by neighbor's panic")
	}
	if status, _ := doJSON(t, http.MethodDelete, ts.URL+"/v1/stream/"+victim.ID, victim.ResumeToken, nil); status != http.StatusOK {
		t.Fatal("poisoned session cannot be deleted")
	}
}

// TestSessionCompaction drives enough appends that the WAL outgrows the
// snapshot and compaction fires.
func TestSessionCompaction(t *testing.T) {
	// Compaction has a 64KiB log floor, so it takes ~8200 points of WAL
	// (8 bytes each) before the K×snapshot trigger can fire.
	_, ts := newTestServer(t, Config{StateDir: t.TempDir(), CompactFactor: 1, SegmentBytes: 16 << 10})
	sess := openSession(t, ts.URL, sessionOpts)
	pts := streamSeries(10_000, 9)
	compacted := false
	for i := 0; i < len(pts); i += 500 {
		_, resp, _ := appendPoints(t, ts.URL, sess, pts[i:i+500], nil)
		compacted = compacted || resp.Checkpoint
	}
	if !compacted {
		t.Fatal("compaction never fired")
	}
	_, state := getSession(t, ts.URL, sess)
	if state.SnapshotBytes == 0 {
		t.Fatalf("no snapshot after compaction: %+v", state)
	}
}

// TestDraining pins the drain semantics: work endpoints answer a clean
// 503 with Retry-After: 1 and {"error":"draining"}, healthz reports
// draining, and already-open sessions' state survives.
func TestDraining(t *testing.T) {
	s, ts := newTestServer(t, Config{StateDir: t.TempDir()})
	sess := openSession(t, ts.URL, sessionOpts)
	s.StartDraining()

	checkDrain := func(name string, status int, body []byte, hdr http.Header) {
		t.Helper()
		if status != http.StatusServiceUnavailable {
			t.Fatalf("%s while draining: %d", name, status)
		}
		if ra := hdr.Get("Retry-After"); ra != "1" {
			t.Fatalf("%s Retry-After %q", name, ra)
		}
		var e ErrorResponse
		if err := json.Unmarshal(body, &e); err != nil || e.Error != "draining" {
			t.Fatalf("%s body %s", name, body)
		}
	}

	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json",
		strings.NewReader(`{"mode":"density","window":40,"paa":4,"alphabet":5,"series":[1,2,3]}`))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	checkDrain("analyze", resp.StatusCode, buf.Bytes(), resp.Header)

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/stream/"+sess.ID+"/append", strings.NewReader(`{"points":[1]}`))
	req.Header.Set(resumeTokenHeader, sess.ResumeToken)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	buf.ReadFrom(resp2.Body)
	resp2.Body.Close()
	checkDrain("stream append", resp2.StatusCode, buf.Bytes(), resp2.Header)

	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	buf.ReadFrom(hz.Body)
	hz.Body.Close()
	if hz.StatusCode != http.StatusServiceUnavailable || !strings.Contains(buf.String(), "draining") {
		t.Fatalf("healthz while draining: %d %s", hz.StatusCode, buf.String())
	}
}

// TestSessionMetricsScrape asserts the session metrics appear in
// /metrics with live values.
func TestSessionMetricsScrape(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newTestServer(t, Config{StateDir: dir, CompactFactor: 1})
	sess := openSession(t, ts1.URL, sessionOpts)
	pts := streamSeries(300, 10)
	for i := 0; i < len(pts); i += 50 {
		appendPoints(t, ts1.URL, sess, pts[i:i+50], nil)
	}
	s1.CheckpointSessions(t.Context())
	s1.CloseSessions()
	ts1.Close()

	s2, ts2 := newTestServer(t, Config{StateDir: dir})
	if _, _, err := s2.RecoverSessions(t.Context()); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	scrape := buf.String()
	for _, want := range []string{
		"gvad_sessions_active 1",
		"gvad_sessions_restored_total 1",
		"gvad_sessions_quarantined_total 0",
		"gvad_sessions_evicted_total 0",
		"gvad_sessions_torn_total 0",
	} {
		if !strings.Contains(scrape, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	if !strings.Contains(scrape, "gvad_checkpoint_bytes") {
		t.Error("scrape missing gvad_checkpoint_bytes")
	}
}

func TestSessionLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{StateDir: t.TempDir(), MaxSessions: 1})
	openSession(t, ts.URL, sessionOpts)
	status, body := doJSON(t, http.MethodPost, ts.URL+"/v1/stream", "", sessionOpts)
	if status != http.StatusTooManyRequests {
		t.Fatalf("over-limit open: %d %s", status, body)
	}
}

func TestSessionOpenValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for name, req := range map[string]StreamOpenRequest{
		"zero window":   {Window: 0, PAA: 4, Alphabet: 5},
		"bad reduction": {Window: 40, PAA: 4, Alphabet: 5, Reduction: "sometimes"},
		"paa > window":  {Window: 4, PAA: 8, Alphabet: 5},
	} {
		if status, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/stream", "", req); status != http.StatusBadRequest {
			t.Errorf("%s: status %d", name, status)
		}
	}
}

// TestSessionTornTailRecovery truncates the WAL mid final record — as a
// crash would — and requires recovery to boot with the torn chunk
// dropped and counted.
func TestSessionTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	_, ts1 := newTestServer(t, Config{StateDir: dir})
	sess := openSession(t, ts1.URL, sessionOpts)
	pts := streamSeries(120, 11)
	appendPoints(t, ts1.URL, sess, pts[:60], nil)
	appendPoints(t, ts1.URL, sess, pts[60:], nil)
	ts1.Close() // crash: no close, no checkpoint

	seg := filepath.Join(dir, sess.ID, "wal-000001.log")
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, info.Size()-17); err != nil { // tear the final chunk
		t.Fatal(err)
	}

	s2, ts2 := newTestServer(t, Config{StateDir: dir})
	restored, quarantined, err := s2.RecoverSessions(t.Context())
	if err != nil || restored != 1 || quarantined != 0 {
		t.Fatalf("torn-tail recover: %d/%d %v", restored, quarantined, err)
	}
	// The second chunk was torn: only the first survives.
	if _, state := getSession(t, ts2.URL, sess); state.Len != 60 {
		t.Fatalf("torn recovery len %d, want 60", state.Len)
	}
	if got := fmt.Sprint(s2.sessionsTorn.Value()); got != "1" {
		t.Fatalf("torn counter %s", got)
	}
}
