package server

import (
	"fmt"
	"time"

	"grammarviz"
	"grammarviz/internal/modes"
)

// Modes accepted by POST /v1/analyze, aliased from internal/modes — the
// single source of truth shared with cmd/gva and the exhaustivemode lint
// pass.
const (
	ModeRRA        = modes.RRA        // exact variable-length discord search
	ModeBestEffort = modes.BestEffort // RRA degrading at the deadline (Partial/Fallback)
	ModeDensity    = modes.Density    // rule-density anomalies (distance-free)
	ModeHOTSAX     = modes.HOTSAX     // fixed-length HOTSAX baseline
	ModeEnsemble   = modes.Ensemble   // parameter-free ensemble grammar induction
)

// maxEnsembleMembers caps the member count one request may ask for: every
// member is a full induction, so the cap bounds the work a single request
// can cost regardless of its admission weight.
const maxEnsembleMembers = 128

// AnalyzeRequest is the JSON body of POST /v1/analyze.
type AnalyzeRequest struct {
	// Series is the univariate time series to analyze (required).
	Series []float64 `json:"series"`
	// Mode selects the detector: rra | besteffort | density | hotsax.
	// Empty selects besteffort — the mode built for a service, where a
	// degraded answer beats a deadline error.
	Mode string `json:"mode"`

	// Tenant names the cost-budget bucket this request is charged to.
	// Empty falls back to the X-Tenant header, then to "default" — so
	// anonymous traffic shares one bucket instead of dodging admission.
	Tenant string `json:"tenant,omitempty"`

	// Window, PAA and Alphabet are the SAX discretization parameters.
	// Window 0 auto-selects all three from the data (grammar modes only).
	Window   int `json:"window"`
	PAA      int `json:"paa"`
	Alphabet int `json:"alphabet"`

	// K is the number of discords to report (discord modes; default 3).
	K int `json:"k"`
	// Members is the ensemble-mode member count: how many parameterizations
	// the sampler draws (0 selects the library default of 20, capped at
	// 128). Ignored by the other modes.
	Members int `json:"members"`
	// Threshold is the density-mode cutoff; nil or negative selects the
	// global-minima report.
	Threshold *int `json:"threshold,omitempty"`
	// MinLen drops density anomalies shorter than this many points.
	MinLen int `json:"min_len"`

	Seed    int64 `json:"seed"`
	Workers int   `json:"workers"`

	// TimeoutMS is the per-request wall-clock budget in milliseconds;
	// 0 selects the server default. The effective budget is capped at the
	// server maximum. In besteffort mode the deadline degrades the answer
	// (partial/fallback) instead of failing it.
	TimeoutMS int64 `json:"timeout_ms"`

	// Interpolate replaces NaN/Inf values by linear interpolation instead
	// of rejecting the series.
	Interpolate bool `json:"interpolate"`
}

// AnalyzeResponse is the JSON body of a successful analysis.
type AnalyzeResponse struct {
	Mode      string `json:"mode"`
	Algorithm string `json:"algorithm"`
	N         int    `json:"n"`
	Window    int    `json:"window"`
	PAA       int    `json:"paa"`
	Alphabet  int    `json:"alphabet"`

	// Partial/Fallback mirror DiscordResult: a deadline cut the search
	// short (partial) or not even one round finished and the density
	// minima stood in (fallback).
	Partial  bool `json:"partial"`
	Fallback bool `json:"fallback"`
	// CacheHit reports that the detector (grammar, density curve) was
	// served from the LRU cache, skipping discretization and induction.
	CacheHit bool `json:"cache_hit"`

	DistanceCalls int64   `json:"distance_calls"`
	ElapsedMS     float64 `json:"elapsed_ms"`

	Discords  []grammarviz.Discord `json:"discords,omitempty"`
	Anomalies []grammarviz.Anomaly `json:"anomalies,omitempty"`

	// Ensemble carries the ensemble-mode result: the fused score and
	// agreement curves plus the sampled member parameterizations. Byte-
	// identical to what grammarviz.EnsembleDensity returns for the same
	// (series, members, seed) — the serving layer only caches, it never
	// changes scores.
	Ensemble *grammarviz.EnsembleResult `json:"ensemble,omitempty"`
	// EnsembleAnomalies are the fused curve's thresholded minima intervals
	// (fraction 0.3), the ensemble counterpart of Anomalies.
	EnsembleAnomalies []grammarviz.Interval `json:"ensemble_anomalies,omitempty"`
}

// ErrorResponse is the JSON body of every non-2xx reply.
type ErrorResponse struct {
	Error string `json:"error"`
}

// validate rejects malformed requests before any work is admitted, so a
// bad request never occupies an analysis slot.
func (r *AnalyzeRequest) validate(maxSeries int) error {
	if len(r.Series) == 0 {
		return fmt.Errorf("series is required and must be non-empty")
	}
	if len(r.Tenant) > 128 {
		return fmt.Errorf("tenant name exceeds 128 bytes")
	}
	if maxSeries > 0 && len(r.Series) > maxSeries {
		return fmt.Errorf("series has %d points, server cap is %d", len(r.Series), maxSeries)
	}
	//gvad:modes Serving
	switch r.Mode {
	case ModeRRA, ModeBestEffort, ModeDensity, ModeHOTSAX, ModeEnsemble:
	case "":
		r.Mode = modes.Default
	default:
		return fmt.Errorf("unknown mode %q (want %s)", r.Mode, modes.OneOf(modes.Serving))
	}
	if r.Members < 0 {
		return fmt.Errorf("members must be >= 0 (0 selects the default), got %d", r.Members)
	}
	if r.Members > maxEnsembleMembers {
		return fmt.Errorf("members (%d) exceeds the server cap of %d", r.Members, maxEnsembleMembers)
	}
	if r.Window < 0 {
		return fmt.Errorf("window must be >= 0 (0 auto-selects), got %d", r.Window)
	}
	if r.Window == 0 && r.Mode == ModeHOTSAX {
		return fmt.Errorf("hotsax mode needs an explicit window (auto-selection covers grammar modes only)")
	}
	if r.Window > 0 {
		if r.PAA < 1 {
			return fmt.Errorf("paa must be >= 1, got %d", r.PAA)
		}
		if r.PAA > r.Window {
			return fmt.Errorf("paa (%d) must not exceed window (%d)", r.PAA, r.Window)
		}
		if r.Alphabet < 2 || r.Alphabet > 26 {
			return fmt.Errorf("alphabet must be in 2..26, got %d", r.Alphabet)
		}
		if r.Window > len(r.Series) {
			return fmt.Errorf("window (%d) exceeds series length (%d)", r.Window, len(r.Series))
		}
	}
	if r.K == 0 {
		r.K = 3
	}
	if r.K < 1 {
		return fmt.Errorf("k must be >= 1, got %d", r.K)
	}
	if r.MinLen < 0 {
		return fmt.Errorf("min_len must be >= 0, got %d", r.MinLen)
	}
	if r.Workers < 0 {
		return fmt.Errorf("workers must be >= 0, got %d", r.Workers)
	}
	if r.TimeoutMS < 0 {
		return fmt.Errorf("timeout_ms must be >= 0, got %d", r.TimeoutMS)
	}
	return nil
}

// budget resolves the request's effective wall-clock budget against the
// server defaults: the request's own timeout, else the default, both
// capped at the maximum. Zero means unbounded.
func (r *AnalyzeRequest) budget(def, max time.Duration) time.Duration {
	d := time.Duration(r.TimeoutMS) * time.Millisecond
	if d == 0 {
		d = def
	}
	if max > 0 && (d == 0 || d > max) {
		d = max
	}
	return d
}
