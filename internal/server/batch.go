package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"grammarviz/internal/worker"
)

// BatchRequest is the JSON body of POST /v1/analyze/batch: a request set
// analyzed as one round trip. Items are admitted and charged
// individually, so a batch from one tenant still competes fairly with
// everyone else's traffic.
type BatchRequest struct {
	// Tenant is the budget bucket for every item that does not name its
	// own (item tenant > batch tenant > X-Tenant header > "default").
	Tenant string `json:"tenant,omitempty"`
	// Requests are the analyses to run; each succeeds or fails on its own.
	Requests []AnalyzeRequest `json:"requests"`
}

// BatchItemResult is one item's outcome, in request order. Exactly one of
// Response and Error is set; Status is the HTTP status the item would
// have received from /v1/analyze.
type BatchItemResult struct {
	Index    int              `json:"index"`
	Status   int              `json:"status"`
	Response *AnalyzeResponse `json:"response,omitempty"`
	Error    string           `json:"error,omitempty"`
}

// BatchResponse is the JSON body of a batch reply. The HTTP status is 200
// whenever the batch itself was well-formed: per-item failure lives in
// Results, and a degraded item never fails its siblings.
type BatchResponse struct {
	Results   []BatchItemResult `json:"results"`
	OK        int               `json:"ok"`
	Failed    int               `json:"failed"`
	ElapsedMS float64           `json:"elapsed_ms"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if s.rejectDraining(w) {
		return
	}
	var req BatchRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.requests.With("unknown", "invalid").Inc()
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode batch request: %w", err))
		return
	}
	if len(req.Requests) == 0 {
		s.requests.With("unknown", "invalid").Inc()
		writeError(w, http.StatusBadRequest, fmt.Errorf("batch requires at least one request"))
		return
	}
	if len(req.Requests) > s.cfg.MaxBatch {
		s.requests.With("unknown", "invalid").Inc()
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("batch has %d requests, server cap is %d", len(req.Requests), s.cfg.MaxBatch))
		return
	}
	batchTenant := resolveTenant(r, req.Tenant)

	start := time.Now()
	results := make([]BatchItemResult, len(req.Requests))
	// Fan the items across a bounded worker pool: admission still governs
	// how many analyses actually run, but capping the fan-out keeps one
	// giant batch from parking MaxBatch goroutines in the wait queue.
	workers := min(len(req.Requests), s.cfg.MaxConcurrent)
	var next atomic.Int64
	g, gctx := worker.WithContext(r.Context())
	for range workers {
		g.Go(func() error {
			for {
				i := int(next.Add(1)) - 1
				if i >= len(req.Requests) || gctx.Err() != nil {
					return nil
				}
				results[i] = s.batchItem(gctx, &req.Requests[i], batchTenant, i)
			}
		})
	}
	// Item failures are reported in-place, never via the group error; a
	// non-nil Wait means the batch context itself ended.
	if err := g.Wait(); err != nil && gctx.Err() != nil {
		writeError(w, http.StatusGatewayTimeout, fmt.Errorf("batch cancelled: %w", gctx.Err()))
		return
	}

	resp := BatchResponse{Results: results}
	for _, item := range results {
		if item.Error == "" {
			resp.OK++
		} else {
			resp.Failed++
		}
	}
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	writeJSON(w, http.StatusOK, &resp)
}

// batchItem validates and serves one batch element, converting its
// outcome into the per-item result shape. It never returns an error: a
// failing item degrades itself only.
func (s *Server) batchItem(ctx context.Context, item *AnalyzeRequest, batchTenant string, idx int) BatchItemResult {
	if err := item.validate(s.cfg.MaxSeriesLen); err != nil {
		s.requests.With(modeLabel(item.Mode), "invalid").Inc()
		return BatchItemResult{Index: idx, Status: http.StatusBadRequest, Error: err.Error()}
	}
	tenant := batchTenant
	if item.Tenant != "" {
		tenant = item.Tenant
	}
	resp, status, err := s.serveOne(ctx, item, tenant)
	if err != nil {
		return BatchItemResult{Index: idx, Status: status, Error: err.Error()}
	}
	return BatchItemResult{Index: idx, Status: status, Response: resp}
}
