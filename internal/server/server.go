// Package server implements gvad's HTTP API: POST /v1/analyze answering
// density/RRA/HOTSAX/best-effort anomaly queries with per-request
// deadlines, GET /healthz, and GET /metrics in the Prometheus text
// format.
//
// Three properties make it a service rather than a CLI wrapper:
//
//   - Detector caching: analyses are keyed by grammarviz.Fingerprint
//     (series bits + grammar-relevant options), so repeated queries
//     against the same series reuse the induced grammar instead of
//     re-running discretization and Sequitur.
//   - Admission control: a semaphore sized off GOMAXPROCS bounds
//     concurrent analyses, with a bounded wait queue that sheds load with
//     429 on overflow — one giant series cannot starve the fleet.
//   - Containment: each analysis runs inside an internal/worker group, so
//     a panic surfaces as a 500 response, never a crash; deadlines map
//     onto the DiscordsBestEffort degradation ladder, so a slow query
//     returns a partial or fallback answer instead of an error.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync/atomic"
	"time"

	"grammarviz"
	"grammarviz/internal/cache"
	"grammarviz/internal/discord"
	"grammarviz/internal/metrics"
	"grammarviz/internal/timeseries"
	"grammarviz/internal/worker"
)

// Config tunes the daemon. The zero value selects sane defaults; see each
// field. Fields that must distinguish "unset" from "none" use -1 for
// none.
type Config struct {
	// CacheSize is the detector cache capacity in entries (default 64).
	CacheSize int
	// MaxConcurrent bounds simultaneously running analyses
	// (default GOMAXPROCS).
	MaxConcurrent int
	// MaxQueue bounds requests waiting for an analysis slot beyond
	// MaxConcurrent; overflow is shed with 429. Default 2*MaxConcurrent;
	// -1 disables queueing entirely.
	MaxQueue int
	// DefaultTimeout applies to requests that name no timeout_ms
	// (default 30s; -1 means no default).
	DefaultTimeout time.Duration
	// MaxTimeout caps every request's budget (default 5m; -1 uncapped).
	MaxTimeout time.Duration
	// MaxSeriesLen rejects longer series with 400 (default 2,000,000
	// points; -1 uncapped).
	MaxSeriesLen int
	// MaxBodyBytes caps the request body (default 64 MiB).
	MaxBodyBytes int64
	// EnablePprof mounts net/http/pprof's handlers under GET
	// /debug/pprof/ (CPU, heap, allocs, goroutine, ...). Off by default:
	// profiles expose internals and cost CPU, so production deployments
	// opt in explicitly (gvad -pprof).
	EnablePprof bool
	// Logf, when set, receives one line per shed or failed request.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.CacheSize == 0 {
		c.CacheSize = 64
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	switch {
	case c.MaxQueue == 0:
		c.MaxQueue = 2 * c.MaxConcurrent
	case c.MaxQueue < 0:
		c.MaxQueue = 0
	}
	switch {
	case c.DefaultTimeout == 0:
		c.DefaultTimeout = 30 * time.Second
	case c.DefaultTimeout < 0:
		c.DefaultTimeout = 0
	}
	switch {
	case c.MaxTimeout == 0:
		c.MaxTimeout = 5 * time.Minute
	case c.MaxTimeout < 0:
		c.MaxTimeout = 0
	}
	switch {
	case c.MaxSeriesLen == 0:
		c.MaxSeriesLen = 2_000_000
	case c.MaxSeriesLen < 0:
		c.MaxSeriesLen = 0
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// errQueueFull is returned by acquire when both the slots and the wait
// queue are at capacity — the load-shedding signal behind 429.
var errQueueFull = errors.New("server: analysis slots and wait queue full")

// Server is the gvad HTTP service. Create one with New; it is safe for
// concurrent use.
type Server struct {
	cfg   Config
	cache *cache.LRU[*grammarviz.Detector]
	http  *http.Server
	mux   *http.ServeMux

	sem    chan struct{} // admission slots; len == running analyses
	queued atomic.Int64  // requests waiting for a slot

	reg            *metrics.Registry
	requests       *metrics.CounterVec
	latency        *metrics.Histogram
	cacheHits      *metrics.Counter
	cacheMisses    *metrics.Counter
	cacheEvictions *metrics.Counter
	distCalls      *metrics.Counter
	inflight       *metrics.Gauge
	queueDepth     *metrics.Gauge
	heapAlloc      *metrics.Gauge
	heapSys        *metrics.Gauge
	totalAlloc     *metrics.Gauge
	mallocs        *metrics.Gauge
	gcCycles       *metrics.Gauge

	// testHookAnalyze, when set, runs inside the containment group before
	// the analysis — tests use it to inject panics.
	testHookAnalyze func(*AnalyzeRequest)
}

// New builds a Server from cfg (zero value: defaults).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := metrics.NewRegistry()
	s := &Server{
		cfg:   cfg,
		cache: cache.New[*grammarviz.Detector](cfg.CacheSize),
		sem:   make(chan struct{}, cfg.MaxConcurrent),
		reg:   reg,

		requests: reg.NewCounterVec("gvad_requests_total",
			"Analyze requests by mode and outcome (ok|partial|fallback|invalid|rejected|timeout|panic|error).",
			"mode", "outcome"),
		latency: reg.NewHistogram("gvad_request_duration_seconds",
			"Wall-clock latency of admitted analyze requests.", nil),
		cacheHits: reg.NewCounter("gvad_cache_hits_total",
			"Analyze requests served from the detector cache (grammar induction skipped)."),
		cacheMisses: reg.NewCounter("gvad_cache_misses_total",
			"Analyze requests that had to induce a new detector."),
		cacheEvictions: reg.NewCounter("gvad_cache_evictions_total",
			"Detectors evicted from the cache."),
		distCalls: reg.NewCounter("gvad_distance_calls_total",
			"Distance-function calls made by discord searches (the paper's efficiency metric)."),
		inflight: reg.NewGauge("gvad_inflight_requests",
			"Analyze requests currently holding an analysis slot."),
		queueDepth: reg.NewGauge("gvad_queue_depth",
			"Analyze requests waiting for an analysis slot."),
		heapAlloc: reg.NewGauge("gvad_mem_heap_alloc_bytes",
			"Bytes of live heap objects (runtime.MemStats.HeapAlloc), sampled at scrape."),
		heapSys: reg.NewGauge("gvad_mem_heap_sys_bytes",
			"Heap memory obtained from the OS (runtime.MemStats.HeapSys), sampled at scrape."),
		totalAlloc: reg.NewGauge("gvad_mem_total_alloc_bytes",
			"Cumulative bytes allocated since process start (runtime.MemStats.TotalAlloc)."),
		mallocs: reg.NewGauge("gvad_mem_mallocs",
			"Cumulative heap objects allocated since process start (runtime.MemStats.Mallocs)."),
		gcCycles: reg.NewGauge("gvad_mem_gc_cycles",
			"Completed GC cycles since process start (runtime.MemStats.NumGC)."),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	metricsHandler := reg.Handler()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		s.sampleMemStats()
		metricsHandler.ServeHTTP(w, r)
	})
	if cfg.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	s.mux = mux
	s.http = &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	return s
}

// Handler returns the root handler (useful for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Registry returns the metrics registry backing /metrics.
func (s *Server) Registry() *metrics.Registry { return s.reg }

// CacheStats returns the detector cache's hit/miss/eviction snapshot.
func (s *Server) CacheStats() cache.Stats { return s.cache.Stats() }

// Serve accepts connections on ln until Shutdown. It returns nil after a
// clean shutdown.
func (s *Server) Serve(ln net.Listener) error {
	err := s.http.Serve(ln)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown stops accepting new connections and drains in-flight requests,
// waiting until they complete or ctx expires.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.http.Shutdown(ctx)
}

// acquire claims an analysis slot, queueing up to cfg.MaxQueue waiters.
// It returns a release function, errQueueFull when both slots and queue
// are saturated, or ctx's error if the deadline passes while queued.
func (s *Server) acquire(ctx context.Context) (release func(), err error) {
	claimed := func() func() {
		s.inflight.Inc()
		return func() {
			s.inflight.Dec()
			<-s.sem
		}
	}
	select {
	case s.sem <- struct{}{}:
		return claimed(), nil
	default:
	}
	// No free slot: join the bounded wait queue or shed.
	for {
		n := s.queued.Load()
		if n >= int64(s.cfg.MaxQueue) {
			return nil, errQueueFull
		}
		if s.queued.CompareAndSwap(n, n+1) {
			break
		}
	}
	s.queueDepth.Inc()
	defer func() {
		s.queued.Add(-1)
		s.queueDepth.Dec()
	}()
	select {
	case s.sem <- struct{}{}:
		return claimed(), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// sampleMemStats refreshes the gvad_mem_* gauges from the runtime. It runs
// once per /metrics scrape: ReadMemStats briefly stops the world, so the
// cost is paid at scrape frequency, never on the request path.
func (s *Server) sampleMemStats() {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	s.heapAlloc.Set(int64(m.HeapAlloc))
	s.heapSys.Set(int64(m.HeapSys))
	s.totalAlloc.Set(int64(m.TotalAlloc))
	s.mallocs.Set(int64(m.Mallocs))
	s.gcCycles.Set(int64(m.NumGC))
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req AnalyzeRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.requests.With("unknown", "invalid").Inc()
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if err := req.validate(s.cfg.MaxSeriesLen); err != nil {
		s.requests.With(modeLabel(req.Mode), "invalid").Inc()
		writeError(w, http.StatusBadRequest, err)
		return
	}

	ctx := r.Context()
	if d := req.budget(s.cfg.DefaultTimeout, s.cfg.MaxTimeout); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}

	release, err := s.acquire(ctx)
	if err != nil {
		if errors.Is(err, errQueueFull) {
			s.requests.With(req.Mode, "rejected").Inc()
			s.cfg.Logf("shed %s request: %v", req.Mode, err)
			writeError(w, http.StatusTooManyRequests, errors.New("server saturated, retry later"))
			return
		}
		s.requests.With(req.Mode, "timeout").Inc()
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("timed out waiting for an analysis slot: %w", err))
		return
	}
	defer release()

	start := time.Now()
	var resp *AnalyzeResponse
	g, gctx := worker.WithContext(ctx)
	g.Go(func() error {
		if s.testHookAnalyze != nil {
			s.testHookAnalyze(&req)
		}
		var err error
		resp, err = s.analyze(gctx, &req)
		return err
	})
	err = g.Wait()
	elapsed := time.Since(start)
	s.latency.Observe(elapsed.Seconds())

	if err != nil {
		status, outcome := classifyError(err)
		s.requests.With(req.Mode, outcome).Inc()
		s.cfg.Logf("%s request failed (%s): %v", req.Mode, outcome, err)
		writeError(w, status, err)
		return
	}
	resp.ElapsedMS = float64(elapsed.Microseconds()) / 1000
	s.distCalls.Add(uint64(max(resp.DistanceCalls, 0)))
	s.requests.With(req.Mode, outcomeOf(resp)).Inc()
	writeJSON(w, http.StatusOK, resp)
}

// analyze runs one validated request under ctx. It is called inside a
// worker group, so a panic anywhere below becomes a *PanicError in the
// handler instead of a crash.
func (s *Server) analyze(ctx context.Context, req *AnalyzeRequest) (*AnalyzeResponse, error) {
	series := req.Series
	if req.Interpolate && timeseries.HasNaN(series) {
		var err error
		if series, err = grammarviz.Interpolate(series); err != nil {
			return nil, err
		}
	}

	resp := &AnalyzeResponse{
		Mode: req.Mode,
		N:    len(series),
	}

	if req.Mode == ModeHOTSAX {
		discords, calls, err := grammarviz.HOTSAXDiscordsCtx(ctx, series, req.Window, req.PAA, req.Alphabet, req.K, req.Seed)
		if err != nil {
			return nil, err
		}
		resp.Algorithm = "HOTSAX"
		resp.Window, resp.PAA, resp.Alphabet = req.Window, req.PAA, req.Alphabet
		resp.Discords = discords
		resp.DistanceCalls = calls
		return resp, nil
	}

	opts := grammarviz.Options{
		Window: req.Window, PAA: req.PAA, Alphabet: req.Alphabet,
		Seed: req.Seed, Workers: req.Workers,
	}
	if req.Window == 0 {
		suggested, err := grammarviz.SuggestOptions(series)
		if err != nil {
			return nil, fmt.Errorf("parameter auto-selection: %w", err)
		}
		suggested.Seed, suggested.Workers = req.Seed, req.Workers
		opts = suggested
	}
	resp.Window, resp.PAA, resp.Alphabet = opts.Window, opts.PAA, opts.Alphabet

	det, hit, err := s.detector(ctx, series, opts)
	if err != nil {
		return nil, err
	}
	resp.CacheHit = hit

	switch req.Mode {
	case ModeRRA:
		res, err := det.DiscordsCtx(ctx, req.K)
		if err != nil {
			return nil, err
		}
		resp.Algorithm = "RRA"
		resp.Discords = res.Discords
		resp.DistanceCalls = res.DistCalls
	case ModeBestEffort:
		res, err := det.DiscordsBestEffort(ctx, req.K)
		if err != nil {
			return nil, err
		}
		resp.Algorithm = "RRA (best-effort)"
		resp.Discords = res.Discords
		resp.DistanceCalls = res.DistCalls
		resp.Partial = res.Partial
		resp.Fallback = res.Fallback
	case ModeDensity:
		if req.Threshold == nil || *req.Threshold < 0 {
			resp.Algorithm = "density global minima"
			resp.Anomalies = det.GlobalMinima()
		} else {
			resp.Algorithm = "density threshold"
			resp.Anomalies = det.DensityAnomalies(*req.Threshold, req.MinLen)
		}
	}
	return resp, nil
}

// detector returns the cached Detector for (series, opts), inducing and
// caching a new one on miss. The fingerprint covers the series bits and
// every option that influences the grammar, so equal keys mean
// byte-identical detectors.
func (s *Server) detector(ctx context.Context, series []float64, opts grammarviz.Options) (*grammarviz.Detector, bool, error) {
	key := grammarviz.Fingerprint(series, opts)
	if det, ok := s.cache.Get(key); ok {
		s.cacheHits.Inc()
		return det, true, nil
	}
	s.cacheMisses.Inc()
	det, err := grammarviz.NewCtx(ctx, series, opts)
	if err != nil {
		return nil, false, err
	}
	if s.cache.Add(key, det) {
		s.cacheEvictions.Inc()
	}
	return det, false, nil
}

// classifyError maps an analysis error to an HTTP status and a metrics
// outcome label.
func classifyError(err error) (status int, outcome string) {
	var pe *worker.PanicError
	switch {
	case errors.As(err, &pe):
		return http.StatusInternalServerError, "panic"
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout, "timeout"
	case errors.Is(err, grammarviz.ErrInvalidValue),
		errors.Is(err, grammarviz.ErrShortSeries):
		return http.StatusBadRequest, "invalid"
	case errors.Is(err, discord.ErrNoCandidates):
		return http.StatusUnprocessableEntity, "error"
	default:
		return http.StatusInternalServerError, "error"
	}
}

func outcomeOf(resp *AnalyzeResponse) string {
	switch {
	case resp.Fallback:
		return "fallback"
	case resp.Partial:
		return "partial"
	default:
		return "ok"
	}
}

// modeLabel bounds the cardinality of the mode label: anything not in the
// known set is reported as "unknown".
func modeLabel(mode string) string {
	switch mode {
	case ModeRRA, ModeBestEffort, ModeDensity, ModeHOTSAX:
		return mode
	default:
		return "unknown"
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}
