// Package server implements gvad's HTTP API: POST /v1/analyze and
// POST /v1/analyze/batch answering density/RRA/HOTSAX/best-effort anomaly
// queries with per-request deadlines, GET /healthz, and GET /metrics in
// the Prometheus text format.
//
// Five properties make it a service rather than a CLI wrapper:
//
//   - Detector caching: analyses are keyed by grammarviz.Fingerprint
//     (series bits + grammar-relevant options), so repeated queries
//     against the same series reuse the induced grammar instead of
//     re-running discretization and Sequitur. The cache is sharded
//     N ways by fingerprint prefix so concurrent requests do not
//     serialize on one LRU lock.
//   - Request coalescing: concurrent identical queries that miss the
//     cache share a single induction (internal/coalesce); a cancelled
//     waiter detaches without killing the shared flight.
//   - Admission control: requests are admitted against a tenant-keyed
//     cost budget (internal/budget) where cost is estimated from series
//     length × mode, so heavy work is charged proportionally and one hot
//     tenant cannot starve the rest; overload is shed with 429/503
//     carrying a Retry-After derived from the queue depth. The
//     pre-budget flat semaphore survives behind Config.DisableBudget for
//     A/B measurement.
//   - Batching: /v1/analyze/batch fans a request set across the worker
//     pool with per-item admission and per-item outcomes, so one failing
//     item degrades itself, not the batch.
//   - Containment: each analysis runs inside an internal/worker group, so
//     a panic surfaces as a 500 response, never a crash; deadlines map
//     onto the DiscordsBestEffort degradation ladder, so a slow query
//     returns a partial or fallback answer instead of an error.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"grammarviz"
	"grammarviz/internal/budget"
	"grammarviz/internal/cache"
	"grammarviz/internal/coalesce"
	"grammarviz/internal/discord"
	"grammarviz/internal/memlog"
	"grammarviz/internal/metrics"
	"grammarviz/internal/modes"
	"grammarviz/internal/timeseries"
	"grammarviz/internal/worker"
)

// Config tunes the daemon. The zero value selects sane defaults; see each
// field. Fields that must distinguish "unset" from "none" use -1 for
// none.
type Config struct {
	// CacheSize is the detector cache capacity in entries (default 64),
	// divided evenly across CacheShards.
	CacheSize int
	// CacheShards is the number of independently locked detector-cache
	// shards, rounded up to a power of two (default 8; -1 selects 1).
	CacheShards int
	// DisableCoalesce turns off singleflight coalescing of concurrent
	// identical inductions — every cache miss induces its own detector,
	// the pre-coalescing behaviour kept for measurement.
	DisableCoalesce bool
	// MaxConcurrent bounds simultaneously running analyses under the
	// legacy flat semaphore (DisableBudget) and sizes the default
	// BudgetCapacity (default GOMAXPROCS).
	MaxConcurrent int
	// MaxQueue bounds requests waiting for admission beyond capacity;
	// overflow is shed with 429. The budget path defaults to a deep queue
	// (64, or 2*MaxConcurrent if larger): fair-share wake order prevents
	// head-of-line starvation and per-request deadlines bound the wait, so
	// queueing converts would-be sheds into slightly later answers instead
	// of burning CPU on reject/retry cycles. The legacy FIFO path keeps
	// its original shallow default of 2*MaxConcurrent, where a deep queue
	// would mean unbounded head-of-line latency. -1 disables queueing.
	MaxQueue int
	// BudgetCapacity is the admission pool in cost tokens (series points
	// × mode weight); default MaxConcurrent × budget.DefaultSlotCost.
	BudgetCapacity int64
	// DisableBudget replaces the tenant-keyed cost-budget admission with
	// the original flat MaxConcurrent semaphore and FIFO queue — the
	// pre-budget behaviour kept for measurement.
	DisableBudget bool
	// MaxBatch caps the items of one /v1/analyze/batch request
	// (default 64).
	MaxBatch int
	// DefaultTimeout applies to requests that name no timeout_ms
	// (default 30s; -1 means no default).
	DefaultTimeout time.Duration
	// MaxTimeout caps every request's budget (default 5m; -1 uncapped).
	MaxTimeout time.Duration
	// MaxSeriesLen rejects longer series with 400 (default 2,000,000
	// points; -1 uncapped).
	MaxSeriesLen int
	// MaxBodyBytes caps the request body (default 64 MiB).
	MaxBodyBytes int64
	// EnablePprof mounts net/http/pprof's handlers under GET
	// /debug/pprof/ (CPU, heap, allocs, goroutine, ...). Off by default:
	// profiles expose internals and cost CPU, so production deployments
	// opt in explicitly (gvad -pprof).
	EnablePprof bool
	// Logf, when set, receives one line per shed or failed request.
	Logf func(format string, args ...any)

	// StateDir is where streaming sessions persist (one subdirectory per
	// session holding a checkpoint snapshot plus a write-ahead memlog).
	// Empty disables durability: sessions live in memory only and idle
	// eviction closes them outright.
	StateDir string
	// SessionTTL evicts sessions idle for longer (checkpoint-then-drop,
	// restorable on next touch). Default 15m; -1 disables eviction.
	SessionTTL time.Duration
	// MaxSessions bounds concurrently open sessions (default 1024).
	MaxSessions int
	// FsyncPolicy selects when session WAL appends reach stable storage
	// (default memlog.SyncAlways).
	FsyncPolicy memlog.SyncPolicy
	// FsyncInterval is the SyncInterval flush period (default 100ms).
	FsyncInterval time.Duration
	// SegmentBytes rotates session WAL segments at this size (default
	// 4 MiB).
	SegmentBytes int64
	// CompactFactor triggers snapshot compaction once a session's WAL
	// exceeds this multiple of its snapshot size (default 4).
	CompactFactor int
	// WriteDelay, when set, is injected between a WAL record's header and
	// payload writes — the crash-test hook that widens the torn-write
	// window.
	WriteDelay func()
}

func (c Config) withDefaults() Config {
	if c.CacheSize == 0 {
		c.CacheSize = 64
	}
	switch {
	case c.CacheShards == 0:
		c.CacheShards = 8
	case c.CacheShards < 0:
		c.CacheShards = 1
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	switch {
	case c.MaxQueue == 0:
		c.MaxQueue = 2 * c.MaxConcurrent
		if !c.DisableBudget && c.MaxQueue < 64 {
			c.MaxQueue = 64
		}
	case c.MaxQueue < 0:
		c.MaxQueue = 0
	}
	if c.BudgetCapacity <= 0 {
		c.BudgetCapacity = int64(c.MaxConcurrent) * budget.DefaultSlotCost
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	switch {
	case c.DefaultTimeout == 0:
		c.DefaultTimeout = 30 * time.Second
	case c.DefaultTimeout < 0:
		c.DefaultTimeout = 0
	}
	switch {
	case c.MaxTimeout == 0:
		c.MaxTimeout = 5 * time.Minute
	case c.MaxTimeout < 0:
		c.MaxTimeout = 0
	}
	switch {
	case c.MaxSeriesLen == 0:
		c.MaxSeriesLen = 2_000_000
	case c.MaxSeriesLen < 0:
		c.MaxSeriesLen = 0
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	switch {
	case c.SessionTTL == 0:
		c.SessionTTL = 15 * time.Minute
	case c.SessionTTL < 0:
		c.SessionTTL = 0
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 1024
	}
	return c
}

// errQueueFull is returned by admission when both the capacity and the
// wait queue are exhausted — the load-shedding signal behind 429.
var errQueueFull = errors.New("server: analysis capacity and wait queue full")

// Server is the gvad HTTP service. Create one with New; it is safe for
// concurrent use.
type Server struct {
	cfg     Config
	cache   *cache.Sharded[*grammarviz.Detector]
	flights coalesce.Group[*grammarviz.Detector]

	// Ensemble results get their own cache and flight group: the keys
	// (EnsembleFingerprint: series + member count + sampler seed) live in a
	// different namespace than detector fingerprints, and the cached values
	// are final fused results rather than reusable detectors.
	ecache   *cache.Sharded[*grammarviz.EnsembleResult]
	eflights coalesce.Group[*grammarviz.EnsembleResult]

	adm  *budget.Controller // nil when cfg.DisableBudget
	http *http.Server
	mux  *http.ServeMux

	sem    chan struct{} // legacy admission slots (DisableBudget only)
	queued atomic.Int64  // legacy wait-queue depth (DisableBudget only)

	sup      *sessionSupervisor
	draining atomic.Bool

	reg            *metrics.Registry
	requests       *metrics.CounterVec
	latency        *metrics.Histogram
	cacheHits      *metrics.Counter
	cacheMisses    *metrics.Counter
	cacheEvictions *metrics.Counter
	coalesced      *metrics.Counter
	distCalls      *metrics.Counter
	inflight       *metrics.Gauge
	queueDepth     *metrics.Gauge
	budgetCapacity *metrics.Gauge
	budgetInUse    *metrics.Gauge
	budgetTenants  *metrics.Gauge
	heapAlloc      *metrics.Gauge
	heapSys        *metrics.Gauge
	totalAlloc     *metrics.Gauge
	mallocs        *metrics.Gauge
	gcCycles       *metrics.Gauge

	sessionsActive      *metrics.Gauge
	sessionsRestored    *metrics.Counter
	sessionsQuarantined *metrics.Counter
	sessionsEvicted     *metrics.Counter
	sessionsTorn        *metrics.Counter
	checkpointBytes     *metrics.Gauge

	// testHookAnalyze, when set, runs inside the containment group before
	// the analysis — tests use it to inject panics.
	testHookAnalyze func(*AnalyzeRequest)
	// testHookInduce, when set, runs at the start of every induction —
	// tests use it to hold the flight open until every concurrent caller
	// has joined.
	testHookInduce func()
	// testHookStreamAppend, when set, runs inside the session append's
	// containment group — tests use it to inject panics into one session.
	testHookStreamAppend func(sessionID string)
}

// New builds a Server from cfg (zero value: defaults).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := metrics.NewRegistry()
	s := &Server{
		cfg:    cfg,
		cache:  cache.NewSharded[*grammarviz.Detector](cfg.CacheSize, cfg.CacheShards),
		ecache: cache.NewSharded[*grammarviz.EnsembleResult](cfg.CacheSize, cfg.CacheShards),
		reg:    reg,

		requests: reg.NewCounterVec("gvad_requests_total",
			"Analyze requests by mode and outcome (ok|partial|fallback|invalid|rejected|timeout|panic|error).",
			"mode", "outcome"),
		latency: reg.NewHistogram("gvad_request_duration_seconds",
			"Wall-clock latency of admitted analyze requests.", nil),
		cacheHits: reg.NewCounter("gvad_cache_hits_total",
			"Analyze requests served from the detector cache (grammar induction skipped)."),
		cacheMisses: reg.NewCounter("gvad_cache_misses_total",
			"Analyze requests that had to induce a new detector."),
		cacheEvictions: reg.NewCounter("gvad_cache_evictions_total",
			"Detectors evicted from the cache (summed across shards)."),
		coalesced: reg.NewCounter("gvad_coalesce_shared_total",
			"Analyze requests that joined another request's in-flight induction instead of running their own."),
		distCalls: reg.NewCounter("gvad_distance_calls_total",
			"Distance-function calls made by discord searches (the paper's efficiency metric)."),
		inflight: reg.NewGauge("gvad_inflight_requests",
			"Analyze requests currently admitted and running."),
		queueDepth: reg.NewGauge("gvad_queue_depth",
			"Analyze requests waiting for admission, sampled at scrape."),
		budgetCapacity: reg.NewGauge("gvad_budget_capacity_tokens",
			"Total admission cost capacity in tokens (series points x mode weight)."),
		budgetInUse: reg.NewGauge("gvad_budget_in_use_tokens",
			"Admission cost tokens currently held by running analyses, sampled at scrape."),
		budgetTenants: reg.NewGauge("gvad_budget_active_tenants",
			"Tenants currently holding admitted cost, sampled at scrape."),
		heapAlloc: reg.NewGauge("gvad_mem_heap_alloc_bytes",
			"Bytes of live heap objects (runtime.MemStats.HeapAlloc), sampled at scrape."),
		heapSys: reg.NewGauge("gvad_mem_heap_sys_bytes",
			"Heap memory obtained from the OS (runtime.MemStats.HeapSys), sampled at scrape."),
		totalAlloc: reg.NewGauge("gvad_mem_total_alloc_bytes",
			"Cumulative bytes allocated since process start (runtime.MemStats.TotalAlloc)."),
		mallocs: reg.NewGauge("gvad_mem_mallocs",
			"Cumulative heap objects allocated since process start (runtime.MemStats.Mallocs)."),
		gcCycles: reg.NewGauge("gvad_mem_gc_cycles",
			"Completed GC cycles since process start (runtime.MemStats.NumGC)."),

		sessionsActive: reg.NewGauge("gvad_sessions_active",
			"Streaming sessions currently open (resident or evicted-but-restorable)."),
		sessionsRestored: reg.NewCounter("gvad_sessions_restored_total",
			"Streaming sessions restored from snapshot + log replay (boot recovery and post-eviction touches)."),
		sessionsQuarantined: reg.NewCounter("gvad_sessions_quarantined_total",
			"Streaming sessions whose state failed recovery with corruption and was renamed aside."),
		sessionsEvicted: reg.NewCounter("gvad_sessions_evicted_total",
			"Streaming sessions checkpointed and dropped from memory by the idle janitor."),
		sessionsTorn: reg.NewCounter("gvad_sessions_torn_total",
			"Session recoveries that dropped a torn final log record (crash mid-write)."),
		checkpointBytes: reg.NewGauge("gvad_checkpoint_bytes",
			"Size of the most recently written session checkpoint frame."),
	}
	s.sup = &sessionSupervisor{sessions: make(map[string]*streamSession)}
	if cfg.DisableBudget {
		s.sem = make(chan struct{}, cfg.MaxConcurrent)
	} else {
		s.adm = budget.New(budget.Config{Capacity: cfg.BudgetCapacity, MaxQueue: cfg.MaxQueue})
		s.budgetCapacity.Set(cfg.BudgetCapacity)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	mux.HandleFunc("POST /v1/analyze/batch", s.handleBatch)
	mux.HandleFunc("POST /v1/stream", s.handleStreamOpen)
	mux.HandleFunc("POST /v1/stream/{id}/append", s.handleStreamAppend)
	mux.HandleFunc("GET /v1/stream/{id}", s.handleStreamGet)
	mux.HandleFunc("GET /v1/stream/{id}/anomalies", s.handleStreamAnomalies)
	mux.HandleFunc("DELETE /v1/stream/{id}", s.handleStreamDelete)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	metricsHandler := reg.Handler()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		s.sampleMemStats()
		s.sampleAdmission()
		metricsHandler.ServeHTTP(w, r)
	})
	if cfg.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	s.mux = mux
	s.http = &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	return s
}

// Handler returns the root handler (useful for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Registry returns the metrics registry backing /metrics.
func (s *Server) Registry() *metrics.Registry { return s.reg }

// CacheStats returns the detector cache's aggregate hit/miss/eviction
// snapshot (summed across shards).
func (s *Server) CacheStats() cache.Stats { return s.cache.Stats() }

// ShardStats returns the per-shard detector-cache snapshots.
func (s *Server) ShardStats() []cache.Stats { return s.cache.ShardStats() }

// Serve accepts connections on ln until Shutdown. It returns nil after a
// clean shutdown.
func (s *Server) Serve(ln net.Listener) error {
	err := s.http.Serve(ln)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown stops accepting new connections and drains in-flight requests,
// waiting until they complete or ctx expires.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.http.Shutdown(ctx)
}

// modeWeight is the admission cost multiplier per series point. The
// table lives in internal/modes — the single source of truth shared with
// cmd/gva — so serving and CLI cannot drift on pricing.
func modeWeight(mode string) int64 {
	return modes.Weight(mode)
}

// requestWeight is the admission cost multiplier for one validated
// request: the mode weight, except ensemble mode, whose cost scales with
// the member count — an ensemble is ~members density-weight inductions
// fanned out over the same series.
func requestWeight(req *AnalyzeRequest) int64 {
	if req.Mode == ModeEnsemble {
		members := req.Members
		if members <= 0 {
			members = grammarviz.DefaultEnsembleMembers
		}
		return int64(members) * modeWeight(ModeDensity)
	}
	return modeWeight(req.Mode)
}

// admit claims admission for a request of n points at the given cost
// weight on behalf of tenant. It returns a release function, errQueueFull
// when capacity and queue are saturated, or ctx's error if the deadline
// passes while queued.
func (s *Server) admit(ctx context.Context, tenant string, n int, weight int64) (release func(), err error) {
	if s.adm != nil {
		rel, err := s.adm.Acquire(ctx, tenant, budget.Cost(n, weight))
		if err != nil {
			if errors.Is(err, budget.ErrSaturated) {
				return nil, errQueueFull
			}
			return nil, err
		}
		s.inflight.Inc()
		return func() {
			s.inflight.Dec()
			rel()
		}, nil
	}
	return s.acquireLegacy(ctx)
}

// acquireLegacy claims a flat-semaphore slot, queueing up to cfg.MaxQueue
// waiters in FIFO order — the pre-budget admission path, kept verbatim
// behind Config.DisableBudget as the measurement baseline.
func (s *Server) acquireLegacy(ctx context.Context) (release func(), err error) {
	claimed := func() func() {
		s.inflight.Inc()
		return func() {
			s.inflight.Dec()
			<-s.sem
		}
	}
	select {
	case s.sem <- struct{}{}:
		return claimed(), nil
	default:
	}
	// No free slot: join the bounded wait queue or shed.
	for {
		n := s.queued.Load()
		if n >= int64(s.cfg.MaxQueue) {
			return nil, errQueueFull
		}
		if s.queued.CompareAndSwap(n, n+1) {
			break
		}
	}
	defer s.queued.Add(-1)
	select {
	case s.sem <- struct{}{}:
		return claimed(), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// pendingQueue returns the current admission wait-queue depth, whichever
// admission layer is active.
func (s *Server) pendingQueue() int {
	if s.adm != nil {
		return s.adm.QueueDepth()
	}
	return int(s.queued.Load())
}

// retryAfterSecs estimates when a shed client should retry: one second
// of baseline backoff plus roughly one second per MaxConcurrent requests
// already queued ahead of it, capped at 30.
func (s *Server) retryAfterSecs() int {
	secs := 1 + s.pendingQueue()/s.cfg.MaxConcurrent
	if secs > 30 {
		secs = 30
	}
	return secs
}

// sampleAdmission refreshes the admission gauges from the active layer.
// It runs per /metrics scrape, like sampleMemStats.
func (s *Server) sampleAdmission() {
	s.queueDepth.Set(int64(s.pendingQueue()))
	if s.adm != nil {
		st := s.adm.Stats()
		s.budgetInUse.Set(st.InUse)
		s.budgetTenants.Set(int64(st.ActiveTenants))
	}
}

// sampleMemStats refreshes the gvad_mem_* gauges from the runtime. It runs
// once per /metrics scrape: ReadMemStats briefly stops the world, so the
// cost is paid at scrape frequency, never on the request path.
func (s *Server) sampleMemStats() {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	s.heapAlloc.Set(int64(m.HeapAlloc))
	s.heapSys.Set(int64(m.HeapSys))
	s.totalAlloc.Set(int64(m.TotalAlloc))
	s.mallocs.Set(int64(m.Mallocs))
	s.gcCycles.Set(int64(m.NumGC))
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	// Draining is reported first (and as 503) so load balancers pull the
	// instance before the listener closes and in-flight work drains.
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// resolveTenant picks the request's tenant: the body field wins, the
// X-Tenant header is the fallback, and anonymous traffic shares the
// "default" tenant (one budget bucket, so unidentified load cannot
// impersonate many tenants).
func resolveTenant(r *http.Request, bodyTenant string) string {
	if bodyTenant != "" {
		return bodyTenant
	}
	if h := r.Header.Get("X-Tenant"); h != "" {
		return h
	}
	return "default"
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if s.rejectDraining(w) {
		return
	}
	var req AnalyzeRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.requests.With("unknown", "invalid").Inc()
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if err := req.validate(s.cfg.MaxSeriesLen); err != nil {
		s.requests.With(modeLabel(req.Mode), "invalid").Inc()
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp, status, err := s.serveOne(r.Context(), &req, resolveTenant(r, req.Tenant))
	if err != nil {
		if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSecs()))
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, status, resp)
}

// serveOne runs one validated request end to end — per-request deadline,
// admission, containment, metrics — and returns the response or the
// (status, error) pair to write. It is shared by the single and batch
// endpoints.
func (s *Server) serveOne(ctx context.Context, req *AnalyzeRequest, tenant string) (*AnalyzeResponse, int, error) {
	if d := req.budget(s.cfg.DefaultTimeout, s.cfg.MaxTimeout); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}

	release, err := s.admit(ctx, tenant, len(req.Series), requestWeight(req))
	if err != nil {
		if errors.Is(err, errQueueFull) {
			s.requests.With(req.Mode, "rejected").Inc()
			s.cfg.Logf("shed %s request (tenant %s): %v", req.Mode, tenant, err)
			return nil, http.StatusTooManyRequests, errors.New("server saturated, retry later")
		}
		s.requests.With(req.Mode, "timeout").Inc()
		return nil, http.StatusServiceUnavailable, fmt.Errorf("timed out waiting for admission: %w", err)
	}
	defer release()

	start := time.Now()
	var resp *AnalyzeResponse
	g, gctx := worker.WithContext(ctx)
	g.Go(func() error {
		if s.testHookAnalyze != nil {
			s.testHookAnalyze(req)
		}
		var err error
		resp, err = s.analyze(gctx, req)
		return err
	})
	err = g.Wait()
	elapsed := time.Since(start)
	s.latency.Observe(elapsed.Seconds())

	if err != nil {
		status, outcome := classifyError(err)
		s.requests.With(req.Mode, outcome).Inc()
		s.cfg.Logf("%s request failed (%s): %v", req.Mode, outcome, err)
		return nil, status, err
	}
	resp.ElapsedMS = float64(elapsed.Microseconds()) / 1000
	s.distCalls.Add(uint64(max(resp.DistanceCalls, 0)))
	s.requests.With(req.Mode, outcomeOf(resp)).Inc()
	return resp, http.StatusOK, nil
}

// analyze runs one validated request under ctx. It is called inside a
// worker group, so a panic anywhere below becomes a *PanicError in the
// handler instead of a crash.
func (s *Server) analyze(ctx context.Context, req *AnalyzeRequest) (*AnalyzeResponse, error) {
	series := req.Series
	if req.Interpolate && timeseries.HasNaN(series) {
		var err error
		if series, err = grammarviz.Interpolate(series); err != nil {
			return nil, err
		}
	}

	resp := &AnalyzeResponse{
		Mode: req.Mode,
		N:    len(series),
	}

	if req.Mode == ModeEnsemble {
		// Parameter-free: window/paa/alphabet are neither needed nor
		// reported — the sampled member parameterizations are in the result.
		res, hit, err := s.ensembleResult(ctx, series, grammarviz.EnsembleOptions{
			Members: req.Members, Seed: req.Seed, Workers: req.Workers,
		})
		if err != nil {
			return nil, err
		}
		resp.Algorithm = "ensemble density"
		resp.CacheHit = hit
		resp.Ensemble = res
		resp.EnsembleAnomalies = res.Anomalies(0.3)
		return resp, nil
	}

	if req.Mode == ModeHOTSAX {
		discords, calls, err := grammarviz.HOTSAXDiscordsCtx(ctx, series, req.Window, req.PAA, req.Alphabet, req.K, req.Seed)
		if err != nil {
			return nil, err
		}
		resp.Algorithm = "HOTSAX"
		resp.Window, resp.PAA, resp.Alphabet = req.Window, req.PAA, req.Alphabet
		resp.Discords = discords
		resp.DistanceCalls = calls
		return resp, nil
	}

	opts := grammarviz.Options{
		Window: req.Window, PAA: req.PAA, Alphabet: req.Alphabet,
		Seed: req.Seed, Workers: req.Workers,
	}
	if req.Window == 0 {
		suggested, err := grammarviz.SuggestOptions(series)
		if err != nil {
			return nil, fmt.Errorf("parameter auto-selection: %w", err)
		}
		suggested.Seed, suggested.Workers = req.Seed, req.Workers
		opts = suggested
	}
	resp.Window, resp.PAA, resp.Alphabet = opts.Window, opts.PAA, opts.Alphabet

	det, hit, err := s.detector(ctx, series, opts)
	if err != nil {
		return nil, err
	}
	resp.CacheHit = hit

	switch req.Mode {
	case ModeRRA:
		res, err := det.DiscordsCtx(ctx, req.K)
		if err != nil {
			return nil, err
		}
		resp.Algorithm = "RRA"
		resp.Discords = res.Discords
		resp.DistanceCalls = res.DistCalls
	case ModeBestEffort:
		res, err := det.DiscordsBestEffort(ctx, req.K)
		if err != nil {
			return nil, err
		}
		resp.Algorithm = "RRA (best-effort)"
		resp.Discords = res.Discords
		resp.DistanceCalls = res.DistCalls
		resp.Partial = res.Partial
		resp.Fallback = res.Fallback
	case ModeDensity:
		if req.Threshold == nil || *req.Threshold < 0 {
			resp.Algorithm = "density global minima"
			resp.Anomalies = det.GlobalMinima()
		} else {
			resp.Algorithm = "density threshold"
			resp.Anomalies = det.DensityAnomalies(*req.Threshold, req.MinLen)
		}
	}
	return resp, nil
}

// detector returns the cached Detector for (series, opts), inducing and
// caching a new one on miss. Concurrent misses for the same fingerprint
// coalesce into a single induction unless disabled; reused reports that
// the detector came from the cache or from another request's flight, so
// this request skipped induction. The fingerprint covers the series bits
// and every option that influences the grammar, so equal keys mean
// byte-identical detectors.
func (s *Server) detector(ctx context.Context, series []float64, opts grammarviz.Options) (det *grammarviz.Detector, reused bool, err error) {
	key := grammarviz.Fingerprint(series, opts)
	if det, ok := s.cache.Get(key); ok {
		s.cacheHits.Inc()
		return det, true, nil
	}
	if s.cfg.DisableCoalesce {
		det, err := s.induce(ctx, key, series, opts)
		return det, false, err
	}
	det, joined, err := s.flights.Do(ctx, key, func(fctx context.Context) (*grammarviz.Detector, error) {
		// A flight that completed between our cache probe and joining may
		// have populated the cache already — re-check (without touching the
		// lookup statistics) before paying for induction.
		if det, ok := s.cache.Peek(key); ok {
			return det, nil
		}
		return s.induce(fctx, key, series, opts)
	})
	if err != nil {
		return nil, false, err
	}
	if joined {
		s.coalesced.Inc()
	}
	return det, joined, nil
}

// induce runs the full analysis for a cache miss and stores the result.
func (s *Server) induce(ctx context.Context, key string, series []float64, opts grammarviz.Options) (*grammarviz.Detector, error) {
	s.cacheMisses.Inc()
	if s.testHookInduce != nil {
		s.testHookInduce()
	}
	det, err := grammarviz.NewCtx(ctx, series, opts)
	if err != nil {
		return nil, err
	}
	if s.cache.Add(key, det) {
		s.cacheEvictions.Inc()
	}
	return det, nil
}

// ensembleResult returns the cached EnsembleResult for (series, opts),
// running and caching the fused analysis on miss. It mirrors detector():
// ensemble keys (EnsembleFingerprint) cover the series bits, the member
// count, and the sampler seed — everything that influences scores — so
// equal keys mean byte-identical results and concurrent misses can share
// one flight.
func (s *Server) ensembleResult(ctx context.Context, series []float64, opts grammarviz.EnsembleOptions) (res *grammarviz.EnsembleResult, reused bool, err error) {
	key := grammarviz.EnsembleFingerprint(series, opts)
	if res, ok := s.ecache.Get(key); ok {
		s.cacheHits.Inc()
		return res, true, nil
	}
	if s.cfg.DisableCoalesce {
		res, err := s.induceEnsemble(ctx, key, series, opts)
		return res, false, err
	}
	res, joined, err := s.eflights.Do(ctx, key, func(fctx context.Context) (*grammarviz.EnsembleResult, error) {
		if res, ok := s.ecache.Peek(key); ok {
			return res, nil
		}
		return s.induceEnsemble(fctx, key, series, opts)
	})
	if err != nil {
		return nil, false, err
	}
	if joined {
		s.coalesced.Inc()
	}
	return res, joined, nil
}

// induceEnsemble runs the full ensemble analysis for a cache miss and
// stores the fused result.
func (s *Server) induceEnsemble(ctx context.Context, key string, series []float64, opts grammarviz.EnsembleOptions) (*grammarviz.EnsembleResult, error) {
	s.cacheMisses.Inc()
	if s.testHookInduce != nil {
		s.testHookInduce()
	}
	res, err := grammarviz.EnsembleDensityCtx(ctx, series, opts)
	if err != nil {
		return nil, err
	}
	if s.ecache.Add(key, res) {
		s.cacheEvictions.Inc()
	}
	return res, nil
}

// classifyError maps an analysis error to an HTTP status and a metrics
// outcome label.
func classifyError(err error) (status int, outcome string) {
	var pe *worker.PanicError
	switch {
	case errors.As(err, &pe):
		return http.StatusInternalServerError, "panic"
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout, "timeout"
	case errors.Is(err, grammarviz.ErrInvalidValue),
		errors.Is(err, grammarviz.ErrShortSeries):
		return http.StatusBadRequest, "invalid"
	case errors.Is(err, discord.ErrNoCandidates),
		errors.Is(err, grammarviz.ErrNoEnsembleMembers):
		return http.StatusUnprocessableEntity, "error"
	default:
		return http.StatusInternalServerError, "error"
	}
}

func outcomeOf(resp *AnalyzeResponse) string {
	switch {
	case resp.Fallback:
		return "fallback"
	case resp.Partial:
		return "partial"
	default:
		return "ok"
	}
}

// modeLabel bounds the cardinality of the mode label: anything not in the
// known set is reported as "unknown".
func modeLabel(mode string) string {
	//gvad:modes Serving
	switch mode {
	case ModeRRA, ModeBestEffort, ModeDensity, ModeHOTSAX, ModeEnsemble:
		return mode
	default:
		return "unknown"
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}
