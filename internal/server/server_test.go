package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"grammarviz"
)

// testSeries builds a noisy sine with a planted frequency-burst anomaly —
// the same shape the library's own tests use.
func testSeries(n int, period float64, at, length int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	ts := make([]float64, n)
	for i := range ts {
		ts[i] = math.Sin(2*math.Pi*float64(i)/period) + rng.NormFloat64()*0.02
	}
	for i := at; i < at+length && i < n; i++ {
		ts[i] = math.Sin(4*math.Pi*float64(i)/period) + rng.NormFloat64()*0.02
	}
	return ts
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// postAnalyze posts req and returns the HTTP status with the raw body.
func postAnalyze(t *testing.T, url string, req AnalyzeRequest) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

func decodeAnalyze(t *testing.T, body []byte) AnalyzeResponse {
	t.Helper()
	var out AnalyzeResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decode response %s: %v", body, err)
	}
	return out
}

// scrapeMetric fetches /metrics and returns the value of the exactly
// named series line (including any label set), or -1 if absent.
func scrapeMetric(t *testing.T, url, series string) float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("unparsable metric line %q: %v", line, err)
			}
			return v
		}
	}
	return -1
}

// TestAnalyzeMatchesLibrary is the equivalence end of the e2e acceptance
// criterion: for every mode, the values coming back over HTTP are exactly
// (bit-for-bit, via JSON's round-trippable float encoding) what a direct
// library call returns for the same series and options.
func TestAnalyzeMatchesLibrary(t *testing.T) {
	series := testSeries(900, 45, 500, 60, 1)
	opts := grammarviz.Options{Window: 45, PAA: 4, Alphabet: 4, Seed: 1}
	det, err := grammarviz.New(series, opts)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{})

	base := AnalyzeRequest{Series: series, Window: 45, PAA: 4, Alphabet: 4, K: 2, Seed: 1}

	t.Run("rra", func(t *testing.T) {
		req := base
		req.Mode = ModeRRA
		status, body := postAnalyze(t, ts.URL, req)
		if status != http.StatusOK {
			t.Fatalf("status %d: %s", status, body)
		}
		got := decodeAnalyze(t, body)
		want, calls, err := det.DiscordsWithStats(2)
		if err != nil {
			t.Fatal(err)
		}
		if got.DistanceCalls != calls {
			t.Errorf("distance calls = %d, want %d", got.DistanceCalls, calls)
		}
		if got.Partial || got.Fallback {
			t.Errorf("exact query flagged partial=%v fallback=%v", got.Partial, got.Fallback)
		}
		if len(got.Discords) != len(want) {
			t.Fatalf("%d discords, want %d", len(got.Discords), len(want))
		}
		for i := range want {
			if got.Discords[i] != want[i] {
				t.Errorf("discord %d = %+v, want %+v", i, got.Discords[i], want[i])
			}
		}
	})

	t.Run("besteffort-unbounded-equals-exact", func(t *testing.T) {
		req := base
		req.Mode = ModeBestEffort
		status, body := postAnalyze(t, ts.URL, req)
		if status != http.StatusOK {
			t.Fatalf("status %d: %s", status, body)
		}
		got := decodeAnalyze(t, body)
		want, _, err := det.DiscordsWithStats(2)
		if err != nil {
			t.Fatal(err)
		}
		if got.Partial || got.Fallback {
			t.Errorf("unbounded best-effort degraded: %+v", got)
		}
		for i := range want {
			if got.Discords[i] != want[i] {
				t.Errorf("discord %d = %+v, want %+v", i, got.Discords[i], want[i])
			}
		}
	})

	t.Run("density", func(t *testing.T) {
		req := base
		req.Mode = ModeDensity
		status, body := postAnalyze(t, ts.URL, req)
		if status != http.StatusOK {
			t.Fatalf("status %d: %s", status, body)
		}
		got := decodeAnalyze(t, body)
		want := det.GlobalMinima()
		if len(got.Anomalies) != len(want) {
			t.Fatalf("%d anomalies, want %d", len(got.Anomalies), len(want))
		}
		for i := range want {
			if got.Anomalies[i] != want[i] {
				t.Errorf("anomaly %d = %+v, want %+v", i, got.Anomalies[i], want[i])
			}
		}

		thr := 2
		req.Threshold = &thr
		status, body = postAnalyze(t, ts.URL, req)
		if status != http.StatusOK {
			t.Fatalf("threshold status %d: %s", status, body)
		}
		got = decodeAnalyze(t, body)
		wantThr := det.DensityAnomalies(2, 0)
		if len(got.Anomalies) != len(wantThr) {
			t.Fatalf("threshold: %d anomalies, want %d", len(got.Anomalies), len(wantThr))
		}
		for i := range wantThr {
			if got.Anomalies[i] != wantThr[i] {
				t.Errorf("threshold anomaly %d = %+v, want %+v", i, got.Anomalies[i], wantThr[i])
			}
		}
	})

	t.Run("hotsax", func(t *testing.T) {
		req := base
		req.Mode = ModeHOTSAX
		status, body := postAnalyze(t, ts.URL, req)
		if status != http.StatusOK {
			t.Fatalf("status %d: %s", status, body)
		}
		got := decodeAnalyze(t, body)
		// The server serves hotsax through HOTSAXDiscordsCtx (the coded
		// MINDIST-pruned path), so the byte-for-byte baseline is the same
		// entry point: identical discords, and a DistanceCalls count that
		// reflects the pruning.
		want, calls, err := grammarviz.HOTSAXDiscordsCtx(context.Background(), series, 45, 4, 4, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got.DistanceCalls != calls {
			t.Errorf("distance calls = %d, want %d", got.DistanceCalls, calls)
		}
		for i := range want {
			if got.Discords[i] != want[i] {
				t.Errorf("discord %d = %+v, want %+v", i, got.Discords[i], want[i])
			}
		}
	})
}

// TestCacheHitSkipsInduction is the caching end of the acceptance
// criterion: the second identical query is served from the detector cache
// — asserted through the cache-hit counter on /metrics, the response's
// cache_hit field, and the cache's own statistics.
func TestCacheHitSkipsInduction(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	series := testSeries(900, 45, 500, 60, 1)
	req := AnalyzeRequest{Series: series, Mode: ModeRRA, Window: 45, PAA: 4, Alphabet: 4, K: 2}

	status, body := postAnalyze(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("first request: status %d: %s", status, body)
	}
	if got := decodeAnalyze(t, body); got.CacheHit {
		t.Error("first request reported a cache hit")
	}
	if v := scrapeMetric(t, ts.URL, "gvad_cache_misses_total"); v != 1 {
		t.Errorf("gvad_cache_misses_total = %v, want 1", v)
	}
	if v := scrapeMetric(t, ts.URL, "gvad_cache_hits_total"); v != 0 {
		t.Errorf("gvad_cache_hits_total = %v, want 0", v)
	}

	status, body = postAnalyze(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("second request: status %d: %s", status, body)
	}
	if got := decodeAnalyze(t, body); !got.CacheHit {
		t.Error("second identical request missed the cache")
	}
	if v := scrapeMetric(t, ts.URL, "gvad_cache_hits_total"); v != 1 {
		t.Errorf("gvad_cache_hits_total = %v, want 1 (induction not skipped)", v)
	}
	if v := scrapeMetric(t, ts.URL, "gvad_cache_misses_total"); v != 1 {
		t.Errorf("gvad_cache_misses_total = %v, want 1 (detector rebuilt)", v)
	}
	if cs := s.CacheStats(); cs.Hits != 1 || cs.Misses != 1 || cs.Len != 1 {
		t.Errorf("cache stats = %+v", cs)
	}

	// A different mode over the same series and options must also hit: the
	// fingerprint keys on the analysis inputs, not the query.
	req.Mode = ModeDensity
	if status, body = postAnalyze(t, ts.URL, req); status != http.StatusOK {
		t.Fatalf("density request: status %d: %s", status, body)
	}
	if got := decodeAnalyze(t, body); !got.CacheHit {
		t.Error("density query over a cached series missed the cache")
	}
}

// TestDeadlineReturnsDegraded is the degradation end of the acceptance
// criterion: a request whose budget cannot cover the exact search comes
// back 200 with Partial or Fallback set — never an error.
func TestDeadlineReturnsDegraded(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	series := testSeries(40000, 100, 20000, 150, 7)

	// Warm the detector cache with the distance-free density mode, so the
	// tiny budget below is spent inside the discord search (the ladder's
	// domain), not grammar induction.
	warm := AnalyzeRequest{Series: series, Mode: ModeDensity, Window: 100, PAA: 4, Alphabet: 4}
	status, body := postAnalyze(t, ts.URL, warm)
	if status != http.StatusOK {
		t.Fatalf("warm request: status %d: %s", status, body)
	}

	req := warm
	req.Mode = ModeBestEffort
	req.K = 5
	req.TimeoutMS = 1
	req.Workers = 1
	status, body = postAnalyze(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("deadline-bound request errored: status %d: %s", status, body)
	}
	got := decodeAnalyze(t, body)
	if !got.CacheHit {
		t.Error("deadline-bound request missed the warmed cache")
	}
	if !got.Partial && !got.Fallback {
		t.Fatalf("1ms budget over 40000 points completed exactly?! %+v", got)
	}
	if got.Fallback {
		for _, d := range got.Discords {
			if d.Distance != -1 || d.NNStart != -1 {
				t.Errorf("fallback discord carries distance evidence: %+v", d)
			}
		}
	}
	if v := scrapeMetric(t, ts.URL, `gvad_requests_total{mode="besteffort",outcome="partial"}`); got.Partial && !got.Fallback && v != 1 {
		t.Errorf("partial outcome counter = %v, want 1", v)
	}
	if v := scrapeMetric(t, ts.URL, `gvad_requests_total{mode="besteffort",outcome="fallback"}`); got.Fallback && v != 1 {
		t.Errorf("fallback outcome counter = %v, want 1", v)
	}
}

// TestShutdownDrainsUnderLoad is the lifecycle end of the acceptance
// criterion: Shutdown while requests are in flight lets every one of them
// complete with 200, and no goroutine outlives the drain (the -race run
// of this test is the leak check).
func TestShutdownDrainsUnderLoad(t *testing.T) {
	baseline := runtime.NumGoroutine()

	s := New(Config{MaxConcurrent: 2, MaxQueue: 16})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ln) }()
	url := "http://" + ln.Addr().String()

	client := &http.Client{}
	const inFlight = 6
	statuses := make([]int, inFlight)
	var wg sync.WaitGroup
	for i := 0; i < inFlight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct seeds → distinct series → every request induces its
			// own detector, keeping the slots busy.
			req := AnalyzeRequest{
				Series: testSeries(3000, 60, 1500, 80, int64(i+1)),
				Mode:   ModeBestEffort, Window: 60, PAA: 4, Alphabet: 4, K: 2,
			}
			body, _ := json.Marshal(req)
			resp, err := client.Post(url+"/v1/analyze", "application/json", bytes.NewReader(body))
			if err != nil {
				statuses[i] = -1
				return
			}
			defer resp.Body.Close()
			var out AnalyzeResponse
			if json.NewDecoder(resp.Body).Decode(&out) == nil {
				statuses[i] = resp.StatusCode
			}
		}(i)
	}

	// Shut down only once every request is inside the server — holding a
	// slot, queued for one, or already answered. Shutting down earlier
	// would race the TCP accept and refuse connections instead of testing
	// the drain.
	inServer := func() int {
		done := s.requests.With(ModeBestEffort, "ok").Value() +
			s.requests.With(ModeBestEffort, "partial").Value() +
			s.requests.With(ModeBestEffort, "fallback").Value()
		return int(s.inflight.Value()) + s.pendingQueue() + int(done)
	}
	for admitDeadline := time.Now().Add(10 * time.Second); inServer() < inFlight; {
		if time.Now().After(admitDeadline) {
			t.Fatalf("only %d of %d requests reached the server", inServer(), inFlight)
		}
		time.Sleep(2 * time.Millisecond)
	}
	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown did not drain: %v", err)
	}
	wg.Wait()
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve returned %v after clean shutdown", err)
	}
	for i, st := range statuses {
		if st != http.StatusOK {
			t.Errorf("in-flight request %d finished with status %d, want 200", i, st)
		}
	}

	client.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines did not settle after drain: %d running, baseline %d",
		runtime.NumGoroutine(), baseline)
}

// TestAdmissionControl exercises both shedding paths white-box, on both
// admission layers: with capacity occupied, a queue-less server sheds
// with 429 immediately, and a queued request that outlives its budget
// gets 503 — each carrying a Retry-After hint.
func TestAdmissionControl(t *testing.T) {
	series := testSeries(300, 30, 150, 30, 1)
	req := AnalyzeRequest{Series: series, Mode: ModeRRA, Window: 30, PAA: 4, Alphabet: 4, K: 1}

	// postRaw exposes the response headers postAnalyze hides.
	postRaw := func(t *testing.T, url string, r AnalyzeRequest) *http.Response {
		t.Helper()
		body, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(url+"/v1/analyze", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	assertRetryAfter := func(t *testing.T, resp *http.Response) {
		t.Helper()
		h := resp.Header.Get("Retry-After")
		if h == "" {
			t.Fatalf("%d response carries no Retry-After header", resp.StatusCode)
		}
		if secs, err := strconv.Atoi(h); err != nil || secs < 1 || secs > 30 {
			t.Errorf("Retry-After = %q, want an integer in 1..30", h)
		}
	}

	// occupy fills the server's active admission layer completely and
	// returns the release.
	occupy := func(t *testing.T, s *Server) func() {
		t.Helper()
		if s.adm != nil {
			release, err := s.adm.Acquire(context.Background(), "occupier", s.adm.Capacity())
			if err != nil {
				t.Fatal(err)
			}
			return release
		}
		s.sem <- struct{}{}
		return func() { <-s.sem }
	}

	for _, mode := range []struct {
		name string
		cfg  func(Config) Config
	}{
		{"budget", func(c Config) Config { return c }},
		{"legacy", func(c Config) Config { c.DisableBudget = true; return c }},
	} {
		t.Run(mode.name, func(t *testing.T) {
			t.Run("queue-full-sheds-429", func(t *testing.T) {
				s, ts := newTestServer(t, mode.cfg(Config{MaxConcurrent: 1, MaxQueue: -1}))
				defer occupy(t, s)()
				resp := postRaw(t, ts.URL, req)
				if resp.StatusCode != http.StatusTooManyRequests {
					t.Fatalf("status = %d, want 429", resp.StatusCode)
				}
				assertRetryAfter(t, resp)
				if v := scrapeMetric(t, ts.URL, `gvad_requests_total{mode="rra",outcome="rejected"}`); v != 1 {
					t.Errorf("rejected counter = %v, want 1", v)
				}
			})

			t.Run("queued-past-deadline-503", func(t *testing.T) {
				s, ts := newTestServer(t, mode.cfg(Config{MaxConcurrent: 1, MaxQueue: 4}))
				defer occupy(t, s)()
				r := req
				r.TimeoutMS = 50
				resp := postRaw(t, ts.URL, r)
				if resp.StatusCode != http.StatusServiceUnavailable {
					t.Fatalf("status = %d, want 503", resp.StatusCode)
				}
				assertRetryAfter(t, resp)
			})
		})
	}
}

// TestPanicContained injects a panic into the analysis path and checks
// the containment contract: the caller sees a 500, the daemon lives on.
func TestPanicContained(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.testHookAnalyze = func(*AnalyzeRequest) { panic("injected failure") }
	series := testSeries(300, 30, 150, 30, 1)
	req := AnalyzeRequest{Series: series, Mode: ModeRRA, Window: 30, PAA: 4, Alphabet: 4, K: 1}
	status, body := postAnalyze(t, ts.URL, req)
	if status != http.StatusInternalServerError {
		t.Fatalf("status = %d (%s), want 500", status, body)
	}
	if !strings.Contains(string(body), "injected failure") {
		t.Errorf("error body does not carry the panic value: %s", body)
	}
	if v := scrapeMetric(t, ts.URL, `gvad_requests_total{mode="rra",outcome="panic"}`); v != 1 {
		t.Errorf("panic outcome counter = %v, want 1", v)
	}

	// The daemon survived: clear the hook and serve a real request.
	s.testHookAnalyze = nil
	if status, body := postAnalyze(t, ts.URL, req); status != http.StatusOK {
		t.Fatalf("post-panic request: status %d: %s", status, body)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz after panic = %d", resp.StatusCode)
	}
}

// TestValidation checks that malformed requests are rejected up front
// with 400 and a descriptive message, before occupying a slot.
func TestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSeriesLen: 1000})
	series := testSeries(300, 30, 150, 30, 1)
	cases := []struct {
		name string
		req  AnalyzeRequest
		frag string
	}{
		{"empty series", AnalyzeRequest{Mode: ModeRRA, Window: 30, PAA: 4, Alphabet: 4}, "series is required"},
		{"unknown mode", AnalyzeRequest{Series: series, Mode: "psychic", Window: 30, PAA: 4, Alphabet: 4}, "unknown mode"},
		{"negative k", AnalyzeRequest{Series: series, Mode: ModeRRA, Window: 30, PAA: 4, Alphabet: 4, K: -2}, "k must be"},
		{"paa over window", AnalyzeRequest{Series: series, Mode: ModeRRA, Window: 30, PAA: 31, Alphabet: 4}, "must not exceed window"},
		{"bad alphabet", AnalyzeRequest{Series: series, Mode: ModeRRA, Window: 30, PAA: 4, Alphabet: 1}, "alphabet"},
		{"window over series", AnalyzeRequest{Series: series, Mode: ModeRRA, Window: 600, PAA: 4, Alphabet: 4}, "exceeds series length"},
		{"hotsax needs window", AnalyzeRequest{Series: series, Mode: ModeHOTSAX}, "explicit window"},
		{"series over cap", AnalyzeRequest{Series: testSeries(1500, 30, 700, 30, 1), Mode: ModeRRA, Window: 30, PAA: 4, Alphabet: 4}, "server cap"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := postAnalyze(t, ts.URL, tc.req)
			if status != http.StatusBadRequest {
				t.Fatalf("status = %d (%s), want 400", status, body)
			}
			if !strings.Contains(string(body), tc.frag) {
				t.Errorf("error %s does not mention %q", body, tc.frag)
			}
		})
	}

	t.Run("non-json body", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", strings.NewReader("not json"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status = %d, want 400", resp.StatusCode)
		}
	})
}

// TestMetricsExposition spot-checks the scrape body a Prometheus
// collector would ingest.
func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	series := testSeries(300, 30, 150, 30, 1)
	req := AnalyzeRequest{Series: series, Mode: ModeRRA, Window: 30, PAA: 4, Alphabet: 4, K: 1}
	if status, body := postAnalyze(t, ts.URL, req); status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{
		"# TYPE gvad_requests_total counter",
		fmt.Sprintf("gvad_requests_total{mode=%q,outcome=%q} 1", "rra", "ok"),
		"# TYPE gvad_request_duration_seconds histogram",
		"gvad_request_duration_seconds_count 1",
		`gvad_request_duration_seconds_bucket{le="+Inf"} 1`,
		"# TYPE gvad_inflight_requests gauge",
		"gvad_inflight_requests 0",
		"gvad_distance_calls_total",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("scrape missing %q:\n%s", frag, out)
		}
	}
}

// TestAutoSelect checks the window-0 path: parameters come back filled in
// and match the library's own suggestion.
func TestAutoSelect(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	series := testSeries(900, 45, 500, 60, 1)
	req := AnalyzeRequest{Series: series, Mode: ModeDensity}
	status, body := postAnalyze(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	got := decodeAnalyze(t, body)
	want, err := grammarviz.SuggestOptions(series)
	if err != nil {
		t.Fatal(err)
	}
	if got.Window != want.Window || got.PAA != want.PAA || got.Alphabet != want.Alphabet {
		t.Errorf("auto-selected (%d,%d,%d), library suggests (%d,%d,%d)",
			got.Window, got.PAA, got.Alphabet, want.Window, want.PAA, want.Alphabet)
	}
}
