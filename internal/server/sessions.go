package server

import (
	"context"
	"crypto/rand"
	"crypto/subtle"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"grammarviz"
	"grammarviz/internal/memlog"
	"grammarviz/internal/modes"
	"grammarviz/internal/worker"
)

// This file implements durable streaming sessions: long-lived incremental
// detectors owned by a supervisor, persisted through a per-session
// write-ahead memlog plus checkpoint snapshots, restored on boot, and
// evicted-but-restorable when idle.
//
//	POST   /v1/stream              open a session (id + resume token)
//	POST   /v1/stream/{id}/append  feed points, get events + novelty scores
//	GET    /v1/stream/{id}         session state
//	DELETE /v1/stream/{id}         close and delete the session
//
// Every request after open authenticates with the resume token (the
// X-Resume-Token header). Durability: each accepted chunk is framed into
// the session's memlog before the response is written (fsynced per the
// configured policy), and the supervisor compacts log into checkpoint
// snapshots once the log outgrows the snapshot. On boot the supervisor
// restores every session from snapshot + log replay, quarantining — not
// crashing on — anything corrupt. One poisoned session 500s by itself;
// its neighbors keep streaming.

const (
	resumeTokenHeader = "X-Resume-Token"
	quarantineSuffix  = ".corrupt"
	sessionMetaName   = "meta.json"
)

// StreamOpenRequest opens a streaming session.
type StreamOpenRequest struct {
	Tenant    string `json:"tenant,omitempty"`
	Window    int    `json:"window"`
	PAA       int    `json:"paa"`
	Alphabet  int    `json:"alphabet"`
	Reduction string `json:"reduction,omitempty"` // exact (default) | none | mindist
}

// StreamOpenResponse returns the session identity and resume credentials.
type StreamOpenResponse struct {
	ID          string `json:"id"`
	ResumeToken string `json:"resume_token"`
	Window      int    `json:"window"`
	PAA         int    `json:"paa"`
	Alphabet    int    `json:"alphabet"`
	Reduction   string `json:"reduction"`
}

// StreamAppendRequest feeds a chunk of points to a session. Offset, when
// set, is the absolute stream index of the first point — the idempotence
// handle: a retry of an already-applied chunk is detected (409 with the
// current length) instead of double-appended.
type StreamAppendRequest struct {
	Points []float64 `json:"points"`
	Offset *int      `json:"offset,omitempty"`
}

// StreamEventJSON is one emitted word with its novelty score (1 = first
// sighting of this shape, approaching 0 = routine).
type StreamEventJSON struct {
	Offset  int     `json:"offset"`
	Word    string  `json:"word"`
	Novelty float64 `json:"novelty"`
}

// StreamAppendResponse reports the session length after the chunk plus
// every event the chunk emitted and the closing window's anomaly score
// (the novelty of the newest emitted word; 0 when the chunk closed no
// new window).
type StreamAppendResponse struct {
	Len        int               `json:"len"`
	Events     []StreamEventJSON `json:"events"`
	LastScore  float64           `json:"last_score"`
	MaxScore   float64           `json:"max_score"`
	Checkpoint bool              `json:"checkpointed,omitempty"` // chunk triggered compaction
}

// StreamStateResponse describes a session.
type StreamStateResponse struct {
	ID            string `json:"id"`
	Len           int    `json:"len"`
	Words         int    `json:"words"`
	Rules         int    `json:"rules"`
	Window        int    `json:"window"`
	PAA           int    `json:"paa"`
	Alphabet      int    `json:"alphabet"`
	Reduction     string `json:"reduction"`
	Restored      bool   `json:"restored,omitempty"`       // came back from disk at boot or after eviction
	LogBytes      int64  `json:"log_bytes,omitempty"`      // WAL bytes since the last snapshot
	SnapshotBytes int64  `json:"snapshot_bytes,omitempty"` // size of the last checkpoint frame
}

// StreamAnomaliesResponse is the session's current anomaly picture: the
// rule-density curve over everything consumed so far plus its
// global-minima intervals, computed from an in-memory snapshot.
type StreamAnomaliesResponse struct {
	ID        string               `json:"id"`
	Len       int                  `json:"len"`
	Density   []int                `json:"density"`
	Anomalies []grammarviz.Anomaly `json:"anomalies"`
}

// sessionMeta is the durable identity of a session, stored as meta.json
// in its state directory so recovery can rebuild the supervisor entry.
type sessionMeta struct {
	ID        string `json:"id"`
	Token     string `json:"token"`
	Tenant    string `json:"tenant"`
	Window    int    `json:"window"`
	PAA       int    `json:"paa"`
	Alphabet  int    `json:"alphabet"`
	Reduction string `json:"reduction"`
}

func (m *sessionMeta) options() (grammarviz.Options, error) {
	red, err := parseReduction(m.Reduction)
	if err != nil {
		return grammarviz.Options{}, err
	}
	return grammarviz.Options{
		Window: m.Window, PAA: m.PAA, Alphabet: m.Alphabet, Reduction: red,
	}, nil
}

func parseReduction(s string) (grammarviz.Reduction, error) {
	switch s {
	case "", "exact":
		return grammarviz.ReduceExact, nil
	case "none":
		return grammarviz.ReduceNone, nil
	case "mindist":
		return grammarviz.ReduceMINDIST, nil
	}
	return 0, fmt.Errorf("unknown reduction %q (want exact, none or mindist)", s)
}

func reductionName(r grammarviz.Reduction) string {
	switch r {
	case grammarviz.ReduceNone:
		return "none"
	case grammarviz.ReduceMINDIST:
		return "mindist"
	default:
		return "exact"
	}
}

// streamSession is one live session. All state transitions happen under
// mu; the supervisor map lock is never held across session work, so a
// slow append in one session cannot block another session's request.
type streamSession struct {
	mu sync.Mutex

	meta sessionMeta
	dir  string // state directory; "" when durability is off

	stream   *grammarviz.Stream // nil while evicted
	log      *memlog.Log        // nil when durability is off or while evicted
	restored bool               // rebuilt from disk at least once

	poisoned  bool // a panic mid-append left in-memory state suspect
	closed    bool
	lastTouch time.Time
}

// sessionSupervisor owns the session table. The lock order below is the
// map-lock invariant made checkable: eviction and delete take a session's
// mutex first and touch the table under its own lock afterwards, so the
// table lock may never be held while acquiring a session lock.
//
//gvad:lockorder server.streamSession.mu < server.sessionSupervisor.mu
type sessionSupervisor struct {
	mu       sync.Mutex
	sessions map[string]*streamSession
}

func randomHex(n int) (string, error) {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		return "", err
	}
	return hex.EncodeToString(b), nil
}

func (s *Server) memlogOptions() memlog.Options {
	return memlog.Options{
		Policy:        s.cfg.FsyncPolicy,
		Interval:      s.cfg.FsyncInterval,
		SegmentBytes:  s.cfg.SegmentBytes,
		CompactFactor: s.cfg.CompactFactor,
		WriteDelay:    s.cfg.WriteDelay,
		Logf:          s.cfg.Logf,
	}
}

// sessionDir is the on-disk home of a session ("" when durability is
// off). Session ids are self-generated hex, so they are always safe path
// components; recovery additionally refuses anything else.
func (s *Server) sessionDir(id string) string {
	if s.cfg.StateDir == "" {
		return ""
	}
	return filepath.Join(s.cfg.StateDir, id)
}

func validSessionID(id string) bool {
	if len(id) != 32 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// writeMeta persists the session identity atomically (tmp + rename).
func writeMeta(dir string, meta *sessionMeta) error {
	data, err := json.Marshal(meta)
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, sessionMetaName+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, sessionMetaName))
}

// ---- HTTP handlers -------------------------------------------------------

func (s *Server) handleStreamOpen(w http.ResponseWriter, r *http.Request) {
	if s.rejectDraining(w) {
		return
	}
	var req StreamOpenRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	red, err := parseReduction(req.Reduction)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	opts := grammarviz.Options{Window: req.Window, PAA: req.PAA, Alphabet: req.Alphabet, Reduction: red}
	stream, err := grammarviz.NewStream(opts)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	s.sup.mu.Lock()
	if len(s.sup.sessions) >= s.cfg.MaxSessions {
		s.sup.mu.Unlock()
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSecs()))
		writeError(w, http.StatusTooManyRequests, fmt.Errorf("session limit (%d) reached", s.cfg.MaxSessions))
		return
	}
	s.sup.mu.Unlock()

	id, err := randomHex(16)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	token, err := randomHex(32)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	sess := &streamSession{
		meta: sessionMeta{
			ID: id, Token: token, Tenant: resolveTenant(r, req.Tenant),
			Window: req.Window, PAA: req.PAA, Alphabet: req.Alphabet,
			Reduction: reductionName(red),
		},
		dir:       s.sessionDir(id),
		stream:    stream,
		lastTouch: time.Now(),
	}
	if sess.dir != "" {
		log, _, err := memlog.Open(sess.dir, s.memlogOptions())
		if err != nil {
			writeError(w, http.StatusInternalServerError, fmt.Errorf("open session log: %w", err))
			return
		}
		if err := writeMeta(sess.dir, &sess.meta); err != nil {
			_ = log.Close()
			writeError(w, http.StatusInternalServerError, fmt.Errorf("persist session meta: %w", err))
			return
		}
		sess.log = log
	}

	s.sup.mu.Lock()
	s.sup.sessions[id] = sess
	n := len(s.sup.sessions)
	s.sup.mu.Unlock()
	s.sessionsActive.Set(int64(n))

	writeJSON(w, http.StatusCreated, StreamOpenResponse{
		ID: id, ResumeToken: token,
		Window: req.Window, PAA: req.PAA, Alphabet: req.Alphabet,
		Reduction: reductionName(red),
	})
}

// lookupSession authenticates the request against the session's resume
// token. It returns nil after writing the error response.
func (s *Server) lookupSession(w http.ResponseWriter, r *http.Request) *streamSession {
	id := r.PathValue("id")
	s.sup.mu.Lock()
	sess := s.sup.sessions[id]
	s.sup.mu.Unlock()
	if sess == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown session %q", id))
		return nil
	}
	token := r.Header.Get(resumeTokenHeader)
	if subtle.ConstantTimeCompare([]byte(token), []byte(sess.meta.Token)) != 1 {
		writeError(w, http.StatusForbidden, errors.New("missing or wrong resume token"))
		return nil
	}
	return sess
}

func (s *Server) handleStreamAppend(w http.ResponseWriter, r *http.Request) {
	if s.rejectDraining(w) {
		return
	}
	sess := s.lookupSession(w, r)
	if sess == nil {
		return
	}
	var req StreamAppendRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if len(req.Points) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("points must not be empty"))
		return
	}

	// Admission: streaming appends are the cheap incremental path, so they
	// are charged at the lowest weight, but they still pass through the
	// tenant budget so a flood of appends cannot starve analyses.
	release, err := s.admit(r.Context(), sess.meta.Tenant, len(req.Points), modeWeight(modes.Stream))
	if err != nil {
		if errors.Is(err, errQueueFull) {
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSecs()))
			writeError(w, http.StatusTooManyRequests, errors.New("server saturated, retry later"))
			return
		}
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("timed out waiting for admission: %w", err))
		return
	}
	defer release()

	resp, status, err := s.sessionAppend(r.Context(), sess, &req)
	if err != nil {
		writeError(w, status, err)
		return
	}
	writeJSON(w, status, resp)
}

// sessionAppend applies one chunk under the session mutex, WAL-first, with
// panic containment: a panic while mutating the stream poisons only this
// session.
//
//gvad:walfirst
func (s *Server) sessionAppend(ctx context.Context, sess *streamSession, req *StreamAppendRequest) (*StreamAppendResponse, int, error) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.closed {
		return nil, http.StatusGone, errors.New("session closed")
	}
	if sess.poisoned {
		return nil, http.StatusInternalServerError, errors.New("session poisoned by an earlier panic; delete it")
	}
	if err := s.ensureResident(sess); err != nil {
		return nil, http.StatusInternalServerError, err
	}
	sess.lastTouch = time.Now()

	cur := sess.stream.Len()
	if req.Offset != nil && *req.Offset != cur {
		return nil, http.StatusConflict,
			fmt.Errorf("offset %d does not match session length %d (chunk already applied, or a gap)", *req.Offset, cur)
	}
	if s.cfg.MaxSeriesLen > 0 && cur+len(req.Points) > s.cfg.MaxSeriesLen {
		return nil, http.StatusBadRequest,
			fmt.Errorf("appending %d points would exceed the %d-point session cap", len(req.Points), s.cfg.MaxSeriesLen)
	}
	for i, v := range req.Points {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			// Rejected before any mutation: the stream never sees the bad
			// chunk, so a corrected retry continues byte-identically.
			return nil, http.StatusBadRequest,
				fmt.Errorf("point %d is %v: %w", i, v, grammarviz.ErrInvalidValue)
		}
	}

	// WAL first: the chunk is on the log (fsynced per policy) before the
	// detector sees it, so an acknowledged chunk survives a crash.
	if sess.log != nil {
		if err := sess.log.Append(encodePoints(req.Points)); err != nil {
			return nil, http.StatusInternalServerError, fmt.Errorf("write-ahead log: %w", err)
		}
	}

	resp := &StreamAppendResponse{}
	g, _ := worker.WithContext(ctx)
	g.Go(func() error {
		if s.testHookStreamAppend != nil {
			s.testHookStreamAppend(sess.meta.ID)
		}
		for _, v := range req.Points {
			ev, ok, err := sess.stream.Append(v)
			if err != nil {
				return err // unreachable: validated above
			}
			if ok {
				resp.Events = append(resp.Events, StreamEventJSON{Offset: ev.Offset, Word: ev.Word, Novelty: ev.Novelty})
				resp.LastScore = ev.Novelty
				if ev.Novelty > resp.MaxScore {
					resp.MaxScore = ev.Novelty
				}
			}
		}
		return nil
	})
	if err := g.Wait(); err != nil {
		var pe *worker.PanicError
		if errors.As(err, &pe) {
			// The stream may be half-mutated; quarantine it in memory. The
			// WAL still holds every acknowledged chunk, so a restart (or
			// DELETE + re-open) recovers cleanly.
			sess.poisoned = true
			s.cfg.Logf("session %s poisoned by panic: %v", sess.meta.ID, err)
			return nil, http.StatusInternalServerError, errors.New("internal panic while appending; session quarantined in memory")
		}
		return nil, http.StatusInternalServerError, err
	}
	resp.Len = sess.stream.Len()

	if sess.log != nil && sess.log.ShouldCompact() {
		if err := s.checkpointLocked(sess); err != nil {
			// Compaction failing is not data loss — the WAL still has
			// everything — so log and continue.
			s.cfg.Logf("session %s compaction failed: %v", sess.meta.ID, err)
		} else {
			resp.Checkpoint = true
		}
	}
	return resp, http.StatusOK, nil
}

func (s *Server) handleStreamGet(w http.ResponseWriter, r *http.Request) {
	sess := s.lookupSession(w, r)
	if sess == nil {
		return
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.closed {
		writeError(w, http.StatusGone, errors.New("session closed"))
		return
	}
	if err := s.ensureResident(sess); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	sess.lastTouch = time.Now()
	mem := sess.stream.MemStats()
	resp := StreamStateResponse{
		ID:        sess.meta.ID,
		Len:       sess.stream.Len(),
		Words:     mem.Words,
		Rules:     mem.Rules,
		Window:    sess.meta.Window,
		PAA:       sess.meta.PAA,
		Alphabet:  sess.meta.Alphabet,
		Reduction: sess.meta.Reduction,
		Restored:  sess.restored,
	}
	if sess.log != nil {
		resp.LogBytes = sess.log.LogBytes()
		resp.SnapshotBytes = sess.log.SnapshotBytes()
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleStreamAnomalies serves GET /v1/stream/{id}/anomalies: the
// session's current rule-density snapshot and its global-minima anomaly
// intervals. Strictly read-only — it snapshots under the session mutex
// and never touches the WAL, so polling anomalies costs no fsyncs and
// cannot perturb durability.
func (s *Server) handleStreamAnomalies(w http.ResponseWriter, r *http.Request) {
	sess := s.lookupSession(w, r)
	if sess == nil {
		return
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.closed {
		writeError(w, http.StatusGone, errors.New("session closed"))
		return
	}
	if sess.poisoned {
		writeError(w, http.StatusInternalServerError, errors.New("session poisoned by an earlier panic; delete it"))
		return
	}
	if err := s.ensureResident(sess); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	sess.lastTouch = time.Now()
	density, err := sess.stream.RuleDensity()
	if err != nil {
		// The only library failure here is "not enough points for one
		// window yet" — the session is fine, the question is premature.
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	anomalies, err := sess.stream.Anomalies()
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, StreamAnomaliesResponse{
		ID:        sess.meta.ID,
		Len:       sess.stream.Len(),
		Density:   density,
		Anomalies: anomalies,
	})
}

func (s *Server) handleStreamDelete(w http.ResponseWriter, r *http.Request) {
	sess := s.lookupSession(w, r)
	if sess == nil {
		return
	}
	sess.mu.Lock()
	if !sess.closed {
		sess.closed = true
		if sess.log != nil {
			if err := sess.log.Close(); err != nil {
				s.cfg.Logf("session %s: closing log on delete: %v", sess.meta.ID, err)
			}
			sess.log = nil
		}
		sess.stream = nil
		if sess.dir != "" {
			if err := os.RemoveAll(sess.dir); err != nil {
				s.cfg.Logf("session %s: removing state dir: %v", sess.meta.ID, err)
			}
		}
	}
	sess.mu.Unlock()

	s.sup.mu.Lock()
	delete(s.sup.sessions, sess.meta.ID)
	n := len(s.sup.sessions)
	s.sup.mu.Unlock()
	s.sessionsActive.Set(int64(n))
	writeJSON(w, http.StatusOK, map[string]string{"status": "closed"})
}

// ---- residency: eviction and restore ------------------------------------

// ensureResident restores an evicted session from disk. Caller holds
// sess.mu.
func (s *Server) ensureResident(sess *streamSession) error {
	if sess.stream != nil {
		return nil
	}
	if sess.dir == "" {
		return errors.New("session state lost (no state dir configured)")
	}
	stream, log, _, err := s.restoreFromDir(sess.dir, &sess.meta)
	if err != nil {
		return fmt.Errorf("restore session: %w", err)
	}
	sess.stream = stream
	sess.log = log
	sess.restored = true
	s.sessionsRestored.Inc()
	return nil
}

// restoreFromDir rebuilds a session's stream from its snapshot and WAL.
// The returned torn flag reports a dropped torn tail.
func (s *Server) restoreFromDir(dir string, meta *sessionMeta) (*grammarviz.Stream, *memlog.Log, bool, error) {
	log, rec, err := memlog.Open(dir, s.memlogOptions())
	if err != nil {
		return nil, nil, false, err
	}
	var stream *grammarviz.Stream
	if rec.Snapshot != nil {
		stream, err = grammarviz.RestoreStream(rec.Snapshot)
	} else {
		opts, oerr := meta.options()
		if oerr != nil {
			_ = log.Close()
			return nil, nil, false, oerr
		}
		stream, err = grammarviz.NewStream(opts)
	}
	if err != nil {
		_ = log.Close()
		return nil, nil, false, err
	}
	for _, chunk := range rec.Records {
		points, derr := decodePoints(chunk)
		if derr != nil {
			_ = log.Close()
			return nil, nil, false, derr
		}
		for _, v := range points {
			if _, _, aerr := stream.Append(v); aerr != nil {
				_ = log.Close()
				return nil, nil, false, fmt.Errorf("replaying log: %w", aerr)
			}
		}
	}
	if rec.Torn {
		s.sessionsTorn.Inc()
	}
	return stream, log, rec.Torn, nil
}

// checkpointLocked snapshots the session's stream into the memlog
// (compacting the WAL away). Caller holds sess.mu.
func (s *Server) checkpointLocked(sess *streamSession) error {
	if sess.log == nil || sess.stream == nil {
		return nil
	}
	frame, err := sess.stream.Checkpoint()
	if err != nil {
		return err
	}
	if err := sess.log.SaveSnapshot(frame); err != nil {
		return err
	}
	s.checkpointBytes.Set(int64(len(frame)))
	return nil
}

// ---- boot recovery -------------------------------------------------------

// RecoverSessions scans the state directory and restores every persisted
// session: snapshot + WAL replay. Sessions that fail with corruption are
// quarantined — their directory is renamed aside with the .corrupt suffix
// and counted — so one damaged session never blocks boot. It returns the
// number restored and quarantined.
func (s *Server) RecoverSessions(ctx context.Context) (restored, quarantined int, err error) {
	if s.cfg.StateDir == "" {
		return 0, 0, nil
	}
	if err := os.MkdirAll(s.cfg.StateDir, 0o755); err != nil {
		return 0, 0, err
	}
	entries, err := os.ReadDir(s.cfg.StateDir)
	if err != nil {
		return 0, 0, err
	}
	for _, e := range entries {
		if ctx.Err() != nil {
			return restored, quarantined, ctx.Err()
		}
		if !e.IsDir() || !validSessionID(e.Name()) {
			continue
		}
		dir := filepath.Join(s.cfg.StateDir, e.Name())
		sess, rerr := s.recoverOne(dir, e.Name())
		if rerr != nil {
			if isCorruption(rerr) {
				s.quarantine(dir, e.Name(), rerr)
				quarantined++
				continue
			}
			return restored, quarantined, fmt.Errorf("session %s: %w", e.Name(), rerr)
		}
		s.sup.mu.Lock()
		s.sup.sessions[sess.meta.ID] = sess
		n := len(s.sup.sessions)
		s.sup.mu.Unlock()
		s.sessionsActive.Set(int64(n))
		restored++
		s.sessionsRestored.Inc()
	}
	return restored, quarantined, nil
}

// isCorruption decides quarantine-vs-abort during recovery: damaged
// state is quarantined, environmental failures (permissions, disk) abort
// boot so the operator sees them.
func isCorruption(err error) bool {
	return errors.Is(err, memlog.ErrCorrupt) ||
		errors.Is(err, grammarviz.ErrCorruptCheckpoint) ||
		errors.Is(err, errBadMeta) ||
		errors.Is(err, grammarviz.ErrInvalidValue)
}

var errBadMeta = errors.New("malformed session meta")

func (s *Server) recoverOne(dir, id string) (*streamSession, error) {
	data, err := os.ReadFile(filepath.Join(dir, sessionMetaName))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("%w: missing meta.json", errBadMeta)
		}
		return nil, err
	}
	var meta sessionMeta
	if err := json.Unmarshal(data, &meta); err != nil {
		return nil, fmt.Errorf("%w: %v", errBadMeta, err)
	}
	if meta.ID != id || meta.Token == "" {
		return nil, fmt.Errorf("%w: identity mismatch", errBadMeta)
	}
	if _, err := meta.options(); err != nil {
		return nil, fmt.Errorf("%w: %v", errBadMeta, err)
	}
	stream, log, _, err := s.restoreFromDir(dir, &meta)
	if err != nil {
		return nil, err
	}
	return &streamSession{
		meta: meta, dir: dir,
		stream: stream, log: log,
		restored: true, lastTouch: time.Now(),
	}, nil
}

// quarantine renames a damaged session directory aside so boot proceeds
// and the evidence is preserved for inspection.
func (s *Server) quarantine(dir, id string, cause error) {
	dst := dir + quarantineSuffix
	for i := 1; ; i++ {
		if _, err := os.Stat(dst); errors.Is(err, os.ErrNotExist) {
			break
		}
		dst = fmt.Sprintf("%s%s.%d", dir, quarantineSuffix, i)
	}
	if err := os.Rename(dir, dst); err != nil {
		s.cfg.Logf("session %s: quarantine rename failed: %v", id, err)
	}
	s.sessionsQuarantined.Inc()
	s.cfg.Logf("session %s quarantined to %s: %v", id, dst, cause)
}

// ---- lifecycle: janitor, drain, shutdown ---------------------------------

// RunSessionJanitor evicts idle sessions every interval until ctx ends:
// each is checkpointed (snapshot + WAL truncate) and dropped from memory,
// restorable on next touch. Sessions without a state dir are closed
// outright. Run it on a worker group next to Serve.
func (s *Server) RunSessionJanitor(ctx context.Context, interval time.Duration) error {
	if interval <= 0 {
		interval = time.Minute
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-t.C:
			s.evictIdleSessions(time.Now())
		}
	}
}

func (s *Server) snapshotSessions() []*streamSession {
	s.sup.mu.Lock()
	defer s.sup.mu.Unlock()
	out := make([]*streamSession, 0, len(s.sup.sessions))
	for _, sess := range s.sup.sessions {
		out = append(out, sess)
	}
	return out
}

func (s *Server) evictIdleSessions(now time.Time) {
	ttl := s.cfg.SessionTTL
	if ttl <= 0 {
		return
	}
	for _, sess := range s.snapshotSessions() {
		sess.mu.Lock()
		idle := now.Sub(sess.lastTouch) > ttl
		switch {
		case !idle || sess.closed || sess.stream == nil:
			sess.mu.Unlock()
		case sess.dir == "" || sess.poisoned:
			// Nothing durable to fall back to (or nothing trustworthy):
			// drop the session entirely.
			sess.closed = true
			if sess.log != nil {
				if err := sess.log.Close(); err != nil {
					s.cfg.Logf("session %s: closing log on drop: %v", sess.meta.ID, err)
				}
				sess.log = nil
			}
			sess.stream = nil
			id := sess.meta.ID
			sess.mu.Unlock()
			s.sup.mu.Lock()
			delete(s.sup.sessions, id)
			n := len(s.sup.sessions)
			s.sup.mu.Unlock()
			s.sessionsActive.Set(int64(n))
			s.sessionsEvicted.Inc()
		default:
			if err := s.checkpointLocked(sess); err != nil {
				s.cfg.Logf("session %s: eviction checkpoint failed, keeping resident: %v", sess.meta.ID, err)
				sess.mu.Unlock()
				continue
			}
			// The checkpoint above holds the full state, so a failed
			// close cannot lose acknowledged data — but it can hide a
			// sick volume, so it is logged, never swallowed.
			if err := sess.log.Close(); err != nil {
				s.cfg.Logf("session %s: closing log after eviction checkpoint: %v", sess.meta.ID, err)
			}
			sess.log = nil
			sess.stream = nil
			sess.mu.Unlock()
			s.sessionsEvicted.Inc()
		}
	}
}

// StartDraining flips the server into drain mode: work-accepting
// endpoints answer 503 {"error":"draining"} with Retry-After: 1 and
// /healthz reports draining, so load balancers pull the instance before
// the listener closes. Safe to call more than once.
func (s *Server) StartDraining() { s.draining.Store(true) }

// Draining reports whether StartDraining has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// rejectDraining writes the drain response and reports true when the
// server is draining.
func (s *Server) rejectDraining(w http.ResponseWriter) bool {
	if !s.draining.Load() {
		return false
	}
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: "draining"})
	return true
}

// CheckpointSessions snapshots every dirty session to disk — the graceful
// half of crash safety, run before Shutdown so restart boots from
// snapshots instead of long WAL replays. Failures are logged, not fatal:
// the WAL already holds the data.
func (s *Server) CheckpointSessions(ctx context.Context) error {
	for _, sess := range s.snapshotSessions() {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		sess.mu.Lock()
		if !sess.closed && !sess.poisoned && sess.log != nil && sess.stream != nil && sess.log.LogBytes() > 0 {
			if err := s.checkpointLocked(sess); err != nil {
				s.cfg.Logf("session %s: drain checkpoint failed: %v", sess.meta.ID, err)
			}
		}
		sess.mu.Unlock()
	}
	return nil
}

// CloseSessions syncs and closes every session log. Called at process
// exit after CheckpointSessions.
func (s *Server) CloseSessions() {
	for _, sess := range s.snapshotSessions() {
		sess.mu.Lock()
		if sess.log != nil {
			if err := sess.log.Close(); err != nil {
				s.cfg.Logf("session %s: closing log: %v", sess.meta.ID, err)
			}
			sess.log = nil
		}
		sess.mu.Unlock()
	}
}

// SessionCount returns the number of live sessions (diagnostic).
func (s *Server) SessionCount() int {
	s.sup.mu.Lock()
	defer s.sup.mu.Unlock()
	return len(s.sup.sessions)
}

// ---- point codec ---------------------------------------------------------

// encodePoints frames a chunk of float64 points for the WAL (little-endian
// IEEE 754 bits).
func encodePoints(points []float64) []byte {
	buf := make([]byte, 0, 8*len(points))
	for _, v := range points {
		bits := math.Float64bits(v)
		buf = append(buf,
			byte(bits), byte(bits>>8), byte(bits>>16), byte(bits>>24),
			byte(bits>>32), byte(bits>>40), byte(bits>>48), byte(bits>>56))
	}
	return buf
}

func decodePoints(b []byte) ([]float64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("%w: point record of %d bytes", memlog.ErrCorrupt, len(b))
	}
	points := make([]float64, len(b)/8)
	for i := range points {
		o := 8 * i
		bits := uint64(b[o]) | uint64(b[o+1])<<8 | uint64(b[o+2])<<16 | uint64(b[o+3])<<24 |
			uint64(b[o+4])<<32 | uint64(b[o+5])<<40 | uint64(b[o+6])<<48 | uint64(b[o+7])<<56
		points[i] = math.Float64frombits(bits)
	}
	return points, nil
}
