package server

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestPprofDisabledByDefault pins the security default: without
// Config.EnablePprof the profiling endpoints do not exist.
func TestPprofDisabledByDefault(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/heap", "/debug/pprof/cmdline"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s without EnablePprof: status %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestPprofEnabled(t *testing.T) {
	_, ts := newTestServer(t, Config{EnablePprof: true})

	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	var index bytes.Buffer
	index.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/pprof/: status %d", resp.StatusCode)
	}
	if !strings.Contains(index.String(), "heap") {
		t.Errorf("pprof index does not list the heap profile:\n%s", index.String())
	}

	// A concrete profile must be servable, not just the index.
	resp, err = http.Get(ts.URL + "/debug/pprof/heap?debug=1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET /debug/pprof/heap: status %d", resp.StatusCode)
	}
}

// TestMemMetricsSampledAtScrape checks that /metrics carries the gvad_mem_*
// gauges and that they hold live (non-zero) runtime values.
func TestMemMetricsSampledAtScrape(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{
		"gvad_mem_heap_alloc_bytes",
		"gvad_mem_heap_sys_bytes",
		"gvad_mem_total_alloc_bytes",
		"gvad_mem_mallocs",
		"gvad_mem_gc_cycles",
	} {
		if !strings.Contains(out, "# TYPE "+name+" gauge") {
			t.Errorf("scrape missing %s:\n%s", name, out)
		}
	}
	// A live process has allocated a non-zero heap; a zero value would mean
	// the sample never ran.
	if strings.Contains(out, "gvad_mem_heap_alloc_bytes 0\n") {
		t.Error("gvad_mem_heap_alloc_bytes is 0 — MemStats not sampled at scrape")
	}
}
