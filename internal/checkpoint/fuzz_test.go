package checkpoint

import (
	"errors"
	"reflect"
	"testing"

	"grammarviz/internal/sax"
	"grammarviz/internal/stream"
)

// FuzzCheckpointDecode throws arbitrary bytes at Decode and pins the
// codec's safety contract: it never panics, anything it accepts
// re-encodes to the identical frame (canonical round-trip) and restores
// into a live detector, and anything it rejects is a typed ErrCorrupt.
// The seed corpus holds valid frames across parameters and reductions
// plus systematic single-byte flips of one of them — both raw flips
// (caught by the CRC) and resealed flips (caught by validation).
func FuzzCheckpointDecode(f *testing.F) {
	var frames [][]byte
	for _, st := range testStates(f) {
		b, err := Encode(st)
		if err != nil {
			f.Fatal(err)
		}
		frames = append(frames, b)
		f.Add(b)
	}
	// Single-byte flips of a mid-size frame, resealed so the fuzzer
	// starts beyond the checksum wall.
	base := frames[len(frames)/2]
	for i := 0; i < len(base); i += 7 {
		flip := append([]byte(nil), base...)
		flip[i] ^= 0x10
		f.Add(flip)
		reseal(flip)
		f.Add(append([]byte(nil), flip...))
	}
	f.Add([]byte(magic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, b []byte) {
		st, err := Decode(b)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decode error %v does not wrap ErrCorrupt", err)
			}
			return
		}
		b2, err := Encode(st)
		if err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", err)
		}
		if !reflect.DeepEqual(b, b2) {
			t.Fatalf("accepted frame is not canonical: %d vs %d bytes", len(b), len(b2))
		}
		d, err := stream.Restore(st)
		if err != nil {
			t.Fatalf("accepted state failed to restore: %v", err)
		}
		// The restored detector must be immediately usable.
		if _, _, err := d.Append(0.5); err != nil {
			t.Fatalf("restored detector rejected a valid point: %v", err)
		}
		_ = sax.Reduction(0)
	})
}
