package checkpoint

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"grammarviz/internal/sax"
	"grammarviz/internal/stream"
)

// buildState feeds a synthetic series into a detector and captures its
// state at point k.
func buildState(t testing.TB, p sax.Params, red sax.Reduction, n, k int, seed int64) *stream.State {
	t.Helper()
	d, err := stream.NewDetector(p, red)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < k; i++ {
		v := math.Sin(float64(i)/7) + 0.3*rng.NormFloat64()
		if i%29 < 5 {
			v = 1.25 // plateau
		}
		if _, _, err := d.Append(v); err != nil {
			t.Fatal(err)
		}
	}
	_ = n
	return d.State()
}

var testParams = sax.Params{Window: 30, PAA: 3, Alphabet: 4}

// bigParams does not fit a uint64 code, forcing the string word encoding.
var bigParams = sax.Params{Window: 120, PAA: 40, Alphabet: 6}

func testStates(t testing.TB) []*stream.State {
	var states []*stream.State
	for _, red := range []sax.Reduction{sax.ReductionExact, sax.ReductionNone, sax.ReductionMINDIST} {
		for _, k := range []int{0, 10, 29, 30, 31, 150, 400} {
			states = append(states, buildState(t, testParams, red, 400, k, 42))
		}
	}
	states = append(states,
		buildState(t, bigParams, sax.ReductionExact, 400, 400, 9),
		buildState(t, bigParams, sax.ReductionNone, 400, 200, 9),
	)
	return states
}

// TestEncodeDecodeRoundTrip pins both directions of the round-trip
// property: Decode(Encode(st)) preserves the state exactly, and
// Encode(Decode(b)) reproduces the frame byte for byte (the encoding is
// canonical).
func TestEncodeDecodeRoundTrip(t *testing.T) {
	for i, st := range testStates(t) {
		b, err := Encode(st)
		if err != nil {
			t.Fatalf("state %d: encode: %v", i, err)
		}
		got, err := Decode(b)
		if err != nil {
			t.Fatalf("state %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(got, st) {
			t.Fatalf("state %d: decoded state differs", i)
		}
		b2, err := Encode(got)
		if err != nil {
			t.Fatalf("state %d: re-encode: %v", i, err)
		}
		if !reflect.DeepEqual(b, b2) {
			t.Fatalf("state %d: re-encoded frame differs (%d vs %d bytes)", i, len(b), len(b2))
		}
	}
}

// TestRestoredDetectorByteIdentical pins the ISSUE's core durability
// property end to end: a detector restored from a persisted frame
// produces byte-identical words, grammar and further checkpoints compared
// to one that was never persisted.
func TestRestoredDetectorByteIdentical(t *testing.T) {
	for _, red := range []sax.Reduction{sax.ReductionExact, sax.ReductionNone, sax.ReductionMINDIST} {
		ref, err := stream.NewDetector(testParams, red)
		if err != nil {
			t.Fatal(err)
		}
		live, err := stream.NewDetector(testParams, red)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(77))
		pts := make([]float64, 500)
		for i := range pts {
			pts[i] = math.Cos(float64(i)/11) + 0.4*rng.NormFloat64()
		}
		for _, v := range pts[:240] {
			if _, _, err := ref.Append(v); err != nil {
				t.Fatal(err)
			}
			if _, _, err := live.Append(v); err != nil {
				t.Fatal(err)
			}
		}
		frame, err := Encode(live.State())
		if err != nil {
			t.Fatal(err)
		}
		restored, err := Restore(frame)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range pts[240:] {
			re, rok, rerr := ref.Append(v)
			ge, gok, gerr := restored.Append(v)
			if rok != gok || rerr != nil || gerr != nil || re != ge {
				t.Fatalf("red=%v: restored detector diverged", red)
			}
		}
		refFrame, err := Encode(ref.State())
		if err != nil {
			t.Fatal(err)
		}
		gotFrame, err := Encode(restored.State())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(refFrame, gotFrame) {
			t.Fatalf("red=%v: checkpoint of restored detector differs from never-persisted reference", red)
		}
	}
}

// TestDecodeRejectsTampering flips structural fields and requires
// ErrCorrupt for each.
func TestDecodeRejectsTampering(t *testing.T) {
	st := buildState(t, testParams, sax.ReductionExact, 400, 200, 1)
	frame, err := Encode(st)
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, b []byte) {
		t.Helper()
		if _, err := Decode(b); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: got %v, want ErrCorrupt", name, err)
		}
	}
	check("empty", nil)
	check("truncated header", frame[:5])
	check("truncated frame", frame[:len(frame)-3])
	check("trailing bytes", append(append([]byte(nil), frame...), 0))

	badMagic := append([]byte(nil), frame...)
	badMagic[0] = 'X'
	check("bad magic", badMagic)

	badVersion := append([]byte(nil), frame...)
	badVersion[4] = 99
	check("unknown version", badVersion)

	badLen := append([]byte(nil), frame...)
	badLen[6]++
	check("bad payload length", badLen)

	badCRC := append([]byte(nil), frame...)
	badCRC[len(badCRC)-1] ^= 0xff
	check("bad checksum", badCRC)

	// Flip a payload byte and recompute the CRC: the checksum passes but
	// validation must still catch the inconsistency or the decode must
	// round-trip — never a panic, never silent acceptance of junk that
	// violates state invariants. Deterministically sweep every payload
	// byte of a compact frame (the fuzz target extends this to larger
	// ones).
	small, err := Encode(buildState(t, testParams, sax.ReductionExact, 400, 70, 1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 10; i < len(small)-4; i++ {
		mutated := append([]byte(nil), small...)
		mutated[i] ^= 0x01
		reseal(mutated)
		got, err := Decode(mutated)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("byte %d: non-corrupt error %v", i, err)
			}
			continue
		}
		b2, err := Encode(got)
		if err != nil || !reflect.DeepEqual(b2, mutated) {
			t.Fatalf("byte %d: accepted frame does not round-trip", i)
		}
	}
}

// reseal recomputes the trailing CRC32C over a mutated frame.
func reseal(b []byte) {
	if len(b) < headerLen+trailerLen {
		return
	}
	sum := crc32.Checksum(b[:len(b)-trailerLen], castagnoli)
	binary.LittleEndian.PutUint32(b[len(b)-trailerLen:], sum)
}
