// Package checkpoint serializes stream detector state into a versioned,
// length-prefixed, CRC32C-checksummed binary frame, and deserializes it
// with strict validation. It is the durable representation behind
// streaming sessions: a snapshot written by one gvad process must restore
// byte-identically in another, possibly years later under a newer build,
// so the format is explicit about every field and refuses — with a typed
// ErrCorrupt, never a panic — anything it does not fully understand.
//
// Frame layout (all integers little-endian):
//
//	offset  size  field
//	0       4     magic "GVCP"
//	4       2     format version (currently 1)
//	6       4     payload length in bytes
//	10      n     payload (see below)
//	10+n    4     CRC32C (Castagnoli) of bytes [0, 10+n)
//
// Version-1 payload:
//
//	u16  field count (must be 7)
//	[1]  params: window u32, paa u32, alphabet u32, normThreshold f64bits
//	[2]  reduction u8
//	[3]  total points u64
//	[4]  tail: count u32, then count f64bits
//	[5]  words: count u32, coded u8, then per word offset u64 followed by
//	     code u64 (coded=1, letters derived from the code) or
//	     len u16 + letters (coded=0)
//	[6]  encoder scalars: sum, comp, sumSq, compSq, magP, magQ (f64bits),
//	     nChanges u64, lastVal f64bits
//	[7]  encoder rings: count u32, then count f64bits (prefix sums),
//	     count f64bits (prefix sums of squares), count u64 (change counts)
//
// The encoding of a given state is canonical — field order, ring order
// (oldest boundary first) and word representation are all determined by
// the state alone — so Encode(Decode(b)) == b for every frame Decode
// accepts, which is what the fuzz target and round-trip tests pin.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"grammarviz/internal/sax"
	"grammarviz/internal/stream"
)

// ErrCorrupt is wrapped by every Decode failure: truncation, bad magic,
// unknown version, checksum mismatch, trailing bytes, or any state
// invariant violation. Callers branch on it with errors.Is to decide
// between quarantining a snapshot and surfacing an internal error.
var ErrCorrupt = errors.New("checkpoint: corrupt")

// Version is the current frame format version.
const Version = 1

const (
	magic      = "GVCP"
	headerLen  = 4 + 2 + 4 // magic + version + payload length
	trailerLen = 4         // crc32c
	fieldCount = 7
)

// castagnoli is the CRC32C table; crc32.MakeTable memoizes it internally
// but holding the reference avoids the lookup per frame.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// maxSaneCount bounds decoded element counts before any allocation, so a
// corrupt length field cannot make Decode attempt a multi-gigabyte make.
// It is far above any real checkpoint (words and rings are bounded by the
// stream length, and sessions cap series length well below this).
const maxSaneCount = 1 << 28

// Encode serializes st into a checkpoint frame. It validates the state
// first and refuses to serialize one that would not restore.
func Encode(st *stream.State) ([]byte, error) {
	if err := st.Validate(); err != nil {
		return nil, fmt.Errorf("checkpoint: encode: %w", err)
	}
	coded := sax.NewWordCodec(st.Params.PAA, st.Params.Alphabet).Fits()
	if !coded && st.Params.PAA > math.MaxUint16 {
		return nil, fmt.Errorf("checkpoint: encode: paa %d exceeds the format's word length", st.Params.PAA)
	}

	payload := 2 // field count
	payload += 4 + 4 + 4 + 8
	payload++      // reduction
	payload += 8   // total
	payload += 4 + 8*len(st.Tail)
	payload += 4 + 1 // word count + coded flag
	for i := range st.Words {
		if coded {
			payload += 8 + 8
		} else {
			payload += 8 + 2 + len(st.Words[i].Str)
		}
	}
	payload += 6*8 + 8 + 8 // encoder scalars
	payload += 4 + len(st.Enc.Ring)*(8+8+8)

	buf := make([]byte, 0, headerLen+payload+trailerLen)
	buf = append(buf, magic...)
	buf = binary.LittleEndian.AppendUint16(buf, Version)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(payload))

	buf = binary.LittleEndian.AppendUint16(buf, fieldCount)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(st.Params.Window))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(st.Params.PAA))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(st.Params.Alphabet))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(st.Params.NormThreshold))
	buf = append(buf, byte(st.Reduction))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(st.Total))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(st.Tail)))
	for _, v := range st.Tail {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(st.Words)))
	if coded {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	for i := range st.Words {
		w := &st.Words[i]
		buf = binary.LittleEndian.AppendUint64(buf, uint64(w.Offset))
		if coded {
			buf = binary.LittleEndian.AppendUint64(buf, w.Code)
		} else {
			buf = binary.LittleEndian.AppendUint16(buf, uint16(len(w.Str)))
			buf = append(buf, w.Str...)
		}
	}
	for _, v := range []float64{st.Enc.Sum, st.Enc.Comp, st.Enc.SumSq, st.Enc.CompSq, st.Enc.MagP, st.Enc.MagQ} {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	buf = binary.LittleEndian.AppendUint64(buf, st.Enc.NChanges)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(st.Enc.LastVal))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(st.Enc.Ring)))
	for _, v := range st.Enc.Ring {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	for _, v := range st.Enc.RingSq {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	for _, v := range st.Enc.RingCh {
		buf = binary.LittleEndian.AppendUint64(buf, v)
	}
	if got := len(buf) - headerLen; got != payload {
		// Unreachable unless the size pre-pass above drifts from the
		// append sequence; fail loudly rather than emit a bad frame.
		return nil, fmt.Errorf("checkpoint: encode: payload %d bytes, declared %d", got, payload)
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
	return buf, nil
}

// reader is a bounds-checked cursor over a payload. Every read reports
// failure through ok instead of panicking, so Decode survives arbitrary
// input.
type reader struct {
	b  []byte
	ok bool
}

func (r *reader) u8() byte {
	if !r.ok || len(r.b) < 1 {
		r.ok = false
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *reader) u16() uint16 {
	if !r.ok || len(r.b) < 2 {
		r.ok = false
		return 0
	}
	v := binary.LittleEndian.Uint16(r.b)
	r.b = r.b[2:]
	return v
}

func (r *reader) u32() uint32 {
	if !r.ok || len(r.b) < 4 {
		r.ok = false
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}

func (r *reader) u64() uint64 {
	if !r.ok || len(r.b) < 8 {
		r.ok = false
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *reader) bytes(n int) []byte {
	if !r.ok || n < 0 || len(r.b) < n {
		r.ok = false
		return nil
	}
	v := r.b[:n]
	r.b = r.b[n:]
	return v
}

// count reads a u32 element count and bounds it by the bytes actually
// remaining (each element occupies at least minElem bytes), so a corrupt
// count can never make the caller allocate more than the frame itself
// could describe.
func (r *reader) count(minElem int) int {
	n := r.u32()
	if !r.ok || int64(n)*int64(minElem) > int64(len(r.b)) {
		r.ok = false
		return 0
	}
	return int(n)
}

func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// Decode parses and validates a checkpoint frame. Any deviation — bad
// magic, unknown version, checksum mismatch, truncation, trailing bytes,
// or a state that fails stream validation — returns an error wrapping
// ErrCorrupt. Decode never panics on any input.
func Decode(b []byte) (*stream.State, error) {
	if len(b) < headerLen+trailerLen {
		return nil, corrupt("frame truncated at %d bytes", len(b))
	}
	if string(b[:4]) != magic {
		return nil, corrupt("bad magic %q", b[:4])
	}
	version := binary.LittleEndian.Uint16(b[4:6])
	if version != Version {
		return nil, corrupt("unknown version %d", version)
	}
	payloadLen := int(binary.LittleEndian.Uint32(b[6:10]))
	if payloadLen < 0 || len(b) != headerLen+payloadLen+trailerLen {
		return nil, corrupt("frame is %d bytes, header declares %d-byte payload", len(b), payloadLen)
	}
	body := b[:headerLen+payloadLen]
	wantCRC := binary.LittleEndian.Uint32(b[headerLen+payloadLen:])
	if got := crc32.Checksum(body, castagnoli); got != wantCRC {
		return nil, corrupt("checksum %08x, want %08x", got, wantCRC)
	}

	r := &reader{b: body[headerLen:], ok: true}
	if n := r.u16(); r.ok && n != fieldCount {
		return nil, corrupt("field count %d, want %d", n, fieldCount)
	}
	st := &stream.State{}
	st.Params.Window = int(r.u32())
	st.Params.PAA = int(r.u32())
	st.Params.Alphabet = int(r.u32())
	st.Params.NormThreshold = r.f64()
	st.Reduction = sax.Reduction(r.u8())
	total := r.u64()
	if total > maxSaneCount {
		return nil, corrupt("total %d out of range", total)
	}
	st.Total = int(total)
	if n := r.count(8); r.ok && n > 0 {
		st.Tail = make([]float64, n)
		for i := range st.Tail {
			st.Tail[i] = r.f64()
		}
	}
	nWords := r.count(8) // a word is at least its 8-byte offset
	codedFlag := r.u8()
	if r.ok && codedFlag > 1 {
		return nil, corrupt("coded flag %d", codedFlag)
	}
	codec := sax.NewWordCodec(st.Params.PAA, st.Params.Alphabet)
	if r.ok && (codedFlag == 1) != codec.Fits() {
		return nil, corrupt("coded flag %d disagrees with parameters", codedFlag)
	}
	if r.ok && nWords > 0 {
		st.Words = make([]sax.Word, nWords)
		for i := range st.Words {
			w := &st.Words[i]
			off := r.u64()
			if off > maxSaneCount {
				return nil, corrupt("word %d offset %d out of range", i, off)
			}
			w.Offset = int(off)
			if codedFlag == 1 {
				w.Code = r.u64()
				if r.ok {
					w.Str = codec.Decode(w.Code)
				}
			} else {
				n := int(r.u16())
				w.Str = string(r.bytes(n))
			}
		}
	}
	st.Enc.Sum = r.f64()
	st.Enc.Comp = r.f64()
	st.Enc.SumSq = r.f64()
	st.Enc.CompSq = r.f64()
	st.Enc.MagP = r.f64()
	st.Enc.MagQ = r.f64()
	st.Enc.NChanges = r.u64()
	st.Enc.LastVal = r.f64()
	if n := r.count(24); r.ok { // three 8-byte arrays per boundary
		st.Enc.Ring = make([]float64, n)
		st.Enc.RingSq = make([]float64, n)
		st.Enc.RingCh = make([]uint64, n)
		for i := range st.Enc.Ring {
			st.Enc.Ring[i] = r.f64()
		}
		for i := range st.Enc.RingSq {
			st.Enc.RingSq[i] = r.f64()
		}
		for i := range st.Enc.RingCh {
			st.Enc.RingCh[i] = r.u64()
		}
	}
	if !r.ok {
		return nil, corrupt("payload truncated")
	}
	if len(r.b) != 0 {
		return nil, corrupt("%d trailing payload bytes", len(r.b))
	}
	if err := st.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return st, nil
}

// Restore decodes a frame and rebuilds the live detector in one step.
func Restore(b []byte) (*stream.Detector, error) {
	st, err := Decode(b)
	if err != nil {
		return nil, err
	}
	d, err := stream.Restore(st)
	if err != nil {
		// Validate passed but Restore refused: still corruption from the
		// caller's point of view.
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return d, nil
}
