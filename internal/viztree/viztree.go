// Package viztree implements the frequency-trie anomaly detector behind
// VizTree (Lin, Keogh, Lonardi, Lankford, Nystrom 2004), one of the
// approximate baselines discussed in the paper's related work (Section 6):
// every sliding window's SAX word is inserted into a trie with occurrence
// counters, and the rarest words mark anomalies. Unlike the grammar-based
// approach, the trie throws away the words' ordering, so it can only find
// anomalies at the window scale — the limitation that motivates the
// paper's grammar-based contribution.
package viztree

import (
	"fmt"
	"sort"

	"grammarviz/internal/sax"
	"grammarviz/internal/timeseries"
)

// node is one trie node; children are indexed by alphabet letter.
type node struct {
	count    int
	children map[byte]*node
}

func (n *node) child(c byte, create bool) *node {
	if n.children == nil {
		if !create {
			return nil
		}
		n.children = make(map[byte]*node)
	}
	ch := n.children[c]
	if ch == nil && create {
		ch = &node{}
		n.children[c] = ch
	}
	return ch
}

// Tree is a built VizTree: a frequency trie over every window's SAX word.
type Tree struct {
	root    *node
	words   []string // word per window position
	params  sax.Params
	nSeries int
}

// Build discretizes every window of ts (no numerosity reduction — VizTree
// counts every occurrence) and builds the frequency trie.
func Build(ts []float64, p sax.Params) (*Tree, error) {
	d, err := sax.Discretize(ts, p, sax.ReductionNone)
	if err != nil {
		return nil, fmt.Errorf("viztree: %w", err)
	}
	t := &Tree{root: &node{}, params: p, nSeries: len(ts)}
	t.words = make([]string, len(d.Words))
	for i, w := range d.Words {
		t.words[i] = w.Str
		t.insert(w.Str)
	}
	return t, nil
}

func (t *Tree) insert(word string) {
	n := t.root
	n.count++
	for i := 0; i < len(word); i++ {
		n = n.child(sax.CharToIndex(word[i]), true)
		n.count++
	}
}

// Count returns the number of windows whose word starts with prefix
// (the subword-frequency query VizTree's visualization is built on).
// An empty prefix counts all windows.
func (t *Tree) Count(prefix string) int {
	n := t.root
	for i := 0; i < len(prefix); i++ {
		n = n.child(sax.CharToIndex(prefix[i]), false)
		if n == nil {
			return 0
		}
	}
	return n.count
}

// Windows returns the number of windows inserted.
func (t *Tree) Windows() int { return len(t.words) }

// Anomaly is one window-scale anomaly candidate: a window whose SAX word
// is among the rarest in the trie.
type Anomaly struct {
	Interval timeseries.Interval
	Word     string
	Count    int // occurrences of the word across all windows
}

// Anomalies returns up to k non-overlapping windows ranked by ascending
// word frequency (rarest first; ties by position). This is VizTree's
// anomaly rule: "anomalies are the least frequent patterns".
func (t *Tree) Anomalies(k int) []Anomaly {
	order := make([]int, len(t.words))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ca, cb := t.Count(t.words[order[a]]), t.Count(t.words[order[b]])
		if ca != cb {
			return ca < cb
		}
		return order[a] < order[b]
	})
	var out []Anomaly
	for _, pos := range order {
		if len(out) == k {
			break
		}
		iv := timeseries.Interval{Start: pos, End: pos + t.params.Window - 1}
		overlap := false
		for _, a := range out {
			if a.Interval.Overlaps(iv) {
				overlap = true
				break
			}
		}
		if overlap {
			continue
		}
		out = append(out, Anomaly{Interval: iv, Word: t.words[pos], Count: t.Count(t.words[pos])})
	}
	return out
}
