package viztree

import (
	"math"
	"math/rand"
	"testing"

	"grammarviz/internal/sax"
	"grammarviz/internal/timeseries"
)

func plantedSeries(n int, period float64, at, length int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	ts := make([]float64, n)
	for i := range ts {
		ts[i] = math.Sin(2*math.Pi*float64(i)/period) + rng.NormFloat64()*0.02
	}
	for i := at; i < at+length && i < n; i++ {
		ts[i] = math.Sin(4*math.Pi*float64(i)/period) + rng.NormFloat64()*0.02
	}
	return ts
}

func TestBuildAndCount(t *testing.T) {
	ts := plantedSeries(600, 60, 300, 60, 1)
	tr, err := Build(ts, sax.Params{Window: 60, PAA: 4, Alphabet: 3})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if tr.Windows() != 541 {
		t.Errorf("Windows = %d, want 541", tr.Windows())
	}
	// Root prefix counts everything.
	if got := tr.Count(""); got != 541 {
		t.Errorf("Count(\"\") = %d", got)
	}
	// Prefix counts are consistent: sum of child counts == parent count
	// for the first letter level.
	sum := 0
	for _, c := range []string{"a", "b", "c"} {
		sum += tr.Count(c)
	}
	if sum != 541 {
		t.Errorf("first-level counts sum to %d", sum)
	}
	// Counts match a direct scan.
	direct := 0
	for _, w := range tr.words {
		if w == tr.words[0] {
			direct++
		}
	}
	if got := tr.Count(tr.words[0]); got != direct {
		t.Errorf("Count(%q) = %d, scan = %d", tr.words[0], got, direct)
	}
	// Missing prefix.
	if got := tr.Count("zzzz"); got != 0 {
		t.Errorf("Count(zzzz) = %d", got)
	}
}

func TestAnomaliesFindPlant(t *testing.T) {
	at, length := 600, 60
	ts := plantedSeries(1200, 60, at, length, 2)
	tr, err := Build(ts, sax.Params{Window: 60, PAA: 5, Alphabet: 4})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	anoms := tr.Anomalies(3)
	if len(anoms) == 0 {
		t.Fatal("no anomalies")
	}
	planted := timeseries.Interval{Start: at - 60, End: at + length + 60}
	if !anoms[0].Interval.Overlaps(planted) {
		t.Errorf("top anomaly %v misses planted %v", anoms[0].Interval, planted)
	}
	// Ranked ascending by count; non-overlapping.
	for i := 1; i < len(anoms); i++ {
		if anoms[i].Count < anoms[i-1].Count {
			t.Error("anomalies not ranked by ascending count")
		}
		for j := 0; j < i; j++ {
			if anoms[i].Interval.Overlaps(anoms[j].Interval) {
				t.Error("overlapping anomalies returned")
			}
		}
	}
}

func TestAnomaliesKLimit(t *testing.T) {
	ts := plantedSeries(400, 40, 200, 40, 3)
	tr, err := Build(ts, sax.Params{Window: 40, PAA: 4, Alphabet: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Anomalies(2); len(got) > 2 {
		t.Errorf("k limit violated: %d", len(got))
	}
	if got := tr.Anomalies(0); len(got) != 0 {
		t.Errorf("k=0 returned %d", len(got))
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build([]float64{1, 2}, sax.Params{Window: 10, PAA: 4, Alphabet: 4}); err == nil {
		t.Error("short series should error")
	}
}
