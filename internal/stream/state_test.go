package stream

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"grammarviz/internal/sax"
	"grammarviz/internal/timeseries"
)

// stateTestSeries mixes the regimes that exercise every encoder path:
// smooth oscillation (incremental path), flat plateaus (flat cache),
// near-breakpoint values (guard fallbacks), and exact repeats
// (numerosity reduction).
func stateTestSeries(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	ts := make([]float64, n)
	for i := range ts {
		switch {
		case i%97 < 12: // plateau
			ts[i] = 2.5
		case i%53 < 4: // exact repeat of the previous point
			if i > 0 {
				ts[i] = ts[i-1]
			}
		default:
			ts[i] = math.Sin(float64(i)/9) + 0.2*rng.NormFloat64()
		}
	}
	return ts
}

var stateTestParams = sax.Params{Window: 40, PAA: 4, Alphabet: 5}

func allReductions() []sax.Reduction {
	return []sax.Reduction{sax.ReductionExact, sax.ReductionNone, sax.ReductionMINDIST}
}

func feedAll(t *testing.T, d *Detector, pts []float64) []Event {
	t.Helper()
	var evs []Event
	for _, v := range pts {
		ev, ok, err := d.Append(v)
		if err != nil {
			t.Fatalf("append: %v", err)
		}
		if ok {
			evs = append(evs, ev)
		}
	}
	return evs
}

// requireSame asserts two detectors are observationally identical: words,
// novelty counts, grammar, and serialized state.
func requireSame(t *testing.T, got, want *Detector) {
	t.Helper()
	if !reflect.DeepEqual(got.words, want.words) {
		t.Fatalf("words diverge: got %d words, want %d", len(got.words), len(want.words))
	}
	if !reflect.DeepEqual(got.seen, want.seen) {
		t.Fatalf("novelty counts diverge")
	}
	if g, w := got.inducer.Grammar().String(), want.inducer.Grammar().String(); g != w {
		t.Fatalf("grammars diverge:\n got:\n%s\nwant:\n%s", g, w)
	}
	if !reflect.DeepEqual(got.State(), want.State()) {
		t.Fatalf("serialized states diverge")
	}
}

// TestStateRoundTrip checkpoints a stream at assorted points — before the
// first window, mid-stream, at the end — restores it, continues both the
// restored and the uninterrupted detector over the same suffix, and
// requires byte-identical words, events, grammar, and re-serialized state.
func TestStateRoundTrip(t *testing.T) {
	pts := stateTestSeries(700, 11)
	w := stateTestParams.Window
	cuts := []int{0, 1, w / 2, w - 1, w, w + 1, 137, 350, len(pts) - 1, len(pts)}
	for _, red := range allReductions() {
		ref, err := NewDetector(stateTestParams, red)
		if err != nil {
			t.Fatal(err)
		}
		refEvents := feedAll(t, ref, pts)
		for _, k := range cuts {
			d, err := NewDetector(stateTestParams, red)
			if err != nil {
				t.Fatal(err)
			}
			feedAll(t, d, pts[:k])
			st := d.State()
			if err := st.Validate(); err != nil {
				t.Fatalf("red=%v k=%d: captured state invalid: %v", red, k, err)
			}
			restored, err := Restore(st)
			if err != nil {
				t.Fatalf("red=%v k=%d: restore: %v", red, k, err)
			}
			// A state captured from the restored detector must equal the
			// original capture: restoration is canonical.
			if !reflect.DeepEqual(restored.State(), st) {
				t.Fatalf("red=%v k=%d: re-captured state differs", red, k)
			}
			if restored.Len() != k {
				t.Fatalf("red=%v k=%d: restored Len=%d", red, k, restored.Len())
			}
			gotTail := feedAll(t, restored, pts[k:])
			wantTail := refEvents[len(refEvents)-len(gotTail):]
			if len(gotTail) == 0 {
				wantTail = nil
			}
			if !reflect.DeepEqual(gotTail, wantTail) {
				t.Fatalf("red=%v k=%d: post-restore events diverge", red, k)
			}
			requireSame(t, restored, ref)
		}
	}
}

// TestRestoredSnapshotMatches pins that a restored detector's full
// analysis — rules, density curve, minima — matches the uninterrupted one.
func TestRestoredSnapshotMatches(t *testing.T) {
	pts := stateTestSeries(500, 3)
	for _, red := range allReductions() {
		ref, _ := NewDetector(stateTestParams, red)
		feedAll(t, ref, pts)
		d, _ := NewDetector(stateTestParams, red)
		feedAll(t, d, pts[:260])
		restored, err := Restore(d.State())
		if err != nil {
			t.Fatal(err)
		}
		feedAll(t, restored, pts[260:])
		want, err := ref.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		got, err := restored.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Density, want.Density) {
			t.Fatalf("red=%v: density curves diverge", red)
		}
		if !reflect.DeepEqual(got.Minima, want.Minima) {
			t.Fatalf("red=%v: minima diverge", red)
		}
		if err := got.Rules.Grammar.Verify(wordStrings(restored.words)); err != nil {
			t.Fatalf("red=%v: restored grammar fails verification: %v", red, err)
		}
	}
}

func wordStrings(ws []sax.Word) []string {
	out := make([]string, len(ws))
	for i := range ws {
		out[i] = ws[i].Str
	}
	return out
}

// TestRejectedAppendLeavesStateUnchanged is the NaN/Inf equivalence
// property: a stream that had bad points rejected and then received the
// corrected values is byte-identical — words, grammar, serialized state,
// events — to one that never saw the bad points, for every reduction.
func TestRejectedAppendLeavesStateUnchanged(t *testing.T) {
	pts := stateTestSeries(300, 7)
	bad := []float64{math.NaN(), math.Inf(1), math.Inf(-1)}
	for _, red := range allReductions() {
		clean, _ := NewDetector(stateTestParams, red)
		cleanEvents := feedAll(t, clean, pts)
		dirty, _ := NewDetector(stateTestParams, red)
		var dirtyEvents []Event
		for i, v := range pts {
			if i%41 == 0 { // attempt a bad point before every 41st value
				b := bad[i/41%len(bad)]
				if _, ok, err := dirty.Append(b); err == nil || ok {
					t.Fatalf("red=%v: bad point %v accepted", red, b)
				} else if !errors.Is(err, timeseries.ErrInvalidValue) {
					t.Fatalf("red=%v: unexpected rejection error %v", red, err)
				}
			}
			ev, ok, err := dirty.Append(v)
			if err != nil {
				t.Fatalf("red=%v: corrected append failed: %v", red, err)
			}
			if ok {
				dirtyEvents = append(dirtyEvents, ev)
			}
		}
		if !reflect.DeepEqual(dirtyEvents, cleanEvents) {
			t.Fatalf("red=%v: events diverge after rejected appends", red)
		}
		requireSame(t, dirty, clean)
	}
}

// TestValidateRejectsCorruption mutates a valid state one field at a time
// and requires Validate to refuse each mutation.
func TestValidateRejectsCorruption(t *testing.T) {
	pts := stateTestSeries(200, 5)
	d, _ := NewDetector(stateTestParams, sax.ReductionExact)
	feedAll(t, d, pts)
	mutations := map[string]func(*State){
		"zero window":        func(s *State) { s.Params.Window = 0 },
		"paa over window":    func(s *State) { s.Params.PAA = s.Params.Window + 1 },
		"alphabet too small": func(s *State) { s.Params.Alphabet = 1 },
		"nan threshold":      func(s *State) { s.Params.NormThreshold = math.NaN() },
		"bad reduction":      func(s *State) { s.Reduction = sax.Reduction(99) },
		"negative total":     func(s *State) { s.Total = -1 },
		"short tail":         func(s *State) { s.Tail = s.Tail[:len(s.Tail)-1] },
		"nan tail point":     func(s *State) { s.Tail[0] = math.NaN() },
		"no words":           func(s *State) { s.Words = nil },
		"first offset":       func(s *State) { s.Words[0].Offset = 3 },
		"offset regression":  func(s *State) { s.Words[2].Offset = s.Words[1].Offset },
		"offset overrun":     func(s *State) { s.Words[len(s.Words)-1].Offset = s.Total },
		"bad letter":         func(s *State) { s.Words[1].Str = "a!aa" },
		"wrong code":         func(s *State) { s.Words[1].Code++ },
		"repeat under exact": func(s *State) { s.Words[2] = s.Words[1]; s.Words[2].Offset = s.Words[1].Offset + 1 },
		"short ring":         func(s *State) { s.Enc.Ring = s.Enc.Ring[:len(s.Enc.Ring)-1] },
		"negative magnitude": func(s *State) { s.Enc.MagP = -1 },
		"nan accumulator":    func(s *State) { s.Enc.Sum = math.NaN() },
		"stale newest ring":  func(s *State) { s.Enc.Ring[len(s.Enc.Ring)-1] += 1 },
		"change overflow":    func(s *State) { s.Enc.NChanges = uint64(s.Total) },
		"jump in changes":    func(s *State) { s.Enc.RingCh[1] = s.Enc.RingCh[0] + 2 },
		"last value":         func(s *State) { s.Enc.LastVal += 1 },
	}
	for name, mutate := range mutations {
		st := d.State() // fresh deep copy per mutation
		if st.Enc.MagP == 0 {
			t.Fatal("test series produced a degenerate state")
		}
		mutate(st)
		if err := st.Validate(); err == nil {
			t.Errorf("%s: corruption accepted", name)
		} else if _, rerr := Restore(st); rerr == nil {
			t.Errorf("%s: Restore accepted corrupt state", name)
		}
	}
	if err := d.State().Validate(); err != nil {
		t.Fatalf("unmutated state invalid: %v", err)
	}
}

// TestRestoreChain pins that checkpoint/restore composes: restoring a
// restored detector's state mid-stream repeatedly still converges to the
// reference.
func TestRestoreChain(t *testing.T) {
	pts := stateTestSeries(600, 23)
	ref, _ := NewDetector(stateTestParams, sax.ReductionExact)
	feedAll(t, ref, pts)
	d, _ := NewDetector(stateTestParams, sax.ReductionExact)
	step := 67
	for i := 0; i < len(pts); i += step {
		end := i + step
		if end > len(pts) {
			end = len(pts)
		}
		feedAll(t, d, pts[i:end])
		nd, err := Restore(d.State())
		if err != nil {
			t.Fatalf("chain restore at %d: %v", end, err)
		}
		d = nd
	}
	requireSame(t, d, ref)
}

// TestStateIsACopy pins that State shares no memory with the live
// detector: mutating the snapshot must not perturb the stream.
func TestStateIsACopy(t *testing.T) {
	pts := stateTestSeries(120, 2)
	d, _ := NewDetector(stateTestParams, sax.ReductionExact)
	feedAll(t, d, pts)
	st := d.State()
	want := d.State()
	st.Tail[0] = 1e9
	st.Words[0].Str = "zzzz"
	st.Enc.Ring[0] = -1e9
	if !reflect.DeepEqual(d.State(), want) {
		t.Fatal("mutating a captured state perturbed the detector")
	}
}
