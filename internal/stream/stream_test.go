package stream

import (
	"math"
	"testing"

	"grammarviz/internal/core"
	"grammarviz/internal/sax"
)

func sine(n int, period float64) []float64 {
	ts := make([]float64, n)
	for i := range ts {
		ts[i] = math.Sin(2 * math.Pi * float64(i) / period)
	}
	return ts
}

func TestNewDetectorErrors(t *testing.T) {
	if _, err := NewDetector(sax.Params{Window: 0, PAA: 4, Alphabet: 4}, sax.ReductionExact); err == nil {
		t.Error("zero window should error")
	}
	if _, err := NewDetector(sax.Params{Window: 10, PAA: 20, Alphabet: 4}, sax.ReductionExact); err == nil {
		t.Error("paa > window should error")
	}
	if _, err := NewDetector(sax.Params{Window: 10, PAA: 4, Alphabet: 1}, sax.ReductionExact); err == nil {
		t.Error("bad alphabet should error")
	}
}

func TestStreamMatchesBatch(t *testing.T) {
	// Feeding a series point by point must produce exactly the batch
	// discretization and an equivalent grammar/density analysis.
	ts := sine(600, 50)
	for i := 300; i < 340; i++ {
		ts[i] = 0.1 // planted flat anomaly
	}
	p := sax.Params{Window: 50, PAA: 5, Alphabet: 4}

	d, err := NewDetector(p, sax.ReductionExact)
	if err != nil {
		t.Fatalf("NewDetector: %v", err)
	}
	for _, v := range ts {
		d.Append(v)
	}
	snap, err := d.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}

	batchDisc, err := sax.Discretize(ts, p, sax.ReductionExact)
	if err != nil {
		t.Fatalf("Discretize: %v", err)
	}
	if d.WordCount() != len(batchDisc.Words) {
		t.Fatalf("stream recorded %d words, batch %d", d.WordCount(), len(batchDisc.Words))
	}
	for i, w := range batchDisc.Words {
		if d.words[i] != w {
			t.Fatalf("word %d: stream %+v batch %+v", i, d.words[i], w)
		}
	}

	batch, err := core.Analyze(ts, core.Config{Params: p})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if len(snap.Density) != len(batch.Density) {
		t.Fatalf("density lengths differ")
	}
	for i := range snap.Density {
		if snap.Density[i] != batch.Density[i] {
			t.Fatalf("density differs at %d: %d vs %d", i, snap.Density[i], batch.Density[i])
		}
	}
}

func TestStreamNovelty(t *testing.T) {
	p := sax.Params{Window: 20, PAA: 4, Alphabet: 4}
	d, err := NewDetector(p, sax.ReductionExact)
	if err != nil {
		t.Fatalf("NewDetector: %v", err)
	}
	ts := sine(400, 20)
	var events []Event
	for _, v := range ts {
		if ev, ok, _ := d.Append(v); ok {
			events = append(events, ev)
		}
	}
	if len(events) == 0 {
		t.Fatal("no events")
	}
	if events[0].Novelty != 1 {
		t.Errorf("first event novelty = %v, want 1", events[0].Novelty)
	}
	// On a periodic signal, later occurrences of the same word have
	// decreasing novelty.
	last := map[string]float64{}
	for _, ev := range events {
		if prev, ok := last[ev.Word]; ok && ev.Novelty >= prev {
			t.Fatalf("novelty for %q did not decrease: %v then %v", ev.Word, prev, ev.Novelty)
		}
		last[ev.Word] = ev.Novelty
	}
}

func TestStreamEarlyDetection(t *testing.T) {
	// A burst anomaly must raise novelty while it is happening.
	ts := sine(1000, 50)
	for i := 700; i < 760; i++ {
		ts[i] = math.Sin(2 * math.Pi * float64(i) / 12.5) // frequency burst
	}
	p := sax.Params{Window: 50, PAA: 5, Alphabet: 4}
	d, _ := NewDetector(p, sax.ReductionExact)
	novelAt := -1
	for i, v := range ts {
		ev, ok, _ := d.Append(v)
		if !ok {
			continue
		}
		if i >= 700 && ev.Novelty == 1 && novelAt == -1 {
			novelAt = i
		}
	}
	if novelAt == -1 || novelAt > 790 {
		t.Errorf("anomaly not flagged during the burst (novelAt=%d)", novelAt)
	}
}

func TestSnapshotBeforeFirstWord(t *testing.T) {
	d, _ := NewDetector(sax.Params{Window: 100, PAA: 4, Alphabet: 4}, sax.ReductionExact)
	if _, err := d.Snapshot(); err == nil {
		t.Error("Snapshot before first window should error")
	}
	d.Append(1)
	if _, err := d.Snapshot(); err == nil {
		t.Error("Snapshot with 1 point should error")
	}
}

func TestStreamLenAndMINDISTReduction(t *testing.T) {
	p := sax.Params{Window: 30, PAA: 3, Alphabet: 6}
	d, _ := NewDetector(p, sax.ReductionMINDIST)
	ts := sine(300, 30)
	for _, v := range ts {
		d.Append(v)
	}
	if d.Len() != 300 {
		t.Errorf("Len = %d", d.Len())
	}
	exact, _ := NewDetector(p, sax.ReductionExact)
	for _, v := range ts {
		exact.Append(v)
	}
	if d.WordCount() > exact.WordCount() {
		t.Errorf("MINDIST recorded %d words, EXACT %d; want <=", d.WordCount(), exact.WordCount())
	}
}
