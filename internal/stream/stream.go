// Package stream implements the left-to-right streaming variant of the
// grammar-based anomaly detector that the paper's conclusion sketches as
// future work: both SAX discretization and Sequitur induction are
// incremental, so the grammar is maintained online while points arrive,
// novelty is scored per discretized word in O(1), and a full rule-density
// analysis of everything seen so far can be snapshotted at any time in
// linear time without re-inducing the grammar.
//
// The per-point cost is O(paa) amortized: the closing window's SAX word is
// derived from Kahan-compensated running prefix sums (see incenc.go) with
// a guarded fallback that keeps the output byte-identical to batch
// discretization, and the word feeds Sequitur's allocation-free coded
// path. The detector's whole state is serializable (State/Restore), which
// is what makes long-lived streaming sessions durable across process
// restarts: a restored detector continues byte-identically from where the
// original stopped, holding only the series tail rather than every point.
package stream

import (
	"fmt"

	"grammarviz/internal/density"
	"grammarviz/internal/grammar"
	"grammarviz/internal/sax"
	"grammarviz/internal/sequitur"
	"grammarviz/internal/timeseries"
)

// Event is emitted when a new SAX word survives numerosity reduction.
type Event struct {
	Offset int    // series index of the window that produced the word
	Word   string // the SAX word
	// Novelty is 1/(number of times this word has now been seen): 1.0 for
	// a never-before-seen shape, approaching 0 for routine shapes. A
	// run of high-novelty events signals an anomaly in progress.
	Novelty float64
}

// Detector consumes a time series point by point. It is not safe for
// concurrent use.
type Detector struct {
	params  sax.Params
	red     sax.Reduction
	codec   sax.WordCodec
	enc     *incEncoder
	inducer *sequitur.Inducer
	coded   bool // inducer runs on packed word codes

	// base counts points consumed before series[0]: zero for a detector
	// built by NewDetector, positive for one restored from a checkpoint
	// that retained only the series tail.
	base     int
	series   []float64 // points retained (everything seen, or the tail)
	lastWord string
	words    []sax.Word
	seen     map[string]int // word -> occurrence count
}

// NewDetector returns a streaming detector with the given discretization
// parameters.
func NewDetector(p sax.Params, red sax.Reduction) (*Detector, error) {
	if p.Window <= 0 {
		return nil, fmt.Errorf("%w: window=%d", timeseries.ErrBadWindow, p.Window)
	}
	if p.PAA > p.Window {
		return nil, fmt.Errorf("stream: paa %d exceeds window %d", p.PAA, p.Window)
	}
	enc, err := newIncEncoder(p)
	if err != nil {
		return nil, err
	}
	d := &Detector{
		params: p,
		red:    red,
		codec:  sax.NewWordCodec(p.PAA, p.Alphabet),
		enc:    enc,
		seen:   make(map[string]int),
	}
	d.newInducer()
	return d, nil
}

// newInducer installs a fresh inducer on the coded path whenever the
// parameters pack into a uint64, falling back to string tokens otherwise.
// Both paths induce byte-identical grammars (token ids are assigned in
// first-appearance order either way); the coded path is the
// allocation-free one.
func (d *Detector) newInducer() {
	if d.codec.Fits() {
		d.coded = true
		d.inducer = sequitur.NewCodeInducer(d.codec.Decode)
		return
	}
	d.coded = false
	d.inducer = sequitur.NewInducer()
}

// Len returns the number of points consumed so far, including points a
// restored detector no longer retains.
func (d *Detector) Len() int { return d.base + len(d.series) }

// WordCount returns the number of words recorded so far (after reduction).
func (d *Detector) WordCount() int { return len(d.words) }

// Append consumes the next point. When the point completes a window whose
// word survives numerosity reduction, the word is fed to the incremental
// grammar and an Event is returned with ok == true. A NaN or infinite
// point is rejected with a timeseries.ErrInvalidValue-wrapped error naming
// the stream position, and the detector's state is unchanged — the caller
// may substitute a cleaned value and continue.
func (d *Detector) Append(v float64) (Event, bool, error) {
	if err := validateFinite(v, d.Len()); err != nil {
		return Event{}, false, err
	}
	d.series = append(d.series, v)
	d.enc.push(v)
	total := d.base + len(d.series)
	if total < d.params.Window {
		return Event{}, false, nil
	}
	window := d.series[len(d.series)-d.params.Window:]
	buf, err := d.enc.encodeWindow(window)
	if err != nil {
		// Unreachable: window/PAA were validated in NewDetector.
		return Event{}, false, nil
	}
	switch d.red {
	case sax.ReductionExact:
		if string(buf) == d.lastWord {
			return Event{}, false, nil
		}
	case sax.ReductionMINDIST:
		if d.lastWord != "" && mindistZeroBytes(buf, d.lastWord) {
			return Event{}, false, nil
		}
	}
	start := total - d.params.Window
	word := string(buf)
	d.lastWord = word
	w := sax.Word{Str: word, Offset: start}
	if d.codec.Fits() {
		w.Code = d.codec.Pack(buf)
	}
	d.words = append(d.words, w)
	if d.coded {
		d.inducer.AppendCode(w.Code)
	} else {
		d.inducer.Append(word)
	}
	d.seen[word]++
	return Event{
		Offset:  start,
		Word:    word,
		Novelty: 1 / float64(d.seen[word]),
	}, true, nil
}

// Reset returns the detector to its initial empty state, releasing the
// retained series, word list and grammar so their memory can be reclaimed.
// The discretization parameters are kept.
func (d *Detector) Reset() {
	d.base = 0
	d.series = nil
	d.lastWord = ""
	d.words = nil
	d.seen = make(map[string]int)
	d.newInducer()
	// The encoder's construction cannot fail once NewDetector has
	// validated the parameters.
	d.enc, _ = newIncEncoder(d.params)
}

// MemStats summarizes what the detector currently retains in memory.
type MemStats struct {
	Points int // series points retained (the dominant O(points) term)
	Words  int // SAX words recorded after numerosity reduction
	Rules  int // live grammar rules, excluding the root
}

// MemStats reports the detector's current retention. Memory grows O(points)
// with the stream: the series is kept for window re-encoding and for
// snapshots (a restored detector starts from just the tail), and the word
// list and grammar grow sublinearly after numerosity reduction. Call Reset
// to release everything.
func (d *Detector) MemStats() MemStats {
	return MemStats{
		Points: len(d.series),
		Words:  len(d.words),
		Rules:  d.inducer.NumRules(),
	}
}

// mindistZero mirrors sax's MINDIST-based reduction: true when every
// letter pair is at most one region apart.
func mindistZero(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		diff := int(a[i]) - int(b[i])
		if diff < -1 || diff > 1 {
			return false
		}
	}
	return true
}

// mindistZeroBytes is mindistZero against the encoder's letter buffer,
// avoiding the string conversion for dropped windows.
func mindistZeroBytes(a []byte, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		diff := int(a[i]) - int(b[i])
		if diff < -1 || diff > 1 {
			return false
		}
	}
	return true
}

// Snapshot is a full analysis of everything consumed so far.
type Snapshot struct {
	Rules   *grammar.RuleSet
	Density []int
	Minima  []timeseries.Interval
}

// Snapshot builds the rule set and density curve for the stream's current
// state. The grammar is not re-induced — the incremental inducer's
// current grammar is reused — so the cost is linear in the data seen.
// It returns an error before the first word is recorded.
func (d *Detector) Snapshot() (*Snapshot, error) {
	if len(d.words) == 0 {
		return nil, fmt.Errorf("stream: no words recorded yet (need >= %d points)", d.params.Window)
	}
	total := d.Len()
	disc := &sax.Discretization{
		Words:     d.words,
		SeriesLen: total,
		Params:    d.params,
		Raw:       total - d.params.Window + 1,
		Coded:     d.codec.Fits(),
	}
	g := d.inducer.Grammar()
	rs, err := grammar.Build(disc, g)
	if err != nil {
		return nil, fmt.Errorf("stream: %w", err)
	}
	curve := density.Curve(rs)
	return &Snapshot{
		Rules:   rs,
		Density: curve,
		Minima:  density.GlobalMinimaMargin(curve, d.params.Window-1),
	}, nil
}
