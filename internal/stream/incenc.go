package stream

import (
	"math"

	"grammarviz/internal/paa"
	"grammarviz/internal/sax"
	"grammarviz/internal/timeseries"
)

// This file implements the streaming counterpart of sax's incremental
// sliding-window encoder (internal/sax/incremental.go): instead of
// z-normalizing and PAA-reducing every closing window from scratch
// (O(window) per point), the encoder maintains Kahan-compensated running
// prefix sums of the values and their squares, plus a ring of the last
// Window+1 prefix boundaries, and derives each window's mean/std and raw
// PAA segment sums from prefix differences in O(paa) per point.
//
// Floating point breaks the real-arithmetic identity the derivation relies
// on, so the encoder carries the same conservative error bounds as the
// batch encoder and falls back to the naive per-window encoder whenever a
// SAX letter decision or the flat-window guard is within the bound. The
// emitted word is therefore byte-identical to Encoder.EncodeInto for every
// input — the incremental path only buys speed — which is what keeps the
// stream detector's output equal to batch discretization.
//
// The whole mutable state of the encoder (sums, compensation terms,
// magnitude high-water marks, change counter, rings) is exactly what a
// checkpoint must persist to resume a stream without recomputing prefix
// sums from points that no longer exist; see EncoderState in state.go.

// incErrScale converts a tracked magnitude into a conservative absolute
// error bound, matching the batch encoder's constant: Kahan-compensated
// sums keep per-entry error within a few ulps, and 1e-11 leaves four
// orders of magnitude of margin for the downstream arithmetic.
const incErrScale = 1e-11

// incEncoder encodes the closing window of a stream in O(paa) amortized
// per point. Not safe for concurrent use.
type incEncoder struct {
	p       sax.Params
	cuts    []float64
	pat     *paa.SegmentPattern
	naive   *sax.Encoder
	thresh2 float64 // flat-window std threshold, squared

	// Kahan running sums over every point consumed, with their
	// compensation terms and magnitude high-water marks (the error-bound
	// inputs).
	sum, comp     float64
	sumSq, compSq float64
	magP, magQ    float64

	// nChanges counts positions i > 0 with ts[i] != ts[i-1]; ring-stored
	// prefixes of it make the bitwise-constant-window test O(1).
	nChanges uint64
	lastVal  float64
	total    int // points consumed

	// Rings hold the prefix boundaries for positions total-Window..total
	// (fewer while the stream is shorter than a window), indexed by
	// absolute boundary position mod (Window+1).
	ring   []float64 // prefix sums
	ringSq []float64 // prefix sums of squares
	ringCh []uint64  // prefix change counts

	// forceNaive disables the incremental path permanently: a prefix sum
	// overflowed to infinity, so no error bound is trustworthy.
	forceNaive bool

	// flatCache maps a bitwise-constant window's value bits to its naive
	// word: constant windows land exactly on the central breakpoint, so
	// the guard would punt every one of them to the naive encoder.
	flatCache map[uint64][]byte

	buf       []byte // letter buffer, valid until the next encodeWindow
	fallbacks int    // windows that took the naive path (diagnostic)
}

func newIncEncoder(p sax.Params) (*incEncoder, error) {
	cuts, err := sax.Breakpoints(p.Alphabet)
	if err != nil {
		return nil, err
	}
	pat, err := paa.NewSegmentPattern(p.Window, p.PAA)
	if err != nil {
		return nil, err
	}
	naive, err := sax.NewEncoder(p)
	if err != nil {
		return nil, err
	}
	th := p.NormThreshold
	if th <= 0 {
		th = timeseries.DefaultNormThreshold
	}
	return &incEncoder{
		p:       p,
		cuts:    cuts,
		pat:     pat,
		naive:   naive,
		thresh2: th * th,
		ring:    make([]float64, p.Window+1),
		ringSq:  make([]float64, p.Window+1),
		ringCh:  make([]uint64, p.Window+1),
		buf:     make([]byte, p.PAA),
	}, nil
}

// push consumes the next point: it extends the compensated prefix sums,
// the change counter, and the rings. The caller has already validated v
// as finite. Steady-state cost is a handful of flops and three ring
// stores; the directive below has gvadlint's noalloc pass certify the
// whole call graph allocation-free.
//
//gvad:noalloc
func (e *incEncoder) push(v float64) {
	if e.total > 0 && v != e.lastVal {
		e.nChanges++
	}
	e.lastVal = v

	y := v - e.comp
	t := e.sum + y
	e.comp = (t - e.sum) - y
	e.sum = t

	y = v*v - e.compSq
	t = e.sumSq + y
	e.compSq = (t - e.sumSq) - y
	e.sumSq = t

	if a := math.Abs(e.sum); a > e.magP {
		e.magP = a
	}
	if a := math.Abs(e.sumSq); a > e.magQ {
		e.magQ = a
	}
	if math.IsInf(e.magP, 0) || math.IsInf(e.magQ, 0) {
		e.forceNaive = true
	}

	e.total++
	i := e.total % len(e.ring)
	e.ring[i] = e.sum
	e.ringSq[i] = e.sumSq
	e.ringCh[i] = e.nChanges
}

// at returns the prefix sum at absolute boundary position pos, which must
// lie within the last Window+1 boundaries.
func (e *incEncoder) at(pos int) float64   { return e.ring[pos%len(e.ring)] }
func (e *incEncoder) sqAt(pos int) float64 { return e.ringSq[pos%len(e.ring)] }
func (e *incEncoder) chAt(pos int) uint64  { return e.ringCh[pos%len(e.ring)] }

// encodeWindow encodes the closing window (the last Window points, passed
// in as a slice) into the reusable letter buffer and returns it. It must
// be called exactly once per push once total >= Window. The buffer is
// valid until the next call.
func (e *incEncoder) encodeWindow(window []float64) ([]byte, error) {
	w := e.p.Window
	start := e.total - w // absolute boundary position of the window start
	// Bitwise-constant window: the change-count prefixes are equal across
	// positions start+1..start+w, meaning no adjacent pair differs.
	if e.chAt(start+w) == e.chAt(start+1) {
		bits := math.Float64bits(window[0])
		if word, ok := e.flatCache[bits]; ok {
			copy(e.buf, word)
			return e.buf, nil
		}
		if err := e.naive.EncodeInto(e.buf, window); err != nil {
			return nil, err
		}
		if e.flatCache == nil {
			e.flatCache = make(map[uint64][]byte)
		}
		e.flatCache[bits] = append(make([]byte, 0, len(e.buf)), e.buf...)
		return e.buf, nil
	}
	if !e.tryIncremental(start, window) {
		e.fallbacks++
		if err := e.naive.EncodeInto(e.buf, window); err != nil {
			return nil, err
		}
	}
	return e.buf, nil
}

// tryIncremental attempts the prefix-sum encoding of the window starting
// at absolute position start. It reports false — leaving the buffer
// unspecified — when any letter or the flat-window decision falls within
// the tracked error bound of a boundary, in which case the caller must
// take the naive path. When it reports true the letters are provably
// identical to the naive encoder's.
//
//gvad:noalloc
func (e *incEncoder) tryIncremental(start int, window []float64) bool {
	if e.forceNaive {
		return false
	}
	w := e.p.Window
	n := float64(w)
	// Error bounds from the magnitude high-water marks. The batch encoder
	// computes these once from the whole series; the stream recomputes
	// them per window from the running maxima — never larger than the
	// batch bounds at the same point, so the guarantee is unchanged.
	meanErr := incErrScale * (e.magP/n + 1)
	sumSqErr := incErrScale * (e.magQ/n + 1)
	segMeanErr := incErrScale * (e.magP*e.pat.Inv + 1)

	sum := e.at(start+w) - e.at(start)
	sumSq := e.sqAt(start+w) - e.sqAt(start)
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	absMean := math.Abs(mean)
	varErr := sumSqErr + 2*absMean*meanErr + meanErr*meanErr
	if math.Abs(variance-e.thresh2) <= 4*varErr {
		return false // ambiguous flat-window decision
	}
	s := 1.0 // flat windows are centered, not scaled (ZNormalizeInto)
	var sErr float64
	if variance > e.thresh2 {
		std := math.Sqrt(variance)
		s = 1 / std
		sErr = s * s * (varErr / (2 * std))
	}
	valErr := (segMeanErr + meanErr) * s
	for k := range e.pat.Segs {
		seg := &e.pat.Segs[k]
		raw := e.at(start+seg.Hi) - e.at(start+seg.Lo)
		if seg.FracIdx[0] >= 0 {
			raw += window[seg.FracIdx[0]] * seg.FracW[0]
		}
		if seg.FracIdx[1] >= 0 {
			raw += window[seg.FracIdx[1]] * seg.FracW[1]
		}
		segMean := raw * e.pat.Inv
		v := (segMean - mean) * s
		vErr := 4*(valErr+math.Abs(segMean-mean)*sErr) + 1e-12
		letter := sax.Letter(e.cuts, v)
		if letter > 0 && v-e.cuts[letter-1] <= vErr {
			return false // too close to the breakpoint below
		}
		if int(letter) < len(e.cuts) && e.cuts[letter]-v <= vErr {
			return false // too close to the breakpoint above
		}
		e.buf[k] = sax.IndexToChar(letter)
	}
	return true
}
