package stream

import (
	"math"
	"math/rand"
	"testing"

	"grammarviz/internal/sax"
)

// The stream must match batch discretization for every reduction strategy,
// not only EXACT.
func TestStreamMatchesBatchAllReductions(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	ts := make([]float64, 700)
	for i := range ts {
		ts[i] = math.Sin(float64(i)/8) + rng.NormFloat64()*0.15
	}
	p := sax.Params{Window: 40, PAA: 4, Alphabet: 5}
	for _, red := range []sax.Reduction{sax.ReductionNone, sax.ReductionExact, sax.ReductionMINDIST} {
		t.Run(red.String(), func(t *testing.T) {
			d, err := NewDetector(p, red)
			if err != nil {
				t.Fatalf("NewDetector: %v", err)
			}
			for _, v := range ts {
				d.Append(v)
			}
			batch, err := sax.Discretize(ts, p, red)
			if err != nil {
				t.Fatalf("Discretize: %v", err)
			}
			if d.WordCount() != len(batch.Words) {
				t.Fatalf("stream %d words, batch %d", d.WordCount(), len(batch.Words))
			}
			for i, w := range batch.Words {
				if d.words[i] != w {
					t.Fatalf("word %d: stream %+v batch %+v", i, d.words[i], w)
				}
			}
		})
	}
}

// Events report exactly the recorded words, in order, with correct
// offsets.
func TestEventsMatchWords(t *testing.T) {
	ts := sine(500, 40)
	for i := 250; i < 290; i++ {
		ts[i] *= 0.1
	}
	p := sax.Params{Window: 40, PAA: 4, Alphabet: 4}
	d, err := NewDetector(p, sax.ReductionExact)
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	for _, v := range ts {
		if ev, ok, _ := d.Append(v); ok {
			events = append(events, ev)
		}
	}
	if len(events) != d.WordCount() {
		t.Fatalf("%d events vs %d words", len(events), d.WordCount())
	}
	for i, ev := range events {
		if ev.Word != d.words[i].Str || ev.Offset != d.words[i].Offset {
			t.Fatalf("event %d = %+v, word %+v", i, ev, d.words[i])
		}
		if ev.Novelty <= 0 || ev.Novelty > 1 {
			t.Fatalf("novelty %v out of (0,1]", ev.Novelty)
		}
	}
}

// Repeated Snapshot calls must not corrupt the stream (the grammar is
// reused, not re-induced).
func TestRepeatedSnapshots(t *testing.T) {
	ts := sine(800, 50)
	p := sax.Params{Window: 50, PAA: 5, Alphabet: 4}
	d, err := NewDetector(p, sax.ReductionExact)
	if err != nil {
		t.Fatal(err)
	}
	var lastLen int
	for i, v := range ts {
		d.Append(v)
		if i > 100 && i%150 == 0 {
			snap, err := d.Snapshot()
			if err != nil {
				t.Fatalf("Snapshot at %d: %v", i, err)
			}
			if len(snap.Density) != i+1 {
				t.Fatalf("snapshot density length %d at point %d", len(snap.Density), i)
			}
			if len(snap.Density) <= lastLen {
				t.Fatal("snapshots not growing")
			}
			lastLen = len(snap.Density)
		}
	}
	// Final snapshot still verifies against the full input.
	snap, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	words := make([]string, len(d.words))
	for i, w := range d.words {
		words[i] = w.Str
	}
	if err := snap.Rules.Grammar.Verify(words); err != nil {
		t.Fatalf("grammar invariants broken after repeated snapshots: %v", err)
	}
}
