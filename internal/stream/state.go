package stream

import (
	"fmt"
	"math"

	"grammarviz/internal/sax"
	"grammarviz/internal/timeseries"
)

// State is the complete serializable state of a Detector: everything a
// process needs to resume a stream exactly where another process left it.
// It deliberately stores only the series *tail* (the Window-1 points the
// next window overlaps) plus derived sublinear structures — the recorded
// words and the encoder's prefix-sum boundaries — so a checkpoint of an
// N-point stream costs O(words + window), not O(N).
//
// Everything else a live Detector holds is a deterministic function of
// these fields: the grammar is re-induced by replaying the word sequence
// (Sequitur is incremental and deterministic), the novelty counts are
// re-counted from the words, and the last recorded word is the final
// entry of Words. A State captured from a restored detector is therefore
// identical to one captured from a detector that was never persisted.
//
// State is a snapshot: the slices are copies, never aliased to the live
// detector.
type State struct {
	Params    sax.Params
	Reduction sax.Reduction

	// Total is the number of points the stream has consumed; the live
	// detector may retain only the last min(Total, Window-1) of them.
	Total int

	// Tail holds the last min(Total, Window-1) points — exactly the
	// prefix of the next closing window.
	Tail []float64

	// Words is the full recorded word sequence after numerosity
	// reduction, in time order with absolute offsets.
	Words []sax.Word

	// Enc is the incremental encoder's mutable state.
	Enc EncoderState
}

// EncoderState is the incremental prefix-sum encoder's mutable state: the
// Kahan accumulators, their magnitude high-water marks, the change
// counter, and the ring of retained prefix boundaries in position order
// (oldest first). Ring positions run from Total-len(Ring)+1 to Total; the
// canonical position ordering makes the serialized form independent of
// how the live ring happened to be rotated.
type EncoderState struct {
	Sum, Comp     float64
	SumSq, CompSq float64
	MagP, MagQ    float64
	NChanges      uint64
	LastVal       float64
	Ring          []float64
	RingSq        []float64
	RingCh        []uint64
}

// tailLen is the number of raw points a checkpoint must retain.
func tailLen(total, window int) int {
	if total < window-1 {
		return total
	}
	return window - 1
}

// ringLen is the number of prefix boundaries a checkpoint must retain.
func ringLen(total, window int) int {
	if total < window {
		return total + 1
	}
	return window + 1
}

// State captures the detector's complete serializable state. The returned
// snapshot shares no memory with the detector.
func (d *Detector) State() *State {
	total := d.Len()
	w := d.params.Window
	nt := tailLen(total, w)
	st := &State{
		Params:    d.params,
		Reduction: d.red,
		Total:     total,
		Tail:      append([]float64(nil), d.series[len(d.series)-nt:]...),
		Words:     append([]sax.Word(nil), d.words...),
		Enc: EncoderState{
			Sum:      d.enc.sum,
			Comp:     d.enc.comp,
			SumSq:    d.enc.sumSq,
			CompSq:   d.enc.compSq,
			MagP:     d.enc.magP,
			MagQ:     d.enc.magQ,
			NChanges: d.enc.nChanges,
			LastVal:  d.enc.lastVal,
		},
	}
	nr := ringLen(total, w)
	st.Enc.Ring = make([]float64, nr)
	st.Enc.RingSq = make([]float64, nr)
	st.Enc.RingCh = make([]uint64, nr)
	for i := 0; i < nr; i++ {
		pos := total - nr + 1 + i
		st.Enc.Ring[i] = d.enc.at(pos)
		st.Enc.RingSq[i] = d.enc.sqAt(pos)
		st.Enc.RingCh[i] = d.enc.chAt(pos)
	}
	return st
}

// Validate checks every invariant a well-formed State satisfies. It is
// deliberately strict: a State that passes is guaranteed to restore into
// a Detector whose subsequent behaviour is byte-identical to the one that
// produced it, so decoders treat any violation as corruption.
func (st *State) Validate() error {
	p := st.Params
	if p.Window <= 0 {
		return fmt.Errorf("window %d out of range", p.Window)
	}
	if p.PAA <= 0 || p.PAA > p.Window {
		return fmt.Errorf("paa %d out of range for window %d", p.PAA, p.Window)
	}
	if p.Alphabet < sax.MinAlphabet || p.Alphabet > sax.MaxAlphabet {
		return fmt.Errorf("alphabet %d out of range", p.Alphabet)
	}
	if math.IsNaN(p.NormThreshold) || math.IsInf(p.NormThreshold, 0) || p.NormThreshold < 0 {
		return fmt.Errorf("norm threshold %v out of range", p.NormThreshold)
	}
	switch st.Reduction {
	case sax.ReductionExact, sax.ReductionNone, sax.ReductionMINDIST:
	default:
		return fmt.Errorf("unknown reduction %d", int(st.Reduction))
	}
	if st.Total < 0 {
		return fmt.Errorf("negative total %d", st.Total)
	}
	if len(st.Tail) != tailLen(st.Total, p.Window) {
		return fmt.Errorf("tail holds %d points, want %d", len(st.Tail), tailLen(st.Total, p.Window))
	}
	for i, v := range st.Tail {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("tail point %d is %v", i, v)
		}
	}
	if err := st.validateWords(); err != nil {
		return err
	}
	return st.validateEncoder()
}

func (st *State) validateWords() error {
	p := st.Params
	lastStart := st.Total - p.Window
	if st.Total >= p.Window && len(st.Words) == 0 {
		return fmt.Errorf("%d points but no recorded words", st.Total)
	}
	if st.Total < p.Window && len(st.Words) != 0 {
		return fmt.Errorf("%d words before the first full window", len(st.Words))
	}
	if st.Reduction == sax.ReductionNone && st.Total >= p.Window && len(st.Words) != lastStart+1 {
		return fmt.Errorf("reduction NONE recorded %d words for %d windows", len(st.Words), lastStart+1)
	}
	codec := sax.NewWordCodec(p.PAA, p.Alphabet)
	prevOffset := -1
	prevStr := ""
	for i := range st.Words {
		w := &st.Words[i]
		if i == 0 && w.Offset != 0 {
			return fmt.Errorf("first word offset %d, want 0", w.Offset)
		}
		if w.Offset <= prevOffset {
			return fmt.Errorf("word %d offset %d not increasing past %d", i, w.Offset, prevOffset)
		}
		if w.Offset > lastStart {
			return fmt.Errorf("word %d offset %d beyond last window start %d", i, w.Offset, lastStart)
		}
		if st.Reduction == sax.ReductionNone && w.Offset != i {
			return fmt.Errorf("reduction NONE word %d at offset %d", i, w.Offset)
		}
		if len(w.Str) != p.PAA {
			return fmt.Errorf("word %d has %d letters, want %d", i, len(w.Str), p.PAA)
		}
		for j := 0; j < len(w.Str); j++ {
			if c := w.Str[j]; c < 'a' || int(c-'a') >= p.Alphabet {
				return fmt.Errorf("word %d letter %d (%q) outside alphabet %d", i, j, c, p.Alphabet)
			}
		}
		if codec.Fits() {
			if w.Code != codec.PackString(w.Str) {
				return fmt.Errorf("word %d code %d does not match its letters", i, w.Code)
			}
		} else if w.Code != 0 {
			return fmt.Errorf("word %d carries code %d but the parameters do not fit a code", i, w.Code)
		}
		if i > 0 {
			switch st.Reduction {
			case sax.ReductionExact:
				if w.Str == prevStr {
					return fmt.Errorf("word %d equals its predecessor under reduction EXACT", i)
				}
			case sax.ReductionMINDIST:
				if mindistZero(w.Str, prevStr) {
					return fmt.Errorf("word %d within MINDIST 0 of its predecessor under reduction MINDIST", i)
				}
			}
		}
		prevStr = w.Str
		prevOffset = w.Offset
	}
	return nil
}

func (st *State) validateEncoder() error {
	e := &st.Enc
	nr := ringLen(st.Total, st.Params.Window)
	if len(e.Ring) != nr || len(e.RingSq) != nr || len(e.RingCh) != nr {
		return fmt.Errorf("encoder rings hold %d/%d/%d boundaries, want %d",
			len(e.Ring), len(e.RingSq), len(e.RingCh), nr)
	}
	if math.IsNaN(e.MagP) || math.IsNaN(e.MagQ) || e.MagP < 0 || e.MagQ < 0 {
		return fmt.Errorf("encoder magnitudes %v/%v out of range", e.MagP, e.MagQ)
	}
	// Once a prefix sum overflows, the compensation terms legitimately
	// carry NaN/Inf and the encoder runs in forced-naive mode; before
	// that, every accumulator and ring entry is finite and bounded by the
	// magnitude high-water marks.
	overflowed := math.IsInf(e.MagP, 0) || math.IsInf(e.MagQ, 0)
	if !overflowed {
		for _, v := range []float64{e.Sum, e.Comp, e.SumSq, e.CompSq} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("non-finite encoder accumulator %v without overflow", v)
			}
		}
		for i := range e.Ring {
			if math.Abs(e.Ring[i]) > e.MagP || math.Abs(e.RingSq[i]) > e.MagQ {
				return fmt.Errorf("ring boundary %d exceeds the magnitude high-water mark", i)
			}
		}
		if math.Float64bits(e.Ring[nr-1]) != math.Float64bits(e.Sum) ||
			math.Float64bits(e.RingSq[nr-1]) != math.Float64bits(e.SumSq) {
			return fmt.Errorf("newest ring boundary disagrees with the running sums")
		}
	}
	maxChanges := uint64(0)
	if st.Total > 0 {
		maxChanges = uint64(st.Total - 1)
	}
	if e.NChanges > maxChanges {
		return fmt.Errorf("change count %d exceeds %d transitions", e.NChanges, maxChanges)
	}
	if e.RingCh[nr-1] != e.NChanges {
		return fmt.Errorf("newest change boundary %d disagrees with the counter %d", e.RingCh[nr-1], e.NChanges)
	}
	for i := 1; i < nr; i++ {
		if e.RingCh[i] < e.RingCh[i-1] || e.RingCh[i] > e.RingCh[i-1]+1 {
			return fmt.Errorf("change boundaries %d..%d not a unit-step prefix count", i-1, i)
		}
	}
	if len(st.Tail) > 0 {
		if math.Float64bits(e.LastVal) != math.Float64bits(st.Tail[len(st.Tail)-1]) {
			return fmt.Errorf("last value %v disagrees with the tail", e.LastVal)
		}
	}
	if math.IsNaN(e.LastVal) || (math.IsInf(e.LastVal, 0) && st.Total > 0) {
		return fmt.Errorf("non-finite last value %v", e.LastVal)
	}
	return nil
}

// Restore rebuilds a live Detector from a State. It validates st first and
// refuses anything inconsistent; a Detector restored from a valid State
// behaves byte-identically — same events, same words, same grammar, same
// snapshots — to the detector that produced it.
func Restore(st *State) (*Detector, error) {
	if err := st.Validate(); err != nil {
		return nil, fmt.Errorf("stream: restore: %w", err)
	}
	d, err := NewDetector(st.Params, st.Reduction)
	if err != nil {
		return nil, fmt.Errorf("stream: restore: %w", err)
	}
	d.base = st.Total - len(st.Tail)
	d.series = append(d.series, st.Tail...)

	// Encoder: scalars verbatim, rings re-seated at their positions.
	e := d.enc
	e.sum, e.comp = st.Enc.Sum, st.Enc.Comp
	e.sumSq, e.compSq = st.Enc.SumSq, st.Enc.CompSq
	e.magP, e.magQ = st.Enc.MagP, st.Enc.MagQ
	e.nChanges = st.Enc.NChanges
	e.lastVal = st.Enc.LastVal
	e.total = st.Total
	e.forceNaive = math.IsInf(e.magP, 0) || math.IsInf(e.magQ, 0)
	nr := len(st.Enc.Ring)
	for i := 0; i < nr; i++ {
		pos := st.Total - nr + 1 + i
		idx := pos % len(e.ring)
		e.ring[idx] = st.Enc.Ring[i]
		e.ringSq[idx] = st.Enc.RingSq[i]
		e.ringCh[idx] = st.Enc.RingCh[i]
	}

	// Grammar, word list, novelty counts: replayed from the word
	// sequence. Sequitur is deterministic, so the rebuilt grammar is the
	// one the original detector held.
	d.words = append(d.words, st.Words...)
	for i := range d.words {
		w := &d.words[i]
		if d.coded {
			d.inducer.AppendCode(w.Code)
		} else {
			d.inducer.Append(w.Str)
		}
		d.seen[w.Str]++
	}
	if len(d.words) > 0 {
		d.lastWord = d.words[len(d.words)-1].Str
	}
	return d, nil
}

// validateFinite mirrors Append's input validation for replayed points.
func validateFinite(v float64, index int) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("stream: value %v at index %d: %w", v, index, timeseries.ErrInvalidValue)
	}
	return nil
}
