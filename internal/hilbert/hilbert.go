// Package hilbert implements the Hilbert space-filling curve used by the
// paper's spatial-trajectory case study (Section 5.1): a 2-D position is
// mapped to its visit order along a curve of a given order, which
// linearizes a trajectory into a scalar time series while approximately
// preserving spatial locality.
package hilbert

import (
	"errors"
	"fmt"
)

// MaxOrder bounds curve orders so that d fits comfortably in an int64
// (2*MaxOrder bits).
const MaxOrder = 31

// ErrBadOrder is returned for curve orders outside [1, MaxOrder].
var ErrBadOrder = errors.New("hilbert: order out of range")

// ErrBadCell is returned for cell coordinates or distances outside the
// curve's grid.
var ErrBadCell = errors.New("hilbert: cell out of range")

// Curve is a Hilbert curve of a fixed order over a 2^order × 2^order grid.
type Curve struct {
	order int
	side  int64 // 2^order
}

// New returns the Hilbert curve of the given order. The paper's case study
// uses order 8 (a 256×256 grid).
func New(order int) (*Curve, error) {
	if order < 1 || order > MaxOrder {
		return nil, fmt.Errorf("%w: %d not in [1,%d]", ErrBadOrder, order, MaxOrder)
	}
	return &Curve{order: order, side: 1 << order}, nil
}

// Order returns the curve's order.
func (c *Curve) Order() int { return c.order }

// Side returns the grid side length, 2^order.
func (c *Curve) Side() int64 { return c.side }

// Cells returns the total number of cells, 4^order.
func (c *Curve) Cells() int64 { return c.side * c.side }

// D returns the visit order (distance along the curve) of cell (x, y),
// using the standard bit-twiddling conversion (Hilbert 1891; algorithm per
// Warren, "Hacker's Delight").
func (c *Curve) D(x, y int64) (int64, error) {
	if x < 0 || y < 0 || x >= c.side || y >= c.side {
		return 0, fmt.Errorf("%w: (%d,%d) outside %dx%d", ErrBadCell, x, y, c.side, c.side)
	}
	var d int64
	for s := c.side / 2; s > 0; s /= 2 {
		var rx, ry int64
		if x&s > 0 {
			rx = 1
		}
		if y&s > 0 {
			ry = 1
		}
		d += s * s * ((3 * rx) ^ ry)
		x, y = rot(s, x, y, rx, ry)
	}
	return d, nil
}

// XY returns the cell visited at distance d along the curve.
func (c *Curve) XY(d int64) (x, y int64, err error) {
	if d < 0 || d >= c.Cells() {
		return 0, 0, fmt.Errorf("%w: d=%d outside [0,%d)", ErrBadCell, d, c.Cells())
	}
	t := d
	for s := int64(1); s < c.side; s *= 2 {
		rx := (t / 2) & 1
		ry := (t ^ rx) & 1
		x, y = rot(s, x, y, rx, ry)
		x += s * rx
		y += s * ry
		t /= 4
	}
	return x, y, nil
}

// rot rotates/flips a quadrant appropriately.
func rot(s, x, y, rx, ry int64) (int64, int64) {
	if ry == 0 {
		if rx == 1 {
			x = s - 1 - x
			y = s - 1 - y
		}
		x, y = y, x
	}
	return x, y
}
