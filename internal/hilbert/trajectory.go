package hilbert

import (
	"errors"
	"fmt"
)

// ErrEmptyTrajectory is returned when a trajectory has no points.
var ErrEmptyTrajectory = errors.New("hilbert: empty trajectory")

// Point is one recorded trajectory sample in arbitrary planar coordinates
// (e.g. projected longitude/latitude), already ordered by time.
type Point struct {
	X, Y float64
}

// Transform maps a trajectory to the scalar time series of Hilbert visit
// orders, exactly as the paper's Figure 6: the bounding box of the
// trajectory is fitted to the curve's grid, each point is assigned its
// enclosing cell, and the cell's visit order becomes the series value.
func Transform(c *Curve, pts []Point) ([]float64, error) {
	if len(pts) == 0 {
		return nil, ErrEmptyTrajectory
	}
	minX, maxX := pts[0].X, pts[0].X
	minY, maxY := pts[0].Y, pts[0].Y
	for _, p := range pts[1:] {
		if p.X < minX {
			minX = p.X
		}
		if p.X > maxX {
			maxX = p.X
		}
		if p.Y < minY {
			minY = p.Y
		}
		if p.Y > maxY {
			maxY = p.Y
		}
	}
	spanX, spanY := maxX-minX, maxY-minY
	if spanX == 0 {
		spanX = 1
	}
	if spanY == 0 {
		spanY = 1
	}
	side := float64(c.Side())
	out := make([]float64, len(pts))
	for i, p := range pts {
		cx := int64((p.X - minX) / spanX * side)
		cy := int64((p.Y - minY) / spanY * side)
		if cx >= c.Side() {
			cx = c.Side() - 1 // the max coordinate lands on the grid edge
		}
		if cy >= c.Side() {
			cy = c.Side() - 1
		}
		d, err := c.D(cx, cy)
		if err != nil {
			return nil, fmt.Errorf("hilbert: point %d: %w", i, err)
		}
		out[i] = float64(d)
	}
	return out, nil
}

// TransformCells maps integer cell coordinates directly (no bounding-box
// fitting) — the form used by the paper's worked example in Figure 6.
func TransformCells(c *Curve, cells [][2]int64) ([]float64, error) {
	if len(cells) == 0 {
		return nil, ErrEmptyTrajectory
	}
	out := make([]float64, len(cells))
	for i, cell := range cells {
		d, err := c.D(cell[0], cell[1])
		if err != nil {
			return nil, fmt.Errorf("hilbert: cell %d: %w", i, err)
		}
		out[i] = float64(d)
	}
	return out, nil
}
