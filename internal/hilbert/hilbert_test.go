package hilbert

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewErrors(t *testing.T) {
	for _, order := range []int{0, -1, 32, 100} {
		if _, err := New(order); !errors.Is(err, ErrBadOrder) {
			t.Errorf("New(%d) err = %v, want ErrBadOrder", order, err)
		}
	}
	c, err := New(8)
	if err != nil {
		t.Fatalf("New(8): %v", err)
	}
	if c.Order() != 8 || c.Side() != 256 || c.Cells() != 65536 {
		t.Errorf("order/side/cells = %d/%d/%d", c.Order(), c.Side(), c.Cells())
	}
}

func TestFirstOrderLayout(t *testing.T) {
	// The paper's Figure 6 left panel: 0 bottom-left, 1 top-left,
	// 2 top-right, 3 bottom-right.
	c, _ := New(1)
	tests := []struct {
		x, y int64
		d    int64
	}{
		{0, 0, 0},
		{0, 1, 1},
		{1, 1, 2},
		{1, 0, 3},
	}
	for _, tt := range tests {
		d, err := c.D(tt.x, tt.y)
		if err != nil {
			t.Fatalf("D(%d,%d): %v", tt.x, tt.y, err)
		}
		if d != tt.d {
			t.Errorf("D(%d,%d) = %d, want %d", tt.x, tt.y, d, tt.d)
		}
		x, y, err := c.XY(tt.d)
		if err != nil {
			t.Fatalf("XY(%d): %v", tt.d, err)
		}
		if x != tt.x || y != tt.y {
			t.Errorf("XY(%d) = (%d,%d), want (%d,%d)", tt.d, x, y, tt.x, tt.y)
		}
	}
}

func TestSecondOrderSequence(t *testing.T) {
	// Second-order curve (Figure 6 right panel): full visit order.
	c, _ := New(2)
	want := [][2]int64{
		{0, 0}, {1, 0}, {1, 1}, {0, 1},
		{0, 2}, {0, 3}, {1, 3}, {1, 2},
		{2, 2}, {2, 3}, {3, 3}, {3, 2},
		{3, 1}, {2, 1}, {2, 0}, {3, 0},
	}
	for d, cell := range want {
		x, y, err := c.XY(int64(d))
		if err != nil {
			t.Fatalf("XY(%d): %v", d, err)
		}
		if x != cell[0] || y != cell[1] {
			t.Errorf("XY(%d) = (%d,%d), want (%d,%d)", d, x, y, cell[0], cell[1])
		}
	}
}

func TestPaperFigure6Example(t *testing.T) {
	// The paper's worked conversion: a 14-point trajectory becomes
	// {0,3,2,2,2,7,7,8,11,13,13,2,1,1}.
	c, _ := New(2)
	cells := [][2]int64{
		{0, 0}, {0, 1}, {1, 1}, {1, 1}, {1, 1}, {1, 2}, {1, 2},
		{2, 2}, {3, 2}, {2, 1}, {2, 1}, {1, 1}, {1, 0}, {1, 0},
	}
	got, err := TransformCells(c, cells)
	if err != nil {
		t.Fatalf("TransformCells: %v", err)
	}
	want := []float64{0, 3, 2, 2, 2, 7, 7, 8, 11, 13, 13, 2, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sequence = %v, want %v", got, want)
		}
	}
}

func TestBoundsErrors(t *testing.T) {
	c, _ := New(3)
	for _, bad := range [][2]int64{{-1, 0}, {0, -1}, {8, 0}, {0, 8}} {
		if _, err := c.D(bad[0], bad[1]); !errors.Is(err, ErrBadCell) {
			t.Errorf("D(%v) err = %v, want ErrBadCell", bad, err)
		}
	}
	for _, bad := range []int64{-1, 64, 1000} {
		if _, _, err := c.XY(bad); !errors.Is(err, ErrBadCell) {
			t.Errorf("XY(%d) err = %v, want ErrBadCell", bad, err)
		}
	}
}

// Property: XY and D are inverse bijections for random orders.
func TestBijection(t *testing.T) {
	f := func(orderRaw uint8, dRaw uint32) bool {
		order := int(orderRaw%8) + 1
		c, err := New(order)
		if err != nil {
			return false
		}
		d := int64(dRaw) % c.Cells()
		x, y, err := c.XY(d)
		if err != nil {
			return false
		}
		back, err := c.D(x, y)
		return err == nil && back == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: consecutive visit orders are grid neighbours (the adjacency
// property the paper highlights for locality preservation).
func TestAdjacency(t *testing.T) {
	for order := 1; order <= 6; order++ {
		c, _ := New(order)
		px, py, err := c.XY(0)
		if err != nil {
			t.Fatal(err)
		}
		for d := int64(1); d < c.Cells(); d++ {
			x, y, err := c.XY(d)
			if err != nil {
				t.Fatal(err)
			}
			dx, dy := x-px, y-py
			if dx < 0 {
				dx = -dx
			}
			if dy < 0 {
				dy = -dy
			}
			if dx+dy != 1 {
				t.Fatalf("order %d: step %d→%d jumps from (%d,%d) to (%d,%d)",
					order, d-1, d, px, py, x, y)
			}
			px, py = x, y
		}
	}
}

func TestTransform(t *testing.T) {
	c, _ := New(2)
	// A square loop in continuous coordinates.
	pts := []Point{{0, 0}, {0, 10}, {10, 10}, {10, 0}, {0, 0}}
	got, err := Transform(c, pts)
	if err != nil {
		t.Fatalf("Transform: %v", err)
	}
	if len(got) != len(pts) {
		t.Fatalf("length %d", len(got))
	}
	// Corners map to grid corners: (0,0)→0, (0,3)→5, (3,3)→10, (3,0)→15.
	want := []float64{0, 5, 10, 15, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Transform = %v, want %v", got, want)
		}
	}
}

func TestTransformDegenerate(t *testing.T) {
	c, _ := New(4)
	if _, err := Transform(c, nil); !errors.Is(err, ErrEmptyTrajectory) {
		t.Errorf("empty err = %v", err)
	}
	if _, err := TransformCells(c, nil); !errors.Is(err, ErrEmptyTrajectory) {
		t.Errorf("empty cells err = %v", err)
	}
	// All points identical: zero span must not divide by zero.
	got, err := Transform(c, []Point{{5, 5}, {5, 5}})
	if err != nil {
		t.Fatalf("identical points: %v", err)
	}
	if got[0] != got[1] {
		t.Errorf("identical points map differently: %v", got)
	}
	// Vertical line (zero x-span only).
	if _, err := Transform(c, []Point{{1, 0}, {1, 9}}); err != nil {
		t.Errorf("vertical line: %v", err)
	}
}

// Property: locality — points in the same cell get the same value.
func TestTransformCellStability(t *testing.T) {
	c, _ := New(3)
	rng := rand.New(rand.NewSource(31))
	pts := make([]Point, 64)
	for i := range pts {
		pts[i] = Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
	}
	// Append exact duplicates; duplicates must map identically.
	pts = append(pts, pts[0], pts[17])
	got, err := Transform(c, pts)
	if err != nil {
		t.Fatal(err)
	}
	if got[64] != got[0] || got[65] != got[17] {
		t.Error("duplicate points map to different cells")
	}
}

// Exhaustive check of the order-3 curve: every cell visited exactly once
// and the full path is a Hamiltonian walk of the 8x8 grid.
func TestOrder3Exhaustive(t *testing.T) {
	c, _ := New(3)
	seen := make(map[[2]int64]bool, 64)
	for d := int64(0); d < 64; d++ {
		x, y, err := c.XY(d)
		if err != nil {
			t.Fatal(err)
		}
		cell := [2]int64{x, y}
		if seen[cell] {
			t.Fatalf("cell %v visited twice", cell)
		}
		seen[cell] = true
	}
	if len(seen) != 64 {
		t.Fatalf("visited %d cells, want 64", len(seen))
	}
}
