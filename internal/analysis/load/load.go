// Package load turns `go list` package graphs into fully type-checked
// syntax trees for the analysis driver, using nothing but the standard
// library. It is the stdlib-only stand-in for golang.org/x/tools/go/packages:
// the go command resolves the import graph (including the stdlib's vendored
// dependencies and per-platform file sets) and go/types checks every package
// from source in dependency order.
//
// CGO is disabled for the listing so every package resolves to its pure-Go
// file set — .go files are all go/types needs, and the repo itself is
// CGO-free by construction.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Package is one node of the loaded program: the go list metadata plus,
// for non-standard-library packages, parsed files and type information.
type Package struct {
	ImportPath string
	Name       string
	Dir        string
	Standard   bool // part of the Go standard library
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string // source import path -> resolved path

	// Populated by the type checker. Syntax and TypesInfo are only
	// retained for non-Standard packages (the ones analyzers run on);
	// Types is available for every package.
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listPackage mirrors the subset of `go list -json` output we consume.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Standard   bool
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Program is a loaded, type-checked package graph.
type Program struct {
	Fset *token.FileSet
	// Packages holds every listed package in dependency order
	// (dependencies before dependents), as produced by `go list -deps`.
	Packages []*Package

	byPath map[string]*Package
	typed  map[string]*types.Package
	fall   types.Importer // fallback for packages go list did not surface
}

// Load lists patterns (plus their full dependency graph) in dir and
// type-checks every non-standard package from source. Standard-library
// dependencies are type-checked on demand — only their exported API is
// needed — and cached for the lifetime of the Program.
func Load(dir string, patterns ...string) (*Program, error) {
	args := append([]string{"list", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}

	prog := &Program{
		Fset:   token.NewFileSet(),
		byPath: make(map[string]*Package),
		typed:  make(map[string]*types.Package),
	}
	dec := json.NewDecoder(&out)
	for dec.More() {
		var lp listPackage
		if err := dec.Decode(&lp); err != nil {
			return nil, fmt.Errorf("decode go list output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		p := &Package{
			ImportPath: lp.ImportPath,
			Name:       lp.Name,
			Dir:        lp.Dir,
			Standard:   lp.Standard,
			GoFiles:    lp.GoFiles,
			Imports:    lp.Imports,
			ImportMap:  lp.ImportMap,
			Fset:       prog.Fset,
		}
		prog.Packages = append(prog.Packages, p)
		prog.byPath[p.ImportPath] = p
	}

	// go list -deps emits dependencies before dependents, so a single
	// in-order sweep sees every import already checked.
	for _, p := range prog.Packages {
		if _, err := prog.check(p); err != nil {
			return nil, err
		}
	}
	return prog, nil
}

// Package returns the loaded package with the given import path, or nil.
func (prog *Program) Package(path string) *Package { return prog.byPath[path] }

// pkgImporter resolves one package's imports against its ImportMap (the
// stdlib vendors golang.org/x/... under vendor/) and the program cache.
type pkgImporter struct {
	prog *Program
	pkg  *Package
}

func (im pkgImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if mapped, ok := im.pkg.ImportMap[path]; ok {
		path = mapped
	}
	dep := im.prog.byPath[path]
	if dep == nil {
		// Not in the listed graph (e.g. an implicit import added by the
		// type checker); fall back to the source importer.
		if im.prog.fall == nil {
			im.prog.fall = importer.ForCompiler(im.prog.Fset, "source", nil)
		}
		return im.prog.fall.Import(path)
	}
	return im.prog.check(dep)
}

// check parses and type-checks p (once), returning its *types.Package.
func (prog *Program) check(p *Package) (*types.Package, error) {
	if tp, ok := prog.typed[p.ImportPath]; ok {
		return tp, nil
	}
	if p.ImportPath == "unsafe" {
		prog.typed[p.ImportPath] = types.Unsafe
		p.Types = types.Unsafe
		return types.Unsafe, nil
	}

	files := make([]*ast.File, 0, len(p.GoFiles))
	for _, name := range p.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(p.Dir, name)
		}
		f, err := parser.ParseFile(prog.Fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", path, err)
		}
		files = append(files, f)
	}

	var info *types.Info
	if !p.Standard {
		info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
	}
	cfg := types.Config{
		Importer:    pkgImporter{prog: prog, pkg: p},
		FakeImportC: true,
		Sizes:       types.SizesFor("gc", runtime.GOARCH),
	}
	tp, err := cfg.Check(p.ImportPath, prog.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", p.ImportPath, err)
	}
	prog.typed[p.ImportPath] = tp
	p.Types = tp
	if !p.Standard {
		p.Syntax = files
		p.TypesInfo = info
	}
	return tp, nil
}
