package cfg

// Lattice defines one monotone dataflow problem over a Graph. Facts flow
// through blocks via Transfer and meet at merge points via Merge; the
// framework iterates to a fixpoint, so Transfer and Merge must be
// monotone and the lattice of facts must have finite height (true for
// the finite sets and booleans the passes use). Transfer and Merge must
// not mutate their inputs — return fresh values (or shared immutable
// ones).
type Lattice[F any] interface {
	// Boundary is the fact at the analysis boundary: function entry for
	// Forward, the virtual Exit block for Backward.
	Boundary() F
	// Transfer flows a fact through one block's Nodes in execution order
	// (reverse order for Backward analyses).
	Transfer(b *Block, f F) F
	// Merge joins two facts at a control-flow merge.
	Merge(a, b F) F
	// Equal reports whether two facts are equal (fixpoint detection).
	Equal(a, b F) bool
}

// EdgeRefiner is an optional Lattice extension that refines facts along
// the outgoing edges of a conditional block: branch 0 is the edge taken
// when b.Cond is true, branch 1 the false edge. Non-conditional edges do
// not call RefineEdge.
type EdgeRefiner[F any] interface {
	RefineEdge(from *Block, branch int, f F) F
}

// Result holds the fixpoint facts per reachable block. In is the fact on
// block entry, Out after its Transfer (for Backward analyses In is the
// fact at the block's end and Out at its start, mirroring the flow
// direction). Unreachable blocks are absent from both maps.
type Result[F any] struct {
	In, Out map[*Block]F
}

// Forward runs a forward dataflow analysis to fixpoint.
func Forward[F any](g *Graph, lat Lattice[F]) Result[F] {
	res := Result[F]{In: map[*Block]F{}, Out: map[*Block]F{}}
	blocks := reachableRPO(g)
	refiner, _ := lat.(EdgeRefiner[F])

	res.In[g.Entry] = lat.Boundary()
	res.Out[g.Entry] = lat.Transfer(g.Entry, res.In[g.Entry])

	changed := true
	for changed {
		changed = false
		for _, b := range blocks {
			if b == g.Entry {
				continue
			}
			var in F
			have := false
			for _, p := range b.Preds {
				out, ok := res.Out[p]
				if !ok {
					continue // unreachable or not yet computed
				}
				if refiner != nil && p.Cond != nil {
					out = refiner.RefineEdge(p, branchIndex(p, b), out)
				}
				if !have {
					in, have = out, true
				} else {
					in = lat.Merge(in, out)
				}
			}
			if !have {
				continue
			}
			prevIn, hadIn := res.In[b]
			if hadIn && lat.Equal(prevIn, in) {
				continue
			}
			res.In[b] = in
			out := lat.Transfer(b, in)
			prevOut, hadOut := res.Out[b]
			if !hadOut || !lat.Equal(prevOut, out) {
				res.Out[b] = out
				changed = true
			}
		}
	}
	return res
}

// Backward runs a backward dataflow analysis to fixpoint: facts start at
// Exit and flow against the edges. In is the fact at a block's end
// (merged over successors), Out the fact at its start after Transfer.
func Backward[F any](g *Graph, lat Lattice[F]) Result[F] {
	res := Result[F]{In: map[*Block]F{}, Out: map[*Block]F{}}
	blocks := reachableRPO(g)

	res.In[g.Exit] = lat.Boundary()
	res.Out[g.Exit] = lat.Transfer(g.Exit, res.In[g.Exit])

	changed := true
	for changed {
		changed = false
		// Iterate in reverse RPO — roughly postorder, the efficient
		// direction for backward problems.
		for i := len(blocks) - 1; i >= 0; i-- {
			b := blocks[i]
			if b == g.Exit {
				continue
			}
			var in F
			have := false
			for _, s := range b.Succs {
				out, ok := res.Out[s]
				if !ok {
					continue
				}
				if !have {
					in, have = out, true
				} else {
					in = lat.Merge(in, out)
				}
			}
			if !have {
				continue
			}
			prevIn, hadIn := res.In[b]
			if hadIn && lat.Equal(prevIn, in) {
				continue
			}
			res.In[b] = in
			out := lat.Transfer(b, in)
			prevOut, hadOut := res.Out[b]
			if !hadOut || !lat.Equal(prevOut, out) {
				res.Out[b] = out
				changed = true
			}
		}
	}
	return res
}

// branchIndex returns which outgoing edge of p leads to b (0 or 1 for
// conditional blocks; the first match wins).
func branchIndex(p, b *Block) int {
	for i, s := range p.Succs {
		if s == b {
			return i
		}
	}
	return -1
}

// reachableRPO returns the blocks reachable from Entry in reverse
// postorder.
func reachableRPO(g *Graph) []*Block {
	var post []*Block
	seen := map[*Block]bool{}
	var dfs func(*Block)
	dfs = func(b *Block) {
		seen[b] = true
		for _, s := range b.Succs {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(g.Entry)
	rpo := make([]*Block, len(post))
	for i, b := range post {
		rpo[len(post)-1-i] = b
	}
	return rpo
}
