package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// buildFunc parses src (a file fragment containing one function) and
// returns the CFG of the first function declaration.
func buildFunc(t *testing.T, src string) *Graph {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", "package x\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			return New(fd.Body)
		}
	}
	t.Fatal("no function in source")
	return nil
}

func TestStraightLine(t *testing.T) {
	g := buildFunc(t, `func f() { a(); b() }`)
	if len(g.Entry.Nodes) != 2 {
		t.Fatalf("entry nodes = %d, want 2", len(g.Entry.Nodes))
	}
	offs := g.FallsOff()
	if len(offs) != 1 || offs[0] != g.Entry {
		t.Fatalf("FallsOff = %v, want [entry]", offs)
	}
}

func TestIfElseReturns(t *testing.T) {
	g := buildFunc(t, `func f(c bool) int {
		if c {
			return 1
		} else {
			return 2
		}
	}`)
	if got := g.FallsOff(); len(got) != 0 {
		t.Fatalf("FallsOff = %v, want none (both branches return)", got)
	}
	returns := 0
	reach := g.reachable()
	for _, b := range g.Blocks {
		if reach[b] && b.Return != nil {
			returns++
		}
	}
	if returns != 2 {
		t.Fatalf("reachable return blocks = %d, want 2", returns)
	}
}

func TestCondEdgesAndDominance(t *testing.T) {
	g := buildFunc(t, `func f(c bool) {
		if c {
			a()
		}
		b()
	}`)
	cond := g.Entry
	if cond.Cond == nil || len(cond.Succs) != 2 {
		t.Fatalf("entry should be conditional with 2 succs, got cond=%v succs=%d", cond.Cond, len(cond.Succs))
	}
	then, join := cond.Succs[0], cond.Succs[1]
	if len(then.Nodes) != 1 {
		t.Fatalf("then block nodes = %d, want 1 (a())", len(then.Nodes))
	}
	dom := Dominators(g)
	if !dom.Dominates(cond, join) {
		t.Error("cond should dominate join")
	}
	if dom.Dominates(then, join) {
		t.Error("then must not dominate join (false edge bypasses it)")
	}
}

func TestLoopShape(t *testing.T) {
	g := buildFunc(t, `func f(n int) {
		for i := 0; i < n; i++ {
			work()
		}
		done()
	}`)
	// Find the loop head: the conditional block.
	var head *Block
	for _, b := range g.Blocks {
		if b.Cond != nil {
			head = b
		}
	}
	if head == nil {
		t.Fatal("no conditional loop head")
	}
	if len(head.Preds) != 2 {
		t.Fatalf("loop head preds = %d, want 2 (entry + back edge)", len(head.Preds))
	}
	dom := Dominators(g)
	for _, s := range head.Succs {
		if !dom.Dominates(head, s) {
			t.Error("loop head should dominate both successors")
		}
	}
}

func TestBreakContinue(t *testing.T) {
	g := buildFunc(t, `func f(n int) {
		for i := 0; i < n; i++ {
			if i == 3 {
				break
			}
			if i == 1 {
				continue
			}
			work()
		}
	}`)
	reach := g.reachable()
	var workSeen bool
	for _, b := range g.Blocks {
		if !reach[b] {
			continue
		}
		for _, n := range b.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "work" {
						workSeen = true
					}
				}
			}
		}
	}
	if !workSeen {
		t.Error("work() call should be reachable")
	}
}

func TestLabeledBreak(t *testing.T) {
	g := buildFunc(t, `func f(n int) {
	outer:
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if j == i {
					break outer
				}
			}
		}
		done()
	}`)
	reach := g.reachable()
	var doneReach bool
	for _, b := range g.Blocks {
		if !reach[b] {
			continue
		}
		for _, n := range b.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "done" {
						doneReach = true
					}
				}
			}
		}
	}
	if !doneReach {
		t.Error("done() after labeled break target should be reachable")
	}
}

func TestSwitchFallthrough(t *testing.T) {
	g := buildFunc(t, `func f(x int) {
		switch x {
		case 1:
			a()
			fallthrough
		case 2:
			b()
		default:
			c()
		}
	}`)
	// The case-1 block must have the case-2 block among its successors.
	var case1, case2 *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok {
						switch id.Name {
						case "a":
							case1 = b
						case "b":
							case2 = b
						}
					}
				}
			}
		}
	}
	if case1 == nil || case2 == nil {
		t.Fatal("case blocks not found")
	}
	found := false
	for _, s := range case1.Succs {
		if s == case2 {
			found = true
		}
	}
	if !found {
		t.Error("fallthrough edge from case 1 to case 2 missing")
	}
}

func TestPanicAndDefer(t *testing.T) {
	g := buildFunc(t, `func f(c bool) {
		defer cleanup()
		if c {
			panic("boom")
		}
		work()
	}`)
	if len(g.Defers) != 1 {
		t.Fatalf("defers = %d, want 1", len(g.Defers))
	}
	var panicBlock *Block
	for _, b := range g.Blocks {
		if b.Panics {
			panicBlock = b
		}
	}
	if panicBlock == nil {
		t.Fatal("no panic block recorded")
	}
	exitEdge := false
	for _, s := range panicBlock.Succs {
		if s == g.Exit {
			exitEdge = true
		}
	}
	if !exitEdge {
		t.Error("panic block must edge to Exit")
	}
}

func TestSelect(t *testing.T) {
	g := buildFunc(t, `func f(a, b chan int) int {
		select {
		case v := <-a:
			return v
		case <-b:
			return 0
		}
	}`)
	if got := g.FallsOff(); len(got) != 0 {
		t.Fatalf("FallsOff = %v, want none (every arm returns)", got)
	}
}

// calledF is a forward must-analysis: the fact is "f() has been called on
// every path to this point". Used to exercise the generic framework.
type calledF struct{}

func (calledF) Boundary() bool       { return false }
func (calledF) Merge(a, b bool) bool { return a && b }
func (calledF) Equal(a, b bool) bool { return a == b }
func (calledF) Transfer(b *Block, f bool) bool {
	for _, n := range b.Nodes {
		if es, ok := n.(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "f" {
					f = true
				}
			}
		}
	}
	return f
}

func TestForwardMustAnalysis(t *testing.T) {
	// f() called on only one branch: not established at the join.
	g := buildFunc(t, `func g(c bool) {
		if c {
			f()
		}
		after()
	}`)
	res := Forward[bool](g, calledF{})
	join := g.Entry.Succs[1]
	if res.In[join] {
		t.Error("f() on one branch must not be established at join")
	}

	// f() called on both branches: established at the join.
	g = buildFunc(t, `func g(c bool) {
		if c {
			f()
		} else {
			f()
		}
		after()
	}`)
	res = Forward[bool](g, calledF{})
	var joinIn bool
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "after" {
						joinIn = res.In[b]
					}
				}
			}
		}
	}
	if !joinIn {
		t.Error("f() on both branches must be established at join")
	}

	// Loop: fact survives the back edge.
	g = buildFunc(t, `func g(n int) {
		f()
		for i := 0; i < n; i++ {
			work()
		}
		after()
	}`)
	res = Forward[bool](g, calledF{})
	if !res.In[g.Exit] {
		t.Error("fact established before a loop must reach Exit")
	}
}

// nilRefine is calledF plus edge refinement: on the true edge of a
// `p == nil` condition the fact becomes true (mirrors walfirst's
// "no WAL configured" exemption edge).
type nilRefine struct{ calledF }

func (nilRefine) RefineEdge(from *Block, branch int, f bool) bool {
	be, ok := from.Cond.(*ast.BinaryExpr)
	if !ok {
		return f
	}
	isNil := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "nil"
	}
	if be.Op == token.EQL && (isNil(be.X) || isNil(be.Y)) && branch == 0 {
		return true
	}
	return f
}

func TestEdgeRefinement(t *testing.T) {
	g := buildFunc(t, `func g(p *int) {
		if p == nil {
			after()
		}
	}`)
	res := Forward[bool](g, nilRefine{})
	then := g.Entry.Succs[0]
	if !res.In[then] {
		t.Error("true edge of p == nil should refine the fact to true")
	}
	join := g.Entry.Succs[1]
	if res.In[join] {
		t.Error("false edge of p == nil must not refine the fact")
	}
}

// anyReturn is a backward must-analysis: "every path from here ends in a
// return statement" (as opposed to falling off the end).
type allPathsReturn struct{}

func (allPathsReturn) Boundary() bool       { return false }
func (allPathsReturn) Merge(a, b bool) bool { return a && b }
func (allPathsReturn) Equal(a, b bool) bool { return a == b }
func (allPathsReturn) Transfer(b *Block, f bool) bool {
	if b.Return != nil {
		return true
	}
	return f
}

func TestBackwardAnalysis(t *testing.T) {
	g := buildFunc(t, `func g(c bool) int {
		if c {
			return 1
		}
		work()
		return 2
	}`)
	res := Backward[bool](g, allPathsReturn{})
	if !res.Out[g.Entry] {
		t.Error("all paths return: entry Out should be true")
	}

	g = buildFunc(t, `func g(c bool) {
		if c {
			return
		}
		work()
	}`)
	res = Backward[bool](g, allPathsReturn{})
	if res.Out[g.Entry] {
		t.Error("fall-off path exists: entry Out should be false")
	}
}

func TestGoto(t *testing.T) {
	g := buildFunc(t, `func g(c bool) {
		if c {
			goto done
		}
		work()
	done:
		after()
	}`)
	reach := g.reachable()
	n := 0
	for _, b := range g.Blocks {
		if !reach[b] {
			continue
		}
		for range b.Nodes {
			n++
		}
	}
	// cond + work() + after() + the goto path: all reachable.
	if n < 3 {
		t.Fatalf("reachable nodes = %d, want >= 3", n)
	}
	if len(g.FallsOff()) != 1 {
		t.Fatalf("FallsOff = %d, want 1", len(g.FallsOff()))
	}
}
