package cfg

// DomTree is the dominance tree of a Graph: block a dominates block b
// when every path from Entry to b passes through a. Computed with the
// Cooper–Harvey–Kennedy iterative algorithm over a reverse-postorder
// numbering — simple, and fast enough for function-sized graphs.
type DomTree struct {
	idom map[*Block]*Block // immediate dominator; Entry maps to itself
	rpo  map[*Block]int    // reverse-postorder number of reachable blocks
}

// Dominators computes the dominance tree over the blocks reachable from
// g.Entry. Unreachable blocks have no dominator and are reported as not
// dominated by (and not dominating) anything.
func Dominators(g *Graph) *DomTree {
	// Postorder DFS from Entry.
	var order []*Block
	seen := map[*Block]bool{}
	var dfs func(*Block)
	dfs = func(b *Block) {
		seen[b] = true
		for _, s := range b.Succs {
			if !seen[s] {
				dfs(s)
			}
		}
		order = append(order, b)
	}
	dfs(g.Entry)

	t := &DomTree{idom: map[*Block]*Block{}, rpo: map[*Block]int{}}
	// order is postorder; reverse-postorder number = len-1-i.
	for i, b := range order {
		t.rpo[b] = len(order) - 1 - i
	}
	t.idom[g.Entry] = g.Entry

	changed := true
	for changed {
		changed = false
		// Visit in reverse postorder (skip Entry).
		for i := len(order) - 1; i >= 0; i-- {
			b := order[i]
			if b == g.Entry {
				continue
			}
			var newIdom *Block
			for _, p := range b.Preds {
				if _, ok := t.rpo[p]; !ok {
					continue // unreachable predecessor
				}
				if t.idom[p] == nil {
					continue // not yet processed this round
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = t.intersect(p, newIdom)
				}
			}
			if newIdom != nil && t.idom[b] != newIdom {
				t.idom[b] = newIdom
				changed = true
			}
		}
	}
	return t
}

// intersect walks two blocks up the dominator tree to their common
// ancestor (the classic two-finger walk on RPO numbers).
func (t *DomTree) intersect(a, b *Block) *Block {
	for a != b {
		for t.rpo[a] > t.rpo[b] {
			a = t.idom[a]
		}
		for t.rpo[b] > t.rpo[a] {
			b = t.idom[b]
		}
	}
	return a
}

// Idom returns b's immediate dominator (nil for Entry and for
// unreachable blocks).
func (t *DomTree) Idom(b *Block) *Block {
	d := t.idom[b]
	if d == b {
		return nil
	}
	return d
}

// Dominates reports whether a dominates b (reflexively: every block
// dominates itself). Unreachable blocks dominate nothing.
func (t *DomTree) Dominates(a, b *Block) bool {
	if _, ok := t.rpo[a]; !ok {
		return false
	}
	if _, ok := t.rpo[b]; !ok {
		return false
	}
	for {
		if a == b {
			return true
		}
		next := t.idom[b]
		if next == nil || next == b {
			return false
		}
		b = next
	}
}

// Reachable reports whether b is reachable from Entry.
func (t *DomTree) Reachable(b *Block) bool {
	_, ok := t.rpo[b]
	return ok
}
