// Package cfg builds intraprocedural control-flow graphs over go/ast
// function bodies and runs monotone dataflow analyses over them. It is the
// flow-sensitive core behind the gvadlint passes that reason about paths —
// poolrelease (all-paths release), noalloc (cold blocks), lockdiscipline
// (pairing/ordering), and walfirst (append-before-mutate dominance) — and,
// like the rest of internal/analysis, it is stdlib-only.
//
// The graph is deliberately statement-granular, not SSA: each Block holds
// the simple statements (and branch-condition expressions) that execute in
// order, and control constructs are decomposed into edges. Conditions keep
// their branch polarity (Succs[0] is the true edge), so analyses can refine
// facts along edges — the walfirst pass uses this for `log == nil` tests.
// Panic calls and returns edge to a single virtual Exit block; defer
// statements are recorded on the graph (they run on every exit path, so
// path-sensitive passes discharge obligations against them separately
// rather than threading them through the flow).
package cfg

import (
	"go/ast"
	"go/token"
)

// Block is one basic block: a maximal run of straight-line code.
type Block struct {
	// Index is the block's position in Graph.Blocks (creation order;
	// Entry is 0).
	Index int
	// Nodes are the simple statements and evaluated expressions of the
	// block in execution order. Control statements never appear here —
	// only their decomposed parts do (an if's Init and Cond, a switch's
	// Tag, a case clause's match expressions, a range's operand).
	Nodes []ast.Node
	// Succs are the successor blocks. When Cond is non-nil there are
	// exactly two and Succs[0] is the edge taken when Cond is true.
	Succs []*Block
	// Preds are the predecessor blocks.
	Preds []*Block
	// Cond is the boolean branch condition the block ends on, or nil.
	// The condition expression is also the last entry of Nodes (it is
	// evaluated in this block).
	Cond ast.Expr
	// Return is the return statement the block exits through, or nil.
	Return *ast.ReturnStmt
	// Panics records that the block exits through a panic(...) call.
	Panics bool
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	// Entry is the block control enters at; Exit is the single virtual
	// block every return, panic, and fall-off-the-end path reaches. Exit
	// holds no nodes.
	Entry, Exit *Block
	// Blocks lists every block, including Entry and Exit and any
	// unreachable blocks created after terminators (dataflow and
	// dominance skip blocks not reachable from Entry).
	Blocks []*Block
	// Defers lists every defer statement of the body in source order.
	// Deferred work runs on every path out of the function, so passes
	// treat it as attached to Exit rather than to its flow position.
	Defers []*ast.DeferStmt
}

// FallsOff reports the reachable blocks from which control can fall off
// the end of the function (or reach Exit through a bare terminator that
// is neither a return nor a panic — i.e. the implicit return).
func (g *Graph) FallsOff() []*Block {
	reach := g.reachable()
	var out []*Block
	for _, p := range g.Exit.Preds {
		if reach[p] && p.Return == nil && !p.Panics {
			out = append(out, p)
		}
	}
	return out
}

// reachable returns the set of blocks reachable from Entry.
func (g *Graph) reachable() map[*Block]bool {
	seen := map[*Block]bool{g.Entry: true}
	stack := []*Block{g.Entry}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// New builds the control-flow graph of body. The builder is purely
// syntactic: it resolves labels, loops, switches, selects, defers, and
// panic calls, but needs no type information.
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{}
	b := &builder{g: g, labels: map[string]*Block{}}
	g.Entry = b.newBlock()
	g.Exit = b.newBlock()
	b.cur = g.Entry
	b.stmtList(body.List)
	// The implicit return: harmless when cur is an unreachable
	// continuation block (those are skipped by reachability).
	b.edge(b.cur, g.Exit)
	return g
}

// target is one enclosing breakable/continuable construct.
type target struct {
	label      string
	breakTo    *Block
	continueTo *Block // nil for switch and select frames
}

type builder struct {
	g        *builderGraph
	cur      *Block
	targets  []target
	labels   map[string]*Block // label name → block the label starts
	curLabel string            // pending label for the next loop/switch
}

// builderGraph is an alias so builder methods read naturally.
type builderGraph = Graph

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// labelBlock returns (creating on first use) the block a label names, so
// forward gotos resolve.
func (b *builder) labelBlock(name string) *Block {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock()
	b.labels[name] = blk
	return blk
}

// takeLabel consumes the pending label for the construct that owns it.
func (b *builder) takeLabel() string {
	l := b.curLabel
	b.curLabel = ""
	return l
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.RangeStmt:
		b.rangeStmt(s)
	case *ast.SwitchStmt:
		b.switchStmt(s)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s)
	case *ast.SelectStmt:
		b.selectStmt(s)
	case *ast.LabeledStmt:
		lb := b.labelBlock(s.Label.Name)
		b.edge(b.cur, lb)
		b.cur = lb
		b.curLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.curLabel = ""
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.ReturnStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		b.cur.Return = s
		b.edge(b.cur, b.g.Exit)
		b.cur = b.newBlock() // unreachable continuation
	case *ast.DeferStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		b.g.Defers = append(b.g.Defers, s)
	case *ast.ExprStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		if isPanicCall(s.X) {
			b.cur.Panics = true
			b.edge(b.cur, b.g.Exit)
			b.cur = b.newBlock()
		}
	case *ast.EmptyStmt:
		// nothing executes
	default:
		// Assign, Decl, Go, Send, IncDec — straight-line statements.
		b.cur.Nodes = append(b.cur.Nodes, s)
	}
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	cond := b.cur
	cond.Nodes = append(cond.Nodes, s.Cond)
	cond.Cond = s.Cond

	then := b.newBlock()
	b.edge(cond, then) // Succs[0]: true

	var elseStart *Block
	if s.Else != nil {
		elseStart = b.newBlock()
		b.edge(cond, elseStart) // Succs[1]: false
	}

	b.cur = then
	b.stmt(s.Body)
	thenEnd := b.cur

	join := b.newBlock()
	if s.Else != nil {
		b.cur = elseStart
		b.stmt(s.Else)
		b.edge(b.cur, join)
	} else {
		b.edge(cond, join) // Succs[1]: false
	}
	b.edge(thenEnd, join)
	b.cur = join
}

func (b *builder) forStmt(s *ast.ForStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.newBlock()
	b.edge(b.cur, head)

	body := b.newBlock()
	exit := b.newBlock()
	if s.Cond != nil {
		head.Nodes = append(head.Nodes, s.Cond)
		head.Cond = s.Cond
		b.edge(head, body) // true
		b.edge(head, exit) // false
	} else {
		b.edge(head, body)
	}

	continueTo := head
	var post *Block
	if s.Post != nil {
		post = b.newBlock()
		continueTo = post
	}

	b.targets = append(b.targets, target{label: label, breakTo: exit, continueTo: continueTo})
	b.cur = body
	b.stmt(s.Body)
	b.targets = b.targets[:len(b.targets)-1]

	if post != nil {
		b.edge(b.cur, post)
		b.cur = post
		b.stmt(s.Post)
	}
	b.edge(b.cur, head) // back edge
	b.cur = exit
}

func (b *builder) rangeStmt(s *ast.RangeStmt) {
	label := b.takeLabel()
	b.cur.Nodes = append(b.cur.Nodes, s.X) // operand evaluated once
	head := b.newBlock()
	b.edge(b.cur, head)

	body := b.newBlock()
	exit := b.newBlock()
	b.edge(head, body)
	b.edge(head, exit)

	b.targets = append(b.targets, target{label: label, breakTo: exit, continueTo: head})
	b.cur = body
	// Key/value bindings happen per iteration at the top of the body.
	if s.Key != nil {
		b.cur.Nodes = append(b.cur.Nodes, s.Key)
	}
	if s.Value != nil {
		b.cur.Nodes = append(b.cur.Nodes, s.Value)
	}
	b.stmt(s.Body)
	b.targets = b.targets[:len(b.targets)-1]

	b.edge(b.cur, head)
	b.cur = exit
}

func (b *builder) switchStmt(s *ast.SwitchStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.stmt(s.Init)
	}
	if s.Tag != nil {
		b.cur.Nodes = append(b.cur.Nodes, s.Tag)
	}
	dispatch := b.cur
	exit := b.newBlock()

	var clauses []*ast.CaseClause
	for _, c := range s.Body.List {
		clauses = append(clauses, c.(*ast.CaseClause))
	}
	caseBlocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		caseBlocks[i] = b.newBlock()
		b.edge(dispatch, caseBlocks[i])
		if c.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(dispatch, exit)
	}

	b.targets = append(b.targets, target{label: label, breakTo: exit})
	for i, c := range clauses {
		b.cur = caseBlocks[i]
		for _, e := range c.List {
			b.cur.Nodes = append(b.cur.Nodes, e) // match expressions evaluate
		}
		body := c.Body
		fallsThrough := false
		if n := len(body); n > 0 {
			if br, ok := body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
				body = body[:n-1]
			}
		}
		b.stmtList(body)
		if fallsThrough && i+1 < len(caseBlocks) {
			b.edge(b.cur, caseBlocks[i+1])
		} else {
			b.edge(b.cur, exit)
		}
	}
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = exit
}

func (b *builder) typeSwitchStmt(s *ast.TypeSwitchStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.cur.Nodes = append(b.cur.Nodes, s.Assign)
	dispatch := b.cur
	exit := b.newBlock()

	hasDefault := false
	var caseBlocks []*Block
	var clauses []*ast.CaseClause
	for _, c := range s.Body.List {
		cc := c.(*ast.CaseClause)
		clauses = append(clauses, cc)
		cb := b.newBlock()
		caseBlocks = append(caseBlocks, cb)
		b.edge(dispatch, cb)
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(dispatch, exit)
	}

	b.targets = append(b.targets, target{label: label, breakTo: exit})
	for i, c := range clauses {
		b.cur = caseBlocks[i]
		b.stmtList(c.Body)
		b.edge(b.cur, exit)
	}
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = exit
}

func (b *builder) selectStmt(s *ast.SelectStmt) {
	label := b.takeLabel()
	dispatch := b.cur
	exit := b.newBlock()

	b.targets = append(b.targets, target{label: label, breakTo: exit})
	for _, c := range s.Body.List {
		cc := c.(*ast.CommClause)
		cb := b.newBlock()
		b.edge(dispatch, cb)
		b.cur = cb
		if cc.Comm != nil {
			b.stmt(cc.Comm)
		}
		b.stmtList(cc.Body)
		b.edge(b.cur, exit)
	}
	b.targets = b.targets[:len(b.targets)-1]
	// A select with no clauses blocks forever; exit stays unreachable.
	b.cur = exit
}

func (b *builder) branchStmt(s *ast.BranchStmt) {
	switch s.Tok {
	case token.BREAK:
		for i := len(b.targets) - 1; i >= 0; i-- {
			t := b.targets[i]
			if s.Label == nil || t.label == s.Label.Name {
				b.edge(b.cur, t.breakTo)
				break
			}
		}
	case token.CONTINUE:
		for i := len(b.targets) - 1; i >= 0; i-- {
			t := b.targets[i]
			if t.continueTo == nil {
				continue // switch/select frame: continue passes through
			}
			if s.Label == nil || t.label == s.Label.Name {
				b.edge(b.cur, t.continueTo)
				break
			}
		}
	case token.GOTO:
		if s.Label != nil {
			b.edge(b.cur, b.labelBlock(s.Label.Name))
		}
	case token.FALLTHROUGH:
		// Consumed by the switch walker; a stray one is a parse error
		// anyway.
		return
	}
	b.cur = b.newBlock() // unreachable continuation
}

// isPanicCall reports whether e is a call to the panic builtin. The check
// is syntactic — shadowing `panic` would defeat it, which no reasonable
// code does.
func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}
