// Package analysistest runs an analyzer over a testdata package tree and
// checks its diagnostics against // want comments — the stdlib-only
// equivalent of golang.org/x/tools/go/analysis/analysistest.
//
// A testdata tree is a small self-contained module: a go.mod at the root
// (so `go list` resolves its packages offline) and one directory per
// package. Expectations are written on the offending line:
//
//	go doWork() // want `bare go statement`
//
// Each backquoted or double-quoted string after "want" is a regular
// expression that must match exactly one diagnostic reported on that line;
// diagnostics without a matching want, and wants without a matching
// diagnostic, fail the test. Lines silenced by //gvad:ignore directives are
// expected to produce no diagnostics at all — which is how the allowlisted
// negatives are asserted.
package analysistest

import (
	"go/token"
	"regexp"
	"strings"
	"testing"

	"grammarviz/internal/analysis"
	"grammarviz/internal/analysis/load"
)

var wantRE = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

type want struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

// Run loads dir (a module root) with the given package patterns, applies
// the analyzers, and matches diagnostics against the // want comments of
// every loaded non-stdlib file.
func Run(t *testing.T, dir string, analyzers []*analysis.Analyzer, patterns ...string) {
	t.Helper()
	prog, err := load.Load(dir, patterns...)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	diags, err := analysis.Run(prog, analyzers, nil)
	if err != nil {
		t.Fatalf("run analyzers: %v", err)
	}

	var wants []*want
	for _, pkg := range prog.Packages {
		if pkg.Standard {
			continue
		}
		for _, f := range pkg.Syntax {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					wants = append(wants, parseWants(prog.Fset, c.Pos(), c.Text)...)
				}
			}
		}
	}

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.used || w.file != d.Position.Filename || w.line != d.Position.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

// parseWants extracts the want expectations from one comment.
func parseWants(fset *token.FileSet, pos token.Pos, text string) []*want {
	body := strings.TrimPrefix(text, "//")
	idx := strings.Index(body, "want ")
	if idx < 0 {
		return nil
	}
	p := fset.Position(pos)
	var out []*want
	for _, m := range wantRE.FindAllStringSubmatch(body[idx+len("want "):], -1) {
		pat := m[1]
		if pat == "" {
			pat = m[2]
		}
		re, err := regexp.Compile(pat)
		if err != nil {
			// A malformed pattern should fail loudly at match time.
			re = regexp.MustCompile(regexp.QuoteMeta(pat))
		}
		out = append(out, &want{file: p.Filename, line: p.Line, re: re})
	}
	return out
}
