// Package exhaustivemode checks mode-string switches against the
// canonical mode lists in internal/modes. A switch annotated
//
//	//gvad:modes Serving
//	//gvad:modes CLI except hotsax,brute
//
// must have a constant-string case for every mode in the named list
// (minus the except clause); cases naming modes outside the list are
// flagged too. Empty-string cases (the default-mode fallback) are
// ignored. The lists themselves are harvested as session facts from any
// package named "modes": every package-level `var X = []string{...}`
// whose elements resolve to string constants becomes a checkable set, so
// adding a mode to the list without updating an annotated switch — in
// cmd/gva or internal/server — fails the lint run.
package exhaustivemode

import (
	"go/ast"
	"go/constant"
	"sort"
	"strings"

	"grammarviz/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "exhaustivemode",
	Doc: "checks //gvad:modes-annotated switches for exhaustive coverage " +
		"of the canonical mode lists from the modes package",
	Run: run,
}

// Directive annotates a switch with the mode set it must cover.
const Directive = "//gvad:modes"

const sessionKey = "exhaustivemode.sets"

// directive is one parsed //gvad:modes comment.
type directive struct {
	set    string
	except map[string]bool
}

func getSets(s *analysis.Session) map[string][]string {
	if v, ok := s.Get(sessionKey).(map[string][]string); ok {
		return v
	}
	v := map[string][]string{}
	s.Set(sessionKey, v)
	return v
}

func run(pass *analysis.Pass) error {
	sets := getSets(pass.Session)
	if pass.Pkg.Name() == "modes" {
		harvest(pass, sets)
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		checkFile(pass, sets, f)
	}
	return nil
}

// harvest records every package-level []string variable whose elements
// are string constants as a checkable mode set.
func harvest(pass *analysis.Pass, sets map[string][]string) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i >= len(vs.Values) {
						break
					}
					lit, ok := ast.Unparen(vs.Values[i]).(*ast.CompositeLit)
					if !ok {
						continue
					}
					var elems []string
					complete := len(lit.Elts) > 0
					for _, e := range lit.Elts {
						tv, ok := pass.TypesInfo.Types[e]
						if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
							complete = false
							break
						}
						elems = append(elems, constant.StringVal(tv.Value))
					}
					if complete {
						sets[name.Name] = elems
					}
				}
			}
		}
	}
}

// directivesByLine parses the file's //gvad:modes comments, keyed by the
// line the comment sits on.
func directivesByLine(pass *analysis.Pass, f *ast.File) map[int]directive {
	out := map[int]directive{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			if !strings.HasPrefix(text, Directive+" ") {
				continue
			}
			fields := strings.Fields(strings.TrimPrefix(text, Directive))
			if len(fields) == 0 {
				continue
			}
			d := directive{set: fields[0], except: map[string]bool{}}
			if len(fields) >= 3 && fields[1] == "except" {
				for _, m := range strings.Split(fields[2], ",") {
					if m = strings.TrimSpace(m); m != "" {
						d.except[m] = true
					}
				}
			}
			out[pass.Fset.Position(c.Pos()).Line] = d
		}
	}
	return out
}

func checkFile(pass *analysis.Pass, sets map[string][]string, f *ast.File) {
	dirs := directivesByLine(pass, f)
	if len(dirs) == 0 {
		return
	}
	ast.Inspect(f, func(n ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok {
			return true
		}
		line := pass.Fset.Position(sw.Pos()).Line
		d, ok := dirs[line-1]
		if !ok {
			d, ok = dirs[line]
		}
		if !ok {
			return true
		}
		canonical, known := sets[d.set]
		if !known {
			pass.Reportf(sw.Pos(), "unknown mode set %q in //gvad:modes; "+
				"expected a []string list from the modes package", d.set)
			return true
		}
		checkSwitch(pass, sw, d, canonical)
		return true
	})
}

func checkSwitch(pass *analysis.Pass, sw *ast.SwitchStmt, d directive, canonical []string) {
	covered := map[string]bool{}
	inSet := map[string]bool{}
	for _, m := range canonical {
		inSet[m] = true
	}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			tv, ok := pass.TypesInfo.Types[e]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				continue
			}
			name := constant.StringVal(tv.Value)
			if name == "" {
				continue // the empty-mode default fallback
			}
			covered[name] = true
			if !inSet[name] && !d.except[name] {
				pass.Reportf(e.Pos(), "case %q is not in modes.%s; stale mode or missing "+
					"list entry", name, d.set)
			}
		}
	}
	var missing []string
	for _, m := range canonical {
		if !covered[m] && !d.except[m] {
			missing = append(missing, m)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		pass.Reportf(sw.Pos(), "switch does not handle mode(s) %s from modes.%s; "+
			"add cases or an except clause", strings.Join(missing, ", "), d.set)
	}
}
