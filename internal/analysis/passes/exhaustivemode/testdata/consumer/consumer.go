// Package consumer exercises the //gvad:modes switch checks.
package consumer

import "em/modes"

// Exhaustive covers the whole serving set.
func Exhaustive(mode string) bool {
	//gvad:modes Serving
	switch mode {
	case modes.RRA, modes.Density, modes.HOTSAX:
		return true
	case "":
		return true // empty selects the default; not a mode name
	default:
		return false
	}
}

// MissingCase forgot hotsax.
func MissingCase(mode string) bool {
	//gvad:modes Serving
	switch mode { // want `switch does not handle mode\(s\) hotsax from modes.Serving`
	case modes.RRA, modes.Density:
		return true
	default:
		return false
	}
}

// StaleCase names a mode the serving list does not contain.
func StaleCase(mode string) bool {
	//gvad:modes Serving
	switch mode {
	case modes.RRA, modes.Density, modes.HOTSAX:
		return true
	case modes.Brute: // want `case "brute" is not in modes.Serving`
		return true
	default:
		return false
	}
}

// ExceptClause deliberately narrows: brute is handled elsewhere.
func ExceptClause(mode string) bool {
	//gvad:modes CLI except brute
	switch mode {
	case modes.RRA, modes.Density, modes.HOTSAX:
		return true
	default:
		return false
	}
}

// ExceptExtra allows an out-of-set label through the except clause.
func ExceptExtra(mode string) int {
	//gvad:modes Serving except stream
	switch mode {
	case modes.Density, "stream":
		return 1
	case modes.RRA, modes.HOTSAX:
		return 3
	default:
		return 3
	}
}

// UnknownSet names a list that was never harvested.
func UnknownSet(mode string) bool {
	//gvad:modes notHarvested
	switch mode { // want `unknown mode set "notHarvested"`
	case modes.RRA:
		return true
	default:
		return false
	}
}

// Unannotated switches are not checked.
func Unannotated(mode string) bool {
	switch mode {
	case modes.RRA:
		return true
	default:
		return false
	}
}

// Allowlisted carries a reviewed suppression.
func Allowlisted(mode string) bool {
	//gvad:modes Serving
	switch mode { //gvad:ignore exhaustivemode fixture for the allowlisted-negative path
	case modes.RRA:
		return true
	default:
		return false
	}
}
