module em

go 1.22
