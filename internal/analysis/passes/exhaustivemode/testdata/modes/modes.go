// Package modes mirrors the repo's canonical mode lists for the
// exhaustivemode fixtures.
package modes

const (
	RRA     = "rra"
	Density = "density"
	HOTSAX  = "hotsax"
	Brute   = "brute"
)

var Serving = []string{RRA, Density, HOTSAX}

var CLI = []string{RRA, Density, HOTSAX, Brute}

// notHarvested has a non-constant element and is not a checkable set.
var notHarvested = []string{RRA, pick()}

func pick() string { return Density }
