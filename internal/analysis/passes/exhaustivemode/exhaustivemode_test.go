package exhaustivemode_test

import (
	"testing"

	"grammarviz/internal/analysis"
	"grammarviz/internal/analysis/analysistest"
	"grammarviz/internal/analysis/passes/exhaustivemode"
)

func TestExhaustivemode(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{exhaustivemode.Analyzer}, "./...")
}
