module pr

go 1.22
