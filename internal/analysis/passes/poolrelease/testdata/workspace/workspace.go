// Package workspace is a minimal stand-in for the repo's pool; the pass
// recognizes Get/Put by package and function name, and exempts the
// implementing package itself.
package workspace

// Workspace is the pooled scratch object.
type Workspace struct{ Buf []int }

// Get checks a workspace out of the pool.
func Get() *Workspace { return &Workspace{} }

// Put returns a workspace to the pool.
func Put(ws *Workspace) { _ = ws }

// Kernel is the pooled distance-kernel scratch.
type Kernel struct{ QNorm []float64 }

// GetKernel checks a kernel scratch out of the pool.
func GetKernel() *Kernel { return &Kernel{} }

// PutKernel returns a kernel scratch to the pool.
func PutKernel(k *Kernel) { _ = k }
