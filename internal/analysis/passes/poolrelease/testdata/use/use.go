// Package use exercises the poolrelease contract shapes.
package use

import "pr/workspace"

// Deferred is the standard shape: defer covers every path at once.
func Deferred() int {
	ws := workspace.Get()
	defer workspace.Put(ws)
	return len(ws.Buf)
}

// DeferredClosure releases inside a deferred closure.
func DeferredClosure() int {
	ws := workspace.Get()
	defer func() { workspace.Put(ws) }()
	return len(ws.Buf)
}

// VarDecl binds the checkout through a var declaration.
func VarDecl() int {
	var ws = workspace.Get()
	defer workspace.Put(ws)
	return len(ws.Buf)
}

// Leak never releases; the fall-off-the-end path is flagged.
func Leak() {
	ws := workspace.Get()
	_ = ws
} // want `return without releasing the workspace`

// LeakReturn never releases; the explicit return is flagged.
func LeakReturn() int {
	ws := workspace.Get()
	return len(ws.Buf) // want `return without releasing the workspace`
}

// MultiPath releases on one path only; the uncovered return is flagged.
func MultiPath(b bool) int {
	ws := workspace.Get()
	if b {
		workspace.Put(ws)
		return 1
	}
	return 2 // want `return without releasing the workspace`
}

// MultiPathClean releases on every path — the explicit multi-return form.
func MultiPathClean(b bool) int {
	ws := workspace.Get()
	if b {
		workspace.Put(ws)
		return 1
	}
	workspace.Put(ws)
	return 2
}

// Escape hands the pooled workspace to the caller, moving the release
// obligation out of the analyzer's sight; the uncovered return is flagged
// too.
func Escape() *workspace.Workspace {
	ws := workspace.Get()
	return ws // want `escapes its checkout scope` `return without releasing the workspace`
}

// New returns a fresh workspace, not a pool checkout; constructors are
// not escapes.
func New() *workspace.Workspace {
	return &workspace.Workspace{}
}

// Discard drops the checkout on the floor.
func Discard() {
	workspace.Get() // want `not bound to a variable`
}

// Allowlisted leaks but carries a reviewed suppression on the line above
// the virtual fall-off-the-end return.
func Allowlisted() {
	ws := workspace.Get()
	_ = ws
	//gvad:ignore poolrelease fixture for the allowlisted-negative path
}

// KernelDeferred: the GetKernel/PutKernel pair follows the same contract
// as Get/Put.
func KernelDeferred() int {
	kw := workspace.GetKernel()
	defer workspace.PutKernel(kw)
	return len(kw.QNorm)
}

// KernelLeak never releases the kernel scratch.
func KernelLeak() {
	kw := workspace.GetKernel()
	_ = kw
} // want `return without releasing the workspace`

// BothKinds holds a workspace and a kernel scratch at once; pairing is by
// variable, so releasing only one flags the other.
func BothKinds(b bool) int {
	ws := workspace.Get()
	defer workspace.Put(ws)
	kw := workspace.GetKernel()
	if b {
		workspace.PutKernel(kw)
		return 1
	}
	return 2 // want `return without releasing the workspace`
}

// BranchBoth releases on both arms before a shared return — the lexical
// analyzer flagged this (the Puts sit in sibling blocks); the
// flow-sensitive one proves every path released.
func BranchBoth(b bool) int {
	ws := workspace.Get()
	if b {
		workspace.Put(ws)
	} else {
		workspace.Put(ws)
	}
	return 1
}

// LoopEach checks out and releases per iteration; the fall-off path
// leaves the loop with nothing held.
func LoopEach(n int) {
	for i := 0; i < n; i++ {
		ws := workspace.Get()
		workspace.Put(ws)
	}
}

// Rebind overwrites a variable that still holds a checkout: the first
// workspace becomes unreleasable even though the second is Put.
func Rebind() {
	ws := workspace.Get()
	ws = workspace.Get() // want `rebinds ws`
	workspace.Put(ws)
}

// SwitchLeak releases on one arm and the fall-through path but not the
// other arm.
func SwitchLeak(x int) int {
	ws := workspace.Get()
	switch x {
	case 1:
		workspace.Put(ws)
		return 1
	case 2:
		return 2 // want `return without releasing the workspace`
	}
	workspace.Put(ws)
	return 0
}

// ClosureOwn: a function literal owns its obligations separately from
// its enclosing function.
func ClosureOwn() func() {
	return func() {
		ws := workspace.Get()
		_ = ws
	} // want `return without releasing the workspace`
}

// LoopCarriedLeak: the continue path skips the Put, so the next
// iteration's Get rebinds a held checkout and the loop exit still holds
// one.
func LoopCarriedLeak(n int) {
	for i := 0; i < n; i++ {
		ws := workspace.Get() // want `rebinds ws`
		if i == 0 {
			continue
		}
		workspace.Put(ws)
	}
} // want `return without releasing the workspace`
