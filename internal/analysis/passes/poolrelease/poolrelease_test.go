package poolrelease_test

import (
	"testing"

	"grammarviz/internal/analysis"
	"grammarviz/internal/analysis/analysistest"
	"grammarviz/internal/analysis/passes/poolrelease"
)

func TestPoolrelease(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{poolrelease.Analyzer}, "./...")
}
