// Package poolrelease verifies the workspace-pool contract: a Workspace
// checked out with workspace.Get must be returned with workspace.Put on
// every path out of the checking-out function — otherwise steady-state
// serving degrades from pooled reuse back to per-request allocation (a
// leak the AllocsPerRun tests only catch on the paths they happen to
// exercise).
//
// The accepted shapes are:
//
//   - defer workspace.Put(ws) (directly or inside a deferred closure) —
//     covers every return and panic path at once, and is the idiom the
//     repo standardizes on (core.AnalyzeCtx);
//   - an explicit workspace.Put(ws) that lexically precedes the return and
//     sits in a block enclosing it, for every return after the Get — the
//     multi-return form.
//
// Escapes are flagged separately: returning the workspace or storing it
// into a field/global moves the release obligation somewhere the analyzer
// cannot see, which the pool contract forbids (workspaces must not outlive
// the analysis that checked them out).
//
// Get/Put recognition is by package name ("workspace") and function name,
// so the analyzer works on the repo and on its testdata packages alike;
// the workspace package itself is exempt (it implements the pool). The
// same contract covers every checkout/release pair the workspace package
// exports: Get/Put for analysis workspaces and GetKernel/PutKernel for
// the distance kernel's pinned-query scratch. Pairing is by variable, so
// a function may hold both kinds at once.
package poolrelease

import (
	"go/ast"
	"go/token"
	"go/types"

	"grammarviz/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "poolrelease",
	Doc: "checks that every workspace.Get has a matching workspace.Put on all " +
		"paths (defer, or an explicit Put before each return)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "workspace" {
		return nil
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd)
			}
		}
	}
	return nil
}

// checkoutNames and releaseNames are the pool's paired entry points: a
// call to any checkout name creates a release obligation discharged only
// by the matching variable reaching any release name (the types keep the
// pairs honest — a *Kernel cannot be passed to Put).
var (
	checkoutNames = map[string]bool{"Get": true, "GetKernel": true}
	releaseNames  = map[string]bool{"Put": true, "PutKernel": true}
)

// isPoolCall reports whether call is workspace.<f>(...) with f's name in
// names.
func isPoolCall(pass *analysis.Pass, call *ast.CallExpr, names map[string]bool) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	f, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || !names[f.Name()] || f.Pkg() == nil {
		return false
	}
	return f.Pkg().Name() == "workspace"
}

type putSite struct {
	pos   token.Pos
	block *ast.BlockStmt // innermost enclosing block
}

type returnSite struct {
	pos    token.Pos
	blocks map[*ast.BlockStmt]bool // all enclosing blocks
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	type checkout struct {
		pos token.Pos
		obj *types.Var // nil when the result is not bound to a variable
	}
	var (
		gets     []checkout
		puts     = map[*types.Var][]putSite{}
		deferred = map[*types.Var]bool{}
		returns  []returnSite
		escapes  = map[*types.Var]token.Pos{}
		stack    []ast.Node
	)

	innermostBlock := func() *ast.BlockStmt {
		for i := len(stack) - 1; i >= 0; i-- {
			if b, ok := stack[i].(*ast.BlockStmt); ok {
				return b
			}
		}
		return fd.Body
	}
	enclosingBlocks := func() map[*ast.BlockStmt]bool {
		m := map[*ast.BlockStmt]bool{}
		for _, n := range stack {
			if b, ok := n.(*ast.BlockStmt); ok {
				m[b] = true
			}
		}
		return m
	}
	varOf := func(e ast.Expr) *types.Var {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		v, _ := pass.TypesInfo.Uses[id].(*types.Var)
		if v == nil {
			v, _ = pass.TypesInfo.Defs[id].(*types.Var)
		}
		return v
	}
	recordPut := func(call *ast.CallExpr, isDefer bool) {
		if len(call.Args) != 1 {
			return
		}
		if v := varOf(call.Args[0]); v != nil {
			if isDefer {
				deferred[v] = true
			} else {
				puts[v] = append(puts[v], putSite{pos: call.Pos(), block: innermostBlock()})
			}
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isPoolCall(pass, call, checkoutNames) {
					continue
				}
				var v *types.Var
				if i < len(n.Lhs) {
					v = varOf(n.Lhs[i])
				}
				gets = append(gets, checkout{pos: call.Pos(), obj: v})
			}
		case *ast.ValueSpec:
			for i, rhs := range n.Values {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isPoolCall(pass, call, checkoutNames) {
					continue
				}
				var v *types.Var
				if i < len(n.Names) {
					v = varOf(n.Names[i])
				}
				gets = append(gets, checkout{pos: call.Pos(), obj: v})
			}
		case *ast.DeferStmt:
			if isPoolCall(pass, n.Call, releaseNames) {
				recordPut(n.Call, true)
			} else if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if c, ok := m.(*ast.CallExpr); ok && isPoolCall(pass, c, releaseNames) {
						recordPut(c, true)
					}
					return true
				})
			}
		case *ast.CallExpr:
			if isPoolCall(pass, n, releaseNames) {
				// Non-deferred Put (deferred ones are handled above and do
				// not re-enter here as statements of interest: recording
				// them twice is harmless since deferred wins).
				recordPut(n, false)
			} else if isPoolCall(pass, n, checkoutNames) {
				// A Get whose result is not bound by an assignment cannot
				// be released.
				if len(stack) < 2 {
					break
				}
				switch stack[len(stack)-2].(type) {
				case *ast.AssignStmt, *ast.ValueSpec:
					// handled by the assignment cases above
				default:
					pass.Reportf(n.Pos(),
						"workspace.Get result is not bound to a variable and can never be released")
				}
			}
		case *ast.ReturnStmt:
			returns = append(returns, returnSite{pos: n.Pos(), blocks: enclosingBlocks()})
			for _, res := range n.Results {
				if v := varOf(res); v != nil && isWorkspacePtr(v.Type()) {
					if _, dup := escapes[v]; !dup {
						escapes[v] = res.Pos()
					}
				}
			}
		}
		return true
	})

	// A function whose body can fall off the end is a path out too.
	if n := len(fd.Body.List); n == 0 || !terminates(fd.Body.List[n-1]) {
		returns = append(returns, returnSite{
			pos:    fd.Body.Rbrace,
			blocks: map[*ast.BlockStmt]bool{fd.Body: true},
		})
	}

	// Escapes only matter for pool-checked-out workspaces: a constructor
	// returning a fresh (non-pooled) Workspace is fine.
	for _, get := range gets {
		if get.obj == nil {
			continue
		}
		if pos, ok := escapes[get.obj]; ok {
			pass.Reportf(pos, "pooled workspace escapes its checkout scope; the pool "+
				"contract requires Put in the function that called Get")
		}
	}

	for _, get := range gets {
		if get.obj == nil {
			pass.Reportf(get.pos, "workspace.Get result is discarded; the workspace "+
				"can never be released")
			continue
		}
		if deferred[get.obj] {
			continue
		}
		for _, ret := range returns {
			if ret.pos < get.pos {
				continue
			}
			if !coveredBy(puts[get.obj], get.pos, ret) {
				pass.Reportf(ret.pos,
					"return without releasing the workspace checked out at %s; "+
						"defer workspace.Put(%s) after Get, or Put on every path",
					pass.Fset.Position(get.pos), get.obj.Name())
			}
		}
	}
}

// coveredBy reports whether some Put after the Get lexically precedes the
// return from a block that encloses it (a lexical-dominance approximation:
// a Put inside a branch the return is not part of does not count).
func coveredBy(puts []putSite, getPos token.Pos, ret returnSite) bool {
	for _, p := range puts {
		if p.pos > getPos && p.pos < ret.pos && ret.blocks[p.block] {
			return true
		}
	}
	return false
}

// terminates reports whether a statement definitely transfers control out
// of the function (the approximation only needs return and panic; anything
// else keeps the virtual fall-off-the-end return).
func terminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				return id.Name == "panic"
			}
		}
	}
	return false
}

// isWorkspacePtr reports whether t is a pointer to one of the workspace
// package's pooled types (by name, so testdata packages participate).
func isWorkspacePtr(t types.Type) bool {
	ptr, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj() == nil || named.Obj().Pkg() == nil {
		return false
	}
	name := named.Obj().Name()
	return (name == "Workspace" || name == "Kernel") && named.Obj().Pkg().Name() == "workspace"
}
