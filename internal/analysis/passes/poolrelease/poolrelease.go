// Package poolrelease verifies the workspace-pool contract: a Workspace
// checked out with workspace.Get must be returned with workspace.Put on
// every path out of the checking-out function — otherwise steady-state
// serving degrades from pooled reuse back to per-request allocation (a
// leak the AllocsPerRun tests only catch on the paths they happen to
// exercise).
//
// The check is flow-sensitive: each function body (and each function
// literal, which owns its obligations separately) is lowered to a control
// -flow graph (internal/analysis/cfg) and a forward may-analysis tracks
// the set of held checkouts per path. A diagnostic fires at every return
// — and at the implicit fall-off-the-end return — that a held checkout
// can reach without a release. The accepted shapes are:
//
//   - defer workspace.Put(ws) (directly or inside a deferred closure) —
//     covers every return and panic path at once, and is the idiom the
//     repo standardizes on (core.AnalyzeCtx);
//   - an explicit workspace.Put(ws) on every path to every return — the
//     multi-return form, now path-precise: a Put inside one branch
//     discharges only the paths through that branch.
//
// Rebinding a variable that still holds a checkout (ws = workspace.Get()
// twice without a Put between) is flagged at the second Get: the first
// workspace becomes unreleasable. Escapes are flagged separately:
// returning the workspace moves the release obligation somewhere the
// analyzer cannot see, which the pool contract forbids (workspaces must
// not outlive the analysis that checked them out).
//
// Get/Put recognition is by package name ("workspace") and function name,
// so the analyzer works on the repo and on its testdata packages alike;
// the workspace package itself is exempt (it implements the pool). The
// same contract covers every checkout/release pair the workspace package
// exports: Get/Put for analysis workspaces and GetKernel/PutKernel for
// the distance kernel's pinned-query scratch. Pairing is by variable, so
// a function may hold both kinds at once.
//
// Known approximation: a conditionally registered defer (defer inside a
// branch) counts as covering every path, as it always has — flow-aware
// defer facts are not worth the complexity for a repo that never
// conditions a release.
package poolrelease

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"grammarviz/internal/analysis"
	"grammarviz/internal/analysis/cfg"
)

var Analyzer = &analysis.Analyzer{
	Name: "poolrelease",
	Doc: "checks that every workspace.Get has a matching workspace.Put on all " +
		"paths (defer, or an explicit Put before each return)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "workspace" {
		return nil
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkBody(pass, fd.Body)
			// Function literals own their obligations separately: the
			// contract wants Put in the function that called Get.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkBody(pass, lit.Body)
				}
				return true
			})
		}
	}
	return nil
}

// checkoutNames and releaseNames are the pool's paired entry points: a
// call to any checkout name creates a release obligation discharged only
// by the matching variable reaching any release name (the types keep the
// pairs honest — a *Kernel cannot be passed to Put).
var (
	checkoutNames = map[string]bool{"Get": true, "GetKernel": true}
	releaseNames  = map[string]bool{"Put": true, "PutKernel": true}
)

// isPoolCall reports whether call is workspace.<f>(...) with f's name in
// names.
func isPoolCall(pass *analysis.Pass, call *ast.CallExpr, names map[string]bool) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	f, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || !names[f.Name()] || f.Pkg() == nil {
		return false
	}
	return f.Pkg().Name() == "workspace"
}

// fact is the may-set of held checkouts at a program point: variable →
// position of the Get that bound it.
type fact map[*types.Var]token.Pos

// lattice is the forward may-analysis over held checkouts. Variables with
// a deferred release never enter the fact: their obligation is discharged
// on every exit path by the defer.
type lattice struct {
	pass     *analysis.Pass
	deferred map[*types.Var]bool
}

func (l *lattice) Boundary() fact { return fact{} }

func (l *lattice) Merge(a, b fact) fact {
	out := make(fact, len(a)+len(b))
	for v, p := range a {
		out[v] = p
	}
	for v, p := range b {
		if q, ok := out[v]; !ok || p < q {
			out[v] = p
		}
	}
	return out
}

func (l *lattice) Equal(a, b fact) bool {
	if len(a) != len(b) {
		return false
	}
	for v, p := range a {
		if q, ok := b[v]; !ok || q != p {
			return false
		}
	}
	return true
}

func (l *lattice) Transfer(b *cfg.Block, f fact) fact {
	out := make(fact, len(f))
	for v, p := range f {
		out[v] = p
	}
	for _, n := range b.Nodes {
		out = l.step(out, n, nil)
	}
	return out
}

// step flows one node, mutating and returning f. When report is non-nil
// (the post-fixpoint sweep) it also emits the node-anchored diagnostics:
// unbound/discarded checkouts and rebinding over a held checkout.
func (l *lattice) step(f fact, n ast.Node, report func(pos token.Pos, format string, args ...any)) fact {
	pass := l.pass
	handled := map[*ast.CallExpr]bool{}

	bind := func(call *ast.CallExpr, lhs ast.Expr) {
		handled[call] = true
		v := varOf(pass, lhs)
		if v == nil {
			if report != nil {
				report(call.Pos(), "workspace.Get result is discarded; the workspace "+
					"can never be released")
			}
			return
		}
		if l.deferred[v] {
			return // discharged on every exit by the defer
		}
		if prev, held := f[v]; held && report != nil {
			report(call.Pos(), "workspace checkout rebinds %s, which still holds the "+
				"unreleased checkout from %s", v.Name(), pass.Fset.Position(prev))
		}
		f[v] = call.Pos()
	}

	switch n := n.(type) {
	case *ast.AssignStmt:
		for i, rhs := range n.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isPoolCall(pass, call, checkoutNames) {
				continue
			}
			var lhs ast.Expr
			if i < len(n.Lhs) {
				lhs = n.Lhs[i]
			}
			bind(call, lhs)
		}
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			break
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, rhs := range vs.Values {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isPoolCall(pass, call, checkoutNames) {
					continue
				}
				var lhs ast.Expr
				if i < len(vs.Names) {
					lhs = vs.Names[i]
				}
				bind(call, lhs)
			}
		}
	}

	// Releases and stray checkouts anywhere inside the node. Function
	// literals are skipped: they are analyzed as their own bodies.
	analysis.InspectSkippingFuncLits(n, func(m ast.Node) {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return
		}
		if isPoolCall(pass, call, releaseNames) {
			if len(call.Args) == 1 {
				if v := varOf(pass, call.Args[0]); v != nil {
					delete(f, v)
				}
			}
			return
		}
		if isPoolCall(pass, call, checkoutNames) && !handled[call] {
			if report != nil {
				report(call.Pos(), "workspace.Get result is not bound to a variable "+
					"and can never be released")
			}
		}
	})
	return f
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	g := cfg.New(body)
	lat := &lattice{pass: pass, deferred: deferredReleases(pass, g)}
	res := cfg.Forward[fact](g, lat)

	// checkedOut: every variable bound from a checkout anywhere in this
	// body (escape reporting keys off it, path-insensitively, as before).
	checkedOut := map[*types.Var]bool{}
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			ast.Inspect(n, func(m ast.Node) bool {
				if _, ok := m.(*ast.FuncLit); ok {
					return false
				}
				call, ok := m.(*ast.CallExpr)
				if !ok || !isPoolCall(pass, call, checkoutNames) {
					return true
				}
				// Find the binding through the enclosing statement forms.
				switch n := n.(type) {
				case *ast.AssignStmt:
					for i, rhs := range n.Rhs {
						if ast.Unparen(rhs) == call && i < len(n.Lhs) {
							if v := varOf(pass, n.Lhs[i]); v != nil {
								checkedOut[v] = true
							}
						}
					}
				case *ast.DeclStmt:
					if gd, ok := n.Decl.(*ast.GenDecl); ok {
						for _, spec := range gd.Specs {
							if vs, ok := spec.(*ast.ValueSpec); ok {
								for i, rhs := range vs.Values {
									if ast.Unparen(rhs) == call && i < len(vs.Names) {
										if v := varOf(pass, vs.Names[i]); v != nil {
											checkedOut[v] = true
										}
									}
								}
							}
						}
					}
				}
				return true
			})
		}
	}

	// Post-fixpoint sweep: walk each reachable block once with its entry
	// fact, reporting node-anchored findings, escapes, and leaks at
	// returns.
	escaped := map[*types.Var]bool{}
	reportLeaks := func(pos token.Pos, held fact) {
		type leak struct {
			v   *types.Var
			get token.Pos
		}
		var leaks []leak
		for v, get := range held {
			leaks = append(leaks, leak{v, get})
		}
		sort.Slice(leaks, func(i, j int) bool { return leaks[i].get < leaks[j].get })
		for _, lk := range leaks {
			pass.Reportf(pos,
				"return without releasing the workspace checked out at %s; "+
					"defer workspace.Put(%s) after Get, or Put on every path",
				pass.Fset.Position(lk.get), lk.v.Name())
		}
	}

	for _, b := range g.Blocks {
		in, reachable := res.In[b]
		if !reachable {
			continue
		}
		f := make(fact, len(in))
		for v, p := range in {
			f[v] = p
		}
		for _, n := range b.Nodes {
			f = lat.step(f, n, pass.Reportf)
			if ret, ok := n.(*ast.ReturnStmt); ok {
				for _, resExpr := range ret.Results {
					v := varOf(pass, resExpr)
					if v != nil && checkedOut[v] && isWorkspacePtr(v.Type()) && !escaped[v] {
						escaped[v] = true
						pass.Reportf(resExpr.Pos(), "pooled workspace escapes its checkout "+
							"scope; the pool contract requires Put in the function that called Get")
					}
				}
				reportLeaks(ret.Pos(), f)
			}
		}
	}

	// The implicit return: any reachable path that falls off the end of
	// the body while still holding a checkout leaks it.
	for _, b := range g.FallsOff() {
		if out, ok := res.Out[b]; ok {
			reportLeaks(body.Rbrace, out)
		}
	}
}

// deferredReleases collects the variables released by a defer — directly
// (defer workspace.Put(ws)) or inside a deferred closure.
func deferredReleases(pass *analysis.Pass, g *cfg.Graph) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	record := func(call *ast.CallExpr) {
		if len(call.Args) == 1 {
			if v := varOf(pass, call.Args[0]); v != nil {
				out[v] = true
			}
		}
	}
	for _, d := range g.Defers {
		if isPoolCall(pass, d.Call, releaseNames) {
			record(d.Call)
		} else if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if c, ok := m.(*ast.CallExpr); ok && isPoolCall(pass, c, releaseNames) {
					record(c)
				}
				return true
			})
		}
	}
	return out
}

// varOf resolves an expression to the variable it names, or nil.
func varOf(pass *analysis.Pass, e ast.Expr) *types.Var {
	if e == nil {
		return nil
	}
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := pass.TypesInfo.Uses[id].(*types.Var)
	if v == nil {
		v, _ = pass.TypesInfo.Defs[id].(*types.Var)
	}
	return v
}

// isWorkspacePtr reports whether t is a pointer to one of the workspace
// package's pooled types (by name, so testdata packages participate).
func isWorkspacePtr(t types.Type) bool {
	ptr, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj() == nil || named.Obj().Pkg() == nil {
		return false
	}
	name := named.Obj().Name()
	return (name == "Workspace" || name == "Kernel") && named.Obj().Pkg().Name() == "workspace"
}
