package nobarego_test

import (
	"testing"

	"grammarviz/internal/analysis"
	"grammarviz/internal/analysis/analysistest"
	"grammarviz/internal/analysis/passes/nobarego"
)

func TestNobarego(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{nobarego.Analyzer}, "./...")
}
