// Package nobarego flags bare `go` statements. Every goroutine of the
// analysis pipeline must be spawned through worker.Group (internal/worker),
// which contains panics into *PanicError and cancels siblings on first
// failure — a bare `go` silently opts out of both guarantees, and a single
// panicking worker would crash the daemon. The check covers internal/...
// and cmd/... packages; internal/worker itself (the one place allowed to
// say `go`) and _test.go files are exempt.
package nobarego

import (
	"go/ast"
	"strings"

	"grammarviz/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "nobarego",
	Doc: "flags bare go statements outside internal/worker; goroutines must " +
		"be spawned through worker.Group so panics are contained and siblings cancel",
	Run: run,
}

// inScope reports whether the package path is policed: internal/... and
// cmd/... trees, except the worker package that implements the discipline.
func inScope(path string) bool {
	if path == "grammarviz/internal/worker" || strings.HasSuffix(path, "/internal/worker") {
		return false
	}
	return strings.Contains(path, "/internal/") || strings.Contains(path, "/cmd/") ||
		strings.HasPrefix(path, "internal/") || strings.HasPrefix(path, "cmd/")
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(),
					"bare go statement: spawn goroutines through worker.Group "+
						"(internal/worker) for panic containment and sibling cancellation")
			}
			return true
		})
	}
	return nil
}
