// Package free sits outside the internal/... and cmd/... trees the pass
// polices.
package free

// Spawn is out of scope for nobarego.
func Spawn() {
	go func() {}()
}
