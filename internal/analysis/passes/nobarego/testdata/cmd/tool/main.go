// Command tool shows that cmd/... trees are in scope.
package main

func main() {
	go func() {}() // want `bare go statement`
}
