// Package worker implements the goroutine discipline and is the one
// package allowed to say go.
package worker

// Go spawns directly; the package is exempt.
func Go(f func()) {
	go f()
}
