// Package x exercises the nobarego shapes inside a policed internal tree.
package x

// Spawn uses a bare go statement.
func Spawn() {
	go work() // want `bare go statement`
}

// SpawnClosure hides the go statement inside a closure; the pass walks
// function literals too.
func SpawnClosure() func() {
	return func() {
		go work() // want `bare go statement`
	}
}

// SpawnAllowed carries a reviewed suppression and stays silent.
func SpawnAllowed() {
	//gvad:ignore nobarego fixture for the allowlisted-negative path
	go work()
}

func work() {}
