// Package lockdiscipline enforces the repo's mutex discipline with a
// flow-sensitive analysis over the CFG (internal/analysis/cfg). Per
// function body (function literals are analyzed as their own bodies), a
// forward may-analysis tracks which lock instances are held on some path,
// and checks:
//
//   - pairing: every sync.Mutex/RWMutex Lock has a matching Unlock on
//     every path to every return (a deferred unlock — direct or inside a
//     deferred closure — discharges all paths at once);
//   - no double-lock: re-acquiring a held instance deadlocks;
//   - RWMutex up/downgrade misuse: Lock while read-held (upgrade),
//     RLock while write-held (downgrade), recursive RLock (deadlocks
//     against a waiting writer), and Unlock/RUnlock mode mismatches;
//   - declared lock order: `//gvad:lockorder A < B [< C]` comments
//     declare that class A is acquired before class B when both are
//     held. Acquiring A while holding B — directly, or transitively
//     through a static call — is a violation. Classes are written
//     pkg.Type.field (the struct type owning the mutex field, e.g.
//     server.sessionSupervisor.mu) or pkg.Type for embedded mutexes.
//
// A lock instance is identified by its receiver chain rooted at a
// variable (c.mu, s.sup.mu, sess.mu); receivers that are not
// variable-rooted selector chains (map/index elements, call results) are
// not tracked. TryLock is conditional by construction and is not
// tracked either. Unlock-of-unheld fires only in functions that also
// lock the same instance — a helper whose contract is "caller holds the
// lock" stays silent.
//
// The per-function acquisition summaries are session facts: the driver
// visits packages in dependency order, so a declared order in a package
// can catch violations that reach a dependency's locks through calls.
package lockdiscipline

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"grammarviz/internal/analysis"
	"grammarviz/internal/analysis/cfg"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockdiscipline",
	Doc: "checks Lock/Unlock pairing on all paths, double-lock, RWMutex " +
		"up/downgrade misuse, and declared //gvad:lockorder facts",
	Run: run,
}

// OrderDirective declares a lock-acquisition order between lock classes.
const OrderDirective = "//gvad:lockorder"

// lockMode distinguishes write and read acquisition.
type lockMode int

const (
	modeWrite lockMode = iota
	modeRead
)

func (m lockMode) String() string {
	if m == modeRead {
		return "read"
	}
	return "write"
}

// instKey identifies one lock instance: the variable the receiver chain
// roots at plus the field path ("mu", "sup.mu", "" for a promoted method
// on the root itself).
type instKey struct {
	root *types.Var
	path string
}

func (k instKey) String() string {
	if k.path == "" {
		return k.root.Name()
	}
	return k.root.Name() + "." + k.path
}

// held is one held lock instance.
type held struct {
	mode  lockMode
	pos   token.Pos // acquisition site
	class string    // ordering class, "" when unknown
}

// fact is the may-set of held lock instances at a program point.
type fact map[instKey]held

// lockOp is one recognized mutex operation at a call site.
type lockOp struct {
	call    *ast.CallExpr
	key     instKey
	keyOK   bool // receiver chain resolved to a variable root
	class   string
	acquire bool
	mode    lockMode
}

// summary is the per-function fact for cross-call order checking: the
// lock classes a function acquires directly, and its static callees.
type summary struct {
	acquires []string
	callees  []*types.Func
}

// state is the session-shared store.
type state struct {
	orders    map[string][]string // class → classes declared after it
	summaries map[*types.Func]*summary
}

const sessionKey = "lockdiscipline.state"

func getState(s *analysis.Session) *state {
	if v, ok := s.Get(sessionKey).(*state); ok {
		return v
	}
	v := &state{
		orders:    make(map[string][]string),
		summaries: make(map[*types.Func]*summary),
	}
	s.Set(sessionKey, v)
	return v
}

func run(pass *analysis.Pass) error {
	st := getState(pass.Session)
	collectOrders(pass, st)

	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				st.summaries[obj] = summarize(pass, fd.Body)
			}
			checkBody(pass, st, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkBody(pass, st, lit.Body)
				}
				return true
			})
		}
	}
	return nil
}

// collectOrders parses every //gvad:lockorder directive in the package's
// files into order edges.
func collectOrders(pass *analysis.Pass, st *state) {
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "gvad:lockorder") {
					continue
				}
				spec := strings.TrimSpace(strings.TrimPrefix(text, "gvad:lockorder"))
				parts := strings.Split(spec, "<")
				for i := 0; i+1 < len(parts); i++ {
					outer := strings.TrimSpace(parts[i])
					inner := strings.TrimSpace(parts[i+1])
					if outer == "" || inner == "" {
						continue
					}
					st.orders[outer] = append(st.orders[outer], inner)
				}
			}
		}
	}
}

// mustPrecede reports whether the declared order requires a to be
// acquired before b (a < b, transitively).
func (st *state) mustPrecede(a, b string) bool {
	if a == "" || b == "" || a == b {
		return false
	}
	seen := map[string]bool{}
	stack := []string{a}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, next := range st.orders[cur] {
			if next == b {
				return true
			}
			if !seen[next] {
				seen[next] = true
				stack = append(stack, next)
			}
		}
	}
	return false
}

// reachableAcquires returns the lock classes fn acquires directly or
// through its static callees (memo-free DFS with a visited set; function
// graphs are small).
func (st *state) reachableAcquires(fn *types.Func, visited map[*types.Func]bool) []string {
	if visited[fn] {
		return nil
	}
	visited[fn] = true
	sum := st.summaries[fn]
	if sum == nil {
		return nil
	}
	out := append([]string(nil), sum.acquires...)
	for _, callee := range sum.callees {
		out = append(out, st.reachableAcquires(callee, visited)...)
	}
	return out
}

// lockOpOf classifies call as a mutex operation, or returns ok=false.
func lockOpOf(pass *analysis.Pass, call *ast.CallExpr) (lockOp, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	var f *types.Func
	if s, ok := pass.TypesInfo.Selections[sel]; ok {
		f, _ = s.Obj().(*types.Func)
	} else {
		f, _ = pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	}
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "sync" {
		return lockOp{}, false
	}
	recv := f.Type().(*types.Signature).Recv()
	if recv == nil {
		return lockOp{}, false
	}
	op := lockOp{call: call}
	switch f.Name() {
	case "Lock":
		op.acquire, op.mode = true, modeWrite
	case "RLock":
		op.acquire, op.mode = true, modeRead
	case "Unlock":
		op.acquire, op.mode = false, modeWrite
	case "RUnlock":
		op.acquire, op.mode = false, modeRead
	default:
		return lockOp{}, false // TryLock and friends: conditional, untracked
	}
	op.key, op.keyOK = instanceOf(pass, sel.X)
	op.class = classOf(pass, sel.X)
	return op, true
}

// instanceOf resolves a lock receiver expression to its instance key: a
// selector chain rooted at a variable.
func instanceOf(pass *analysis.Pass, e ast.Expr) (instKey, bool) {
	var fields []string
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			v, _ := pass.TypesInfo.Uses[x].(*types.Var)
			if v == nil {
				v, _ = pass.TypesInfo.Defs[x].(*types.Var)
			}
			if v == nil {
				return instKey{}, false
			}
			return instKey{root: v, path: strings.Join(fields, ".")}, true
		case *ast.SelectorExpr:
			fields = append([]string{x.Sel.Name}, fields...)
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return instKey{}, false
		}
	}
}

// classOf derives the ordering class of a lock receiver: the named type
// owning the final mutex field, rendered pkg.Type.field — or pkg.Type
// for a mutex embedded in (or promoted to) the receiver itself.
func classOf(pass *analysis.Pass, e ast.Expr) string {
	e = ast.Unparen(e)
	if sel, ok := e.(*ast.SelectorExpr); ok {
		if name := namedOf(pass.TypesInfo.Types[sel.X].Type); name != "" {
			return name + "." + sel.Sel.Name
		}
		return ""
	}
	if tv, ok := pass.TypesInfo.Types[e]; ok {
		return namedOf(tv.Type)
	}
	if id, ok := e.(*ast.Ident); ok {
		if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok {
			return namedOf(v.Type())
		}
	}
	return ""
}

// namedOf renders the named type behind t (through pointers) as
// pkg.Type, or "".
func namedOf(t types.Type) string {
	if t == nil {
		return ""
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj() == nil || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Name() + "." + named.Obj().Name()
}

// summarize records the classes a function acquires and its static
// callees (for cross-call order checking). Function literal interiors
// count as part of the enclosing function here: a closure's acquisitions
// still happen under the caller's held set in the common synchronous
// cases, and over-approximating keeps the order check conservative.
func summarize(pass *analysis.Pass, body *ast.BlockStmt) *summary {
	sum := &summary{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if op, ok := lockOpOf(pass, call); ok {
			if op.acquire && op.class != "" {
				sum.acquires = append(sum.acquires, op.class)
			}
			return true
		}
		if callee := staticCallee(pass, call); callee != nil {
			sum.callees = append(sum.callees, callee)
		}
		return true
	})
	return sum
}

// staticCallee resolves a call to its static *types.Func target, or nil.
func staticCallee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		if s, ok := pass.TypesInfo.Selections[fun]; ok {
			f, _ := s.Obj().(*types.Func)
			if f != nil && f.Type().(*types.Signature).Recv() != nil &&
				types.IsInterface(f.Type().(*types.Signature).Recv().Type()) {
				return nil
			}
			return f
		}
		f, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// lattice is the forward may-analysis over held lock instances.
type lattice struct {
	pass *analysis.Pass
}

func (l *lattice) Boundary() fact { return fact{} }

func (l *lattice) Merge(a, b fact) fact {
	out := make(fact, len(a)+len(b))
	for k, h := range a {
		out[k] = h
	}
	for k, h := range b {
		if prev, ok := out[k]; !ok || h.pos < prev.pos {
			out[k] = h
		}
	}
	return out
}

func (l *lattice) Equal(a, b fact) bool {
	if len(a) != len(b) {
		return false
	}
	for k, h := range a {
		if o, ok := b[k]; !ok || o != h {
			return false
		}
	}
	return true
}

func (l *lattice) Transfer(b *cfg.Block, f fact) fact {
	out := make(fact, len(f))
	for k, h := range f {
		out[k] = h
	}
	for _, n := range b.Nodes {
		out = step(l.pass, out, n, nil)
	}
	return out
}

// step flows one node's lock operations through f. report is nil during
// fixpoint iteration and set during the post-fixpoint sweep.
func step(pass *analysis.Pass, f fact, n ast.Node, check func(op lockOp, f fact)) fact {
	if _, isDefer := n.(*ast.DeferStmt); isDefer {
		return f // deferred unlocks act at exit, not here
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return true
		}
		if _, ok := m.(*ast.FuncLit); ok {
			return false // literals are separate bodies
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		op, ok := lockOpOf(pass, call)
		if !ok || !op.keyOK {
			return true
		}
		if check != nil {
			check(op, f)
		}
		if op.acquire {
			f[op.key] = held{mode: op.mode, pos: call.Pos(), class: op.class}
		} else {
			delete(f, op.key)
		}
		return true
	})
	return f
}

func checkBody(pass *analysis.Pass, st *state, body *ast.BlockStmt) {
	g := cfg.New(body)
	lat := &lattice{pass: pass}
	res := cfg.Forward[fact](g, lat)

	deferredUnlocks := deferredUnlockSet(pass, g)

	// Instances this body locks anywhere: unlock-of-unheld only fires for
	// these, so "caller holds the lock" helpers stay silent.
	locksHere := map[instKey]bool{}
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			ast.Inspect(n, func(m ast.Node) bool {
				if _, ok := m.(*ast.FuncLit); ok {
					return false
				}
				if call, ok := m.(*ast.CallExpr); ok {
					if op, ok := lockOpOf(pass, call); ok && op.acquire && op.keyOK {
						locksHere[op.key] = true
					}
				}
				return true
			})
		}
	}

	check := func(op lockOp, f fact) {
		pos := op.call.Pos()
		if op.acquire {
			if h, isHeld := f[op.key]; isHeld {
				at := pass.Fset.Position(h.pos)
				switch {
				case h.mode == modeWrite && op.mode == modeWrite:
					pass.Reportf(pos, "%s locked again while already held (locked at %s); deadlock",
						op.key, at)
				case h.mode == modeRead && op.mode == modeWrite:
					pass.Reportf(pos, "write lock on %s while read-held (RLock at %s); "+
						"lock upgrade deadlocks", op.key, at)
				case h.mode == modeWrite && op.mode == modeRead:
					pass.Reportf(pos, "read lock on %s while write-held (Lock at %s); deadlock",
						op.key, at)
				case h.mode == modeRead && op.mode == modeRead:
					pass.Reportf(pos, "recursive read lock on %s (RLock at %s); deadlocks "+
						"against a waiting writer", op.key, at)
				}
			}
			// Declared order: acquiring op.class while holding a class it
			// must precede.
			for _, h := range f {
				if st.mustPrecede(op.class, h.class) {
					pass.Reportf(pos, "%s acquired while holding %s; declared lock order "+
						"requires %s before %s", op.class, h.class, op.class, h.class)
				}
			}
			return
		}
		h, isHeld := f[op.key]
		if !isHeld {
			if locksHere[op.key] {
				pass.Reportf(pos, "unlock of %s, which is not held on this path", op.key)
			}
			return
		}
		if h.mode == modeRead && op.mode == modeWrite {
			pass.Reportf(pos, "Unlock of %s, which is read-held (RLock at %s); use RUnlock",
				op.key, pass.Fset.Position(h.pos))
		} else if h.mode == modeWrite && op.mode == modeRead {
			pass.Reportf(pos, "RUnlock of %s, which is write-held (Lock at %s); use Unlock",
				op.key, pass.Fset.Position(h.pos))
		}
	}

	reportHeldAt := func(pos token.Pos, f fact, what string) {
		type leak struct {
			key instKey
			h   held
		}
		var leaks []leak
		for k, h := range f {
			if deferredUnlocks[k] {
				continue
			}
			leaks = append(leaks, leak{k, h})
		}
		sort.Slice(leaks, func(i, j int) bool { return leaks[i].h.pos < leaks[j].h.pos })
		for _, lk := range leaks {
			pass.Reportf(pos, "%s while holding %s (locked at %s); unlock first or defer the unlock",
				what, lk.key, pass.Fset.Position(lk.h.pos))
		}
	}

	for _, b := range g.Blocks {
		in, reachable := res.In[b]
		if !reachable {
			continue
		}
		f := make(fact, len(in))
		for k, h := range in {
			f[k] = h
		}
		for _, n := range b.Nodes {
			f = step(pass, f, n, check)
			// Cross-call order check: a static callee that (transitively)
			// acquires a class that must precede one we hold.
			if len(f) > 0 {
				checkCallOrder(pass, st, f, n)
			}
			if ret, ok := n.(*ast.ReturnStmt); ok {
				reportHeldAt(ret.Pos(), f, "return")
			}
		}
	}
	for _, b := range g.FallsOff() {
		if out, ok := res.Out[b]; ok {
			reportHeldAt(body.Rbrace, out, "return")
		}
	}
}

// checkCallOrder reports static calls under held locks whose transitive
// acquisitions violate the declared order.
func checkCallOrder(pass *analysis.Pass, st *state, f fact, n ast.Node) {
	if _, isDefer := n.(*ast.DeferStmt); isDefer {
		return // runs at exit, after the in-flow unlocks
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return true
		}
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, isLock := lockOpOf(pass, call); isLock {
			return true // direct operations are checked in step
		}
		callee := staticCallee(pass, call)
		if callee == nil || st.summaries[callee] == nil {
			return true
		}
		acquired := st.reachableAcquires(callee, map[*types.Func]bool{})
		for _, a := range acquired {
			for _, h := range f {
				if st.mustPrecede(a, h.class) {
					pass.Reportf(call.Pos(), "call to %s acquires %s while holding %s; "+
						"declared lock order requires %s before %s",
						callee.Name(), a, h.class, a, h.class)
				}
			}
		}
		return true
	})
}

// deferredUnlockSet collects the instances unlocked by a defer — directly
// or inside a deferred closure.
func deferredUnlockSet(pass *analysis.Pass, g *cfg.Graph) map[instKey]bool {
	out := map[instKey]bool{}
	record := func(call *ast.CallExpr) {
		if op, ok := lockOpOf(pass, call); ok && !op.acquire && op.keyOK {
			out[op.key] = true
		}
	}
	for _, d := range g.Defers {
		record(d.Call)
		if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if c, ok := m.(*ast.CallExpr); ok {
					record(c)
				}
				return true
			})
		}
	}
	return out
}
