module ld

go 1.22
