// Package locks exercises the lockdiscipline contract shapes.
//
// The declared order mirrors the repo's supervisor→session invariant:
// the session lock is acquired before the supervisor lock when both are
// held, i.e. acquiring Session.mu while holding Supervisor.mu deadlocks
// against the eviction path.
//
//gvad:lockorder locks.Session.mu < locks.Supervisor.mu
package locks

import "sync"

type Session struct {
	mu    sync.Mutex
	state int
}

type Supervisor struct {
	mu       sync.Mutex
	sessions map[string]*Session
}

type Guarded struct {
	mu  sync.RWMutex
	val int
}

// Balanced locks and unlocks on the straight-line path.
func Balanced(s *Session) {
	s.mu.Lock()
	s.state++
	s.mu.Unlock()
}

// DeferUnlock is the standard shape: the defer covers every path.
func DeferUnlock(s *Session) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// DeferClosureUnlock releases inside a deferred closure.
func DeferClosureUnlock(s *Session) int {
	s.mu.Lock()
	defer func() { s.mu.Unlock() }()
	return s.state
}

// DoubleLock re-acquires a held mutex: self-deadlock.
func DoubleLock(s *Session) {
	s.mu.Lock()
	s.mu.Lock() // want `locked again while already held`
	s.mu.Unlock()
}

// UnlockUnheld unlocks twice on the same path.
func UnlockUnheld(s *Session) {
	s.mu.Lock()
	s.mu.Unlock()
	s.mu.Unlock() // want `not held on this path`
}

// CallerHeldHelper only unlocks — the "caller holds the lock" contract —
// and stays silent.
func CallerHeldHelper(s *Session) {
	s.state++
	s.mu.Unlock()
}

// ReturnHolding leaks the lock out of one branch.
func ReturnHolding(s *Session, c bool) int {
	s.mu.Lock()
	if c {
		return s.state // want `return while holding s.mu`
	}
	s.mu.Unlock()
	return 0
}

// BranchBalanced unlocks on every path — the multi-return form.
func BranchBalanced(s *Session, c bool) int {
	s.mu.Lock()
	if c {
		s.mu.Unlock()
		return 1
	}
	s.mu.Unlock()
	return 0
}

// LoopPerIteration locks and unlocks inside the loop body; no state
// leaks across the back edge.
func LoopPerIteration(ss []*Session) int {
	total := 0
	for _, s := range ss {
		s.mu.Lock()
		total += s.state
		s.mu.Unlock()
	}
	return total
}

// InterleavedRelock drops the lock, waits, and re-acquires — the
// budget.Acquire shape; no finding.
func InterleavedRelock(s *Session, ch chan struct{}) int {
	s.mu.Lock()
	if s.state == 0 {
		s.mu.Unlock()
		return 0
	}
	s.mu.Unlock()
	<-ch
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Upgrade acquires the write lock while read-held.
func Upgrade(g *Guarded) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	g.mu.Lock() // want `write lock on g.mu while read-held`
	g.val++
	g.mu.Unlock()
	return g.val
}

// Downgrade acquires the read lock while write-held.
func Downgrade(g *Guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.mu.RLock() // want `read lock on g.mu while write-held`
	v := g.val
	g.mu.RUnlock()
	return v
}

// RecursiveRead re-acquires the read lock on the same path.
func RecursiveRead(g *Guarded) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	g.mu.RLock() // want `recursive read lock on g.mu`
	v := g.val
	g.mu.RUnlock()
	return v
}

// WrongUnlockMode releases a read lock with Unlock.
func WrongUnlockMode(g *Guarded) int {
	g.mu.RLock()
	v := g.val
	g.mu.Unlock() // want `use RUnlock`
	return v
}

// ReadBalanced is the correct read-side shape.
func ReadBalanced(g *Guarded) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.val
}

// OrderViolation acquires the session lock while holding the supervisor
// lock — the declared order forbids it.
func OrderViolation(sup *Supervisor, s *Session) {
	sup.mu.Lock()
	defer sup.mu.Unlock()
	s.mu.Lock() // want `locks.Session.mu acquired while holding locks.Supervisor.mu`
	s.state++
	s.mu.Unlock()
}

// OrderOK acquires in the declared order: session first, then
// supervisor.
func OrderOK(sup *Supervisor, s *Session) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sup.mu.Lock()
	defer sup.mu.Unlock()
	s.state++
}

// touchSession is session work: it takes the session lock.
func touchSession(s *Session) {
	s.mu.Lock()
	s.state++
	s.mu.Unlock()
}

// OrderViaCall reaches the session lock through a call while holding the
// supervisor lock.
func OrderViaCall(sup *Supervisor, s *Session) {
	sup.mu.Lock()
	defer sup.mu.Unlock()
	touchSession(s) // want `call to touchSession acquires locks.Session.mu while holding locks.Supervisor.mu`
}

// OrderCallClean drops the supervisor lock before the session work.
func OrderCallClean(sup *Supervisor, s *Session) {
	sup.mu.Lock()
	sup.mu.Unlock()
	touchSession(s)
}

// SelectArms locks and unlocks within each arm.
func SelectArms(s *Session, a, b chan struct{}) {
	select {
	case <-a:
		s.mu.Lock()
		s.state++
		s.mu.Unlock()
	case <-b:
		s.mu.Lock()
		s.state--
		s.mu.Unlock()
	}
}

// Allowlisted leaks a lock but carries a reviewed suppression.
func Allowlisted(s *Session) {
	s.mu.Lock()
	s.state++
	//gvad:ignore lockdiscipline fixture for the allowlisted-negative path
}
