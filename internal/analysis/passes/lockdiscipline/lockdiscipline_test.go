package lockdiscipline_test

import (
	"testing"

	"grammarviz/internal/analysis"
	"grammarviz/internal/analysis/analysistest"
	"grammarviz/internal/analysis/passes/lockdiscipline"
)

func TestLockdiscipline(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{lockdiscipline.Analyzer}, "./...")
}
