package noalloc_test

import (
	"testing"

	"grammarviz/internal/analysis"
	"grammarviz/internal/analysis/analysistest"
	"grammarviz/internal/analysis/passes/noalloc"
)

func TestNoalloc(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{noalloc.Analyzer}, "./...")
}
