// Package lib exercises every noalloc construct class plus the sanctioned
// exemptions.
package lib

import (
	"fmt"
	"math"
	"strings"
)

// Convert has a string conversion on the hot path.
//
//gvad:noalloc
func Convert(s string) int {
	b := []byte(s) // want `string conversion allocates`
	return len(b)
}

// Format calls fmt on the hot path; the int argument also boxes into
// Sprintf's variadic interface parameter.
//
//gvad:noalloc
func Format(n int) string {
	return fmt.Sprintf("%d", n) // want `call to fmt.Sprintf allocates` `boxes into interface parameter`
}

// Grow appends with no capacity evidence.
//
//gvad:noalloc
func Grow(n int) []int {
	var xs []int
	for i := 0; i < n; i++ {
		xs = append(xs, i) // want `append to xs without capacity evidence`
	}
	return xs
}

// GrowPrealloc shows the sanctioned shape: the make with capacity is the
// evidence and the loop appends freely.
//
//gvad:noalloc
func GrowPrealloc(n int) []int {
	xs := make([]int, 0, n)
	for i := 0; i < n; i++ {
		xs = append(xs, i)
	}
	return xs
}

// Literals allocate on construction.
//
//gvad:noalloc
func Literals() int {
	m := map[int]int{} // want `map composite literal allocates`
	s := []int{1, 2}   // want `slice composite literal allocates`
	return len(m) + len(s)
}

// Capture allocates a closure cell for n.
//
//gvad:noalloc
func Capture(n int) func() int {
	return func() int { return n } // want `closure captures n and allocates`
}

// helper is not annotated itself but sits on Root's hot path, so its
// violation is reported with the root attribution.
func helper(s string) int {
	return len([]byte(s)) // want `string conversion allocates \[hot path of //gvad:noalloc Root\]`
}

// Root reaches helper's violation transitively.
//
//gvad:noalloc
func Root(s string) int {
	return helper(s)
}

// Inner and Outer are both annotated; the shared violation is reported
// once, on Inner's own line.
//
//gvad:noalloc
func Inner(s string) int {
	return len([]rune(s)) // want `string conversion allocates`
}

// Outer is the noalloc-calls-noalloc edge case.
//
//gvad:noalloc
func Outer(s string) int {
	return Inner(s)
}

// Dyn calls through a function value, which cannot be certified.
//
//gvad:noalloc
func Dyn(f func() int) int {
	return f() // want `dynamic call cannot be verified allocation-free`
}

// Upper calls a standard-library function outside the math allowlist.
//
//gvad:noalloc
func Upper(s string) string {
	return strings.ToUpper(s) // want `outside the noalloc-verified set`
}

// Sqrt stays within the math allowlist.
//
//gvad:noalloc
func Sqrt(x float64) float64 {
	return math.Sqrt(x)
}

// ColdPath may allocate on its error path: the block returns a non-nil
// error, which the steady state never executes.
//
//gvad:noalloc
func ColdPath(n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("negative: %d", n)
	}
	return n * 2, nil
}

// Ignored demonstrates the reviewed suppression.
//
//gvad:noalloc
func Ignored(s string) int {
	//gvad:ignore noalloc fixture for the allowlisted-negative path
	return len([]byte(s))
}

// Boxes passes a concrete value to an interface parameter.
//
//gvad:noalloc
func Boxes(n int) {
	sink(n) // want `argument boxes into interface parameter and allocates`
}

func sink(v any) { _ = v }

// Lookup uses the compiler-optimized map-index conversion, which does not
// allocate.
//
//gvad:noalloc
func Lookup(m map[string]int, b []byte) int {
	return m[string(b)]
}

// ColdMixed: the first branch block can still reach the success return
// (the inner condition may fall through), so its allocation is hot — the
// old lexical rule exempted it because the block's last statement returns
// an error. The second branch is genuinely all-paths-cold.
//
//gvad:noalloc
func ColdMixed(n int, ok bool) (int, error) {
	if n < 0 {
		s := fmt.Sprint(n) // want `call to fmt.Sprint allocates` `boxes into interface parameter`
		if ok {
			return len(s), nil
		}
		return 0, fmt.Errorf("negative: %s", s)
	}
	if n > 1000 {
		s := fmt.Sprint(n)
		return 0, fmt.Errorf("too large: %s", s)
	}
	return n * 2, nil
}

// ColdPanic: a panic-terminated block is cold on the real CFG too.
//
//gvad:noalloc
func ColdPanic(n int) int {
	if n < 0 {
		msg := fmt.Sprintf("negative: %d", n)
		panic(msg)
	}
	return n * 2
}

// ColdJoin: an allocation after the error checks rejoin is on the success
// path and stays checked, however close it sits to cold blocks.
//
//gvad:noalloc
func ColdJoin(n int) (string, error) {
	if n < 0 {
		return "", fmt.Errorf("negative: %d", n)
	}
	b := []byte("x")      // want `string conversion allocates`
	return string(b), nil // want `string conversion allocates`
}
