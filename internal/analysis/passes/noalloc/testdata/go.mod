module na

go 1.22
