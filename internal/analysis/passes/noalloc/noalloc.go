// Package noalloc statically polices the repo's zero-allocation hot paths.
// A function whose doc comment carries a `//gvad:noalloc` directive — and,
// transitively, every function it statically calls — must be free of the
// allocating constructs that the AllocsPerRun regression tests pin at
// runtime:
//
//   - fmt.* calls
//   - string ↔ []byte / []rune conversions (except the compiler-optimized
//     map-index form m[string(b)])
//   - map and slice composite literals
//   - closures that capture variables
//   - interface boxing at call sites (a concrete non-pointer argument
//     passed to an interface parameter)
//   - append whose destination shows no capacity evidence: appends to
//     struct fields and parameters are treated as amortized (pooled /
//     caller-owned growth), appends to locals need an in-function make or
//     cap() guard
//
// Two deliberate exclusions keep the rule aligned with what "zero
// allocations in steady state" actually means here:
//
//   - make/new are not flagged. The sanctioned grow-on-demand idiom
//     (`if cap(x) < n { x = make(...) }`), arena chunk growth, and
//     contract-mandated output allocations (density.CurveWith returns a
//     fresh curve) are all makes; the AllocsPerRun tests prove they
//     amortize to zero.
//   - cold blocks are exempt: a construct is cold when every control-flow
//     path from its basic block exits by returning a non-nil error or by
//     panicking — error-path work the steady state never executes. The
//     coldness is computed on the real CFG (internal/analysis/cfg) with a
//     backward must-analysis, so a block that can also reach a success
//     return stays checked; the function's entry block is always hot (the
//     straight-line path is always checked, even in functions that only
//     fail).
//
// Calls that cannot be followed — dynamic calls through function values or
// interface methods, and calls into standard-library packages other than
// the pure-math allowlist — are themselves diagnostics: if the analyzer
// cannot see the callee, it cannot certify the path.
package noalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"grammarviz/internal/analysis"
	"grammarviz/internal/analysis/cfg"
)

var Analyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc: "verifies that //gvad:noalloc functions (and their static callees) avoid " +
		"allocating constructs on non-error paths",
	Run: run,
}

// Directive marks a function as a zero-allocation hot path.
const Directive = "//gvad:noalloc"

// stdlibAllow lists standard-library packages whose functions are accepted
// in noalloc paths without analysis: pure computation, no allocation.
var stdlibAllow = map[string]bool{
	"math":      true,
	"math/bits": true,
}

type violation struct {
	pos token.Pos
	msg string
}

type edge struct {
	pos    token.Pos // call site
	callee *types.Func
}

// funcFact is the per-function summary recorded for every analyzed
// function: its own hot-path violations and its outgoing static calls.
// Object identity of *types.Func is stable across the whole loaded program
// (packages share one type-checker cache), so facts from dependency
// packages are directly addressable when their importers are analyzed.
type funcFact struct {
	viols []violation
	edges []edge
}

type state struct {
	facts   map[*types.Func]*funcFact
	emitted map[token.Pos]map[string]bool // dedupe across roots
}

const sessionKey = "noalloc.state"

func getState(s *analysis.Session) *state {
	if v, ok := s.Get(sessionKey).(*state); ok {
		return v
	}
	v := &state{
		facts:   make(map[*types.Func]*funcFact),
		emitted: make(map[token.Pos]map[string]bool),
	}
	s.Set(sessionKey, v)
	return v
}

func run(pass *analysis.Pass) error {
	st := getState(pass.Session)

	var roots []*types.Func
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			st.facts[obj] = computeFact(pass, fd)
			if hasDirective(fd) {
				roots = append(roots, obj)
			}
		}
	}

	for _, root := range roots {
		checkRoot(pass, st, root)
	}
	return nil
}

func hasDirective(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(c.Text)
		if text == Directive || strings.HasPrefix(text, Directive+" ") {
			return true
		}
	}
	return false
}

// checkRoot walks the static call graph from an annotated function,
// reporting every violation recorded on the reachable facts.
func checkRoot(pass *analysis.Pass, st *state, root *types.Func) {
	visited := map[*types.Func]bool{}
	queue := []*types.Func{root}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		if visited[fn] {
			continue
		}
		visited[fn] = true
		fact := st.facts[fn]
		if fact == nil {
			// No body analyzed for this callee; callers report it at the
			// call site (see below), so nothing to do here.
			continue
		}
		for _, v := range fact.viols {
			emit(pass, st, v.pos, v.msg, root, fn)
		}
		for _, e := range fact.edges {
			callee := e.callee
			if st.facts[callee] != nil {
				queue = append(queue, callee)
				continue
			}
			pkg := callee.Pkg()
			if pkg == nil || stdlibAllow[pkg.Path()] {
				continue
			}
			emit(pass, st, e.pos,
				"calls "+callee.FullName()+", which is outside the noalloc-verified set "+
					"(no analyzable body)", root, fn)
		}
	}
}

func emit(pass *analysis.Pass, st *state, pos token.Pos, msg string, root, fn *types.Func) {
	full := msg
	if fn != root {
		full = msg + " [hot path of " + Directive + " " + root.Name() + "]"
	}
	if st.emitted[pos] == nil {
		st.emitted[pos] = make(map[string]bool)
	}
	if st.emitted[pos][msg] {
		return
	}
	st.emitted[pos][msg] = true
	pass.Reportf(pos, "%s", full)
}

// computeFact scans one function body for allocating constructs and
// outgoing static calls, applying the cold-block exemption.
func computeFact(pass *analysis.Pass, fd *ast.FuncDecl) *funcFact {
	fact := &funcFact{}
	info := pass.TypesInfo
	evidence := collectEvidence(pass, fd)

	spans := coldSpans(fd.Body, lastResultIsError(pass, fd))
	// Function literals own their own control flow: their cold paths are
	// computed per body (relative to the literal's own error result).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			spans = append(spans, coldSpans(lit.Body, sigLastResultIsError(pass, lit))...)
		}
		return true
	})

	var stack []ast.Node
	cold := func() bool {
		if len(stack) == 0 {
			return false
		}
		return posInSpans(spans, stack[len(stack)-1].Pos())
	}
	addViol := func(pos token.Pos, msg string) {
		if !posInSpans(spans, pos) {
			fact.viols = append(fact.viols, violation{pos: pos, msg: msg})
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch n := n.(type) {
		case *ast.CompositeLit:
			tv := info.Types[n]
			if tv.Type != nil {
				switch tv.Type.Underlying().(type) {
				case *types.Map:
					addViol(n.Pos(), "map composite literal allocates")
				case *types.Slice:
					addViol(n.Pos(), "slice composite literal allocates")
				}
			}
		case *ast.FuncLit:
			if capt := capturedVar(pass, n); capt != "" {
				addViol(n.Pos(), "closure captures "+capt+" and allocates")
			}
		case *ast.CallExpr:
			checkCall(pass, n, stack, fact, evidence, addViol, cold)
		}
		return true
	})
	return fact
}

// checkCall classifies one call expression: conversion, builtin, fmt call,
// static edge, or dynamic call — plus the boxing check on its arguments.
func checkCall(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node,
	fact *funcFact, evidence map[*types.Var]bool,
	addViol func(token.Pos, string), cold func() bool) {

	info := pass.TypesInfo
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		checkConversion(pass, call, stack, tv.Type, addViol)
		return
	}

	callee, kind := resolveCallee(pass, call)
	switch kind {
	case calleeBuiltin:
		if name := builtinName(pass, call); name == "append" {
			checkAppend(pass, call, evidence, addViol)
		}
		return
	case calleeDynamic:
		addViol(call.Pos(), "dynamic call cannot be verified allocation-free")
	case calleeStatic:
		if pkg := callee.Pkg(); pkg != nil && pkg.Path() == "fmt" {
			addViol(call.Pos(), "call to fmt."+callee.Name()+" allocates")
		} else if !cold() {
			fact.edges = append(fact.edges, edge{pos: call.Pos(), callee: callee})
		}
	}
	checkBoxing(pass, call, addViol)
}

type calleeKind int

const (
	calleeStatic calleeKind = iota
	calleeBuiltin
	calleeDynamic
)

func resolveCallee(pass *analysis.Pass, call *ast.CallExpr) (*types.Func, calleeKind) {
	info := pass.TypesInfo
	fun := ast.Unparen(call.Fun)
	if ix, ok := fun.(*ast.IndexExpr); ok { // generic instantiation
		fun = ast.Unparen(ix.X)
	}
	if ix, ok := fun.(*ast.IndexListExpr); ok {
		fun = ast.Unparen(ix.X)
	}
	switch fun := fun.(type) {
	case *ast.Ident:
		switch obj := info.Uses[fun].(type) {
		case *types.Func:
			return obj, calleeStatic
		case *types.Builtin:
			return nil, calleeBuiltin
		default:
			return nil, calleeDynamic
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			f, isFunc := sel.Obj().(*types.Func)
			if !isFunc {
				return nil, calleeDynamic // func-typed field
			}
			if recv := f.Type().(*types.Signature).Recv(); recv != nil &&
				types.IsInterface(recv.Type()) {
				return nil, calleeDynamic // interface method dispatch
			}
			return f, calleeStatic
		}
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok { // pkg.Func
			return f, calleeStatic
		}
		return nil, calleeDynamic
	case *ast.FuncLit:
		// Immediately invoked literal: its body is scanned in place and the
		// capture check covers the closure allocation.
		return nil, calleeBuiltin
	}
	return nil, calleeDynamic
}

func builtinName(pass *analysis.Pass, call *ast.CallExpr) string {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// checkConversion flags string↔[]byte/[]rune conversions, except the
// compiler-optimized map-index form m[string(b)].
func checkConversion(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node,
	to types.Type, addViol func(token.Pos, string)) {
	if len(call.Args) != 1 {
		return
	}
	fromTV, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || fromTV.Type == nil {
		return
	}
	from := fromTV.Type
	if !(isString(to) && isByteOrRuneSlice(from) || isByteOrRuneSlice(to) && isString(from)) {
		return
	}
	// m[string(b)] does not allocate: the compiler recognizes the pattern.
	if len(stack) >= 2 {
		if ix, ok := stack[len(stack)-2].(*ast.IndexExpr); ok && ix.Index == call {
			if tv, ok := pass.TypesInfo.Types[ix.X]; ok && tv.Type != nil {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					return
				}
			}
		}
	}
	addViol(call.Pos(), "string conversion allocates")
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// checkAppend flags appends whose destination shows no capacity evidence.
// Field destinations (pooled growth) and parameters (caller-owned buffers)
// are amortized by contract; local destinations need an in-function make
// or cap() guard.
func checkAppend(pass *analysis.Pass, call *ast.CallExpr, evidence map[*types.Var]bool,
	addViol func(token.Pos, string)) {
	if len(call.Args) == 0 {
		return
	}
	dst := ast.Unparen(call.Args[0])
	switch dst := dst.(type) {
	case *ast.SelectorExpr:
		return // field: amortized pooled growth
	case *ast.Ident:
		v, ok := pass.TypesInfo.Uses[dst].(*types.Var)
		if !ok {
			addViol(call.Pos(), "append without capacity evidence allocates")
			return
		}
		if evidence[v] {
			return
		}
		addViol(call.Pos(), "append to "+dst.Name+" without capacity evidence "+
			"(no make with capacity, cap() guard, or caller-owned parameter) allocates")
	default:
		addViol(call.Pos(), "append without capacity evidence allocates")
	}
}

// collectEvidence records, per variable, whether the function exhibits
// capacity evidence for it: it is a parameter (incl. receiver), it is
// assigned from make, or its cap() is inspected.
func collectEvidence(pass *analysis.Pass, fd *ast.FuncDecl) map[*types.Var]bool {
	info := pass.TypesInfo
	ev := make(map[*types.Var]bool)
	mark := func(id *ast.Ident) {
		if v, ok := info.Uses[id].(*types.Var); ok {
			ev[v] = true
		} else if v, ok := info.Defs[id].(*types.Var); ok {
			ev[v] = true
		}
	}
	// Parameters and receiver.
	for _, fl := range []*ast.FieldList{fd.Recv, fd.Type.Params} {
		if fl == nil {
			continue
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				mark(name)
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if !isMakeCall(rhs) || i >= len(n.Lhs) {
					continue
				}
				if id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident); ok {
					mark(id)
				}
			}
		case *ast.ValueSpec:
			for i, rhs := range n.Values {
				if isMakeCall(rhs) && i < len(n.Names) {
					mark(n.Names[i])
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "cap" &&
				len(n.Args) == 1 {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					if arg, ok := ast.Unparen(n.Args[0]).(*ast.Ident); ok {
						mark(arg)
					}
				}
			}
		}
		return true
	})
	return ev
}

func isMakeCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "make"
}

// checkBoxing flags concrete, non-pointer-shaped arguments passed to
// interface parameters — the boxing allocation at a call site.
func checkBoxing(pass *analysis.Pass, call *ast.CallExpr, addViol func(token.Pos, string)) {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		if call.Ellipsis.IsValid() && i == len(call.Args)-1 {
			continue // spread slice, no boxing
		}
		var pt types.Type
		switch {
		case i < params.Len()-1 || (i < params.Len() && !sig.Variadic()):
			pt = params.At(i).Type()
		case sig.Variadic() && params.Len() > 0:
			sl, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			pt = sl.Elem()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := pass.TypesInfo.Types[arg]
		if at.Type == nil || at.IsNil() {
			continue
		}
		if !boxes(at.Type) {
			continue
		}
		addViol(arg.Pos(), "argument boxes into interface parameter and allocates")
	}
}

// boxes reports whether storing a value of type t in an interface
// allocates: pointer-shaped types (pointers, maps, channels, funcs,
// unsafe.Pointer) do not; everything else does.
func boxes(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Interface:
		return false
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return false
	case *types.Basic:
		return u.Kind() != types.UnsafePointer
	}
	return true
}

// capturedVar returns the name of one variable the literal captures from
// an enclosing scope, or "" when the literal is capture-free.
func capturedVar(pass *analysis.Pass, lit *ast.FuncLit) string {
	info := pass.TypesInfo
	name := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Package-level variables are not captured (no closure cell).
		if v.Parent() == pass.Pkg.Scope() {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			name = v.Name()
			return false
		}
		return true
	})
	return name
}

// lastResultIsError reports whether fd's final result type is error.
func lastResultIsError(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	res := fd.Type.Results
	if res == nil || len(res.List) == 0 {
		return false
	}
	last := res.List[len(res.List)-1]
	tv, ok := pass.TypesInfo.Types[last.Type]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	return ok && named.Obj() != nil && named.Obj().Pkg() == nil &&
		named.Obj().Name() == "error"
}

// span is a cold source range: positions inside it are on error-only
// paths.
type span struct{ lo, hi token.Pos }

// coldLattice is the backward must-analysis behind the cold-block
// exemption: the fact at a point is "every path from here exits by
// returning a non-nil error or panicking". Blocks that terminate the
// function force the fact from their own terminator; everything else
// inherits the AND over its successors.
type coldLattice struct{ errResult bool }

func (coldLattice) Boundary() bool       { return false }
func (coldLattice) Merge(a, b bool) bool { return a && b }
func (coldLattice) Equal(a, b bool) bool { return a == b }

func (l coldLattice) Transfer(b *cfg.Block, f bool) bool {
	if b.Panics {
		return true
	}
	if ret := b.Return; ret != nil {
		if !l.errResult || len(ret.Results) == 0 {
			return false
		}
		final := ast.Unparen(ret.Results[len(ret.Results)-1])
		if id, ok := final.(*ast.Ident); ok && id.Name == "nil" {
			return false
		}
		return true
	}
	return f
}

// coldSpans computes the cold source ranges of one body: the nodes of
// every non-entry block whose paths all exit cold. Unreachable blocks
// (statements after a terminator) are cold too — they never execute. The
// entry block is always hot, so the straight-line path of the function is
// always checked.
func coldSpans(body *ast.BlockStmt, errResult bool) []span {
	g := cfg.New(body)
	res := cfg.Backward[bool](g, coldLattice{errResult: errResult})
	var spans []span
	for _, b := range g.Blocks {
		if b == g.Entry || b == g.Exit {
			continue
		}
		if out, reachable := res.Out[b]; reachable && !out {
			continue // can reach a success exit: hot
		}
		for _, n := range b.Nodes {
			spans = append(spans, span{lo: n.Pos(), hi: n.End()})
		}
	}
	return spans
}

// posInSpans reports whether pos falls inside any span. Spans can nest
// (a cold statement containing a function literal with its own cold
// blocks), so the scan is linear — there are only ever a handful per
// function.
func posInSpans(spans []span, pos token.Pos) bool {
	for _, s := range spans {
		if s.lo <= pos && pos <= s.hi {
			return true
		}
	}
	return false
}

// sigLastResultIsError reports whether a function literal's final result
// type is error.
func sigLastResultIsError(pass *analysis.Pass, lit *ast.FuncLit) bool {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok || tv.Type == nil {
		return false
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	return types.Identical(sig.Results().At(sig.Results().Len()-1).Type(), types.Universe.Lookup("error").Type())
}
