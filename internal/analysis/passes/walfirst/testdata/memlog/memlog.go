// Package memlog mirrors the repo's write-ahead log surface for the
// walfirst fixtures.
package memlog

type Log struct {
	records [][]byte
}

func (l *Log) Append(payload []byte) error {
	l.records = append(l.records, payload)
	return nil
}

func (l *Log) Sync() error { return nil }
