module wf

go 1.22
