// Package grammarviz mirrors the repo's streaming detector surface for
// the walfirst fixtures.
package grammarviz

type StreamEvent struct {
	Offset  int
	Novelty float64
}

type Stream struct {
	n int
}

func (s *Stream) Append(v float64) (ev StreamEvent, ok bool, err error) {
	s.n++
	return StreamEvent{Offset: s.n}, false, nil
}

func (s *Stream) Reset() { s.n = 0 }

func (s *Stream) Len() int { return s.n }
