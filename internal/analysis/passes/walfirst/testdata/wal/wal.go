// Package wal exercises the walfirst ordering shapes.
package wal

import (
	"wf/grammarviz"
	"wf/memlog"
)

type session struct {
	log    *memlog.Log
	stream *grammarviz.Stream
}

func encode(points []float64) []byte { return make([]byte, 8*len(points)) }

// Canonical is the repo's sessionAppend shape: nil-guarded WAL append,
// then mutation. Clean — the nil edge needs no append.
//
//gvad:walfirst
func Canonical(sess *session, points []float64) error {
	if sess.log != nil {
		if err := sess.log.Append(encode(points)); err != nil {
			return err
		}
	}
	for _, v := range points {
		if _, _, err := sess.stream.Append(v); err != nil {
			return err
		}
	}
	return nil
}

// MissingAppend mutates with no WAL write at all.
//
//gvad:walfirst
func MissingAppend(sess *session, v float64) {
	sess.stream.Append(v) // want `before the write-ahead log append on some path`
}

// WrongOrder writes the WAL after the mutation.
//
//gvad:walfirst
func WrongOrder(sess *session, v float64) {
	sess.stream.Append(v) // want `before the write-ahead log append on some path`
	sess.log.Append(encode([]float64{v}))
}

// OnePathMisses appends on only one branch; the merge is must, so the
// mutation is flagged.
//
//gvad:walfirst
func OnePathMisses(sess *session, v float64, durable bool) {
	if durable {
		sess.log.Append(encode([]float64{v}))
	}
	sess.stream.Append(v) // want `before the write-ahead log append on some path`
}

// NilFastPath mutates under a known-nil log: no durability contract.
//
//gvad:walfirst
func NilFastPath(sess *session, v float64) {
	if sess.log == nil {
		sess.stream.Append(v)
		return
	}
	sess.log.Append(encode([]float64{v}))
	sess.stream.Append(v)
}

// EarlyReturnGuard returns on the nil path, then appends unconditionally.
//
//gvad:walfirst
func EarlyReturnGuard(sess *session, v float64) error {
	if sess.log == nil {
		return nil
	}
	if err := sess.log.Append(encode([]float64{v})); err != nil {
		return err
	}
	_, _, err := sess.stream.Append(v)
	return err
}

// ClosureAfterAppend mirrors the worker-goroutine shape: the mutation
// lives in a literal created after the WAL write. Clean.
//
//gvad:walfirst
func ClosureAfterAppend(sess *session, points []float64, run func(func() error) error) error {
	if sess.log != nil {
		if err := sess.log.Append(encode(points)); err != nil {
			return err
		}
	}
	return run(func() error {
		for _, v := range points {
			if _, _, err := sess.stream.Append(v); err != nil {
				return err
			}
		}
		return nil
	})
}

// ClosureNoAppend spawns the mutating literal with no WAL write.
//
//gvad:walfirst
func ClosureNoAppend(sess *session, v float64, run func(func() error) error) error {
	return run(func() error {
		_, _, err := sess.stream.Append(v) // want `before the write-ahead log append on some path`
		return err
	})
}

// ResetUnlogged truncates the stream without logging the truncation.
//
//gvad:walfirst
func ResetUnlogged(sess *session) {
	sess.stream.Reset() // want `before the write-ahead log append on some path`
}

// Unannotated has no directive and is not checked.
func Unannotated(sess *session, v float64) {
	sess.stream.Append(v)
}

// Allowlisted carries a reviewed suppression.
//
//gvad:walfirst
func Allowlisted(sess *session, v float64) {
	//gvad:ignore walfirst fixture for the allowlisted-negative path
	sess.stream.Append(v)
}
