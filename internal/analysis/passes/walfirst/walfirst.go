// Package walfirst enforces the write-ahead-log ordering invariant on
// functions annotated //gvad:walfirst: on every path, a stream mutation
// (a call to Append or Reset on a grammarviz Stream) must be preceded by
// a write-ahead append (a call to Append on a memlog Log), unless the
// log is known nil on that path — a session without a WAL has no
// durability contract to violate.
//
// The check is a forward must-analysis over the CFG: the fact is "the
// WAL has been appended on ALL paths reaching this point" (merge is
// AND). Branch conditions of the form `log != nil` / `log == nil`,
// where the operand is a *memlog.Log, refine the fact on the nil edge to
// true, so the canonical
//
//	if sess.log != nil {
//	    if err := sess.log.Append(b); err != nil { ... }
//	}
//	sess.stream.Append(v)
//
// shape is recognized as WAL-first. Function literals are treated as
// executing at their creation point: the repo funnels mutations through
// worker goroutines that are spawned after the WAL write and awaited in
// the same function, and the fact only ever strengthens along a path, so
// attributing the literal's body to the spawn site cannot mask a
// violation.
package walfirst

import (
	"go/ast"
	"go/types"
	"strings"

	"grammarviz/internal/analysis"
	"grammarviz/internal/analysis/cfg"
)

var Analyzer = &analysis.Analyzer{
	Name: "walfirst",
	Doc: "checks that //gvad:walfirst functions append to the write-ahead " +
		"log before mutating the stream on every path",
	Run: run,
}

// Directive marks a function for WAL-ordering enforcement.
const Directive = "//gvad:walfirst"

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective(fd) {
				continue
			}
			checkBody(pass, fd.Body)
		}
	}
	return nil
}

func hasDirective(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == Directive {
			return true
		}
	}
	return false
}

// isWALAppend reports whether call appends (or syncs) a memlog Log.
func isWALAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	name, recv := methodOf(pass, call)
	return (name == "Append" || name == "Sync") && recv == "memlog.Log"
}

// isMutation reports whether call mutates a grammarviz Stream.
func isMutation(pass *analysis.Pass, call *ast.CallExpr) bool {
	name, recv := methodOf(pass, call)
	return (name == "Append" || name == "Reset") && recv == "grammarviz.Stream"
}

// methodOf resolves a method call to its name and pkg.Type receiver
// rendering ("" for non-methods).
func methodOf(pass *analysis.Pass, call *ast.CallExpr) (name, recv string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	var f *types.Func
	if s, ok := pass.TypesInfo.Selections[sel]; ok {
		f, _ = s.Obj().(*types.Func)
	} else {
		f, _ = pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	}
	if f == nil {
		return "", ""
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", ""
	}
	return f.Name(), namedOf(sig.Recv().Type())
}

// namedOf renders the named type behind t (through pointers) as
// pkg.Type, or "".
func namedOf(t types.Type) string {
	if t == nil {
		return ""
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj() == nil || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Name() + "." + named.Obj().Name()
}

// lattice is the forward must-analysis: true means the WAL append has
// happened on every path to this point (or the log is known nil).
type lattice struct {
	pass *analysis.Pass
}

func (l *lattice) Boundary() bool       { return false }
func (l *lattice) Merge(a, b bool) bool { return a && b }
func (l *lattice) Equal(a, b bool) bool { return a == b }

func (l *lattice) Transfer(b *cfg.Block, f bool) bool {
	for _, n := range b.Nodes {
		f = step(l.pass, f, n, nil)
	}
	return f
}

// RefineEdge strengthens the fact on edges where the log is known nil:
// no WAL is configured, so mutation needs no preceding append.
func (l *lattice) RefineEdge(from *cfg.Block, branch int, f bool) bool {
	if f || from.Cond == nil {
		return f
	}
	bin, ok := ast.Unparen(from.Cond).(*ast.BinaryExpr)
	if !ok {
		return f
	}
	var logSide ast.Expr
	switch {
	case isNilIdent(bin.Y):
		logSide = bin.X
	case isNilIdent(bin.X):
		logSide = bin.Y
	default:
		return f
	}
	if namedOf(l.pass.TypesInfo.Types[logSide].Type) != "memlog.Log" {
		return f
	}
	// x != nil: the nil edge is branch 1. x == nil: the nil edge is 0.
	switch bin.Op.String() {
	case "!=":
		if branch == 1 {
			return true
		}
	case "==":
		if branch == 0 {
			return true
		}
	}
	return f
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// step flows one node: a WAL append anywhere in it (including inside
// function literals, which execute under the same invariant) turns the
// fact true; with report set, mutations seen while the fact is false are
// diagnosed. ast.Inspect visits in syntactic order, which matches
// evaluation order for the statement shapes that matter here.
func step(pass *analysis.Pass, f bool, n ast.Node, report func(call *ast.CallExpr)) bool {
	ast.Inspect(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isWALAppend(pass, call) {
			f = true
			return true
		}
		if !f && report != nil && isMutation(pass, call) {
			report(call)
		}
		return true
	})
	return f
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	g := cfg.New(body)
	lat := &lattice{pass: pass}
	res := cfg.Forward[bool](g, lat)

	for _, b := range g.Blocks {
		in, reachable := res.In[b]
		if !reachable {
			continue
		}
		f := in
		for _, n := range b.Nodes {
			f = step(pass, f, n, func(call *ast.CallExpr) {
				sel, _ := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				what := "stream mutation"
				if sel != nil {
					what = types.ExprString(sel)
				}
				pass.Reportf(call.Pos(), "%s before the write-ahead log append on some path; "+
					"//gvad:walfirst requires Log.Append first (or a nil log)", what)
			})
		}
	}
}
