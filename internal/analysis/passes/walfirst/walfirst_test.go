package walfirst_test

import (
	"testing"

	"grammarviz/internal/analysis"
	"grammarviz/internal/analysis/analysistest"
	"grammarviz/internal/analysis/passes/walfirst"
)

func TestWalfirst(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{walfirst.Analyzer}, "./...")
}
