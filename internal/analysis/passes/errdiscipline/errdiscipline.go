// Package errdiscipline enforces the repo's error-handling contract in
// library code (every non-main package), three ways:
//
//   - no silently dropped errors: a call whose result set includes an
//     error must not stand alone as an expression statement. Dropping
//     deliberately requires an explicit `_ =` assignment, which is
//     visible in review. Calls into fmt and the never-failing
//     strings.Builder/bytes.Buffer writers are exempt.
//
//   - no dead error stores: an assignment `err = f()` whose value is
//     never read on ANY path before the variable is reassigned or goes
//     out of scope is a check that never happens. This is a backward
//     liveness analysis over the CFG (internal/analysis/cfg); uses
//     inside function literals count as uses (the closure may read the
//     captured variable), but assignments inside literals never kill
//     (the closure may run on no path we can see).
//
//   - typed errors on annotated paths: a function marked //gvad:typederr
//     must not return ad-hoc errors — errors.New or fmt.Errorf without a
//     %w wrap — because callers match the package's sentinel and typed
//     errors with errors.Is/As.
package errdiscipline

import (
	"go/ast"
	"go/types"
	"strings"

	"grammarviz/internal/analysis"
	"grammarviz/internal/analysis/cfg"
)

var Analyzer = &analysis.Analyzer{
	Name: "errdiscipline",
	Doc: "checks for silently dropped errors, error stores that are dead on " +
		"every path, and ad-hoc errors returned from //gvad:typederr functions",
	Run: run,
}

// Directive marks a function whose returned errors must be the package's
// typed/sentinel errors (or %w wraps), not ad-hoc constructions.
const Directive = "//gvad:typederr"

var errorType = types.Universe.Lookup("error").Type()

func run(pass *analysis.Pass) error {
	library := pass.Pkg.Name() != "main"
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if library {
				checkDropped(pass, fd.Body)
			}
			checkDeadStores(pass, fd.Body, namedResults(fd.Type))
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkDeadStores(pass, lit.Body, namedResults(lit.Type))
				}
				return true
			})
			if hasDirective(fd) {
				checkTypedErr(pass, fd)
			}
		}
	}
	return nil
}

func hasDirective(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == Directive {
			return true
		}
	}
	return false
}

// returnsError reports whether call's result set includes an error.
func returnsError(pass *analysis.Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errorType) {
				return true
			}
		}
		return false
	default:
		return types.Identical(t, errorType)
	}
}

// droppedExempt reports callees whose errors are conventionally
// unactionable: the fmt print family, the never-failing strings.Builder
// / bytes.Buffer writers, and writes through a static hash.Hash — whose
// contract says Write never returns an error.
func droppedExempt(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if tv, ok := pass.TypesInfo.Types[sel.X]; ok {
		switch recvName(tv.Type) {
		case "hash.Hash", "hash.Hash32", "hash.Hash64":
			return true
		}
	}
	var f *types.Func
	if s, ok := pass.TypesInfo.Selections[sel]; ok {
		f, _ = s.Obj().(*types.Func)
	} else {
		f, _ = pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	}
	if f == nil || f.Pkg() == nil {
		return false
	}
	if f.Pkg().Path() == "fmt" {
		return true
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	switch recvName(sig.Recv().Type()) {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}

func recvName(t types.Type) string {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj() == nil || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Name() + "." + named.Obj().Name()
}

// checkDropped flags bare expression statements that discard an error
// result. Function literal interiors are included: a closure's dropped
// error is just as silent.
func checkDropped(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		call, ok := ast.Unparen(es.X).(*ast.CallExpr)
		if !ok {
			return true
		}
		if returnsError(pass, call) && !droppedExempt(pass, call) {
			pass.Reportf(call.Pos(), "result of %s includes an error that is silently dropped; "+
				"handle it or assign it explicitly", calleeLabel(pass, call))
		}
		return true
	})
}

func calleeLabel(pass *analysis.Pass, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return types.ExprString(fun)
	}
	return "call"
}

// --- dead error stores -------------------------------------------------

// liveSet is the backward liveness fact: the error variables whose
// current value may still be read.
type liveSet map[*types.Var]bool

type liveLattice struct {
	pass    *analysis.Pass
	body    *ast.BlockStmt
	exclude map[*types.Var]bool // named results: naked returns read them
}

func (l *liveLattice) Boundary() liveSet { return liveSet{} }

func (l *liveLattice) Merge(a, b liveSet) liveSet {
	out := make(liveSet, len(a)+len(b))
	for v := range a {
		out[v] = true
	}
	for v := range b {
		out[v] = true
	}
	return out
}

func (l *liveLattice) Equal(a, b liveSet) bool {
	if len(a) != len(b) {
		return false
	}
	for v := range a {
		if !b[v] {
			return false
		}
	}
	return true
}

// Transfer runs backward through the block's nodes: In is the fact at
// the block's end, the result is the fact at its start.
func (l *liveLattice) Transfer(b *cfg.Block, f liveSet) liveSet {
	out := make(liveSet, len(f))
	for v := range f {
		out[v] = true
	}
	for i := len(b.Nodes) - 1; i >= 0; i-- {
		out = liveStep(l.pass, out, b.Nodes[i], nil)
	}
	return out
}

// liveStep flows one node backward: kills (top-level assignments) then
// gens (reads, including inside function literals). With report set, an
// assignment that kills a variable not live after the node — and whose
// value comes from a call — is diagnosed.
func liveStep(pass *analysis.Pass, f liveSet, n ast.Node, report func(v *types.Var, at ast.Node)) liveSet {
	killed := map[*types.Var]bool{}
	if as, ok := n.(*ast.AssignStmt); ok {
		hasCall := false
		for _, rhs := range as.Rhs {
			ast.Inspect(rhs, func(m ast.Node) bool {
				if _, ok := m.(*ast.CallExpr); ok {
					hasCall = true
				}
				return true
			})
		}
		for _, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			v := varOf(pass, id)
			if v == nil || !types.Identical(v.Type(), errorType) {
				continue
			}
			if report != nil && hasCall && !f[v] {
				report(v, id)
			}
			killed[v] = true
		}
	}
	out := make(liveSet, len(f))
	for v := range f {
		if !killed[v] {
			out[v] = true
		}
	}
	ast.Inspect(n, func(m ast.Node) bool {
		id, ok := m.(*ast.Ident)
		if !ok {
			return true
		}
		if isAssignTarget(n, id) {
			return true
		}
		if v := varOf(pass, id); v != nil && types.Identical(v.Type(), errorType) {
			out[v] = true
		}
		return true
	})
	return out
}

func varOf(pass *analysis.Pass, id *ast.Ident) *types.Var {
	if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok {
		return v
	}
	v, _ := pass.TypesInfo.Defs[id].(*types.Var)
	return v
}

// isAssignTarget reports whether id is a top-level LHS of n.
func isAssignTarget(n ast.Node, id *ast.Ident) bool {
	as, ok := n.(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, lhs := range as.Lhs {
		if ast.Unparen(lhs) == id {
			return true
		}
	}
	return false
}

func namedResults(ft *ast.FuncType) []*ast.Ident {
	if ft == nil || ft.Results == nil {
		return nil
	}
	var out []*ast.Ident
	for _, field := range ft.Results.List {
		out = append(out, field.Names...)
	}
	return out
}

// checkDeadStores runs the liveness analysis over one body and reports
// error assignments that are dead on every path. Function literal
// interiors are opaque: their assignments are neither kills nor stores
// here (each literal body gets its own analysis from run).
func checkDeadStores(pass *analysis.Pass, body *ast.BlockStmt, named []*ast.Ident) {
	lat := &liveLattice{pass: pass, body: body, exclude: map[*types.Var]bool{}}
	for _, id := range named {
		if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
			lat.exclude[v] = true
		}
	}
	g := cfg.New(body)
	res := cfg.Backward[liveSet](g, lat)

	for _, b := range g.Blocks {
		endFact, reachable := res.In[b]
		if !reachable {
			continue
		}
		f := make(liveSet, len(endFact))
		for v := range endFact {
			f[v] = true
		}
		for i := len(b.Nodes) - 1; i >= 0; i-- {
			n := b.Nodes[i]
			if isLitInterior(body, n) {
				continue
			}
			f = liveStep(pass, f, n, func(v *types.Var, at ast.Node) {
				// Named results are read by naked returns; variables
				// declared outside this body (captured by a literal, or
				// parameters) have liveness we cannot judge locally.
				if lat.exclude[v] || v.Pos() < body.Pos() || v.Pos() > body.End() {
					return
				}
				pass.Reportf(at.Pos(), "error assigned to %s is never checked on any path "+
					"before it is reassigned or goes out of scope", v.Name())
			})
		}
	}
}

// isLitInterior reports whether n sits inside a function literal nested
// in body. The CFG flattens statements, so a literal's statements never
// appear as top-level nodes — but its creation expression does, and the
// gens it contributes are wanted. Only the report path filters.
func isLitInterior(body *ast.BlockStmt, n ast.Node) bool {
	inside := false
	ast.Inspect(body, func(m ast.Node) bool {
		if inside {
			return false
		}
		if lit, ok := m.(*ast.FuncLit); ok {
			if lit.Body.Pos() <= n.Pos() && n.End() <= lit.Body.End() {
				inside = true
			}
			return false
		}
		return true
	})
	return inside
}

// --- typed errors ------------------------------------------------------

// checkTypedErr flags ad-hoc error constructions returned from an
// annotated function: errors.New, or fmt.Errorf with no %w wrap.
func checkTypedErr(pass *analysis.Pass, fd *ast.FuncDecl) {
	analysis.InspectSkippingFuncLits(fd.Body, func(n ast.Node) {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return
		}
		for _, res := range ret.Results {
			call, ok := ast.Unparen(res).(*ast.CallExpr)
			if !ok {
				continue
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			f, _ := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if f == nil || f.Pkg() == nil {
				continue
			}
			switch f.Pkg().Path() + "." + f.Name() {
			case "errors.New":
				pass.Reportf(call.Pos(), "errors.New returned from a //gvad:typederr function; "+
					"return the package's typed errors so callers can errors.Is/As")
			case "fmt.Errorf":
				if len(call.Args) > 0 {
					if lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit); ok &&
						!strings.Contains(lit.Value, "%w") {
						pass.Reportf(call.Pos(), "fmt.Errorf without %%w returned from a "+
							"//gvad:typederr function; wrap a typed error or return one directly")
					}
				}
			}
		}
	})
}
