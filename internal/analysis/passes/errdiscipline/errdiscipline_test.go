package errdiscipline_test

import (
	"testing"

	"grammarviz/internal/analysis"
	"grammarviz/internal/analysis/analysistest"
	"grammarviz/internal/analysis/passes/errdiscipline"
)

func TestErrdiscipline(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{errdiscipline.Analyzer}, "./...")
}
