// Command mainpkg shows the library-only scoping: dropped errors in main
// packages are tolerated (CLIs print and exit), dead stores are not.
package main

import "errors"

type closer struct{}

func (c *closer) Close() error { return nil }

func mayFail(n int) error {
	if n < 0 {
		return errors.New("bad")
	}
	return nil
}

func main() {
	c := &closer{}
	c.Close() // no finding: main package

	err := mayFail(1) // want `never checked on any path`
	err = mayFail(2)
	_ = err
}
