// Package lib exercises the errdiscipline shapes in library code.
package lib

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"strings"
)

// ErrBadInput is the package's sentinel.
var ErrBadInput = errors.New("lib: bad input")

type closer struct{}

func (c *closer) Close() error { return nil }

func mayFail(n int) error {
	if n < 0 {
		return ErrBadInput
	}
	return nil
}

func value(n int) (int, error) { return n, mayFail(n) }

// Dropped discards the Close error on the floor.
func Dropped(c *closer) {
	c.Close() // want `error that is silently dropped`
}

// DroppedInClosure is just as silent inside a literal.
func DroppedInClosure(c *closer) func() {
	return func() {
		c.Close() // want `error that is silently dropped`
	}
}

// ExplicitDiscard is visible in review and allowed.
func ExplicitDiscard(c *closer) {
	_ = c.Close()
}

// Handled checks the error.
func Handled(c *closer) error {
	return c.Close()
}

// FmtExempt: the print family's errors are conventionally unactionable.
func FmtExempt(w *strings.Builder, b *bytes.Buffer) {
	fmt.Println("x")
	fmt.Fprintf(w, "%d", 1)
	w.WriteString("y")
	b.WriteByte('z')
}

// HashExempt: hash.Hash documents that Write never returns an error.
func HashExempt(data []byte) []byte {
	h := sha256.New()
	h.Write(data)
	return h.Sum(nil)
}

// DeadStore overwrites the first error before any path reads it.
func DeadStore(n int) error {
	err := mayFail(n) // want `never checked on any path`
	err = mayFail(n + 1)
	return err
}

// DeadOnAllPaths is dead even through the branch: both arms reassign.
func DeadOnAllPaths(n int, c bool) error {
	err := mayFail(n) // want `never checked on any path`
	if c {
		err = mayFail(n + 1)
	} else {
		err = mayFail(n + 2)
	}
	return err
}

// LiveOnOnePath reads the first store on the else arm: not dead.
func LiveOnOnePath(n int, c bool) error {
	err := mayFail(n)
	if c {
		err = mayFail(n + 1)
	} else if err != nil {
		return fmt.Errorf("first: %w", err)
	}
	return err
}

// LoopCarried is read by the next iteration's condition.
func LoopCarried(n int) error {
	var err error
	for i := 0; i < n && err == nil; i++ {
		err = value2(i)
	}
	return err
}

func value2(n int) error { return mayFail(n) }

// ClosureReader keeps the store live: the literal reads it later.
func ClosureReader(n int) func() error {
	var err error
	err = mayFail(n)
	return func() error { return err }
}

// ClosureWriter must not kill the outer store: the literal may run on no
// visible path.
func ClosureWriter(n int) error {
	err := mayFail(n)
	retry := func() { err = mayFail(n + 1) }
	if err != nil {
		retry()
	}
	return err
}

// NakedReturn: named results are read by the bare return; excluded.
func NakedReturn(n int) (err error) {
	err = mayFail(n)
	return
}

// MultiAssign: the error half of a pair, dead on every path.
func MultiAssign(n int) int {
	v, err := value(n) // want `never checked on any path`
	v2, err := value(v)
	if err != nil {
		return 0
	}
	return v2
}

// NilReset is not a store from a call; resets are idiomatic.
func NilReset(n int) error {
	err := mayFail(n)
	if err == ErrBadInput {
		err = nil
	}
	return err
}

// Typed returns the sentinel: complies with the directive.
//
//gvad:typederr
func Typed(n int) error {
	if n < 0 {
		return ErrBadInput
	}
	return nil
}

// TypedWrap wraps with %w: complies.
//
//gvad:typederr
func TypedWrap(n int) error {
	if err := mayFail(n); err != nil {
		return fmt.Errorf("checking %d: %w", n, err)
	}
	return nil
}

// AdHocNew constructs an unmatchable error on an annotated path.
//
//gvad:typederr
func AdHocNew(n int) error {
	if n < 0 {
		return errors.New("negative") // want `errors.New returned from a //gvad:typederr function`
	}
	return nil
}

// AdHocErrorf formats without wrapping.
//
//gvad:typederr
func AdHocErrorf(n int) error {
	if n < 0 {
		return fmt.Errorf("negative: %d", n) // want `fmt.Errorf without %w`
	}
	return nil
}

// Allowlisted carries a reviewed suppression.
func Allowlisted(c *closer) {
	//gvad:ignore errdiscipline fixture for the allowlisted-negative path
	c.Close()
}
