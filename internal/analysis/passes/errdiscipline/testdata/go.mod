module ed

go 1.22
