// Package ctxdiscipline enforces the repo's context-plumbing rules:
//
//  1. ctx-first: where a function takes a context.Context, it must be the
//     first parameter (Go API convention; the repo's *Ctx APIs all comply).
//  2. no ambient contexts in library code: context.Background() and
//     context.TODO() inside library packages sever the caller's
//     cancellation chain. The one sanctioned shape is the non-Ctx
//     compatibility wrapper — Background() passed directly as the first
//     argument of a call whose callee takes ctx first (e.g.
//     `return NewCtx(context.Background(), ts, opts)`), which is exactly
//     "this API deliberately has no deadline". _test.go files and package
//     main are exempt.
//  3. Ctx variants: an exported library function whose body runs
//     series-length-bounded nested loops (the statically detectable
//     signature of a long-running scan) must either take a context or have
//     a Name+"Ctx" sibling so callers can bound it.
package ctxdiscipline

import (
	"go/ast"
	"go/types"
	"strings"

	"grammarviz/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxdiscipline",
	Doc: "enforces ctx-first parameters, bans ambient context.Background/TODO in " +
		"library packages outside compatibility wrappers, and requires Ctx variants " +
		"for exported series-scanning functions",
	Run: run,
}

func run(pass *analysis.Pass) error {
	// Rule 1 applies everywhere, including package main; rules 2 and 3
	// police library packages only.
	library := pass.Pkg.Name() != "main"
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		checkCtxFirst(pass, f)
		if library {
			checkAmbientContext(pass, f)
			checkCtxVariant(pass, f)
		}
	}
	return nil
}

// paramTypes flattens a field list into one entry per declared name
// (or per anonymous field).
func paramTypes(pass *analysis.Pass, fl *ast.FieldList) []types.Type {
	if fl == nil {
		return nil
	}
	var out []types.Type
	for _, field := range fl.List {
		t := pass.TypesInfo.Types[field.Type].Type
		if ell, ok := field.Type.(*ast.Ellipsis); ok {
			// The context type inside a variadic parameter is still a
			// discipline violation; record the element type.
			t = pass.TypesInfo.Types[ell.Elt].Type
		}
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			out = append(out, t)
		}
	}
	return out
}

// checkCtxFirst flags any function type (declaration or literal) whose
// context.Context parameter is not in the first position.
func checkCtxFirst(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		var ft *ast.FuncType
		switch n := n.(type) {
		case *ast.FuncDecl:
			ft = n.Type
		case *ast.FuncLit:
			ft = n.Type
		default:
			return true
		}
		params := paramTypes(pass, ft.Params)
		for i, t := range params {
			if t == nil || !analysis.IsContextType(t) {
				continue
			}
			if i > 0 {
				pass.Reportf(ft.Params.Pos(),
					"context.Context is parameter %d; it must be the first parameter", i+1)
			}
			break // only the first ctx parameter matters
		}
		return true
	})
}

// isAmbientCtxCall reports whether call is context.Background() or
// context.TODO().
func isAmbientCtxCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "context" {
		return "", false
	}
	if obj.Name() == "Background" || obj.Name() == "TODO" {
		return obj.Name(), true
	}
	return "", false
}

// checkAmbientContext flags Background()/TODO() except in the compatibility
// wrapper position: the expression is the first argument of a call whose
// callee takes a context.Context first.
func checkAmbientContext(pass *analysis.Pass, f *ast.File) {
	// stack tracks ancestors so the wrapper shape (direct first argument
	// of a ctx-first call) can be recognized.
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, ok := isAmbientCtxCall(pass, call)
		if !ok {
			return true
		}
		if wrapperPosition(pass, stack, call) {
			return true
		}
		pass.Reportf(call.Pos(),
			"context.%s() in a library package severs the caller's cancellation "+
				"chain; take a ctx parameter (or delegate to the Ctx variant as a "+
				"first argument, the compatibility-wrapper shape)", name)
		return true
	})
}

// wrapperPosition reports whether call (an ambient-context expression) sits
// directly in the first-argument slot of a call to a ctx-first function.
func wrapperPosition(pass *analysis.Pass, stack []ast.Node, call *ast.CallExpr) bool {
	if len(stack) < 2 {
		return false
	}
	parent, ok := stack[len(stack)-2].(*ast.CallExpr)
	if !ok || len(parent.Args) == 0 || parent.Args[0] != call {
		return false
	}
	tv, ok := pass.TypesInfo.Types[parent.Fun]
	if !ok {
		return false
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok || sig.Params().Len() == 0 {
		return false
	}
	return analysis.IsContextType(sig.Params().At(0).Type())
}

// checkCtxVariant flags exported functions that scan series data (nested
// loops both bounded by a []float64) with neither a ctx parameter nor a
// Name+"Ctx" sibling.
func checkCtxVariant(pass *analysis.Pass, f *ast.File) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil || !fd.Name.IsExported() {
			continue
		}
		if strings.HasSuffix(fd.Name.Name, "Ctx") {
			continue
		}
		if hasCtxParam(pass, fd) {
			continue
		}
		if !hasNestedSeriesLoop(pass, fd.Body) {
			continue
		}
		if hasCtxSibling(pass, fd) {
			continue
		}
		pass.Reportf(fd.Name.Pos(),
			"exported %s scans series data in nested loops but has no ctx parameter "+
				"and no %sCtx variant; long-running scans must be cancellable",
			fd.Name.Name, fd.Name.Name)
	}
}

func hasCtxParam(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	for _, t := range paramTypes(pass, fd.Type.Params) {
		if t != nil && analysis.IsContextType(t) {
			return true
		}
	}
	return false
}

// seriesBounded reports whether a loop's iteration count is tied to series
// data: a range over a []float64, or a for condition that mentions a
// []float64 value (e.g. `i <= len(ts)-w`).
func seriesBounded(pass *analysis.Pass, n ast.Stmt) bool {
	isSeries := func(e ast.Expr) bool {
		tv, ok := pass.TypesInfo.Types[e]
		if !ok || tv.Type == nil {
			return false
		}
		sl, ok := tv.Type.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := sl.Elem().Underlying().(*types.Basic)
		return ok && b.Kind() == types.Float64
	}
	switch loop := n.(type) {
	case *ast.RangeStmt:
		return isSeries(loop.X)
	case *ast.ForStmt:
		if loop.Cond == nil {
			return false
		}
		found := false
		ast.Inspect(loop.Cond, func(e ast.Node) bool {
			if ex, ok := e.(ast.Expr); ok && isSeries(ex) {
				found = true
			}
			return !found
		})
		return found
	}
	return false
}

// hasNestedSeriesLoop reports whether body contains a series-bounded loop
// nested inside another series-bounded loop — the static signature of an
// O(n·m) scan over the input series.
func hasNestedSeriesLoop(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		outer, ok := n.(ast.Stmt)
		if !ok || !seriesBounded(pass, outer) {
			return true
		}
		var inner ast.Node
		switch l := n.(type) {
		case *ast.RangeStmt:
			inner = l.Body
		case *ast.ForStmt:
			inner = l.Body
		}
		ast.Inspect(inner, func(m ast.Node) bool {
			if s, ok := m.(ast.Stmt); ok && m != inner && seriesBounded(pass, s) {
				found = true
			}
			return !found
		})
		return !found
	})
	return found
}

// hasCtxSibling reports whether the package declares Name+"Ctx" alongside
// fd — as a package-level function, or as a method on the same receiver.
func hasCtxSibling(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	want := fd.Name.Name + "Ctx"
	if fd.Recv == nil {
		return pass.Pkg.Scope().Lookup(want) != nil
	}
	recvType := pass.TypesInfo.Types[fd.Recv.List[0].Type].Type
	if recvType == nil {
		return false
	}
	obj, _, _ := types.LookupFieldOrMethod(recvType, true, pass.Pkg, want)
	_, isFunc := obj.(*types.Func)
	return isFunc
}
