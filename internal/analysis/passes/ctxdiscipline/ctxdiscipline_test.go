package ctxdiscipline_test

import (
	"testing"

	"grammarviz/internal/analysis"
	"grammarviz/internal/analysis/analysistest"
	"grammarviz/internal/analysis/passes/ctxdiscipline"
)

func TestCtxdiscipline(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{ctxdiscipline.Analyzer}, "./...")
}
