// Package lib exercises every ctxdiscipline rule in a library package.
package lib

import "context"

// CtxFirst is compliant: the context leads.
func CtxFirst(ctx context.Context, n int) int { return n }

// CtxSecond violates ctx-first.
func CtxSecond(n int, ctx context.Context) int { return n } // want `context.Context is parameter 2`

// CtxVariadic violates ctx-first through a variadic parameter.
func CtxVariadic(n int, ctxs ...context.Context) int { return n } // want `context.Context is parameter 2`

// Function literals are checked too.
var lit = func(n int, ctx context.Context) {} // want `context.Context is parameter 2`

// Ambient severs the caller's cancellation chain.
func Ambient() error {
	ctx := context.Background() // want `context.Background\(\) in a library package`
	return ctx.Err()
}

// AmbientIgnored carries a reviewed suppression and stays silent.
func AmbientIgnored() error {
	//gvad:ignore ctxdiscipline fixture for the allowlisted-negative path
	ctx := context.TODO()
	return ctx.Err()
}

// ScanCtx is the cancellable scan; the Ctx suffix exempts it from rule 3.
func ScanCtx(ctx context.Context, ts []float64) int {
	hits := 0
	for i := range ts {
		for j := range ts {
			if ts[i] == ts[j] {
				hits++
			}
		}
		if ctx.Err() != nil {
			break
		}
	}
	return hits
}

// Scan is the compatibility wrapper: an ambient context passed directly
// as the first argument of a ctx-first callee is the one sanctioned
// shape, so no diagnostic fires here.
func Scan(ts []float64) int {
	return ScanCtx(context.Background(), ts)
}

// Cover runs a nested series scan but its CoverCtx sibling satisfies
// rule 3.
func Cover(ts []float64) int {
	n := 0
	for i := range ts {
		for j := range ts {
			if i == j {
				n++
			}
		}
	}
	return n
}

// CoverCtx is the cancellable variant rule 3 looks for.
func CoverCtx(ctx context.Context, ts []float64) int {
	if ctx.Err() != nil {
		return 0
	}
	return Cover(ts)
}

// Sweep runs a series-bounded nested scan with no ctx parameter and no
// SweepCtx sibling.
func Sweep(ts []float64) int { // want `exported Sweep scans series data`
	best := 0
	for i := 0; i < len(ts); i++ {
		for j := i; j < len(ts); j++ {
			if ts[j] > ts[i] {
				best = j
			}
		}
	}
	return best
}

// sweep is unexported, so rule 3 does not apply.
func sweep(ts []float64) int {
	n := 0
	for range ts {
		for range ts {
			n++
		}
	}
	return n
}

// Series exercises the method-sibling lookup.
type Series struct{ data []float64 }

// Max scans but has a MaxCtx method sibling on the same receiver.
func (s *Series) Max() float64 {
	best := 0.0
	for i := range s.data {
		for j := range s.data {
			if s.data[j] > s.data[i] && s.data[j] > best {
				best = s.data[j]
			}
		}
	}
	return best
}

// MaxCtx is the cancellable variant.
func (s *Series) MaxCtx(ctx context.Context) float64 {
	if ctx.Err() != nil {
		return 0
	}
	return s.Max()
}
