// Command app shows package main is exempt from the ambient-context and
// Ctx-variant rules but not from ctx-first.
package main

import "context"

func helper(n int, ctx context.Context) { _ = ctx } // want `context.Context is parameter 2`

func main() {
	ctx := context.Background() // ambient contexts are fine at the entry point
	_ = ctx
	helper(1, context.TODO())
}
