// Package analysis is the repo's custom static-analysis framework: a
// deliberately small, stdlib-only mirror of the golang.org/x/tools
// go/analysis API. The four gvadlint passes (nobarego, ctxdiscipline,
// noalloc, poolrelease — see internal/analysis/passes) are written against
// the same Analyzer/Pass/Diagnostic shapes as upstream analyzers, so if the
// x/tools dependency is ever taken they re-home onto the real multichecker
// with mechanical changes only. Until then the driver in cmd/gvadlint runs
// them over packages loaded by internal/analysis/load, and the upstream
// passes the issue tracker names (copylock, nilness-adjacent checks) come
// from `go vet`, which embeds them in the toolchain.
//
// Suppressions: a diagnostic can be silenced with a
//
//	//gvad:ignore <analyzer> <reason>
//
// comment on the flagged line or the line directly above it, in the spirit
// of staticcheck's //lint:ignore. The analyzer name must match (or be
// "all"), and the reason is mandatory by convention — DESIGN.md §11 says
// when a suppression is acceptable.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"grammarviz/internal/analysis/load"
)

// Analyzer is one named static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //gvad:ignore
	// directives.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run analyzes one package, reporting findings through pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one package's syntax and types to an analyzer, plus the
// session state shared across every package of one driver invocation.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Session is shared by all packages and analyzers of one Run call;
	// analyzers use it to carry cross-package facts (the driver visits
	// packages in dependency order, so a dependency's facts are always
	// recorded before its importers are analyzed).
	Session *Session

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Position token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Position, d.Analyzer, d.Message)
}

// Session is the cross-package key/value store for one driver run.
type Session struct{ values map[string]any }

// NewSession returns an empty session.
func NewSession() *Session { return &Session{values: make(map[string]any)} }

// Get returns the value stored under key, or nil.
func (s *Session) Get(key string) any { return s.values[key] }

// Set stores value under key.
func (s *Session) Set(key string, value any) { s.values[key] = value }

// ignoreDirective is one parsed //gvad:ignore comment.
type ignoreDirective struct {
	file      string
	line      int
	analyzers []string
}

func (d ignoreDirective) matches(diag Diagnostic) bool {
	if diag.Position.Filename != d.file {
		return false
	}
	// The directive silences its own line and the line below it (the
	// comment-above-the-statement form).
	if diag.Position.Line != d.line && diag.Position.Line != d.line+1 {
		return false
	}
	for _, name := range d.analyzers {
		if name == diag.Analyzer || name == "all" {
			return true
		}
	}
	return false
}

// collectIgnores parses the //gvad:ignore directives of a file set.
func collectIgnores(fset *token.FileSet, files []*ast.File) []ignoreDirective {
	var out []ignoreDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "gvad:ignore") {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, "gvad:ignore"))
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				out = append(out, ignoreDirective{
					file:      pos.Filename,
					line:      pos.Line,
					analyzers: strings.Split(fields[0], ","),
				})
			}
		}
	}
	return out
}

// Run applies every analyzer to every non-standard-library package of prog,
// in dependency order, and returns the surviving (non-suppressed)
// diagnostics sorted by position. keep selects which packages are analyzed
// (nil keeps all non-stdlib packages); dependencies that keep rejects are
// still visited so cross-package facts stay complete.
func Run(prog *load.Program, analyzers []*Analyzer, keep func(*load.Package) bool) ([]Diagnostic, error) {
	session := NewSession()
	var diags []Diagnostic
	seen := make(map[string]bool)
	for _, pkg := range prog.Packages {
		if pkg.Standard || pkg.Types == nil || pkg.TypesInfo == nil {
			continue
		}
		ignores := collectIgnores(prog.Fset, pkg.Syntax)
		emit := func(d Diagnostic) {
			for _, ig := range ignores {
				if ig.matches(d) {
					return
				}
			}
			key := d.String()
			if seen[key] {
				return
			}
			seen[key] = true
			if keep != nil && !keep(pkg) {
				return
			}
			diags = append(diags, d)
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      prog.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Session:   session,
				report:    emit,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Position, diags[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// Suppression is one //gvad:ignore directive found in an analyzed
// package.
type Suppression struct {
	Position  token.Position
	Analyzers []string
}

// Suppressions returns every //gvad:ignore directive in prog's
// non-standard-library packages, with keep selecting packages the same
// way Run does (nil keeps all). The count is the lint suite's suppression
// budget: a test pins it at zero so silencing a finding is a visible,
// reviewed act instead of quiet accumulation.
func Suppressions(prog *load.Program, keep func(*load.Package) bool) []Suppression {
	var out []Suppression
	for _, pkg := range prog.Packages {
		if pkg.Standard || pkg.Types == nil {
			continue
		}
		if keep != nil && !keep(pkg) {
			continue
		}
		for _, d := range collectIgnores(prog.Fset, pkg.Syntax) {
			out = append(out, Suppression{
				Position:  token.Position{Filename: d.file, Line: d.line},
				Analyzers: d.analyzers,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Position, out[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return out
}

// IsTestFile reports whether the file a node belongs to is a _test.go file.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// InspectSkippingFuncLits visits every node under n except the interiors
// of function literals — the shape flow-sensitive passes use when a
// literal's body is analyzed as its own function.
func InspectSkippingFuncLits(n ast.Node, visit func(ast.Node)) {
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return true
		}
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		visit(m)
		return true
	})
}
