package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"

	"grammarviz/internal/sax"
	"grammarviz/internal/timeseries"
	"grammarviz/internal/worker"
)

// MultiscaleDensity builds a parameter-robust variant of the rule density
// curve: the pipeline is run once per window length, each curve is
// normalized to [0, 1] by its own maximum, and the normalized curves are
// averaged. A point that stays incompressible across scales scores near
// zero everywhere, so the combined curve suppresses the single-window
// failure modes the paper's Figure 10 exposes. This is an extension in
// the spirit of the paper's future-work section, not a paper algorithm.
//
// The returned curve has one value per series point, in [0, 1].
func MultiscaleDensity(ts []float64, windows []int, paa, alphabet int, red sax.Reduction) ([]float64, error) {
	return MultiscaleDensityWorkers(ts, windows, paa, alphabet, red, 0)
}

// MultiscaleDensityWorkers is MultiscaleDensity with the per-window
// pipelines fanned out over up to workers goroutines (workers <= 0 selects
// GOMAXPROCS). The per-window curves are combined in window order, so the
// result is identical for every worker count.
func MultiscaleDensityWorkers(ts []float64, windows []int, paa, alphabet int, red sax.Reduction, workers int) ([]float64, error) {
	return MultiscaleDensityCtx(context.Background(), ts, windows, paa, alphabet, red, workers)
}

// MultiscaleDensityCtx is MultiscaleDensityWorkers with cooperative
// cancellation and panic containment. A cancelled or expired context aborts
// the remaining per-window pipelines and returns a ctx.Err()-wrapped error;
// a panic on any worker goroutine is recovered into a *worker.PanicError
// and cancels the siblings. Per-window validation or analysis failures are
// NOT errors: such windows are skipped exactly as before, because the
// detector's purpose is to survive unusable scales.
func MultiscaleDensityCtx(ctx context.Context, ts []float64, windows []int, paa, alphabet int, red sax.Reduction, workers int) ([]float64, error) {
	if len(windows) == 0 {
		return nil, fmt.Errorf("core: no windows given")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(windows) {
		workers = len(windows)
	}
	// Each pipeline run is itself parallel when it is the only one; when
	// several windows run concurrently, each run stays serial inside so the
	// fan-out does not oversubscribe the cores.
	inner := 1
	if workers == 1 {
		inner = 0
	}

	curves := make([][]int, len(windows)) // nil = window unusable
	run := func(ctx context.Context, wi int) error {
		p := sax.Params{Window: windows[wi], PAA: paa, Alphabet: alphabet}
		if p.Validate(len(ts)) != nil {
			return nil
		}
		pipe, err := AnalyzeCtx(ctx, ts, Config{Params: p, Reduction: red, Workers: inner})
		if err != nil {
			// A context error must stop the sweep; any other failure just
			// means this window contributes nothing.
			if cerr := ctx.Err(); cerr != nil && errors.Is(err, cerr) {
				return err
			}
			return nil
		}
		curves[wi] = pipe.Density
		return nil
	}
	if workers <= 1 {
		for wi := range windows {
			if err := run(ctx, wi); err != nil {
				return nil, fmt.Errorf("core: multiscale cancelled: %w", err)
			}
		}
	} else {
		g, gctx := worker.WithContext(ctx)
		for w := 0; w < workers; w++ {
			w := w
			g.Go(func() error {
				for wi := w; wi < len(windows); wi += workers {
					if err := run(gctx, wi); err != nil {
						return err
					}
				}
				return nil
			})
		}
		if err := g.Wait(); err != nil {
			return nil, fmt.Errorf("core: multiscale aborted: %w", err)
		}
	}

	combined := make([]float64, len(ts))
	used := 0
	for _, density := range curves {
		if density == nil {
			continue
		}
		max := 0
		for _, v := range density {
			if v > max {
				max = v
			}
		}
		if max == 0 {
			continue
		}
		inv := 1 / float64(max)
		for i, v := range density {
			combined[i] += float64(v) * inv
		}
		used++
	}
	if used == 0 {
		return nil, fmt.Errorf("core: no window produced a usable density curve")
	}
	inv := 1 / float64(used)
	for i := range combined {
		combined[i] *= inv
	}
	return combined, nil
}

// MultiscaleMinima reports the maximal intervals whose combined density
// stays below the given fraction of the curve's mean (e.g. 0.2), ignoring
// margin points at each edge. It is the thresholded detector for
// MultiscaleDensity curves.
func MultiscaleMinima(curve []float64, margin int, fraction float64) []timeseries.Interval {
	if margin < 0 {
		margin = 0
	}
	if 2*margin >= len(curve) {
		return nil
	}
	inner := curve[margin : len(curve)-margin]
	var sum float64
	for _, v := range inner {
		sum += v
	}
	threshold := sum / float64(len(inner)) * fraction

	var out []timeseries.Interval
	start := -1
	for i, v := range inner {
		switch {
		case v <= threshold && start < 0:
			start = i
		case v > threshold && start >= 0:
			out = append(out, timeseries.Interval{Start: start + margin, End: i - 1 + margin})
			start = -1
		}
	}
	if start >= 0 {
		out = append(out, timeseries.Interval{Start: start + margin, End: len(inner) - 1 + margin})
	}
	return out
}
