package core

import (
	"testing"

	"grammarviz/internal/sax"
	"grammarviz/internal/timeseries"
)

func TestMultiscaleDensityFindsAnomaly(t *testing.T) {
	at, length := 900, 60
	ts := plantedSeries(1800, 60, at, length, 9)
	curve, err := MultiscaleDensity(ts, []int{30, 60, 120}, 5, 4, sax.ReductionExact)
	if err != nil {
		t.Fatalf("MultiscaleDensity: %v", err)
	}
	if len(curve) != len(ts) {
		t.Fatalf("curve length %d", len(curve))
	}
	for _, v := range curve {
		if v < 0 || v > 1 {
			t.Fatalf("curve value %v outside [0,1]", v)
		}
	}
	minima := MultiscaleMinima(curve, 120, 0.2)
	if len(minima) == 0 {
		t.Fatal("no multiscale minima")
	}
	planted := timeseries.Interval{Start: at - 60, End: at + length + 60}
	hit := false
	for _, m := range minima {
		if m.Overlaps(planted) {
			hit = true
		}
	}
	if !hit {
		t.Errorf("minima %v miss planted %v", minima, planted)
	}
}

func TestMultiscaleDensitySkipsBadWindows(t *testing.T) {
	ts := plantedSeries(600, 60, 300, 60, 10)
	// One invalid window (too big) must be skipped, not fail the call.
	curve, err := MultiscaleDensity(ts, []int{60, 100000}, 5, 4, sax.ReductionExact)
	if err != nil {
		t.Fatalf("MultiscaleDensity: %v", err)
	}
	if len(curve) != len(ts) {
		t.Fatal("bad curve length")
	}
}

func TestMultiscaleDensityErrors(t *testing.T) {
	ts := plantedSeries(600, 60, 300, 60, 11)
	if _, err := MultiscaleDensity(ts, nil, 5, 4, sax.ReductionExact); err == nil {
		t.Error("no windows should error")
	}
	if _, err := MultiscaleDensity(ts, []int{100000}, 5, 4, sax.ReductionExact); err == nil {
		t.Error("all-invalid windows should error")
	}
}

func TestMultiscaleMinimaEdgeCases(t *testing.T) {
	if got := MultiscaleMinima([]float64{0, 0}, 5, 0.2); got != nil {
		t.Errorf("oversize margin = %v", got)
	}
	// Run reaching the inner end is closed properly.
	curve := []float64{1, 1, 0, 0}
	got := MultiscaleMinima(curve, 0, 0.2)
	if len(got) != 1 || got[0] != (timeseries.Interval{Start: 2, End: 3}) {
		t.Errorf("minima = %v", got)
	}
}
