package core

import (
	"context"
	"math"

	"grammarviz/internal/paa"
	"grammarviz/internal/sax"
	"grammarviz/internal/timeseries"
)

// approxStride bounds the cancellation latency of the approximation-
// distance scan: ctx is polled once per this many window positions.
const approxStride = 1024

// ApproximationDistance measures how much information the discretization
// destroys: the mean Euclidean distance between each z-normalized window
// and its SAX reconstruction (each PAA segment replaced by the mid-point
// value of its letter's breakpoint region). It is the x-axis of the
// paper's Figure 10 parameter-selection study — small values mean the
// symbolic space preserves the signal's regularities.
func ApproximationDistance(ts []float64, p sax.Params) (float64, error) {
	return ApproximationDistanceCtx(context.Background(), ts, p)
}

// ApproximationDistanceCtx is ApproximationDistance with cooperative
// cancellation: the O(len(ts)·window) window scan polls ctx at a bounded
// stride and returns a ctx.Err()-wrapped error when cancelled.
func ApproximationDistanceCtx(ctx context.Context, ts []float64, p sax.Params) (float64, error) {
	if err := p.Validate(len(ts)); err != nil {
		return 0, err
	}
	cuts, err := sax.Breakpoints(p.Alphabet)
	if err != nil {
		return 0, err
	}
	mids := letterMidpoints(cuts)

	zn := make([]float64, p.Window)
	segs := make([]float64, p.PAA)
	segLen := float64(p.Window) / float64(p.PAA)

	poll := ctx.Done() != nil
	var total float64
	count := 0
	for start := 0; start+p.Window <= len(ts); start++ {
		if poll && start&(approxStride-1) == 0 {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
		}
		timeseries.ZNormalizeInto(zn, ts[start:start+p.Window], timeseries.DefaultNormThreshold)
		if err := paa.TransformInto(segs, zn); err != nil {
			return 0, err
		}
		var sum float64
		for i, v := range zn {
			seg := int(float64(i) / segLen)
			if seg >= p.PAA {
				seg = p.PAA - 1
			}
			rec := mids[sax.Letter(cuts, segs[seg])]
			d := v - rec
			sum += d * d
		}
		total += math.Sqrt(sum)
		count++
	}
	return total / float64(count), nil
}

// letterMidpoints returns a representative value for each letter region:
// the midpoint between its breakpoints, with the open-ended outer regions
// represented by their inner breakpoint offset by half the neighbouring
// region's width (a pragmatic finite stand-in for the region median).
func letterMidpoints(cuts []float64) []float64 {
	a := len(cuts) + 1
	mids := make([]float64, a)
	if a == 2 {
		mids[0], mids[1] = -0.7, 0.7 // ±median of a standard normal half
		return mids
	}
	for i := 1; i < a-1; i++ {
		mids[i] = (cuts[i-1] + cuts[i]) / 2
	}
	firstWidth := cuts[1] - cuts[0]
	mids[0] = cuts[0] - firstWidth/2
	lastWidth := cuts[len(cuts)-1] - cuts[len(cuts)-2]
	mids[a-1] = cuts[len(cuts)-1] + lastWidth/2
	return mids
}
