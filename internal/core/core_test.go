package core

import (
	"math"
	"math/rand"
	"testing"

	"grammarviz/internal/sax"
	"grammarviz/internal/timeseries"
)

func plantedSeries(n int, period float64, at, length int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	ts := make([]float64, n)
	for i := range ts {
		ts[i] = math.Sin(2*math.Pi*float64(i)/period) + rng.NormFloat64()*0.02
	}
	for i := at; i < at+length && i < n; i++ {
		ts[i] = math.Sin(4*math.Pi*float64(i)/period) + rng.NormFloat64()*0.02
	}
	return ts
}

func TestAnalyzePipeline(t *testing.T) {
	ts := plantedSeries(1500, 60, 900, 60, 1)
	p, err := Analyze(ts, Config{Params: sax.Params{Window: 60, PAA: 6, Alphabet: 4}})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if len(p.Density) != len(ts) {
		t.Errorf("density length %d != series %d", len(p.Density), len(ts))
	}
	if p.Rules.NumRules() == 0 {
		t.Error("no rules induced on periodic data")
	}
	if p.GrammarSize() <= 0 {
		t.Error("GrammarSize not positive")
	}
	if err := p.Grammar.Verify(p.Disc.Strings()); err != nil {
		t.Errorf("grammar invariant violated: %v", err)
	}
}

func TestAnalyzeRejectsNaN(t *testing.T) {
	ts := plantedSeries(500, 50, 200, 50, 2)
	ts[100] = math.NaN()
	if _, err := Analyze(ts, Config{Params: sax.Params{Window: 50, PAA: 5, Alphabet: 4}}); err == nil {
		t.Error("NaN input should be rejected")
	}
}

func TestAnalyzeBadParams(t *testing.T) {
	ts := plantedSeries(100, 20, 50, 20, 3)
	if _, err := Analyze(ts, Config{Params: sax.Params{Window: 500, PAA: 5, Alphabet: 4}}); err == nil {
		t.Error("oversize window should error")
	}
}

func TestPipelineDetectorsAgreeOnPlant(t *testing.T) {
	at, length := 900, 60
	ts := plantedSeries(1800, 60, at, length, 4)
	p, err := Analyze(ts, Config{Params: sax.Params{Window: 60, PAA: 6, Alphabet: 4}, Seed: 4})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	planted := timeseries.Interval{Start: at - 60, End: at + length + 60}

	hitDensity := false
	for _, iv := range p.GlobalMinima() {
		if iv.Overlaps(planted) {
			hitDensity = true
		}
	}
	if !hitDensity {
		t.Errorf("density minima %v miss planted %v", p.GlobalMinima(), planted)
	}

	res, err := p.Discords(1)
	if err != nil {
		t.Fatalf("Discords: %v", err)
	}
	if !res.Discords[0].Interval.Overlaps(planted) {
		t.Errorf("RRA discord %v misses planted %v", res.Discords[0].Interval, planted)
	}
}

func TestDensityAnomaliesThreshold(t *testing.T) {
	ts := plantedSeries(1500, 60, 900, 60, 5)
	p, err := Analyze(ts, Config{Params: sax.Params{Window: 60, PAA: 6, Alphabet: 4}})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	all := p.DensityAnomalies(1<<30, 0) // everything is below a huge threshold
	if len(all) == 0 {
		t.Fatal("expected at least one interval")
	}
	none := p.DensityAnomalies(0, 0) // nothing is below zero
	if len(none) != 0 {
		t.Errorf("threshold 0 returned %d anomalies", len(none))
	}
}

func TestNearestNonSelfSmoke(t *testing.T) {
	ts := plantedSeries(900, 60, 450, 60, 6)
	p, err := Analyze(ts, Config{Params: sax.Params{Window: 60, PAA: 6, Alphabet: 4}})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	nns := p.NearestNonSelf()
	if len(nns) == 0 {
		t.Error("no nearest-non-self records")
	}
}

func TestApproximationDistance(t *testing.T) {
	ts := plantedSeries(800, 40, 400, 40, 7)
	// Finer discretization must approximate better (smaller distance).
	coarse, err := ApproximationDistance(ts, sax.Params{Window: 40, PAA: 2, Alphabet: 2})
	if err != nil {
		t.Fatalf("coarse: %v", err)
	}
	fine, err := ApproximationDistance(ts, sax.Params{Window: 40, PAA: 10, Alphabet: 10})
	if err != nil {
		t.Fatalf("fine: %v", err)
	}
	if fine >= coarse {
		t.Errorf("fine approx distance %v >= coarse %v", fine, coarse)
	}
	if fine < 0 || coarse < 0 {
		t.Error("distances must be non-negative")
	}
	if _, err := ApproximationDistance(ts, sax.Params{Window: 4000, PAA: 4, Alphabet: 4}); err == nil {
		t.Error("bad params should error")
	}
}

func TestLetterMidpointsMonotone(t *testing.T) {
	for a := 2; a <= 12; a++ {
		cuts, err := sax.Breakpoints(a)
		if err != nil {
			t.Fatal(err)
		}
		mids := letterMidpoints(cuts)
		if len(mids) != a {
			t.Fatalf("a=%d: %d midpoints", a, len(mids))
		}
		for i := 1; i < len(mids); i++ {
			if mids[i] <= mids[i-1] {
				t.Errorf("a=%d: midpoints not increasing: %v", a, mids)
			}
		}
		// Each midpoint must map back to its own letter.
		for i, m := range mids {
			if got := sax.Letter(cuts, m); int(got) != i {
				t.Errorf("a=%d: midpoint %d maps to letter %d", a, i, got)
			}
		}
	}
}

func TestAnalyzeReductionPassThrough(t *testing.T) {
	ts := plantedSeries(900, 60, 450, 60, 21)
	params := sax.Params{Window: 60, PAA: 6, Alphabet: 4}
	exact, err := Analyze(ts, Config{Params: params}) // zero value = EXACT
	if err != nil {
		t.Fatal(err)
	}
	none, err := Analyze(ts, Config{Params: params, Reduction: sax.ReductionNone})
	if err != nil {
		t.Fatal(err)
	}
	if len(exact.Disc.Words) >= len(none.Disc.Words) {
		t.Errorf("EXACT (%d words) should record fewer than NONE (%d)",
			len(exact.Disc.Words), len(none.Disc.Words))
	}
	if none.Disc.Raw != len(none.Disc.Words) {
		t.Errorf("NONE must keep every window: raw %d vs words %d",
			none.Disc.Raw, len(none.Disc.Words))
	}
}

func TestPipelineRetainsSeriesByReference(t *testing.T) {
	ts := plantedSeries(600, 60, 300, 60, 22)
	p, err := Analyze(ts, Config{Params: sax.Params{Window: 60, PAA: 6, Alphabet: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if &p.TS[0] != &ts[0] {
		t.Error("pipeline should retain the series by reference (documented)")
	}
}
