// Package core wires the paper's pipeline together: sliding-window SAX
// discretization → Sequitur grammar induction → rule-to-interval mapping →
// the two detectors (rule density curve, Section 4.1; RRA discord search,
// Section 4.2). It is the engine behind the library's public API.
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"grammarviz/internal/density"
	"grammarviz/internal/discord"
	"grammarviz/internal/grammar"
	"grammarviz/internal/sax"
	"grammarviz/internal/sequitur"
	"grammarviz/internal/timeseries"
	"grammarviz/internal/workspace"
)

// induceStride bounds the cancellation latency of grammar induction: the
// context is polled once per this many appended tokens. Induction is
// amortized O(1) per token, so the latency between polls is bounded.
const induceStride = 1024

// Config selects the discretization parameters and the determinism seed
// for the heuristic orderings.
type Config struct {
	Params    sax.Params
	Reduction sax.Reduction // default ReductionExact (the paper's strategy)
	Seed      int64         // seeds the random tie-breaking in HOTSAX/RRA

	// Workers bounds the goroutines used by the parallel stages
	// (discretization, RRA, nearest-non-self): 0 selects all cores, 1
	// forces serial execution. Results are byte-identical for every value.
	Workers int
}

// Pipeline holds every intermediate product of one analysis run, so the
// detectors, the visualization, and the experiment harness can share work.
type Pipeline struct {
	TS      []float64
	Config  Config
	Disc    *sax.Discretization
	Grammar *sequitur.Grammar
	Rules   *grammar.RuleSet
	Density []int // the rule density curve

	statsOnce sync.Once
	stats     *discord.Stats
}

// Stats returns the shared per-series distance statistics (prefix sums),
// built lazily on first use and then reused by every discord search on this
// pipeline. Safe for concurrent callers.
func (p *Pipeline) Stats() *discord.Stats {
	p.statsOnce.Do(func() { p.stats = discord.NewStats(p.TS) })
	return p.stats
}

// Analyze runs discretization, grammar induction, rule mapping and density
// construction on ts. The returned Pipeline retains ts (not a copy).
func Analyze(ts []float64, cfg Config) (*Pipeline, error) {
	return AnalyzeCtx(context.Background(), ts, cfg)
}

// AnalyzeCtx is Analyze with cooperative cancellation: discretization and
// grammar induction poll ctx at bounded intervals and return a
// ctx.Err()-wrapped error when the context is cancelled or its deadline
// passes. With a never-cancelled context the pipeline is identical to
// Analyze's.
//
// Scratch state (the Sequitur inducer's symbol arena and maps, the density
// curve's difference array) is checked out of the shared workspace pool
// for the duration of the call, so steady-state analyses reuse, rather
// than reallocate, the hot path's working memory.
func AnalyzeCtx(ctx context.Context, ts []float64, cfg Config) (*Pipeline, error) {
	ws := workspace.Get()
	defer workspace.Put(ws)
	return AnalyzeCtxWS(ctx, ts, cfg, ws)
}

// AnalyzeCtxWS is AnalyzeCtx running on an explicit, caller-owned
// workspace instead of the shared pool. The returned Pipeline does not
// alias workspace memory — every retained product (grammar snapshot, rule
// set, density curve) is freshly allocated — so ws may be reused or pooled
// immediately after the call returns, even on error.
func AnalyzeCtxWS(ctx context.Context, ts []float64, cfg Config, ws *workspace.Workspace) (*Pipeline, error) {
	if err := timeseries.ValidateFinite(ts); err != nil {
		return nil, fmt.Errorf("core: %w; call timeseries.Interpolate first", err)
	}
	d, err := sax.DiscretizeCtx(ctx, ts, cfg.Params, cfg.Reduction, cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("core: discretize: %w", err)
	}
	g, err := induceCtx(ctx, d, ws)
	if err != nil {
		return nil, fmt.Errorf("core: induce: %w", err)
	}
	rs, err := grammar.Build(d, g)
	if err != nil {
		return nil, fmt.Errorf("core: map rules: %w", err)
	}
	return &Pipeline{
		TS:      ts,
		Config:  cfg,
		Disc:    d,
		Grammar: g,
		Rules:   rs,
		Density: density.CurveWith(rs, ws.DiffScratch(rs.SeriesLen+1)),
	}, nil
}

// induceCtx runs Sequitur induction over the discretization's words on the
// workspace's pooled inducer, polling ctx every induceStride tokens. When
// the discretization carries packed word codes the integer hot path is
// used — no per-token string is built, hashed, or compared; the codec
// renders strings only when the grammar snapshot is taken. Token ids are
// assigned in first-appearance order on both paths, so the snapshot is
// byte-identical either way.
func induceCtx(ctx context.Context, d *sax.Discretization, ws *workspace.Workspace) (*sequitur.Grammar, error) {
	in := ws.Inducer
	poll := ctx.Done() != nil
	if d.Coded {
		codec := sax.NewWordCodec(d.Params.PAA, d.Params.Alphabet)
		in.ResetCodes(codec.Decode)
		for i := range d.Words {
			if poll && i&(induceStride-1) == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			in.AppendCode(d.Words[i].Code)
		}
	} else {
		in.ResetStrings()
		for i := range d.Words {
			if poll && i&(induceStride-1) == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			in.Append(d.Words[i].Str)
		}
	}
	return in.Grammar(), nil
}

// GlobalMinima returns the intervals where the rule density curve reaches
// its global minimum — the paper's primary approximate anomaly report.
// One window length at each end of the series is excluded: edge points are
// covered by fewer sliding windows, which depresses their density for
// reasons unrelated to anomalousness.
func (p *Pipeline) GlobalMinima() []timeseries.Interval {
	return density.GlobalMinimaMargin(p.Density, p.Config.Params.Window-1)
}

// DensityAnomalies returns the ranked density-based anomaly candidates
// with density below threshold, dropping intervals shorter than minLen
// (0 keeps all).
func (p *Pipeline) DensityAnomalies(threshold, minLen int) []density.Anomaly {
	return density.Detect(p.Density, threshold, minLen)
}

// Discords runs the RRA search for the top-k variable-length discords,
// fanned out over Config.Workers goroutines (0 = all cores). The discords
// are identical for every worker count.
func (p *Pipeline) Discords(k int) (discord.Result, error) {
	return p.DiscordsCtx(context.Background(), k)
}

// DiscordsCtx is Discords with cooperative cancellation: the search polls
// ctx at bounded intervals. On cancellation it returns the discords of the
// fully completed top-k rounds with Partial set, plus a ctx.Err()-wrapped
// error; callers that prefer a usable degraded answer over an error should
// use DiscordsBestEffort.
//
// The search runs with the coded MINDIST pre-filter: candidate word codes
// lower-bound the distance and skip kernel calls that could not change
// the result. Discords are byte-identical to the unfiltered search; only
// DistCalls drops (Result.Pruned counts the skips).
func (p *Pipeline) DiscordsCtx(ctx context.Context, k int) (discord.Result, error) {
	return discord.RRAParallelStatsCodedCtx(ctx, p.Stats(), p.Rules, k, p.Config.Seed, p.Config.Workers, p.Config.Params)
}

// DiscordsBestEffort is the degradation ladder for deadline-bound callers.
// It runs the exact RRA search under ctx and, instead of failing on a
// cancelled or expired context, steps down:
//
//  1. Search completed: the exact result, as from Discords.
//  2. At least one top-k round completed before the deadline: those
//     discords, with Partial set.
//  3. Not even one round completed: the global minima of the already-built
//     rule density curve (the paper's approximate detector, Section 4.1)
//     converted to discords with Partial and Fallback set. Fallback
//     discords carry no distance evidence: Dist and NNStart are -1.
//
// Errors other than the context's own (e.g. a contained worker panic, or
// ErrNoCandidates on a degenerate grammar) are returned unchanged — the
// ladder degrades on deadlines, not on defects.
func (p *Pipeline) DiscordsBestEffort(ctx context.Context, k int) (discord.Result, error) {
	res, err := p.DiscordsCtx(ctx, k)
	if err == nil || ctx.Err() == nil || !errors.Is(err, ctx.Err()) {
		return res, err
	}
	if len(res.Discords) > 0 {
		res.Partial = true
		return res, nil
	}
	res.Discords = nil
	res.Partial = true
	res.Fallback = true
	for i, iv := range p.GlobalMinima() {
		if i >= k {
			break
		}
		res.Discords = append(res.Discords, discord.Discord{
			Interval: iv,
			Dist:     -1,
			NNStart:  -1,
			RuleID:   -1,
		})
	}
	return res, nil
}

// NearestNonSelf returns the true nearest-non-self-match distance of every
// rule-corresponding subsequence (the bottom panels of Figures 2 and 3).
// The scans are independent per candidate, so they run on all CPUs; the
// result is identical to a serial computation.
func (p *Pipeline) NearestNonSelf() []discord.Discord {
	return discord.NearestNonSelfParallelStats(p.Stats(), p.Rules, p.Config.Workers)
}

// NearestNonSelfCtx is NearestNonSelf with cooperative cancellation and
// panic containment (see discord.NearestNonSelfParallelStatsCtx).
func (p *Pipeline) NearestNonSelfCtx(ctx context.Context) ([]discord.Discord, error) {
	return discord.NearestNonSelfParallelStatsCtx(ctx, p.Stats(), p.Rules, p.Config.Workers)
}

// GrammarSize returns the total number of right-hand-side symbols across
// all rules — the grammar-size axis of Figure 10.
func (p *Pipeline) GrammarSize() int { return p.Rules.Size() }
