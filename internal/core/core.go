// Package core wires the paper's pipeline together: sliding-window SAX
// discretization → Sequitur grammar induction → rule-to-interval mapping →
// the two detectors (rule density curve, Section 4.1; RRA discord search,
// Section 4.2). It is the engine behind the library's public API.
package core

import (
	"fmt"
	"sync"

	"grammarviz/internal/density"
	"grammarviz/internal/discord"
	"grammarviz/internal/grammar"
	"grammarviz/internal/sax"
	"grammarviz/internal/sequitur"
	"grammarviz/internal/timeseries"
)

// Config selects the discretization parameters and the determinism seed
// for the heuristic orderings.
type Config struct {
	Params    sax.Params
	Reduction sax.Reduction // default ReductionExact (the paper's strategy)
	Seed      int64         // seeds the random tie-breaking in HOTSAX/RRA

	// Workers bounds the goroutines used by the parallel stages
	// (discretization, RRA, nearest-non-self): 0 selects all cores, 1
	// forces serial execution. Results are byte-identical for every value.
	Workers int
}

// Pipeline holds every intermediate product of one analysis run, so the
// detectors, the visualization, and the experiment harness can share work.
type Pipeline struct {
	TS      []float64
	Config  Config
	Disc    *sax.Discretization
	Grammar *sequitur.Grammar
	Rules   *grammar.RuleSet
	Density []int // the rule density curve

	statsOnce sync.Once
	stats     *discord.Stats
}

// Stats returns the shared per-series distance statistics (prefix sums),
// built lazily on first use and then reused by every discord search on this
// pipeline. Safe for concurrent callers.
func (p *Pipeline) Stats() *discord.Stats {
	p.statsOnce.Do(func() { p.stats = discord.NewStats(p.TS) })
	return p.stats
}

// Analyze runs discretization, grammar induction, rule mapping and density
// construction on ts. The returned Pipeline retains ts (not a copy).
func Analyze(ts []float64, cfg Config) (*Pipeline, error) {
	if timeseries.HasNaN(ts) {
		return nil, fmt.Errorf("core: series contains NaN/Inf; call timeseries.Interpolate first")
	}
	d, err := sax.DiscretizeWorkers(ts, cfg.Params, cfg.Reduction, cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("core: discretize: %w", err)
	}
	g := sequitur.Induce(d.Strings())
	rs, err := grammar.Build(d, g)
	if err != nil {
		return nil, fmt.Errorf("core: map rules: %w", err)
	}
	return &Pipeline{
		TS:      ts,
		Config:  cfg,
		Disc:    d,
		Grammar: g,
		Rules:   rs,
		Density: density.Curve(rs),
	}, nil
}

// GlobalMinima returns the intervals where the rule density curve reaches
// its global minimum — the paper's primary approximate anomaly report.
// One window length at each end of the series is excluded: edge points are
// covered by fewer sliding windows, which depresses their density for
// reasons unrelated to anomalousness.
func (p *Pipeline) GlobalMinima() []timeseries.Interval {
	return density.GlobalMinimaMargin(p.Density, p.Config.Params.Window-1)
}

// DensityAnomalies returns the ranked density-based anomaly candidates
// with density below threshold, dropping intervals shorter than minLen
// (0 keeps all).
func (p *Pipeline) DensityAnomalies(threshold, minLen int) []density.Anomaly {
	return density.Detect(p.Density, threshold, minLen)
}

// Discords runs the RRA search for the top-k variable-length discords,
// fanned out over Config.Workers goroutines (0 = all cores). The discords
// are identical for every worker count.
func (p *Pipeline) Discords(k int) (discord.Result, error) {
	return discord.RRAParallelStats(p.Stats(), p.Rules, k, p.Config.Seed, p.Config.Workers)
}

// NearestNonSelf returns the true nearest-non-self-match distance of every
// rule-corresponding subsequence (the bottom panels of Figures 2 and 3).
// The scans are independent per candidate, so they run on all CPUs; the
// result is identical to a serial computation.
func (p *Pipeline) NearestNonSelf() []discord.Discord {
	return discord.NearestNonSelfParallelStats(p.Stats(), p.Rules, p.Config.Workers)
}

// GrammarSize returns the total number of right-hand-side symbols across
// all rules — the grammar-size axis of Figure 10.
func (p *Pipeline) GrammarSize() int { return p.Rules.Size() }
