package core

import (
	"context"
	"reflect"
	"testing"

	"grammarviz/internal/sax"
	"grammarviz/internal/sequitur"
	"grammarviz/internal/workspace"
)

// TestAnalyzeCtxWSMatchesAnalyze pins the pooling equivalence guarantee:
// an analysis on a reused workspace is byte-identical to a fresh one —
// same grammar, same rule intervals, same density curve — and the results
// survive the workspace being reused for a different series.
func TestAnalyzeCtxWSMatchesAnalyze(t *testing.T) {
	cfgA := Config{Params: sax.Params{Window: 60, PAA: 6, Alphabet: 4}}
	cfgB := Config{Params: sax.Params{Window: 40, PAA: 4, Alphabet: 5}}
	tsA := plantedSeries(1500, 60, 900, 60, 1)
	tsB := plantedSeries(800, 40, 300, 40, 7)

	fresh := func(ts []float64, cfg Config) *Pipeline {
		p, err := Analyze(ts, cfg)
		if err != nil {
			t.Fatalf("Analyze: %v", err)
		}
		return p
	}
	wantA, wantB := fresh(tsA, cfgA), fresh(tsB, cfgB)

	ws := workspace.Get()
	defer workspace.Put(ws)
	ctx := context.Background()
	gotA, err := AnalyzeCtxWS(ctx, tsA, cfgA, ws)
	if err != nil {
		t.Fatalf("AnalyzeCtxWS A: %v", err)
	}
	gotB, err := AnalyzeCtxWS(ctx, tsB, cfgB, ws) // reuse for a different shape
	if err != nil {
		t.Fatalf("AnalyzeCtxWS B: %v", err)
	}
	gotA2, err := AnalyzeCtxWS(ctx, tsA, cfgA, ws) // and back again
	if err != nil {
		t.Fatalf("AnalyzeCtxWS A2: %v", err)
	}

	check := func(name string, got, want *Pipeline) {
		t.Helper()
		if got.Grammar.String() != want.Grammar.String() {
			t.Errorf("%s: grammar differs from fresh analysis", name)
		}
		if !reflect.DeepEqual(got.Density, want.Density) {
			t.Errorf("%s: density curve differs from fresh analysis", name)
		}
		if !reflect.DeepEqual(got.Rules.Records, want.Rules.Records) {
			t.Errorf("%s: rule records differ from fresh analysis", name)
		}
	}
	check("A", gotA, wantA)
	check("B", gotB, wantB)
	check("A2", gotA2, wantA)
	// gotA was produced before the workspace was reused twice: its results
	// must not alias workspace memory.
	check("A after reuse", gotA, wantA)
}

// TestAnalyzeCtxWSReuseAllocs pins the payoff of workspace pooling: a warm
// workspace makes AnalyzeCtxWS allocate measurably less than a cold one.
// The discretization output and the pipeline products are freshly
// allocated either way, so the floor is well above zero; what the pool
// saves is the inducer's arena, maps, and the density scratch.
func TestAnalyzeCtxWSReuseAllocs(t *testing.T) {
	cfg := Config{Params: sax.Params{Window: 60, PAA: 6, Alphabet: 4}, Workers: 1}
	ts := plantedSeries(1500, 60, 900, 60, 1)
	ctx := context.Background()

	ws := workspace.Get()
	defer workspace.Put(ws)
	run := func(w *workspace.Workspace) {
		if _, err := AnalyzeCtxWS(ctx, ts, cfg, w); err != nil {
			t.Fatal(err)
		}
	}
	run(ws) // warm
	warm := testing.AllocsPerRun(10, func() { run(ws) })
	cold := testing.AllocsPerRun(10, func() { run(&workspace.Workspace{Inducer: sequitur.NewInducer()}) })
	if warm >= cold {
		t.Fatalf("warm workspace allocates %v/run, cold %v/run — pooling saves nothing", warm, cold)
	}
	t.Logf("allocs/run: warm=%v cold=%v", warm, cold)
}
