package ensemble

import (
	"math"
	"math/rand"

	"grammarviz/internal/sax"
)

// Sampler bounds. Windows are drawn log-uniformly so short and long
// scales are equally represented (a uniform draw over [16, n/3] would
// almost never pick a heartbeat-scale window on a long series); PAA and
// alphabet are drawn uniformly over the ranges the paper's Figure 10
// shows the detectors tolerate well.
const (
	minSampleWindow = 16
	maxSampleWindow = 1024
	minSamplePAA    = 3
	maxSamplePAA    = 9
	minSampleAlpha  = 3
	maxSampleAlpha  = 7

	// sampleAttemptsPerMember bounds the rejection-sampling loop: on a
	// series so short that few parameterizations are valid, the sampler
	// returns what it found instead of spinning.
	sampleAttemptsPerMember = 64
)

// Sample draws up to members distinct SAX parameterizations for a series
// of n points, seeded and deduplicated. Every returned triple satisfies
// Params.Validate(n) and packs into a uint64 word code (WordCodec.Fits),
// so each member can run the zero-allocation coded induction path. The
// draw is deterministic in (n, members, seed) and independent of worker
// count. It returns fewer than members (possibly none) when the series
// admits fewer valid distinct triples within the attempt budget.
func Sample(n, members int, seed int64) []sax.Params {
	if members <= 0 || n < minSamplePAA {
		return nil
	}
	wmax := n / 3
	if wmax > maxSampleWindow {
		wmax = maxSampleWindow
	}
	if wmax > n {
		wmax = n
	}
	wmin := minSampleWindow
	if wmin > wmax {
		wmin = minSamplePAA // tiny series: fall back to the smallest usable windows
	}
	if wmin > wmax {
		return nil
	}

	rng := rand.New(rand.NewSource(seed))
	logMin, logMax := math.Log(float64(wmin)), math.Log(float64(wmax))
	seen := make(map[sax.Params]bool, members)
	out := make([]sax.Params, 0, members)
	for attempts := 0; len(out) < members && attempts < members*sampleAttemptsPerMember; attempts++ {
		w := int(math.Round(math.Exp(logMin + rng.Float64()*(logMax-logMin))))
		if w < wmin {
			w = wmin
		}
		if w > wmax {
			w = wmax
		}
		p := sax.Params{
			Window:   w,
			PAA:      minSamplePAA + rng.Intn(maxSamplePAA-minSamplePAA+1),
			Alphabet: minSampleAlpha + rng.Intn(maxSampleAlpha-minSampleAlpha+1),
		}
		if p.PAA > p.Window {
			p.PAA = p.Window
		}
		if seen[p] || p.Validate(n) != nil || !sax.NewWordCodec(p.PAA, p.Alphabet).Fits() {
			continue
		}
		seen[p] = true
		out = append(out, p)
	}
	return out
}
