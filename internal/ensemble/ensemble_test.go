package ensemble

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"grammarviz/internal/core"
	"grammarviz/internal/sax"
	"grammarviz/internal/sequitur"
	"grammarviz/internal/workspace"
)

// sineWithAnomaly builds a noisy sine with one flattened region — the
// planted-anomaly shape the repo's detectors are tested on.
func sineWithAnomaly(n, period, at, width int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	ts := make([]float64, n)
	for i := range ts {
		ts[i] = math.Sin(2*math.Pi*float64(i)/float64(period)) + rng.NormFloat64()*0.05
	}
	for i := at; i < at+width && i < n; i++ {
		ts[i] = rng.NormFloat64() * 0.05
	}
	return ts
}

func TestSampleDeterministicAndValid(t *testing.T) {
	const n, members = 5000, 24
	a := Sample(n, members, 7)
	b := Sample(n, members, 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Sample is not deterministic for equal (n, members, seed)")
	}
	if len(a) != members {
		t.Fatalf("Sample returned %d members, want %d (n=%d admits plenty)", len(a), members, n)
	}
	seen := make(map[sax.Params]bool)
	for _, p := range a {
		if seen[p] {
			t.Errorf("duplicate parameterization %v", p)
		}
		seen[p] = true
		if err := p.Validate(n); err != nil {
			t.Errorf("invalid sampled parameterization %v: %v", p, err)
		}
		if !sax.NewWordCodec(p.PAA, p.Alphabet).Fits() {
			t.Errorf("sampled parameterization %v does not pack into a uint64 code", p)
		}
	}
	c := Sample(n, members, 8)
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical member sets")
	}
}

func TestSampleTinyAndDegenerateSeries(t *testing.T) {
	if got := Sample(2, 10, 1); got != nil {
		t.Errorf("Sample(n=2) = %v, want nil", got)
	}
	if got := Sample(1000, 0, 1); got != nil {
		t.Errorf("Sample(members=0) = %v, want nil", got)
	}
	// A short series still yields some (fewer, small-window) members.
	small := Sample(24, 10, 1)
	if len(small) == 0 {
		t.Fatal("Sample(n=24) found no valid parameterizations")
	}
	for _, p := range small {
		if err := p.Validate(24); err != nil {
			t.Errorf("invalid parameterization %v for n=24: %v", p, err)
		}
	}
}

// TestInduceDeterministicAcrossWorkers pins the fusion contract: the fused
// result is byte-identical for every worker count, because members are
// combined in member order, not completion order.
func TestInduceDeterministicAcrossWorkers(t *testing.T) {
	ts := sineWithAnomaly(3000, 100, 1500, 100, 11)
	cfg := Config{Members: 12, Seed: 3}

	var want *Result
	for _, workers := range []int{1, 2, 4, 0} {
		cfg.Workers = workers
		got, err := Induce(context.Background(), ts, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(got.Score, want.Score) {
			t.Errorf("workers=%d: Score differs from workers=1", workers)
		}
		if !reflect.DeepEqual(got.Agreement, want.Agreement) {
			t.Errorf("workers=%d: Agreement differs from workers=1", workers)
		}
		if !reflect.DeepEqual(got.Members, want.Members) {
			t.Errorf("workers=%d: Members differ from workers=1", workers)
		}
	}
	if want.Used == 0 || want.Used > 12 {
		t.Errorf("Used = %d, want within (0, 12]", want.Used)
	}
	for i, v := range want.Score {
		if v < 0 || v > 1 || math.IsNaN(v) {
			t.Fatalf("Score[%d] = %v, want within [0, 1]", i, v)
		}
		if a := want.Agreement[i]; a < 0 || a > 1 || math.IsNaN(a) {
			t.Fatalf("Agreement[%d] = %v, want within [0, 1]", i, a)
		}
	}
}

// TestSingleMemberMatchesMultiscale pins the degenerate-case contract from
// the issue: a one-member ensemble's fused curve byte-equals the
// single-window multiscale detector's normalized density for the same
// parameterization — same normalization, same float operations.
func TestSingleMemberMatchesMultiscale(t *testing.T) {
	ts := sineWithAnomaly(2400, 80, 1200, 80, 5)
	p := sax.Params{Window: 80, PAA: 4, Alphabet: 4}
	ctx := context.Background()

	res, err := InduceParams(ctx, ts, []sax.Params{p}, sax.ReductionExact, 1)
	if err != nil {
		t.Fatalf("InduceParams: %v", err)
	}
	want, err := core.MultiscaleDensityCtx(ctx, ts, []int{p.Window}, p.PAA, p.Alphabet, sax.ReductionExact, 1)
	if err != nil {
		t.Fatalf("MultiscaleDensityCtx: %v", err)
	}
	if !reflect.DeepEqual(res.Score, want) {
		t.Error("members=1 fused curve is not byte-identical to the single-window multiscale density")
	}
	if res.Used != 1 || res.MaxWindow != p.Window {
		t.Errorf("Used=%d MaxWindow=%d, want 1 and %d", res.Used, res.MaxWindow, p.Window)
	}
}

// TestAllInvalidMembersTypedError pins the other degenerate case: when not
// one member can analyze the series, the caller gets the typed
// ErrNoValidMembers — never a silently zero curve.
func TestAllInvalidMembersTypedError(t *testing.T) {
	ts := sineWithAnomaly(500, 50, 250, 50, 9)
	bad := []sax.Params{
		{Window: 5000, PAA: 4, Alphabet: 4}, // window > n
		{Window: 0, PAA: 4, Alphabet: 4},    // no window
		{Window: 50, PAA: 60, Alphabet: 4},  // paa > window
	}
	res, err := InduceParams(context.Background(), ts, bad, sax.ReductionExact, 2)
	if !errors.Is(err, ErrNoValidMembers) {
		t.Fatalf("err = %v, want ErrNoValidMembers", err)
	}
	if res != nil {
		t.Fatalf("res = %+v, want nil alongside the typed error", res)
	}
	// Same contract for an empty member set and for a series too short to
	// sample anything.
	if _, err := InduceParams(context.Background(), ts, nil, sax.ReductionExact, 1); !errors.Is(err, ErrNoValidMembers) {
		t.Fatalf("empty params: err = %v, want ErrNoValidMembers", err)
	}
	if _, err := Induce(context.Background(), []float64{1, 2}, Config{}); !errors.Is(err, ErrNoValidMembers) {
		t.Fatalf("tiny series: err = %v, want ErrNoValidMembers", err)
	}
}

func TestInduceCancelled(t *testing.T) {
	ts := sineWithAnomaly(4000, 100, 2000, 100, 13)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		_, err := Induce(ctx, ts, Config{Members: 8, Workers: workers})
		if err == nil || !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
}

func TestMinima(t *testing.T) {
	ts := sineWithAnomaly(3000, 100, 1500, 120, 17)
	res, err := Induce(context.Background(), ts, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ivs := res.Minima(0.3)
	if len(ivs) == 0 {
		t.Fatal("Minima(0.3) found nothing on a series with a planted anomaly")
	}
	hit := false
	for _, iv := range ivs {
		if iv.End >= 1500-res.MaxWindow && iv.Start <= 1620 {
			hit = true
		}
	}
	if !hit {
		t.Errorf("no minima interval near the planted anomaly [1500, 1620); got %v", ivs)
	}
}

// TestWarmMemberAllocs is the regression pin on the pooled member path: a
// warm ensemble run (pool populated by earlier runs) must allocate less
// than the same member set analyzed without workspaces. The pipeline
// products (density curve, rules, words) are freshly allocated either way;
// what the pool saves is each member's inducer arena, maps, and scratch.
func TestWarmMemberAllocs(t *testing.T) {
	ts := sineWithAnomaly(1500, 60, 900, 60, 1)
	params := Sample(len(ts), 4, 2)
	if len(params) < 2 {
		t.Fatalf("sampler returned %d members, need >= 2", len(params))
	}
	ctx := context.Background()

	pooled := func() {
		if _, err := InduceParams(ctx, ts, params, sax.ReductionExact, 1); err != nil {
			t.Fatal(err)
		}
	}
	pooled() // warm the pool
	warm := testing.AllocsPerRun(5, pooled)
	cold := testing.AllocsPerRun(5, func() {
		for _, p := range params {
			ws := &workspace.Workspace{Inducer: sequitur.NewInducer()}
			if _, err := core.AnalyzeCtxWS(ctx, ts, core.Config{Params: p, Workers: 1}, ws); err != nil {
				t.Fatal(err)
			}
		}
	})
	if warm >= cold {
		t.Fatalf("warm pooled ensemble allocates %v/run, cold %v/run — pooling saves nothing", warm, cold)
	}
	t.Logf("allocs/run: warm=%v cold=%v", warm, cold)
}
