// Package ensemble implements parameter-free anomaly detection by
// ensemble grammar induction, after "Ensemble Grammar Induction For
// Detecting Anomalies in Time Series" (Gao & Lin, arXiv:2001.11102): the
// paper's pipeline is sensitive to the (window, PAA, alphabet) triple — a
// bad pick silently hides anomalies — so instead of asking the caller to
// pick one, the ensemble samples many parameterizations, induces a
// grammar per member, normalizes each member's rule-density curve, and
// fuses the curves into a single anomaly score with per-point
// member-agreement statistics. A region that stays incompressible across
// most sampled discretizations scores low everywhere, whatever single
// triple a hand-tuner would have chosen.
package ensemble

import (
	"context"
	"errors"
	"fmt"
	"runtime"

	"grammarviz/internal/core"
	"grammarviz/internal/sax"
	"grammarviz/internal/timeseries"
	"grammarviz/internal/worker"
	"grammarviz/internal/workspace"
)

// DefaultMembers is the sampled ensemble size when the caller does not
// choose one. Twenty members covers the window/paa/alphabet space densely
// enough that every planted anomaly in the repo's dataset suite is ranked
// top-1 (see the validation test), while staying cheap: each member is
// one pooled, coded induction.
const DefaultMembers = 20

// AgreementFraction is the per-member anomaly vote: a member votes a
// point anomalous when its density there is below this fraction of the
// member's own mean density — the same threshold shape MultiscaleMinima
// applies to fused curves.
const AgreementFraction = 0.2

// ErrNoValidMembers is returned when not one ensemble member produced a
// usable density curve — every sampled or given parameterization was
// invalid for the series (or its grammar never covered a point). Callers
// get this typed error, never a silently zero score curve.
var ErrNoValidMembers = errors.New("ensemble: no member produced a usable density curve")

// Config selects how the ensemble is built.
type Config struct {
	// Members is the number of sampled parameterizations (<= 0 selects
	// DefaultMembers). Ignored by InduceParams, which takes explicit
	// members.
	Members int
	// Seed drives the parameter sampler. Same (series length, Members,
	// Seed) means the same member set, which is what makes ensemble
	// results cacheable by fingerprint.
	Seed int64
	// Reduction is the numerosity reduction every member uses (default
	// ReductionExact, the paper's strategy).
	Reduction sax.Reduction
	// Workers bounds the member fan-out: 0 selects GOMAXPROCS, 1 forces
	// serial induction. The fused result is byte-identical for every
	// value — members are combined in member order, not completion order.
	Workers int
}

// Member is one ensemble parameterization and whether it contributed a
// usable curve to the fusion.
type Member struct {
	Params sax.Params
	Used   bool
}

// Result is a fused ensemble analysis.
type Result struct {
	// Score is the fused anomaly score curve: one value per series point
	// in [0, 1], the mean of the used members' max-normalized rule-density
	// curves. Low means anomalous (poorly covered by grammar rules across
	// parameterizations).
	Score []float64
	// Agreement is the per-point fraction of used members voting the
	// point anomalous (density below AgreementFraction of the member's
	// mean). 1 means every member flags the point, whatever its
	// discretization; values near 0 mean the low score comes from a few
	// outlier members.
	Agreement []float64
	// Members lists every parameterization the ensemble attempted, in
	// sampler order, with Used set on contributors.
	Members []Member
	// Used counts the members that contributed a curve.
	Used int
	// MaxWindow is the largest window among used members — the edge
	// margin a minima scan over Score should exclude.
	MaxWindow int
}

// Induce samples cfg.Members parameterizations for ts and fuses their
// density curves. See InduceParams for the engine's contract.
func Induce(ctx context.Context, ts []float64, cfg Config) (*Result, error) {
	members := cfg.Members
	if members <= 0 {
		members = DefaultMembers
	}
	return InduceParams(ctx, ts, Sample(len(ts), members, cfg.Seed), cfg.Reduction, cfg.Workers)
}

// InduceParams runs one grammar induction per member parameterization and
// fuses the normalized density curves. Members run fanned out over a
// worker.Group (panic-contained, ctx polled at bounded strides inside
// each member's discretization and induction); each member checks a
// pooled workspace out of internal/workspace for the duration of its
// induction, so a warm ensemble re-analysis allocates no induction
// scratch. Invalid or unusable members are skipped, exactly as the
// multiscale detector skips unusable windows; only a context error aborts
// the run. When no member contributes, the typed ErrNoValidMembers is
// returned.
//
// Fusion is deterministic: each used member's curve is normalized to
// [0, 1] by its own maximum and the normalized curves are averaged in
// member order, so the result is byte-identical for every worker count —
// and, for a single member, byte-identical to the multiscale detector's
// normalized single-window curve.
func InduceParams(ctx context.Context, ts []float64, params []sax.Params, red sax.Reduction, workers int) (*Result, error) {
	if len(params) == 0 {
		return nil, ErrNoValidMembers
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(params) {
		workers = len(params)
	}
	// A lone member may parallelize inside its own pipeline; concurrent
	// members run serial inside so the fan-out does not oversubscribe.
	inner := 1
	if workers == 1 {
		inner = 0
	}

	curves := make([][]int, len(params)) // nil = member unusable
	run := func(ctx context.Context, mi int) error {
		p := params[mi]
		if p.Validate(len(ts)) != nil {
			return nil
		}
		ws := workspace.Get()
		defer workspace.Put(ws)
		pipe, err := core.AnalyzeCtxWS(ctx, ts, core.Config{Params: p, Reduction: red, Workers: inner}, ws)
		if err != nil {
			// A context error must stop the ensemble; any other failure
			// just means this member contributes nothing.
			if cerr := ctx.Err(); cerr != nil && errors.Is(err, cerr) {
				return err
			}
			return nil
		}
		curves[mi] = pipe.Density
		return nil
	}
	if workers <= 1 {
		for mi := range params {
			if err := run(ctx, mi); err != nil {
				return nil, fmt.Errorf("ensemble: cancelled: %w", err)
			}
		}
	} else {
		g, gctx := worker.WithContext(ctx)
		for w := 0; w < workers; w++ {
			w := w
			g.Go(func() error {
				for mi := w; mi < len(params); mi += workers {
					if err := run(gctx, mi); err != nil {
						return err
					}
				}
				return nil
			})
		}
		if err := g.Wait(); err != nil {
			return nil, fmt.Errorf("ensemble: aborted: %w", err)
		}
	}
	res := fuse(ts, params, curves)
	if res == nil {
		return nil, ErrNoValidMembers
	}
	return res, nil
}

// fuse combines the member curves into the Result. It mirrors the
// multiscale detector's float operations exactly (normalize by the
// curve's own maximum via one reciprocal, accumulate in member order,
// scale by the reciprocal member count) so a one-member ensemble
// byte-equals the single-window multiscale curve.
func fuse(ts []float64, params []sax.Params, curves [][]int) *Result {
	res := &Result{
		Score:     make([]float64, len(ts)),
		Agreement: make([]float64, len(ts)),
		Members:   make([]Member, len(params)),
	}
	for mi, density := range curves {
		res.Members[mi] = Member{Params: params[mi]}
		if density == nil {
			continue
		}
		max := 0
		sum := 0
		for _, v := range density {
			if v > max {
				max = v
			}
			sum += v
		}
		if max == 0 {
			continue
		}
		inv := 1 / float64(max)
		for i, v := range density {
			res.Score[i] += float64(v) * inv
		}
		// The member's anomaly vote: density below AgreementFraction of
		// its own mean. Computed on the raw curve — the threshold is
		// scale-free, so normalization cancels out.
		voteAt := AgreementFraction * float64(sum) / float64(len(density))
		for i, v := range density {
			if float64(v) <= voteAt {
				res.Agreement[i]++
			}
		}
		res.Members[mi].Used = true
		res.Used++
		if params[mi].Window > res.MaxWindow {
			res.MaxWindow = params[mi].Window
		}
	}
	if res.Used == 0 {
		return nil
	}
	inv := 1 / float64(res.Used)
	for i := range res.Score {
		res.Score[i] *= inv
		res.Agreement[i] *= inv
	}
	return res
}

// Minima reports the maximal intervals where the fused score stays within
// fraction of the way from the curve's minimum up to its mean (both taken
// over the inner region), excluding MaxWindow-derived edge margins. A
// single-window curve's anomalies drop near zero, but averaging many
// scales raises the fused curve's floor — every member scores *some*
// density almost everywhere — so the threshold is anchored at the observed
// minimum rather than at a bare fraction of the mean: fraction 0.3 keeps
// meaning "well below typical" whatever the floor is. The interval
// containing the global minimum is always reported.
func (r *Result) Minima(fraction float64) []timeseries.Interval {
	margin := r.MaxWindow - 1
	if margin < 0 {
		margin = 0
	}
	if 2*margin >= len(r.Score) {
		margin = 0
	}
	inner := r.Score[margin : len(r.Score)-margin]
	if len(inner) == 0 {
		return nil
	}
	min := inner[0]
	var sum float64
	for _, v := range inner {
		if v < min {
			min = v
		}
		sum += v
	}
	mean := sum / float64(len(inner))
	threshold := min + fraction*(mean-min)

	var out []timeseries.Interval
	start := -1
	for i, v := range inner {
		switch {
		case v <= threshold && start < 0:
			start = i
		case v > threshold && start >= 0:
			out = append(out, timeseries.Interval{Start: start + margin, End: i - 1 + margin})
			start = -1
		}
	}
	if start >= 0 {
		out = append(out, timeseries.Interval{Start: start + margin, End: len(inner) - 1 + margin})
	}
	return out
}
