package ensemble

import (
	"context"
	"testing"

	"grammarviz/internal/core"
	"grammarviz/internal/datasets"
	"grammarviz/internal/timeseries"
)

// validationSets are the dataset generators the acceptance criterion runs
// on: the ensemble must rank the planted anomaly top-1 at least as often
// as a hand-tuned single-parameter density run using each dataset's paper
// parameters.
var validationSets = []string{"ecg0606", "tek14", "tek16", "respiration-nprs43"}

// top1Interval returns the interval around the curve's global minimum
// (edges excluded by margin): the curve's single highest-ranked anomaly
// region, widened by the window so an overlap check against the truth is
// scale-appropriate.
func top1Interval(curve []float64, margin, window int) timeseries.Interval {
	if margin < 0 {
		margin = 0
	}
	lo, hi := margin, len(curve)-margin
	if hi <= lo {
		lo, hi = 0, len(curve)
	}
	argmin := lo
	for i := lo; i < hi; i++ {
		if curve[i] < curve[argmin] {
			argmin = i
		}
	}
	return timeseries.Interval{Start: argmin - window/2, End: argmin + window/2}
}

// TestEnsembleMatchesHandTunedTop1 is the datasets validation from the
// issue's acceptance criteria: on each generator, the default-sampled
// parameter-free ensemble must locate the planted anomaly top-1 whenever
// the hand-tuned single-parameter density curve (built with the paper's
// own (window, PAA, alphabet) for that dataset) does.
func TestEnsembleMatchesHandTunedTop1(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset validation is not a -short test")
	}
	ctx := context.Background()
	ensembleHits, tunedHits := 0, 0
	for _, name := range validationSets {
		d, err := datasets.Generate(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}

		res, err := Induce(ctx, d.Series, Config{})
		if err != nil {
			t.Fatalf("%s: ensemble: %v", name, err)
		}
		eIV := top1Interval(res.Score, res.MaxWindow-1, res.MaxWindow)
		eHit := d.TruthHit(eIV, res.MaxWindow/2)
		if eHit {
			ensembleHits++
		}

		pipe, err := core.AnalyzeCtx(ctx, d.Series, core.Config{Params: d.Params})
		if err != nil {
			t.Fatalf("%s: hand-tuned analysis: %v", name, err)
		}
		curve := make([]float64, len(pipe.Density))
		for i, v := range pipe.Density {
			curve[i] = float64(v)
		}
		tIV := top1Interval(curve, d.Params.Window-1, d.Params.Window)
		tHit := d.TruthHit(tIV, d.Params.Window/2)
		if tHit {
			tunedHits++
		}
		t.Logf("%s: ensemble top-1 hit=%v (members used %d), hand-tuned %v hit=%v",
			name, eHit, res.Used, d.Params, tHit)
		if tHit && !eHit {
			t.Errorf("%s: hand-tuned %v ranks the anomaly top-1 but the parameter-free ensemble does not", name, d.Params)
		}
	}
	if ensembleHits < tunedHits {
		t.Errorf("ensemble top-1 hits = %d, hand-tuned = %d; ensemble must match or beat hand-tuned", ensembleHits, tunedHits)
	}
	if ensembleHits == 0 {
		t.Error("ensemble never ranked a planted anomaly top-1 on the validation datasets")
	}
}
