// Package autoparam suggests SAX discretization parameters from the data,
// addressing the paper's primary future-work direction ("analyze the
// effect of the discretization parameters on the algorithm's ability to
// discover contextually meaningful patterns", Section 7).
//
// The window suggestion finds the series' dominant cycle length via the
// autocorrelation function — the paper's own heuristic ("the length of a
// heartbeat ... a weekly duration", Section 5.2) made automatic. The PAA
// and alphabet suggestion picks the smallest values whose SAX
// reconstruction error is within a tolerance of the best achievable on a
// small grid, favouring coarse (more compressible) discretizations.
package autoparam

import (
	"errors"
	"fmt"
	"math"

	"grammarviz/internal/core"
	"grammarviz/internal/sax"
	"grammarviz/internal/timeseries"
)

// ErrNoPeriod is returned when no autocorrelation peak stands out — the
// series has no usable dominant cycle.
var ErrNoPeriod = errors.New("autoparam: no dominant period found")

// ACF computes the autocorrelation of ts at lags 1..maxLag of the
// mean-centered series, normalized by the lag-0 variance. The result has
// length maxLag (index i = lag i+1).
func ACF(ts []float64, maxLag int) ([]float64, error) {
	n := len(ts)
	if n < 4 {
		return nil, fmt.Errorf("%w: series too short (%d)", timeseries.ErrEmpty, n)
	}
	if maxLag >= n {
		maxLag = n - 1
	}
	if maxLag < 1 {
		return nil, fmt.Errorf("autoparam: maxLag must be >= 1")
	}
	mean := timeseries.Mean(ts)
	var c0 float64
	centered := make([]float64, n)
	for i, v := range ts {
		centered[i] = v - mean
		c0 += centered[i] * centered[i]
	}
	if c0 == 0 {
		return nil, fmt.Errorf("%w: constant series", ErrNoPeriod)
	}
	out := make([]float64, maxLag)
	for lag := 1; lag <= maxLag; lag++ {
		var sum float64
		for i := 0; i+lag < n; i++ {
			sum += centered[i] * centered[i+lag]
		}
		out[lag-1] = sum / c0
	}
	return out, nil
}

// DominantPeriod returns the lag of the strongest local autocorrelation
// peak in [minLag, maxLag]. A peak must be a local maximum with
// correlation at least minCorr (pass 0 for the default 0.1).
func DominantPeriod(ts []float64, minLag, maxLag int, minCorr float64) (int, error) {
	if minCorr <= 0 {
		minCorr = 0.1
	}
	if minLag < 2 {
		minLag = 2
	}
	acf, err := ACF(ts, maxLag)
	if err != nil {
		return 0, err
	}
	bestLag, bestVal := 0, minCorr
	for lag := minLag; lag <= len(acf); lag++ {
		v := acf[lag-1]
		// Local maximum check against neighbours (when present).
		if lag-2 >= 1 && acf[lag-2] > v {
			continue
		}
		if lag < len(acf) && acf[lag] > v {
			continue
		}
		if v > bestVal {
			bestVal = v
			bestLag = lag
		}
	}
	if bestLag == 0 {
		return 0, ErrNoPeriod
	}
	return bestLag, nil
}

// Suggestion is a recommended discretization with its diagnostics.
type Suggestion struct {
	Params sax.Params
	// Period is the detected dominant cycle length (= Params.Window).
	Period float64
	// ApproxDist is the SAX reconstruction error of the suggestion.
	ApproxDist float64
}

// Suggest recommends (window, PAA, alphabet) for ts: the window is the
// dominant autocorrelation period, and PAA/alphabet are the coarsest pair
// on a small grid whose reconstruction error is within 15% of the grid's
// best. Suggest is a starting point, not an oracle — the paper's
// detectors are designed to tolerate imperfect parameters (Figure 10).
func Suggest(ts []float64) (Suggestion, error) {
	maxLag := len(ts) / 2
	if maxLag > 2000 {
		maxLag = 2000
	}
	period, err := DominantPeriod(ts, 4, maxLag, 0)
	if err != nil {
		return Suggestion{}, err
	}
	s := Suggestion{Period: float64(period)}
	window := period
	if window > len(ts)/2 {
		window = len(ts) / 2
	}

	type cand struct {
		paa, alphabet int
		dist          float64
	}
	var cands []cand
	best := math.Inf(1)
	for _, paa := range []int{3, 4, 5, 6, 8, 10} {
		if paa > window {
			continue
		}
		for _, a := range []int{3, 4, 5, 6} {
			p := sax.Params{Window: window, PAA: paa, Alphabet: a}
			d, err := core.ApproximationDistance(ts, p)
			if err != nil {
				continue
			}
			cands = append(cands, cand{paa, a, d})
			if d < best {
				best = d
			}
		}
	}
	if len(cands) == 0 {
		return Suggestion{}, fmt.Errorf("autoparam: no feasible PAA/alphabet for window %d", window)
	}
	// Coarsest within tolerance: candidates are generated coarse-first,
	// so the first acceptable one wins.
	for _, c := range cands {
		if c.dist <= best*1.15 {
			s.Params = sax.Params{Window: window, PAA: c.paa, Alphabet: c.alphabet}
			s.ApproxDist = c.dist
			return s, nil
		}
	}
	// Unreachable: the best candidate always satisfies the tolerance.
	c := cands[0]
	s.Params = sax.Params{Window: window, PAA: c.paa, Alphabet: c.alphabet}
	s.ApproxDist = c.dist
	return s, nil
}
