package autoparam

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"grammarviz/internal/datasets"
)

func sine(n int, period float64, noise float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	ts := make([]float64, n)
	for i := range ts {
		ts[i] = math.Sin(2*math.Pi*float64(i)/period) + rng.NormFloat64()*noise
	}
	return ts
}

func TestACFBasics(t *testing.T) {
	ts := sine(400, 40, 0, 1)
	acf, err := ACF(ts, 100)
	if err != nil {
		t.Fatalf("ACF: %v", err)
	}
	if len(acf) != 100 {
		t.Fatalf("len = %d", len(acf))
	}
	// Correlation at the period is high, at the half-period strongly negative.
	if acf[39] < 0.8 {
		t.Errorf("acf[lag 40] = %v, want > 0.8", acf[39])
	}
	if acf[19] > -0.5 {
		t.Errorf("acf[lag 20] = %v, want < -0.5", acf[19])
	}
}

func TestACFErrors(t *testing.T) {
	if _, err := ACF([]float64{1, 2}, 5); err == nil {
		t.Error("short series should error")
	}
	if _, err := ACF(make([]float64, 100), 10); !errors.Is(err, ErrNoPeriod) {
		t.Errorf("constant series err = %v", err)
	}
	if _, err := ACF(sine(50, 10, 0, 1), 0); err == nil {
		t.Error("maxLag 0 should error")
	}
	// maxLag clamped to n-1.
	acf, err := ACF(sine(20, 5, 0, 1), 100)
	if err != nil || len(acf) != 19 {
		t.Errorf("clamped ACF len = %d err = %v", len(acf), err)
	}
}

func TestDominantPeriod(t *testing.T) {
	tests := []struct {
		name   string
		period float64
		noise  float64
		tol    int
	}{
		{"clean 40", 40, 0, 1},
		{"noisy 40", 40, 0.2, 2},
		{"clean 77", 77, 0, 2},
		{"noisy 120", 120, 0.3, 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ts := sine(int(tt.period*12), tt.period, tt.noise, 7)
			got, err := DominantPeriod(ts, 4, len(ts)/2, 0)
			if err != nil {
				t.Fatalf("DominantPeriod: %v", err)
			}
			if got < int(tt.period)-tt.tol || got > int(tt.period)+tt.tol {
				t.Errorf("period = %d, want %v±%d", got, tt.period, tt.tol)
			}
		})
	}
}

func TestDominantPeriodNoPeriod(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ts := make([]float64, 500)
	for i := range ts {
		ts[i] = rng.NormFloat64()
	}
	if _, err := DominantPeriod(ts, 4, 250, 0.3); !errors.Is(err, ErrNoPeriod) {
		t.Errorf("white noise err = %v, want ErrNoPeriod", err)
	}
}

func TestSuggestOnSine(t *testing.T) {
	ts := sine(1200, 60, 0.05, 5)
	s, err := Suggest(ts)
	if err != nil {
		t.Fatalf("Suggest: %v", err)
	}
	if s.Params.Window < 55 || s.Params.Window > 65 {
		t.Errorf("window = %d, want ~60", s.Params.Window)
	}
	if err := s.Params.Validate(len(ts)); err != nil {
		t.Errorf("suggested params invalid: %v", err)
	}
	if s.ApproxDist <= 0 {
		t.Errorf("ApproxDist = %v", s.ApproxDist)
	}
}

func TestSuggestOnECG(t *testing.T) {
	ds, err := datasets.Generate("ecg0606")
	if err != nil {
		t.Fatal(err)
	}
	s, err := Suggest(ds.Series)
	if err != nil {
		t.Fatalf("Suggest: %v", err)
	}
	// The beat length is 120; the suggestion should land close, like the
	// paper's hand-picked window.
	if s.Params.Window < 100 || s.Params.Window > 140 {
		t.Errorf("window = %d, want ~120", s.Params.Window)
	}
}

func TestSuggestOnPowerDemand(t *testing.T) {
	if testing.Short() {
		t.Skip("long series")
	}
	ds, err := datasets.Generate("dutch-power-demand")
	if err != nil {
		t.Fatal(err)
	}
	s, err := Suggest(ds.Series)
	if err != nil {
		t.Fatalf("Suggest: %v", err)
	}
	// Dominant period is the day (96) or the week (672); either is a
	// defensible seed. The ACF cap is 2000 so the week is reachable.
	w := s.Params.Window
	if !(w >= 90 && w <= 102 || w >= 650 && w <= 700) {
		t.Errorf("window = %d, want ~96 (day) or ~672 (week)", w)
	}
}

func TestSuggestErrors(t *testing.T) {
	if _, err := Suggest(make([]float64, 100)); err == nil {
		t.Error("constant series should error")
	}
}
