package paa

import "fmt"

// PatternSegment describes how one PAA segment of a fixed-length window
// draws from the window's points: a contiguous run of whole-weight points
// plus up to two fractionally weighted boundary points. Indices are
// window-relative, so the same segment applies to every window position.
type PatternSegment struct {
	Lo, Hi  int        // [Lo, Hi): points contributing with weight 1
	FracIdx [2]int     // fractional boundary points; -1 when absent
	FracW   [2]float64 // their overlap weights, in (0, 1)
}

// SegmentPattern precomputes the point-to-segment weighting of
// TransformInto for a fixed (window, segments) pair. Because the weights
// depend only on the point's position *within* the window, one pattern
// serves every window of a sliding scan: combined with series prefix sums
// it yields each window's PAA in O(segments) instead of O(window).
type SegmentPattern struct {
	Window   int
	Segments int
	Inv      float64 // 1 / (window/segments): converts segment sums to means
	Segs     []PatternSegment
}

// NewSegmentPattern builds the pattern for windows of length window reduced
// to segments means. The weights are derived point by point with exactly
// the arithmetic of TransformInto, so a pattern-based PAA agrees with the
// direct transform up to summation order.
func NewSegmentPattern(window, segments int) (*SegmentPattern, error) {
	if segments <= 0 || segments > window {
		return nil, fmt.Errorf("%w: w=%d n=%d", ErrBadSegments, segments, window)
	}
	pat := &SegmentPattern{
		Window:   window,
		Segments: segments,
		Inv:      float64(segments) / float64(window),
		Segs:     make([]PatternSegment, segments),
	}
	for k := range pat.Segs {
		pat.Segs[k] = PatternSegment{Lo: -1, FracIdx: [2]int{-1, -1}}
	}
	addWhole := func(k, j int) {
		s := &pat.Segs[k]
		if s.Lo < 0 {
			s.Lo = j
		}
		s.Hi = j + 1
	}
	addFrac := func(k, j int, w float64) {
		if w == 0 {
			return // zero-overlap artefact of an exact boundary
		}
		s := &pat.Segs[k]
		if s.FracIdx[0] < 0 {
			s.FracIdx[0] = j
			s.FracW[0] = w
		} else {
			s.FracIdx[1] = j
			s.FracW[1] = w
		}
	}
	segLen := float64(window) / float64(segments)
	for j := 0; j < window; j++ {
		lo, hi := float64(j), float64(j+1)
		first := int(lo / segLen)
		last := int(hi / segLen)
		if last >= segments {
			last = segments - 1
		}
		if first == last {
			addWhole(first, j)
			continue
		}
		split := float64(last) * segLen
		addFrac(first, j, split-lo)
		addFrac(last, j, hi-split)
	}
	// A segment can consist only of fractional points (segLen < 2); give it
	// an empty whole-point range so prefix-sum lookups contribute zero.
	for k := range pat.Segs {
		if pat.Segs[k].Lo < 0 {
			pat.Segs[k].Lo, pat.Segs[k].Hi = 0, 0
		}
	}
	return pat, nil
}
