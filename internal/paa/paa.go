// Package paa implements Piecewise Aggregate Approximation (Keogh et al.,
// 2001): a time series of length n is reduced to w segment means. PAA is
// the dimensionality-reduction step of SAX discretization.
//
// When w does not divide n the implementation uses the standard fractional
// scheme from the SAX reference implementation: each original point
// contributes to the segments it overlaps, weighted by the overlap length,
// so every segment aggregates exactly n/w (possibly fractional) points.
package paa

import (
	"errors"
	"fmt"
)

// ErrBadSegments is returned when the requested segment count is
// non-positive or exceeds the input length.
var ErrBadSegments = errors.New("paa: segment count must be in [1, len(ts)]")

// Transform reduces ts to w segment means. It returns ErrBadSegments when
// w is out of range. When w == len(ts) the input is copied unchanged.
func Transform(ts []float64, w int) ([]float64, error) {
	if w <= 0 || w > len(ts) {
		return nil, fmt.Errorf("%w: w=%d n=%d", ErrBadSegments, w, len(ts))
	}
	out := make([]float64, w)
	if err := TransformInto(out, ts); err != nil {
		return nil, err
	}
	return out, nil
}

// TransformInto reduces src into dst, with w = len(dst) segments. It is
// the allocation-free variant of Transform for hot loops.
func TransformInto(dst, src []float64) error {
	n, w := len(src), len(dst)
	if w <= 0 || w > n {
		return fmt.Errorf("%w: w=%d n=%d", ErrBadSegments, w, n)
	}
	if w == n {
		copy(dst, src)
		return nil
	}
	if n%w == 0 {
		// Fast path: equal integral segments.
		size := n / w
		inv := 1 / float64(size)
		for i := 0; i < w; i++ {
			var sum float64
			for _, v := range src[i*size : (i+1)*size] {
				sum += v
			}
			dst[i] = sum * inv
		}
		return nil
	}
	// Fractional segments: point j spans [j, j+1) in "point space"; segment
	// i spans [i*n/w, (i+1)*n/w). Accumulate overlap-weighted sums.
	segLen := float64(n) / float64(w)
	for i := range dst {
		dst[i] = 0
	}
	for j := 0; j < n; j++ {
		lo, hi := float64(j), float64(j+1)
		first := int(lo / segLen)
		last := int(hi / segLen)
		if last >= w { // right edge of the final point
			last = w - 1
		}
		if first == last {
			dst[first] += src[j]
			continue
		}
		split := float64(last) * segLen
		dst[first] += src[j] * (split - lo)
		dst[last] += src[j] * (hi - split)
	}
	inv := 1 / segLen
	for i := range dst {
		dst[i] *= inv
	}
	return nil
}
