package paa

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestTransformDivisible(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		w    int
		want []float64
	}{
		{"halves", []float64{1, 3, 5, 7}, 2, []float64{2, 6}},
		{"identity", []float64{1, 2, 3}, 3, []float64{1, 2, 3}},
		{"single segment", []float64{2, 4, 6}, 1, []float64{4}},
		{"thirds", []float64{0, 0, 3, 3, 6, 6}, 3, []float64{0, 3, 6}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Transform(tt.in, tt.w)
			if err != nil {
				t.Fatalf("Transform: %v", err)
			}
			for i := range tt.want {
				if !almostEqual(got[i], tt.want[i], 1e-12) {
					t.Fatalf("Transform(%v,%d) = %v, want %v", tt.in, tt.w, got, tt.want)
				}
			}
		})
	}
}

func TestTransformFractional(t *testing.T) {
	// n=5, w=2: segments cover points [0,2.5) and [2.5,5).
	// seg0 = (1+2+0.5*3)/2.5 = 1.8 ; seg1 = (0.5*3+4+5)/2.5 = 4.2
	got, err := Transform([]float64{1, 2, 3, 4, 5}, 2)
	if err != nil {
		t.Fatalf("Transform: %v", err)
	}
	if !almostEqual(got[0], 1.8, 1e-12) || !almostEqual(got[1], 4.2, 1e-12) {
		t.Errorf("fractional PAA = %v, want [1.8 4.2]", got)
	}
}

func TestTransformErrors(t *testing.T) {
	for _, w := range []int{0, -1, 4} {
		if _, err := Transform([]float64{1, 2, 3}, w); !errors.Is(err, ErrBadSegments) {
			t.Errorf("Transform(w=%d) err = %v, want ErrBadSegments", w, err)
		}
	}
}

// Property: PAA preserves the global mean (each point contributes its full
// weight exactly once).
func TestTransformPreservesMean(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(nRaw, wRaw uint8) bool {
		n := int(nRaw%200) + 1
		w := int(wRaw)%n + 1
		in := make([]float64, n)
		var sum float64
		for i := range in {
			in[i] = rng.NormFloat64() * 4
			sum += in[i]
		}
		out, err := Transform(in, w)
		if err != nil {
			return false
		}
		var outSum float64
		for _, v := range out {
			outSum += v
		}
		return almostEqual(sum/float64(n), outSum/float64(w), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: PAA of a constant series is constant.
func TestTransformConstant(t *testing.T) {
	f := func(nRaw, wRaw uint8) bool {
		n := int(nRaw%100) + 1
		w := int(wRaw)%n + 1
		in := make([]float64, n)
		for i := range in {
			in[i] = 7.5
		}
		out, err := Transform(in, w)
		if err != nil {
			return false
		}
		for _, v := range out {
			if !almostEqual(v, 7.5, 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: PAA output values are bounded by the input min/max.
func TestTransformBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(nRaw, wRaw uint8) bool {
		n := int(nRaw%150) + 1
		w := int(wRaw)%n + 1
		in := make([]float64, n)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range in {
			in[i] = rng.Float64()*20 - 10
			lo = math.Min(lo, in[i])
			hi = math.Max(hi, in[i])
		}
		out, _ := Transform(in, w)
		for _, v := range out {
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTransformIntoReuse(t *testing.T) {
	dst := make([]float64, 2)
	if err := TransformInto(dst, []float64{1, 3, 5, 7}); err != nil {
		t.Fatalf("TransformInto: %v", err)
	}
	if dst[0] != 2 || dst[1] != 6 {
		t.Errorf("TransformInto = %v", dst)
	}
	// Reuse with fractional path: previous contents must be cleared.
	if err := TransformInto(dst, []float64{1, 2, 3, 4, 5}); err != nil {
		t.Fatalf("TransformInto: %v", err)
	}
	if !almostEqual(dst[0], 1.8, 1e-12) || !almostEqual(dst[1], 4.2, 1e-12) {
		t.Errorf("TransformInto reuse = %v, want [1.8 4.2]", dst)
	}
}
