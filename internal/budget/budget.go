// Package budget is gvad's tenant-aware admission layer: work is
// admitted against a shared pool of abstract cost tokens instead of a
// flat slot semaphore, and contention is resolved in proportional
// fair-share order rather than FIFO.
//
// The flat GOMAXPROCS semaphore the daemon started with has two failure
// modes under multi-tenant load. First, cost-blindness: a 2-million-point
// HOTSAX search and a 500-point density lookup each burn one slot, so a
// handful of heavy queries occupy the whole fleet while trivial ones
// queue behind them. Second, FIFO starvation: one hot tenant that sends
// requests faster than anyone else fills the queue in arrival order and
// everyone else waits behind its backlog.
//
// The Controller fixes both. Every request declares a cost estimated
// from its series length and mode (Cost), admission is bounded by a
// token capacity rather than a slot count, and when requests must wait,
// releases wake the waiter whose tenant currently holds the *least*
// admitted cost — so a tenant's backlog only drains as fast as its fair
// share, and a newly arrived light tenant cuts past a hot tenant's queue.
// The policy is work-conserving: while nobody is waiting, any tenant may
// use the entire capacity.
package budget

import (
	"context"
	"errors"
	"sync"
)

// ErrSaturated is returned by Acquire when the wait queue is at its
// bound — the load-shedding signal (HTTP 429 upstream).
var ErrSaturated = errors.New("budget: capacity and wait queue exhausted")

// MinCost floors every request's cost so even empty-series requests
// consume tokens and admission arithmetic never sees zero.
const MinCost = 256

// DefaultSlotCost is the token value of "one concurrent slot" used to
// size default capacities: MaxConcurrent * DefaultSlotCost admits about
// as much simultaneous heavy work as the old semaphore did (a ~32k-point
// series at a discord-search weight of 3), while letting many cheap
// requests through in its place.
const DefaultSlotCost = 96 * 1024

// Cost estimates the admission cost of analyzing n points under the
// given mode weight: points × weight, floored at MinCost. Weights encode
// relative per-point expense (a density lookup on a cached detector is
// far cheaper than a HOTSAX search); the server owns the weight table.
func Cost(n int, weight int64) int64 {
	if weight < 1 {
		weight = 1
	}
	c := int64(n) * weight
	if c < MinCost {
		return MinCost
	}
	return c
}

// Config sizes a Controller.
type Config struct {
	// Capacity is the total cost that may be admitted at once (required
	// > 0). A single request costing more than Capacity is clamped to it,
	// so oversized work serializes instead of deadlocking.
	Capacity int64
	// MaxQueue bounds the number of waiting requests across all tenants;
	// 0 disables queueing (no free tokens means immediate ErrSaturated).
	MaxQueue int
}

// Controller admits cost-weighted, tenant-keyed work. Create one with
// New; all methods are safe for concurrent use.
type Controller struct {
	capacity int64
	maxQueue int

	mu      sync.Mutex
	inUse   int64
	tenants map[string]int64 // admitted cost per tenant; entries deleted at zero
	waiters []*waiter        // arrival order; wake order is least-tenant-usage
}

type waiter struct {
	tenant  string
	cost    int64
	ready   chan struct{} // closed on grant
	granted bool
}

// New returns a Controller with the given configuration. Capacity below
// 1 is clamped to 1; MaxQueue below 0 to 0.
func New(cfg Config) *Controller {
	if cfg.Capacity < 1 {
		cfg.Capacity = 1
	}
	if cfg.MaxQueue < 0 {
		cfg.MaxQueue = 0
	}
	return &Controller{
		capacity: cfg.Capacity,
		maxQueue: cfg.MaxQueue,
		tenants:  make(map[string]int64),
	}
}

// Capacity returns the controller's token capacity.
func (c *Controller) Capacity() int64 { return c.capacity }

// Acquire blocks until cost tokens are granted to tenant, the wait queue
// overflows (ErrSaturated), or ctx ends (ctx.Err()). On success it
// returns the release function that must be called exactly once when the
// work finishes. Cost is clamped to [MinCost, Capacity].
func (c *Controller) Acquire(ctx context.Context, tenant string, cost int64) (release func(), err error) {
	if cost < MinCost {
		cost = MinCost
	}
	if cost > c.capacity {
		cost = c.capacity
	}

	c.mu.Lock()
	// Fast path: free tokens and an empty queue. A non-empty queue means
	// others were here first — newcomers enqueue and the wake scan
	// decides fairness (a light tenant still overtakes, but explicitly,
	// never by racing past the lock).
	if len(c.waiters) == 0 && c.inUse+cost <= c.capacity {
		c.grantLocked(tenant, cost)
		c.mu.Unlock()
		return c.releaseFunc(tenant, cost), nil
	}
	if len(c.waiters) >= c.maxQueue {
		c.mu.Unlock()
		return nil, ErrSaturated
	}
	w := &waiter{tenant: tenant, cost: cost, ready: make(chan struct{})}
	c.waiters = append(c.waiters, w)
	// A newcomer may itself be the fairest waiter (e.g. a fresh tenant
	// joining while capacity is free but a hot tenant's backlog queues).
	c.wakeLocked()
	c.mu.Unlock()

	select {
	case <-w.ready:
		return c.releaseFunc(tenant, cost), nil
	case <-ctx.Done():
		c.mu.Lock()
		if w.granted {
			// The grant raced the cancellation; honor it — the caller
			// observes its context at the next step and releases.
			c.mu.Unlock()
			return c.releaseFunc(tenant, cost), nil
		}
		c.removeLocked(w)
		c.mu.Unlock()
		return nil, ctx.Err()
	}
}

// grantLocked commits an admission. Callers hold mu.
func (c *Controller) grantLocked(tenant string, cost int64) {
	c.inUse += cost
	c.tenants[tenant] += cost
}

// releaseFunc builds the idempotence-unguarded release closure for one
// admission.
func (c *Controller) releaseFunc(tenant string, cost int64) func() {
	return func() {
		c.mu.Lock()
		c.inUse -= cost
		if v := c.tenants[tenant] - cost; v > 0 {
			c.tenants[tenant] = v
		} else {
			delete(c.tenants, tenant)
		}
		c.wakeLocked()
		c.mu.Unlock()
	}
}

// wakeLocked grants as many waiters as the free tokens cover, each round
// picking the waiter whose tenant holds the least admitted cost (arrival
// order within a tenant, and for ties). The scan stops at the first
// waiter that does not fit: skipping it in favor of cheaper requests
// would starve large work forever.
func (c *Controller) wakeLocked() {
	for len(c.waiters) > 0 {
		best := 0
		for i, w := range c.waiters[1:] {
			if c.tenants[w.tenant] < c.tenants[c.waiters[best].tenant] {
				best = i + 1
			}
		}
		w := c.waiters[best]
		if c.inUse+w.cost > c.capacity {
			return
		}
		c.grantLocked(w.tenant, w.cost)
		w.granted = true
		close(w.ready)
		c.waiters = append(c.waiters[:best], c.waiters[best+1:]...)
	}
}

// removeLocked drops a cancelled waiter from the queue.
func (c *Controller) removeLocked(v *waiter) {
	for i, w := range c.waiters {
		if w == v {
			c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
			return
		}
	}
}

// Stats is a point-in-time snapshot of the controller.
type Stats struct {
	Capacity      int64
	InUse         int64
	QueueDepth    int
	ActiveTenants int // tenants currently holding admitted cost
}

// Stats returns the current admission snapshot.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Capacity:      c.capacity,
		InUse:         c.inUse,
		QueueDepth:    len(c.waiters),
		ActiveTenants: len(c.tenants),
	}
}

// TenantInUse returns the cost currently admitted for tenant.
func (c *Controller) TenantInUse(tenant string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tenants[tenant]
}

// QueueDepth returns the number of waiting requests.
func (c *Controller) QueueDepth() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.waiters)
}
