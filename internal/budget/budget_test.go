package budget

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func mustAcquire(t *testing.T, c *Controller, tenant string, cost int64) func() {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	release, err := c.Acquire(ctx, tenant, cost)
	if err != nil {
		t.Fatalf("Acquire(%s, %d): %v", tenant, cost, err)
	}
	return release
}

func TestCostModel(t *testing.T) {
	cases := []struct {
		n      int
		weight int64
		want   int64
	}{
		{0, 1, MinCost},
		{10, 1, MinCost},
		{4000, 1, 4000},
		{4000, 3, 12000},
		{4000, 0, 4000}, // weight clamped up to 1
		{1_000_000, 8, 8_000_000},
	}
	for _, tc := range cases {
		if got := Cost(tc.n, tc.weight); got != tc.want {
			t.Errorf("Cost(%d, %d) = %d, want %d", tc.n, tc.weight, got, tc.want)
		}
	}
}

// TestWorkConserving: while nobody waits, one tenant may take the whole
// capacity — the fair-share cap is a contention policy, not a quota.
func TestWorkConserving(t *testing.T) {
	c := New(Config{Capacity: 4 * MinCost, MaxQueue: 8})
	var releases []func()
	for i := 0; i < 4; i++ {
		releases = append(releases, mustAcquire(t, c, "solo", MinCost))
	}
	if st := c.Stats(); st.InUse != 4*MinCost || st.ActiveTenants != 1 {
		t.Errorf("stats = %+v, want full capacity held by one tenant", st)
	}
	for _, r := range releases {
		r()
	}
	if st := c.Stats(); st.InUse != 0 || st.ActiveTenants != 0 {
		t.Errorf("stats after release = %+v, want empty", st)
	}
}

// TestOversizedCostClamped: work costing more than the capacity is
// clamped to it — it serializes against everything else instead of
// deadlocking.
func TestOversizedCostClamped(t *testing.T) {
	c := New(Config{Capacity: 1000, MaxQueue: 4})
	release := mustAcquire(t, c, "big", 1_000_000)
	if st := c.Stats(); st.InUse != 1000 {
		t.Errorf("in-use = %d, want clamped 1000", st.InUse)
	}
	// Nothing else fits while the clamped giant holds the pool.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := c.Acquire(ctx, "small", MinCost); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("second acquire = %v, want deadline", err)
	}
	release()
}

// TestSaturation: the bounded queue sheds with ErrSaturated; MaxQueue 0
// sheds as soon as the pool is full.
func TestSaturation(t *testing.T) {
	t.Run("no-queue", func(t *testing.T) {
		c := New(Config{Capacity: MinCost, MaxQueue: 0})
		release := mustAcquire(t, c, "a", MinCost)
		defer release()
		if _, err := c.Acquire(context.Background(), "b", MinCost); !errors.Is(err, ErrSaturated) {
			t.Errorf("err = %v, want ErrSaturated", err)
		}
	})
	t.Run("bounded-queue", func(t *testing.T) {
		c := New(Config{Capacity: MinCost, MaxQueue: 2})
		release := mustAcquire(t, c, "a", MinCost)
		defer release()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		errs := make(chan error, 2)
		for i := 0; i < 2; i++ {
			go func() {
				_, err := c.Acquire(ctx, "b", MinCost)
				errs <- err
			}()
		}
		waitFor(t, "two queued", func() bool { return c.QueueDepth() == 2 })
		if _, err := c.Acquire(ctx, "c", MinCost); !errors.Is(err, ErrSaturated) {
			t.Errorf("overflow err = %v, want ErrSaturated", err)
		}
		cancel()
		for i := 0; i < 2; i++ {
			if err := <-errs; !errors.Is(err, context.Canceled) {
				t.Errorf("queued acquire = %v, want canceled", err)
			}
		}
	})
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFairShareOvertakesFIFO is the heart of the tentpole: a cold tenant
// that arrives *after* a hot tenant's backlog is woken *before* it,
// because wake order follows least admitted cost, not arrival time.
func TestFairShareOvertakesFIFO(t *testing.T) {
	c := New(Config{Capacity: 2 * MinCost, MaxQueue: 8})
	// Hot holds the full pool with two grants.
	hot1 := mustAcquire(t, c, "hot", MinCost)
	hot2 := mustAcquire(t, c, "hot", MinCost)

	order := make(chan string, 4)
	enqueue := func(tenant string) {
		go func() {
			release, err := c.Acquire(context.Background(), tenant, MinCost)
			if err != nil {
				t.Errorf("Acquire(%s): %v", tenant, err)
				return
			}
			order <- tenant
			_ = release // held for the rest of the test
		}()
	}
	enqueue("hot") // hot's backlog arrives first...
	waitFor(t, "hot queued", func() bool { return c.QueueDepth() == 1 })
	enqueue("cold") // ...the cold tenant arrives last
	waitFor(t, "cold queued", func() bool { return c.QueueDepth() == 2 })

	// One hot grant releases: hot still holds MinCost, cold holds zero —
	// the cold tenant must be woken despite queueing behind hot.
	hot1()
	if got := <-order; got != "cold" {
		t.Fatalf("first wake went to %q, want the cold tenant", got)
	}
	hot2()
	if got := <-order; got != "hot" {
		t.Fatalf("second wake went to %q, want hot's queued request", got)
	}
}

// TestCancelledWaiterLeavesQueue: a cancelled waiter is removed and
// later releases do not try to wake it.
func TestCancelledWaiterLeavesQueue(t *testing.T) {
	c := New(Config{Capacity: MinCost, MaxQueue: 4})
	release := mustAcquire(t, c, "a", MinCost)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Acquire(ctx, "b", MinCost)
		done <- err
	}()
	waitFor(t, "waiter queued", func() bool { return c.QueueDepth() == 1 })
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter returned %v", err)
	}
	if c.QueueDepth() != 0 {
		t.Errorf("queue depth = %d after cancellation, want 0", c.QueueDepth())
	}
	release()
	if st := c.Stats(); st.InUse != 0 {
		t.Errorf("in-use = %d after all releases, want 0", st.InUse)
	}
}

// TestConcurrentStress hammers the controller from many tenants; the
// -race run plus the capacity invariant are the assertions.
func TestConcurrentStress(t *testing.T) {
	const capacity = 16 * MinCost
	c := New(Config{Capacity: capacity, MaxQueue: 64})
	tenants := []string{"a", "b", "c", "d"}
	var peak atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 200; i++ {
				tenant := tenants[rng.Intn(len(tenants))]
				cost := MinCost * int64(1+rng.Intn(4))
				ctx, cancel := context.WithTimeout(context.Background(), time.Second)
				release, err := c.Acquire(ctx, tenant, cost)
				if err != nil {
					cancel()
					continue
				}
				if v := c.Stats().InUse; v > peak.Load() {
					peak.Store(v)
				}
				release()
				cancel()
			}
		}(w)
	}
	wg.Wait()
	if st := c.Stats(); st.InUse != 0 || st.QueueDepth != 0 || st.ActiveTenants != 0 {
		t.Errorf("controller not drained: %+v", st)
	}
	if peak.Load() > capacity {
		t.Errorf("in-use peaked at %d, capacity %d", peak.Load(), capacity)
	}
}
