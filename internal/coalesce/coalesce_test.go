package coalesce

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"grammarviz/internal/worker"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSingleExecution is the coalescing contract: N concurrent callers of
// the same key observe exactly one execution, all with the same value,
// and exactly N-1 of them report having joined another caller's flight.
func TestSingleExecution(t *testing.T) {
	const n = 32
	var (
		g     Group[int]
		execs atomic.Int32
		gate  = make(chan struct{})
	)
	fn := func(context.Context) (int, error) {
		execs.Add(1)
		<-gate
		return 42, nil
	}

	results := make([]int, n)
	joins := make([]bool, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], joins[i], errs[i] = g.Do(context.Background(), "k", fn)
		}(i)
	}
	// Release the flight only after every caller is accounted for inside
	// it, so no caller can arrive late and start a second flight.
	waitFor(t, "all callers joined", func() bool { return g.Waiting("k") == n })
	close(gate)
	wg.Wait()

	if got := execs.Load(); got != 1 {
		t.Fatalf("fn executed %d times, want 1", got)
	}
	joined := 0
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Errorf("caller %d: unexpected error %v", i, errs[i])
		}
		if results[i] != 42 {
			t.Errorf("caller %d got %d, want 42", i, results[i])
		}
		if joins[i] {
			joined++
		}
	}
	if joined != n-1 {
		t.Errorf("%d callers joined, want %d", joined, n-1)
	}
	if g.Inflight() != 0 {
		t.Errorf("%d flights left in the map", g.Inflight())
	}
}

// TestDistinctKeysRunIndependently: different keys never share a flight.
func TestDistinctKeysRunIndependently(t *testing.T) {
	var g Group[string]
	var execs atomic.Int32
	fn := func(context.Context) (string, error) {
		execs.Add(1)
		return "v", nil
	}
	for _, key := range []string{"a", "b", "c"} {
		if _, joined, err := g.Do(context.Background(), key, fn); err != nil || joined {
			t.Fatalf("key %q: joined=%v err=%v", key, joined, err)
		}
	}
	if execs.Load() != 3 {
		t.Errorf("execs = %d, want 3", execs.Load())
	}
}

// TestCompletedFlightReexecutes: once a flight publishes, the key is free
// and the next caller computes anew (the detector cache above this layer
// is what makes repeats cheap, not the flight map).
func TestCompletedFlightReexecutes(t *testing.T) {
	var g Group[int]
	var execs atomic.Int32
	fn := func(context.Context) (int, error) { return int(execs.Add(1)), nil }
	for want := 1; want <= 3; want++ {
		got, _, err := g.Do(context.Background(), "k", fn)
		if err != nil || got != want {
			t.Fatalf("call %d: got %d err %v", want, got, err)
		}
	}
}

// TestCancelledWaiterDetaches: a waiter whose context ends gets its ctx
// error immediately while the flight runs on and delivers to the
// remaining participant; no goroutine outlives the flight.
func TestCancelledWaiterDetaches(t *testing.T) {
	baseline := runtime.NumGoroutine()
	var g Group[int]
	gate := make(chan struct{})
	fn := func(ctx context.Context) (int, error) {
		select {
		case <-gate:
			return 7, nil
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	}

	leaderDone := make(chan error, 1)
	var leaderVal int
	go func() {
		v, _, err := g.Do(context.Background(), "k", fn)
		leaderVal = v
		leaderDone <- err
	}()
	waitFor(t, "leader in flight", func() bool { return g.Waiting("k") == 1 })

	wctx, wcancel := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, joined, err := g.Do(wctx, "k", fn)
		if !joined {
			t.Error("second caller did not join the flight")
		}
		waiterDone <- err
	}()
	waitFor(t, "waiter joined", func() bool { return g.Waiting("k") == 2 })

	wcancel()
	select {
	case err := <-waiterDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled waiter returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter did not detach")
	}
	// The flight survived the waiter's departure.
	if got := g.Waiting("k"); got != 1 {
		t.Fatalf("refs after detach = %d, want 1", got)
	}
	close(gate)
	if err := <-leaderDone; err != nil || leaderVal != 7 {
		t.Fatalf("leader got (%d, %v), want (7, nil)", leaderVal, err)
	}

	waitFor(t, "goroutines to settle", func() bool { return runtime.NumGoroutine() <= baseline })
}

// TestAllDetachedCancelsFlight: when every participant gives up, the
// flight's context is cancelled so fn winds down instead of computing for
// nobody, and the key is free for a fresh start.
func TestAllDetachedCancelsFlight(t *testing.T) {
	baseline := runtime.NumGoroutine()
	var g Group[int]
	var execs atomic.Int32
	flightCancelled := make(chan struct{}, 1)
	fn := func(ctx context.Context) (int, error) {
		if execs.Add(1) == 1 {
			<-ctx.Done() // first flight: run until abandoned
			flightCancelled <- struct{}{}
			return 0, ctx.Err()
		}
		return 99, nil
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := g.Do(ctx, "k", fn)
		done <- err
	}()
	waitFor(t, "flight started", func() bool { return g.Waiting("k") == 1 })
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoning caller returned %v, want context.Canceled", err)
	}
	select {
	case <-flightCancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("flight context was not cancelled after the last detach")
	}

	// The key is free: a new caller starts a fresh flight and succeeds.
	got, joined, err := g.Do(context.Background(), "k", fn)
	if err != nil || joined || got != 99 {
		t.Fatalf("fresh flight after abandonment: got=%d joined=%v err=%v", got, joined, err)
	}
	waitFor(t, "goroutines to settle", func() bool { return runtime.NumGoroutine() <= baseline })
}

// TestPanicContained: a panic in fn reaches every participant as a
// *worker.PanicError instead of crashing the process.
func TestPanicContained(t *testing.T) {
	var g Group[int]
	gate := make(chan struct{})
	fn := func(context.Context) (int, error) {
		<-gate
		panic("flight bug")
	}

	const n = 4
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = g.Do(context.Background(), "k", fn)
		}(i)
	}
	waitFor(t, "all callers joined", func() bool { return g.Waiting("k") == n })
	close(gate)
	wg.Wait()

	for i, err := range errs {
		var pe *worker.PanicError
		if !errors.As(err, &pe) {
			t.Errorf("caller %d got %v, want *worker.PanicError", i, err)
		}
	}
	if g.Inflight() != 0 {
		t.Errorf("%d flights left after panic", g.Inflight())
	}
}

// TestErrorShared: a plain error from fn is delivered to every
// participant.
func TestErrorShared(t *testing.T) {
	var g Group[int]
	sentinel := errors.New("induction failed")
	gate := make(chan struct{})
	fn := func(context.Context) (int, error) {
		<-gate
		return 0, sentinel
	}
	const n = 3
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = g.Do(context.Background(), "k", fn)
		}(i)
	}
	waitFor(t, "all callers joined", func() bool { return g.Waiting("k") == n })
	close(gate)
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, sentinel) {
			t.Errorf("caller %d got %v, want the shared sentinel", i, err)
		}
	}
}
