// Package coalesce implements singleflight-style request coalescing for
// gvad's serving layer: N concurrent calls that share a key (the
// detector fingerprint) share one execution of the expensive function
// (grammar induction) instead of running N identical copies.
//
// The design differs from the classic singleflight in one way that
// matters for a service: waiters are context-aware. A caller whose
// context ends while the flight is in progress detaches immediately with
// its own ctx error — it does not kill the shared flight, because other
// callers may still want the result. Only when *every* participant has
// detached is the flight's context cancelled, so abandoned work winds
// down instead of running to completion for nobody.
//
// The flight body runs on a worker.Group goroutine, so a panic inside it
// is contained into a *worker.PanicError and delivered to every waiter
// instead of crashing the daemon — the same containment discipline the
// rest of the pipeline uses (and gvadlint's nobarego pass enforces).
package coalesce

import (
	"context"
	"sync"

	"grammarviz/internal/worker"
)

// Group deduplicates concurrent calls by key. The zero value is ready to
// use; a Group must not be copied after first use. All methods are safe
// for concurrent use.
type Group[V any] struct {
	mu      sync.Mutex
	flights map[string]*flight[V]
}

// flight is one in-progress shared execution.
type flight[V any] struct {
	done   chan struct{} // closed when val/err are published
	g      *worker.Group // runs fn; Wait surfaces contained panics
	cancel context.CancelFunc
	refs   int // participants still waiting; 0 cancels the flight

	// val and err are written by the flight goroutine before done is
	// closed and read by waiters after; close(done) is the happens-before
	// edge.
	val V
	err error
}

// Do returns the result of fn for key: if no flight for key is in
// progress it starts one, otherwise it joins the existing flight and
// waits for its result. joined reports whether this call shared another
// caller's flight (false for the caller that started it).
//
// fn receives a context that is detached from any single caller's
// cancellation but is cancelled once every participant has detached; fn
// must honor it for abandoned flights to wind down. If ctx ends before
// the flight completes, Do detaches and returns ctx's error without
// affecting the remaining participants. A panic inside fn is contained
// and returned to every participant as a *worker.PanicError.
func (g *Group[V]) Do(ctx context.Context, key string, fn func(context.Context) (V, error)) (v V, joined bool, err error) {
	g.mu.Lock()
	if g.flights == nil {
		g.flights = make(map[string]*flight[V])
	}
	if f, ok := g.flights[key]; ok {
		f.refs++
		g.mu.Unlock()
		v, err = g.wait(ctx, key, f)
		return v, true, err
	}

	f := &flight[V]{done: make(chan struct{}), refs: 1}
	// The flight must outlive the starting caller's deadline (late joiners
	// may have longer budgets), so its context derives from ctx's values
	// only; cancellation comes from the all-detached refcount.
	fctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	f.cancel = cancel
	f.g, _ = worker.WithContext(fctx)
	g.flights[key] = f
	g.mu.Unlock()

	f.g.Go(func() error {
		defer func() {
			// Runs during panic unwind too: the flight must leave the map
			// and wake its waiters no matter how fn ends. The guard keeps a
			// successor flight for the same key (started after an
			// all-detached cancellation) from being deleted by its
			// predecessor.
			g.mu.Lock()
			if g.flights[key] == f {
				delete(g.flights, key)
			}
			g.mu.Unlock()
			cancel()
			close(f.done)
		}()
		f.val, f.err = fn(fctx)
		return nil
	})
	v, err = g.wait(ctx, key, f)
	return v, false, err
}

// wait blocks until the flight publishes or ctx ends, whichever first.
func (g *Group[V]) wait(ctx context.Context, key string, f *flight[V]) (V, error) {
	select {
	case <-f.done:
		// Wait also collects a panic contained by the group (it displaces
		// the nil the closure returned). fn has already returned, so this
		// does not block beyond the goroutine's epilogue.
		if err := f.g.Wait(); err != nil {
			var zero V
			return zero, err
		}
		return f.val, f.err
	case <-ctx.Done():
		g.detach(key, f)
		var zero V
		return zero, ctx.Err()
	}
}

// detach removes one participant; the last one out cancels the flight
// and frees the key so the next caller starts fresh instead of joining a
// dying flight.
func (g *Group[V]) detach(key string, f *flight[V]) {
	g.mu.Lock()
	f.refs--
	if f.refs == 0 {
		f.cancel()
		if g.flights[key] == f {
			delete(g.flights, key)
		}
	}
	g.mu.Unlock()
}

// Inflight returns the number of keys with a flight in progress.
func (g *Group[V]) Inflight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.flights)
}

// Waiting returns the number of participants attached to key's flight,
// zero when no flight is in progress — observability for tests and
// operators that want to gate on "everyone has joined".
func (g *Group[V]) Waiting(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	f, ok := g.flights[key]
	if !ok {
		return 0
	}
	return f.refs
}
