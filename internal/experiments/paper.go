package experiments

// PaperRow holds the values the paper reports in Table 1, used for
// side-by-side comparison in EXPERIMENTS.md and cmd/gvbench. Distance-call
// counts are float64 because the paper reports the largest ones in
// scientific notation (e.g. 1.13 x 10^9).
type PaperRow struct {
	Length       int
	Brute        float64
	Hotsax       float64
	RRA          float64
	ReductionPct float64
	WindowLen    int // HOTSAX discord length (= window)
	RRALen       int // RRA discord length
	OverlapPct   float64
}

// PaperTable1 maps our dataset names to the paper's reported Table 1 rows.
var PaperTable1 = map[string]PaperRow{
	"daily-commute":      {17175, 271_442_101, 879_067, 112_405, 87.2, 350, 366, 100.0},
	"dutch-power-demand": {35040, 1.13e9, 6_196_356, 327_950, 95.7, 750, 773, 96.3},
	"ecg0606":            {2300, 4_241_541, 72_390, 16_717, 76.9, 120, 127, 79.2},
	"ecg308":             {5400, 23_044_801, 327_454, 14_655, 95.5, 300, 317, 97.7},
	"ecg15":              {15000, 207_374_401, 1_434_665, 111_348, 92.2, 300, 306, 65.0},
	"ecg108":             {21600, 441_021_001, 6_041_145, 150_184, 97.5, 300, 324, 89.7},
	"ecg300":             {536_976, 288e9, 101_427_254, 17_712_845, 82.6, 300, 312, 83.0},
	"ecg318":             {586_086, 343e9, 45_513_790, 10_000_632, 78.0, 300, 312, 80.7},
	"respiration-nprs43": {4000, 14_021_281, 89_570, 45_352, 49.3, 128, 135, 96.0},
	"respiration-nprs44": {24125, 569_753_031, 1_146_145, 257_529, 77.5, 128, 141, 61.7},
	"video-gun":          {11251, 119_935_353, 758_456, 69_910, 90.8, 150, 163, 89.3},
	"tek14":              {5000, 22_510_281, 691_194, 48_226, 93.0, 128, 161, 72.7},
	"tek16":              {5000, 22_491_306, 61_682, 15_573, 74.8, 128, 138, 65.6},
	"tek17":              {5000, 22_491_306, 164_225, 78_211, 52.4, 128, 148, 100.0},
}
