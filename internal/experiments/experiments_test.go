package experiments

import (
	"strings"
	"testing"

	"grammarviz/internal/datasets"
)

func TestRunRowECG0606(t *testing.T) {
	row, err := RunRow("ecg0606", 1)
	if err != nil {
		t.Fatalf("RunRow: %v", err)
	}
	// Table 1 shape: RRA < HOTSAX < brute force.
	if row.RRACalls >= row.HotsaxCalls {
		t.Errorf("RRA calls %d >= HOTSAX calls %d", row.RRACalls, row.HotsaxCalls)
	}
	if row.HotsaxCalls >= row.BruteCalls {
		t.Errorf("HOTSAX calls %d >= brute force %d", row.HotsaxCalls, row.BruteCalls)
	}
	if row.ReductionPct <= 0 || row.ReductionPct >= 100 {
		t.Errorf("ReductionPct = %v", row.ReductionPct)
	}
	if !row.TruthHitRRA {
		t.Error("RRA missed the planted anomaly")
	}
	if !row.TruthHitHotsax {
		t.Error("HOTSAX missed the planted anomaly")
	}
	if row.RRALen < 4 {
		t.Errorf("RRALen = %d", row.RRALen)
	}
}

func TestRunRowUnknown(t *testing.T) {
	if _, err := RunRow("nope", 1); err == nil {
		t.Error("unknown dataset should error")
	}
}

func TestFormatTable1(t *testing.T) {
	row, err := RunRow("tek16", 1)
	if err != nil {
		t.Fatalf("RunRow: %v", err)
	}
	out := FormatTable1([]Table1Row{row}, true)
	if !strings.Contains(out, "tek16") || !strings.Contains(out, "paper:") {
		t.Errorf("FormatTable1 output:\n%s", out)
	}
}

func TestRunDensityFigure(t *testing.T) {
	fig, err := RunDensityFigure("ecg0606", 1, 1)
	if err != nil {
		t.Fatalf("RunDensityFigure: %v", err)
	}
	if len(fig.Pipeline.Density) != len(fig.Dataset.Series) {
		t.Error("density length mismatch")
	}
	if len(fig.Minima) == 0 || len(fig.NN) == 0 || len(fig.Discords) == 0 {
		t.Errorf("empty panels: minima=%d nn=%d discords=%d",
			len(fig.Minima), len(fig.NN), len(fig.Discords))
	}
}

func TestRunRankingSmall(t *testing.T) {
	cmp, err := RunRanking("tek14", 2, 1)
	if err != nil {
		t.Fatalf("RunRanking: %v", err)
	}
	if len(cmp.Pairs) == 0 {
		t.Fatal("no ranked pairs")
	}
	for i, p := range cmp.Pairs {
		if p.Rank != i+1 {
			t.Errorf("pair %d has rank %d", i, p.Rank)
		}
	}
}

func TestRunSweepTiny(t *testing.T) {
	grid := SweepGrid{Windows: []int{60, 120}, PAAs: []int{4}, Alphabets: []int{4}}
	res, err := RunSweep("ecg0606", grid, 1)
	if err != nil {
		t.Fatalf("RunSweep: %v", err)
	}
	if res.Valid != 2 {
		t.Errorf("Valid = %d, want 2", res.Valid)
	}
	if res.RRAHits == 0 {
		t.Error("RRA should hit on at least one near-paper combination")
	}
	if len(res.Points) != res.Valid {
		t.Errorf("points %d != valid %d", len(res.Points), res.Valid)
	}
}

func TestRunTrajectory(t *testing.T) {
	if testing.Short() {
		t.Skip("trajectory case study is slow")
	}
	fig, err := RunTrajectory(1)
	if err != nil {
		t.Fatalf("RunTrajectory: %v", err)
	}
	if !fig.DetourHitByDensity {
		t.Error("density minima missed the planted detour (Figure 7 behaviour)")
	}
	if len(fig.Figure.Discords) == 0 {
		t.Error("no RRA discords on trajectory")
	}
}

func TestRunBaselines(t *testing.T) {
	// On the ECG dataset every one of the five detectors recovers the
	// planted anomaly (measured; see EXPERIMENTS.md "Detector comparison").
	rs, err := RunBaselines("ecg0606", 1)
	if err != nil {
		t.Fatalf("RunBaselines: %v", err)
	}
	if len(rs) != 5 {
		t.Fatalf("got %d detectors", len(rs))
	}
	for _, r := range rs {
		if !r.Hit {
			t.Errorf("%s missed the planted anomaly (%s)", r.Detector, r.Detail)
		}
	}
	out := FormatBaselines("ecg0606", rs)
	if !strings.Contains(out, "rra") || !strings.Contains(out, "wcad") {
		t.Errorf("FormatBaselines output:\n%s", out)
	}
}

func TestRunBaselinesExactBeatApproximateOnTelemetry(t *testing.T) {
	// On TEK telemetry the distance-based detectors stay reliable while
	// the purely symbolic ones can be distracted by the long flat "off"
	// periods — the behaviour the paper's Section 5 summary describes.
	rs, err := RunBaselines("tek16", 1)
	if err != nil {
		t.Fatalf("RunBaselines: %v", err)
	}
	byName := map[string]BaselineResult{}
	for _, r := range rs {
		byName[r.Detector] = r
	}
	if !byName["rra"].Hit {
		t.Error("RRA missed the planted anomaly")
	}
	if !byName["hotsax"].Hit {
		t.Error("HOTSAX missed the planted anomaly")
	}
}

func TestSweepSkipsInvalidCombos(t *testing.T) {
	// PAA larger than a window must be skipped silently, not fail.
	grid := SweepGrid{Windows: []int{10, 120}, PAAs: []int{20}, Alphabets: []int{4}}
	res, err := RunSweep("ecg0606", grid, 1)
	if err != nil {
		t.Fatalf("RunSweep: %v", err)
	}
	if res.Valid != 1 {
		t.Errorf("Valid = %d, want 1 (only window 120 admits PAA 20)", res.Valid)
	}
}

func TestRunRowOnUsesProvidedDataset(t *testing.T) {
	ds, err := datasets.Generate("tek14")
	if err != nil {
		t.Fatal(err)
	}
	row, err := RunRowOn(ds, 1)
	if err != nil {
		t.Fatalf("RunRowOn: %v", err)
	}
	if row.Name != "tek14" || row.Length != len(ds.Series) {
		t.Errorf("row = %+v", row)
	}
}
