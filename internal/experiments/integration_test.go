package experiments

import (
	"testing"

	"grammarviz/internal/datasets"
	"grammarviz/internal/discord"
	"grammarviz/internal/timeseries"
)

// The paper's accuracy claim as a test: on every evaluation dataset, both
// HOTSAX's and RRA's best discord must overlap the planted ground truth,
// and RRA must need fewer distance calls than HOTSAX, which must need
// fewer than brute force.
func TestTable1ShapeAllDatasets(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every dataset; ~3s")
	}
	for _, name := range datasets.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			row, err := RunRow(name, 1)
			if err != nil {
				t.Fatalf("RunRow: %v", err)
			}
			if !row.TruthHitHotsax {
				t.Error("HOTSAX best discord missed the planted anomaly")
			}
			if !row.TruthHitRRA {
				t.Error("RRA best discord missed the planted anomaly")
			}
			if row.RRACalls >= row.HotsaxCalls {
				t.Errorf("RRA %d calls >= HOTSAX %d", row.RRACalls, row.HotsaxCalls)
			}
			if row.HotsaxCalls >= row.BruteCalls {
				t.Errorf("HOTSAX %d calls >= brute force %d", row.HotsaxCalls, row.BruteCalls)
			}
			// RRA discords stay near the window scale (paper: 127..366 for
			// windows 120..750).
			if row.RRALen < row.HotsaxLen/2 || row.RRALen > row.HotsaxLen*2 {
				t.Errorf("RRA length %d far from window %d", row.RRALen, row.HotsaxLen)
			}
		})
	}
}

// Figure 5's qualitative claim as a test: on the long multi-anomaly ECG,
// HOTSAX and RRA report the same discord set.
func TestFigure5SameSet(t *testing.T) {
	if testing.Short() {
		t.Skip("long record")
	}
	cmp, err := RunRanking("ecg300", 3, 1)
	if err != nil {
		t.Fatalf("RunRanking: %v", err)
	}
	if !cmp.SameSet {
		t.Error("HOTSAX and RRA discord sets diverged")
	}
	if len(cmp.Pairs) != 3 {
		t.Errorf("got %d ranked pairs", len(cmp.Pairs))
	}
}

func TestDropBoundary(t *testing.T) {
	in := makeDiscords([][2]int{{0, 99}, {200, 299}, {400, 999}, {500, 599}})
	out := dropBoundary(in, 1000, 2)
	if len(out) != 2 {
		t.Fatalf("got %d discords", len(out))
	}
	if out[0].Interval.Start != 200 || out[1].Interval.Start != 500 {
		t.Errorf("dropBoundary = %+v", out)
	}
	// All-boundary input falls back to the unfiltered list.
	all := makeDiscords([][2]int{{0, 10}, {990, 999}})
	if got := dropBoundary(all, 1000, 1); len(got) != 2 {
		t.Errorf("all-boundary fallback = %+v", got)
	}
}

func makeDiscords(ivs [][2]int) []discord.Discord {
	out := make([]discord.Discord, len(ivs))
	for i, iv := range ivs {
		out[i] = discord.Discord{Interval: timeseries.Interval{Start: iv[0], End: iv[1]}}
	}
	return out
}
