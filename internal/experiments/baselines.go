package experiments

import (
	"fmt"
	"strings"
	"time"

	"grammarviz/internal/core"
	"grammarviz/internal/datasets"
	"grammarviz/internal/discord"
	"grammarviz/internal/sax"
	"grammarviz/internal/viztree"
	"grammarviz/internal/wcad"
)

// BaselineResult is one detector's outcome in the five-way comparison.
type BaselineResult struct {
	Detector string
	Hit      bool          // best report overlaps the planted ground truth (± one window)
	Elapsed  time.Duration // wall time of the detection
	Detail   string        // detector-specific note (calls, counts, scores)
}

// RunBaselines runs all five detectors implemented in this repository —
// the paper's two (rule density, RRA), its main comparator (HOTSAX), and
// the two related-work baselines (VizTree, WCAD) — on the named synthetic
// dataset, reporting whether each one's best answer hits the planted
// anomaly. This extends the paper's Table 1 with the Section 6
// alternatives it discusses but does not measure.
func RunBaselines(name string, seed int64) ([]BaselineResult, error) {
	ds, err := datasets.Generate(name)
	if err != nil {
		return nil, err
	}
	slack := ds.Params.Window
	var out []BaselineResult

	// Rule density.
	start := time.Now()
	pipe, err := core.Analyze(ds.Series, core.Config{Params: ds.Params, Seed: seed})
	if err != nil {
		return nil, err
	}
	minima := pipe.GlobalMinima()
	res := BaselineResult{Detector: "rule-density", Elapsed: time.Since(start)}
	for _, m := range minima {
		if ds.TruthHit(m, slack) {
			res.Hit = true
			break
		}
	}
	res.Detail = fmt.Sprintf("%d minima intervals, 0 distance calls", len(minima))
	out = append(out, res)

	// RRA.
	start = time.Now()
	rra, err := pipe.Discords(3)
	if err != nil {
		return nil, err
	}
	best := dropBoundary(rra.Discords, len(ds.Series), 1)
	res = BaselineResult{Detector: "rra", Elapsed: time.Since(start)}
	res.Hit = ds.TruthHit(best[0].Interval, slack)
	res.Detail = fmt.Sprintf("%d distance calls", rra.DistCalls)
	out = append(out, res)

	// HOTSAX.
	start = time.Now()
	hs, err := discord.HOTSAX(ds.Series, ds.Params, 1, seed)
	if err != nil {
		return nil, err
	}
	res = BaselineResult{Detector: "hotsax", Elapsed: time.Since(start)}
	res.Hit = ds.TruthHit(hs.Discords[0].Interval, slack)
	res.Detail = fmt.Sprintf("%d distance calls", hs.DistCalls)
	out = append(out, res)

	// VizTree.
	start = time.Now()
	tr, err := viztree.Build(ds.Series, ds.Params)
	if err != nil {
		return nil, err
	}
	vz := tr.Anomalies(1)
	res = BaselineResult{Detector: "viztree", Elapsed: time.Since(start)}
	if len(vz) > 0 {
		res.Hit = ds.TruthHit(vz[0].Interval, slack)
		res.Detail = fmt.Sprintf("rarest word %q seen %dx", vz[0].Word, vz[0].Count)
	}
	out = append(out, res)

	// WCAD.
	start = time.Now()
	p := ds.Params
	if p.PAA < 8 {
		p = sax.Params{Window: p.Window, PAA: 8, Alphabet: p.Alphabet}
	}
	wc, err := wcad.Detect(ds.Series, p)
	res = BaselineResult{Detector: "wcad", Elapsed: time.Since(start)}
	if err != nil {
		res.Detail = "inapplicable: " + err.Error()
	} else {
		res.Hit = ds.TruthHit(wc[0].Interval, slack)
		res.Detail = fmt.Sprintf("top CDM %.3f over %d chunks", wc[0].CDM, len(wc))
	}
	out = append(out, res)
	return out, nil
}

// FormatBaselines renders the comparison as a table.
func FormatBaselines(name string, rs []BaselineResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "detector comparison on %s:\n", name)
	for _, r := range rs {
		hit := "miss"
		if r.Hit {
			hit = "HIT"
		}
		fmt.Fprintf(&b, "  %-13s %-4s %10s  %s\n", r.Detector, hit, r.Elapsed.Round(time.Millisecond), r.Detail)
	}
	return b.String()
}
