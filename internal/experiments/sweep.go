package experiments

import (
	"fmt"

	"grammarviz/internal/core"
	"grammarviz/internal/datasets"
	"grammarviz/internal/density"
	"grammarviz/internal/sax"
)

// paperTrajectoryParams is the discretization the paper used for the
// commute trajectory (Figure 7): (350, 15, 4).
var paperTrajectoryParams = sax.Params{Window: 350, PAA: 15, Alphabet: 4}

// SweepGrid is the (window, PAA, alphabet) grid of the Figure 10
// parameter-selection study.
type SweepGrid struct {
	Windows   []int
	PAAs      []int
	Alphabets []int
}

// DefaultSweepGrid is a coarsened version of the paper's grid (window in
// [10,500], PAA in [3,20], alphabet in [3,12]; the paper samples it
// densely — we step through it so the sweep finishes in seconds while
// preserving the coverage of the space).
var DefaultSweepGrid = SweepGrid{
	Windows:   []int{10, 40, 80, 120, 160, 220, 300, 400, 500},
	PAAs:      []int{3, 5, 7, 9, 12, 16, 20},
	Alphabets: []int{3, 5, 7, 9, 12},
}

// SweepPoint is one evaluated parameter combination.
type SweepPoint struct {
	Params      sax.Params
	ApproxDist  float64 // mean SAX reconstruction error (Figure 10 x-axis)
	GrammarSize int     // total grammar symbols (Figure 10 y-axis)
	DensityHit  bool    // density global minimum overlaps the true anomaly
	RRAHit      bool    // best RRA discord overlaps the true anomaly
}

// SweepResult aggregates a Figure 10 sweep.
type SweepResult struct {
	Points      []SweepPoint
	Valid       int // combinations that produced a usable pipeline
	DensityHits int
	RRAHits     int
}

// RunSweep evaluates every grid combination on the named dataset,
// recording for each whether the density detector and RRA recover the
// planted anomaly. The paper's headline (Figure 10): the RRA success
// region is roughly twice the density detector's.
func RunSweep(name string, grid SweepGrid, seed int64) (*SweepResult, error) {
	ds, err := datasets.Generate(name)
	if err != nil {
		return nil, err
	}
	res := &SweepResult{}
	for _, w := range grid.Windows {
		for _, paaSize := range grid.PAAs {
			for _, a := range grid.Alphabets {
				p := sax.Params{Window: w, PAA: paaSize, Alphabet: a}
				if p.Validate(len(ds.Series)) != nil {
					continue // e.g. PAA > window
				}
				pt, ok := evalSweepPoint(ds, p, seed)
				if !ok {
					continue
				}
				res.Points = append(res.Points, pt)
				res.Valid++
				if pt.DensityHit {
					res.DensityHits++
				}
				if pt.RRAHit {
					res.RRAHits++
				}
			}
		}
	}
	if res.Valid == 0 {
		return nil, fmt.Errorf("experiments: sweep produced no valid combinations")
	}
	return res, nil
}

// evalSweepPoint decides, for one parameter combination, whether each
// detector's primary report recovers the planted anomaly. "Primary" means
// the longest global-minimum interval for the density detector and the
// best non-boundary discord for RRA; the hit tolerance is half a window.
func evalSweepPoint(ds *datasets.Dataset, p sax.Params, seed int64) (SweepPoint, bool) {
	pipe, err := core.Analyze(ds.Series, core.Config{Params: p, Seed: seed})
	if err != nil {
		return SweepPoint{}, false
	}
	pt := SweepPoint{Params: p, GrammarSize: pipe.GrammarSize()}
	if ad, err := core.ApproximationDistance(ds.Series, p); err == nil {
		pt.ApproxDist = ad
	}
	slack := p.Window / 2
	// The density algorithm "simply outputs these [global-minima]
	// intervals" (Section 4.1) — it has no ranking, so it succeeds only
	// when every reported interval points at the true anomaly, and the
	// paper-literal curve is used without edge trimming (series edges are
	// covered by fewer windows, and that undercoverage frequently claims
	// the global minimum). This unranked, untrimmed criterion is what
	// makes the method fragile, exactly as the paper's Section 5 summary
	// states; the production API (Detector.GlobalMinima) trims edges and
	// is correspondingly more robust than the paper's plots suggest.
	minima := density.GlobalMinima(pipe.Density)
	pt.DensityHit = len(minima) > 0
	for _, m := range minima {
		if !ds.TruthHit(m, slack) {
			pt.DensityHit = false
			break
		}
	}
	if res, err := pipe.Discords(3); err == nil && len(res.Discords) > 0 {
		best := dropBoundary(res.Discords, len(ds.Series), 1)
		pt.RRAHit = ds.TruthHit(best[0].Interval, slack)
	}
	return pt, true
}

// RunSweepOn is RunSweep for a pre-generated dataset.
func RunSweepOn(ds *datasets.Dataset, grid SweepGrid, seed int64) (*SweepResult, error) {
	res := &SweepResult{}
	for _, w := range grid.Windows {
		for _, paaSize := range grid.PAAs {
			for _, a := range grid.Alphabets {
				p := sax.Params{Window: w, PAA: paaSize, Alphabet: a}
				if p.Validate(len(ds.Series)) != nil {
					continue
				}
				pt, ok := evalSweepPoint(ds, p, seed)
				if !ok {
					continue
				}
				res.Points = append(res.Points, pt)
				res.Valid++
				if pt.DensityHit {
					res.DensityHits++
				}
				if pt.RRAHit {
					res.RRAHits++
				}
			}
		}
	}
	if res.Valid == 0 {
		return nil, fmt.Errorf("experiments: sweep produced no valid combinations")
	}
	return res, nil
}
