// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5) on the synthetic dataset counterparts: Table 1's
// distance-call comparison, the density/NN figure panels (Figures 1-4, 7),
// the HOTSAX-vs-RRA ranking study (Figure 5), and the discretization
// parameter sweep (Figure 10). EXPERIMENTS.md records the paper-reported
// numbers next to the measured ones.
package experiments

import (
	"fmt"
	"strings"

	"grammarviz/internal/core"
	"grammarviz/internal/datasets"
	"grammarviz/internal/discord"
	"grammarviz/internal/sax"
)

// Table1Row is one measured row of the Table 1 reproduction.
type Table1Row struct {
	Name   string
	Params sax.Params
	Length int

	BruteCalls  int64 // analytic count (the paper reports these for its largest records too)
	HotsaxCalls int64
	RRACalls    int64

	// ReductionPct is the paper's "Reduction in distance calls": the
	// percentage of HOTSAX's calls that RRA avoids.
	ReductionPct float64

	HotsaxLen int // = window, HOTSAX discords are fixed length
	RRALen    int // length of the best RRA discord

	// OverlapPct is the best overlap between the HOTSAX top discord and
	// any of RRA's top-3 discords, as a percentage of the shorter one —
	// the paper's recall measure ("discords length and overlap").
	OverlapPct float64

	// TruthHitHotsax / TruthHitRRA report whether each algorithm's best
	// discord overlaps the planted ground truth (within one window).
	TruthHitHotsax bool
	TruthHitRRA    bool
}

// RunRow regenerates one Table 1 row on the named synthetic dataset.
func RunRow(name string, seed int64) (Table1Row, error) {
	ds, err := datasets.Generate(name)
	if err != nil {
		return Table1Row{}, err
	}
	return RunRowOn(ds, seed)
}

// RunRowOn regenerates a Table 1 row for an already generated dataset.
func RunRowOn(ds *datasets.Dataset, seed int64) (Table1Row, error) {
	row := Table1Row{
		Name:      ds.Name,
		Params:    ds.Params,
		Length:    len(ds.Series),
		HotsaxLen: ds.Params.Window,
	}
	row.BruteCalls = discord.BruteForceCallCount(len(ds.Series), ds.Params.Window)

	// Workers is pinned to 1: the table's distance-call columns must be
	// deterministic, and the parallel RRA's call count varies with
	// goroutine scheduling (its discords do not).
	p, err := core.Analyze(ds.Series, core.Config{Params: ds.Params, Seed: seed, Workers: 1})
	if err != nil {
		return row, fmt.Errorf("experiments: analyze %s: %w", ds.Name, err)
	}

	// HOTSAX shares the pipeline's series statistics, so the prefix sums
	// are built once for both searches.
	hs, err := discord.HOTSAXStats(p.Stats(), ds.Params, 1, seed)
	if err != nil {
		return row, fmt.Errorf("experiments: hotsax on %s: %w", ds.Name, err)
	}
	row.HotsaxCalls = hs.DistCalls
	// The paper's distance-call columns compare top-1 searches; the
	// length/overlap columns consider ranked discords, so run top-1 for
	// the count and top-3 for the overlap measure.
	rra1, err := p.Discords(1)
	if err != nil {
		return row, fmt.Errorf("experiments: rra on %s: %w", ds.Name, err)
	}
	row.RRACalls = rra1.DistCalls
	rraAll, err := p.Discords(5)
	if err != nil {
		return row, fmt.Errorf("experiments: rra top-3 on %s: %w", ds.Name, err)
	}
	rra := struct{ Discords []discord.Discord }{dropBoundary(rraAll.Discords, len(ds.Series), 3)}
	if row.HotsaxCalls > 0 {
		row.ReductionPct = 100 * (1 - float64(row.RRACalls)/float64(row.HotsaxCalls))
	}

	best := rra.Discords[0]
	row.RRALen = best.Interval.Len()
	hsBest := hs.Discords[0]
	for _, d := range rra.Discords {
		if o := 100 * hsBest.Interval.OverlapFrac(d.Interval); o > row.OverlapPct {
			row.OverlapPct = o
		}
	}
	slack := ds.Params.Window
	row.TruthHitHotsax = ds.TruthHit(hsBest.Interval, slack)
	row.TruthHitRRA = ds.TruthHit(best.Interval, slack)
	return row, nil
}

// RunTable1 regenerates every row of Table 1, in the paper's order.
func RunTable1(seed int64) ([]Table1Row, error) {
	names := datasets.Names()
	rows := make([]Table1Row, 0, len(names))
	for _, name := range names {
		row, err := RunRow(name, seed)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable1 renders measured rows the way the paper prints Table 1,
// optionally annotating each row with the paper-reported values.
func FormatTable1(rows []Table1Row, withPaper bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %8s %15s %12s %10s %9s %11s %8s %6s\n",
		"Dataset (w,p,a)", "Length", "Brute-force", "HOTSAX", "RRA", "Reduction", "HS/RRA len", "Overlap", "Truth")
	for _, r := range rows {
		truth := ""
		if r.TruthHitHotsax {
			truth += "H"
		}
		if r.TruthHitRRA {
			truth += "R"
		}
		fmt.Fprintf(&b, "%-22s %8d %15d %12d %10d %8.1f%% %5d/%-5d %6.1f%% %6s\n",
			fmt.Sprintf("%s %s", r.Name, r.Params), r.Length,
			r.BruteCalls, r.HotsaxCalls, r.RRACalls, r.ReductionPct,
			r.HotsaxLen, r.RRALen, r.OverlapPct, truth)
		if withPaper {
			if p, ok := PaperTable1[r.Name]; ok {
				fmt.Fprintf(&b, "  paper: len %d, brute %.3g, hotsax %.3g, rra %.3g, reduction %.1f%%, len %d/%d, overlap %.1f%%\n",
					p.Length, p.Brute, p.Hotsax, p.RRA, p.ReductionPct, p.WindowLen, p.RRALen, p.OverlapPct)
			}
		}
	}
	return b.String()
}
