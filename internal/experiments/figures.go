package experiments

import (
	"fmt"

	"grammarviz/internal/core"
	"grammarviz/internal/datasets"
	"grammarviz/internal/discord"
	"grammarviz/internal/timeseries"
)

// DensityFigure bundles the three panels the paper's density figures show
// (Figures 1, 2, 3, 7): the series, the rule density curve with its minima
// intervals, and the nearest-non-self-match distance of every
// rule-corresponding subsequence, plus the RRA discords for the overlays.
type DensityFigure struct {
	Dataset  *datasets.Dataset
	Pipeline *core.Pipeline
	Minima   []timeseries.Interval // density global minima (edge-trimmed)
	NN       []discord.Discord     // bottom panel: non-self NN distances
	Discords []discord.Discord     // RRA top-k
}

// RunDensityFigure regenerates the density-figure panels for the named
// dataset, reporting the top-k RRA discords.
func RunDensityFigure(name string, k int, seed int64) (*DensityFigure, error) {
	ds, err := datasets.Generate(name)
	if err != nil {
		return nil, err
	}
	return RunDensityFigureOn(ds, k, seed)
}

// RunDensityFigureOn is RunDensityFigure for a pre-generated dataset.
func RunDensityFigureOn(ds *datasets.Dataset, k int, seed int64) (*DensityFigure, error) {
	p, err := core.Analyze(ds.Series, core.Config{Params: ds.Params, Seed: seed})
	if err != nil {
		return nil, fmt.Errorf("experiments: analyze %s: %w", ds.Name, err)
	}
	res, err := p.Discords(k + 2)
	if err != nil {
		return nil, fmt.Errorf("experiments: rra %s: %w", ds.Name, err)
	}
	return &DensityFigure{
		Dataset:  ds,
		Pipeline: p,
		Minima:   p.GlobalMinima(),
		NN:       p.NearestNonSelf(),
		Discords: dropBoundary(res.Discords, len(ds.Series), k),
	}, nil
}

// dropBoundary removes discords that touch the very first or last point of
// the series and truncates to k. A subsequence at the series boundary
// starts at an arbitrary phase that, by construction, no rule-derived
// candidate start can align with, so its nearest-non-self-match distance
// is inflated for reasons unrelated to anomalousness. The experiment
// harness filters these explicitly (and only here — the core algorithm
// stays faithful to the paper's Algorithm 1).
func dropBoundary(in []discord.Discord, n, k int) []discord.Discord {
	out := make([]discord.Discord, 0, k)
	for _, d := range in {
		if d.Interval.Start == 0 || d.Interval.End == n-1 {
			continue
		}
		out = append(out, d)
		if len(out) == k {
			break
		}
	}
	if len(out) == 0 {
		return in // all boundary: keep rather than return nothing
	}
	return out
}

// RankedPair is one rank slot of the Figure 5 comparison.
type RankedPair struct {
	Rank   int
	Hotsax discord.Discord
	RRA    discord.Discord
}

// RankingComparison is the Figure 5 experiment: the top-k discords of
// HOTSAX and RRA on the long ECG record, aligned by rank. The paper's
// observation: the sets agree but the order differs, because RRA's
// length-normalized distance (Eq. 1) can promote a shorter discord.
type RankingComparison struct {
	Pairs []RankedPair
	// SameSet reports whether every HOTSAX discord overlaps some RRA
	// discord (the content agrees even if the order does not).
	SameSet bool
	// SameOrder reports whether rank i of both algorithms overlaps for
	// all i.
	SameOrder bool
}

// RunRanking regenerates Figure 5: top-k discords from both algorithms on
// the named dataset.
func RunRanking(name string, k int, seed int64) (*RankingComparison, error) {
	ds, err := datasets.Generate(name)
	if err != nil {
		return nil, err
	}
	hs, err := discord.HOTSAX(ds.Series, ds.Params, k, seed)
	if err != nil {
		return nil, fmt.Errorf("experiments: hotsax: %w", err)
	}
	p, err := core.Analyze(ds.Series, core.Config{Params: ds.Params, Seed: seed})
	if err != nil {
		return nil, fmt.Errorf("experiments: analyze: %w", err)
	}
	rraRes, err := p.Discords(k + 2)
	if err != nil {
		return nil, fmt.Errorf("experiments: rra: %w", err)
	}
	rra := struct{ Discords []discord.Discord }{dropBoundary(rraRes.Discords, len(ds.Series), k)}

	cmp := &RankingComparison{SameSet: true, SameOrder: true}
	n := len(hs.Discords)
	if len(rra.Discords) < n {
		n = len(rra.Discords)
	}
	for i := 0; i < n; i++ {
		cmp.Pairs = append(cmp.Pairs, RankedPair{Rank: i + 1, Hotsax: hs.Discords[i], RRA: rra.Discords[i]})
		if !hs.Discords[i].Interval.Overlaps(rra.Discords[i].Interval) {
			cmp.SameOrder = false
		}
		matched := false
		for _, r := range rra.Discords {
			if hs.Discords[i].Interval.Overlaps(r.Interval) {
				matched = true
				break
			}
		}
		if !matched {
			cmp.SameSet = false
		}
	}
	return cmp, nil
}

// TrajectoryFigure is the Figure 7–9 experiment on the commute data.
type TrajectoryFigure struct {
	Data               *datasets.TrajectoryData
	Figure             *DensityFigure
	DetourHitByDensity bool // Figure 7: the density minimum finds the detour
	FixLossHitByRRA    bool // Figure 7: the best RRA discord is the fix-loss segment
}

// RunTrajectory regenerates the trajectory case study.
func RunTrajectory(seed int64) (*TrajectoryFigure, error) {
	td, err := datasets.Trajectory(datasets.TrajectoryOptions{
		Days: 8, PointsPerLeg: 130, GPSNoise: 0.05, HilbertOrder: 8, Seed: 101,
	})
	if err != nil {
		return nil, err
	}
	td.Dataset.Params = paperTrajectoryParams
	fig, err := RunDensityFigureOn(&td.Dataset, 3, seed)
	if err != nil {
		return nil, err
	}
	out := &TrajectoryFigure{Data: td, Figure: fig}
	detour, fixLoss := td.Truth[0], td.Truth[1]
	slack := td.Params.Window
	for _, m := range fig.Minima {
		if m.Overlaps(widen(detour, slack)) {
			out.DetourHitByDensity = true
		}
	}
	if len(fig.Discords) > 0 && fig.Discords[0].Interval.Overlaps(widen(fixLoss, slack)) {
		out.FixLossHitByRRA = true
	}
	return out, nil
}

func widen(iv timeseries.Interval, slack int) timeseries.Interval {
	return timeseries.Interval{Start: iv.Start - slack, End: iv.End + slack}
}
