package memlog

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func mustOpen(t *testing.T, dir string, opts Options) (*Log, *Recovered) {
	t.Helper()
	l, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return l, rec
}

func appendAll(t *testing.T, l *Log, recs ...string) {
	t.Helper()
	for _, r := range recs {
		if err := l.Append([]byte(r)); err != nil {
			t.Fatalf("append %q: %v", r, err)
		}
	}
}

func recordStrings(rec *Recovered) []string {
	out := make([]string, len(rec.Records))
	for i, r := range rec.Records {
		out[i] = string(r)
	}
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, rec := mustOpen(t, dir, Options{})
	if rec.Snapshot != nil || len(rec.Records) != 0 || rec.Torn {
		t.Fatalf("fresh log recovered %+v", rec)
	}
	want := []string{"alpha", "beta", "", "gamma with a longer payload"}
	appendAll(t, l, want...)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec = mustOpen(t, dir, Options{})
	if !equalStrings(recordStrings(rec), want) {
		t.Fatalf("recovered %q, want %q", recordStrings(rec), want)
	}
	if rec.Torn {
		t.Fatal("clean log reported torn")
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{SegmentBytes: 64})
	var want []string
	for i := 0; i < 20; i++ {
		r := fmt.Sprintf("record-%02d", i)
		want = append(want, r)
		appendAll(t, l, r)
	}
	if l.segSeq < 3 {
		t.Fatalf("expected several segments, still on %d", l.segSeq)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec := mustOpen(t, dir, Options{SegmentBytes: 64})
	if !equalStrings(recordStrings(rec), want) {
		t.Fatalf("rotation lost records: got %d want %d", len(rec.Records), len(want))
	}
}

func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{SegmentBytes: 128, CompactFactor: 2})
	appendAll(t, l, "one", "two", "three")
	if err := l.SaveSnapshot([]byte("snapshot-state")); err != nil {
		t.Fatal(err)
	}
	if l.LogBytes() != 0 {
		t.Fatalf("log bytes %d after compaction", l.LogBytes())
	}
	if l.SnapshotBytes() != int64(len("snapshot-state")) {
		t.Fatalf("snapshot bytes %d", l.SnapshotBytes())
	}
	appendAll(t, l, "four", "five")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec := mustOpen(t, dir, Options{})
	if string(rec.Snapshot) != "snapshot-state" {
		t.Fatalf("snapshot %q", rec.Snapshot)
	}
	if !equalStrings(recordStrings(rec), []string{"four", "five"}) {
		t.Fatalf("post-snapshot records %q", recordStrings(rec))
	}
}

func TestShouldCompact(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{CompactFactor: 2})
	if err := l.SaveSnapshot(make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if l.ShouldCompact() {
		t.Fatal("empty log wants compaction")
	}
	big := make([]byte, 300)
	if err := l.Append(big); err != nil {
		t.Fatal(err)
	}
	if !l.ShouldCompact() {
		t.Fatalf("log of %d bytes over a %d-byte snapshot should compact", l.LogBytes(), l.SnapshotBytes())
	}
	l.Close()
}

// TestInterruptedCompaction simulates a crash between the snapshot rename
// and stale segment removal: the watermark in the snapshot header must
// make recovery skip (and delete) the superseded segments.
func TestInterruptedCompaction(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	appendAll(t, l, "old-1", "old-2")
	seg := filepath.Join(dir, segName(l.segSeq))
	stale, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.SaveSnapshot([]byte("covers-old")); err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "new-1")
	l.Close()
	// Resurrect the superseded segment, as if removal never happened.
	if err := os.WriteFile(seg, stale, 0o644); err != nil {
		t.Fatal(err)
	}

	_, rec := mustOpen(t, dir, Options{})
	if string(rec.Snapshot) != "covers-old" {
		t.Fatalf("snapshot %q", rec.Snapshot)
	}
	if !equalStrings(recordStrings(rec), []string{"new-1"}) {
		t.Fatalf("stale segment replayed: %q", recordStrings(rec))
	}
	if _, err := os.Stat(seg); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("stale segment not removed during recovery")
	}
}

// TestTornTail truncates the final record at every possible byte and
// requires recovery to drop exactly that record, report Torn, and leave
// the log appendable.
func TestTornTail(t *testing.T) {
	build := func(t *testing.T) (string, []byte) {
		dir := t.TempDir()
		l, _ := mustOpen(t, dir, Options{})
		appendAll(t, l, "keep-1", "keep-2", "torn-record")
		l.Close()
		seg := filepath.Join(dir, segName(1))
		data, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		return dir, data
	}
	_, full := build(t)
	lastLen := recHeaderLen + len("torn-record")
	cleanLen := len(full) - lastLen
	for cut := cleanLen + 1; cut < len(full); cut++ {
		dir, data := build(t)
		seg := filepath.Join(dir, segName(1))
		if err := os.WriteFile(seg, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		var warned bool
		l, rec, err := Open(dir, Options{Logf: func(string, ...any) { warned = true }})
		if err != nil {
			t.Fatalf("cut=%d: torn tail failed boot: %v", cut, err)
		}
		if !rec.Torn || !warned {
			t.Fatalf("cut=%d: torn=%v warned=%v", cut, rec.Torn, warned)
		}
		if !equalStrings(recordStrings(rec), []string{"keep-1", "keep-2"}) {
			t.Fatalf("cut=%d: recovered %q", cut, recordStrings(rec))
		}
		// The log must keep working after truncation.
		appendAll(t, l, "after-tear")
		l.Close()
		_, rec2 := mustOpen(t, dir, Options{})
		if !equalStrings(recordStrings(rec2), []string{"keep-1", "keep-2", "after-tear"}) {
			t.Fatalf("cut=%d: post-tear append lost: %q", cut, recordStrings(rec2))
		}
	}
}

// TestTornChecksumTail flips a payload byte of the final record — the
// header landed, the payload didn't finish — which is torn, not corrupt.
func TestTornChecksumTail(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	appendAll(t, l, "keep", "damaged-tail")
	l.Close()
	seg := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, rec := mustOpen(t, dir, Options{})
	if !rec.Torn || !equalStrings(recordStrings(rec), []string{"keep"}) {
		t.Fatalf("torn=%v records=%q", rec.Torn, recordStrings(rec))
	}
}

// TestMidLogCorruption damages a record that is not the final one: that
// can never be a torn write, so boot must fail with ErrCorrupt.
func TestMidLogCorruption(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	appendAll(t, l, "first-record", "second-record", "third-record")
	l.Close()
	seg := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[segHeaderLen+recHeaderLen+2] ^= 0xff // inside the first payload
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mid-log damage: got %v, want ErrCorrupt", err)
	}
}

// TestMidLogCorruptionAcrossSegments damages the tail of a non-final
// segment: also ErrCorrupt, because a later segment proves the log
// continued past it.
func TestMidLogCorruptionAcrossSegments(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{SegmentBytes: 48})
	appendAll(t, l, "segment-one-record", "segment-two-record")
	if l.segSeq < 2 {
		t.Fatalf("expected rotation, still on segment %d", l.segSeq)
	}
	l.Close()
	seg1 := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(seg1)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg1, data[:len(data)-2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("non-final torn segment: got %v, want ErrCorrupt", err)
	}
}

func TestSegmentGapIsCorrupt(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{SegmentBytes: 48})
	appendAll(t, l, "segment-one-record", "segment-two-record", "segment-three-rec", "segment-four-record")
	if l.segSeq < 3 {
		t.Fatalf("expected 3 segments, on %d", l.segSeq)
	}
	l.Close()
	if err := os.Remove(filepath.Join(dir, segName(2))); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("segment gap: got %v, want ErrCorrupt", err)
	}
}

func TestBadSegmentMagicIsCorrupt(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	appendAll(t, l, "record")
	l.Close()
	seg := filepath.Join(dir, segName(1))
	data, _ := os.ReadFile(seg)
	copy(data, "XXXX")
	os.WriteFile(seg, data, 0o644)
	if _, _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: got %v, want ErrCorrupt", err)
	}
}

func TestCorruptSnapshotHeader(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	if err := l.SaveSnapshot([]byte("state")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	snap := filepath.Join(dir, snapshotName)
	data, _ := os.ReadFile(snap)
	copy(data, "ZZZZ")
	os.WriteFile(snap, data, 0o644)
	if _, _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad snapshot magic: got %v, want ErrCorrupt", err)
	}
}

func TestLeftoverTmpSnapshotIgnored(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	if err := l.SaveSnapshot([]byte("good")); err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "rec")
	l.Close()
	// An interrupted later SaveSnapshot leaves a tmp; it must be ignored
	// and removed.
	tmp := filepath.Join(dir, snapshotName+".tmp")
	if err := os.WriteFile(tmp, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, rec := mustOpen(t, dir, Options{})
	if string(rec.Snapshot) != "good" || !equalStrings(recordStrings(rec), []string{"rec"}) {
		t.Fatalf("recovered %q / %q", rec.Snapshot, recordStrings(rec))
	}
	if _, err := os.Stat(tmp); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("tmp snapshot not removed")
	}
}

// TestSyncPolicies exercises the three policies; correctness of interval
// pacing is pinned with an injected clock.
func TestSyncPolicies(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncAlways, SyncOff} {
		dir := t.TempDir()
		l, _ := mustOpen(t, dir, Options{Policy: policy})
		appendAll(t, l, "a", "b")
		if policy == SyncAlways && l.dirty {
			t.Fatalf("%v: dirty after append", policy)
		}
		if policy == SyncOff && !l.dirty {
			t.Fatalf("%v: clean after append without sync", policy)
		}
		l.Close()
	}

	now := time.Unix(1000, 0)
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{
		Policy:   SyncInterval,
		Interval: time.Second,
		Now:      func() time.Time { return now },
	})
	appendAll(t, l, "a")
	if !l.dirty {
		t.Fatal("interval policy synced before the interval elapsed")
	}
	now = now.Add(2 * time.Second)
	appendAll(t, l, "b")
	if l.dirty {
		t.Fatal("interval policy failed to sync after the interval elapsed")
	}
	l.Close()
}

func TestWriteDelayHookSplitsWrites(t *testing.T) {
	dir := t.TempDir()
	calls := 0
	l, _ := mustOpen(t, dir, Options{WriteDelay: func() { calls++ }})
	appendAll(t, l, "a", "b", "c")
	l.Close()
	if calls != 3 {
		t.Fatalf("write delay hook called %d times", calls)
	}
	_, rec := mustOpen(t, dir, Options{})
	if !equalStrings(recordStrings(rec), []string{"a", "b", "c"}) {
		t.Fatalf("recovered %q", recordStrings(rec))
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for s, want := range map[string]SyncPolicy{"always": SyncAlways, "interval": SyncInterval, "off": SyncOff} {
		got, err := ParseSyncPolicy(s)
		if err != nil || got != want {
			t.Fatalf("parse %q: %v, %v", s, got, err)
		}
		if got.String() != s {
			t.Fatalf("round trip %q -> %q", s, got)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

// TestImpossibleLengthAtTailIsTorn writes garbage bytes after the last
// record — as a torn header write would — and requires truncation.
func TestImpossibleLengthAtTailIsTorn(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	appendAll(t, l, "keep")
	l.Close()
	seg := filepath.Join(dir, segName(1))
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var junk [recHeaderLen]byte
	binary.LittleEndian.PutUint32(junk[:], 1<<31) // over maxRecord
	if _, err := f.Write(junk[:]); err != nil {
		t.Fatal(err)
	}
	f.Close()
	_, rec := mustOpen(t, dir, Options{})
	if !rec.Torn || !equalStrings(recordStrings(rec), []string{"keep"}) {
		t.Fatalf("torn=%v records=%q", rec.Torn, recordStrings(rec))
	}
}

func TestRecordsAreCopies(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	appendAll(t, l, "aaa", "bbb")
	l.Close()
	_, rec := mustOpen(t, dir, Options{})
	rec.Records[0][0] = 'z'
	if bytes.Equal(rec.Records[0], rec.Records[1]) {
		t.Fatal("unexpected aliasing")
	}
}
