// Package memlog is a per-session write-ahead log with snapshot
// compaction, built for the durable streaming sessions in gvad. Each
// session owns a directory holding at most one snapshot (an opaque blob —
// in gvad, a checkpoint frame) plus a sequence of append-only log
// segments recording everything since that snapshot. Recovery loads the
// snapshot and replays the segments in order.
//
// Durability is explicit and configurable: SyncAlways fsyncs after every
// append (a crash loses nothing acknowledged), SyncInterval fsyncs lazily
// when the configured interval has elapsed at the next append (bounded
// loss, no background goroutine), SyncOff leaves flushing to the OS.
//
// The recovery contract distinguishes a *torn tail* from corruption. A
// process killed mid-write leaves at most one partial record at the very
// end of the newest segment; recovery drops it, truncates the segment to
// the clean prefix, logs a warning and boots. Any other anomaly — a bad
// checksum or impossible length before the tail, a missing segment in the
// sequence, a damaged segment header — is ErrCorrupt: the caller
// quarantines the session rather than silently resuming from a hole.
//
// A Log is not safe for concurrent use; gvad serializes access under the
// per-session mutex.
package memlog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// ErrCorrupt is returned when recovery finds damage that cannot be
// explained by a torn final write: the log's history is untrustworthy.
var ErrCorrupt = errors.New("memlog: corrupt")

// SyncPolicy selects when appends reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs the segment after every append.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs at the first append after Interval has elapsed
	// since the last sync (and on Close/snapshot), bounding loss without
	// a background flusher.
	SyncInterval
	// SyncOff never fsyncs appends; the OS flushes when it pleases.
	SyncOff
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncOff:
		return "off"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// ParseSyncPolicy maps the gvad flag spelling to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "off":
		return SyncOff, nil
	}
	return 0, fmt.Errorf("memlog: unknown fsync policy %q (want always, interval or off)", s)
}

// Options configures a Log. The zero value means SyncAlways, 4 MiB
// segments, compaction at 4x snapshot size.
type Options struct {
	Policy   SyncPolicy
	Interval time.Duration // SyncInterval flush period (default 100ms)

	// SegmentBytes rotates to a new segment once the current one reaches
	// this size (default 4 MiB).
	SegmentBytes int64

	// CompactFactor K triggers ShouldCompact once the log holds more than
	// K x the snapshot's size in appended bytes (default 4).
	CompactFactor int

	// WriteDelay, when set, is called between writing a record's header
	// and its payload — a test hook that widens the torn-write window so
	// crash tests can deterministically kill mid-record.
	WriteDelay func()

	// Logf receives recovery warnings (torn tails). Nil discards.
	Logf func(format string, args ...any)

	// Now supplies the clock for SyncInterval (default time.Now).
	Now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = 100 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.CompactFactor <= 0 {
		o.CompactFactor = 4
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

const (
	segMagic     = "GVWL"
	segVersion   = 1
	segHeaderLen = 8         // magic + u16 version + u16 reserved
	recHeaderLen = 8         // u32 payload length + u32 crc32c
	maxRecord    = 256 << 20 // longest credible record; larger lengths are damage
	snapshotName = "snapshot.gvsn"

	// The snapshot file carries its own header so recovery knows which
	// segments it supersedes: magic + u16 version + u16 reserved + u64
	// watermark (the highest segment sequence whose records the snapshot
	// already includes). A crash between the snapshot rename and stale
	// segment removal therefore cannot replay superseded records.
	snapMagic     = "GVSN"
	snapHeaderLen = 16
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Recovered reports what Open reconstructed from disk.
type Recovered struct {
	Snapshot []byte   // last compacted snapshot, nil if none was written
	Records  [][]byte // records appended after that snapshot, in order
	Torn     bool     // a torn final record was dropped and truncated away
}

// Log is an open write-ahead log rooted at a session directory.
type Log struct {
	dir  string
	opts Options

	seg       *os.File // current (newest) segment, opened for append
	segSeq    int
	segSize   int64 // bytes in the current segment including header
	logBytes  int64 // record bytes across all segments since the snapshot
	snapSize  int64 // payload size of the current snapshot, 0 if none
	watermark int   // highest segment sequence the snapshot supersedes

	lastSync time.Time
	dirty    bool // unsynced appends outstanding

	buf []byte // append scratch so header+payload land in one write
}

func segName(seq int) string { return fmt.Sprintf("wal-%06d.log", seq) }

// Open opens (creating if necessary) the log rooted at dir, recovers the
// snapshot and clean record prefix, and leaves the log ready to append.
// A torn final record is dropped and truncated with a warning; deeper
// damage returns ErrCorrupt with the log closed.
func Open(dir string, opts Options) (*Log, *Recovered, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("memlog: %w", err)
	}
	l := &Log{dir: dir, opts: opts, lastSync: opts.Now()}
	rec := &Recovered{}

	// A leftover tmp is an interrupted SaveSnapshot that never renamed;
	// the previous snapshot (if any) is still authoritative.
	_ = os.Remove(l.snapshotPath() + ".tmp")

	if raw, err := os.ReadFile(l.snapshotPath()); err == nil {
		payload, watermark, err := parseSnapshot(raw)
		if err != nil {
			return nil, nil, err
		}
		rec.Snapshot = payload
		l.snapSize = int64(len(payload))
		l.watermark = watermark
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, nil, fmt.Errorf("memlog: read snapshot: %w", err)
	}

	seqs, err := l.listSegments()
	if err != nil {
		return nil, nil, err
	}
	for i, seq := range seqs {
		last := i == len(seqs)-1
		records, torn, err := l.replaySegment(seq, last)
		if err != nil {
			return nil, nil, err
		}
		rec.Records = append(rec.Records, records...)
		rec.Torn = rec.Torn || torn
	}

	next := l.watermark + 1
	if len(seqs) > 0 {
		next = seqs[len(seqs)-1]
		// Reopen the newest segment for appending unless it is already
		// over the rotation threshold.
		info, err := os.Stat(filepath.Join(dir, segName(next)))
		if err != nil {
			return nil, nil, fmt.Errorf("memlog: %w", err)
		}
		if info.Size() >= opts.SegmentBytes {
			next++
		}
	}
	if err := l.openSegment(next); err != nil {
		return nil, nil, err
	}
	return l, rec, nil
}

// parseSnapshot splits a snapshot file into its payload and watermark.
// Rename makes snapshot writes atomic, so a malformed file is corruption,
// not a torn write.
func parseSnapshot(raw []byte) ([]byte, int, error) {
	if len(raw) < snapHeaderLen {
		return nil, 0, fmt.Errorf("%w: snapshot truncated at %d bytes", ErrCorrupt, len(raw))
	}
	if string(raw[:4]) != snapMagic {
		return nil, 0, fmt.Errorf("%w: snapshot bad magic %q", ErrCorrupt, raw[:4])
	}
	if v := binary.LittleEndian.Uint16(raw[4:6]); v != segVersion {
		return nil, 0, fmt.Errorf("%w: snapshot unknown version %d", ErrCorrupt, v)
	}
	watermark := binary.LittleEndian.Uint64(raw[8:16])
	if watermark > 1<<40 {
		return nil, 0, fmt.Errorf("%w: snapshot watermark %d out of range", ErrCorrupt, watermark)
	}
	return raw[snapHeaderLen:], int(watermark), nil
}

func (l *Log) snapshotPath() string { return filepath.Join(l.dir, snapshotName) }

// listSegments returns the live segment sequence numbers (those the
// snapshot does not supersede), ascending, verifying the sequence starts
// right after the watermark and has no gaps. Stale segments left behind
// by a crash mid-compaction are removed here.
func (l *Log) listSegments() ([]int, error) {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return nil, fmt.Errorf("memlog: %w", err)
	}
	var seqs []int
	for _, e := range entries {
		var seq int
		if n, _ := fmt.Sscanf(e.Name(), "wal-%06d.log", &seq); n != 1 {
			continue
		}
		if seq <= l.watermark {
			// Superseded by the snapshot: a crash interrupted removal.
			if err := os.Remove(filepath.Join(l.dir, e.Name())); err != nil {
				return nil, fmt.Errorf("memlog: remove stale segment: %w", err)
			}
			continue
		}
		seqs = append(seqs, seq)
	}
	sort.Ints(seqs)
	if len(seqs) > 0 && seqs[0] != l.watermark+1 {
		return nil, fmt.Errorf("%w: first segment %d, want %d", ErrCorrupt, seqs[0], l.watermark+1)
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] != seqs[i-1]+1 {
			return nil, fmt.Errorf("%w: segment %d follows %d", ErrCorrupt, seqs[i], seqs[i-1])
		}
	}
	return seqs, nil
}

// replaySegment reads every record of segment seq. In the last segment a
// torn tail (truncated or checksum-damaged final record) is dropped and
// the file truncated to the clean prefix; anywhere else the same finding
// is ErrCorrupt.
func (l *Log) replaySegment(seq int, last bool) (records [][]byte, torn bool, err error) {
	path := filepath.Join(l.dir, segName(seq))
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false, fmt.Errorf("memlog: %w", err)
	}
	tornAt := func(off int64, what string) ([][]byte, bool, error) {
		if !last {
			return nil, false, fmt.Errorf("%w: segment %d: %s at offset %d", ErrCorrupt, seq, what, off)
		}
		l.opts.Logf("memlog: %s: dropping torn tail (%s at offset %d of %d)", path, what, off, len(data))
		if err := os.Truncate(path, off); err != nil {
			return nil, false, fmt.Errorf("memlog: truncate torn tail: %w", err)
		}
		return records, true, nil
	}
	if len(data) < segHeaderLen {
		// The segment file was created but the header never fully landed:
		// only possible for the newest segment of a crashed process.
		return tornAt(0, "truncated segment header")
	}
	if string(data[:4]) != segMagic {
		return nil, false, fmt.Errorf("%w: segment %d: bad magic %q", ErrCorrupt, seq, data[:4])
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != segVersion {
		return nil, false, fmt.Errorf("%w: segment %d: unknown version %d", ErrCorrupt, seq, v)
	}
	off := int64(segHeaderLen)
	for off < int64(len(data)) {
		rest := data[off:]
		if len(rest) < recHeaderLen {
			return tornAt(off, "truncated record header")
		}
		n := binary.LittleEndian.Uint32(rest)
		sum := binary.LittleEndian.Uint32(rest[4:])
		if n > maxRecord {
			// An impossible length is indistinguishable from a torn
			// header write at the tail, and corruption elsewhere.
			return tornAt(off, fmt.Sprintf("impossible record length %d", n))
		}
		if int64(len(rest)) < recHeaderLen+int64(n) {
			return tornAt(off, "truncated record payload")
		}
		payload := rest[recHeaderLen : recHeaderLen+int64(n)]
		if crc32.Checksum(payload, castagnoli) != sum {
			// A checksum mismatch on the final record is the torn-write
			// case where the header landed but the payload didn't; any
			// record after it would prove the log was damaged in place.
			if last && off+recHeaderLen+int64(n) == int64(len(data)) {
				return tornAt(off, "checksum mismatch in final record")
			}
			return nil, false, fmt.Errorf("%w: segment %d: checksum mismatch at offset %d", ErrCorrupt, seq, off)
		}
		records = append(records, append([]byte(nil), payload...))
		off += recHeaderLen + int64(n)
		l.logBytes += recHeaderLen + int64(n)
	}
	return records, false, nil
}

// openSegment opens segment seq for appending, writing the header if the
// file is new.
func (l *Log) openSegment(seq int) error {
	path := filepath.Join(l.dir, segName(seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("memlog: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return fmt.Errorf("memlog: %w", err)
	}
	size := info.Size()
	if size == 0 {
		var hdr [segHeaderLen]byte
		copy(hdr[:], segMagic)
		binary.LittleEndian.PutUint16(hdr[4:], segVersion)
		if _, err := f.Write(hdr[:]); err != nil {
			_ = f.Close()
			return fmt.Errorf("memlog: %w", err)
		}
		size = segHeaderLen
	}
	l.seg = f
	l.segSeq = seq
	l.segSize = size
	return nil
}

// Append writes one record to the log and applies the sync policy. The
// record is durable on return only under SyncAlways.
func (l *Log) Append(payload []byte) error {
	if l.seg == nil {
		return errors.New("memlog: log is closed")
	}
	if int64(len(payload)) > maxRecord {
		return fmt.Errorf("memlog: record of %d bytes exceeds the %d-byte limit", len(payload), int64(maxRecord))
	}
	var hdr [recHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, castagnoli))
	if l.opts.WriteDelay != nil {
		// Two writes with the injected delay between them widen the torn
		// window so crash tests can deterministically kill mid-record.
		if _, err := l.seg.Write(hdr[:]); err != nil {
			return fmt.Errorf("memlog: %w", err)
		}
		l.opts.WriteDelay()
		if _, err := l.seg.Write(payload); err != nil {
			return fmt.Errorf("memlog: %w", err)
		}
	} else {
		// One write keeps the record's torn-write window as small as the
		// kernel allows.
		l.buf = append(append(l.buf[:0], hdr[:]...), payload...)
		if _, err := l.seg.Write(l.buf); err != nil {
			return fmt.Errorf("memlog: %w", err)
		}
	}
	n := int64(recHeaderLen + len(payload))
	l.segSize += n
	l.logBytes += n
	l.dirty = true

	switch l.opts.Policy {
	case SyncAlways:
		if err := l.Sync(); err != nil {
			return err
		}
	case SyncInterval:
		if l.opts.Now().Sub(l.lastSync) >= l.opts.Interval {
			if err := l.Sync(); err != nil {
				return err
			}
		}
	}
	if l.segSize >= l.opts.SegmentBytes {
		return l.rotate()
	}
	return nil
}

// rotate closes the current segment and opens the next one.
func (l *Log) rotate() error {
	if l.dirty {
		if err := l.Sync(); err != nil {
			return err
		}
	}
	if err := l.seg.Close(); err != nil {
		return fmt.Errorf("memlog: %w", err)
	}
	return l.openSegment(l.segSeq + 1)
}

// Sync flushes outstanding appends to stable storage.
func (l *Log) Sync() error {
	if l.seg == nil || !l.dirty {
		return nil
	}
	if err := l.seg.Sync(); err != nil {
		return fmt.Errorf("memlog: %w", err)
	}
	l.dirty = false
	l.lastSync = l.opts.Now()
	return nil
}

// LogBytes is the record bytes appended since the last snapshot.
func (l *Log) LogBytes() int64 { return l.logBytes }

// SnapshotBytes is the size of the current snapshot (0 if none).
func (l *Log) SnapshotBytes() int64 { return l.snapSize }

// ShouldCompact reports whether the log has outgrown its snapshot by the
// configured factor and a SaveSnapshot would pay for itself. Before any
// snapshot exists it triggers once the log exceeds CompactFactor segments
// worth of a nominal 64 KiB snapshot, so young sessions still compact.
func (l *Log) ShouldCompact() bool {
	base := l.snapSize
	if base <= 0 {
		base = 64 << 10
	}
	return l.logBytes > int64(l.opts.CompactFactor)*base
}

// SaveSnapshot atomically replaces the snapshot with payload and
// truncates the log: tmp write, fsync, rename, directory fsync, then
// stale segment removal. The snapshot header records the current segment
// sequence as its watermark, so a crash anywhere in this sequence leaves
// recovery unambiguous — either the old snapshot plus the full log, or
// the new snapshot, with any superseded segments skipped and removed on
// the next Open.
func (l *Log) SaveSnapshot(payload []byte) error {
	if l.seg == nil {
		return errors.New("memlog: log is closed")
	}
	if err := l.Sync(); err != nil {
		return err
	}
	frame := make([]byte, 0, snapHeaderLen+len(payload))
	frame = append(frame, snapMagic...)
	frame = binary.LittleEndian.AppendUint16(frame, segVersion)
	frame = binary.LittleEndian.AppendUint16(frame, 0)
	frame = binary.LittleEndian.AppendUint64(frame, uint64(l.segSeq))
	frame = append(frame, payload...)

	tmp := l.snapshotPath() + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("memlog: %w", err)
	}
	if _, err := f.Write(frame); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return fmt.Errorf("memlog: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return fmt.Errorf("memlog: %w", err)
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("memlog: %w", err)
	}
	if err := os.Rename(tmp, l.snapshotPath()); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("memlog: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		return err
	}

	// The snapshot now covers every segment up to the watermark; drop
	// them and continue in the next sequence slot.
	oldWatermark, newWatermark := l.watermark, l.segSeq
	if err := l.seg.Close(); err != nil {
		return fmt.Errorf("memlog: %w", err)
	}
	l.seg = nil
	l.watermark = newWatermark
	for seq := oldWatermark + 1; seq <= newWatermark; seq++ {
		path := filepath.Join(l.dir, segName(seq))
		if err := os.Remove(path); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("memlog: %w", err)
		}
	}
	if err := syncDir(l.dir); err != nil {
		return err
	}
	l.logBytes = 0
	l.snapSize = int64(len(payload))
	l.dirty = false
	return l.openSegment(newWatermark + 1)
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("memlog: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("memlog: sync dir: %w", err)
	}
	return nil
}

// Close syncs outstanding appends and closes the segment. The log cannot
// be used afterwards.
func (l *Log) Close() error {
	if l.seg == nil {
		return nil
	}
	err := l.Sync()
	if cerr := l.seg.Close(); err == nil {
		err = cerr
	}
	l.seg = nil
	return err
}
