package discord

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"grammarviz/internal/sax"
	"grammarviz/internal/timeseries"
	"grammarviz/internal/workspace"
)

// HOTSAX finds the top-k fixed-length discords with the HOTSAX heuristic
// (Keogh, Lin, Fu 2005): every window is SAX-encoded; the outer loop
// visits candidates in ascending order of their word's frequency (rare
// words first, shuffled within a frequency class), and the inner loop
// visits same-word positions first, then the rest in random order. Both
// orderings maximize the effect of the best-so-far break and of early
// abandoning, without sacrificing exactness.
//
// The word length and alphabet of p drive only the heuristic ordering; the
// reported discord is exact for the window length p.Window.
func HOTSAX(ts []float64, p sax.Params, k int, seed int64) (Result, error) {
	return hotsaxSearch(context.Background(), NewStats(ts), p, k, seed, Tuning{})
}

// HOTSAXStats is HOTSAX on prebuilt series statistics, so a pipeline that
// also runs RRA or brute force on the same series builds the prefix sums
// once.
func HOTSAXStats(st *Stats, p sax.Params, k int, seed int64) (Result, error) {
	return hotsaxSearch(context.Background(), st, p, k, seed, Tuning{})
}

// HOTSAXStatsCtx is HOTSAXStats with cooperative cancellation: the search
// polls ctx at bounded intervals and, when cancelled, returns the discords
// of the fully completed top-k rounds with Partial set plus a
// ctx.Err()-wrapped error.
func HOTSAXStatsCtx(ctx context.Context, st *Stats, p sax.Params, k int, seed int64) (Result, error) {
	return hotsaxSearch(ctx, st, p, k, seed, Tuning{})
}

// HOTSAXStatsCodedCtx is HOTSAXStatsCtx with the coded MINDIST pre-filter
// enabled (see codeprune.go): the search reuses the packed word codes its
// own discretization already produced, and inner-loop comparisons whose
// MINDIST lower bound already exceeds the pruning cutoff skip the distance
// kernel. Discords are byte-identical to HOTSAXStatsCtx; DistCalls only
// drops (skipped comparisons are counted in Result.Pruned). When the word
// shape does not pack into a uint64 or p uses a non-default norm
// threshold, the search silently runs unfiltered.
func HOTSAXStatsCodedCtx(ctx context.Context, st *Stats, p sax.Params, k int, seed int64) (Result, error) {
	return hotsaxSearch(ctx, st, p, k, seed, Tuning{CodePrune: true})
}

func hotsaxSearch(ctx context.Context, st *Stats, p sax.Params, k int, seed int64, tuning Tuning) (Result, error) {
	ts := st.ts
	if err := p.Validate(len(ts)); err != nil {
		return Result{}, err
	}
	window := p.Window
	d, err := sax.DiscretizeCtx(ctx, ts, p, sax.ReductionNone, 1)
	if err != nil {
		return Result{}, err
	}
	words := d.Strings() // words[i] = word of the window starting at i

	// Index: word -> positions, and per-position frequency.
	index := make(map[string][]int)
	for pos, w := range words {
		index[w] = append(index[w], pos)
	}
	freq := make([]int, len(words))
	for pos, w := range words {
		freq[pos] = len(index[w])
	}

	// Outer order: ascending word frequency; positions within the same
	// frequency class are shuffled.
	rng := rand.New(rand.NewSource(seed))
	outer := orderOuter(len(words), func(i int) int { return freq[i] }, rng, tuning)

	// One shared random visiting order for every inner loop; generating a
	// fresh permutation per candidate would cost O(m) each and dominate
	// the runtime the ordering is meant to save.
	inner := rng.Perm(len(words))

	e := st.viewCtx(ctx)
	e.refKernel = tuning.ReferenceKernel
	kw := workspace.GetKernel()
	defer workspace.PutKernel(kw)
	e.scratch = kw
	if tuning.CodePrune {
		e.prune = newFixedPruner(d)
	}
	var res Result
	for found := 0; found < k; found++ {
		best := Discord{Dist: -1, RuleID: -1, NNStart: -1}
		for _, cand := range outer {
			if e.cancelled() {
				break
			}
			iv := timeseries.Interval{Start: cand, End: cand + window - 1}
			if overlapsAny(iv, res.Discords) {
				continue
			}
			sameWord := index[words[cand]]
			if tuning.NoSameGroupFirst {
				sameWord = nil
			}
			nn, nnStart := e.nearestNeighbor(cand, window, sameWord, inner, best.Dist)
			if nnStart >= 0 && nn > best.Dist {
				best = Discord{Interval: iv, Dist: nn, NNStart: nnStart, RuleID: -1}
			}
		}
		if err := e.cancelCause(); err != nil {
			res.DistCalls = e.Calls()
			res.Pruned = e.Pruned()
			res.Partial = true
			return res, fmt.Errorf("discord: hotsax cancelled after %d of %d discords: %w", len(res.Discords), k, err)
		}
		if best.NNStart < 0 {
			break
		}
		res.Discords = append(res.Discords, best)
	}
	res.DistCalls = e.Calls()
	res.Pruned = e.Pruned()
	if len(res.Discords) == 0 {
		return res, ErrNoCandidates
	}
	return res, nil
}

// nearestNeighbor runs the HOTSAX inner loop for candidate cand: same-word
// positions first, then all positions in the shared random order inner. It
// returns early with (-Inf, -2) when a distance below bestSoFar proves
// cand cannot be the discord. The candidate is pinned once — normalized
// into the engine's scratch buffer — so every neighbor comparison runs the
// query-pinned kernel.
func (e *engine) nearestNeighbor(cand, window int, sameWord, inner []int, bestSoFar float64) (float64, int) {
	e.pin(cand, window)
	nn := math.Inf(1)
	nnStart := -1
	visit := func(q int) bool {
		if e.cancelled() {
			return false // abandon; the caller checks e.cancelCause()
		}
		if abs(cand-q) < window {
			return true // self match, skip
		}
		cutoff := nn
		if bestSoFar > cutoff {
			cutoff = bestSoFar
		}
		// MINDIST pre-filter: a lower bound above the cutoff proves the
		// kernel call could neither update nn nor abandon the candidate.
		if e.prune != nil && e.prune.skip(cand, q, window, cutoff) {
			e.pruned++
			return true
		}
		d := e.pinnedDist(q, cutoff)
		if d < bestSoFar {
			return false // cand cannot beat the best-so-far discord
		}
		if d < nn {
			nn = d
			nnStart = q
		}
		return true
	}
	for _, q := range sameWord {
		if !visit(q) {
			return math.Inf(-1), -2
		}
	}
	// Random-order pass over all positions, skipping the same-word
	// positions already visited.
	skip := make(map[int]bool, len(sameWord))
	for _, q := range sameWord {
		skip[q] = true
	}
	for _, q := range inner {
		if skip[q] {
			continue
		}
		if !visit(q) {
			return math.Inf(-1), -2
		}
	}
	return nn, nnStart
}
