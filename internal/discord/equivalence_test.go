package discord

import (
	"fmt"
	"testing"

	"grammarviz/internal/sax"
)

// The parallel RRA must return the same discords as the serial search for
// every seed and worker count — the determinism argument in rra_parallel.go
// made executable. DistCalls is scheduling-dependent (a stale shared cutoff
// prunes less), so it is only checked to stay within a loose band of the
// serial count.

func assertSameDiscords(t *testing.T, tag string, want, got Result) {
	t.Helper()
	if len(got.Discords) != len(want.Discords) {
		t.Fatalf("%s: %d discords, want %d", tag, len(got.Discords), len(want.Discords))
	}
	for i := range want.Discords {
		if got.Discords[i] != want.Discords[i] {
			t.Fatalf("%s: discord[%d] = %+v, want %+v", tag, i, got.Discords[i], want.Discords[i])
		}
	}
}

func TestRRAParallelMatchesSerial(t *testing.T) {
	p := sax.Params{Window: 60, PAA: 4, Alphabet: 4}
	ts := anomalousSine(2500, 120, 1300, 70, 7)
	rs := ruleSetFor(t, ts, p)
	st := NewStats(ts)

	for seed := int64(0); seed < 5; seed++ {
		want, err := RRAStats(st, rs, 3, seed)
		if err != nil {
			t.Fatalf("seed %d: serial: %v", seed, err)
		}
		for _, workers := range []int{2, 3, 4} {
			tag := fmt.Sprintf("seed=%d workers=%d", seed, workers)
			got, err := RRAParallelStats(st, rs, 3, seed, workers)
			if err != nil {
				t.Fatalf("%s: %v", tag, err)
			}
			assertSameDiscords(t, tag, want, got)
			// Comparable work: shared-cutoff staleness can cost (or, with
			// lucky scheduling, save) pruning, but not change the order of
			// magnitude.
			if got.DistCalls < want.DistCalls/5 || got.DistCalls > want.DistCalls*5 {
				t.Errorf("%s: DistCalls = %d, serial = %d (outside 5x band)",
					tag, got.DistCalls, want.DistCalls)
			}
		}
	}
}

// Workers <= 0 selects all cores; workers == 1 must take the exact serial
// path, DistCalls included.
func TestRRAParallelWorkerClamping(t *testing.T) {
	p := sax.Params{Window: 60, PAA: 4, Alphabet: 4}
	ts := anomalousSine(1500, 120, 700, 70, 3)
	rs := ruleSetFor(t, ts, p)

	want, err := RRA(ts, rs, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	one, err := RRAParallel(ts, rs, 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	assertSameDiscords(t, "workers=1", want, one)
	if one.DistCalls != want.DistCalls {
		t.Errorf("workers=1 DistCalls = %d, want serial's %d", one.DistCalls, want.DistCalls)
	}
	auto, err := RRAParallel(ts, rs, 2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	assertSameDiscords(t, "workers=0", want, auto)
}

// The parallel nearest-non-self scan shares one Stats across workers and
// must stay byte-identical to the serial scan.
func TestNearestNonSelfParallelStatsMatchesSerial(t *testing.T) {
	p := sax.Params{Window: 60, PAA: 4, Alphabet: 4}
	ts := anomalousSine(2000, 120, 900, 70, 5)
	rs := ruleSetFor(t, ts, p)
	st := NewStats(ts)

	want := NearestNonSelf(ts, rs)
	for _, workers := range []int{1, 2, 3, 4} {
		got := NearestNonSelfParallelStats(st, rs, workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: result[%d] = %+v, want %+v", workers, i, got[i], want[i])
			}
		}
	}
}

// Stats-sharing variants must behave exactly like their self-building
// counterparts.
func TestStatsSharingVariantsMatch(t *testing.T) {
	p := sax.Params{Window: 60, PAA: 4, Alphabet: 4}
	ts := anomalousSine(900, 120, 400, 70, 11)
	rs := ruleSetFor(t, ts, p)
	st := NewStats(ts)

	hs1, err1 := HOTSAX(ts, p, 1, 42)
	hs2, err2 := HOTSAXStats(st, p, 1, 42)
	if err1 != nil || err2 != nil {
		t.Fatalf("HOTSAX: %v / %v", err1, err2)
	}
	assertSameDiscords(t, "hotsax", hs1, hs2)
	if hs1.DistCalls != hs2.DistCalls {
		t.Errorf("HOTSAXStats DistCalls = %d, want %d", hs2.DistCalls, hs1.DistCalls)
	}

	bf1, err1 := BruteForce(ts, p.Window, 1)
	bf2, err2 := BruteForceStats(st, p.Window, 1)
	if err1 != nil || err2 != nil {
		t.Fatalf("BruteForce: %v / %v", err1, err2)
	}
	assertSameDiscords(t, "bruteforce", bf1, bf2)
	if bf1.DistCalls != bf2.DistCalls {
		t.Errorf("BruteForceStats DistCalls = %d, want %d", bf2.DistCalls, bf1.DistCalls)
	}

	rra1, err1 := RRA(ts, rs, 2, 0)
	rra2, err2 := RRAStats(st, rs, 2, 0)
	if err1 != nil || err2 != nil {
		t.Fatalf("RRA: %v / %v", err1, err2)
	}
	assertSameDiscords(t, "rra", rra1, rra2)
	if rra1.DistCalls != rra2.DistCalls {
		t.Errorf("RRAStats DistCalls = %d, want %d", rra2.DistCalls, rra1.DistCalls)
	}
}
