package discord

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"grammarviz/internal/sax"
	"grammarviz/internal/timeseries"
)

// TestMINDISTCodeMatchesTableOrdering is the satellite's equivalence test:
// the coded MINDIST the pre-filter consults must agree with
// DistTable.MINDIST on the corresponding word strings — same values, hence
// the same ordering over any set of word pairs.
func TestMINDISTCodeMatchesTableOrdering(t *testing.T) {
	for _, shape := range []struct{ paa, alphabet int }{{4, 4}, {6, 5}, {8, 3}, {5, 7}} {
		codec := sax.NewWordCodec(shape.paa, shape.alphabet)
		if !codec.Fits() {
			t.Fatalf("shape %+v does not pack", shape)
		}
		dt, err := sax.NewDistTable(shape.alphabet)
		if err != nil {
			t.Fatal(err)
		}
		cd, err := sax.NewCodeDist(dt, codec)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(shape.paa*100 + shape.alphabet)))
		word := func() string {
			b := make([]byte, shape.paa)
			for i := range b {
				b[i] = byte('a' + rng.Intn(shape.alphabet))
			}
			return string(b)
		}
		type pair struct {
			a, b string
			code float64
			str  float64
		}
		pairs := make([]pair, 200)
		for i := range pairs {
			a, b := word(), word()
			n := shape.paa * (2 + rng.Intn(40))
			code := cd.MINDISTCode(codec.PackString(a), codec.PackString(b), n)
			str, err := dt.MINDIST(a, b, n)
			if err != nil {
				t.Fatal(err)
			}
			if code != str {
				t.Fatalf("shape %+v: MINDISTCode(%q,%q,%d) = %v, DistTable.MINDIST = %v",
					shape, a, b, n, code, str)
			}
			pairs[i] = pair{a, b, code, str}
		}
		// Orderings agree pairwise because the values are identical; spot
		// check the comparison anyway so a future divergence in either path
		// fails loudly.
		for i := 1; i < len(pairs); i++ {
			if (pairs[i-1].code < pairs[i].code) != (pairs[i-1].str < pairs[i].str) {
				t.Fatalf("shape %+v: ordering of pairs %d,%d differs between coded and string MINDIST", shape, i-1, i)
			}
		}
	}
}

// TestMINDISTLowerBoundsKernel is the admissibility property the pruning
// rests on: MINDIST between two windows' SAX words never exceeds the
// distance kernel's z-normalized Euclidean distance (modulo the float
// slack the filter applies).
func TestMINDISTLowerBoundsKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	ts := make([]float64, 2000)
	for i := range ts {
		ts[i] = math.Sin(float64(i)/9) + rng.NormFloat64()*0.3
	}
	for _, p := range []sax.Params{
		{Window: 64, PAA: 4, Alphabet: 4},
		{Window: 100, PAA: 7, Alphabet: 6},
		{Window: 37, PAA: 5, Alphabet: 3}, // window not a PAA multiple
	} {
		enc, err := sax.NewEncoder(p)
		if err != nil {
			t.Fatal(err)
		}
		dt, err := sax.NewDistTable(p.Alphabet)
		if err != nil {
			t.Fatal(err)
		}
		cd, err := sax.NewCodeDist(dt, enc.Codec())
		if err != nil {
			t.Fatal(err)
		}
		e := newEngine(ts)
		for trial := 0; trial < 500; trial++ {
			i := rng.Intn(len(ts) - p.Window)
			j := rng.Intn(len(ts) - p.Window)
			ci, err := enc.EncodeCode(ts[i : i+p.Window])
			if err != nil {
				t.Fatal(err)
			}
			cj, err := enc.EncodeCode(ts[j : j+p.Window])
			if err != nil {
				t.Fatal(err)
			}
			lb := cd.MINDISTCode(ci, cj, p.Window)
			d := e.dist(i, j, p.Window, math.Inf(1))
			if lb > d*(1+pruneSlack)+1e-12 {
				t.Fatalf("%v: MINDIST %v exceeds true distance %v for windows %d,%d — bound not admissible",
					p, lb, d, i, j)
			}
		}
	}
}

// TestHOTSAXCodedEquivalence pins the coded HOTSAX contract: byte-identical
// discords, never more kernel calls, and the filter actually fires.
func TestHOTSAXCodedEquivalence(t *testing.T) {
	ctx := context.Background()
	for _, seed := range []int64{1, 2, 3} {
		ts := anomalousSine(2400, 60, 1100, 60, seed)
		p := sax.Params{Window: 60, PAA: 4, Alphabet: 4}
		st := NewStats(ts)
		plain, err := HOTSAXStatsCtx(ctx, st, p, 3, seed)
		if err != nil {
			t.Fatalf("seed %d: plain: %v", seed, err)
		}
		coded, err := HOTSAXStatsCodedCtx(ctx, st, p, 3, seed)
		if err != nil {
			t.Fatalf("seed %d: coded: %v", seed, err)
		}
		if !reflect.DeepEqual(coded.Discords, plain.Discords) {
			t.Errorf("seed %d: coded HOTSAX discords differ:\n coded %+v\n plain %+v", seed, coded.Discords, plain.Discords)
		}
		if coded.DistCalls > plain.DistCalls {
			t.Errorf("seed %d: coded DistCalls %d > plain %d", seed, coded.DistCalls, plain.DistCalls)
		}
		if coded.Pruned == 0 {
			t.Errorf("seed %d: coded HOTSAX pruned nothing", seed)
		}
		if plain.Pruned != 0 {
			t.Errorf("seed %d: plain HOTSAX reports Pruned = %d, want 0", seed, plain.Pruned)
		}
	}
}

// TestRRACodedEquivalence pins the coded RRA contract across serial and
// parallel searches: byte-identical discords for every worker count, and a
// serial call count that never rises.
func TestRRACodedEquivalence(t *testing.T) {
	ctx := context.Background()
	for _, seed := range []int64{5, 6} {
		ts := anomalousSine(3000, 80, 1500, 80, seed)
		p := sax.Params{Window: 80, PAA: 5, Alphabet: 4}
		rs := ruleSetFor(t, ts, p)
		st := NewStats(ts)

		plain, err := RRAStatsCtx(ctx, st, rs, 3, seed)
		if err != nil {
			t.Fatalf("seed %d: plain: %v", seed, err)
		}
		coded, err := RRAStatsCodedCtx(ctx, st, rs, 3, seed, p)
		if err != nil {
			t.Fatalf("seed %d: coded serial: %v", seed, err)
		}
		if !reflect.DeepEqual(coded.Discords, plain.Discords) {
			t.Errorf("seed %d: coded serial RRA discords differ:\n coded %+v\n plain %+v", seed, coded.Discords, plain.Discords)
		}
		if coded.DistCalls > plain.DistCalls {
			t.Errorf("seed %d: coded serial DistCalls %d > plain %d", seed, coded.DistCalls, plain.DistCalls)
		}

		for _, workers := range []int{2, 4} {
			par, err := RRAParallelStatsCodedCtx(ctx, st, rs, 3, seed, workers, p)
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			if !reflect.DeepEqual(par.Discords, plain.Discords) {
				t.Errorf("seed %d workers %d: coded parallel RRA discords differ from serial plain", seed, workers)
			}
		}
	}
}

// TestCodedPrunerDisabledGracefully: a parameterization the filter cannot
// serve (non-default norm threshold) must run unfiltered, not wrong.
func TestCodedPrunerDisabledGracefully(t *testing.T) {
	ts := anomalousSine(1200, 60, 600, 60, 9)
	p := sax.Params{Window: 60, PAA: 4, Alphabet: 4, NormThreshold: 0.5}
	if cp := newCandidatePruner(ts, []Candidate{{IV: timeseries.Interval{Start: 0, End: 59}}}, p); cp != nil {
		t.Error("newCandidatePruner built a filter for a non-default norm threshold")
	}
	st := NewStats(ts)
	coded, err := HOTSAXStatsCodedCtx(context.Background(), st, p, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := HOTSAXStatsCtx(context.Background(), st, p, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(coded.Discords, plain.Discords) {
		t.Error("disabled-filter coded search differs from plain search")
	}
	if coded.Pruned != 0 {
		t.Errorf("disabled filter pruned %d comparisons", coded.Pruned)
	}
}
