package discord

import (
	"testing"

	"grammarviz/internal/sax"
)

func TestNearestNonSelfParallelMatchesSerial(t *testing.T) {
	ts := anomalousSine(2000, 50, 1000, 50, 21)
	rs := ruleSetFor(t, ts, sax.Params{Window: 50, PAA: 5, Alphabet: 4})
	serial := NearestNonSelf(ts, rs)
	for _, workers := range []int{0, 1, 2, 4, 7} {
		got := NearestNonSelfParallel(ts, rs, workers)
		if len(got) != len(serial) {
			t.Fatalf("workers=%d: %d results, serial %d", workers, len(got), len(serial))
		}
		for i := range serial {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d: result %d differs: %+v vs %+v", workers, i, got[i], serial[i])
			}
		}
	}
}

func TestNearestNonSelfParallelMoreWorkersThanCandidates(t *testing.T) {
	ts := anomalousSine(400, 40, 200, 40, 22)
	rs := ruleSetFor(t, ts, sax.Params{Window: 40, PAA: 4, Alphabet: 4})
	got := NearestNonSelfParallel(ts, rs, 10_000)
	serial := NearestNonSelf(ts, rs)
	if len(got) != len(serial) {
		t.Fatalf("%d vs %d results", len(got), len(serial))
	}
}
