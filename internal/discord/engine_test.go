package discord

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"grammarviz/internal/sax"
	"grammarviz/internal/timeseries"
)

// Property: the prefix-sum mean/invStd matches a direct computation for
// random subsequences.
func TestMeanInvStdMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	ts := make([]float64, 500)
	for i := range ts {
		ts[i] = rng.NormFloat64()*3 + 1
	}
	e := newEngine(ts)
	f := func(startRaw, lenRaw uint16) bool {
		length := int(lenRaw%100) + 2
		start := int(startRaw) % (len(ts) - length)
		mean, invStd := e.meanInvStd(start, length)
		s, _ := timeseries.Describe(ts[start : start+length])
		if math.Abs(mean-s.Mean) > 1e-9 {
			return false
		}
		if s.Std <= timeseries.DefaultNormThreshold {
			return invStd == 0
		}
		return math.Abs(invStd-1/s.Std) < 1e-9
	}
	// The quick source is pinned: the 1e-9 absolute tolerance is tight
	// enough that a time-seeded run occasionally lands on a short, nearly
	// cancelling subsequence where the prefix-sum variance differs from the
	// direct one by just over the bound — a float artifact, not a defect.
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(509))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Flat subsequences must not blow up: distance between two flat windows is
// zero regardless of their noise-free levels.
func TestDistFlatGuard(t *testing.T) {
	ts := make([]float64, 100)
	for i := 50; i < 100; i++ {
		ts[i] = 42 // a different flat level
	}
	e := newEngine(ts)
	if d := e.dist(0, 50, 40, math.Inf(1)); d != 0 {
		t.Errorf("flat-vs-flat distance = %v, want 0", d)
	}
}

// Distance is symmetric and satisfies identity.
func TestDistMetricProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	ts := make([]float64, 400)
	for i := range ts {
		ts[i] = math.Sin(float64(i)/7) + rng.NormFloat64()*0.1
	}
	e := newEngine(ts)
	for trial := 0; trial < 100; trial++ {
		length := rng.Intn(60) + 2
		p := rng.Intn(len(ts) - length)
		q := rng.Intn(len(ts) - length)
		dpq := e.dist(p, q, length, math.Inf(1))
		dqp := e.dist(q, p, length, math.Inf(1))
		if math.Abs(dpq-dqp) > 1e-9 {
			t.Fatalf("asymmetric: d(%d,%d)=%v d(%d,%d)=%v", p, q, dpq, q, p, dqp)
		}
		if d := e.dist(p, p, length, math.Inf(1)); d != 0 {
			t.Fatalf("d(%d,%d) = %v, want 0", p, p, d)
		}
	}
}

// Early abandoning must never change an accepted (non-abandoned) result:
// if the distance is below the cutoff it equals the exact distance.
func TestDistCutoffConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	ts := make([]float64, 300)
	for i := range ts {
		ts[i] = rng.NormFloat64()
	}
	e := newEngine(ts)
	for trial := 0; trial < 200; trial++ {
		length := rng.Intn(40) + 2
		p := rng.Intn(len(ts) - length)
		q := rng.Intn(len(ts) - length)
		exact := e.dist(p, q, length, math.Inf(1))
		cutoff := exact * (0.5 + rng.Float64()) // sometimes above, sometimes below
		got := e.dist(p, q, length, cutoff)
		if got <= cutoff+1e-12 && math.Abs(got-exact) > 1e-9 {
			t.Fatalf("accepted result %v differs from exact %v (cutoff %v)", got, exact, cutoff)
		}
		if math.IsInf(got, 1) && exact <= cutoff-1e-9 {
			t.Fatalf("abandoned although exact %v <= cutoff %v", exact, cutoff)
		}
	}
}

func TestBruteForceTopKOrderingAndExclusion(t *testing.T) {
	ts := anomalousSine(800, 40, 200, 40, 61)
	for i := 600; i < 640; i++ {
		ts[i] = 0.3
	}
	res, err := BruteForce(ts, 40, 3)
	if err != nil {
		t.Fatalf("BruteForce: %v", err)
	}
	if len(res.Discords) < 2 {
		t.Fatalf("found %d discords", len(res.Discords))
	}
	for i := 1; i < len(res.Discords); i++ {
		if res.Discords[i].Dist > res.Discords[i-1].Dist+1e-12 {
			t.Error("brute-force discords not ranked")
		}
		for j := 0; j < i; j++ {
			if res.Discords[i].Interval.Overlaps(res.Discords[j].Interval) {
				t.Error("overlapping brute-force discords")
			}
		}
	}
}

func TestHOTSAXTopKNonOverlap(t *testing.T) {
	ts := anomalousSine(1000, 50, 300, 50, 63)
	for i := 700; i < 750; i++ {
		ts[i] = -0.2
	}
	res, err := HOTSAX(ts, saxParams50(), 3, 63)
	if err != nil {
		t.Fatalf("HOTSAX: %v", err)
	}
	for i := 1; i < len(res.Discords); i++ {
		if res.Discords[i].Dist > res.Discords[i-1].Dist+1e-12 {
			t.Error("HOTSAX discords not ranked")
		}
		for j := 0; j < i; j++ {
			if res.Discords[i].Interval.Overlaps(res.Discords[j].Interval) {
				t.Error("overlapping HOTSAX discords")
			}
		}
	}
}

func saxParams50() (p sax.Params) { return sax.Params{Window: 50, PAA: 5, Alphabet: 4} }
