package discord

import (
	"context"
	"math"
	"testing"

	"grammarviz/internal/datasets"
	"grammarviz/internal/sax"
)

// The kernel benchmarks measure exactly the shape the searches execute:
// one candidate against every non-overlapping subsequence, with a
// best-so-far cutoff tightening as the scan proceeds (so early
// abandonment fires at its realistic rate, not never and not always).
// One op = one full one-vs-many scan.
//
// BENCH_5.json records these on the paper's two headline series; the
// Reference row is the pre-blocking per-element kernel kept as the
// exactness oracle, so Reference/Pinned is the surviving-kernel speedup
// quoted in README.md.

func benchSeries(b *testing.B, name string) ([]float64, int) {
	b.Helper()
	ds, err := datasets.Generate(name)
	if err != nil {
		b.Fatalf("generate %s: %v", name, err)
	}
	return ds.Series, ds.Params.Window
}

func benchScanReference(b *testing.B, name string) {
	ts, w := benchSeries(b, name)
	st := NewStats(ts)
	e := st.view()
	e.refKernel = true
	p := (len(ts) - w) / 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nn := math.Inf(1)
		for q := 0; q+w <= len(ts); q++ {
			if q > p-w && q < p+w {
				continue
			}
			if d := e.dist(p, q, w, nn); d < nn {
				nn = d
			}
		}
	}
}

func benchScanBlocked(b *testing.B, name string) {
	ts, w := benchSeries(b, name)
	st := NewStats(ts)
	e := st.view()
	p := (len(ts) - w) / 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nn := math.Inf(1)
		for q := 0; q+w <= len(ts); q++ {
			if q > p-w && q < p+w {
				continue
			}
			if d := e.dist(p, q, w, nn); d < nn {
				nn = d
			}
		}
	}
}

func benchScanPinned(b *testing.B, name string) {
	ts, w := benchSeries(b, name)
	st := NewStats(ts)
	e := st.view()
	p := (len(ts) - w) / 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.pin(p, w)
		nn := math.Inf(1)
		for q := 0; q+w <= len(ts); q++ {
			if q > p-w && q < p+w {
				continue
			}
			if d := e.pinnedDist(q, nn); d < nn {
				nn = d
			}
		}
	}
}

func BenchmarkComponent_DistKernelReference(b *testing.B) {
	b.Run("ecg0606", func(b *testing.B) { benchScanReference(b, "ecg0606") })
	b.Run("tek16", func(b *testing.B) { benchScanReference(b, "tek16") })
}

func BenchmarkComponent_DistKernelBlocked(b *testing.B) {
	b.Run("ecg0606", func(b *testing.B) { benchScanBlocked(b, "ecg0606") })
	b.Run("tek16", func(b *testing.B) { benchScanBlocked(b, "tek16") })
}

func BenchmarkComponent_DistKernelPinned(b *testing.B) {
	b.Run("ecg0606", func(b *testing.B) { benchScanPinned(b, "ecg0606") })
	b.Run("tek16", func(b *testing.B) { benchScanPinned(b, "tek16") })
}

// The Search benchmarks are the end-to-end counterpart: a full HOTSAX or
// RRA discord search (one op = one search, k=1), once on the retained
// reference kernel and once on the production pinned path. The ratio is
// the whole-search speedup the scans above translate into, with the SAX
// indexing, candidate ordering and pruning overheads included.

func benchDataset(b *testing.B, name string) *datasets.Dataset {
	b.Helper()
	ds, err := datasets.Generate(name)
	if err != nil {
		b.Fatalf("generate %s: %v", name, err)
	}
	return ds
}

func benchSearchHOTSAX(b *testing.B, name string, tuning Tuning) {
	ds := benchDataset(b, name)
	st := NewStats(ds.Series)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hotsaxSearch(ctx, st, ds.Params, 1, 1, tuning); err != nil {
			b.Fatal(err)
		}
	}
}

func benchSearchRRA(b *testing.B, name string, tuning Tuning) {
	ds := benchDataset(b, name)
	rs := ruleSetReduced(b, ds.Series, ds.Params, sax.ReductionExact)
	st := NewStats(ds.Series)
	cands := Candidates(rs)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rraSearchTuned(ctx, st, cands, 1, 1, tuning); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkComponent_SearchHOTSAX(b *testing.B) {
	for _, name := range []string{"ecg0606", "tek16"} {
		b.Run(name+"/Reference", func(b *testing.B) {
			benchSearchHOTSAX(b, name, Tuning{ReferenceKernel: true})
		})
		b.Run(name+"/Pinned", func(b *testing.B) {
			benchSearchHOTSAX(b, name, Tuning{})
		})
	}
}

func BenchmarkComponent_SearchRRA(b *testing.B) {
	for _, name := range []string{"ecg0606", "tek16"} {
		b.Run(name+"/Reference", func(b *testing.B) {
			benchSearchRRA(b, name, Tuning{ReferenceKernel: true})
		})
		b.Run(name+"/Pinned", func(b *testing.B) {
			benchSearchRRA(b, name, Tuning{})
		})
	}
}
