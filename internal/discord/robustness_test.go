package discord

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"grammarviz/internal/datasets"
	"grammarviz/internal/sax"
	"grammarviz/internal/worker"
)

// countdownCtx is a context whose Err flips to context.Canceled after a
// fixed number of Err polls. It gives tests a deterministic way to cancel
// "mid-search" without racing a timer: the engine polls Err at bounded
// intervals, so the N-th poll is a reproducible point in the search.
type countdownCtx struct {
	context.Context
	left atomic.Int64
}

func newCountdownCtx(polls int64) *countdownCtx {
	c := &countdownCtx{Context: context.Background()}
	c.left.Store(polls)
	return c
}

// Done returns a non-nil channel so the engine arms its polling; the
// channel never fires — cancellation is observed through Err only.
func (c *countdownCtx) Done() <-chan struct{} { return make(chan struct{}) }

func (c *countdownCtx) Err() error {
	if c.left.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

// waitForGoroutines polls until the goroutine count drops back to at most
// want, failing the test after a generous deadline. A plain instantaneous
// check would race goroutine teardown.
func waitForGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= want {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines did not settle: %d running, want <= %d", runtime.NumGoroutine(), want)
}

func ecgRules(t *testing.T) ([]float64, *Stats, []Candidate) {
	t.Helper()
	ds, err := datasets.Generate("ecg0606")
	if err != nil {
		t.Fatalf("ecg0606: %v", err)
	}
	rs := ruleSetFor(t, ds.Series, ds.Params)
	return ds.Series, NewStats(ds.Series), Candidates(rs)
}

// TestRRAStripePanicContained injects a panic into one parallel RRA stripe
// and asserts the containment contract: the panic surfaces as an error
// carrying the panic value and a stack trace, the process survives, the
// result is marked Partial, and no worker goroutine leaks.
func TestRRAStripePanicContained(t *testing.T) {
	ds, err := datasets.Generate("ecg0606")
	if err != nil {
		t.Fatalf("ecg0606: %v", err)
	}
	rs := ruleSetFor(t, ds.Series, ds.Params)

	baseline := runtime.NumGoroutine()
	testHookRRAStripe = func(w int) {
		if w == 1 {
			panic("stripe-boom-77")
		}
	}
	defer func() { testHookRRAStripe = nil }()

	res, err := RRAParallelStatsCtx(context.Background(), NewStats(ds.Series), rs, 2, 1, 4)
	if err == nil {
		t.Fatal("injected panic did not surface as an error")
	}
	var pe *worker.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v does not unwrap to *worker.PanicError", err)
	}
	if pe.Value != "stripe-boom-77" {
		t.Errorf("panic value = %v, want stripe-boom-77", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Error("panic error carries no stack trace")
	}
	if !strings.Contains(err.Error(), "stripe-boom-77") {
		t.Errorf("error message %q does not mention the panic value", err)
	}
	if !res.Partial {
		t.Error("aborted search not marked Partial")
	}
	waitForGoroutines(t, baseline)
}

// TestNearestNonSelfCtxEquivalence checks that the ctx-aware variant with
// a background context returns byte-identical results to the legacy
// signature, serial and parallel.
func TestNearestNonSelfCtxEquivalence(t *testing.T) {
	ts := anomalousSine(800, 40, 400, 40, 7)
	rs := ruleSetFor(t, ts, sax.Params{Window: 60, PAA: 4, Alphabet: 4})

	st := NewStats(ts)
	legacy := NearestNonSelfParallelStats(st, rs, 4)
	for _, workers := range []int{1, 4} {
		got, err := NearestNonSelfParallelStatsCtx(context.Background(), st, rs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(legacy) {
			t.Fatalf("workers=%d: %d discords, legacy %d", workers, len(got), len(legacy))
		}
		for i := range got {
			if got[i] != legacy[i] {
				t.Fatalf("workers=%d: discord %d differs: %+v vs %+v", workers, i, got[i], legacy[i])
			}
		}
	}
}

// TestRRACancellationMidSearch cancels an ecg0606 RRA search
// deterministically mid-round via a countdown context and checks the
// degradation contract: a ctx.Err()-wrapped error, Partial set, and any
// returned discords an exact prefix of the uncancelled run's.
func TestRRACancellationMidSearch(t *testing.T) {
	_, st, cands := ecgRules(t)

	full, err := rraSearch(context.Background(), st, cands, 3, 1)
	if err != nil {
		t.Fatalf("uncancelled search: %v", err)
	}
	if len(full.Discords) == 0 {
		t.Fatal("uncancelled search found nothing; test series unusable")
	}

	// Sweep cancellation points from "immediately" to "well into the
	// search": every stop must obey the contract.
	sawCancel := false
	for _, polls := range []int64{0, 1, 5, 50, 500} {
		ctx := newCountdownCtx(polls)
		res, err := rraSearch(ctx, NewStats(st.ts), cands, 3, 1)
		if err == nil {
			// The search finished before the countdown fired — completing
			// is always acceptable, but the result must then be the full
			// exact answer.
			if res.Partial {
				t.Fatalf("polls=%d: completed search marked Partial", polls)
			}
			if len(res.Discords) != len(full.Discords) {
				t.Fatalf("polls=%d: completed with %d discords, full run %d", polls, len(res.Discords), len(full.Discords))
			}
			continue
		}
		sawCancel = true
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("polls=%d: error %v does not wrap context.Canceled", polls, err)
		}
		if !res.Partial {
			t.Errorf("polls=%d: cancelled result not marked Partial", polls)
		}
		if len(res.Discords) >= len(full.Discords)+1 {
			t.Fatalf("polls=%d: partial run found %d discords, full run %d", polls, len(res.Discords), len(full.Discords))
		}
		for i := range res.Discords {
			if res.Discords[i] != full.Discords[i] {
				t.Errorf("polls=%d: partial discord %d = %+v, full run has %+v", polls, i, res.Discords[i], full.Discords[i])
			}
		}
	}
	if !sawCancel {
		t.Error("no countdown point observed a cancellation; widen the sweep")
	}
}

// TestRRAParallelCancelledPromptly cancels before the search starts: every
// worker must exit within its polling bound and the error must wrap the
// context's error.
func TestRRAParallelCancelledPromptly(t *testing.T) {
	_, st, _ := ecgRules(t)
	ds, _ := datasets.Generate("ecg0606")
	rs := ruleSetFor(t, ds.Series, ds.Params)

	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RRAParallelStatsCtx(ctx, st, rs, 3, 1, 4)
	if err == nil {
		t.Fatal("cancelled search returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if !res.Partial {
		t.Error("cancelled result not marked Partial")
	}
	if len(res.Discords) != 0 {
		t.Errorf("pre-cancelled search returned %d discords", len(res.Discords))
	}
	waitForGoroutines(t, baseline)
}

// TestSearchesHonorDeadline runs each search family on ecg0606 with an
// already-expired deadline: all must return promptly with a
// DeadlineExceeded-wrapped error rather than running to completion.
func TestSearchesHonorDeadline(t *testing.T) {
	ds, err := datasets.Generate("ecg0606")
	if err != nil {
		t.Fatalf("ecg0606: %v", err)
	}
	st := NewStats(ds.Series)
	rs := ruleSetFor(t, ds.Series, ds.Params)

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()

	if _, err := RRAStatsCtx(ctx, st, rs, 2, 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("RRA: err = %v, want DeadlineExceeded", err)
	}
	if _, err := HOTSAXStatsCtx(ctx, st, ds.Params, 2, 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("HOTSAX: err = %v, want DeadlineExceeded", err)
	}
	if _, err := BruteForceStatsCtx(ctx, st, ds.Params.Window, 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("BruteForce: err = %v, want DeadlineExceeded", err)
	}
	if _, err := NearestNonSelfParallelStatsCtx(ctx, st, rs, 2); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("NearestNonSelf: err = %v, want DeadlineExceeded", err)
	}
}

// TestCtxBackgroundByteIdentical confirms the no-cancellation guarantee:
// with a background context the ctx-aware searches return byte-identical
// discords to the legacy entry points, at every worker count.
func TestCtxBackgroundByteIdentical(t *testing.T) {
	ds, err := datasets.Generate("ecg0606")
	if err != nil {
		t.Fatalf("ecg0606: %v", err)
	}
	st := NewStats(ds.Series)
	rs := ruleSetFor(t, ds.Series, ds.Params)

	want, err := RRAStats(NewStats(ds.Series), rs, 3, 1)
	if err != nil {
		t.Fatalf("RRAStats: %v", err)
	}
	for _, workers := range []int{1, 2, 4, 7} {
		got, err := RRAParallelStatsCtx(context.Background(), st, rs, 3, 1, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got.Discords) != len(want.Discords) {
			t.Fatalf("workers=%d: %d discords, serial %d", workers, len(got.Discords), len(want.Discords))
		}
		for i := range got.Discords {
			if got.Discords[i] != want.Discords[i] {
				t.Fatalf("workers=%d: discord %d = %+v, serial %+v", workers, i, got.Discords[i], want.Discords[i])
			}
		}
	}
}
