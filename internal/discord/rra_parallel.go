package discord

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync/atomic"

	"grammarviz/internal/grammar"
	"grammarviz/internal/sax"
	"grammarviz/internal/worker"
	"grammarviz/internal/workspace"
)

// testHookRRAStripe, when non-nil, runs at the start of every parallel RRA
// stripe. It exists so tests can inject a panic into a worker goroutine
// and assert the panic-containment contract; never set in production.
var testHookRRAStripe func(w int)

// atomicMax is a monotonically rising float64 shared by the workers of a
// parallel search round: the best discord distance found so far. Readers
// may observe a stale (smaller) value — that only weakens pruning, never
// correctness.
type atomicMax struct{ bits atomic.Uint64 }

func newAtomicMax(v float64) *atomicMax {
	m := &atomicMax{}
	m.bits.Store(math.Float64bits(v))
	return m
}

func (m *atomicMax) load() float64 { return math.Float64frombits(m.bits.Load()) }

// raise lifts the maximum to v if v is larger. CAS on the bit pattern with
// a float comparison keeps the value monotone under contention.
func (m *atomicMax) raise(v float64) {
	for {
		old := m.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if m.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// RRAParallel is RRA with each top-k round's outer loop fanned out over up
// to workers goroutines (workers <= 0 selects GOMAXPROCS). The discords
// returned are byte-identical to the serial RRA for the same seed; only
// DistCalls varies with scheduling, because the shared best-so-far cutoff
// rises in a different order.
//
// Why the result is exact: workers share one monotonically rising cutoff —
// the largest nearest-neighbor distance completed so far this round, which
// is never above the round's final maximum. A candidate is abandoned only
// on a distance *strictly below* the cutoff, and every distance of a
// max-achieving candidate is >= the maximum, so the candidates that could
// win are always computed in full, with the serial algorithm's exact inner
// visiting order. The round winner is then chosen by replaying the serial
// outer order ("first candidate strictly above the best so far"), which
// reproduces the serial tie-breaking.
func RRAParallel(ts []float64, rs *grammar.RuleSet, k int, seed int64, workers int) (Result, error) {
	return RRAParallelStats(NewStats(ts), rs, k, seed, workers)
}

// RRAParallelStats is RRAParallel on prebuilt series statistics shared with
// the caller (and with any other search on the same series).
func RRAParallelStats(st *Stats, rs *grammar.RuleSet, k int, seed int64, workers int) (Result, error) {
	return RRAParallelStatsCtx(context.Background(), st, rs, k, seed, workers)
}

// RRAParallelStatsCtx is RRAParallelStats with cooperative cancellation
// and panic containment. Every worker polls the search context at bounded
// intervals; a cancelled or expired context stops the round's workers
// promptly and returns the discords of the fully completed rounds with
// Partial set, together with a ctx.Err()-wrapped error. A panic on any
// worker goroutine is recovered into a *worker.PanicError (the process
// never crashes) and cancels the sibling workers through the shared
// context. With a never-cancelled context the discords are byte-identical
// to the serial search for every worker count.
func RRAParallelStatsCtx(ctx context.Context, st *Stats, rs *grammar.RuleSet, k int, seed int64, workers int) (Result, error) {
	return rraParallel(ctx, st, Candidates(rs), k, seed, workers, Tuning{}, nil)
}

// RRAParallelStatsCodedCtx is RRAParallelStatsCtx with the coded MINDIST
// pre-filter enabled (see codeprune.go): each candidate interval is packed
// once into a SAX word code of p's shape, and every worker's inner loop
// skips comparisons whose MINDIST lower bound already exceeds the pruning
// cutoff. Discords stay byte-identical to the unfiltered search for every
// worker count; DistCalls only drops, with the skipped comparisons counted
// in Result.Pruned. When p cannot drive the filter (word does not pack
// into a uint64, non-default norm threshold) the search silently runs
// unfiltered.
func RRAParallelStatsCodedCtx(ctx context.Context, st *Stats, rs *grammar.RuleSet, k int, seed int64, workers int, p sax.Params) (Result, error) {
	cands := Candidates(rs)
	return rraParallel(ctx, st, cands, k, seed, workers, Tuning{}, newCandidatePruner(st.ts, cands, p))
}

func rraParallel(ctx context.Context, st *Stats, cands []Candidate, k int, seed int64, workers int, tuning Tuning, cp *codePruner) (Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cands) {
		workers = len(cands)
	}
	if workers <= 1 {
		// The serial path: deterministic DistCalls as well as results.
		return rraSearchPruned(ctx, st, cands, k, seed, tuning, cp)
	}

	ord := newRRAOrders(cands, seed, tuning)
	m := len(st.ts)
	type candResult struct {
		nn      float64
		nnStart int
	}
	results := make([]candResult, len(ord.outer))
	var totalCalls, totalPruned int64
	var res Result
	for found := 0; found < k; found++ {
		cutoff := newAtomicMax(-1)
		g, gctx := worker.WithContext(ctx)
		for w := 0; w < workers; w++ {
			w := w
			g.Go(func() error {
				if testHookRRAStripe != nil {
					testHookRRAStripe(w)
				}
				e := st.viewCtx(gctx)
				e.refKernel = tuning.ReferenceKernel
				kw := workspace.GetKernel()
				defer workspace.PutKernel(kw)
				e.scratch = kw
				e.prune = cp
				defer func() {
					atomic.AddInt64(&totalCalls, e.Calls())
					atomic.AddInt64(&totalPruned, e.Pruned())
				}()
				for pos := w; pos < len(ord.outer); pos += workers {
					if e.cancelled() {
						return e.cancelCause()
					}
					ci := ord.outer[pos]
					c := cands[ci]
					if overlapsAny(c.IV, res.Discords) {
						results[pos] = candResult{nnStart: -1}
						continue
					}
					nn, nnStart := e.rraNearest(c, ci, cands, ord.byRule[c.RuleID], ord.inner, cutoffRef{shared: cutoff}, m)
					if err := e.cancelCause(); err != nil {
						return err // scan cut short; results[pos] left unset
					}
					results[pos] = candResult{nn: nn, nnStart: nnStart}
					if nnStart >= 0 {
						cutoff.raise(nn)
					}
				}
				return nil
			})
		}
		if err := g.Wait(); err != nil {
			res.DistCalls = totalCalls
			res.Pruned = totalPruned
			res.Partial = true
			return res, fmt.Errorf("discord: rra parallel aborted after %d of %d discords: %w", len(res.Discords), k, err)
		}

		// Serial-order reduction: replay the outer order so ties resolve
		// exactly as in the single-threaded loop.
		best := Discord{Dist: -1, RuleID: -1, NNStart: -1}
		for pos, ci := range ord.outer {
			r := results[pos]
			if r.nnStart >= 0 && r.nn > best.Dist {
				c := cands[ci]
				best = Discord{Interval: c.IV, Dist: r.nn, NNStart: r.nnStart, RuleID: c.RuleID, Freq: c.Freq}
			}
		}
		if best.NNStart < 0 {
			break
		}
		res.Discords = append(res.Discords, best)
	}
	res.DistCalls = totalCalls
	res.Pruned = totalPruned
	if len(res.Discords) == 0 {
		return res, ErrNoCandidates
	}
	return res, nil
}
