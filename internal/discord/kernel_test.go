package discord

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"grammarviz/internal/datasets"
	"grammarviz/internal/grammar"
	"grammarviz/internal/sax"
	"grammarviz/internal/sequitur"
	"grammarviz/internal/workspace"
)

// The kernel rework's contract, made executable: the blocked kernel
// (dist), the query-pinned kernel (pin + pinnedDist) and the retained
// per-element reference (distReference) are one function computed three
// ways. Same bits out for every input — including the abandonment → +Inf
// cases — and the same call accounting, so every search result, distance
// and Table 1 number is untouched by the fast paths.

// bitsEqual compares float64s by representation: NaN == NaN, +Inf == +Inf,
// and -0 != +0 — stricter than ==.
func bitsEqual(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// TestKernelVariantsBitIdentical drives the three kernels over random
// subsequence pairs with adversarial cutoffs (below, at, and above the
// exact distance; ±Inf; negative; zero) and requires bit-equality of the
// results.
func TestKernelVariantsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	series := [][]float64{
		make([]float64, 600), // sine + noise
		make([]float64, 600), // heavy noise
		make([]float64, 600), // flat stretches (invStd 0 windows)
	}
	for i := range series[0] {
		series[0][i] = math.Sin(float64(i)/11) + rng.NormFloat64()*0.05
		series[1][i] = rng.NormFloat64() * 40
		if (i/50)%2 == 0 {
			series[2][i] = 3.25
		} else {
			series[2][i] = math.Cos(float64(i) / 5)
		}
	}
	for si, ts := range series {
		ref := NewStats(ts).view()
		ref.refKernel = true
		blocked := NewStats(ts).view()
		pinned := NewStats(ts).view()
		for trial := 0; trial < 3000; trial++ {
			length := rng.Intn(120) + 1
			p := rng.Intn(len(ts) - length)
			q := rng.Intn(len(ts) - length)
			exact := ref.distReference(p, q, length, math.Inf(1))
			cutoff := math.Inf(1)
			switch trial % 6 {
			case 0: // below the exact distance → abandonment on both sides
				cutoff = exact * 0.9
			case 1: // above → accepted on both sides
				cutoff = exact*1.1 + 1e-6
			case 2: // exactly at the boundary
				cutoff = exact
			case 3: // disabled
				cutoff = math.Inf(1)
			case 4: // nonsense negative cutoff — squared identically everywhere
				cutoff = -1
			case 5:
				cutoff = 0
			}
			want := ref.dist(p, q, length, cutoff)
			got := blocked.dist(p, q, length, cutoff)
			if !bitsEqual(want, got) {
				t.Fatalf("series %d: blocked dist(%d,%d,%d,cut=%v) = %v, reference %v",
					si, p, q, length, cutoff, got, want)
			}
			pinned.pin(p, length)
			gotPinned := pinned.pinnedDist(q, cutoff)
			if !bitsEqual(want, gotPinned) {
				t.Fatalf("series %d: pinned dist(%d,%d,%d,cut=%v) = %v, reference %v",
					si, p, q, length, cutoff, gotPinned, want)
			}
		}
		if ref.Calls() != blocked.Calls() || ref.Calls() != pinned.Calls() {
			t.Fatalf("series %d: call accounting diverged: ref=%d blocked=%d pinned=%d",
				si, ref.Calls(), blocked.Calls(), pinned.Calls())
		}
	}
}

// TestPinnedCutoffMemo exercises the memoized squared cutoff: one pin,
// many pinnedDist calls with rising, falling and repeated cutoffs must
// each match a fresh reference computation.
func TestPinnedCutoffMemo(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	ts := make([]float64, 400)
	for i := range ts {
		ts[i] = math.Sin(float64(i)/7) + rng.NormFloat64()*0.2
	}
	st := NewStats(ts)
	ref := st.view()
	ref.refKernel = true
	pinned := st.view()
	const length = 64
	p := 17
	pinned.pin(p, length)
	cutoffs := []float64{math.Inf(1), 5, 5, 2, 9, 2, 0, 5, math.Inf(1), 3}
	for qi, cutoff := range cutoffs {
		q := (qi*31 + 120) % (len(ts) - length)
		want := ref.dist(p, q, length, cutoff)
		got := pinned.pinnedDist(q, cutoff)
		if !bitsEqual(want, got) {
			t.Fatalf("cutoff %v (call %d): pinned %v, reference %v", cutoff, qi, got, want)
		}
	}
}

// truncated clips a registry dataset so the exhaustive reference searches
// of the equivalence sweep stay fast; the kernels see the same windows and
// parameters either way.
func truncated(ds *datasets.Dataset, n int) []float64 {
	if len(ds.Series) <= n {
		return ds.Series
	}
	return ds.Series[:n]
}

func ruleSetReduced(t testing.TB, ts []float64, p sax.Params, red sax.Reduction) *grammar.RuleSet {
	t.Helper()
	d, err := sax.Discretize(ts, p, red)
	if err != nil {
		t.Fatalf("Discretize: %v", err)
	}
	rs, err := grammar.Build(d, sequitur.Induce(d.Strings()))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return rs
}

func assertKernelEquivalent(t *testing.T, tag string, want, got Result) {
	t.Helper()
	if len(got.Discords) != len(want.Discords) {
		t.Fatalf("%s: %d discords, reference %d", tag, len(got.Discords), len(want.Discords))
	}
	for i := range want.Discords {
		if got.Discords[i] != want.Discords[i] || !bitsEqual(got.Discords[i].Dist, want.Discords[i].Dist) {
			t.Fatalf("%s: discord[%d] = %+v, reference %+v", tag, i, got.Discords[i], want.Discords[i])
		}
	}
	if got.DistCalls != want.DistCalls {
		t.Fatalf("%s: DistCalls = %d, reference %d", tag, got.DistCalls, want.DistCalls)
	}
}

// TestSearchKernelEquivalenceRegistry is the acceptance property: on every
// registry dataset, for HOTSAX and for RRA under all three numerosity
// reductions, the blocked+pinned fast path and the per-element reference
// kernel produce byte-identical discords, distances and call counts.
func TestSearchKernelEquivalenceRegistry(t *testing.T) {
	ctx := context.Background()
	reductions := []sax.Reduction{sax.ReductionExact, sax.ReductionNone, sax.ReductionMINDIST}
	for _, name := range datasets.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			ds, err := datasets.Generate(name)
			if err != nil {
				t.Fatalf("generate: %v", err)
			}
			ts := truncated(ds, 2500)
			if err := ds.Params.Validate(len(ts)); err != nil {
				t.Skipf("params %+v invalid on truncated series: %v", ds.Params, err)
			}
			st := NewStats(ts)
			seed := int64(1)

			refHS, errRef := hotsaxSearch(ctx, st, ds.Params, 2, seed, Tuning{ReferenceKernel: true})
			fastHS, errFast := HOTSAXStatsCtx(ctx, st, ds.Params, 2, seed)
			if (errRef == nil) != (errFast == nil) {
				t.Fatalf("hotsax: err=%v, reference err=%v", errFast, errRef)
			}
			if errRef == nil {
				assertKernelEquivalent(t, "hotsax", refHS, fastHS)
			}

			for _, red := range reductions {
				rs := ruleSetReduced(t, ts, ds.Params, red)
				refRRA, errRef := rraSearchTuned(ctx, st, Candidates(rs), 2, seed, Tuning{ReferenceKernel: true})
				fastRRA, errFast := RRAStatsCtx(ctx, st, rs, 2, seed)
				if (errRef == nil) != (errFast == nil) {
					t.Fatalf("rra red=%v: err=%v, reference err=%v", red, errFast, errRef)
				}
				if errRef == nil {
					assertKernelEquivalent(t, "rra", refRRA, fastRRA)
				}

				// Parallel search on the fast kernel against the serial
				// reference: discords must match; DistCalls is
				// scheduling-dependent there, so only the serial pair above
				// pins the count.
				parRRA, err := RRAParallelStatsCtx(ctx, st, rs, 2, seed, 3)
				if (err == nil) != (errRef == nil) {
					t.Fatalf("rra parallel red=%v: err=%v, reference err=%v", red, err, errRef)
				}
				if errRef == nil && !reflect.DeepEqual(parRRA.Discords, refRRA.Discords) {
					t.Fatalf("rra parallel red=%v: discords differ from reference kernel", red)
				}

				refNN, errRef := nearestNonSelfSearch(ctx, st, rs, 2, Tuning{ReferenceKernel: true})
				fastNN, errFast := NearestNonSelfParallelStatsCtx(ctx, st, rs, 2)
				if (errRef == nil) != (errFast == nil) {
					t.Fatalf("nearest-non-self red=%v: err=%v, reference err=%v", red, errFast, errRef)
				}
				if !reflect.DeepEqual(refNN, fastNN) {
					t.Fatalf("nearest-non-self red=%v: fast path differs from reference kernel", red)
				}
			}
		})
	}
}

// TestBruteForceKernelEquivalence covers the third reduction-independent
// search on a pair of datasets small enough for the O(m²) reference run.
func TestBruteForceKernelEquivalence(t *testing.T) {
	ctx := context.Background()
	for _, name := range []string{"ecg0606", "respiration-nprs43"} {
		ds, err := datasets.Generate(name)
		if err != nil {
			t.Fatalf("generate %s: %v", name, err)
		}
		ts := truncated(ds, 1200)
		st := NewStats(ts)
		ref, errRef := bruteForceSearch(ctx, st, ds.Params.Window, 2, Tuning{ReferenceKernel: true})
		fast, errFast := BruteForceStatsCtx(ctx, st, ds.Params.Window, 2)
		if (errRef == nil) != (errFast == nil) {
			t.Fatalf("%s: err=%v, reference err=%v", name, errFast, errRef)
		}
		if errRef == nil {
			assertKernelEquivalent(t, name, ref, fast)
		}
	}
}

// TestPinnedKernelZeroAllocsWarm is the satellite's allocation gate: with
// a pooled scratch attached and the buffer grown once, pin + pinnedDist
// must not allocate — the serving path's searches run thousands of
// candidates per request.
func TestPinnedKernelZeroAllocsWarm(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	ts := make([]float64, 2000)
	for i := range ts {
		ts[i] = math.Sin(float64(i)/13) + rng.NormFloat64()*0.1
	}
	st := NewStats(ts)
	e := st.view()
	kw := workspace.GetKernel()
	defer workspace.PutKernel(kw)
	e.scratch = kw
	const window = 128
	e.pin(0, window) // warm the buffer
	var q int
	allocs := testing.AllocsPerRun(200, func() {
		e.pin(q%(len(ts)-window), window)
		e.pinnedDist((q*37+500)%(len(ts)-window), math.Inf(1))
		e.pinnedDist((q*53+900)%(len(ts)-window), 1.0)
		q++
	})
	if allocs != 0 {
		t.Fatalf("warm pin+pinnedDist allocates %v allocs/run, want 0", allocs)
	}
	blocked := testing.AllocsPerRun(200, func() {
		e.dist(q%(len(ts)-window), (q*37+500)%(len(ts)-window), window, math.Inf(1))
		q++
	})
	if blocked != 0 {
		t.Fatalf("blocked dist allocates %v allocs/run, want 0", blocked)
	}
}

// TestSearchReleasesKernelScratch pins the pool contract end to end: a
// search returns its kernel scratch, so a second search can reuse the
// grown buffer instead of allocating a new one.
func TestSearchReleasesKernelScratch(t *testing.T) {
	ts := anomalousSine(1500, 60, 700, 60, 17)
	st := NewStats(ts)
	p := sax.Params{Window: 60, PAA: 4, Alphabet: 4}
	if _, err := HOTSAXStats(st, p, 1, 1); err != nil {
		t.Fatal(err)
	}
	// The pool must now hold a kernel with capacity for the window.
	kw := workspace.GetKernel()
	defer workspace.PutKernel(kw)
	if cap(kw.QNorm) < p.Window {
		// Not a hard failure — sync.Pool may drop items under GC pressure —
		// but in a single-goroutine test the checkout should find the
		// released scratch.
		t.Logf("pool returned scratch with cap %d (< window %d); GC may have intervened", cap(kw.QNorm), p.Window)
	}
}
