package discord

import (
	"grammarviz/internal/sax"
	"grammarviz/internal/timeseries"
)

// This file wires sax.CodeDist into the discord searches: before paying
// for a z-normalized Euclidean distance, the inner loop consults the
// MINDIST lower bound between the two subsequences' packed SAX word
// codes. MINDIST lower-bounds the true z-normalized distance (the SAX
// admissibility property), so whenever the bound already exceeds the
// loop's pruning cutoff the kernel call is skipped outright: the true
// distance would have been strictly above both the candidate's running
// nearest-neighbor and the best-so-far discord distance, so neither an
// update nor an early abandon is lost. Discords are byte-identical with
// the filter on or off; only the distance-call count (the paper's Table 1
// metric) drops. The filter engages only when the word shape packs into a
// uint64 (WordCodec.Fits) and the discretization uses the default
// z-normalization threshold — the same one Stats hard-codes — because a
// word encoded under a different flat-window guard does not describe the
// subsequence the kernel normalizes.

// pruneSlack is the relative safety margin on the lower-bound comparison:
// the bound is mathematically below the true distance, but it is computed
// with different floating-point operations, so a hair of slack keeps the
// filter conservative instead of exact-boundary dependent. Weakening the
// filter never changes results — it only forgoes a skip.
const pruneSlack = 1e-9

// codePruner is an immutable MINDIST pre-filter shared by every worker of
// a search: packed word codes per candidate (or per window position), and
// the coded MINDIST evaluator. Safe for concurrent readers.
type codePruner struct {
	cd    *sax.CodeDist
	codes []uint64
	has   []bool
	lens  []int // per-candidate interval lengths; nil = fixed-window search
}

// defaultNormThreshold reports whether the parameterization z-normalizes
// with the same flat-window guard as the distance kernel's Stats.
func defaultNormThreshold(p sax.Params) bool {
	return p.NormThreshold == 0 || p.NormThreshold == timeseries.DefaultNormThreshold
}

// newFixedPruner builds the pre-filter for a fixed-window search from an
// unreduced discretization: every window position carries its packed
// code. It returns nil (filter disabled) when the discretization is not
// coded or the evaluator cannot be built.
func newFixedPruner(d *sax.Discretization) *codePruner {
	if d == nil || !d.Coded || !defaultNormThreshold(d.Params) {
		return nil
	}
	dt, err := sax.NewDistTable(d.Params.Alphabet)
	if err != nil {
		return nil
	}
	cd, err := sax.NewCodeDist(dt, sax.NewWordCodec(d.Params.PAA, d.Params.Alphabet))
	if err != nil {
		return nil
	}
	n := d.SeriesLen - d.Params.Window + 1
	cp := &codePruner{cd: cd, codes: make([]uint64, n), has: make([]bool, n)}
	for _, w := range d.Words {
		if w.Offset >= 0 && w.Offset < n {
			cp.codes[w.Offset] = w.Code
			cp.has[w.Offset] = true
		}
	}
	return cp
}

// newCandidatePruner builds the pre-filter for the RRA search: each
// candidate interval is SAX-encoded as one word over its own (variable)
// length. The bound only describes a comparison at exactly the encoded
// length, so skip() additionally requires both intervals to match the
// compared length. Returns nil (filter disabled) when the word shape does
// not pack or the parameterization uses a non-default norm threshold.
func newCandidatePruner(ts []float64, cands []Candidate, p sax.Params) *codePruner {
	if !defaultNormThreshold(p) || !sax.NewWordCodec(p.PAA, p.Alphabet).Fits() {
		return nil
	}
	dt, err := sax.NewDistTable(p.Alphabet)
	if err != nil {
		return nil
	}
	enc, err := sax.NewEncoder(sax.Params{PAA: p.PAA, Alphabet: p.Alphabet})
	if err != nil {
		return nil
	}
	cd, err := sax.NewCodeDist(dt, enc.Codec())
	if err != nil {
		return nil
	}
	cp := &codePruner{
		cd:    cd,
		codes: make([]uint64, len(cands)),
		has:   make([]bool, len(cands)),
		lens:  make([]int, len(cands)),
	}
	for i, c := range cands {
		cp.lens[i] = c.IV.Len()
		if c.IV.Len() < p.PAA || c.IV.Start < 0 || c.IV.End >= len(ts) {
			continue
		}
		code, err := enc.EncodeCode(ts[c.IV.Start : c.IV.End+1])
		if err != nil {
			continue
		}
		cp.codes[i] = code
		cp.has[i] = true
	}
	return cp
}

// skip reports whether the comparison of candidates i and j over length
// points can be skipped without calling the distance kernel: both codes
// exist, both describe exactly a length-point subsequence, and the
// MINDIST lower bound already exceeds rawCutoff (the kernel-scale cutoff
// — for RRA's length-normalized distances, the caller multiplies the
// normalized cutoff back by the length).
func (cp *codePruner) skip(i, j, length int, rawCutoff float64) bool {
	if !cp.has[i] || !cp.has[j] {
		return false
	}
	if cp.lens != nil && (cp.lens[i] != length || cp.lens[j] != length) {
		return false
	}
	return cp.cd.MINDISTCode(cp.codes[i], cp.codes[j], length) > rawCutoff*(1+pruneSlack)
}
