package discord

import (
	"math"
	"runtime"
	"sync"

	"grammarviz/internal/grammar"
)

// NearestNonSelfParallel computes exactly what NearestNonSelf computes,
// fanned out over up to workers goroutines (workers <= 0 selects
// GOMAXPROCS). Every candidate's scan is independent, so the output is
// byte-identical to the serial version regardless of scheduling.
func NearestNonSelfParallel(ts []float64, rs *grammar.RuleSet, workers int) []Discord {
	return NearestNonSelfParallelStats(NewStats(ts), rs, workers)
}

// NearestNonSelfParallelStats is NearestNonSelfParallel on prebuilt series
// statistics. All workers read the same Stats — a worker's private state is
// just a distance-call counter — so per-worker memory no longer grows with
// the series length.
func NearestNonSelfParallelStats(st *Stats, rs *grammar.RuleSet, workers int) []Discord {
	cands := Candidates(rs)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cands) {
		workers = len(cands)
	}

	byRule := make(map[int][]int)
	for i, c := range cands {
		byRule[c.RuleID] = append(byRule[c.RuleID], i)
	}

	m := len(st.ts)
	results := make([]Discord, len(cands))
	found := make([]bool, len(cands))
	if workers <= 1 {
		e := st.view()
		sc := newNNScratch(len(cands))
		for ci := range cands {
			if d, ok := nearestOf(e, cands, byRule, ci, m, sc); ok {
				results[ci] = d
				found[ci] = true
			}
		}
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				e := st.view()
				sc := newNNScratch(len(cands))
				for ci := w; ci < len(cands); ci += workers {
					if d, ok := nearestOf(e, cands, byRule, ci, m, sc); ok {
						results[ci] = d
						found[ci] = true
					}
				}
			}(w)
		}
		wg.Wait()
	}

	out := make([]Discord, 0, len(cands))
	for i := range results {
		if found[i] {
			out = append(out, results[i])
		}
	}
	return out
}

// nnScratch is a worker-private visited marker reused across candidates:
// seen[qi] == gen means qi was visited in the same-rule phase of the
// current candidate's scan.
type nnScratch struct {
	seen []int
	gen  int
}

func newNNScratch(n int) *nnScratch { return &nnScratch{seen: make([]int, n)} }

// nearestOf scans all candidates for the true nearest non-self match of
// candidate ci, same-rule occurrences first for early-abandoning warmth.
func nearestOf(e *engine, cands []Candidate, byRule map[int][]int, ci, m int, sc *nnScratch) (Discord, bool) {
	c := cands[ci]
	length := c.IV.Len()
	scale := float64(length)
	nn := math.Inf(1)
	nnStart := -1
	visit := func(qi int) {
		if qi == ci {
			return
		}
		q := cands[qi].IV.Start
		if abs(c.IV.Start-q) < length || q+length > m {
			return
		}
		d := e.dist(c.IV.Start, q, length, nn*scale) / scale
		if d < nn {
			nn = d
			nnStart = q
		}
	}
	sc.gen++
	for _, qi := range byRule[c.RuleID] {
		sc.seen[qi] = sc.gen
		visit(qi)
	}
	for qi := range cands {
		if sc.seen[qi] != sc.gen {
			visit(qi)
		}
	}
	if nnStart < 0 {
		return Discord{}, false
	}
	return Discord{Interval: c.IV, Dist: nn, NNStart: nnStart, RuleID: c.RuleID, Freq: c.Freq}, true
}
