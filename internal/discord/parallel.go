package discord

import (
	"context"
	"fmt"
	"math"
	"runtime"

	"grammarviz/internal/grammar"
	"grammarviz/internal/worker"
	"grammarviz/internal/workspace"
)

// NearestNonSelfParallel computes exactly what NearestNonSelf computes,
// fanned out over up to workers goroutines (workers <= 0 selects
// GOMAXPROCS). Every candidate's scan is independent, so the output is
// byte-identical to the serial version regardless of scheduling.
func NearestNonSelfParallel(ts []float64, rs *grammar.RuleSet, workers int) []Discord {
	return NearestNonSelfParallelStats(NewStats(ts), rs, workers)
}

// NearestNonSelfParallelStats is NearestNonSelfParallel on prebuilt series
// statistics. All workers read the same Stats — a worker's private state is
// just a distance-call counter — so per-worker memory no longer grows with
// the series length. A worker panic is re-raised on the caller's goroutine
// (use the Ctx variant to receive it as an error instead).
func NearestNonSelfParallelStats(st *Stats, rs *grammar.RuleSet, workers int) []Discord {
	out, err := NearestNonSelfParallelStatsCtx(context.Background(), st, rs, workers)
	if err != nil {
		// Only a contained worker panic can reach here with a background
		// context; surface it on the caller's goroutine rather than
		// swallowing it.
		panic(err)
	}
	return out
}

// NearestNonSelfParallelStatsCtx is NearestNonSelfParallelStats with
// cooperative cancellation and panic containment: each worker polls ctx at
// bounded intervals, a cancelled context returns a ctx.Err()-wrapped error
// promptly, and a worker panic is recovered into a *worker.PanicError
// instead of crashing the process.
func NearestNonSelfParallelStatsCtx(ctx context.Context, st *Stats, rs *grammar.RuleSet, workers int) ([]Discord, error) {
	return nearestNonSelfSearch(ctx, st, rs, workers, Tuning{})
}

func nearestNonSelfSearch(ctx context.Context, st *Stats, rs *grammar.RuleSet, workers int, tuning Tuning) ([]Discord, error) {
	cands := Candidates(rs)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cands) {
		workers = len(cands)
	}

	byRule := make(map[int][]int)
	for i, c := range cands {
		byRule[c.RuleID] = append(byRule[c.RuleID], i)
	}

	m := len(st.ts)
	results := make([]Discord, len(cands))
	found := make([]bool, len(cands))
	scan := func(ctx context.Context, w, stride int) error {
		e := st.viewCtx(ctx)
		e.refKernel = tuning.ReferenceKernel
		kw := workspace.GetKernel()
		defer workspace.PutKernel(kw)
		e.scratch = kw
		sc := newNNScratch(len(cands))
		for ci := w; ci < len(cands); ci += stride {
			if e.cancelled() {
				return e.cancelCause()
			}
			d, ok := nearestOf(e, cands, byRule, ci, m, sc)
			if err := e.cancelCause(); err != nil {
				return err // scan cut short; its result is not recorded
			}
			if ok {
				results[ci] = d
				found[ci] = true
			}
		}
		return nil
	}
	if workers <= 1 {
		if err := scan(ctx, 0, 1); err != nil {
			return nil, fmt.Errorf("discord: nearest-non-self cancelled: %w", err)
		}
	} else {
		g, gctx := worker.WithContext(ctx)
		for w := 0; w < workers; w++ {
			w := w
			g.Go(func() error { return scan(gctx, w, workers) })
		}
		if err := g.Wait(); err != nil {
			return nil, fmt.Errorf("discord: nearest-non-self aborted: %w", err)
		}
	}

	out := make([]Discord, 0, len(cands))
	for i := range results {
		if found[i] {
			out = append(out, results[i])
		}
	}
	return out, nil
}

// nnScratch is a worker-private visited marker reused across candidates:
// seen[qi] == gen means qi was visited in the same-rule phase of the
// current candidate's scan.
type nnScratch struct {
	seen []int
	gen  int
}

func newNNScratch(n int) *nnScratch { return &nnScratch{seen: make([]int, n)} }

// nearestOf scans all candidates for the true nearest non-self match of
// candidate ci, same-rule occurrences first for early-abandoning warmth.
// The candidate is pinned once so the whole scan runs the query-pinned
// kernel.
func nearestOf(e *engine, cands []Candidate, byRule map[int][]int, ci, m int, sc *nnScratch) (Discord, bool) {
	c := cands[ci]
	length := c.IV.Len()
	e.pin(c.IV.Start, length)
	scale := float64(length)
	nn := math.Inf(1)
	nnStart := -1
	visit := func(qi int) {
		if e.cancelled() || qi == ci {
			return
		}
		q := cands[qi].IV.Start
		if abs(c.IV.Start-q) < length || q+length > m {
			return
		}
		d := e.pinnedDist(q, nn*scale) / scale
		if d < nn {
			nn = d
			nnStart = q
		}
	}
	sc.gen++
	for _, qi := range byRule[c.RuleID] {
		sc.seen[qi] = sc.gen
		visit(qi)
	}
	for qi := range cands {
		if sc.seen[qi] != sc.gen {
			visit(qi)
		}
	}
	if nnStart < 0 {
		return Discord{}, false
	}
	return Discord{Interval: c.IV, Dist: nn, NNStart: nnStart, RuleID: c.RuleID, Freq: c.Freq}, true
}
