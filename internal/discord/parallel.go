package discord

import (
	"math"
	"runtime"
	"sync"

	"grammarviz/internal/grammar"
)

// NearestNonSelfParallel computes exactly what NearestNonSelf computes,
// fanned out over up to workers goroutines (workers <= 0 selects
// GOMAXPROCS). Every candidate's scan is independent, and each worker has
// its own distance engine, so the output is byte-identical to the serial
// version regardless of scheduling.
func NearestNonSelfParallel(ts []float64, rs *grammar.RuleSet, workers int) []Discord {
	cands := Candidates(rs)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cands) {
		workers = len(cands)
	}
	if workers <= 1 {
		return NearestNonSelf(ts, rs)
	}

	byRule := make(map[int][]int)
	for i, c := range cands {
		byRule[c.RuleID] = append(byRule[c.RuleID], i)
	}

	results := make([]Discord, len(cands))
	found := make([]bool, len(cands))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			e := newEngine(ts)
			for ci := w; ci < len(cands); ci += workers {
				if d, ok := nearestOf(e, cands, byRule, ci, len(ts)); ok {
					results[ci] = d
					found[ci] = true
				}
			}
		}(w)
	}
	wg.Wait()

	out := make([]Discord, 0, len(cands))
	for i := range results {
		if found[i] {
			out = append(out, results[i])
		}
	}
	return out
}

// nearestOf scans all candidates for the true nearest non-self match of
// candidate ci, same-rule occurrences first for early-abandoning warmth.
func nearestOf(e *engine, cands []Candidate, byRule map[int][]int, ci, m int) (Discord, bool) {
	c := cands[ci]
	length := c.IV.Len()
	scale := float64(length)
	nn := math.Inf(1)
	nnStart := -1
	visit := func(qi int) {
		if qi == ci {
			return
		}
		q := cands[qi].IV.Start
		if abs(c.IV.Start-q) < length || q+length > m {
			return
		}
		d := e.dist(c.IV.Start, q, length, nn*scale) / scale
		if d < nn {
			nn = d
			nnStart = q
		}
	}
	same := byRule[c.RuleID]
	sameSet := make(map[int]bool, len(same))
	for _, qi := range same {
		sameSet[qi] = true
		visit(qi)
	}
	for qi := range cands {
		if !sameSet[qi] {
			visit(qi)
		}
	}
	if nnStart < 0 {
		return Discord{}, false
	}
	return Discord{Interval: c.IV, Dist: nn, NNStart: nnStart, RuleID: c.RuleID, Freq: c.Freq}, true
}
