package discord

import (
	"math"
	"testing"

	"grammarviz/internal/sax"
)

// The orderings are pure pruning heuristics: disabling them may change the
// number of distance calls but never the best discord's distance (the
// searches stay exact).
func TestRRATunedExactnessInvariant(t *testing.T) {
	ts := anomalousSine(1500, 50, 700, 50, 31)
	rs := ruleSetFor(t, ts, sax.Params{Window: 50, PAA: 5, Alphabet: 4})
	base, err := RRA(ts, rs, 1, 31)
	if err != nil {
		t.Fatalf("RRA: %v", err)
	}
	for _, tuning := range []Tuning{
		{NoRarityOrder: true},
		{NoSameGroupFirst: true},
		{NoRarityOrder: true, NoSameGroupFirst: true},
	} {
		got, err := RRATuned(ts, rs, 1, 31, tuning)
		if err != nil {
			t.Fatalf("RRATuned(%+v): %v", tuning, err)
		}
		if math.Abs(got.Discords[0].Dist-base.Discords[0].Dist) > 1e-9 {
			t.Errorf("tuning %+v changed best distance: %v vs %v",
				tuning, got.Discords[0].Dist, base.Discords[0].Dist)
		}
	}
}

func TestHOTSAXTunedExactnessInvariant(t *testing.T) {
	ts := anomalousSine(1200, 40, 600, 40, 33)
	p := sax.Params{Window: 40, PAA: 4, Alphabet: 4}
	base, err := HOTSAX(ts, p, 1, 33)
	if err != nil {
		t.Fatalf("HOTSAX: %v", err)
	}
	for _, tuning := range []Tuning{
		{NoRarityOrder: true},
		{NoSameGroupFirst: true},
		{NoRarityOrder: true, NoSameGroupFirst: true},
	} {
		got, err := HOTSAXTuned(ts, p, 1, 33, tuning)
		if err != nil {
			t.Fatalf("HOTSAXTuned(%+v): %v", tuning, err)
		}
		if math.Abs(got.Discords[0].Dist-base.Discords[0].Dist) > 1e-9 {
			t.Errorf("tuning %+v changed best distance: %v vs %v",
				tuning, got.Discords[0].Dist, base.Discords[0].Dist)
		}
		if got.Discords[0].Interval != base.Discords[0].Interval {
			// Fixed-length search has a unique best window unless there is
			// an exact distance tie.
			t.Logf("tuning %+v picked %v vs %v at equal distance",
				tuning, got.Discords[0].Interval, base.Discords[0].Interval)
		}
	}
}

func TestTuningZeroValueIsFullAlgorithm(t *testing.T) {
	ts := anomalousSine(900, 45, 450, 45, 35)
	rs := ruleSetFor(t, ts, sax.Params{Window: 45, PAA: 5, Alphabet: 4})
	a, err := RRA(ts, rs, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RRATuned(ts, rs, 2, 7, Tuning{})
	if err != nil {
		t.Fatal(err)
	}
	if a.DistCalls != b.DistCalls || len(a.Discords) != len(b.Discords) {
		t.Fatalf("zero tuning differs from RRA: %+v vs %+v", a, b)
	}
	for i := range a.Discords {
		if a.Discords[i] != b.Discords[i] {
			t.Errorf("discord %d differs", i)
		}
	}
}
