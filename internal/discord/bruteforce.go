package discord

import (
	"context"
	"fmt"
	"math"

	"grammarviz/internal/timeseries"
	"grammarviz/internal/workspace"
)

// BruteForce finds the top-k fixed-length discords by exhaustive nested
// search: every candidate subsequence is compared against every non-self
// match. It is O(m^2) distance calls and exists as the exactness baseline
// for Table 1. Early abandoning inside the kernel does not reduce the call
// count, matching the paper's accounting.
func BruteForce(ts []float64, window, k int) (Result, error) {
	return BruteForceStats(NewStats(ts), window, k)
}

// BruteForceStats is BruteForce on prebuilt series statistics shared with
// the caller.
func BruteForceStats(st *Stats, window, k int) (Result, error) {
	return BruteForceStatsCtx(context.Background(), st, window, k)
}

// BruteForceStatsCtx is BruteForceStats with cooperative cancellation: the
// nested loops poll ctx at bounded intervals and, when cancelled, the
// discords of the fully completed top-k rounds are returned with Partial
// set plus a ctx.Err()-wrapped error. Brute force is the search most in
// need of a deadline — it is O(m^2) by design.
func BruteForceStatsCtx(ctx context.Context, st *Stats, window, k int) (Result, error) {
	return bruteForceSearch(ctx, st, window, k, Tuning{})
}

func bruteForceSearch(ctx context.Context, st *Stats, window, k int, tuning Tuning) (Result, error) {
	ts := st.ts
	if window <= 0 || window > len(ts) {
		return Result{}, fmt.Errorf("%w: window=%d n=%d", timeseries.ErrBadWindow, window, len(ts))
	}
	e := st.viewCtx(ctx)
	e.refKernel = tuning.ReferenceKernel
	kw := workspace.GetKernel()
	defer workspace.PutKernel(kw)
	e.scratch = kw
	var res Result
	for found := 0; found < k; found++ {
		best := Discord{Dist: -1, RuleID: -1, NNStart: -1}
		for p := 0; p+window <= len(ts); p++ {
			if e.cancelled() {
				break
			}
			iv := timeseries.Interval{Start: p, End: p + window - 1}
			if overlapsAny(iv, res.Discords) {
				continue
			}
			e.pin(p, window)
			nn := math.Inf(1)
			nnStart := -1
			for q := 0; q+window <= len(ts); q++ {
				if abs(p-q) < window {
					continue // self match
				}
				if e.cancelled() {
					nnStart = -1
					break
				}
				d := e.pinnedDist(q, nn)
				if d < nn {
					nn = d
					nnStart = q
				}
			}
			if nnStart >= 0 && nn > best.Dist {
				best = Discord{Interval: iv, Dist: nn, NNStart: nnStart, RuleID: -1}
			}
		}
		if err := e.cancelCause(); err != nil {
			res.DistCalls = e.Calls()
			res.Partial = true
			return res, fmt.Errorf("discord: brute force cancelled after %d of %d discords: %w", len(res.Discords), k, err)
		}
		if best.NNStart < 0 {
			break // no further candidate has a non-self match
		}
		res.Discords = append(res.Discords, best)
	}
	res.DistCalls = e.Calls()
	if len(res.Discords) == 0 {
		return res, ErrNoCandidates
	}
	return res, nil
}

// BruteForceCallCount returns the number of distance calls a brute-force
// top-1 search performs on a series of length m with the given window,
// without running it: each of the m-window+1 candidates is compared to
// every non-self match. The paper's Table 1 reports this number for its
// largest datasets where actually running brute force is impractical.
func BruteForceCallCount(m, window int) int64 {
	nCand := int64(m - window + 1)
	if nCand <= 0 {
		return 0
	}
	var total int64
	for p := int64(0); p < nCand; p++ {
		// q ranges over [0, nCand) with |p-q| >= window.
		lo := p - int64(window) + 1
		if lo < 0 {
			lo = 0
		}
		hi := p + int64(window) - 1
		if hi > nCand-1 {
			hi = nCand - 1
		}
		total += nCand - (hi - lo + 1)
	}
	return total
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
