package discord

import (
	"errors"

	"grammarviz/internal/timeseries"
)

// Errors shared by the search entry points.
var (
	// ErrNoCandidates is returned when the input admits no candidate with
	// a valid non-self match (e.g. the series is shorter than two
	// windows).
	ErrNoCandidates = errors.New("discord: no candidate has a non-self match")
)

// Discord is one ranked anomaly reported by a search.
type Discord struct {
	// Interval is the subsequence the discord covers.
	Interval timeseries.Interval
	// Dist is the distance to the nearest non-self match: raw Euclidean
	// for brute force and HOTSAX, length-normalized Euclidean (paper
	// Eq. 1) for RRA.
	Dist float64
	// NNStart is the start of the nearest non-self match found.
	NNStart int
	// RuleID is the grammar rule that produced the candidate (RRA only;
	// -1 for non-rule candidates and for the other algorithms).
	RuleID int
	// Freq is the candidate's rule usage frequency (RRA only).
	Freq int
}

// Result is the output of one search run.
type Result struct {
	Discords  []Discord // ranked best-first
	DistCalls int64     // total distance-kernel invocations

	// Pruned counts the comparisons the coded search entry points skipped
	// via the MINDIST lower bound over packed SAX word codes before they
	// reached the distance kernel (see codeprune.go). Always 0 for the
	// uncoded entry points; pruned comparisons are not part of DistCalls.
	Pruned int64

	// Partial is true when a cancelled or expired context cut the search
	// short: Discords holds the best-so-far answer from the fully
	// completed top-k rounds (each one an exact discord of the remaining
	// candidate set), not the full top-k.
	Partial bool
	// Fallback is true when Discords came from the rule-density curve's
	// minima rather than a distance search — the last rung of the
	// degradation ladder, used when a deadline expired before even one
	// search round completed. Fallback discords carry Dist -1 and NNStart
	// -1: no distance was ever computed.
	Fallback bool
}

// overlapsAny reports whether iv overlaps any previously found discord —
// used to exclude prior discords' regions from later candidate passes.
func overlapsAny(iv timeseries.Interval, found []Discord) bool {
	for _, d := range found {
		if iv.Overlaps(d.Interval) {
			return true
		}
	}
	return false
}
