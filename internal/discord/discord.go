package discord

import (
	"errors"

	"grammarviz/internal/timeseries"
)

// Errors shared by the search entry points.
var (
	// ErrNoCandidates is returned when the input admits no candidate with
	// a valid non-self match (e.g. the series is shorter than two
	// windows).
	ErrNoCandidates = errors.New("discord: no candidate has a non-self match")
)

// Discord is one ranked anomaly reported by a search.
type Discord struct {
	// Interval is the subsequence the discord covers.
	Interval timeseries.Interval
	// Dist is the distance to the nearest non-self match: raw Euclidean
	// for brute force and HOTSAX, length-normalized Euclidean (paper
	// Eq. 1) for RRA.
	Dist float64
	// NNStart is the start of the nearest non-self match found.
	NNStart int
	// RuleID is the grammar rule that produced the candidate (RRA only;
	// -1 for non-rule candidates and for the other algorithms).
	RuleID int
	// Freq is the candidate's rule usage frequency (RRA only).
	Freq int
}

// Result is the output of one search run.
type Result struct {
	Discords  []Discord // ranked best-first
	DistCalls int64     // total distance-kernel invocations
}

// overlapsAny reports whether iv overlaps any previously found discord —
// used to exclude prior discords' regions from later candidate passes.
func overlapsAny(iv timeseries.Interval, found []Discord) bool {
	for _, d := range found {
		if iv.Overlaps(d.Interval) {
			return true
		}
	}
	return false
}
