package discord

import (
	"math"
	"math/rand"

	"grammarviz/internal/grammar"
	"grammarviz/internal/timeseries"
)

// Candidate is one RRA search interval: a grammar-rule occurrence, or a
// zero-coverage gap (Freq 0).
type Candidate struct {
	IV     timeseries.Interval
	RuleID int // -1 for zero-coverage gaps
	Freq   int // the rule's usage frequency
}

// minCandidateLen is the shortest interval RRA will evaluate: comparing
// z-normalized subsequences needs at least a handful of points to be
// meaningful.
const minCandidateLen = 4

// Candidates assembles RRA's search intervals from a rule set: every rule
// occurrence, plus every maximal run of words that never made it into any
// rule ("continuous subsequences of the discretized time series that do
// not form any rule", Section 4.2) — frequency 0, considered first by the
// outer loop. Both kinds of interval span at least one window, so the
// length-normalized distance compares like with like.
func Candidates(rs *grammar.RuleSet) []Candidate {
	var cands []Candidate
	for _, rec := range rs.Records {
		for _, iv := range rec.Occurrences {
			if iv.Len() >= minCandidateLen {
				cands = append(cands, Candidate{IV: iv, RuleID: rec.ID, Freq: rec.Frequency})
			}
		}
	}
	for _, run := range rs.UncoveredWordRuns() {
		iv := rs.WordInterval(run[0], run[1])
		if iv.Len() >= minCandidateLen {
			cands = append(cands, Candidate{IV: iv, RuleID: -1, Freq: 0})
		}
	}
	return cands
}

// RRA is the paper's exact variable-length discord search (Algorithm 1):
// a HOTSAX-style nested loop over the grammar-derived candidate intervals.
// The outer loop visits candidates in ascending rule-frequency order
// (zero-coverage gaps first, shuffled within a frequency class); the inner
// loop visits occurrences of the candidate's own rule first, then the rest
// in random order. Distance is the length-normalized Euclidean distance of
// Eq. 1, so discords of different lengths are comparable. Top-k discords
// are found by re-running the search with previously found discords'
// regions excluded from the candidate list.
func RRA(ts []float64, rs *grammar.RuleSet, k int, seed int64) (Result, error) {
	return rraSearch(ts, Candidates(rs), k, seed)
}

func rraSearch(ts []float64, cands []Candidate, k int, seed int64) (Result, error) {
	return rraSearchTuned(ts, cands, k, seed, Tuning{})
}

func rraSearchTuned(ts []float64, cands []Candidate, k int, seed int64, tuning Tuning) (Result, error) {
	rng := rand.New(rand.NewSource(seed))
	m := len(ts)

	// Outer order: ascending frequency, shuffled within a class.
	outer := orderOuter(len(cands), func(i int) int { return cands[i].Freq }, rng, tuning)

	// Same-rule occurrence lists for the inner loop's first phase.
	byRule := make(map[int][]int)
	if !tuning.NoSameGroupFirst {
		for i, c := range cands {
			byRule[c.RuleID] = append(byRule[c.RuleID], i)
		}
	}
	inner := rng.Perm(len(cands)) // shared random order for the second phase

	e := newEngine(ts)
	var res Result
	for found := 0; found < k; found++ {
		best := Discord{Dist: -1, RuleID: -1, NNStart: -1}
		for _, ci := range outer {
			c := cands[ci]
			if overlapsAny(c.IV, res.Discords) {
				continue
			}
			nn, nnStart := e.rraNearest(c, ci, cands, byRule[c.RuleID], inner, best.Dist, m)
			if nnStart >= 0 && nn > best.Dist {
				best = Discord{Interval: c.IV, Dist: nn, NNStart: nnStart, RuleID: c.RuleID, Freq: c.Freq}
			}
		}
		if best.NNStart < 0 {
			break
		}
		res.Discords = append(res.Discords, best)
	}
	res.DistCalls = e.Calls()
	if len(res.Discords) == 0 {
		return res, ErrNoCandidates
	}
	return res, nil
}

// rraNearest runs the RRA inner loop for candidate c (index ci): same-rule
// occurrences first, then every candidate in the shared random order. It
// returns (-Inf, -2) as soon as a distance below bestSoFar proves c cannot
// be the discord. Distances are normalized by the candidate's length.
func (e *engine) rraNearest(c Candidate, ci int, cands []Candidate, sameRule, inner []int, bestSoFar float64, m int) (float64, int) {
	length := c.IV.Len()
	nn := math.Inf(1)
	nnStart := -1
	scale := float64(length)

	visit := func(qi int) bool {
		if qi == ci {
			return true
		}
		q := cands[qi].IV.Start
		if abs(c.IV.Start-q) < length {
			return true // self match (Algorithm 1 line 7)
		}
		if q+length > m {
			return true // cannot extract len(p) points at q
		}
		cutoff := nn
		if bestSoFar > cutoff {
			cutoff = bestSoFar
		}
		d := e.dist(c.IV.Start, q, length, cutoff*scale) / scale
		if d < bestSoFar {
			return false
		}
		if d < nn {
			nn = d
			nnStart = q
		}
		return true
	}

	visited := make(map[int]bool, len(sameRule))
	for _, qi := range sameRule {
		visited[qi] = true
		if !visit(qi) {
			return math.Inf(-1), -2
		}
	}
	for _, qi := range inner {
		if visited[qi] {
			continue
		}
		if !visit(qi) {
			return math.Inf(-1), -2
		}
	}
	return nn, nnStart
}

// NearestNonSelf computes, for every candidate interval, the true
// length-normalized distance to its nearest non-self match (no best-so-far
// break). It is the data behind the bottom panels of Figures 2 and 3 —
// a vertical line at each rule-corresponding subsequence whose height is
// the distance.
func NearestNonSelf(ts []float64, rs *grammar.RuleSet) []Discord {
	cands := Candidates(rs)
	e := newEngine(ts)
	m := len(ts)

	// Visiting same-rule occurrences first usually finds a small distance
	// immediately, which makes the early-abandoning cutoff effective for
	// the rest of the scan.
	byRule := make(map[int][]int)
	for i, c := range cands {
		byRule[c.RuleID] = append(byRule[c.RuleID], i)
	}

	out := make([]Discord, 0, len(cands))
	seen := make([]int, len(cands)) // seen[qi] == ci+1 when visited for ci
	for ci, c := range cands {
		length := c.IV.Len()
		scale := float64(length)
		nn := math.Inf(1)
		nnStart := -1
		visit := func(qi int) {
			if qi == ci {
				return
			}
			q := cands[qi].IV.Start
			if abs(c.IV.Start-q) < length || q+length > m {
				return
			}
			d := e.dist(c.IV.Start, q, length, nn*scale) / scale
			if d < nn {
				nn = d
				nnStart = q
			}
		}
		for _, qi := range byRule[c.RuleID] {
			seen[qi] = ci + 1
			visit(qi)
		}
		for qi := range cands {
			if seen[qi] != ci+1 {
				visit(qi)
			}
		}
		if nnStart >= 0 {
			out = append(out, Discord{Interval: c.IV, Dist: nn, NNStart: nnStart, RuleID: c.RuleID, Freq: c.Freq})
		}
	}
	return out
}
