package discord

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"grammarviz/internal/grammar"
	"grammarviz/internal/sax"
	"grammarviz/internal/timeseries"
	"grammarviz/internal/workspace"
)

// Candidate is one RRA search interval: a grammar-rule occurrence, or a
// zero-coverage gap (Freq 0).
type Candidate struct {
	IV     timeseries.Interval
	RuleID int // -1 for zero-coverage gaps
	Freq   int // the rule's usage frequency
}

// minCandidateLen is the shortest interval RRA will evaluate: comparing
// z-normalized subsequences needs at least a handful of points to be
// meaningful.
const minCandidateLen = 4

// Candidates assembles RRA's search intervals from a rule set: every rule
// occurrence, plus every maximal run of words that never made it into any
// rule ("continuous subsequences of the discretized time series that do
// not form any rule", Section 4.2) — frequency 0, considered first by the
// outer loop. Both kinds of interval span at least one window, so the
// length-normalized distance compares like with like.
func Candidates(rs *grammar.RuleSet) []Candidate {
	var cands []Candidate
	for _, rec := range rs.Records {
		for _, iv := range rec.Occurrences {
			if iv.Len() >= minCandidateLen {
				cands = append(cands, Candidate{IV: iv, RuleID: rec.ID, Freq: rec.Frequency})
			}
		}
	}
	for _, run := range rs.UncoveredWordRuns() {
		iv := rs.WordInterval(run[0], run[1])
		if iv.Len() >= minCandidateLen {
			cands = append(cands, Candidate{IV: iv, RuleID: -1, Freq: 0})
		}
	}
	return cands
}

// RRA is the paper's exact variable-length discord search (Algorithm 1):
// a HOTSAX-style nested loop over the grammar-derived candidate intervals.
// The outer loop visits candidates in ascending rule-frequency order
// (zero-coverage gaps first, shuffled within a frequency class); the inner
// loop visits occurrences of the candidate's own rule first, then the rest
// in random order. Distance is the length-normalized Euclidean distance of
// Eq. 1, so discords of different lengths are comparable. Top-k discords
// are found by re-running the search with previously found discords'
// regions excluded from the candidate list.
//
// RRA runs on one goroutine; RRAParallel fans the outer loop across cores
// with byte-identical results.
func RRA(ts []float64, rs *grammar.RuleSet, k int, seed int64) (Result, error) {
	return rraSearch(context.Background(), NewStats(ts), Candidates(rs), k, seed)
}

// RRAStats is RRA on prebuilt series statistics, so repeated searches (or
// searches sharing a series with HOTSAX / brute force) skip the O(n)
// prefix-sum rebuild.
func RRAStats(st *Stats, rs *grammar.RuleSet, k int, seed int64) (Result, error) {
	return rraSearch(context.Background(), st, Candidates(rs), k, seed)
}

// RRAStatsCtx is RRAStats with cooperative cancellation: the search polls
// ctx at bounded intervals in both loops. When the context is cancelled
// mid-search, the discords of the fully completed top-k rounds are
// returned with Partial set, together with a ctx.Err()-wrapped error.
// With a never-cancelled context the result is byte-identical to RRAStats.
func RRAStatsCtx(ctx context.Context, st *Stats, rs *grammar.RuleSet, k int, seed int64) (Result, error) {
	return rraSearch(ctx, st, Candidates(rs), k, seed)
}

func rraSearch(ctx context.Context, st *Stats, cands []Candidate, k int, seed int64) (Result, error) {
	return rraSearchPruned(ctx, st, cands, k, seed, Tuning{}, nil)
}

// RRAStatsCodedCtx is RRAStatsCtx with the coded MINDIST pre-filter
// enabled (see codeprune.go): every candidate interval is packed into a
// SAX word code of p's shape, and inner-loop comparisons whose MINDIST
// lower bound already exceeds the pruning cutoff skip the distance kernel.
// Discords are byte-identical to RRAStatsCtx; DistCalls only drops (the
// skipped comparisons are counted in Result.Pruned). When p cannot drive
// the filter (word does not pack, non-default norm threshold) the search
// silently runs unfiltered.
func RRAStatsCodedCtx(ctx context.Context, st *Stats, rs *grammar.RuleSet, k int, seed int64, p sax.Params) (Result, error) {
	cands := Candidates(rs)
	return rraSearchPruned(ctx, st, cands, k, seed, Tuning{}, newCandidatePruner(st.ts, cands, p))
}

// rraOrders bundles the seeded heuristic orderings shared by the serial
// and parallel searches: outer visiting order, same-rule occurrence lists,
// and the shared random inner order. Deriving them identically from the
// seed is what keeps the two search modes byte-identical.
type rraOrders struct {
	outer  []int
	byRule map[int][]int
	inner  []int
}

func newRRAOrders(cands []Candidate, seed int64, tuning Tuning) rraOrders {
	rng := rand.New(rand.NewSource(seed))
	o := rraOrders{
		outer: orderOuter(len(cands), func(i int) int { return cands[i].Freq }, rng, tuning),
	}
	o.byRule = make(map[int][]int)
	if !tuning.NoSameGroupFirst {
		for i, c := range cands {
			o.byRule[c.RuleID] = append(o.byRule[c.RuleID], i)
		}
	}
	o.inner = rng.Perm(len(cands)) // shared random order for the second phase
	return o
}

func rraSearchTuned(ctx context.Context, st *Stats, cands []Candidate, k int, seed int64, tuning Tuning) (Result, error) {
	return rraSearchPruned(ctx, st, cands, k, seed, tuning, nil)
}

func rraSearchPruned(ctx context.Context, st *Stats, cands []Candidate, k int, seed int64, tuning Tuning, cp *codePruner) (Result, error) {
	ord := newRRAOrders(cands, seed, tuning)
	m := len(st.ts)
	e := st.viewCtx(ctx)
	e.refKernel = tuning.ReferenceKernel
	kw := workspace.GetKernel()
	defer workspace.PutKernel(kw)
	e.scratch = kw
	e.prune = cp
	var res Result
	for found := 0; found < k; found++ {
		best := Discord{Dist: -1, RuleID: -1, NNStart: -1}
		for _, ci := range ord.outer {
			if e.cancelled() {
				break
			}
			c := cands[ci]
			if overlapsAny(c.IV, res.Discords) {
				continue
			}
			nn, nnStart := e.rraNearest(c, ci, cands, ord.byRule[c.RuleID], ord.inner, cutoffRef{fixed: best.Dist}, m)
			if nnStart >= 0 && nn > best.Dist {
				best = Discord{Interval: c.IV, Dist: nn, NNStart: nnStart, RuleID: c.RuleID, Freq: c.Freq}
			}
		}
		if err := e.cancelCause(); err != nil {
			// The round was cut short: its best-so-far is not validated
			// against the full outer order, so only the completed rounds'
			// discords are reported.
			res.DistCalls = e.Calls()
			res.Pruned = e.Pruned()
			res.Partial = true
			return res, fmt.Errorf("discord: rra cancelled after %d of %d discords: %w", len(res.Discords), k, err)
		}
		if best.NNStart < 0 {
			break
		}
		res.Discords = append(res.Discords, best)
	}
	res.DistCalls = e.Calls()
	res.Pruned = e.Pruned()
	if len(res.Discords) == 0 {
		return res, ErrNoCandidates
	}
	return res, nil
}

// cutoffRef supplies the best-so-far pruning cutoff to the inner loop:
// either a fixed value (serial search) or a monotonically rising shared
// maximum (parallel search). A stale shared value only weakens pruning —
// it never changes which candidate wins — so both sources yield identical
// discords.
type cutoffRef struct {
	shared *atomicMax
	fixed  float64
}

func (c cutoffRef) value() float64 {
	if c.shared != nil {
		return c.shared.load()
	}
	return c.fixed
}

// rraNearest runs the RRA inner loop for candidate c (index ci): same-rule
// occurrences first, then every candidate in the shared random order. It
// returns (-Inf, -2) as soon as a distance below the best-so-far cutoff
// proves c cannot be the discord. Distances are normalized by the
// candidate's length. The candidate subsequence is pinned once — its
// normalization derived a single time into the engine's scratch buffer —
// and every occurrence comparison runs the query-pinned kernel.
func (e *engine) rraNearest(c Candidate, ci int, cands []Candidate, sameRule, inner []int, bs cutoffRef, m int) (float64, int) {
	length := c.IV.Len()
	e.pin(c.IV.Start, length)
	nn := math.Inf(1)
	nnStart := -1
	scale := float64(length)

	visit := func(qi int) bool {
		if e.cancelled() {
			return false // abandon; the caller checks e.cancelCause()
		}
		if qi == ci {
			return true
		}
		q := cands[qi].IV.Start
		if abs(c.IV.Start-q) < length {
			return true // self match (Algorithm 1 line 7)
		}
		if q+length > m {
			return true // cannot extract len(p) points at q
		}
		bestSoFar := bs.value()
		cutoff := nn
		if bestSoFar > cutoff {
			cutoff = bestSoFar
		}
		// MINDIST pre-filter: when the lower bound between the two packed
		// word codes already exceeds the raw-scale cutoff, the kernel call
		// can only confirm "neither an nn update nor an abandon" — skip it.
		if e.prune != nil && e.prune.skip(ci, qi, length, cutoff*scale) {
			e.pruned++
			return true
		}
		d := e.pinnedDist(q, cutoff*scale) / scale
		if d < bestSoFar {
			return false
		}
		if d < nn {
			nn = d
			nnStart = q
		}
		return true
	}

	visited := make(map[int]bool, len(sameRule))
	for _, qi := range sameRule {
		visited[qi] = true
		if !visit(qi) {
			return math.Inf(-1), -2
		}
	}
	for _, qi := range inner {
		if visited[qi] {
			continue
		}
		if !visit(qi) {
			return math.Inf(-1), -2
		}
	}
	return nn, nnStart
}

// NearestNonSelf computes, for every candidate interval, the true
// length-normalized distance to its nearest non-self match (no best-so-far
// break). It is the data behind the bottom panels of Figures 2 and 3 —
// a vertical line at each rule-corresponding subsequence whose height is
// the distance.
func NearestNonSelf(ts []float64, rs *grammar.RuleSet) []Discord {
	return NearestNonSelfParallelStats(NewStats(ts), rs, 1)
}
