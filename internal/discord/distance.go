// Package discord implements the distance-based anomaly detectors the
// paper evaluates: the brute-force discord search, the HOTSAX heuristic
// (Keogh, Lin, Fu 2005), and the paper's contribution RRA (Rare Rule
// Anomaly), which searches over variable-length grammar-rule intervals.
//
// All three share one early-abandoning z-normalized Euclidean distance
// kernel whose invocation count is the efficiency metric of the paper's
// Table 1 ("number of calls to the distance function").
package discord

import (
	"math"

	"grammarviz/internal/timeseries"
)

// engine provides O(1) mean/std for any subsequence via prefix sums, plus
// the early-abandoning distance kernel and its call counter.
type engine struct {
	ts     []float64
	sum    []float64 // sum[i] = ts[0] + ... + ts[i-1]
	sumSq  []float64
	calls  int64
	thresh float64 // flat-subsequence std guard
}

func newEngine(ts []float64) *engine {
	e := &engine{
		ts:     ts,
		sum:    make([]float64, len(ts)+1),
		sumSq:  make([]float64, len(ts)+1),
		thresh: timeseries.DefaultNormThreshold,
	}
	for i, v := range ts {
		e.sum[i+1] = e.sum[i] + v
		e.sumSq[i+1] = e.sumSq[i] + v*v
	}
	return e
}

// meanInvStd returns the mean and the inverse standard deviation of
// ts[start:start+length]. For near-flat subsequences the inverse std is 0,
// which makes z-normalized values plain mean offsets (all zero) — matching
// timeseries.ZNormalize's flat guard.
func (e *engine) meanInvStd(start, length int) (mean, invStd float64) {
	n := float64(length)
	mean = (e.sum[start+length] - e.sum[start]) / n
	variance := (e.sumSq[start+length]-e.sumSq[start])/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	std := math.Sqrt(variance)
	if std <= e.thresh {
		return mean, 0
	}
	return mean, 1 / std
}

// dist computes the Euclidean distance between the z-normalized
// subsequences ts[p:p+length] and ts[q:q+length], abandoning early when
// the running distance exceeds cutoff (pass +Inf to disable). Every call
// increments the kernel counter regardless of abandonment — the Table 1
// accounting convention. An abandoned computation returns +Inf.
func (e *engine) dist(p, q, length int, cutoff float64) float64 {
	e.calls++
	mp, ip := e.meanInvStd(p, length)
	mq, iq := e.meanInvStd(q, length)
	limit := math.Inf(1)
	if !math.IsInf(cutoff, 1) {
		limit = cutoff * cutoff
	}
	var sum float64
	a := e.ts[p : p+length]
	b := e.ts[q : q+length]
	for i := 0; i < length; i++ {
		d := (a[i]-mp)*ip - (b[i]-mq)*iq
		sum += d * d
		if sum > limit {
			return math.Inf(1)
		}
	}
	return math.Sqrt(sum)
}

// Calls returns the number of distance-kernel invocations so far.
func (e *engine) Calls() int64 { return e.calls }
