// Package discord implements the distance-based anomaly detectors the
// paper evaluates: the brute-force discord search, the HOTSAX heuristic
// (Keogh, Lin, Fu 2005), and the paper's contribution RRA (Rare Rule
// Anomaly), which searches over variable-length grammar-rule intervals.
//
// All three share one early-abandoning z-normalized Euclidean distance
// kernel whose invocation count is the efficiency metric of the paper's
// Table 1 ("number of calls to the distance function").
package discord

import (
	"context"
	"math"

	"grammarviz/internal/timeseries"
	"grammarviz/internal/workspace"
)

// Stats is the immutable per-series precomputation behind the distance
// kernel: prefix sums that give O(1) mean/std for any subsequence. Build
// it once per series with NewStats and share it freely — it is safe for
// concurrent readers, so parallel searches and repeated queries stop
// paying the O(n) rebuild per worker or per call.
type Stats struct {
	ts     []float64
	sum    []float64 // sum[i] = ts[0] + ... + ts[i-1]
	sumSq  []float64
	thresh float64 // flat-subsequence std guard
}

// NewStats builds the prefix-sum statistics of ts. The series is retained
// by reference and must not be modified afterwards.
func NewStats(ts []float64) *Stats {
	s := &Stats{
		ts:     ts,
		sum:    make([]float64, len(ts)+1),
		sumSq:  make([]float64, len(ts)+1),
		thresh: timeseries.DefaultNormThreshold,
	}
	for i, v := range ts {
		s.sum[i+1] = s.sum[i] + v
		s.sumSq[i+1] = s.sumSq[i] + v*v
	}
	return s
}

// Series returns the underlying series (shared, do not modify).
func (s *Stats) Series() []float64 { return s.ts }

// meanInvStd returns the mean and the inverse standard deviation of
// ts[start:start+length]. For near-flat subsequences the inverse std is 0,
// which makes z-normalized values plain mean offsets (all zero) — matching
// timeseries.ZNormalize's flat guard.
func (s *Stats) meanInvStd(start, length int) (mean, invStd float64) {
	n := float64(length)
	mean = (s.sum[start+length] - s.sum[start]) / n
	variance := (s.sumSq[start+length]-s.sumSq[start])/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	std := math.Sqrt(variance)
	if std <= s.thresh {
		return mean, 0
	}
	return mean, 1 / std
}

// engine is one worker's view of a Stats: the shared prefix sums plus a
// private distance-call counter and the search's cancellation state.
// Views are cheap — creating one allocates nothing beyond the struct — so
// every goroutine of a parallel search gets its own and the counters are
// summed when the workers join.
type engine struct {
	st    *Stats
	calls int64

	// prune, when non-nil, is the MINDIST code pre-filter (see
	// codeprune.go): inner loops consult it before paying for a kernel
	// call, and pruned counts the comparisons it skipped. Skipped
	// comparisons do not increment calls — the point of the filter is to
	// lower the Table 1 metric.
	prune  *codePruner
	pruned int64

	// scratch backs the pinned query's z-normalized buffer. Searches
	// attach a pooled workspace.Kernel for the duration of the search so
	// the steady state allocates nothing; an engine used without one
	// (tests, ad-hoc callers) lazily creates a private un-pooled scratch
	// on the first pin.
	scratch *workspace.Kernel

	// Pinned-query state (see pin): the candidate subsequence normalized
	// once, plus the memoized squared cutoff so the per-neighbor kernel
	// pays neither the query normalization nor the cutoff squaring.
	qnorm    []float64
	qfill    int     // qnorm[:qfill] is filled; the rest is extended lazily
	pinStart int
	pinMean  float64 // pinned query moments, for lazy qnorm extension
	pinInv   float64
	pinCut   float64 // last cutoff seen by pinnedDist
	pinLimit float64 // pinCut * pinCut

	// Neighbor-moment memo (see pinnedDist): mean and inverse std of
	// ts[q:q+momLen] per start offset, stamped valid lazily on first
	// touch. meanInvStd pays a sqrt and two divides; one-vs-many searches
	// revisit the same neighbors across candidates, so after the first
	// scan the q-side normalization is three loads. The tables live in
	// the pooled scratch and are invalidated in O(1) (epoch bump) when
	// the pinned length changes.
	momMean  []float64
	momInv   []float64
	momStamp []uint32
	momEpoch uint32
	momLen   int

	// refKernel routes every kernel call through the retained per-element
	// reference implementation (the exactness oracle the equivalence
	// tests and the fuzz target compare against). Never set on the
	// serving path.
	refKernel bool

	ctx   context.Context // nil when the context can never be cancelled
	err   error           // sticky ctx error once observed
	polls int             // countdown to the next ctx poll
}

// cancelPollInterval is how many cancelled() checks pass between two
// actual context polls. Every hot search loop calls cancelled() at least
// once per candidate or per distance call, so cancel-to-return latency is
// bounded by cancelPollInterval loop iterations plus one distance
// computation.
const cancelPollInterval = 256

func newEngine(ts []float64) *engine { return &engine{st: NewStats(ts)} }

func (s *Stats) view() *engine { return &engine{st: s} }

// viewCtx is view with cooperative cancellation: the engine polls ctx
// every cancelPollInterval cancelled() calls. A context that can never be
// cancelled (Done() == nil, e.g. context.Background) disables polling
// entirely, so the non-cancellable path pays one nil check per candidate.
func (s *Stats) viewCtx(ctx context.Context) *engine {
	e := &engine{st: s}
	if ctx != nil && ctx.Done() != nil {
		e.ctx = ctx
		e.polls = cancelPollInterval
		// An already-cancelled context is observed before any work: short
		// searches would otherwise never accumulate enough cancelled()
		// calls to reach the first scheduled poll.
		e.err = ctx.Err()
	}
	return e
}

// cancelled reports whether the engine's context has been cancelled,
// polling it at bounded intervals. Once cancelled it stays cancelled; the
// observed error is kept in e.err. It never alters search results — a
// search that observes cancellation abandons work, it does not change what
// completed work computed.
func (e *engine) cancelled() bool {
	if e.ctx == nil {
		return false
	}
	if e.err != nil {
		return true
	}
	e.polls--
	if e.polls > 0 {
		return false
	}
	e.polls = cancelPollInterval
	if err := e.ctx.Err(); err != nil {
		e.err = err
		return true
	}
	return false
}

// cancelCause returns the cancellation error the engine observed during
// the search, or nil. A search that ran to completion without observing
// cancellation keeps its (complete, exact) result even if the context was
// cancelled concurrently — completing is always acceptable.
func (e *engine) cancelCause() error { return e.err }

func (e *engine) meanInvStd(start, length int) (mean, invStd float64) {
	return e.st.meanInvStd(start, length)
}

// kernelBlock is the early-abandon check stride of the blocked kernels
// past the first block: the monotone running sum of squares is compared
// against the cutoff once per kernelBlock elements instead of once per
// element. Within the first block the check stays per-element — the
// one-vs-many scans run with tight best-so-far cutoffs that abandon most
// calls within a few elements, where a block-granular check would pay for
// up to kernelBlock-1 elements the reference never touches.
const kernelBlock = 16

// distReference is the retained per-element kernel: normalization derived
// inline for both subsequences, the cutoff squared on every call, and the
// abandonment check after every element — exactly the shape the blocked
// and pinned kernels must reproduce bit for bit. It is the oracle of the
// equivalence property tests and FuzzDistKernel, and the searches run on
// it when Tuning.ReferenceKernel is set. It does not touch the call
// counter; the counting entry points do.
func (e *engine) distReference(p, q, length int, cutoff float64) float64 {
	mp, ip := e.st.meanInvStd(p, length)
	mq, iq := e.st.meanInvStd(q, length)
	limit := math.Inf(1)
	if !math.IsInf(cutoff, 1) {
		limit = cutoff * cutoff
	}
	var sum float64
	a := e.st.ts[p : p+length]
	b := e.st.ts[q : q+length]
	for i := 0; i < length; i++ {
		d := (a[i]-mp)*ip - (b[i]-mq)*iq
		sum += d * d
		if sum > limit {
			return math.Inf(1)
		}
	}
	return math.Sqrt(sum)
}

// dist computes the Euclidean distance between the z-normalized
// subsequences ts[p:p+length] and ts[q:q+length], abandoning early when
// the running distance exceeds cutoff (pass +Inf to disable). Every call
// increments the kernel counter regardless of abandonment — the Table 1
// accounting convention. An abandoned computation returns +Inf.
//
// The loop is blocked: the running sum of squares is monotone
// (non-decreasing — every added term is a square), so ANY schedule of
// prefix-vs-limit checks abandons exactly the calls the per-element
// reference abandons: a prefix exceeds the limit iff the total does. The
// schedule here is hybrid — per-element through the first block (tight
// cutoffs abandon there, and a coarser check would compute elements the
// reference never touches), then branch-free kernelBlock runs with one
// check per boundary, then the tail. The accumulator and its FP operation
// order are identical to distReference, so accepted results are
// bit-identical too. The cutoff is squared unconditionally — (+Inf)² is
// +Inf, so the disabled case needs no IsInf branch (and a negative or NaN
// cutoff squares to the same limit the reference derives).
//
//gvad:noalloc
func (e *engine) dist(p, q, length int, cutoff float64) float64 {
	e.calls++
	if e.refKernel {
		return e.distReference(p, q, length, cutoff)
	}
	mp, ip := e.st.meanInvStd(p, length)
	mq, iq := e.st.meanInvStd(q, length)
	limit := cutoff * cutoff
	var sum float64
	a := e.st.ts[p : p+length : p+length]
	b := e.st.ts[q : q+length : q+length]
	head := length
	if head > kernelBlock {
		head = kernelBlock
	}
	for i := 0; i < head; i++ {
		d := (a[i]-mp)*ip - (b[i]-mq)*iq
		sum += d * d
		if sum > limit {
			return math.Inf(1)
		}
	}
	i := head
	for ; i+kernelBlock <= length; i += kernelBlock {
		aa := a[i : i+kernelBlock : i+kernelBlock]
		bb := b[i : i+kernelBlock : i+kernelBlock]
		for j := 0; j < kernelBlock; j++ {
			d := (aa[j]-mp)*ip - (bb[j]-mq)*iq
			sum += d * d
		}
		if sum > limit {
			return math.Inf(1)
		}
	}
	for ; i < length; i++ {
		d := (a[i]-mp)*ip - (b[i]-mq)*iq
		sum += d * d
	}
	if sum > limit {
		return math.Inf(1)
	}
	return math.Sqrt(sum)
}

// pin fixes ts[start:start+length] as the query of the subsequent
// pinnedDist calls: its mean and inverse std are derived once and its
// z-normalized values written into the pooled scratch buffer, so each
// neighbor comparison loads precomputed query values instead of
// re-deriving them per call. (v-mp)*ip here is the same FP expression
// the reference kernel evaluates inline, so the precomputation is
// bit-invisible. One engine holds one pin at a time; re-pinning reuses
// the buffer.
//
// Only the first block is normalized eagerly. Early-abandoning scans may
// never look past it — RRA pins variable-length rule intervals whose
// scans are short, where an O(length) eager fill costs more than the
// whole scan — so the buffer is extended block-by-block from pinnedDist,
// reaching exactly as deep as the deepest neighbor comparison.
//
//gvad:noalloc
func (e *engine) pin(start, length int) {
	if e.scratch == nil {
		// Un-pooled fallback for engines used outside a search entry
		// point; searches attach a pooled Kernel before the first pin.
		e.scratch = new(workspace.Kernel)
	}
	buf := e.scratch.QNormScratch(length)
	mp, ip := e.st.meanInvStd(start, length)
	a := e.st.ts[start : start+length]
	head := length
	if head > kernelBlock {
		head = kernelBlock
	}
	for i := 0; i < head; i++ {
		buf[i] = (a[i] - mp) * ip
	}
	e.qnorm = buf
	e.qfill = head
	e.pinMean, e.pinInv = mp, ip
	e.pinStart = start
	if e.momLen != length || e.momStamp == nil {
		e.momMean, e.momInv, e.momStamp = e.scratch.MomentScratch(len(e.st.ts))
		e.momEpoch = e.scratch.Epoch
		e.momLen = length
	}
	// NaN sentinel: no real cutoff compares equal to it, so the first
	// pinnedDist after a pin always derives its squared limit fresh.
	e.pinCut = math.NaN()
	e.pinLimit = math.NaN()
}

// pinnedDist is dist with the query pinned by the last pin call: the
// query's normalization is loaded from the scratch buffer, only the
// neighbor's mean/invStd is derived, and the squared cutoff is memoized
// across calls (the one-vs-many loops change their cutoff only when the
// running nearest neighbor improves, so most calls reuse the square).
// Same blocked early-abandon loop, same counting convention, bit-identical
// results to dist and distReference.
//
//gvad:noalloc
func (e *engine) pinnedDist(q int, cutoff float64) float64 {
	length := len(e.qnorm)
	e.calls++
	if e.refKernel {
		return e.distReference(e.pinStart, q, length, cutoff)
	}
	if cutoff != e.pinCut {
		e.pinCut = cutoff
		e.pinLimit = cutoff * cutoff
	}
	limit := e.pinLimit
	var mq, iq float64
	if e.momStamp[q] == e.momEpoch {
		mq, iq = e.momMean[q], e.momInv[q]
	} else {
		// First touch of this neighbor at the pinned length: derive its
		// moments through the same expression every kernel uses (so the
		// stored values are bit-identical to an inline computation) and
		// stamp the entry valid for the current epoch.
		mq, iq = e.st.meanInvStd(q, length)
		e.momMean[q], e.momInv[q] = mq, iq
		e.momStamp[q] = e.momEpoch
	}
	qn := e.qnorm
	b := e.st.ts[q : q+length : q+length]
	var sum float64
	head := length
	if head > kernelBlock {
		head = kernelBlock
	}
	for i := 0; i < head; i++ {
		d := qn[i] - (b[i]-mq)*iq
		sum += d * d
		if sum > limit {
			return math.Inf(1)
		}
	}
	i := head
	for ; i+kernelBlock <= length; i += kernelBlock {
		if i+kernelBlock > e.qfill {
			e.extendQNorm(i + kernelBlock)
		}
		qq := qn[i : i+kernelBlock : i+kernelBlock]
		bb := b[i : i+kernelBlock : i+kernelBlock]
		for j := 0; j < kernelBlock; j++ {
			d := qq[j] - (bb[j]-mq)*iq
			sum += d * d
		}
		if sum > limit {
			return math.Inf(1)
		}
	}
	if i < length {
		if length > e.qfill {
			e.extendQNorm(length)
		}
		for ; i < length; i++ {
			d := qn[i] - (b[i]-mq)*iq
			sum += d * d
		}
	}
	if sum > limit {
		return math.Inf(1)
	}
	return math.Sqrt(sum)
}

// extendQNorm grows the pinned query's normalized prefix to at least n
// elements — the lazy half of pin, reached only when a scan outlives the
// prefix filled so far. Same expression, same bits.
//
//gvad:noalloc
func (e *engine) extendQNorm(n int) {
	mp, ip := e.pinMean, e.pinInv
	a := e.st.ts[e.pinStart : e.pinStart+len(e.qnorm)]
	buf := e.qnorm
	for i := e.qfill; i < n; i++ {
		buf[i] = (a[i] - mp) * ip
	}
	e.qfill = n
}

// Calls returns the number of distance-kernel invocations so far.
func (e *engine) Calls() int64 { return e.calls }

// Pruned returns the number of comparisons the MINDIST code pre-filter
// skipped before they reached the kernel.
func (e *engine) Pruned() int64 { return e.pruned }
