// Package discord implements the distance-based anomaly detectors the
// paper evaluates: the brute-force discord search, the HOTSAX heuristic
// (Keogh, Lin, Fu 2005), and the paper's contribution RRA (Rare Rule
// Anomaly), which searches over variable-length grammar-rule intervals.
//
// All three share one early-abandoning z-normalized Euclidean distance
// kernel whose invocation count is the efficiency metric of the paper's
// Table 1 ("number of calls to the distance function").
package discord

import (
	"context"
	"math"

	"grammarviz/internal/timeseries"
)

// Stats is the immutable per-series precomputation behind the distance
// kernel: prefix sums that give O(1) mean/std for any subsequence. Build
// it once per series with NewStats and share it freely — it is safe for
// concurrent readers, so parallel searches and repeated queries stop
// paying the O(n) rebuild per worker or per call.
type Stats struct {
	ts     []float64
	sum    []float64 // sum[i] = ts[0] + ... + ts[i-1]
	sumSq  []float64
	thresh float64 // flat-subsequence std guard
}

// NewStats builds the prefix-sum statistics of ts. The series is retained
// by reference and must not be modified afterwards.
func NewStats(ts []float64) *Stats {
	s := &Stats{
		ts:     ts,
		sum:    make([]float64, len(ts)+1),
		sumSq:  make([]float64, len(ts)+1),
		thresh: timeseries.DefaultNormThreshold,
	}
	for i, v := range ts {
		s.sum[i+1] = s.sum[i] + v
		s.sumSq[i+1] = s.sumSq[i] + v*v
	}
	return s
}

// Series returns the underlying series (shared, do not modify).
func (s *Stats) Series() []float64 { return s.ts }

// meanInvStd returns the mean and the inverse standard deviation of
// ts[start:start+length]. For near-flat subsequences the inverse std is 0,
// which makes z-normalized values plain mean offsets (all zero) — matching
// timeseries.ZNormalize's flat guard.
func (s *Stats) meanInvStd(start, length int) (mean, invStd float64) {
	n := float64(length)
	mean = (s.sum[start+length] - s.sum[start]) / n
	variance := (s.sumSq[start+length]-s.sumSq[start])/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	std := math.Sqrt(variance)
	if std <= s.thresh {
		return mean, 0
	}
	return mean, 1 / std
}

// engine is one worker's view of a Stats: the shared prefix sums plus a
// private distance-call counter and the search's cancellation state.
// Views are cheap — creating one allocates nothing beyond the struct — so
// every goroutine of a parallel search gets its own and the counters are
// summed when the workers join.
type engine struct {
	st    *Stats
	calls int64

	// prune, when non-nil, is the MINDIST code pre-filter (see
	// codeprune.go): inner loops consult it before paying for a kernel
	// call, and pruned counts the comparisons it skipped. Skipped
	// comparisons do not increment calls — the point of the filter is to
	// lower the Table 1 metric.
	prune  *codePruner
	pruned int64

	ctx   context.Context // nil when the context can never be cancelled
	err   error           // sticky ctx error once observed
	polls int             // countdown to the next ctx poll
}

// cancelPollInterval is how many cancelled() checks pass between two
// actual context polls. Every hot search loop calls cancelled() at least
// once per candidate or per distance call, so cancel-to-return latency is
// bounded by cancelPollInterval loop iterations plus one distance
// computation.
const cancelPollInterval = 256

func newEngine(ts []float64) *engine { return &engine{st: NewStats(ts)} }

func (s *Stats) view() *engine { return &engine{st: s} }

// viewCtx is view with cooperative cancellation: the engine polls ctx
// every cancelPollInterval cancelled() calls. A context that can never be
// cancelled (Done() == nil, e.g. context.Background) disables polling
// entirely, so the non-cancellable path pays one nil check per candidate.
func (s *Stats) viewCtx(ctx context.Context) *engine {
	e := &engine{st: s}
	if ctx != nil && ctx.Done() != nil {
		e.ctx = ctx
		e.polls = cancelPollInterval
		// An already-cancelled context is observed before any work: short
		// searches would otherwise never accumulate enough cancelled()
		// calls to reach the first scheduled poll.
		e.err = ctx.Err()
	}
	return e
}

// cancelled reports whether the engine's context has been cancelled,
// polling it at bounded intervals. Once cancelled it stays cancelled; the
// observed error is kept in e.err. It never alters search results — a
// search that observes cancellation abandons work, it does not change what
// completed work computed.
func (e *engine) cancelled() bool {
	if e.ctx == nil {
		return false
	}
	if e.err != nil {
		return true
	}
	e.polls--
	if e.polls > 0 {
		return false
	}
	e.polls = cancelPollInterval
	if err := e.ctx.Err(); err != nil {
		e.err = err
		return true
	}
	return false
}

// cancelCause returns the cancellation error the engine observed during
// the search, or nil. A search that ran to completion without observing
// cancellation keeps its (complete, exact) result even if the context was
// cancelled concurrently — completing is always acceptable.
func (e *engine) cancelCause() error { return e.err }

func (e *engine) meanInvStd(start, length int) (mean, invStd float64) {
	return e.st.meanInvStd(start, length)
}

// dist computes the Euclidean distance between the z-normalized
// subsequences ts[p:p+length] and ts[q:q+length], abandoning early when
// the running distance exceeds cutoff (pass +Inf to disable). Every call
// increments the kernel counter regardless of abandonment — the Table 1
// accounting convention. An abandoned computation returns +Inf.
func (e *engine) dist(p, q, length int, cutoff float64) float64 {
	e.calls++
	mp, ip := e.st.meanInvStd(p, length)
	mq, iq := e.st.meanInvStd(q, length)
	limit := math.Inf(1)
	if !math.IsInf(cutoff, 1) {
		limit = cutoff * cutoff
	}
	var sum float64
	a := e.st.ts[p : p+length]
	b := e.st.ts[q : q+length]
	for i := 0; i < length; i++ {
		d := (a[i]-mp)*ip - (b[i]-mq)*iq
		sum += d * d
		if sum > limit {
			return math.Inf(1)
		}
	}
	return math.Sqrt(sum)
}

// Calls returns the number of distance-kernel invocations so far.
func (e *engine) Calls() int64 { return e.calls }

// Pruned returns the number of comparisons the MINDIST code pre-filter
// skipped before they reached the kernel.
func (e *engine) Pruned() int64 { return e.pruned }
