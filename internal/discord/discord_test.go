package discord

import (
	"math"
	"math/rand"
	"testing"

	"grammarviz/internal/grammar"
	"grammarviz/internal/sax"
	"grammarviz/internal/sequitur"
	"grammarviz/internal/timeseries"
)

// anomalousSine builds a sine series with one structurally distorted cycle
// at [at, at+length).
func anomalousSine(n int, period float64, at, length int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	ts := make([]float64, n)
	for i := range ts {
		ts[i] = math.Sin(2*math.Pi*float64(i)/period) + rng.NormFloat64()*0.02
	}
	for i := at; i < at+length && i < n; i++ {
		// Double-frequency burst: same amplitude, different shape.
		ts[i] = math.Sin(4*math.Pi*float64(i)/period) + rng.NormFloat64()*0.02
	}
	return ts
}

func ruleSetFor(t *testing.T, ts []float64, p sax.Params) *grammar.RuleSet {
	t.Helper()
	d, err := sax.Discretize(ts, p, sax.ReductionExact)
	if err != nil {
		t.Fatalf("Discretize: %v", err)
	}
	rs, err := grammar.Build(d, sequitur.Induce(d.Strings()))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return rs
}

func TestEngineDistance(t *testing.T) {
	ts := []float64{0, 1, 0, -1, 0, 1, 0, -1, 5, 5, 5, 5}
	e := newEngine(ts)
	// Identical shapes at p=0 and q=4 → distance 0.
	if d := e.dist(0, 4, 4, math.Inf(1)); d > 1e-9 {
		t.Errorf("identical shapes dist = %v", d)
	}
	if e.Calls() != 1 {
		t.Errorf("Calls = %d, want 1", e.Calls())
	}
	// Early abandoning returns +Inf and still counts.
	d := e.dist(0, 8, 4, 0.001)
	if !math.IsInf(d, 1) {
		t.Errorf("abandoned dist = %v, want +Inf", d)
	}
	if e.Calls() != 2 {
		t.Errorf("Calls = %d, want 2", e.Calls())
	}
}

func TestEngineDistMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ts := make([]float64, 300)
	for i := range ts {
		ts[i] = rng.NormFloat64()
	}
	e := newEngine(ts)
	for trial := 0; trial < 200; trial++ {
		length := rng.Intn(50) + 2
		p := rng.Intn(len(ts) - length)
		q := rng.Intn(len(ts) - length)
		got := e.dist(p, q, length, math.Inf(1))
		pa, _ := timeseries.Subsequence(ts, p, length)
		qa, _ := timeseries.Subsequence(ts, q, length)
		za := timeseries.ZNormalize(pa, timeseries.DefaultNormThreshold)
		zb := timeseries.ZNormalize(qa, timeseries.DefaultNormThreshold)
		var sum float64
		for i := range za {
			d := za[i] - zb[i]
			sum += d * d
		}
		want := math.Sqrt(sum)
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("dist(%d,%d,%d) = %v, want %v", p, q, length, got, want)
		}
	}
}

func TestBruteForceFindsPlantedAnomaly(t *testing.T) {
	at, length := 600, 60
	ts := anomalousSine(1200, 60, at, length, 1)
	res, err := BruteForce(ts, 60, 1)
	if err != nil {
		t.Fatalf("BruteForce: %v", err)
	}
	d := res.Discords[0]
	planted := timeseries.Interval{Start: at - 30, End: at + length + 30}
	if !d.Interval.Overlaps(planted) {
		t.Errorf("discord %v does not overlap planted anomaly %v", d.Interval, planted)
	}
	if res.DistCalls != BruteForceCallCount(1200, 60) {
		t.Errorf("DistCalls = %d, analytic = %d", res.DistCalls, BruteForceCallCount(1200, 60))
	}
}

func TestBruteForceErrors(t *testing.T) {
	if _, err := BruteForce([]float64{1, 2, 3}, 10, 1); err == nil {
		t.Error("oversize window should error")
	}
	if _, err := BruteForce([]float64{1, 2, 3}, 0, 1); err == nil {
		t.Error("zero window should error")
	}
	// Series of exactly one window: no non-self match exists.
	if _, err := BruteForce(make([]float64, 10), 10, 1); err != ErrNoCandidates {
		t.Errorf("err = %v, want ErrNoCandidates", err)
	}
}

func TestBruteForceCallCount(t *testing.T) {
	// Tiny case verified by hand: m=5, n=2 → 4 candidates; candidate 0
	// matches q in {2,3}, candidate 1 matches {3}, 2 matches {0},
	// 3 matches {0,1}. Total 6.
	if got := BruteForceCallCount(5, 2); got != 6 {
		t.Errorf("BruteForceCallCount(5,2) = %d, want 6", got)
	}
	if got := BruteForceCallCount(3, 5); got != 0 {
		t.Errorf("BruteForceCallCount(3,5) = %d, want 0", got)
	}
	// Cross-check against an actual run.
	ts := anomalousSine(300, 30, 150, 30, 2)
	res, err := BruteForce(ts, 30, 1)
	if err != nil {
		t.Fatalf("BruteForce: %v", err)
	}
	if res.DistCalls != BruteForceCallCount(300, 30) {
		t.Errorf("run = %d calls, analytic = %d", res.DistCalls, BruteForceCallCount(300, 30))
	}
}

func TestHOTSAXAgreesWithBruteForce(t *testing.T) {
	// HOTSAX is exact: same discord position and distance as brute force.
	for seed := int64(1); seed <= 3; seed++ {
		ts := anomalousSine(900, 45, 500, 45, seed)
		bf, err := BruteForce(ts, 45, 1)
		if err != nil {
			t.Fatalf("BruteForce: %v", err)
		}
		hs, err := HOTSAX(ts, sax.Params{Window: 45, PAA: 3, Alphabet: 3}, 1, seed)
		if err != nil {
			t.Fatalf("HOTSAX: %v", err)
		}
		if math.Abs(bf.Discords[0].Dist-hs.Discords[0].Dist) > 1e-9 {
			t.Errorf("seed %d: HOTSAX dist %v != brute force %v", seed, hs.Discords[0].Dist, bf.Discords[0].Dist)
		}
		if bf.Discords[0].Interval != hs.Discords[0].Interval {
			// Equal-distance ties can differ in position; require equal distance.
			t.Logf("seed %d: positions differ (bf %v, hs %v) with equal distance", seed,
				bf.Discords[0].Interval, hs.Discords[0].Interval)
		}
	}
}

func TestHOTSAXFewerCallsThanBruteForce(t *testing.T) {
	ts := anomalousSine(2000, 50, 1200, 50, 7)
	bf := BruteForceCallCount(2000, 50)
	hs, err := HOTSAX(ts, sax.Params{Window: 50, PAA: 4, Alphabet: 4}, 1, 7)
	if err != nil {
		t.Fatalf("HOTSAX: %v", err)
	}
	if hs.DistCalls >= bf/10 {
		t.Errorf("HOTSAX made %d calls, brute force %d; expected >=10x reduction", hs.DistCalls, bf)
	}
}

func TestHOTSAXErrors(t *testing.T) {
	if _, err := HOTSAX([]float64{1, 2}, sax.Params{Window: 10, PAA: 4, Alphabet: 4}, 1, 1); err == nil {
		t.Error("oversize window should error")
	}
}

func TestRRAFindsPlantedAnomaly(t *testing.T) {
	at, length := 600, 60
	ts := anomalousSine(1200, 60, at, length, 3)
	rs := ruleSetFor(t, ts, sax.Params{Window: 60, PAA: 6, Alphabet: 4})
	res, err := RRA(ts, rs, 1, 3)
	if err != nil {
		t.Fatalf("RRA: %v", err)
	}
	d := res.Discords[0]
	planted := timeseries.Interval{Start: at - 60, End: at + length + 60}
	if !d.Interval.Overlaps(planted) {
		t.Errorf("RRA discord %v does not overlap planted anomaly %v", d.Interval, planted)
	}
}

func TestRRAFewerCallsThanHOTSAX(t *testing.T) {
	ts := anomalousSine(3000, 60, 1500, 60, 11)
	p := sax.Params{Window: 60, PAA: 6, Alphabet: 4}
	hs, err := HOTSAX(ts, p, 1, 11)
	if err != nil {
		t.Fatalf("HOTSAX: %v", err)
	}
	rs := ruleSetFor(t, ts, p)
	rr, err := RRA(ts, rs, 1, 11)
	if err != nil {
		t.Fatalf("RRA: %v", err)
	}
	if rr.DistCalls >= hs.DistCalls {
		t.Errorf("RRA calls %d >= HOTSAX calls %d; Table 1 shape violated", rr.DistCalls, hs.DistCalls)
	}
}

func TestRRATopKNonOverlapping(t *testing.T) {
	ts := anomalousSine(2400, 60, 600, 60, 5)
	// Second planted anomaly.
	for i := 1800; i < 1860; i++ {
		ts[i] = 0.1
	}
	rs := ruleSetFor(t, ts, sax.Params{Window: 60, PAA: 6, Alphabet: 4})
	res, err := RRA(ts, rs, 3, 5)
	if err != nil {
		t.Fatalf("RRA: %v", err)
	}
	if len(res.Discords) < 2 {
		t.Fatalf("found %d discords, want >= 2", len(res.Discords))
	}
	for i := 0; i < len(res.Discords); i++ {
		for j := i + 1; j < len(res.Discords); j++ {
			if res.Discords[i].Interval.Overlaps(res.Discords[j].Interval) {
				t.Errorf("discords %d and %d overlap: %v %v", i, j,
					res.Discords[i].Interval, res.Discords[j].Interval)
			}
		}
	}
	// Ranked best-first by normalized distance.
	for i := 1; i < len(res.Discords); i++ {
		if res.Discords[i].Dist > res.Discords[i-1].Dist+1e-12 {
			t.Errorf("discords not ranked: %v then %v", res.Discords[i-1].Dist, res.Discords[i].Dist)
		}
	}
}

func TestRRADeterministicForSeed(t *testing.T) {
	ts := anomalousSine(1500, 50, 700, 50, 9)
	rs := ruleSetFor(t, ts, sax.Params{Window: 50, PAA: 5, Alphabet: 4})
	a, err := RRA(ts, rs, 2, 42)
	if err != nil {
		t.Fatalf("RRA: %v", err)
	}
	b, err := RRA(ts, rs, 2, 42)
	if err != nil {
		t.Fatalf("RRA: %v", err)
	}
	if a.DistCalls != b.DistCalls || len(a.Discords) != len(b.Discords) {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
	for i := range a.Discords {
		if a.Discords[i] != b.Discords[i] {
			t.Errorf("discord %d differs: %+v vs %+v", i, a.Discords[i], b.Discords[i])
		}
	}
}

func TestCandidates(t *testing.T) {
	ts := anomalousSine(1200, 60, 600, 60, 13)
	rs := ruleSetFor(t, ts, sax.Params{Window: 60, PAA: 6, Alphabet: 4})
	cands := Candidates(rs)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	nOcc := 0
	for _, rec := range rs.Records {
		for _, iv := range rec.Occurrences {
			if iv.Len() >= minCandidateLen {
				nOcc++
			}
		}
	}
	if len(cands) < nOcc {
		t.Errorf("candidates %d < rule occurrences %d", len(cands), nOcc)
	}
	for _, c := range cands {
		if !c.IV.Valid(len(ts)) {
			t.Errorf("candidate %v out of bounds", c.IV)
		}
		if c.RuleID == -1 && c.Freq != 0 {
			t.Errorf("gap candidate with freq %d", c.Freq)
		}
	}
}

func TestNearestNonSelf(t *testing.T) {
	ts := anomalousSine(1200, 60, 600, 60, 17)
	rs := ruleSetFor(t, ts, sax.Params{Window: 60, PAA: 6, Alphabet: 4})
	nns := NearestNonSelf(ts, rs)
	if len(nns) == 0 {
		t.Fatal("no NN records")
	}
	for _, d := range nns {
		if d.Dist < 0 || math.IsInf(d.Dist, 0) || math.IsNaN(d.Dist) {
			t.Errorf("bad NN distance %v for %v", d.Dist, d.Interval)
		}
		if abs(d.Interval.Start-d.NNStart) < d.Interval.Len() {
			t.Errorf("NN %d is a self match of %v", d.NNStart, d.Interval)
		}
	}
}

func TestOverlapsAny(t *testing.T) {
	found := []Discord{{Interval: timeseries.Interval{Start: 10, End: 19}}}
	if !overlapsAny(timeseries.Interval{Start: 15, End: 25}, found) {
		t.Error("overlap missed")
	}
	if overlapsAny(timeseries.Interval{Start: 20, End: 25}, found) {
		t.Error("false overlap")
	}
	if overlapsAny(timeseries.Interval{Start: 0, End: 5}, nil) {
		t.Error("empty found should not overlap")
	}
}
