package discord

import (
	"math"
	"testing"
)

// FuzzDistKernel fuzzes the kernel-equivalence contract directly: for an
// arbitrary series, arbitrary subsequence offsets/length and an arbitrary
// cutoff (including ±Inf, NaN, negative and exact-boundary values), the
// blocked kernel and the query-pinned kernel must return bit-identical
// results to the per-element reference — the abandonment → +Inf decisions
// included — and charge the same number of kernel calls.
//
// Series values are decoded from the byte stream and bounded to ±327.68:
// the library rejects non-finite inputs before any search runs, and the
// bound keeps every intermediate product finite, which is the domain on
// which the monotone-sum blocking argument is exact (DESIGN.md §15).
func FuzzDistKernel(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 250, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}, uint16(0), uint16(4), uint16(4), 1.5)
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, uint16(0), uint16(2), uint16(2), math.Inf(1))
	f.Add([]byte{255, 0, 1, 254, 3, 252, 5, 250, 7, 248, 9, 246, 11, 244, 13, 242,
		15, 240, 17, 238, 19, 236, 21, 234, 23, 232, 25, 230, 27, 228, 29, 226,
		31, 224, 33, 222}, uint16(1), uint16(9), uint16(17), 0.0)
	f.Fuzz(func(t *testing.T, data []byte, pRaw, qRaw, lenRaw uint16, cutoff float64) {
		n := len(data) / 2
		if n > 1024 {
			n = 1024
		}
		if n < 2 {
			return
		}
		ts := make([]float64, n)
		for i := range ts {
			// Signed 16-bit value scaled to ±327.68; flat runs, spikes and
			// denormal-ish steps all reachable from the byte stream.
			ts[i] = float64(int16(uint16(data[2*i])<<8|uint16(data[2*i+1]))) / 100
		}
		length := 1 + int(lenRaw)%n
		p := int(pRaw) % (n - length + 1)
		q := int(qRaw) % (n - length + 1)

		st := NewStats(ts)
		ref := st.view()
		ref.refKernel = true
		blocked := st.view()
		pinned := st.view()

		want := ref.dist(p, q, length, cutoff)
		got := blocked.dist(p, q, length, cutoff)
		if math.Float64bits(want) != math.Float64bits(got) {
			t.Fatalf("blocked dist(%d,%d,%d,cut=%v) = %v (bits %x), reference %v (bits %x)",
				p, q, length, cutoff, got, math.Float64bits(got), want, math.Float64bits(want))
		}
		pinned.pin(p, length)
		gotPinned := pinned.pinnedDist(q, cutoff)
		if math.Float64bits(want) != math.Float64bits(gotPinned) {
			t.Fatalf("pinned dist(%d,%d,%d,cut=%v) = %v (bits %x), reference %v (bits %x)",
				p, q, length, cutoff, gotPinned, math.Float64bits(gotPinned), want, math.Float64bits(want))
		}
		// Abandonment must agree with the +Inf convention: an abandoned
		// computation is +Inf on every path, never a finite value.
		if math.IsInf(want, 1) != math.IsInf(gotPinned, 1) || math.IsInf(want, 1) != math.IsInf(got, 1) {
			t.Fatalf("abandonment disagreement: ref=%v blocked=%v pinned=%v", want, got, gotPinned)
		}
		if ref.Calls() != 1 || blocked.Calls() != 1 || pinned.Calls() != 1 {
			t.Fatalf("call accounting: ref=%d blocked=%d pinned=%d, want 1 each",
				ref.Calls(), blocked.Calls(), pinned.Calls())
		}
	})
}
