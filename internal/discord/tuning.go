package discord

import (
	"context"
	"math/rand"
	"sort"

	"grammarviz/internal/grammar"
	"grammarviz/internal/sax"
)

// Tuning disables individual search heuristics, for ablation studies of
// how much each ordering contributes to the pruning (Section 4.2 explains
// both intuitions). The zero value is the full algorithm.
type Tuning struct {
	// NoRarityOrder visits outer-loop candidates in random order instead
	// of ascending rule-usage frequency.
	NoRarityOrder bool
	// NoSameGroupFirst skips the inner loop's same-rule (RRA) or
	// same-word (HOTSAX) first phase.
	NoSameGroupFirst bool
	// CodePrune enables the coded MINDIST pre-filter (see codeprune.go) in
	// the HOTSAX inner loop. Unlike the other switches it never changes
	// which discords are found — only how many kernel calls it takes — so
	// it is an optimization toggle rather than an ablation, surfaced here
	// so benchmarks can measure both sides.
	CodePrune bool
	// ReferenceKernel routes every distance computation through the
	// retained per-element kernel (normalization re-derived inline per
	// call, abandonment checked per element) instead of the blocked
	// query-pinned fast path. The two are bit-identical by construction —
	// discords, distances and call counts never move — so this switch
	// exists purely for the equivalence property tests and for measuring
	// what the fast path saves.
	ReferenceKernel bool
}

// RRATuned is RRA with ablation switches.
func RRATuned(ts []float64, rs *grammar.RuleSet, k int, seed int64, tuning Tuning) (Result, error) {
	return rraSearchTuned(context.Background(), NewStats(ts), Candidates(rs), k, seed, tuning)
}

// HOTSAXTuned is HOTSAX with ablation switches.
func HOTSAXTuned(ts []float64, p sax.Params, k int, seed int64, tuning Tuning) (Result, error) {
	return hotsaxSearch(context.Background(), NewStats(ts), p, k, seed, tuning)
}

// orderOuter produces the outer-loop visiting order: shuffled, then
// stably sorted by ascending frequency unless rarity ordering is disabled.
func orderOuter(n int, freqOf func(int) int, rng *rand.Rand, tuning Tuning) []int {
	outer := rng.Perm(n)
	if !tuning.NoRarityOrder {
		sort.SliceStable(outer, func(i, j int) bool { return freqOf(outer[i]) < freqOf(outer[j]) })
	}
	return outer
}
