// Package modes is the single source of truth for detector mode names
// and their admission weights. cmd/gva, internal/server, and the
// exhaustivemode lint pass all consume these lists: adding a mode here
// without updating every annotated switch site is a lint failure, and
// adding a mode to one consumer without adding it here cannot happen —
// there is nowhere else to declare it.
package modes

// Mode names. The serving and CLI surfaces accept different subsets; the
// constants are shared so a grep for a mode name finds every consumer.
const (
	RRA        = "rra"        // exact variable-length discord search
	BestEffort = "besteffort" // RRA degrading at the deadline (Partial/Fallback)
	Density    = "density"    // rule-density anomalies (distance-free)
	HOTSAX     = "hotsax"     // fixed-length HOTSAX baseline
	Ensemble   = "ensemble"   // parameter-free ensemble grammar induction
	Surprise   = "surprise"   // per-window surprise scores (CLI only)
	Multiscale = "multiscale" // multi-window density fusion (CLI only)
	Motifs     = "motifs"     // repeated-structure report (CLI only)
	Brute      = "brute"      // exact brute-force discords (CLI only)

	// Stream is the admission label for the incremental per-point
	// streaming path. It is not a request mode — sessions charge their
	// appends to it — but it shares the weight table.
	Stream = "stream"
)

// Default is the mode an empty request selects: the one built for a
// service, where a degraded answer beats a deadline error.
const Default = BestEffort

// Serving lists the modes accepted by POST /v1/analyze, in the order the
// validation error message cites them.
var Serving = []string{RRA, BestEffort, Density, HOTSAX, Ensemble}

// CLI lists the modes accepted by cmd/gva -mode, in the order the flag
// error message cites them.
var CLI = []string{RRA, Density, Surprise, Multiscale, Ensemble, Motifs, HOTSAX, Brute}

// Weight is the admission cost multiplier per series point: the
// distance-search modes dominate the pipeline, the distance-free density
// lookup (and the incremental streaming path) is nearly free once the
// detector exists, and HOTSAX's quadratic inner loops earn the heaviest
// weight. Ensemble is priced per member by the server, not here.
func Weight(mode string) int64 {
	switch mode {
	case Density, Stream:
		return 1
	case HOTSAX:
		return 8
	default: // rra, besteffort, and anything new until it is priced
		return 3
	}
}

// OneOf renders a mode list for an error message: "a, b, or c".
func OneOf(list []string) string {
	switch len(list) {
	case 0:
		return ""
	case 1:
		return list[0]
	}
	out := ""
	for _, m := range list[:len(list)-1] {
		out += m + ", "
	}
	return out + "or " + list[len(list)-1]
}

// Valid reports whether mode is in list.
func Valid(list []string, mode string) bool {
	for _, m := range list {
		if m == mode {
			return true
		}
	}
	return false
}
