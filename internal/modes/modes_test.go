package modes

import "testing"

func TestListsAreDistinctConstants(t *testing.T) {
	for _, list := range [][]string{Serving, CLI} {
		seen := map[string]bool{}
		for _, m := range list {
			if m == "" {
				t.Fatalf("empty mode name in list %v", list)
			}
			if seen[m] {
				t.Fatalf("duplicate mode %q in list %v", m, list)
			}
			seen[m] = true
		}
	}
}

func TestServingIsNotCLI(t *testing.T) {
	// The surfaces intentionally differ: besteffort is serving-only
	// (deadline semantics need a server), brute is CLI-only (no
	// admission pricing). Pin both so an accidental merge is loud.
	if Valid(CLI, BestEffort) {
		t.Fatalf("besteffort must stay serving-only")
	}
	if Valid(Serving, Brute) {
		t.Fatalf("brute must stay CLI-only")
	}
}

func TestWeights(t *testing.T) {
	cases := map[string]int64{
		Density:    1,
		Stream:     1,
		HOTSAX:     8,
		RRA:        3,
		BestEffort: 3,
		"unpriced": 3,
	}
	for mode, want := range cases {
		if got := Weight(mode); got != want {
			t.Errorf("Weight(%q) = %d, want %d", mode, got, want)
		}
	}
}

func TestOneOf(t *testing.T) {
	if got, want := OneOf(Serving), "rra, besteffort, density, hotsax, or ensemble"; got != want {
		t.Errorf("OneOf(Serving) = %q, want %q", got, want)
	}
	if got, want := OneOf([]string{"x"}), "x"; got != want {
		t.Errorf("OneOf single = %q, want %q", got, want)
	}
	if got := OneOf(nil); got != "" {
		t.Errorf("OneOf(nil) = %q, want empty", got)
	}
}
