package sequitur

import (
	"fmt"
	"sort"
	"strings"
)

// Sym is one symbol of a rule body in a Grammar snapshot: either a
// terminal token or a reference to another rule.
type Sym struct {
	IsRule bool // true for a non-terminal (rule reference)
	ID     int  // token id (IsRule == false) or rule id (IsRule == true)
}

// Rule is one rule of a Grammar snapshot. Rule 0 is the root (R0); the
// paper excludes R0 when counting how many rules cover a position.
type Rule struct {
	ID    int   // dense id; 0 is the root
	Count int   // number of times the rule is used in other rules (root: 0)
	Body  []Sym // the rule's right-hand side
}

// Grammar is an immutable snapshot of an induced grammar.
type Grammar struct {
	Tokens []string // token id -> token string
	Rules  []Rule   // indexed by dense rule id; Rules[0] is the root

	expanded [][]int // lazy cache: rule id -> expanded token ids
}

// Grammar snapshots the Inducer's current grammar. Rule ids are compacted
// to a dense range with the root at 0; relative order of rule creation is
// preserved, matching the R1, R2, ... numbering in the paper.
func (in *Inducer) Grammar() *Grammar {
	ids := make([]int, 0, len(in.rules))
	for id := range in.rules {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	dense := make(map[int]int, len(ids))
	for i, id := range ids {
		dense[id] = i
	}
	tokens := make([]string, in.numTokens())
	for i := range tokens {
		tokens[i] = in.tokenString(i)
	}
	g := &Grammar{
		Tokens: tokens,
		Rules:  make([]Rule, len(ids)),
	}
	for i, id := range ids {
		src := in.rules[id]
		n := 0
		for s := src.first(); !s.isGuard(); s = s.next {
			n++
		}
		r := Rule{ID: i, Count: src.count, Body: make([]Sym, 0, n)}
		for s := src.first(); !s.isGuard(); s = s.next {
			if s.rule != nil {
				r.Body = append(r.Body, Sym{IsRule: true, ID: dense[s.rule.id]})
			} else {
				r.Body = append(r.Body, Sym{ID: int(s.term)})
			}
		}
		g.Rules[i] = r
	}
	return g
}

// NumRules returns the number of rules excluding the root — the "grammar
// size" used when the paper discusses grammar properties (Figure 10).
func (g *Grammar) NumRules() int { return len(g.Rules) - 1 }

// Expand returns the token ids a rule derives, computed bottom-up and
// cached. The root expands to the full input sequence (post numerosity
// reduction).
func (g *Grammar) Expand(ruleID int) []int {
	if g.expanded == nil {
		g.expanded = make([][]int, len(g.Rules))
	}
	if g.expanded[ruleID] != nil {
		return g.expanded[ruleID]
	}
	var out []int
	for _, s := range g.Rules[ruleID].Body {
		if s.IsRule {
			out = append(out, g.Expand(s.ID)...)
		} else {
			out = append(out, s.ID)
		}
	}
	if out == nil {
		out = []int{}
	}
	g.expanded[ruleID] = out
	return out
}

// ExpandTokens returns the token strings a rule derives.
func (g *Grammar) ExpandTokens(ruleID int) []string {
	ids := g.Expand(ruleID)
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = g.Tokens[id]
	}
	return out
}

// RuleString renders a rule body the way the paper prints grammars, e.g.
// "R1 xxx R1" for the root or "aac abc" for a leaf rule.
func (g *Grammar) RuleString(ruleID int) string {
	var b strings.Builder
	for i, s := range g.Rules[ruleID].Body {
		if i > 0 {
			b.WriteByte(' ')
		}
		if s.IsRule {
			fmt.Fprintf(&b, "R%d", s.ID)
		} else {
			b.WriteString(g.Tokens[s.ID])
		}
	}
	return b.String()
}

// String renders the whole grammar, one rule per line.
func (g *Grammar) String() string {
	var b strings.Builder
	for _, r := range g.Rules {
		fmt.Fprintf(&b, "R%d -> %s\n", r.ID, g.RuleString(r.ID))
	}
	return b.String()
}

// Verify checks the Sequitur invariants on the snapshot and that the root
// expands to input. It returns a descriptive error on the first violation
// found, or nil. It exists for tests and for debugging pipelines; it is
// O(grammar size).
func (g *Grammar) Verify(input []string) error {
	// Root expansion equals the input.
	got := g.ExpandTokens(0)
	if len(got) != len(input) {
		return fmt.Errorf("sequitur: root expands to %d tokens, input has %d", len(got), len(input))
	}
	for i := range got {
		if got[i] != input[i] {
			return fmt.Errorf("sequitur: expansion differs from input at %d: %q vs %q", i, got[i], input[i])
		}
	}
	// Rule utility: every non-root rule used at least twice.
	usage := make([]int, len(g.Rules))
	for _, r := range g.Rules {
		for _, s := range r.Body {
			if s.IsRule {
				usage[s.ID]++
			}
		}
	}
	for id := 1; id < len(g.Rules); id++ {
		if usage[id] < 2 {
			return fmt.Errorf("sequitur: rule R%d used %d times, utility violated", id, usage[id])
		}
		if usage[id] != g.Rules[id].Count {
			return fmt.Errorf("sequitur: rule R%d count %d != actual usage %d", id, g.Rules[id].Count, usage[id])
		}
		if len(g.Rules[id].Body) < 2 {
			return fmt.Errorf("sequitur: rule R%d has body of length %d", id, len(g.Rules[id].Body))
		}
	}
	// Digram uniqueness across all rule bodies. Two occurrences are only
	// legal when they overlap (a run like "aaa" inside one rule), which
	// requires them to be adjacent positions of the same rule with equal
	// symbols.
	type site struct{ rule, pos int }
	seen := make(map[[2]Sym]site)
	for _, r := range g.Rules {
		for i := 0; i+1 < len(r.Body); i++ {
			dg := [2]Sym{r.Body[i], r.Body[i+1]}
			if prev, dup := seen[dg]; dup {
				overlapping := prev.rule == r.ID && i == prev.pos+1 && dg[0] == dg[1]
				if !overlapping {
					return fmt.Errorf("sequitur: digram %v repeats at R%d@%d and R%d@%d",
						dg, prev.rule, prev.pos, r.ID, i)
				}
				continue // keep the first site so a third occurrence is caught
			}
			seen[dg] = site{rule: r.ID, pos: i}
		}
	}
	return nil
}
