package sequitur

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// Incremental validity: after every single Append on a structured input,
// the snapshot must satisfy all invariants. This is the property the
// streaming detector depends on.
func TestIncrementalPrefixValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		// Build a structured input: repeated motifs + noise tokens.
		var seq []string
		motif := []string{"ma", "mb", "mc"}
		for len(seq) < 120 {
			if rng.Float64() < 0.7 {
				seq = append(seq, motif...)
			} else {
				seq = append(seq, fmt.Sprintf("n%d", rng.Intn(8)))
			}
		}
		in := NewInducer()
		for i, tok := range seq {
			in.Append(tok)
			if i%17 == 0 || i == len(seq)-1 { // spot-check densely but not every step
				if err := in.Grammar().Verify(seq[:i+1]); err != nil {
					t.Fatalf("trial %d after %d tokens: %v", trial, i+1, err)
				}
			}
		}
	}
}

// The grammar never expands the input: total grammar symbols <= input
// length + number of rules (each rule body has >= 2 symbols and each use
// replaces >= 2; the bound below is the loose safe version).
func TestGrammarNeverLargerThanInput(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(400) + 2
		a := rng.Intn(8) + 1
		in := make([]string, n)
		for i := range in {
			in[i] = fmt.Sprintf("t%d", rng.Intn(a))
		}
		g := Induce(in)
		size := 0
		for _, r := range g.Rules {
			size += len(r.Body)
		}
		if size > n {
			t.Fatalf("trial %d: grammar size %d > input %d\n%s", trial, size, n, g)
		}
	}
}

// Token interning: the vocabulary must contain each distinct token exactly
// once, and ids must round-trip through the grammar.
func TestVocabulary(t *testing.T) {
	in := strings.Split("x y x z y x w", " ")
	g := Induce(in)
	seen := map[string]bool{}
	for _, tok := range g.Tokens {
		if seen[tok] {
			t.Fatalf("token %q interned twice", tok)
		}
		seen[tok] = true
	}
	for _, want := range []string{"x", "y", "z", "w"} {
		if !seen[want] {
			t.Errorf("token %q missing from vocabulary", want)
		}
	}
	if len(g.Tokens) != 4 {
		t.Errorf("vocabulary size = %d, want 4", len(g.Tokens))
	}
}

// Two-token alternation is the smallest input that exercises rule reuse
// heavily; check a ladder of lengths.
func TestAlternationLadder(t *testing.T) {
	for n := 2; n <= 64; n++ {
		in := make([]string, n)
		for i := range in {
			in[i] = []string{"a", "b"}[i%2]
		}
		g := Induce(in)
		if err := g.Verify(in); err != nil {
			t.Fatalf("n=%d: %v\n%s", n, err, g)
		}
	}
}

// Deep nesting: powers-of-two repeats force a rule hierarchy; expansion
// must still round-trip and the hierarchy must actually form.
func TestDeepHierarchy(t *testing.T) {
	var in []string
	for i := 0; i < 256; i++ {
		in = append(in, "u", "v")
	}
	g := Induce(in)
	if err := g.Verify(in); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if g.NumRules() < 4 {
		t.Errorf("expected a rule hierarchy, got %d rules:\n%s", g.NumRules(), g)
	}
	// Root should be dramatically shorter than the input.
	if len(g.Rules[0].Body) > len(in)/8 {
		t.Errorf("root body %d not << input %d", len(g.Rules[0].Body), len(in))
	}
}

// Expansion lengths are consistent: len(Expand(rule)) equals the sum over
// its body of (1 for terminals, len(Expand(sub)) for rules).
func TestExpansionLengthConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	in := make([]string, 300)
	for i := range in {
		in[i] = fmt.Sprintf("t%d", rng.Intn(5))
	}
	g := Induce(in)
	for id := 0; id < len(g.Rules); id++ {
		want := 0
		for _, s := range g.Rules[id].Body {
			if s.IsRule {
				want += len(g.Expand(s.ID))
			} else {
				want++
			}
		}
		if got := len(g.Expand(id)); got != want {
			t.Errorf("R%d expansion length %d, want %d", id, got, want)
		}
	}
}
