package sequitur

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func tokensOf(s string) []string { return strings.Split(s, " ") }

func TestPaperExample(t *testing.T) {
	// Section 3 of the paper: S = abc abc cba xxx abc abc cba. The paper
	// shows "a possible grammar" with two nested rules; canonical
	// Sequitur's rule-utility constraint inlines the inner rule, yielding
	// the equivalent R0 -> R1 xxx R1 ; R1 -> abc abc cba. Either way the
	// essential structure holds: the repeated block becomes one rule and
	// the unique token xxx stays at the top level.
	in := tokensOf("abc abc cba xxx abc abc cba")
	g := Induce(in)
	if err := g.Verify(in); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if g.NumRules() != 1 {
		t.Fatalf("NumRules = %d, want 1; grammar:\n%s", g.NumRules(), g)
	}
	root := g.Rules[0].Body
	if len(root) != 3 {
		t.Fatalf("root body = %v, want 3 symbols; grammar:\n%s", root, g)
	}
	if !root[0].IsRule || !root[2].IsRule || root[0].ID != root[2].ID {
		t.Fatalf("root should be R? xxx R?, got %q", g.RuleString(0))
	}
	if g.Tokens[root[1].ID] != "xxx" {
		t.Fatalf("middle of root = %q, want xxx", g.Tokens[root[1].ID])
	}
	got := strings.Join(g.ExpandTokens(root[0].ID), " ")
	if got != "abc abc cba" {
		t.Fatalf("R%d expands to %q, want 'abc abc cba'", root[0].ID, got)
	}
}

func TestClassicAbcdbc(t *testing.T) {
	// Canonical Sequitur example: "abcdbc" over single-char tokens gives
	// S -> a A d A ; A -> b c.
	in := tokensOf("a b c d b c")
	g := Induce(in)
	if err := g.Verify(in); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if g.NumRules() != 1 {
		t.Fatalf("NumRules = %d, want 1; grammar:\n%s", g.NumRules(), g)
	}
	if got := strings.Join(g.ExpandTokens(1), " "); got != "b c" {
		t.Fatalf("R1 = %q, want 'b c'", got)
	}
}

func TestRuleUtilityInlining(t *testing.T) {
	// "aaaa...": long runs exercise rule reuse and the triple handling.
	for n := 2; n <= 20; n++ {
		in := make([]string, n)
		for i := range in {
			in[i] = "a"
		}
		g := Induce(in)
		if err := g.Verify(in); err != nil {
			t.Fatalf("n=%d: %v\n%s", n, err, g)
		}
	}
}

func TestNoRepetition(t *testing.T) {
	// All-distinct input compresses to nothing: only the root, no rules.
	in := tokensOf("t0 t1 t2 t3 t4 t5 t6 t7")
	g := Induce(in)
	if err := g.Verify(in); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if g.NumRules() != 0 {
		t.Errorf("NumRules = %d, want 0", g.NumRules())
	}
	if len(g.Rules[0].Body) != len(in) {
		t.Errorf("root length = %d, want %d", len(g.Rules[0].Body), len(in))
	}
}

func TestEmptyAndSingle(t *testing.T) {
	g := Induce(nil)
	if len(g.Rules) != 1 || len(g.Rules[0].Body) != 0 {
		t.Errorf("empty grammar malformed: %+v", g.Rules)
	}
	g = Induce([]string{"only"})
	if err := g.Verify([]string{"only"}); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if g.NumRules() != 0 {
		t.Errorf("single token NumRules = %d", g.NumRules())
	}
}

func TestIncrementalSnapshotting(t *testing.T) {
	// Grammar() must be callable mid-stream without corrupting induction.
	in := NewInducer()
	seq := tokensOf("a b a b a b a b c a b")
	for i, tok := range seq {
		in.Append(tok)
		g := in.Grammar()
		if err := g.Verify(seq[:i+1]); err != nil {
			t.Fatalf("after %d tokens: %v\n%s", i+1, err, g)
		}
	}
	if in.Len() != len(seq) {
		t.Errorf("Len = %d, want %d", in.Len(), len(seq))
	}
}

func TestCompressionOnRepetitiveInput(t *testing.T) {
	// A highly repetitive input must yield a grammar much smaller than
	// the input (the compression property the anomaly detector relies on).
	var in []string
	for i := 0; i < 64; i++ {
		in = append(in, "x", "y", "z", "w")
	}
	g := Induce(in)
	if err := g.Verify(in); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	size := 0
	for _, r := range g.Rules {
		size += len(r.Body)
	}
	if size >= len(in)/4 {
		t.Errorf("grammar size %d not << input %d", size, len(in))
	}
}

func TestRareTokenStaysOutOfRules(t *testing.T) {
	// The paper's core intuition: a token that appears once ("xxx") must
	// not be absorbed into any non-root rule.
	in := tokensOf("abc abc cba xxx abc abc cba")
	g := Induce(in)
	for id := 1; id < len(g.Rules); id++ {
		for _, tok := range g.ExpandTokens(id) {
			if tok == "xxx" {
				t.Fatalf("xxx absorbed into R%d:\n%s", id, g)
			}
		}
	}
}

// Property: for random sequences over small alphabets, the grammar always
// round-trips and maintains both invariants.
func TestInduceRandomProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := func(nRaw uint16, aRaw uint8) bool {
		n := int(nRaw%500) + 1
		a := int(aRaw%6) + 1 // tiny alphabets force heavy rule churn
		in := make([]string, n)
		for i := range in {
			in[i] = fmt.Sprintf("t%d", rng.Intn(a))
		}
		g := Induce(in)
		return g.Verify(in) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: repeated blocks with distinct separators — structured inputs
// resembling discretized time series.
func TestInduceStructuredProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		motifLen := rng.Intn(5) + 2
		motif := make([]string, motifLen)
		for i := range motif {
			motif[i] = fmt.Sprintf("m%d", i)
		}
		var in []string
		for rep := 0; rep < rng.Intn(10)+2; rep++ {
			in = append(in, motif...)
			in = append(in, fmt.Sprintf("sep%d", rep))
		}
		g := Induce(in)
		if err := g.Verify(in); err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, g)
		}
		if g.NumRules() == 0 && motifLen >= 2 {
			t.Fatalf("trial %d: repeated motif induced no rules:\n%s", trial, g)
		}
	}
}

func TestRuleStringAndString(t *testing.T) {
	in := tokensOf("a b a b")
	g := Induce(in)
	if g.NumRules() != 1 {
		t.Fatalf("grammar:\n%s", g)
	}
	if got := g.RuleString(1); got != "a b" {
		t.Errorf("RuleString(1) = %q", got)
	}
	s := g.String()
	if !strings.Contains(s, "R0 ->") || !strings.Contains(s, "R1 -> a b") {
		t.Errorf("String() = %q", s)
	}
}

func TestVerifyCatchesCorruption(t *testing.T) {
	in := tokensOf("a b a b c")
	g := Induce(in)
	if err := g.Verify(in); err != nil {
		t.Fatalf("baseline: %v", err)
	}
	if err := g.Verify(tokensOf("a b a b d")); err == nil {
		t.Error("Verify should reject wrong input")
	}
	if err := g.Verify(tokensOf("a b")); err == nil {
		t.Error("Verify should reject wrong length")
	}
	// Corrupt a count.
	bad := Induce(in)
	bad.Rules[1].Count = 7
	if err := bad.Verify(in); err == nil {
		t.Error("Verify should catch count mismatch")
	}
}

func TestExpandCaching(t *testing.T) {
	in := tokensOf("a b a b a b a b")
	g := Induce(in)
	first := g.Expand(0)
	second := g.Expand(0)
	if &first[0] != &second[0] {
		t.Error("Expand should cache and return the same slice")
	}
}
