// Package sequitur implements the Sequitur algorithm (Nevill-Manning &
// Witten, 1997): linear-time, incremental inference of a context-free
// grammar from a sequence of tokens. The induced grammar maintains two
// invariants at all times:
//
//   - digram uniqueness: no pair of adjacent symbols appears more than
//     once in the grammar;
//   - rule utility: every rule is used more than once.
//
// Tokens are arbitrary strings (SAX words in this library); they are
// interned to integer ids internally so digram hashing is cheap.
package sequitur

// symbol is a node in a rule's doubly-linked symbol list. Exactly one of
// the following holds:
//   - guardOf != nil: the symbol is a rule's guard (list sentinel);
//   - rule != nil:    the symbol is a non-terminal referencing rule;
//   - otherwise:      the symbol is the terminal with token id term.
type symbol struct {
	next, prev *symbol
	term       int32 // terminal token id
	rule       *rule // non-nil for non-terminal occurrences
	guardOf    *rule // non-nil for rule guards
}

func (s *symbol) isGuard() bool       { return s.guardOf != nil }
func (s *symbol) isNonTerminal() bool { return s.rule != nil }

// code returns the 32-bit identity used in digram keys: terminals map to
// their token id, non-terminals to their rule id with the high bit set.
func (s *symbol) code() uint32 {
	if s.rule != nil {
		return 1<<31 | uint32(s.rule.id)
	}
	return uint32(s.term)
}

// sameValue reports whether two symbols are interchangeable for digram
// purposes (same terminal, or references to the same rule).
func sameValue(a, b *symbol) bool {
	if a.rule != nil || b.rule != nil {
		return a.rule == b.rule
	}
	if a.guardOf != nil || b.guardOf != nil {
		return false
	}
	return a.term == b.term
}

// rule is a grammar rule: a guarded circular list of symbols plus a
// reference count (the number of non-terminal occurrences of the rule).
type rule struct {
	id    int
	guard *symbol
	count int
}

func (r *rule) first() *symbol { return r.guard.next }
func (r *rule) last() *symbol  { return r.guard.prev }
func (r *rule) empty() bool    { return r.guard.next == r.guard }

// arenaChunk is the number of symbols per arena chunk. Chunks are never
// grown in place, so &chunk[i] stays valid for the arena's lifetime.
const arenaChunk = 1024

// symbolArena allocates symbols from fixed-size chunks with a freelist of
// recycled symbols, replacing one heap allocation per appended/copied
// token with one allocation per arenaChunk symbols. Symbols the algorithm
// retires (digram substitution, rule inlining) are recycled via release,
// so steady-state induction allocates only when the live symbol count
// grows past the high-water mark. reset rewinds the arena for reuse
// without returning the chunks to the garbage collector — the basis of
// workspace pooling.
type symbolArena struct {
	chunks [][]symbol
	cur    int     // index of the chunk currently being filled
	used   int     // slots handed out from chunks[cur]
	free   *symbol // recycled symbols, linked through next
}

// alloc returns a zeroed symbol, preferring recycled ones.
func (a *symbolArena) alloc() *symbol {
	if s := a.free; s != nil {
		a.free = s.next
		*s = symbol{}
		return s
	}
	if a.cur == len(a.chunks) {
		a.chunks = append(a.chunks, make([]symbol, arenaChunk))
	}
	c := a.chunks[a.cur]
	s := &c[a.used]
	a.used++
	if a.used == arenaChunk {
		a.cur++
		a.used = 0
	}
	*s = symbol{}
	return s
}

// release recycles an unlinked symbol. The caller must guarantee nothing
// references s anymore (no list links, no digram-index entry).
func (a *symbolArena) release(s *symbol) {
	s.prev, s.rule, s.guardOf = nil, nil, nil
	s.term = 0
	s.next = a.free
	a.free = s
}

// reset rewinds the arena: every chunk becomes reusable, no memory is
// freed. Outstanding symbol pointers become invalid.
func (a *symbolArena) reset() {
	a.cur, a.used = 0, 0
	a.free = nil
}
