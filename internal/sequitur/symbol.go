// Package sequitur implements the Sequitur algorithm (Nevill-Manning &
// Witten, 1997): linear-time, incremental inference of a context-free
// grammar from a sequence of tokens. The induced grammar maintains two
// invariants at all times:
//
//   - digram uniqueness: no pair of adjacent symbols appears more than
//     once in the grammar;
//   - rule utility: every rule is used more than once.
//
// Tokens are arbitrary strings (SAX words in this library); they are
// interned to integer ids internally so digram hashing is cheap.
package sequitur

// symbol is a node in a rule's doubly-linked symbol list. Exactly one of
// the following holds:
//   - guardOf != nil: the symbol is a rule's guard (list sentinel);
//   - rule != nil:    the symbol is a non-terminal referencing rule;
//   - otherwise:      the symbol is the terminal with token id term.
type symbol struct {
	next, prev *symbol
	term       int32 // terminal token id
	rule       *rule // non-nil for non-terminal occurrences
	guardOf    *rule // non-nil for rule guards
}

func (s *symbol) isGuard() bool       { return s.guardOf != nil }
func (s *symbol) isNonTerminal() bool { return s.rule != nil }

// code returns the 32-bit identity used in digram keys: terminals map to
// their token id, non-terminals to their rule id with the high bit set.
func (s *symbol) code() uint32 {
	if s.rule != nil {
		return 1<<31 | uint32(s.rule.id)
	}
	return uint32(s.term)
}

// sameValue reports whether two symbols are interchangeable for digram
// purposes (same terminal, or references to the same rule).
func sameValue(a, b *symbol) bool {
	if a.rule != nil || b.rule != nil {
		return a.rule == b.rule
	}
	if a.guardOf != nil || b.guardOf != nil {
		return false
	}
	return a.term == b.term
}

// rule is a grammar rule: a guarded circular list of symbols plus a
// reference count (the number of non-terminal occurrences of the rule).
type rule struct {
	id    int
	guard *symbol
	count int
}

func newRuleNode(id int) *rule {
	r := &rule{id: id}
	g := &symbol{guardOf: r}
	g.next = g
	g.prev = g
	r.guard = g
	return r
}

func (r *rule) first() *symbol { return r.guard.next }
func (r *rule) last() *symbol  { return r.guard.prev }
func (r *rule) empty() bool    { return r.guard.next == r.guard }
