package sequitur

// Inducer incrementally builds a Sequitur grammar. Feed tokens with
// Append; take a snapshot of the induced grammar with Grammar at any
// point (the paper's streaming extension relies on this incrementality).
// An Inducer is not safe for concurrent use.
type Inducer struct {
	digrams map[uint64]*symbol
	root    *rule
	rules   map[int]*rule // live rules by id, including the root (id 0)
	nextID  int

	vocab   map[string]int32 // token string -> id
	tokens  []string         // id -> token string
	nTokens int              // number of Append calls
}

// NewInducer returns an empty Inducer.
func NewInducer() *Inducer {
	in := &Inducer{
		digrams: make(map[uint64]*symbol),
		rules:   make(map[int]*rule),
		vocab:   make(map[string]int32),
		nextID:  1,
	}
	in.root = newRuleNode(0)
	in.rules[0] = in.root
	return in
}

// Induce builds the grammar for a whole token sequence in one call.
func Induce(tokens []string) *Grammar {
	in := NewInducer()
	for _, t := range tokens {
		in.Append(t)
	}
	return in.Grammar()
}

// Len returns the number of tokens appended so far.
func (in *Inducer) Len() int { return in.nTokens }

// NumRules returns the number of live rules, excluding the root.
func (in *Inducer) NumRules() int { return len(in.rules) - 1 }

// Append feeds the next token of the input sequence to the grammar.
func (in *Inducer) Append(token string) {
	id, ok := in.vocab[token]
	if !ok {
		id = int32(len(in.tokens))
		in.vocab[token] = id
		in.tokens = append(in.tokens, token)
	}
	in.nTokens++
	s := &symbol{term: id}
	in.insertAfter(in.root.last(), s)
	if prev := s.prev; !prev.isGuard() {
		in.check(prev)
	}
}

// digramKey packs the identities of s and s.next into a map key.
func digramKey(s *symbol) uint64 {
	return uint64(s.code())<<32 | uint64(s.next.code())
}

// deleteDigram removes the digram starting at s from the index, if the
// index currently points at this occurrence.
func (in *Inducer) deleteDigram(s *symbol) {
	if s.isGuard() || s.next.isGuard() {
		return
	}
	key := digramKey(s)
	if in.digrams[key] == s {
		delete(in.digrams, key)
	}
}

// join links left and right, maintaining the digram index. The triple
// re-indexing mirrors the reference implementation's handling of runs of
// identical symbols (e.g. "aaa"), where naive index maintenance would drop
// a digram occurrence.
func (in *Inducer) join(left, right *symbol) {
	if left.next != nil {
		in.deleteDigram(left)

		if right.prev != nil && right.next != nil &&
			sameValue(right, right.prev) && sameValue(right, right.next) {
			in.digrams[digramKey(right)] = right
		}
		if left.prev != nil && left.next != nil &&
			sameValue(left, left.next) && sameValue(left, left.prev) {
			in.digrams[digramKey(left.prev)] = left.prev
		}
	}
	left.next = right
	right.prev = left
}

// insertAfter splices y into the list immediately after s.
func (in *Inducer) insertAfter(s, y *symbol) {
	in.join(y, s.next)
	in.join(s, y)
}

// deleteSymbol unlinks s from its list, maintaining the digram index and
// the reference count of the rule s references (if any).
func (in *Inducer) deleteSymbol(s *symbol) {
	in.join(s.prev, s.next)
	if !s.isGuard() {
		in.deleteDigram(s)
		if s.rule != nil {
			s.rule.count--
		}
	}
}

// check enforces digram uniqueness for the digram starting at s. It
// returns true when the digram already occurred elsewhere (and was
// therefore reduced).
func (in *Inducer) check(s *symbol) bool {
	if s.isGuard() || s.next.isGuard() {
		return false
	}
	key := digramKey(s)
	found, ok := in.digrams[key]
	if !ok {
		in.digrams[key] = s
		return false
	}
	if found.next != s && found != s {
		in.match(s, found)
	}
	return true
}

// match reduces the two non-overlapping occurrences s and m of the same
// digram, either by reusing an existing whole-digram rule or by creating a
// new rule, then enforces rule utility.
func (in *Inducer) match(s, m *symbol) {
	var r *rule
	if m.prev.isGuard() && m.next.next.isGuard() {
		// m is the complete body of an existing rule: reuse it.
		r = m.prev.guardOf
		in.substitute(s, r)
	} else {
		r = in.newRule()
		in.insertAfter(r.last(), in.copyOf(s))
		in.insertAfter(r.last(), in.copyOf(s.next))
		in.substitute(m, r)
		in.substitute(s, r)
		in.digrams[digramKey(r.first())] = r.first()
	}
	// Rule utility: a rule referenced exactly once is inlined.
	if f := r.first(); f.rule != nil && f.rule.count == 1 {
		in.expand(f)
	}
}

// copyOf clones s for insertion into a rule body, bumping the reference
// count when s is a non-terminal.
func (in *Inducer) copyOf(s *symbol) *symbol {
	c := &symbol{term: s.term, rule: s.rule}
	if c.rule != nil {
		c.rule.count++
	}
	return c
}

func (in *Inducer) newRule() *rule {
	r := newRuleNode(in.nextID)
	in.nextID++
	in.rules[r.id] = r
	return r
}

// newNonTerminal returns a fresh occurrence of r, bumping its count.
func (in *Inducer) newNonTerminal(r *rule) *symbol {
	r.count++
	return &symbol{rule: r}
}

// substitute replaces the digram starting at s with a non-terminal
// referencing r, then re-checks the digrams the splice created.
func (in *Inducer) substitute(s *symbol, r *rule) {
	q := s.prev
	in.deleteSymbol(s)
	in.deleteSymbol(q.next)
	in.insertAfter(q, in.newNonTerminal(r))
	if !in.check(q) {
		in.check(q.next)
	}
}

// expand inlines the body of an underused rule at its last remaining
// occurrence s and retires the rule.
func (in *Inducer) expand(s *symbol) {
	r := s.rule
	left, right := s.prev, s.next
	f, l := r.first(), r.last()

	in.deleteDigram(s)
	in.join(left, f)
	in.join(l, right)
	in.digrams[digramKey(l)] = l

	delete(in.rules, r.id)
}
