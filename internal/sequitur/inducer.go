package sequitur

// Inducer incrementally builds a Sequitur grammar. Feed tokens with
// Append (string tokens) or AppendCode (packed integer tokens); take a
// snapshot of the induced grammar with Grammar at any point (the paper's
// streaming extension relies on this incrementality). A single Inducer
// must stick to one token form between resets. An Inducer is not safe for
// concurrent use.
//
// Symbols are allocated from an internal arena (see symbolArena) and
// recycled when the algorithm retires them, so steady-state induction is
// allocation-free per token; Reset/ResetCodes rewind the arena and clear
// the maps without releasing their memory, which is what makes Inducers
// poolable across analyses (internal/workspace).
type Inducer struct {
	digrams map[uint64]*symbol
	root    *rule
	rules   map[int]*rule // live rules by id, including the root (id 0)
	nextID  int
	arena   symbolArena

	// Rule structs are recycled like symbols: ruleArena holds every rule
	// ever allocated by this Inducer, ruleUsed is the rewind point for
	// Reset, and ruleFree collects rules retired mid-induction (rule
	// utility inlining) for reuse before the arena grows.
	ruleArena []*rule
	ruleUsed  int
	ruleFree  []*rule

	vocab   map[string]int32 // string path: token string -> id
	tokens  []string         // string path: id -> token string
	nTokens int              // number of appended tokens

	coded      bool
	vocabCodes map[uint64]int32    // coded path: word code -> id
	codes      []uint64            // coded path: id -> word code
	render     func(uint64) string // coded path: code -> string, for snapshots
}

// NewInducer returns an empty Inducer for string tokens.
func NewInducer() *Inducer {
	in := &Inducer{
		digrams: make(map[uint64]*symbol),
		rules:   make(map[int]*rule),
		vocab:   make(map[string]int32),
		nextID:  1,
	}
	in.root = in.newRuleNode(0)
	in.rules[0] = in.root
	return in
}

// NewCodeInducer returns an empty Inducer for integer-coded tokens.
// render converts a code back to its string form; it is called once per
// distinct token when a Grammar snapshot is taken (the string boundary),
// never on the per-token hot path.
func NewCodeInducer(render func(uint64) string) *Inducer {
	in := &Inducer{
		digrams:    make(map[uint64]*symbol),
		rules:      make(map[int]*rule),
		vocabCodes: make(map[uint64]int32),
		nextID:     1,
		coded:      true,
		render:     render,
	}
	in.root = in.newRuleNode(0)
	in.rules[0] = in.root
	return in
}

// Induce builds the grammar for a whole token sequence in one call.
func Induce(tokens []string) *Grammar {
	in := NewInducer()
	for _, t := range tokens {
		in.Append(t)
	}
	return in.Grammar()
}

// InduceCodes builds the grammar for a whole coded-token sequence in one
// call. The induced grammar is identical to Induce over the rendered
// strings (token ids are assigned in first-appearance order either way).
func InduceCodes(codes []uint64, render func(uint64) string) *Grammar {
	in := NewCodeInducer(render)
	for _, c := range codes {
		in.AppendCode(c)
	}
	return in.Grammar()
}

// Reset returns the Inducer to its empty state while keeping its arena
// chunks and map storage for reuse: a pooled Inducer re-analyzes a new
// sequence without re-paying its allocations. Grammar snapshots taken
// before the reset stay valid (they copy everything out). The token form
// (string vs coded) is preserved; use ResetCodes to (re)bind a coded
// Inducer's renderer.
func (in *Inducer) Reset() {
	clear(in.digrams)
	clear(in.rules)
	if in.vocab != nil {
		clear(in.vocab)
	}
	if in.vocabCodes != nil {
		clear(in.vocabCodes)
	}
	in.tokens = in.tokens[:0]
	in.codes = in.codes[:0]
	in.nTokens = 0
	in.nextID = 1
	in.arena.reset()
	in.ruleUsed = 0
	in.ruleFree = in.ruleFree[:0]
	in.root = in.newRuleNode(0)
	in.rules[0] = in.root
}

// ResetCodes is Reset for the coded token form: it rebinds the renderer
// (codes from different discretization parameters render differently) and
// lazily creates the code vocabulary on an Inducer that started out on
// the string path — the conversion a pooled workspace needs when requests
// with different parameter shapes share one Inducer.
func (in *Inducer) ResetCodes(render func(uint64) string) {
	in.coded = true
	in.render = render
	if in.vocabCodes == nil {
		in.vocabCodes = make(map[uint64]int32)
	}
	in.Reset()
}

// ResetStrings is Reset forcing the string token form.
func (in *Inducer) ResetStrings() {
	in.coded = false
	in.render = nil
	if in.vocab == nil {
		in.vocab = make(map[string]int32)
	}
	in.Reset()
}

// Len returns the number of tokens appended so far.
func (in *Inducer) Len() int { return in.nTokens }

// NumRules returns the number of live rules, excluding the root.
func (in *Inducer) NumRules() int { return len(in.rules) - 1 }

// Append feeds the next string token of the input sequence to the
// grammar. It must not be mixed with AppendCode on the same Inducer.
func (in *Inducer) Append(token string) {
	if in.coded {
		panic("sequitur: Append on a code-token Inducer")
	}
	id, ok := in.vocab[token]
	if !ok {
		id = int32(len(in.tokens))
		in.vocab[token] = id
		in.tokens = append(in.tokens, token)
	}
	in.appendID(id)
}

// AppendCode feeds the next integer-coded token of the input sequence to
// the grammar — the allocation-free hot path: no string is built, hashed,
// or compared. It must not be mixed with Append on the same Inducer.
//
// Steady-state induction on a warm (pooled) Inducer allocates nothing per
// token: the runtime pin is TestInducerReuseAllocs (testing.AllocsPerRun
// over whole re-induction runs) and the static guarantee is gvadlint's
// noalloc pass via the directive below, which verifies AppendCode and its
// whole static call graph (appendID, the symbol arena, digram maintenance,
// rule recycling). The growth allocations that remain — vocabulary map/
// slice growth, arena chunk growth past the high-water mark — are the
// sanctioned amortized forms (appends to struct fields), which is exactly
// the distinction the analyzer encodes.
//
//gvad:noalloc
func (in *Inducer) AppendCode(code uint64) {
	if !in.coded {
		panic("sequitur: AppendCode on a string-token Inducer")
	}
	id, ok := in.vocabCodes[code]
	if !ok {
		id = int32(len(in.codes))
		in.vocabCodes[code] = id
		in.codes = append(in.codes, code)
	}
	in.appendID(id)
}

// appendID appends the token with the given vocabulary id to the root
// rule and restores the digram-uniqueness invariant.
func (in *Inducer) appendID(id int32) {
	in.nTokens++
	s := in.arena.alloc()
	s.term = id
	in.insertAfter(in.root.last(), s)
	if prev := s.prev; !prev.isGuard() {
		in.check(prev)
	}
}

// numTokens returns the vocabulary size on either token path.
func (in *Inducer) numTokens() int {
	if in.coded {
		return len(in.codes)
	}
	return len(in.tokens)
}

// tokenString renders vocabulary id id for a snapshot.
func (in *Inducer) tokenString(id int) string {
	if in.coded {
		return in.render(in.codes[id])
	}
	return in.tokens[id]
}

// digramKey packs the identities of s and s.next into a map key.
func digramKey(s *symbol) uint64 {
	return uint64(s.code())<<32 | uint64(s.next.code())
}

// deleteDigram removes the digram starting at s from the index, if the
// index currently points at this occurrence.
func (in *Inducer) deleteDigram(s *symbol) {
	if s.isGuard() || s.next.isGuard() {
		return
	}
	key := digramKey(s)
	if in.digrams[key] == s {
		delete(in.digrams, key)
	}
}

// join links left and right, maintaining the digram index. The triple
// re-indexing mirrors the reference implementation's handling of runs of
// identical symbols (e.g. "aaa"), where naive index maintenance would drop
// a digram occurrence.
func (in *Inducer) join(left, right *symbol) {
	if left.next != nil {
		in.deleteDigram(left)

		if right.prev != nil && right.next != nil &&
			sameValue(right, right.prev) && sameValue(right, right.next) {
			in.digrams[digramKey(right)] = right
		}
		if left.prev != nil && left.next != nil &&
			sameValue(left, left.next) && sameValue(left, left.prev) {
			in.digrams[digramKey(left.prev)] = left.prev
		}
	}
	left.next = right
	right.prev = left
}

// insertAfter splices y into the list immediately after s.
func (in *Inducer) insertAfter(s, y *symbol) {
	in.join(y, s.next)
	in.join(s, y)
}

// deleteSymbol unlinks s from its list, maintaining the digram index and
// the reference count of the rule s references (if any). The caller owns
// the unlinked symbol and is responsible for recycling it.
func (in *Inducer) deleteSymbol(s *symbol) {
	in.join(s.prev, s.next)
	if !s.isGuard() {
		in.deleteDigram(s)
		if s.rule != nil {
			s.rule.count--
		}
	}
}

// check enforces digram uniqueness for the digram starting at s. It
// returns true when the digram already occurred elsewhere (and was
// therefore reduced).
func (in *Inducer) check(s *symbol) bool {
	if s.isGuard() || s.next.isGuard() {
		return false
	}
	key := digramKey(s)
	found, ok := in.digrams[key]
	if !ok {
		in.digrams[key] = s
		return false
	}
	if found.next != s && found != s {
		in.match(s, found)
	}
	return true
}

// match reduces the two non-overlapping occurrences s and m of the same
// digram, either by reusing an existing whole-digram rule or by creating a
// new rule, then enforces rule utility.
func (in *Inducer) match(s, m *symbol) {
	var r *rule
	if m.prev.isGuard() && m.next.next.isGuard() {
		// m is the complete body of an existing rule: reuse it.
		r = m.prev.guardOf
		in.substitute(s, r)
	} else {
		r = in.newRule()
		in.insertAfter(r.last(), in.copyOf(s))
		in.insertAfter(r.last(), in.copyOf(s.next))
		in.substitute(m, r)
		in.substitute(s, r)
		in.digrams[digramKey(r.first())] = r.first()
	}
	// Rule utility: a rule referenced exactly once is inlined.
	if f := r.first(); f.rule != nil && f.rule.count == 1 {
		in.expand(f)
	}
}

// copyOf clones s for insertion into a rule body, bumping the reference
// count when s is a non-terminal.
func (in *Inducer) copyOf(s *symbol) *symbol {
	c := in.arena.alloc()
	c.term, c.rule = s.term, s.rule
	if c.rule != nil {
		c.rule.count++
	}
	return c
}

// allocRule returns a zeroed rule struct, preferring retired or
// previously-allocated ones over the heap.
func (in *Inducer) allocRule() *rule {
	if n := len(in.ruleFree); n > 0 {
		r := in.ruleFree[n-1]
		in.ruleFree = in.ruleFree[:n-1]
		*r = rule{}
		return r
	}
	if in.ruleUsed < len(in.ruleArena) {
		r := in.ruleArena[in.ruleUsed]
		in.ruleUsed++
		*r = rule{}
		return r
	}
	r := &rule{}
	in.ruleArena = append(in.ruleArena, r)
	in.ruleUsed++
	return r
}

func (in *Inducer) newRuleNode(id int) *rule {
	r := in.allocRule()
	r.id = id
	g := in.arena.alloc()
	g.guardOf = r
	g.next = g
	g.prev = g
	r.guard = g
	return r
}

func (in *Inducer) newRule() *rule {
	r := in.newRuleNode(in.nextID)
	in.nextID++
	in.rules[r.id] = r
	return r
}

// newNonTerminal returns a fresh occurrence of r, bumping its count.
func (in *Inducer) newNonTerminal(r *rule) *symbol {
	r.count++
	s := in.arena.alloc()
	s.rule = r
	return s
}

// substitute replaces the digram starting at s with a non-terminal
// referencing r, then re-checks the digrams the splice created. The two
// replaced symbols are recycled — by the time they are unlinked, no list
// link or digram-index entry references them (deleteSymbol and the joins
// it performs scrub the index), matching the delete points of the
// reference C++ implementation.
func (in *Inducer) substitute(s *symbol, r *rule) {
	q := s.prev
	t := s.next
	in.deleteSymbol(s)
	in.deleteSymbol(t)
	in.arena.release(s)
	in.arena.release(t)
	in.insertAfter(q, in.newNonTerminal(r))
	if !in.check(q) {
		in.check(q.next)
	}
}

// expand inlines the body of an underused rule at its last remaining
// occurrence s and retires the rule, recycling the occurrence and the
// rule's guard symbol.
func (in *Inducer) expand(s *symbol) {
	r := s.rule
	left, right := s.prev, s.next
	f, l := r.first(), r.last()

	in.deleteDigram(s)
	in.join(left, f)
	in.join(l, right)
	in.digrams[digramKey(l)] = l

	delete(in.rules, r.id)
	in.arena.release(r.guard)
	in.arena.release(s)
	in.ruleFree = append(in.ruleFree, r)
}
