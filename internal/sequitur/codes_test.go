package sequitur

import (
	"fmt"
	"math/rand"
	"testing"
)

// codeTokens maps a string token sequence onto arbitrary integer codes,
// returning the codes and a renderer back to the original strings — the
// same shape internal/core uses with SAX word codes.
func codeTokens(tokens []string) ([]uint64, func(uint64) string) {
	ids := make(map[string]uint64)
	var names []string
	codes := make([]uint64, len(tokens))
	for i, t := range tokens {
		id, ok := ids[t]
		if !ok {
			// Non-dense codes exercise the vocab map, not slice indexing.
			id = uint64(len(names))*7919 + 13
			ids[t] = id
			names = append(names, t)
		}
		codes[i] = id
	}
	byCode := make(map[uint64]string, len(names))
	for s, id := range ids {
		byCode[id] = s
	}
	return codes, func(c uint64) string { return byCode[c] }
}

func randTokens(rng *rand.Rand, n, vocab int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("w%02d", rng.Intn(vocab))
	}
	return out
}

// TestInduceCodesMatchesInduce pins the equivalence guarantee: the integer
// hot path induces a grammar byte-identical to the string path's, because
// token ids are assigned in first-appearance order on both.
func TestInduceCodesMatchesInduce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(400)
		vocab := 1 + rng.Intn(12)
		tokens := randTokens(rng, n, vocab)
		codes, render := codeTokens(tokens)

		want := Induce(tokens).String()
		got := InduceCodes(codes, render).String()
		if got != want {
			t.Fatalf("trial %d (n=%d vocab=%d): grammars differ\nstrings:\n%s\ncodes:\n%s",
				trial, n, vocab, want, got)
		}
		if err := InduceCodes(codes, render).Verify(tokens); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// TestInducerResetReuse pins the pooling contract: a reused Inducer
// produces the same grammar as a fresh one, in either token form, and
// snapshots taken before a reset stay intact.
func TestInducerResetReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randTokens(rng, 300, 8)
	b := randTokens(rng, 180, 5)
	aCodes, aRender := codeTokens(a)
	bCodes, bRender := codeTokens(b)

	in := NewInducer()
	for _, tok := range a {
		in.Append(tok)
	}
	gotA := in.Grammar()
	wantA := Induce(a).String()
	if gotA.String() != wantA {
		t.Fatal("first use differs from fresh inducer")
	}

	// Switch the same inducer to the coded form for a different sequence.
	in.ResetCodes(bRender)
	for _, c := range bCodes {
		in.AppendCode(c)
	}
	if got := in.Grammar().String(); got != Induce(b).String() {
		t.Fatal("coded reuse differs from fresh induction")
	}
	// The snapshot from before the reset must be unaffected.
	if gotA.String() != wantA {
		t.Fatal("pre-reset snapshot corrupted by reuse")
	}

	// Back to strings, then coded again on the first sequence.
	in.ResetStrings()
	for _, tok := range b {
		in.Append(tok)
	}
	if got := in.Grammar().String(); got != Induce(b).String() {
		t.Fatal("string reuse after coded use differs")
	}
	in.ResetCodes(aRender)
	for _, c := range aCodes {
		in.AppendCode(c)
	}
	if got := in.Grammar().String(); got != wantA {
		t.Fatal("coded reuse after string use differs")
	}
}

func TestInducerMixedFormsPanic(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	in := NewInducer()
	mustPanic("AppendCode on string inducer", func() { in.AppendCode(1) })
	ci := NewCodeInducer(func(c uint64) string { return fmt.Sprint(c) })
	mustPanic("Append on code inducer", func() { ci.Append("x") })
}

// TestInducerReuseAllocs pins the arena guarantee: re-inducing the same
// sequence on a warm Inducer allocates only the per-analysis constant
// (rule-id map growth aside, no per-token or per-symbol allocations). The
// bound is deliberately loose — it catches a return to per-token
// allocation (hundreds per run), not incidental map resizes.
func TestInducerReuseAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tokens := randTokens(rng, 500, 9)
	codes, render := codeTokens(tokens)

	in := NewCodeInducer(render)
	run := func() {
		in.ResetCodes(render)
		for _, c := range codes {
			in.AppendCode(c)
		}
	}
	run() // warm: arena chunks, maps, vocab
	allocs := testing.AllocsPerRun(20, run)
	if allocs > 10 {
		t.Fatalf("warm re-induction of %d tokens allocates %v objects, want <= 10", len(tokens), allocs)
	}
}
