package sequitur

import (
	"fmt"
	"testing"
)

// FuzzInduce feeds an arbitrary token sequence to the incremental inducer
// and checks that the Sequitur invariants hold at the end: the root
// expands back to the input, every rule is used at least twice, and no
// digram repeats. Tokens are drawn from a small alphabet (bytes mod 8) so
// the fuzzer hits digram collisions, rule reuse and rule inlining rather
// than wandering in unique-token space; a snapshot mid-sequence checks
// that taking a Grammar does not disturb further induction.
func FuzzInduce(f *testing.F) {
	f.Add([]byte("abcabcabc"))
	f.Add([]byte{0, 0, 0, 0, 0, 0})
	f.Add([]byte{0, 1, 0, 1, 2, 0, 1, 0, 1, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<12 {
			data = data[:1<<12]
		}
		tokens := make([]string, len(data))
		for i, b := range data {
			tokens[i] = fmt.Sprintf("t%d", b%8)
		}
		in := NewInducer()
		for i, tok := range tokens {
			in.Append(tok)
			if i == len(tokens)/2 {
				// A mid-stream snapshot must also verify, and must not
				// perturb the inducer's state.
				if err := in.Grammar().Verify(tokens[:i+1]); err != nil {
					t.Fatalf("mid-stream: %v", err)
				}
			}
		}
		if in.Len() != len(tokens) {
			t.Fatalf("Len() = %d, appended %d", in.Len(), len(tokens))
		}
		if err := in.Grammar().Verify(tokens); err != nil {
			t.Fatal(err)
		}
	})
}
