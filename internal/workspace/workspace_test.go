package workspace

import "testing"

func TestGetPut(t *testing.T) {
	ws := Get()
	if ws == nil || ws.Inducer == nil {
		t.Fatal("Get returned an unusable workspace")
	}
	Put(ws)
	// The pool may or may not hand the same instance back; either way the
	// result must be usable.
	ws2 := Get()
	defer Put(ws2)
	if ws2 == nil || ws2.Inducer == nil {
		t.Fatal("second Get returned an unusable workspace")
	}
}

func TestDiffScratch(t *testing.T) {
	ws := &Workspace{}
	d := ws.DiffScratch(10)
	if len(d) != 10 {
		t.Fatalf("len = %d, want 10", len(d))
	}
	for i := range d {
		d[i] = i + 1
	}
	// Shrinking reuses the same backing and re-zeroes.
	d2 := ws.DiffScratch(4)
	if len(d2) != 4 {
		t.Fatalf("len = %d, want 4", len(d2))
	}
	for i, v := range d2 {
		if v != 0 {
			t.Fatalf("d2[%d] = %d, want 0 (stale scratch leaked through)", i, v)
		}
	}
	// Growing past capacity allocates fresh, also zeroed.
	d3 := ws.DiffScratch(64)
	if len(d3) != 64 {
		t.Fatalf("len = %d, want 64", len(d3))
	}
	for i, v := range d3 {
		if v != 0 {
			t.Fatalf("d3[%d] = %d, want 0", i, v)
		}
	}
}
