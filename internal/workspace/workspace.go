// Package workspace pools per-analysis scratch state so the serving path
// reuses, rather than reallocates, the grammar-induction hot path's
// working memory. One Workspace holds everything a single analysis
// mutates off the critical output path: the Sequitur Inducer (symbol
// arena, digram index, vocabulary) and the density curve's difference
// array. Outputs that outlive the analysis (the Grammar snapshot, the
// RuleSet, the density curve itself) are always freshly allocated —
// nothing a Pipeline or Detector retains aliases workspace memory, which
// is what makes checkout/return safe.
//
// Workspaces are checked out per analysis (internal/core does this for
// every AnalyzeCtx call, and thereby for every gvad cache-miss request)
// and returned when the analysis ends, successfully or not. The pool is
// sync.Pool-backed: under steady load each worker effectively keeps a
// warm workspace, and idle workspaces are reclaimed by the GC.
package workspace

import (
	"sync"

	"grammarviz/internal/sequitur"
)

// Workspace is one analysis's reusable scratch state. Zero value is not
// ready; obtain instances through Get.
type Workspace struct {
	// Inducer is the pooled Sequitur inducer. Callers must Reset /
	// ResetCodes / ResetStrings it before feeding tokens and must not
	// retain references to it after Put.
	Inducer *sequitur.Inducer

	// Diff is the density curve's difference-array scratch, grown on
	// demand and reused across analyses.
	Diff []int
}

var pool = sync.Pool{
	New: func() any {
		return &Workspace{Inducer: sequitur.NewInducer()}
	},
}

// Get checks a Workspace out of the pool.
func Get() *Workspace {
	return pool.Get().(*Workspace)
}

// Put returns a Workspace to the pool. The caller must not use ws (or
// anything non-snapshot reachable from it) afterwards.
func Put(ws *Workspace) {
	pool.Put(ws)
}

// DiffScratch returns ws.Diff resized to n, zeroed. The slice stays owned
// by the workspace; callers must copy anything they want to keep.
func (ws *Workspace) DiffScratch(n int) []int {
	if cap(ws.Diff) < n {
		ws.Diff = make([]int, n)
	}
	d := ws.Diff[:n]
	for i := range d {
		d[i] = 0
	}
	ws.Diff = d
	return d
}

// Kernel is the pooled scratch of the discord distance kernel's
// query-pinned fast path: one buffer holding the current candidate
// subsequence, z-normalized once, so the one-vs-many inner loops compare
// neighbors against precomputed values instead of re-normalizing the query
// on every kernel call. A Kernel belongs to exactly one search engine at a
// time; parallel searches check one out per worker. It is deliberately
// separate from Workspace — distance searches do not need the Sequitur
// arena, and grammar inductions do not need a float buffer.
type Kernel struct {
	// QNorm is the pinned query's z-normalized values, grown on demand
	// and reused across candidates and searches.
	QNorm []float64

	// Mean/Inv/Stamp back the engine's per-subsequence moment memo: the
	// mean and inverse std of ts[q:q+length] for the currently pinned
	// length, computed on first touch and reused for every later kernel
	// call against the same neighbor. Stamp[q] == Epoch marks a valid
	// entry; bumping Epoch invalidates the whole table in O(1) when the
	// pinned length (or the series behind a reused pooled Kernel)
	// changes.
	Mean  []float64
	Inv   []float64
	Stamp []uint32
	Epoch uint32
}

var kernelPool = sync.Pool{
	New: func() any { return &Kernel{} },
}

// GetKernel checks a Kernel scratch out of the pool. Like Get/Put, every
// GetKernel must be paired with a PutKernel on all paths (the poolrelease
// analyzer enforces this).
func GetKernel() *Kernel {
	return kernelPool.Get().(*Kernel)
}

// PutKernel returns a Kernel to the pool. The caller must not use k (or
// any slice obtained from it) afterwards.
func PutKernel(k *Kernel) {
	kernelPool.Put(k)
}

// QNormScratch returns k.QNorm resized to n. The contents are
// unspecified — callers overwrite every element. The slice stays owned by
// the Kernel; callers must not retain it past PutKernel.
//
//gvad:noalloc
func (k *Kernel) QNormScratch(n int) []float64 {
	if cap(k.QNorm) < n {
		k.QNorm = make([]float64, n)
	}
	k.QNorm = k.QNorm[:n]
	return k.QNorm
}

// MomentScratch returns the moment-memo tables resized to n entries and
// invalidated: Epoch is advanced past every stamp the tables may hold, so
// each entry reads as stale until the caller stores into it. Fresh
// allocations are zeroed by the runtime and Epoch never returns to zero,
// so recycled and newly grown tables are indistinguishable. The slices
// stay owned by the Kernel; callers must not retain them past PutKernel.
//
//gvad:noalloc
func (k *Kernel) MomentScratch(n int) (mean, inv []float64, stamp []uint32) {
	if cap(k.Mean) < n {
		k.Mean = make([]float64, n)
		k.Inv = make([]float64, n)
		k.Stamp = make([]uint32, n)
	}
	k.Mean, k.Inv, k.Stamp = k.Mean[:n], k.Inv[:n], k.Stamp[:n]
	k.Epoch++
	if k.Epoch == 0 {
		// uint32 wraparound after ~4 billion invalidations: zero wears the
		// "never stamped" meaning, so clear the stamps and restart at 1.
		clear(k.Stamp)
		k.Epoch = 1
	}
	return k.Mean, k.Inv, k.Stamp
}
