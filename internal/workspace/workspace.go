// Package workspace pools per-analysis scratch state so the serving path
// reuses, rather than reallocates, the grammar-induction hot path's
// working memory. One Workspace holds everything a single analysis
// mutates off the critical output path: the Sequitur Inducer (symbol
// arena, digram index, vocabulary) and the density curve's difference
// array. Outputs that outlive the analysis (the Grammar snapshot, the
// RuleSet, the density curve itself) are always freshly allocated —
// nothing a Pipeline or Detector retains aliases workspace memory, which
// is what makes checkout/return safe.
//
// Workspaces are checked out per analysis (internal/core does this for
// every AnalyzeCtx call, and thereby for every gvad cache-miss request)
// and returned when the analysis ends, successfully or not. The pool is
// sync.Pool-backed: under steady load each worker effectively keeps a
// warm workspace, and idle workspaces are reclaimed by the GC.
package workspace

import (
	"sync"

	"grammarviz/internal/sequitur"
)

// Workspace is one analysis's reusable scratch state. Zero value is not
// ready; obtain instances through Get.
type Workspace struct {
	// Inducer is the pooled Sequitur inducer. Callers must Reset /
	// ResetCodes / ResetStrings it before feeding tokens and must not
	// retain references to it after Put.
	Inducer *sequitur.Inducer

	// Diff is the density curve's difference-array scratch, grown on
	// demand and reused across analyses.
	Diff []int
}

var pool = sync.Pool{
	New: func() any {
		return &Workspace{Inducer: sequitur.NewInducer()}
	},
}

// Get checks a Workspace out of the pool.
func Get() *Workspace {
	return pool.Get().(*Workspace)
}

// Put returns a Workspace to the pool. The caller must not use ws (or
// anything non-snapshot reachable from it) afterwards.
func Put(ws *Workspace) {
	pool.Put(ws)
}

// DiffScratch returns ws.Diff resized to n, zeroed. The slice stays owned
// by the workspace; callers must copy anything they want to keep.
func (ws *Workspace) DiffScratch(n int) []int {
	if cap(ws.Diff) < n {
		ws.Diff = make([]int, n)
	}
	d := ws.Diff[:n]
	for i := range d {
		d[i] = 0
	}
	ws.Diff = d
	return d
}
