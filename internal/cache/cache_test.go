package cache

import (
	"fmt"
	"sync"
	"testing"
)

// TestLRUEviction checks the core policy: the least recently *used* entry
// goes first, and Get refreshes recency.
func TestLRUEviction(t *testing.T) {
	c := New[int](2)
	c.Add("a", 1)
	c.Add("b", 2)
	if _, ok := c.Get("a"); !ok { // refresh a; b is now oldest
		t.Fatal("a missing")
	}
	if evicted := c.Add("c", 3); !evicted {
		t.Error("third insert into a 2-cap cache did not evict")
	}
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction despite being least recently used")
	}
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Errorf("a = %d,%v after eviction of b", v, ok)
	}
	if v, ok := c.Get("c"); !ok || v != 3 {
		t.Errorf("c = %d,%v", v, ok)
	}
}

// TestLRUReplaceAndStats checks replacement semantics and the counters the
// daemon exports.
func TestLRUReplaceAndStats(t *testing.T) {
	c := New[string](2)
	c.Add("k", "v1")
	if evicted := c.Add("k", "v2"); evicted {
		t.Error("replacing a key reported an eviction")
	}
	if v, _ := c.Get("k"); v != "v2" {
		t.Errorf("replace kept old value %q", v)
	}
	c.Get("absent")
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Evictions != 0 || s.Len != 1 || s.Cap != 2 {
		t.Errorf("stats = %+v", s)
	}
	c.Purge()
	if c.Len() != 0 {
		t.Errorf("Len after Purge = %d", c.Len())
	}
	if s := c.Stats(); s.Hits != 1 {
		t.Errorf("Purge reset statistics: %+v", s)
	}
}

// TestLRUClampsCapacity documents the <1 capacity clamp.
func TestLRUClampsCapacity(t *testing.T) {
	c := New[int](0)
	c.Add("a", 1)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Errorf("zero-capacity cache unusable: %d,%v", v, ok)
	}
	c.Add("b", 2)
	if _, ok := c.Get("a"); ok {
		t.Error("clamped cache held two entries")
	}
}

// TestLRUConcurrent hammers the cache from many goroutines; under -race
// this is the concurrency-safety check.
func TestLRUConcurrent(t *testing.T) {
	c := New[int](8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", i%16)
				c.Add(k, i)
				c.Get(k)
				c.Len()
			}
		}(g)
	}
	wg.Wait()
	if got := c.Len(); got > 8 {
		t.Errorf("Len = %d exceeds capacity 8", got)
	}
}
