package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// fp returns a fingerprint-shaped key (hex SHA-256), the only key family
// the daemon stores.
func fp(i int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("key-%d", i)))
	return hex.EncodeToString(sum[:])
}

func TestShardedRounding(t *testing.T) {
	cases := []struct {
		shards, want int
	}{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {8, 8}, {9, 16}, {257, 256}, {1024, 256},
	}
	for _, tc := range cases {
		if got := NewSharded[int](64, tc.shards).Shards(); got != tc.want {
			t.Errorf("NewSharded(64, %d).Shards() = %d, want %d", tc.shards, got, tc.want)
		}
	}
}

// TestSingleShardMatchesLRU replays one random workload through the
// plain LRU and a one-shard Sharded: every Get result and the full
// statistics snapshot must be identical — the sharded form is a strict
// generalization, not a different cache.
func TestSingleShardMatchesLRU(t *testing.T) {
	single := New[int](16)
	sharded := NewSharded[int](16, 1)
	rng := rand.New(rand.NewSource(42))
	for op := 0; op < 5000; op++ {
		key := fp(rng.Intn(64))
		if rng.Intn(2) == 0 {
			v1, ok1 := single.Get(key)
			v2, ok2 := sharded.Get(key)
			if v1 != v2 || ok1 != ok2 {
				t.Fatalf("op %d: Get(%s) diverged: single (%d,%v) sharded (%d,%v)", op, key[:8], v1, ok1, v2, ok2)
			}
		} else {
			e1 := single.Add(key, op)
			e2 := sharded.Add(key, op)
			if e1 != e2 {
				t.Fatalf("op %d: Add(%s) eviction diverged: single %v sharded %v", op, key[:8], e1, e2)
			}
		}
	}
	s1, s2 := single.Stats(), sharded.Stats()
	if s1 != s2 {
		t.Errorf("stats diverged: single %+v sharded %+v", s1, s2)
	}
}

// TestAggregateSumsShardCounters: the aggregate snapshot is exactly the
// sum of the per-shard counters — sharding loses no accounting — and the
// eviction conservation law (distinct keys added - occupancy = evictions)
// holds for the sharded totals just as it does for the single LRU on the
// same workload.
func TestAggregateSumsShardCounters(t *testing.T) {
	const distinct, capacity = 200, 64
	sharded := NewSharded[int](capacity, 8)
	single := New[int](capacity)
	for i := 0; i < distinct; i++ {
		sharded.Add(fp(i), i)
		single.Add(fp(i), i)
		sharded.Get(fp(rand.Intn(i + 1)))
		single.Get(fp(rand.Intn(i + 1)))
	}

	var sum Stats
	for _, st := range sharded.ShardStats() {
		sum.Hits += st.Hits
		sum.Misses += st.Misses
		sum.Evictions += st.Evictions
		sum.Len += st.Len
		sum.Cap += st.Cap
	}
	if agg := sharded.Stats(); agg != sum {
		t.Errorf("aggregate %+v != sum of shards %+v", agg, sum)
	}

	// Each Add was a distinct key, so whatever is not resident was
	// evicted — on the sharded cache and on the single LRU alike.
	agg := sharded.Stats()
	if got, want := agg.Evictions, uint64(distinct-agg.Len); got != want {
		t.Errorf("sharded evictions = %d, conservation wants %d (len %d)", got, want, agg.Len)
	}
	ss := single.Stats()
	if got, want := ss.Evictions, uint64(distinct-ss.Len); got != want {
		t.Errorf("single-LRU evictions = %d, conservation wants %d", got, want)
	}
	// One Get per Add on both caches: the hit+miss total is conserved
	// across the sharding change even though individual outcomes may
	// differ with eviction order.
	if agg.Hits+agg.Misses != ss.Hits+ss.Misses {
		t.Errorf("lookup totals diverged: sharded %d, single %d",
			agg.Hits+agg.Misses, ss.Hits+ss.Misses)
	}
}

// TestFingerprintKeysSpreadShards: hex fingerprints land on every shard
// (uniform prefix ⇒ uniform shard index).
func TestFingerprintKeysSpreadShards(t *testing.T) {
	s := NewSharded[int](1024, 16)
	for i := 0; i < 1024; i++ {
		s.Add(fp(i), i)
	}
	for i, st := range s.ShardStats() {
		if st.Len == 0 {
			t.Errorf("shard %d received no keys from 1024 fingerprints", i)
		}
	}
}

// TestShardBudget: a shard is bounded by its slice of the capacity even
// when every other shard is empty — the per-shard budget the doc
// promises.
func TestShardBudget(t *testing.T) {
	s := NewSharded[int](64, 8) // 8 per shard
	target := s.shard(fp(0))
	inserted := 0
	for i := 0; inserted < 100 && i < 100000; i++ {
		if s.shard(fp(i)) == target {
			s.Add(fp(i), i)
			inserted++
		}
	}
	if inserted < 100 {
		t.Fatalf("could not find 100 keys for one shard")
	}
	if got := target.Len(); got != 8 {
		t.Errorf("hot shard holds %d entries, budget is 8", got)
	}
}

// TestShardedConcurrent hammers one cache from many goroutines; the
// -race run is the assertion.
func TestShardedConcurrent(t *testing.T) {
	s := NewSharded[int](128, 8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 2000; i++ {
				key := fp(rng.Intn(256))
				if rng.Intn(2) == 0 {
					s.Get(key)
				} else {
					s.Add(key, i)
				}
			}
		}(w)
	}
	wg.Wait()
	st := s.Stats()
	if st.Len > 128+7 { // shards*ceil(128/8) bound
		t.Errorf("occupancy %d exceeds budget", st.Len)
	}
}
