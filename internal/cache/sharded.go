package cache

import "math/bits"

// Sharded is an LRU split across a power-of-two number of independently
// locked shards, selected by the leading characters of the key. Under
// concurrent load the single-mutex LRU serializes every Get/Add — with
// dozens of request goroutines all touching the detector cache, that one
// lock is a bottleneck (and the lock hold includes a list splice). The
// sharded form keeps contention proportional to 1/shards while preserving
// LRU semantics within each shard.
//
// Keys are expected to be detector fingerprints (hex SHA-256), whose
// leading characters are uniformly distributed, so the shard index is
// read straight off the key prefix — no extra hashing. Non-hex keys
// still spread (the selector folds raw byte bits) but may skew; the
// daemon only ever stores fingerprints.
//
// The capacity budget is per shard: NewSharded divides the total
// capacity evenly (rounding up, minimum 1 per shard), so a hot shard
// cannot grow past its slice of the budget and total occupancy is
// bounded by shards*ceil(capacity/shards).
type Sharded[V any] struct {
	shards []*LRU[V]
	mask   uint32
}

// NewSharded returns a sharded LRU holding roughly capacity entries
// across the given number of shards. The shard count is rounded up to a
// power of two and clamped to [1, 256]; capacity below 1 is clamped to 1.
func NewSharded[V any](capacity, shards int) *Sharded[V] {
	if shards < 1 {
		shards = 1
	}
	if shards > 256 {
		shards = 256
	}
	if shards&(shards-1) != 0 {
		shards = 1 << bits.Len(uint(shards))
	}
	if capacity < 1 {
		capacity = 1
	}
	perShard := (capacity + shards - 1) / shards
	s := &Sharded[V]{shards: make([]*LRU[V], shards), mask: uint32(shards - 1)}
	for i := range s.shards {
		s.shards[i] = New[V](perShard)
	}
	return s
}

// Shards returns the number of shards.
func (s *Sharded[V]) Shards() int { return len(s.shards) }

// shard selects the shard for key from its leading characters: up to 8
// hex nibbles folded into 32 bits, low bits masked to the shard index.
// For hex fingerprints this is exactly "the fingerprint prefix".
func (s *Sharded[V]) shard(key string) *LRU[V] {
	var h uint32
	for i := 0; i < len(key) && i < 8; i++ {
		h = h<<4 | uint32(hexNibble(key[i]))
	}
	return s.shards[h&s.mask]
}

// hexNibble maps a hex digit to its value; other bytes contribute their
// low four bits so arbitrary keys still distribute.
func hexNibble(c byte) byte {
	switch {
	case c >= '0' && c <= '9':
		return c - '0'
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10
	default:
		return c & 0x0f
	}
}

// Get returns the value for key, marking it most recently used within its
// shard.
func (s *Sharded[V]) Get(key string) (V, bool) {
	return s.shard(key).Get(key)
}

// Peek returns the value for key without updating recency or statistics.
func (s *Sharded[V]) Peek(key string) (V, bool) {
	return s.shard(key).Peek(key)
}

// Add stores key → val, evicting within the key's shard when that shard
// is at its budget. It reports whether an eviction happened.
func (s *Sharded[V]) Add(key string, val V) (evicted bool) {
	return s.shard(key).Add(key, val)
}

// Len returns the number of cached entries across all shards.
func (s *Sharded[V]) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Len()
	}
	return n
}

// Purge drops every entry in every shard (statistics are kept).
func (s *Sharded[V]) Purge() {
	for _, sh := range s.shards {
		sh.Purge()
	}
}

// Stats returns the aggregate hit/miss/eviction counts and occupancy
// summed over all shards — the same shape the single LRU reports, so
// /metrics and tests read one snapshot regardless of shard count.
func (s *Sharded[V]) Stats() Stats {
	var agg Stats
	for _, sh := range s.shards {
		st := sh.Stats()
		agg.Hits += st.Hits
		agg.Misses += st.Misses
		agg.Evictions += st.Evictions
		agg.Len += st.Len
		agg.Cap += st.Cap
	}
	return agg
}

// ShardStats returns each shard's own snapshot, in shard order — the
// per-shard view behind the aggregate.
func (s *Sharded[V]) ShardStats() []Stats {
	out := make([]Stats, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.Stats()
	}
	return out
}
