// Package cache provides the fixed-capacity, concurrency-safe LRU cache
// behind gvad's detector reuse: repeated queries against the same series
// and SAX options fetch the already-induced grammar instead of re-running
// discretization and Sequitur induction. The cache is generic; the daemon
// stores *grammarviz.Detector values, which are immutable and safe to
// share between concurrent requests.
package cache

import (
	"container/list"
	"sync"
)

// LRU is a fixed-capacity least-recently-used map from string keys to
// values of type V. All methods are safe for concurrent use.
type LRU[V any] struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits, misses, evictions uint64
}

type entry[V any] struct {
	key string
	val V
}

// New returns an LRU holding at most capacity entries. A capacity below 1
// is clamped to 1 — a cache that can hold nothing would turn every Get
// into a miss and hide bugs rather than surface them.
func New[V any](capacity int) *LRU[V] {
	if capacity < 1 {
		capacity = 1
	}
	return &LRU[V]{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// Get returns the value for key, marking it most recently used.
func (c *LRU[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.hits++
		c.ll.MoveToFront(el)
		return el.Value.(*entry[V]).val, true
	}
	c.misses++
	var zero V
	return zero, false
}

// Peek returns the value for key without updating recency or the
// hit/miss statistics — the double-check probe inside a coalesced
// induction uses it so cache statistics keep counting one lookup per
// request, not internal re-checks.
func (c *LRU[V]) Peek(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		return el.Value.(*entry[V]).val, true
	}
	var zero V
	return zero, false
}

// Add stores key → val as most recently used, evicting the least recently
// used entry when the cache is full. It reports whether an eviction
// happened. Adding an existing key replaces its value.
func (c *LRU[V]) Add(key string, val V) (evicted bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*entry[V]).val = val
		return false
	}
	c.items[key] = c.ll.PushFront(&entry[V]{key: key, val: val})
	if c.ll.Len() <= c.cap {
		return false
	}
	oldest := c.ll.Back()
	c.ll.Remove(oldest)
	delete(c.items, oldest.Value.(*entry[V]).key)
	c.evictions++
	return true
}

// Len returns the number of cached entries.
func (c *LRU[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Purge drops every entry (statistics are kept).
func (c *LRU[V]) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	clear(c.items)
}

// Stats is a point-in-time snapshot of the cache's effectiveness.
type Stats struct {
	Hits, Misses, Evictions uint64
	Len, Cap                int
}

// Stats returns a snapshot of hit/miss/eviction counts and occupancy.
func (c *LRU[V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Len: c.ll.Len(), Cap: c.cap}
}
